// Distributed application locks (Section 2.3, "Synchronization").
//
// A lock is an array in Memory Channel space with one entry per unit, plus
// a per-node test-and-set flag. To acquire: take the node flag (ll/sc),
// set your array entry via broadcast, wait for loop-back to confirm the
// write is globally performed, then read the whole array — if yours is the
// only entry set, the lock is held; otherwise clear, back off, retry. MC's
// total write ordering makes this correct without any read-modify-write on
// the network.
//
// Consistency actions run on completion of an acquire and prior to a
// release (release consistency). Virtual time: the lock carries the
// releaser's clock; an acquirer advances to it (the wait component of
// Figure 6).
#ifndef CASHMERE_SYNC_CLUSTER_LOCK_HPP_
#define CASHMERE_SYNC_CLUSTER_LOCK_HPP_

#include <atomic>
#include <cstdint>

#include "cashmere/common/config.hpp"
#include "cashmere/common/ownership.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

class CashmereProtocol;
class Context;

class ClusterLock {
 public:
  ClusterLock(const Config& cfg, McHub& hub, CashmereProtocol& protocol);
  ClusterLock(const ClusterLock&) = delete;
  ClusterLock& operator=(const ClusterLock&) = delete;

  void Acquire(Context& ctx);
  void Release(Context& ctx);

  // Application-visible lock id, stamped into trace events (a0 of
  // kLockAcquire/kLockRelease). Set by the Runtime at construction.
  void set_trace_id(int id) { trace_id_ = id; }

  // Hang diagnostics: true if any array entry or node flag is set.
  bool DebugBusy() const;
  void DebugDump(int id) const;

 private:
  int trace_id_ = -1;
  const Config& cfg_;
  McHub& hub_;
  CashmereProtocol& protocol_;
  // Per-node test-and-set flags (ll/sc on the real system).
  std::atomic<bool> node_flag_[kMaxNodes] = {};
  // The replicated MC lock array: one word per unit. Entry u is written
  // only by unit u (through ordered-broadcast McOps, which serialize the
  // writes in MC total order); any unit may read any entry. This is what
  // makes the array lock-free on the network — no RMW ever crosses units.
  CSM_SINGLE_WRITER("unit u for entries_[u]")
  std::uint32_t entries_[kMaxProcs] = {};
  std::atomic<VirtTime> release_vt_{0};
  // Async release-path coherence (protocol/coherence_log.hpp): per-unit log
  // sequence vector max-folded by releasers and merged by acquirers, so the
  // acquirer's gate covers exactly the releases that happen-before the
  // acquire (transitively, through the releaser's own merged vector).
  std::atomic<std::uint64_t> seen_seq_[kMaxProcs] = {};
};

}  // namespace cashmere

#endif  // CASHMERE_SYNC_CLUSTER_LOCK_HPP_
