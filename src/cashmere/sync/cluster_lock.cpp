#include "cashmere/sync/cluster_lock.hpp"

#include <atomic>
#include <cstdio>

#include "cashmere/common/rng.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/protocol/cashmere_protocol.hpp"
#include "cashmere/runtime/context.hpp"

namespace cashmere {

ClusterLock::ClusterLock(const Config& cfg, McHub& hub, CashmereProtocol& protocol)
    : cfg_(cfg), hub_(hub), protocol_(protocol) {}

void ClusterLock::Acquire(Context& ctx) {
  ProtocolScope scope(ctx);
  ctx.stats().Add(Counter::kLockAcquires);
  const UnitId unit = ctx.unit();
  const NodeId node = ctx.node();

  // 1. Per-node flag (ll/sc): only one processor per node competes on MC.
  Backoff backoff;
  while (node_flag_[node].exchange(true, std::memory_order_acquire)) {
    protocol_.Poll(ctx);
    backoff.Pause();
  }

  // 2. MC array protocol with loop-back confirmation.
  SplitMix64 rng(static_cast<std::uint64_t>(ctx.proc()) * 0x9e37u + 1);
  std::uint64_t backoff_window = 8;
  while (true) {
    hub_.Issue(McOp::Broadcast(&entries_[unit], 1, Traffic::kSyncObject));
    // Loop-back: on the real MC, waiting for one's own write to return
    // through the hub guarantees that all earlier-ordered writes are
    // visible before the array is read. The memory-model equivalent is a
    // full fence: without it, two claimants can each miss the other's
    // just-stored entry (store-buffer reordering) and both "win".
    std::atomic_thread_fence(std::memory_order_seq_cst);
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(2.0 * cfg_.costs.mc_write_latency_us));
    bool sole = true;
    for (int u = 0; u < cfg_.units(); ++u) {
      if (u != unit && LoadWord32(&entries_[u]) != 0) {
        sole = false;
        break;
      }
    }
    if (sole) {
      break;
    }
    hub_.Issue(McOp::Broadcast(&entries_[unit], 0, Traffic::kSyncObject));
    // Randomized exponential backoff (livelock resistance among up to
    // kMaxNodes competitors); keep servicing requests while waiting.
    const auto spins = 1 + rng.NextBelow(backoff_window);
    backoff_window = backoff_window < 4096 ? backoff_window * 2 : backoff_window;
    for (std::uint64_t i = 0; i < spins; ++i) {
      protocol_.Poll(ctx);
      backoff.Pause();
    }
  }

  // Acquired: reconcile with the previous releaser's clock, charge the
  // measured acquire cost, and run consistency actions.
  const VirtTime release_vt = release_vt_.load(std::memory_order_acquire);
  ctx.clock().AdvanceTo(ctx.stats(), release_vt);
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     cfg_.costs.LockAcquireNs(cfg_.two_level()));
  if (TraceActive()) {
    // Before AcquireSync so the acquire's write-notice drains trace inside
    // the acquire, after the lock-acquired edge.
    TraceEmit(EventKind::kLockAcquire, kNoTracePage, 0,
              static_cast<std::uint32_t>(trace_id_), release_vt);
  }
  // Inherit the lock's happens-before sequence vector before the acquire's
  // gate runs (async mode; a no-op vector otherwise).
  MergeSeqVector(ctx.seen_seq(), seen_seq_, cfg_.units());
  protocol_.AcquireSync(ctx);
}

bool ClusterLock::DebugBusy() const {
  for (int u = 0; u < cfg_.units(); ++u) {
    if (LoadWord32(&entries_[u]) != 0) {
      return true;
    }
  }
  for (int n = 0; n < cfg_.nodes; ++n) {
    if (node_flag_[n].load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ClusterLock::DebugDump(int id) const {
  std::fprintf(stderr, "  lock %d: entries", id);
  for (int u = 0; u < cfg_.units(); ++u) {
    std::fprintf(stderr, " %u", LoadWord32(&entries_[u]));
  }
  std::fprintf(stderr, " node_flags");
  for (int n = 0; n < cfg_.nodes; ++n) {
    std::fprintf(stderr, " %d", node_flag_[n].load(std::memory_order_relaxed) ? 1 : 0);
  }
  std::fprintf(stderr, "\n");
}

void ClusterLock::Release(Context& ctx) {
  ProtocolScope scope(ctx);
  protocol_.ReleaseSync(ctx, /*barrier_arrival=*/false);
  // Publish everything this releaser has observed — including the log
  // records its ReleaseSync just published — so the next acquirer gates on
  // them (async mode; a no-op vector otherwise).
  PublishSeqVector(seen_seq_, ctx.seen_seq(), cfg_.units());
  release_vt_.store(ctx.clock().now(), std::memory_order_release);
  if (TraceActive()) {
    TraceEmit(EventKind::kLockRelease, kNoTracePage, 0,
              static_cast<std::uint32_t>(trace_id_), ctx.clock().now());
  }
  hub_.Issue(McOp::Broadcast(&entries_[ctx.unit()], 0, Traffic::kSyncObject));
  node_flag_[ctx.node()].store(false, std::memory_order_release);
}

}  // namespace cashmere
