// Application flags (Section 2.2): single-writer event counts used for
// producer/consumer synchronization (e.g. Gauss's per-row pivot flags).
// A set is a release followed by an MC broadcast of the value; a wait spins
// (polling) on the local replica, then runs acquire-side consistency.
#ifndef CASHMERE_SYNC_CLUSTER_FLAG_HPP_
#define CASHMERE_SYNC_CLUSTER_FLAG_HPP_

#include <atomic>
#include <cstdint>

#include "cashmere/common/config.hpp"
#include "cashmere/common/ownership.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

class CashmereProtocol;
class Context;

class ClusterFlag {
 public:
  ClusterFlag(const Config& cfg, McHub& hub, CashmereProtocol& protocol);
  ClusterFlag(const ClusterFlag&) = delete;
  ClusterFlag& operator=(const ClusterFlag&) = delete;

  // Release-sets the flag to `value` (monotonically increasing values only).
  void Set(Context& ctx, std::uint64_t value);
  // Waits until the flag is >= `value`, then acquires.
  void WaitGe(Context& ctx, std::uint64_t value);

  std::uint64_t Peek() const { return value_.load(std::memory_order_acquire); }

  // Application-visible flag id, stamped into trace events (a0 of
  // kFlagSet/kFlagWait). Set by the Runtime at construction.
  void set_trace_id(int id) { trace_id_ = id; }

 private:
  int trace_id_ = -1;
  const Config& cfg_;
  McHub& hub_;
  CashmereProtocol& protocol_;
  // Flags are single-writer by contract (Section 2.2): one producer calls
  // Set with monotonically increasing values; consumers only WaitGe/Peek.
  CSM_SINGLE_WRITER("the producing processor of this flag")
  std::atomic<std::uint64_t> value_{0};
  CSM_SINGLE_WRITER("the producing processor of this flag")
  std::atomic<VirtTime> set_vt_{0};
  // Async release-path coherence: setters max-fold their observed per-unit
  // log sequence vector here; waiters merge it before their acquire gate
  // (protocol/coherence_log.hpp). CAS max-folds, so racing monotonic
  // setters compose like set_vt_ does.
  std::atomic<std::uint64_t> seen_seq_[kMaxProcs] = {};
};

}  // namespace cashmere

#endif  // CASHMERE_SYNC_CLUSTER_FLAG_HPP_
