// Two-level application barriers (Section 2.3).
//
// Processors within a node synchronize through shared memory; the last
// local arriver announces the node's arrival over MC. Each processor, as
// it arrives, flushes the (non-exclusive) dirty pages for which it is the
// last arriving local writer; departure runs acquire-side consistency.
//
// Virtual time: departure reconciles every participant to the maximum
// arrival clock plus the measured barrier cost (Table 1).
#ifndef CASHMERE_SYNC_CLUSTER_BARRIER_HPP_
#define CASHMERE_SYNC_CLUSTER_BARRIER_HPP_

#include <atomic>
#include <cstdint>

#include "cashmere/common/config.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

class CashmereProtocol;
class Context;

class ClusterBarrier {
 public:
  // `counted` distinguishes application barriers (Table 3 statistics) from
  // the runtime's internal quiesce barriers.
  ClusterBarrier(const Config& cfg, McHub& hub, CashmereProtocol& protocol,
                 bool counted = true);
  ClusterBarrier(const ClusterBarrier&) = delete;
  ClusterBarrier& operator=(const ClusterBarrier&) = delete;

  void Wait(Context& ctx);

  // Application-visible barrier id, stamped into trace events (a0 of
  // kBarrierArrive/kBarrierDepart). The runtime's internal quiesce barrier
  // keeps the default (-1, rendered as 0xffffffff).
  void set_trace_id(int id) { trace_id_ = id; }

 private:
  // Unlike the directory / lock-array / flag structures, barrier episode
  // state is genuinely multi-writer: arrival counters are real RMWs
  // (fetch_add) and max_vt is a CAS max-fold. It is therefore exempt from
  // the single-writer ownership discipline (no CSM_SINGLE_WRITER /
  // OwnerCell here) — the atomics carry the full synchronization.
  struct Episode {
    std::atomic<int> arrived{0};
    std::atomic<std::uint64_t> max_vt{0};
    std::atomic<std::uint64_t> release_vt{0};
    std::atomic<int> node_arrivals{0};  // nodes fully arrived (MC array)
    // Async release-path coherence: max-fold of every arriver's per-unit
    // log sequence vector. Departers merge it before their acquire gate,
    // so a barrier transitively orders all participants' publishes
    // (protocol/coherence_log.hpp). Reset with the rest of the episode by
    // the last arriver of the *previous* episode.
    std::atomic<std::uint64_t> seen_seq[kMaxProcs] = {};
  };

  const Config& cfg_;
  McHub& hub_;
  CashmereProtocol& protocol_;
  bool counted_;
  int trace_id_ = -1;
  Episode episodes_[2];
  std::atomic<std::uint64_t> epoch_{0};
  // Per-node local arrival counters (hardware shared memory level).
  std::atomic<int> node_count_[kMaxNodes] = {};
};

}  // namespace cashmere

#endif  // CASHMERE_SYNC_CLUSTER_BARRIER_HPP_
