// SharedWordLock: a futex-or-spin mutual-exclusion lock whose entire state
// is one 32-bit word in caller-owned memory — placeable in a shared memfd
// segment and therefore usable across OS processes.
//
// The shm transport serializes MC's totally-ordered operations through one
// of these in its control segment: unlike common/spin.hpp's SpinLock (whose
// state is a process-private std::atomic_flag), a SharedWordLock's word is
// address-free, so every process of the cluster contends on the same
// physical word. Acquisition spins briefly (bounded exponential backoff, as
// ordered-op critical sections are a handful of instructions), then parks
// on futex(FUTEX_WAIT) so a descheduled or crashed lock holder does not
// burn a core in every other process. Wake-ups use FUTEX_WAKE only when a
// waiter announced itself (the kContended state), keeping the uncontended
// path a single CAS each way.
//
// Lock-class and cross-process word-access rules: docs/concurrency.md
// ("control-plane locks"). The word accesses go through the sanctioned
// std::atomic_ref helpers in common/word_access.hpp.
#ifndef CASHMERE_SYNC_SHARED_WORD_LOCK_HPP_
#define CASHMERE_SYNC_SHARED_WORD_LOCK_HPP_

#include <cstdint>

#include "cashmere/common/spin.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/word_access.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cashmere {

// The three futex states (classic Drepper three-state mutex): transitions
// kFree -> kHeld on an uncontended acquire; a blocked acquirer advertises
// itself by moving the word to kContended so Unlock knows to FUTEX_WAKE.
class CSM_CAPABILITY("mutex") SharedWordLock {
 public:
  static constexpr std::uint32_t kFree = 0;
  static constexpr std::uint32_t kHeld = 1;
  static constexpr std::uint32_t kContended = 2;

  // `word` must be 4-byte aligned, zero-initialized, and mapped (possibly
  // at different addresses) in every participating process.
  explicit SharedWordLock(std::uint32_t* word) : word_(word) {}
  SharedWordLock(const SharedWordLock&) = delete;
  SharedWordLock& operator=(const SharedWordLock&) = delete;

  void Lock() CSM_ACQUIRE() {
    std::uint32_t expected = kFree;
    if (CasWord32AcqRel(word_, expected, kHeld)) {
      return;  // uncontended
    }
    LockSlow();
  }

  void Unlock() CSM_RELEASE() {
    if (ExchangeWord32AcqRel(word_, kFree) == kContended) {
      FutexWake();
    }
  }

 private:
  void LockSlow() {
    // Spin with bounded backoff first: ordered-op critical sections are a
    // few stores long, so the lock usually frees before parking pays off.
    Backoff backoff;
    for (int i = 0; i < kSpinRounds; ++i) {
      std::uint32_t expected = kFree;
      if (CasWord32AcqRel(word_, expected, kHeld)) {
        return;
      }
      backoff.Pause();
    }
    // Park: advertise contention, then wait until the holder wakes us.
    while (ExchangeWord32AcqRel(word_, kContended) != kFree) {
      FutexWait(kContended);
    }
    // We now hold the lock but left the word at kContended, which makes the
    // eventual Unlock issue one possibly-spurious wake. That is benign and
    // required: another waiter may have parked between our exchange and now.
  }

  void FutexWait(std::uint32_t while_value) {
#if defined(__linux__)
    syscall(SYS_futex, word_, FUTEX_WAIT, while_value, nullptr, nullptr, 0);
#else
    // No futex: degrade to pure spinning (the "or-spin" half of the name).
    sched_yield();
    (void)while_value;
#endif
  }

  void FutexWake() {
#if defined(__linux__)
    syscall(SYS_futex, word_, FUTEX_WAKE, 1, nullptr, nullptr, 0);
#endif
  }

  static constexpr int kSpinRounds = 128;
  std::uint32_t* const word_;
};

class CSM_SCOPED_CAPABILITY SharedWordLockGuard {
 public:
  explicit SharedWordLockGuard(SharedWordLock& lock) CSM_ACQUIRE(lock) : lock_(lock) {
    lock_.Lock();
  }
  ~SharedWordLockGuard() CSM_RELEASE() { lock_.Unlock(); }
  SharedWordLockGuard(const SharedWordLockGuard&) = delete;
  SharedWordLockGuard& operator=(const SharedWordLockGuard&) = delete;

 private:
  SharedWordLock& lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_SYNC_SHARED_WORD_LOCK_HPP_
