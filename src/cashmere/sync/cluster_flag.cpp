#include "cashmere/sync/cluster_flag.hpp"

#include "cashmere/common/spin.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/protocol/cashmere_protocol.hpp"
#include "cashmere/runtime/context.hpp"

namespace cashmere {

ClusterFlag::ClusterFlag(const Config& cfg, McHub& hub, CashmereProtocol& protocol)
    : cfg_(cfg), hub_(hub), protocol_(protocol) {}

void ClusterFlag::Set(Context& ctx, std::uint64_t value) {
  ProtocolScope scope(ctx);
  protocol_.ReleaseSync(ctx, /*barrier_arrival=*/false);
  // Publish the setter's happens-before sequence vector before the value,
  // like set_vt_: a waiter that sees the value gates on at least the log
  // records this release published (async mode).
  PublishSeqVector(seen_seq_, ctx.seen_seq(), cfg_.units());
  // Publish the releaser's clock before the value so a waiter that sees the
  // value also sees a clock at least this late.
  const VirtTime vt =
      ctx.clock().now() + CostModel::UsToNs(cfg_.costs.mc_write_latency_us);
  VirtTime seen = set_vt_.load(std::memory_order_relaxed);
  while (seen < vt &&
         !set_vt_.compare_exchange_weak(seen, vt, std::memory_order_acq_rel)) {
  }
  hub_.AccountWrite(Traffic::kSyncObject, kWordBytes * static_cast<std::size_t>(cfg_.units()));
  // Values are event counts: sets are monotonic, so concurrent setters
  // (serialized by an application lock but racing on the flag write)
  // cannot regress the published count.
  std::uint64_t current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value, std::memory_order_acq_rel)) {
  }
  if (TraceActive()) {
    TraceEmit(EventKind::kFlagSet, kNoTracePage, 0,
              static_cast<std::uint32_t>(trace_id_), value);
  }
}

void ClusterFlag::WaitGe(Context& ctx, std::uint64_t value) {
  if (value_.load(std::memory_order_acquire) >= value) {
    // Fast path still needs acquire-side consistency to see the data the
    // flag protects.
    ProtocolScope scope(ctx);
    ctx.stats().Add(Counter::kFlagAcquires);
    ctx.clock().AdvanceTo(ctx.stats(), set_vt_.load(std::memory_order_acquire));
    if (TraceActive()) {
      TraceEmit(EventKind::kFlagWait, kNoTracePage, 0,
                static_cast<std::uint32_t>(trace_id_), value);
    }
    MergeSeqVector(ctx.seen_seq(), seen_seq_, cfg_.units());
    protocol_.AcquireSync(ctx);
    return;
  }
  ProtocolScope scope(ctx);
  ctx.stats().Add(Counter::kFlagAcquires);
  Backoff backoff;
  while (value_.load(std::memory_order_acquire) < value) {
    protocol_.Poll(ctx);
    backoff.Pause();
  }
  ctx.clock().AdvanceTo(ctx.stats(), set_vt_.load(std::memory_order_acquire));
  if (TraceActive()) {
    TraceEmit(EventKind::kFlagWait, kNoTracePage, 0,
              static_cast<std::uint32_t>(trace_id_), value);
  }
  MergeSeqVector(ctx.seen_seq(), seen_seq_, cfg_.units());
  protocol_.AcquireSync(ctx);
}

}  // namespace cashmere
