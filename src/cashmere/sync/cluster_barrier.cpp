#include "cashmere/sync/cluster_barrier.hpp"

#include "cashmere/common/spin.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/protocol/cashmere_protocol.hpp"
#include "cashmere/runtime/context.hpp"

namespace cashmere {

ClusterBarrier::ClusterBarrier(const Config& cfg, McHub& hub, CashmereProtocol& protocol,
                               bool counted)
    : cfg_(cfg), hub_(hub), protocol_(protocol), counted_(counted) {}

void ClusterBarrier::Wait(Context& ctx) {
  ProtocolScope scope(ctx);
  if (counted_ && ctx.proc() == 0) {
    ctx.stats().Add(Counter::kBarriers);  // count episodes, not arrivals
  }
  if (TraceActive()) {
    // The epoch read here equals my_epoch below: the episode cannot advance
    // until this processor's own arrival is counted.
    TraceEmit(EventKind::kBarrierArrive, kNoTracePage, 0,
              static_cast<std::uint32_t>(trace_id_),
              epoch_.load(std::memory_order_acquire));
  }

  // Arrival: flush dirty pages for which we are the last arriving local
  // writer, then announce.
  protocol_.BarrierArriveBegin(ctx);
  protocol_.ReleaseSync(ctx, /*barrier_arrival=*/true);

  const std::uint64_t my_epoch = epoch_.load(std::memory_order_acquire);
  Episode& episode = episodes_[my_epoch % 2];

  // Publish our happens-before sequence vector — including the log records
  // the arrival's ReleaseSync just published (async mode) — so every
  // departer gates on every arriver's releases.
  PublishSeqVector(episode.seen_seq, ctx.seen_seq(), cfg_.units());

  // Publish our arrival clock (max over participants drives departure).
  std::uint64_t now = ctx.clock().now();
  std::uint64_t seen = episode.max_vt.load(std::memory_order_relaxed);
  while (seen < now &&
         !episode.max_vt.compare_exchange_weak(seen, now, std::memory_order_acq_rel)) {
  }

  // Intra-node arrival through hardware shared memory; the last local
  // arriver announces the node over the Memory Channel.
  const int local_arrived =
      node_count_[ctx.node()].fetch_add(1, std::memory_order_acq_rel) + 1;
  if (local_arrived == cfg_.procs_per_node) {
    node_count_[ctx.node()].store(0, std::memory_order_release);
    hub_.AccountWrite(Traffic::kSyncObject, kWordBytes * static_cast<std::size_t>(cfg_.nodes));
    episode.node_arrivals.fetch_add(1, std::memory_order_acq_rel);
  }

  const int total_arrived = episode.arrived.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (total_arrived == cfg_.total_procs()) {
    // Last arriver: compute the departure clock, prepare the next episode's
    // slot, and release everyone.
    episode.release_vt.store(episode.max_vt.load(std::memory_order_acquire) +
                                 cfg_.costs.BarrierNs(cfg_.total_procs(), cfg_.two_level()),
                             std::memory_order_release);
    Episode& next = episodes_[(my_epoch + 1) % 2];
    next.arrived.store(0, std::memory_order_relaxed);
    next.max_vt.store(0, std::memory_order_relaxed);
    next.node_arrivals.store(0, std::memory_order_relaxed);
    for (int u = 0; u < cfg_.units(); ++u) {
      next.seen_seq[u].store(0, std::memory_order_relaxed);
    }
    epoch_.store(my_epoch + 1, std::memory_order_release);
  } else {
    Backoff backoff;
    while (epoch_.load(std::memory_order_acquire) == my_epoch) {
      protocol_.Poll(ctx);
      backoff.Pause();
    }
  }

  // Departure: reconcile clocks and run acquire-side consistency.
  ctx.clock().AdvanceTo(ctx.stats(), episode.release_vt.load(std::memory_order_acquire));
  MergeSeqVector(ctx.seen_seq(), episode.seen_seq, cfg_.units());
  protocol_.AcquireSync(ctx);
  protocol_.BarrierDepartEnd(ctx);
  if (TraceActive()) {
    TraceEmit(EventKind::kBarrierDepart, kNoTracePage, 0,
              static_cast<std::uint32_t>(trace_id_), my_epoch);
  }
}

}  // namespace cashmere
