// Shared heap: a bump allocator over the shared address range. All shared
// data is allocated before the parallel region starts (as in the paper's
// applications); allocations return heap offsets (GlobalAddr) that every
// processor translates through its own view.
#ifndef CASHMERE_RUNTIME_HEAP_HPP_
#define CASHMERE_RUNTIME_HEAP_HPP_

#include <cstddef>

#include "cashmere/common/types.hpp"

namespace cashmere {

class SharedHeap {
 public:
  explicit SharedHeap(std::size_t bytes) : capacity_(bytes) {}

  // Allocates `bytes` with the given alignment; aborts if the heap is full.
  GlobalAddr Alloc(std::size_t bytes, std::size_t align = 64);

  // Page-aligned allocation (puts the datum at the start of a fresh page,
  // useful for controlling false sharing in tests and workloads).
  GlobalAddr AllocPageAligned(std::size_t bytes) { return Alloc(bytes, kPageBytes); }

  std::size_t used() const { return used_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
};

}  // namespace cashmere

#endif  // CASHMERE_RUNTIME_HEAP_HPP_
