#include "cashmere/runtime/heap.hpp"

#include "cashmere/common/logging.hpp"

namespace cashmere {

GlobalAddr SharedHeap::Alloc(std::size_t bytes, std::size_t align) {
  CSM_CHECK(align != 0 && (align & (align - 1)) == 0);
  const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
  CSM_CHECK(aligned + bytes <= capacity_ && "shared heap exhausted; raise Config::heap_bytes");
  used_ = aligned + bytes;
  return aligned;
}

}  // namespace cashmere
