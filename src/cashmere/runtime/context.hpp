// Per-processor execution context: identity, virtual clock, statistics,
// and the application-facing API (shared pointers, synchronization,
// polling). One Context per emulated processor, bound to its thread for
// the duration of Runtime::Run.
#ifndef CASHMERE_RUNTIME_CONTEXT_HPP_
#define CASHMERE_RUNTIME_CONTEXT_HPP_

#include <atomic>
#include <cstddef>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/common/virtual_clock.hpp"

namespace cashmere {

class DiffBuffer;
class PermBatch;
class Runtime;

class Context {
 public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- Identity -------------------------------------------------------
  ProcId proc() const { return proc_; }
  NodeId node() const { return node_; }
  UnitId unit() const { return unit_; }
  int local_index() const { return local_index_; }  // index within the unit
  int total_procs() const { return total_procs_; }

  // --- Shared memory --------------------------------------------------
  // Translates a heap offset into this processor's view. The returned
  // pointer is only valid on this processor (each processor has its own
  // mapping, as on the real system).
  template <typename T>
  T* Ptr(GlobalAddr addr) const {
    return reinterpret_cast<T*>(view_base_ + addr);
  }
  std::byte* view_base() const { return view_base_; }

  // --- Synchronization (Section 2.2, "Synchronization Primitives") ----
  void LockAcquire(int lock_id);
  void LockRelease(int lock_id);
  void Barrier(int barrier_id);
  void FlagSet(int flag_id, std::uint64_t value);
  void FlagWaitGe(int flag_id, std::uint64_t value);  // wait until flag >= value
  // Reads the flag's current value WITHOUT acquire semantics: useful for
  // cheap idle-loop checks before a real FlagWaitGe.
  std::uint64_t FlagPeek(int flag_id);

  // Collective: marks the end of application initialization, enabling
  // first-touch home relocation (Section 2.3).
  void InitDone();

  // --- Polling (Figure 5) ----------------------------------------------
  // Call at loop heads, as the paper's instrumentation pass does.
  void Poll();

  // Spins (polling) while `pred()` holds. The wait's host CPU time is not
  // charged as user compute — the processor is waiting, not working — so
  // virtual time advances only through the event that ends the wait (e.g.
  // a subsequent FlagWaitGe reconciling with the setter's clock).
  template <typename Pred>
  void IdleWhile(Pred pred) {
    clock_.EnterProtocol(stats_);
    while (pred()) {
      Poll();
    }
    clock_.ExitProtocol();
  }

  // Software fault mode: explicit access checks (FaultMode::kSoftware).
  void EnsureRead(const void* addr, std::size_t bytes = 1);
  void EnsureWrite(void* addr, std::size_t bytes = 1);

  // --- Instrumentation --------------------------------------------------
  VirtualClock& clock() { return clock_; }
  Stats& stats() { return stats_; }
  Runtime& runtime() const { return *runtime_; }

  // Preallocated per-processor RLE diff scratch (fixed capacity, so the
  // flush paths — including shootdowns inside the SIGSEGV fault handler —
  // never allocate).
  DiffBuffer& diff_scratch() const { return *diff_scratch_; }

  // Preallocated per-processor permission batch (vm/perm_batch.hpp): the
  // protocol queues mprotect transitions here and commits coalesced ranges
  // at episode boundaries. Same allocation-free discipline as diff_scratch.
  PermBatch& perm_batch() const { return *perm_batch_; }

  // Reusable release-time page list (capacity reserved up front, so
  // ReleaseSync never allocates on the hot path).
  std::vector<PageId>& release_scratch() const { return *release_scratch_; }

  // Async release-path coherence: the per-unit log sequences this
  // processor's releases and acquired sync objects have made it depend on
  // (indexed by unit). Written only by the owning processor; sync objects
  // max-fold it through their atomic vectors at release/acquire
  // (protocol/coherence_log.hpp). AcquireSync gates on exactly these
  // entries — the happens-before predecessors — never on unrelated
  // in-flight traffic.
  std::uint64_t* seen_seq() { return seen_seq_; }
  const std::uint64_t* seen_seq() const { return seen_seq_; }

  // The current thread's context (bound by Runtime::Run). Null outside.
  static Context* Current();
  static void Bind(Context* ctx);

  // --- Hang diagnostics --------------------------------------------------
  // A coarse "what am I doing" tag, dumped by the watchdog when a run
  // stops making progress. Kinds: 0 user, 1 fault, 2 await-reply, 3 lock,
  // 4 barrier, 5 flag-wait, 6 release, 7 acquire-sync.
  void SetDebugState(int kind, std::uint64_t detail) {
    debug_state_.store((static_cast<std::uint64_t>(kind) << 56) | (detail & 0xffffffffull),
                       std::memory_order_relaxed);
  }
  std::uint64_t debug_state() const { return debug_state_.load(std::memory_order_relaxed); }

 private:
  friend class Runtime;

  ProcId proc_ = -1;
  NodeId node_ = -1;
  UnitId unit_ = -1;
  int local_index_ = 0;
  int total_procs_ = 0;
  std::byte* view_base_ = nullptr;
  Runtime* runtime_ = nullptr;
  DiffBuffer* diff_scratch_ = nullptr;
  PermBatch* perm_batch_ = nullptr;
  std::vector<PageId>* release_scratch_ = nullptr;
  VirtualClock clock_;
  Stats stats_;
  std::uint64_t seen_seq_[kMaxProcs] = {};
  std::atomic<std::uint64_t> debug_state_{0};
  std::uint64_t poll_count_pending_ = 0;
};

}  // namespace cashmere

#endif  // CASHMERE_RUNTIME_CONTEXT_HPP_
