// The Cashmere runtime: brings up the emulated cluster (arenas, views,
// Memory Channel, protocol, synchronization objects), launches one thread
// per emulated processor, routes page faults into the protocol, and
// aggregates statistics into the paper's Table 3 / Figure 6 shape.
//
// Typical use:
//   Config cfg;                       // 8 nodes x 4 processors, 2L, ...
//   Runtime rt(cfg);
//   GlobalAddr data = rt.Alloc(bytes);
//   rt.Run([&](Context& ctx) { ... parallel program ... });
//   const StatsReport& report = rt.report();
#ifndef CASHMERE_RUNTIME_RUNTIME_HPP_
#define CASHMERE_RUNTIME_RUNTIME_HPP_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/msg/message_layer.hpp"
#include "cashmere/protocol/cashmere_protocol.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/home_table.hpp"
#include "cashmere/protocol/page_table.hpp"
#include "cashmere/protocol/twin_pool.hpp"
#include "cashmere/protocol/write_notice.hpp"
#include "cashmere/runtime/context.hpp"
#include "cashmere/runtime/heap.hpp"
#include "cashmere/sync/cluster_barrier.hpp"
#include "cashmere/sync/cluster_flag.hpp"
#include "cashmere/sync/cluster_lock.hpp"
#include "cashmere/vm/arena.hpp"
#include "cashmere/vm/fault_dispatcher.hpp"
#include "cashmere/vm/perm_batch.hpp"
#include "cashmere/vm/view.hpp"

namespace cashmere {

// Synchronization object table sizes (application-visible ids).
struct SyncShape {
  int locks = 1024;
  int barriers = 16;
  int flags = 4096;
};

class Runtime : public FaultSink {
 public:
  // `transport` optionally binds an externally-owned McTransport (it must
  // outlive the Runtime); used when one transport spans several Runtimes,
  // e.g. the auto-dilation rerun reusing a bootstrapped shm cluster. By
  // default the Runtime builds its own from cfg.mc.transport.
  explicit Runtime(Config cfg, SyncShape sync = {}, McTransport* transport = nullptr);
  ~Runtime() override;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Setup (before Run) ----------------------------------------------
  GlobalAddr Alloc(std::size_t bytes, std::size_t align = 64) {
    return heap_.Alloc(bytes, align);
  }
  template <typename T>
  GlobalAddr AllocArray(std::size_t n, std::size_t align = 64) {
    return heap_.Alloc(n * sizeof(T), align);
  }
  SharedHeap& heap() { return heap_; }

  // Direct master-copy access for initialization before Run and result
  // extraction after Run (no protocol involvement).
  void CopyIn(GlobalAddr addr, const void* src, std::size_t bytes);
  void CopyOut(GlobalAddr addr, void* dst, std::size_t bytes) const;
  template <typename T>
  T Read(GlobalAddr addr) const {
    T value;
    CopyOut(addr, &value, sizeof(T));
    return value;
  }

  // --- Execution ---------------------------------------------------------
  // Runs `body` on every emulated processor (one thread each). May be
  // called repeatedly; coherence state persists across phases while
  // statistics and virtual clocks reset, so report() covers the last Run.
  void Run(const std::function<void(Context&)>& body);

  // --- Results ------------------------------------------------------------
  const StatsReport& report() const { return report_; }
  const Config& config() const { return cfg_; }
  McHub& hub() { return hub_; }
  McTransport& transport() { return *transport_; }
  CashmereProtocol& protocol() { return *protocol_; }
  HomeTable& homes() { return homes_; }
  // Non-null iff cfg.async.release: the per-unit coherence logs the cache
  // agents drain (protocol/coherence_log.hpp).
  CoherenceEngine* coherence() { return coh_.get(); }
  // Non-null iff cfg.trace.enabled; holds the last Run's event streams
  // (Run resets the rings at entry). With async.release on, rings
  // [total_procs, total_procs + units) belong to the cache agents.
  TraceLog* trace_log() { return trace_log_.get(); }
  // Transfers ownership of the trace log (e.g. to outlive the Runtime for
  // post-run export/checking). Further Runs on this Runtime trace nothing.
  std::unique_ptr<TraceLog> TakeTraceLog() { return std::move(trace_log_); }

  // --- Internal plumbing (used by Context and the fault dispatcher) -------
  bool HandleFault(void* addr, bool is_write) override;
  ClusterLock& LockAt(int id);
  ClusterBarrier& BarrierAt(int id);
  ClusterFlag& FlagAt(int id);
  void EnableFirstTouchCollective(Context& ctx);
  void BumpProgress() { progress_.fetch_add(1, std::memory_order_relaxed); }
  Context& ContextOf(ProcId proc) { return contexts_[static_cast<std::size_t>(proc)]; }

 private:
  void WatchdogLoop();

  Config cfg_;
  // Transport precedes hub_: the hub binds it at construction. owned_ is
  // null when the caller passed an external transport.
  std::unique_ptr<McTransport> owned_transport_;
  McTransport* transport_;
  McHub hub_;
  std::vector<std::unique_ptr<Arena>> arenas_;    // per unit
  std::vector<std::unique_ptr<View>> views_;      // per processor
  std::vector<std::unique_ptr<TwinPool>> twins_;  // per unit
  std::vector<std::unique_ptr<UnitState>> units_;
  // homes_ precedes dir_: the sharded backend reads shard ownership from
  // the home table (MakeDirectory takes it by reference at construction).
  HomeTable homes_;
  std::unique_ptr<DirectoryBackend> dir_;
  WriteNoticeBoard notices_;
  MessageLayer msg_;
  // Async release-path coherence (cfg.async.release): per-unit logs; the
  // agent threads themselves live only for the duration of each Run.
  std::unique_ptr<CoherenceEngine> coh_;
  std::unique_ptr<CashmereProtocol> protocol_;
  SharedHeap heap_;
  std::deque<Context> contexts_;
  // Per-processor RLE diff scratch, preallocated so flush paths (including
  // the SIGSEGV fault handler) never allocate.
  std::vector<std::unique_ptr<DiffBuffer>> diff_scratch_;
  // Per-processor permission batches and release page lists, preallocated
  // under the same no-allocation discipline.
  std::vector<std::unique_ptr<PermBatch>> perm_batch_;
  std::vector<std::unique_ptr<std::vector<PageId>>> release_scratch_;
  std::deque<ClusterLock> locks_;
  std::deque<ClusterBarrier> barriers_;
  std::deque<ClusterFlag> flags_;
  // Internal barrier for InitDone and run start/end (not an app barrier).
  std::unique_ptr<ClusterBarrier> internal_barrier_;
  std::unique_ptr<TraceLog> trace_log_;
  StatsReport report_;
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<bool> running_{false};
  bool ran_ = false;
};

}  // namespace cashmere

#endif  // CASHMERE_RUNTIME_RUNTIME_HPP_
