#include "cashmere/runtime/context.hpp"

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {

namespace {
thread_local Context* g_current_context = nullptr;
}  // namespace

Context* Context::Current() { return g_current_context; }

void Context::Bind(Context* ctx) { g_current_context = ctx; }

void Context::LockAcquire(int lock_id) {
  SetDebugState(3, static_cast<std::uint64_t>(lock_id));
  runtime_->LockAt(lock_id).Acquire(*this);
  SetDebugState(0, 0);
  runtime_->BumpProgress();
}

void Context::LockRelease(int lock_id) {
  runtime_->LockAt(lock_id).Release(*this);
  runtime_->BumpProgress();
}

void Context::Barrier(int barrier_id) {
  SetDebugState(4, static_cast<std::uint64_t>(barrier_id));
  runtime_->BarrierAt(barrier_id).Wait(*this);
  SetDebugState(0, 0);
  runtime_->BumpProgress();
}

void Context::FlagSet(int flag_id, std::uint64_t value) {
  runtime_->FlagAt(flag_id).Set(*this, value);
  runtime_->BumpProgress();
}

void Context::FlagWaitGe(int flag_id, std::uint64_t value) {
  SetDebugState(5, static_cast<std::uint64_t>(flag_id));
  runtime_->FlagAt(flag_id).WaitGe(*this, value);
  SetDebugState(0, 0);
  runtime_->BumpProgress();
}

std::uint64_t Context::FlagPeek(int flag_id) { return runtime_->FlagAt(flag_id).Peek(); }

void Context::InitDone() { runtime_->EnableFirstTouchCollective(*this); }

void Context::Poll() {
  runtime_->protocol().Poll(*this);
  runtime_->BumpProgress();
}

void Context::EnsureRead(const void* addr, std::size_t bytes) {
  const auto offset =
      static_cast<GlobalAddr>(static_cast<const std::byte*>(addr) - view_base_);
  const PageId first = PageOf(offset);
  const PageId last = PageOf(offset + (bytes == 0 ? 0 : bytes - 1));
  for (PageId page = first; page <= last; ++page) {
    if (runtime_->protocol().PageState(unit_, page).PermOfLocalRelaxed(local_index_) ==
        Perm::kInvalid) {
      runtime_->protocol().OnFault(*this, page, /*is_write=*/false);
    }
  }
}

void Context::EnsureWrite(void* addr, std::size_t bytes) {
  const auto offset = static_cast<GlobalAddr>(static_cast<std::byte*>(addr) - view_base_);
  const PageId first = PageOf(offset);
  const PageId last = PageOf(offset + (bytes == 0 ? 0 : bytes - 1));
  const GlobalAddr end = offset + bytes;
  for (PageId page = first; page <= last; ++page) {
    if (runtime_->protocol().PageState(unit_, page).PermOfLocalRelaxed(local_index_) !=
        Perm::kReadWrite) {
      runtime_->protocol().OnFault(*this, page, /*is_write=*/true);
    }
    // Software fault mode sees every write, so dirty-region tracking is
    // exact: mark the written blocks so diff scans skip the rest of the
    // page. (In SIGSEGV mode writes are invisible and the page's map stays
    // conservatively full.)
    const GlobalAddr page_base = static_cast<GlobalAddr>(page) * kPageBytes;
    const GlobalAddr lo = offset > page_base ? offset : page_base;
    const GlobalAddr hi = end < page_base + kPageBytes ? end : page_base + kPageBytes;
    runtime_->protocol().NoteLocalWrite(unit_, local_index_, page,
                                        static_cast<std::size_t>(lo - page_base),
                                        static_cast<std::size_t>(hi - lo));
  }
}

}  // namespace cashmere
