#include "cashmere/runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "cashmere/common/calibration.hpp"
#include "cashmere/common/logging.hpp"
#include "cashmere/common/ownership.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {

Runtime::Runtime(Config cfg, SyncShape sync, McTransport* transport)
    : cfg_(std::move(cfg)),
      owned_transport_(transport == nullptr ? MakeTransport(cfg_) : nullptr),
      transport_(transport != nullptr ? transport : owned_transport_.get()),
      hub_(cfg_.units(), transport_),
      homes_(((void)cfg_.Validate(), cfg_)),
      dir_(MakeDirectory(cfg_, hub_, homes_)),
      notices_(cfg_, hub_),
      msg_(cfg_),
      heap_(cfg_.heap_bytes) {
  if (cfg_.cost.scale != 1.0 && cfg_.cost.scale > 0.0) {
    cfg_.costs = cfg_.costs.ScaledBy(cfg_.cost.scale);
  }
  hub_.set_ns_per_byte(cfg_.costs.mc_ns_per_byte);
  const int units = cfg_.units();
  arenas_.reserve(static_cast<std::size_t>(units));
  twins_.reserve(static_cast<std::size_t>(units));
  units_.reserve(static_cast<std::size_t>(units));
  // A multi-process transport restricts the shapes it can host: each OS
  // process is one node, so the coherence unit must be the node (two-level
  // protocols) and the launched cluster must match the config.
  if (transport_->cluster_processes() > 1) {
    CSM_CHECK(cfg_.two_level() &&
              "shm cluster mode requires a two-level protocol (unit == node)");
    CSM_CHECK(cfg_.nodes == transport_->cluster_processes() &&
              "config nodes must match the launched process count");
  }
  transport_->BeginBoot();
  for (UnitId u = 0; u < units; ++u) {
    // The transport hosts the backing storage when it spans processes (the
    // owning node's peer creates the memfd and passes it back); otherwise
    // the arena creates its own segment locally.
    const int seg_fd = transport_->ArenaFdFor(u, cfg_.heap_bytes);
    arenas_.push_back(seg_fd >= 0
                          ? std::make_unique<Arena>(seg_fd, cfg_.heap_bytes)
                          : std::make_unique<Arena>(cfg_.heap_bytes, "cashmere-arena"));
    Arena& arena = *arenas_.back();
    arena.set_segment(transport_->RegisterArena(
        SegmentInfo{arena.fd(), arena.size(), u}, arena.protocol_base()));
    twins_.push_back(std::make_unique<TwinPool>(cfg_.heap_bytes));
    units_.push_back(std::make_unique<UnitState>(cfg_, u));
  }

  views_.reserve(static_cast<std::size_t>(cfg_.total_procs()));
  for (ProcId p = 0; p < cfg_.total_procs(); ++p) {
    const UnitId u = cfg_.UnitOfProc(p);
    views_.push_back(std::make_unique<View>(cfg_, *arenas_[static_cast<std::size_t>(u)]));
    if (cfg_.home_opt && !cfg_.two_level()) {
      // Home-node optimization: map master frames for superpages whose home
      // processor shares this processor's SMP node.
      for (std::size_t sp = 0; sp < homes_.superpages(); ++sp) {
        const UnitId home = homes_.HomeOfSuperpage(sp);
        if (home != u &&
            cfg_.NodeOfProc(cfg_.FirstProcOfUnit(home)) == cfg_.NodeOfProc(p)) {
          views_.back()->RemapSuperpage(sp, *arenas_[static_cast<std::size_t>(home)]);
        }
      }
    }
    if (cfg_.fault_mode == FaultMode::kSoftware) {
      // Software fault mode: accesses are checked explicitly, so the view
      // is opened whole with a single ranged mprotect.
      views_.back()->ProtectRange(0, cfg_.pages(), Perm::kReadWrite);
    }
  }

  CashmereProtocol::Deps deps;
  deps.cfg = &cfg_;
  deps.hub = &hub_;
  deps.msg = &msg_;
  deps.dir = dir_.get();
  deps.homes = &homes_;
  deps.notices = &notices_;
  deps.arenas = &arenas_;
  deps.views = &views_;
  deps.twins = &twins_;
  deps.units = &units_;
  if (cfg_.AsyncRelease()) {
    coh_ = std::make_unique<CoherenceEngine>(cfg_);
    deps.coh = coh_.get();
  }
  protocol_ = std::make_unique<CashmereProtocol>(deps);

  for (int i = 0; i < sync.locks; ++i) {
    locks_.emplace_back(cfg_, hub_, *protocol_);
    locks_.back().set_trace_id(i);
  }
  for (int i = 0; i < sync.barriers; ++i) {
    barriers_.emplace_back(cfg_, hub_, *protocol_);
    barriers_.back().set_trace_id(i);
  }
  for (int i = 0; i < sync.flags; ++i) {
    flags_.emplace_back(cfg_, hub_, *protocol_);
    flags_.back().set_trace_id(i);
  }
  internal_barrier_ =
      std::make_unique<ClusterBarrier>(cfg_, hub_, *protocol_, /*counted=*/false);
  if (cfg_.trace.enabled) {
    // One ring per processor, plus one per cache agent in async mode
    // (rings [total_procs, total_procs + units)).
    const int rings =
        cfg_.total_procs() + (cfg_.AsyncRelease() ? cfg_.units() : 0);
    trace_log_ = std::make_unique<TraceLog>(rings, cfg_.trace.ring_events);
  }

  for (ProcId p = 0; p < cfg_.total_procs(); ++p) {
    contexts_.emplace_back();
    Context& ctx = contexts_.back();
    ctx.proc_ = p;
    ctx.node_ = cfg_.NodeOfProc(p);
    ctx.unit_ = cfg_.UnitOfProc(p);
    ctx.local_index_ = p - cfg_.FirstProcOfUnit(ctx.unit_);
    ctx.total_procs_ = cfg_.total_procs();
    ctx.view_base_ = views_[static_cast<std::size_t>(p)]->base();
    ctx.runtime_ = this;
    diff_scratch_.push_back(std::make_unique<DiffBuffer>());
    ctx.diff_scratch_ = diff_scratch_.back().get();
    perm_batch_.push_back(std::make_unique<PermBatch>());
    // &ctx.stats_ is stable: contexts_ is a deque and never shrinks.
    perm_batch_.back()->Bind(&views_, &CashmereProtocol::ResolveQueuedPerm,
                             protocol_.get(), &ctx.stats_);
    ctx.perm_batch_ = perm_batch_.back().get();
    release_scratch_.push_back(std::make_unique<std::vector<PageId>>());
    // Dirty + NLE lists can each hold every page once.
    release_scratch_.back()->reserve(2 * cfg_.pages());
    ctx.release_scratch_ = release_scratch_.back().get();
  }
}

Runtime::~Runtime() = default;

ClusterLock& Runtime::LockAt(int id) {
  CSM_CHECK(id >= 0 && static_cast<std::size_t>(id) < locks_.size());
  return locks_[static_cast<std::size_t>(id)];
}

ClusterBarrier& Runtime::BarrierAt(int id) {
  CSM_CHECK(id >= 0 && static_cast<std::size_t>(id) < barriers_.size());
  return barriers_[static_cast<std::size_t>(id)];
}

ClusterFlag& Runtime::FlagAt(int id) {
  CSM_CHECK(id >= 0 && static_cast<std::size_t>(id) < flags_.size());
  return flags_[static_cast<std::size_t>(id)];
}

void Runtime::CopyIn(GlobalAddr addr, const void* src, std::size_t bytes) {
  CSM_CHECK(!running_.load());
  const auto* s = static_cast<const std::byte*>(src);
  std::size_t done = 0;
  while (done < bytes) {
    const GlobalAddr a = addr + done;
    const PageId page = PageOf(a);
    const std::size_t in_page = std::min(bytes - done, kPageBytes - PageOffset(a));
    std::byte* master = protocol_->MasterPtr(page) + PageOffset(a);
    std::copy_n(s + done, in_page, master);
    done += in_page;
  }
}

void Runtime::CopyOut(GlobalAddr addr, void* dst, std::size_t bytes) const {
  auto* d = static_cast<std::byte*>(dst);
  std::size_t done = 0;
  while (done < bytes) {
    const GlobalAddr a = addr + done;
    const PageId page = PageOf(a);
    const std::size_t in_page = std::min(bytes - done, kPageBytes - PageOffset(a));
    const std::byte* master = protocol_->MasterPtr(page) + PageOffset(a);
    std::copy_n(master, in_page, d + done);
    done += in_page;
  }
}

bool Runtime::HandleFault(void* addr, bool is_write) {
  Context* ctx = Context::Current();
  if (ctx == nullptr || ctx->runtime_ != this) {
    return false;
  }
  View& view = *views_[static_cast<std::size_t>(ctx->proc())];
  if (!view.Contains(addr)) {
    // Check whether the address belongs to another processor's view: that
    // is a program error (views are per-processor, like per-process
    // mappings on the real system), so crash loudly.
    for (ProcId p = 0; p < cfg_.total_procs(); ++p) {
      if (p != ctx->proc() && views_[static_cast<std::size_t>(p)]->Contains(addr)) {
        // csm-lint: allow(fault-path-signal-safety) -- program-error
        // diagnostic on the crash path: the faulting thread touched
        // another processor's view and cannot continue
        std::fprintf(stderr,
                     "cashmere: processor %d touched processor %d's view at %p\n",
                     ctx->proc(), p, addr);
        return false;
      }
    }
    return false;
  }
  BumpProgress();
  protocol_->OnFault(*ctx, view.PageOfAddr(addr), is_write);
  return true;
}

void Runtime::EnableFirstTouchCollective(Context& ctx) {
  internal_barrier_->Wait(ctx);
  if (ctx.proc() == 0) {
    homes_.EnableFirstTouch();
  }
  internal_barrier_->Wait(ctx);
}

void Runtime::WatchdogLoop() {
  using Clock = std::chrono::steady_clock;
  // "Progress" means completed work, not spinning: sampled from the
  // per-processor event counters (racy reads are fine for a heuristic).
  // A contended-but-live lock keeps acquiring; a deadlocked run freezes
  // every counter.
  const auto sample = [this] {
    std::uint64_t total = progress_.load(std::memory_order_relaxed) + msg_.heartbeat();
    for (const Context& ctx : contexts_) {
      const Stats& s = ctx.stats_;
      total += s.Get(Counter::kLockAcquires) + s.Get(Counter::kFlagAcquires) +
               s.Get(Counter::kBarriers) + s.Get(Counter::kReadFaults) +
               s.Get(Counter::kWriteFaults) + s.Get(Counter::kPageTransfers) +
               s.Get(Counter::kMessagesHandled) + s.Get(Counter::kPageFlushes);
    }
    return total;
  };
  std::uint64_t last_progress = sample();
  auto last_change = Clock::now();
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const std::uint64_t p = sample();
    if (p != last_progress) {
      last_progress = p;
      last_change = Clock::now();
      continue;
    }
    const double stalled =
        std::chrono::duration<double>(Clock::now() - last_change).count();
    if (cfg_.watchdog_seconds > 0 && stalled > cfg_.watchdog_seconds) {
      std::fprintf(stderr,
                   "cashmere: watchdog: no progress for %.0f s (%s) — aborting\n",
                   stalled, cfg_.Describe().c_str());
      for (const Context& ctx : contexts_) {
        const std::uint64_t st = ctx.debug_state();
        std::fprintf(stderr, "  p%-2d state=%llu detail=%llu vt=%.6f\n", ctx.proc(),
                     (unsigned long long)(st >> 56),
                     (unsigned long long)(st & 0xffffffffull),
                     static_cast<double>(ctx.clock_.now()) / 1e9);
      }
      for (std::size_t i = 0; i < locks_.size(); ++i) {
        if (locks_[i].DebugBusy()) {
          locks_[i].DebugDump(static_cast<int>(i));
        }
      }
      for (UnitId u = 0; u < cfg_.units(); ++u) {
        for (PageId page = 0; page < cfg_.pages(); ++page) {
          PageLocal& pl = protocol_->PageState(u, page);
          const bool fip = pl.fetch_in_progress.load(std::memory_order_relaxed);
          // excl/twin are lock-guarded: sample them while the probe holds
          // the lock (the seed read them after Unlock — a data race). When
          // the lock is busy they are unknown, reported as -1.
          int excl = -1;
          int twin = -1;
          const bool got = pl.lock.TryLock();
          if (got) {
            excl = pl.exclusive ? 1 : 0;
            twin = pl.twin_valid ? 1 : 0;
            pl.lock.Unlock();
          }
          if (fip || !got) {
            std::fprintf(stderr,
                         "  unit=%d page=%u pl=%x fip=%d lock_held=%d excl=%d twin=%d\n", u,
                         page,
                         (unsigned)(reinterpret_cast<std::uintptr_t>(&pl) & 0xffffffffu),
                         fip ? 1 : 0, got ? 0 : 1, excl, twin);
          }
        }
      }
      if (trace_log_) {
        // Live trace drain: dump each processor's retained ring tail so a
        // stall shows *what the protocol was doing*, not just where each
        // processor is parked. DebugTail reads race the (possibly still
        // appending) owners by design; a torn record at worst prints one
        // nonsense line in a crash dump.
        std::fprintf(stderr, "cashmere: watchdog: trace ring tails (racy read):\n");
        constexpr std::size_t kTailEvents = 16;
        TraceEvent tail[kTailEvents];
        // trace_log_->procs() covers the cache-agent rings too (async mode).
        for (ProcId tp = 0; tp < trace_log_->procs(); ++tp) {
          const std::size_t n = trace_log_->ring(tp).DebugTail(tail, kTailEvents);
          for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent& e = tail[i];
            std::fprintf(stderr,
                         "  p%-2d %-18s page=%d seq=%u a0=%u a1=%llu vt=%.6f\n", tp,
                         EventKindName(static_cast<EventKind>(e.kind)),
                         e.page == kNoTracePage ? -1 : static_cast<int>(e.page), e.seq,
                         e.a0, (unsigned long long)e.a1,
                         static_cast<double>(e.vt) / 1e9);
          }
        }
      }
      std::abort();
    }
  }
}

void Runtime::Run(const std::function<void(Context&)>& body) {
  // Run may be called repeatedly: protocol state (cached pages, homes)
  // persists across phases; per-processor statistics and clocks reset so
  // each report covers one Run.
  ran_ = true;
  for (Context& ctx : contexts_) {
    ctx.stats_ = Stats{};
  }
  if (trace_log_) {
    trace_log_->ResetAll();
  }
  const double scale = cfg_.cost.time_scale > 0 ? cfg_.cost.time_scale : HostToAlphaTimeScale();

  // Cluster-wide rendezvous before compute: in shm cluster mode this is the
  // control plane's barrier of last resort (proves every peer process is
  // alive and serving); a no-op for in-process transports.
  transport_->BeginRun();

  if (cfg_.fault_mode == FaultMode::kSigsegv) {
    FaultDispatcher::Instance().Register(this);
  }
  running_.store(true, std::memory_order_release);
  std::thread watchdog([this] { WatchdogLoop(); });

  // Cache-agent threads (async release-path coherence): one per unit,
  // spawned before the processor threads so the logs drain from the first
  // publish. Each agent owns its own clock, stats, and (when tracing)
  // ring, under agent proc id total_procs + unit — ids beyond kMaxProcs
  // never index per-processor protocol state; they exist for the
  // ownership checker and the trace stream.
  struct AgentState {
    VirtualClock clock;
    Stats stats;
  };
  std::deque<AgentState> agent_states;
  std::vector<std::thread> agent_threads;
  std::atomic<bool> agents_stop{false};
  if (coh_) {
    for (UnitId u = 0; u < cfg_.units(); ++u) {
      agent_states.emplace_back();
    }
    for (UnitId u = 0; u < cfg_.units(); ++u) {
      agent_threads.emplace_back([this, u, scale, &agent_states, &agents_stop] {
        AgentState& as = agent_states[static_cast<std::size_t>(u)];
        const ProcId agent_id = cfg_.total_procs() + u;
        OwnershipBindThread(agent_id, u);
        as.clock.Start(scale);
        if (trace_log_) {
          TraceBindThread(&trace_log_->ring(agent_id), &as.clock, agent_id);
        }
        CoherenceLog& log = coh_->LogOf(u);
        Backoff backoff;
        while (true) {
          const CoherenceRecord* rec = log.Peek();
          if (rec == nullptr) {
            // Drain-before-exit: the stop flag is only honoured on an
            // empty log, so every published record is applied even when
            // stop raced a publish.
            if (agents_stop.load(std::memory_order_acquire)) {
              break;
            }
            backoff.Pause();
            continue;
          }
          backoff.Reset();
          // The apply begins no earlier than the publish; the gap (the
          // agent was busy or idle) is the pipeline's latency, visible to
          // acquirers only through the gate.
          as.clock.AdvanceTo(as.stats, rec->publish_vt);
          protocol_->AgentApply(u, *rec, as.clock, as.stats);
          log.PopApplied(as.clock.now());
        }
        TraceUnbindThread();
        OwnershipUnbindThread();
      });
    }
  }

  std::vector<VirtTime> final_vt(static_cast<std::size_t>(cfg_.total_procs()), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg_.total_procs()));
  for (ProcId p = 0; p < cfg_.total_procs(); ++p) {
    threads.emplace_back([this, p, scale, &body, &final_vt] {
      Context& ctx = contexts_[static_cast<std::size_t>(p)];
      Context::Bind(&ctx);
      // Declare this thread's identity to the single-writer ownership
      // checker: it is the sole legitimate writer of processor p's stats,
      // trace ring, and dirty-map shards.
      OwnershipBindThread(p, ctx.unit());
      ctx.clock().Start(scale);
      if (trace_log_) {
        TraceBindThread(&trace_log_->ring(p), &ctx.clock(), p);
      }
      body(ctx);
      ctx.clock().AccrueUser(ctx.stats());
      final_vt[static_cast<std::size_t>(p)] = ctx.clock().now();
      // Quiesce: flush outstanding modifications so master copies hold the
      // final data for CopyOut, then drain in two collective steps.
      protocol_->ReleaseSync(ctx, /*barrier_arrival=*/false);
      internal_barrier_->Wait(ctx);
      if (ctx.local_index() == 0) {
        protocol_->FinalFlush(ctx);
      }
      internal_barrier_->Wait(ctx);
      TraceUnbindThread();
      OwnershipUnbindThread();
      Context::Bind(nullptr);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Stop the agents only after every processor thread has finished: the
  // final internal barrier's gated AcquireSync has already forced all
  // published records to be applied, and the drain-before-exit loop covers
  // any straggler, so every log is empty before Run returns (CopyOut reads
  // master copies the agents no longer touch).
  agents_stop.store(true, std::memory_order_release);
  for (auto& t : agent_threads) {
    t.join();
  }
  running_.store(false, std::memory_order_release);
  watchdog.join();
  if (cfg_.fault_mode == FaultMode::kSigsegv) {
    FaultDispatcher::Instance().Unregister(this);
  }
  // Post-run transport handshake: the shm backend verifies cross-process
  // visibility (peer checksums of every remote segment against ours); all
  // master copies are final here — every processor and agent has joined.
  transport_->EndRun();

  if (trace_log_) {
    // Fold ring counters into per-processor stats after the join (the join
    // orders the writers' final appends before these reads).
    for (ProcId p = 0; p < cfg_.total_procs(); ++p) {
      const TraceRing& ring = trace_log_->ring(p);
      Stats& s = contexts_[static_cast<std::size_t>(p)].stats_;
      s.Add(Counter::kTraceEvents, ring.total());
      s.Add(Counter::kTraceDrops, ring.dropped());
    }
    // Agent rings fold into the agents' own stats so the counters reach
    // the report through the same path as everything else below.
    for (std::size_t a = 0; a < agent_states.size(); ++a) {
      const TraceRing& ring = trace_log_->ring(cfg_.total_procs() + static_cast<int>(a));
      agent_states[a].stats.Add(Counter::kTraceEvents, ring.total());
      agent_states[a].stats.Add(Counter::kTraceDrops, ring.dropped());
    }
  }

  report_ = StatsReport{};
  for (Context& ctx : contexts_) {
    report_.total += ctx.stats_;
    report_.user_host_ns += ctx.clock_.user_host_ns();
  }
  // Agent counters (applies, replayed diff bytes, deferred write notices)
  // fold into the totals — kDiffRunApplyBytes must keep matching
  // kDiffRunBytes across modes — but agent *time* does not: Figure 6's
  // breakdown covers processor execution time, and the agents' applied
  // time reaches acquirers through the gate reconciliation instead.
  for (const AgentState& as : agent_states) {
    for (int c = 0; c < kNumCounters; ++c) {
      report_.total.Add(static_cast<Counter>(c), as.stats.Get(static_cast<Counter>(c)));
    }
  }
  report_.total.counts[static_cast<int>(Counter::kDataBytes)] = hub_.DataBytes();
  // Backend-global directory instrumentation (cumulative across Runs, like
  // the hub byte counters above).
  report_.total.counts[static_cast<int>(Counter::kDirCacheHits)] = dir_->CacheHits();
  report_.total.counts[static_cast<int>(Counter::kDirSegmentsAllocated)] =
      dir_->SegmentsAllocated();
  report_.exec_time_ns = *std::max_element(final_vt.begin(), final_vt.end());
}

}  // namespace cashmere
