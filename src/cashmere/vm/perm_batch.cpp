#include "cashmere/vm/perm_batch.hpp"

#include <algorithm>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/vm/view.hpp"

namespace cashmere {

void PermBatch::Add(ProcId proc, PageId page, Perm perm) {
  if (size_ == kCapacity) {
    Commit();
  }
  entries_[size_] = Entry{page, static_cast<std::int32_t>(proc),
                          static_cast<std::uint16_t>(size_),
                          static_cast<std::uint8_t>(perm)};
  ++size_;
}

PermBatch::CommitStats PermBatch::Commit() {
  CommitStats cs;
  if (size_ == 0) {
    return cs;
  }
  cs.entries = size_;
  // std::sort over the preallocated array: no allocation, signal-safe.
  std::sort(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(size_),
            [](const Entry& a, const Entry& b) {
              if (a.proc != b.proc) {
                return a.proc < b.proc;
              }
              if (a.page != b.page) {
                return a.page < b.page;
              }
              return a.seq < b.seq;
            });
  // Last-write-wins: keep only the newest entry per (proc, page). The
  // survivors stay sorted, so coalescing below is a single forward scan.
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    if (i + 1 < size_ && entries_[i].proc == entries_[i + 1].proc &&
        entries_[i].page == entries_[i + 1].page) {
      continue;
    }
    entries_[n++] = entries_[i];
  }

  std::size_t i = 0;
  while (i < n) {
    const ProcId proc = entries_[i].proc;
    CSM_CHECK(views_ != nullptr &&
              static_cast<std::size_t>(proc) < views_->size());
    View& view = *(*views_)[static_cast<std::size_t>(proc)];
    SpinLockGuard guard(view.commit_lock());
    PageId run_first = 0;
    std::size_t run_count = 0;
    Perm run_perm = Perm::kInvalid;
    const auto flush_run = [&]() {
      if (run_count == 0) {
        return;
      }
      view.ProtectRangeLocked(run_first, run_count, run_perm);
      if (TraceActive()) {
        TraceEmit(EventKind::kProtectRange, run_first, 0,
                  static_cast<std::uint32_t>(run_perm),
                  (static_cast<std::uint64_t>(static_cast<std::uint32_t>(proc)) << 32) |
                      static_cast<std::uint64_t>(run_count));
      }
      ++cs.syscalls;
      cs.pages_applied += run_count;
      run_count = 0;
    };
    for (; i < n && entries_[i].proc == proc; ++i) {
      const PageId page = entries_[i].page;
      Perm perm = static_cast<Perm>(entries_[i].perm);
      if (resolver_ != nullptr) {
        // Re-read the protocol's current truth: a transition that raced in
        // after this entry was queued supersedes the queued hint.
        perm = resolver_(resolver_ctx_, proc, page, perm);
      }
      if (view.PermOfLocked(page) == perm) {
        ++cs.pages_elided;
        continue;
      }
      if (run_count != 0 && page == run_first + run_count && perm == run_perm) {
        ++run_count;
        continue;
      }
      flush_run();
      run_first = page;
      run_count = 1;
      run_perm = perm;
    }
    flush_run();
  }
  size_ = 0;
  if (stats_ != nullptr) {
    stats_->Add(Counter::kMprotectCalls, cs.syscalls);
    stats_->Add(Counter::kMprotectPagesCoalesced, cs.pages_applied - cs.syscalls);
  }
  return cs;
}

}  // namespace cashmere
