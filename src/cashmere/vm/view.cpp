#include "cashmere/vm/view.hpp"

#include <sys/mman.h>

#include <algorithm>

#include "cashmere/common/logging.hpp"
#include "cashmere/vm/arena.hpp"

namespace cashmere {

int PermToProt(Perm perm) {
  switch (perm) {
    case Perm::kInvalid:
      return PROT_NONE;
    case Perm::kRead:
      return PROT_READ;
    case Perm::kReadWrite:
      return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

View::View(const Config& cfg, const Arena& arena)
    : size_(cfg.heap_bytes),
      superpage_bytes_(cfg.superpage_bytes()),
      perms_(cfg.pages(), Perm::kInvalid) {
  // Reserve the whole range, then map superpage chunks over it.
  void* reserved = mmap(nullptr, size_, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CSM_CHECK(reserved != MAP_FAILED);
  base_ = static_cast<std::byte*>(reserved);
  for (std::size_t off = 0; off < size_; off += superpage_bytes_) {
    const std::size_t len = std::min(superpage_bytes_, size_ - off);
    void* p = mmap(base_ + off, len, PROT_NONE, MAP_SHARED | MAP_FIXED, arena.fd(),
                   static_cast<off_t>(off));
    CSM_CHECK(p == base_ + off);
  }
}

View::~View() {
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
}

void View::Protect(PageId page, Perm perm) {
  CSM_CHECK(page < perms_.size());
  CSM_CHECK(mprotect(base_ + static_cast<std::size_t>(page) * kPageBytes, kPageBytes,
                     PermToProt(perm)) == 0);
  perms_[page] = perm;
}

void View::RemapSuperpage(std::size_t superpage, const Arena& arena) {
  const std::size_t off = superpage * superpage_bytes_;
  CSM_CHECK(off < size_);
  const std::size_t len = std::min(superpage_bytes_, size_ - off);
  void* p = mmap(base_ + off, len, PROT_NONE, MAP_SHARED | MAP_FIXED, arena.fd(),
                 static_cast<off_t>(off));
  CSM_CHECK(p == base_ + off);
  const PageId first = static_cast<PageId>(off / kPageBytes);
  const PageId last = static_cast<PageId>((off + len) / kPageBytes);
  for (PageId page = first; page < last; ++page) {
    perms_[page] = Perm::kInvalid;
  }
}

}  // namespace cashmere
