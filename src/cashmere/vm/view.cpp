#include "cashmere/vm/view.hpp"

#include <sys/mman.h>

#include <algorithm>

#include "cashmere/common/logging.hpp"
#include "cashmere/vm/arena.hpp"

namespace cashmere {

int PermToProt(Perm perm) {
  switch (perm) {
    case Perm::kInvalid:
      return PROT_NONE;
    case Perm::kRead:
      return PROT_READ;
    case Perm::kReadWrite:
      return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

View::View(const Config& cfg, const Arena& arena)
    : size_(cfg.heap_bytes),
      superpage_bytes_(cfg.superpage_bytes()),
      perms_(cfg.pages(), Perm::kInvalid) {
  // Reserve the whole range, then map superpage chunks over it.
  void* reserved = mmap(nullptr, size_, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CSM_CHECK(reserved != MAP_FAILED);
  base_ = static_cast<std::byte*>(reserved);
  for (std::size_t off = 0; off < size_; off += superpage_bytes_) {
    const std::size_t len = std::min(superpage_bytes_, size_ - off);
    void* p = mmap(base_ + off, len, PROT_NONE, MAP_SHARED | MAP_FIXED, arena.fd(),
                   static_cast<off_t>(off));
    CSM_CHECK(p == base_ + off);
  }
}

View::~View() {
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
}

void View::Protect(PageId page, Perm perm) {
  SpinLockGuard guard(commit_lock_);
  ProtectRangeLocked(page, 1, perm);
}

void View::ProtectRange(PageId first, std::size_t count, Perm perm) {
  SpinLockGuard guard(commit_lock_);
  ProtectRangeLocked(first, count, perm);
}

void View::ProtectRangeLocked(PageId first, std::size_t count, Perm perm) {
  CSM_CHECK(count > 0 && first + count <= perms_.size());
  CSM_CHECK(mprotect(base_ + static_cast<std::size_t>(first) * kPageBytes,
                     count * kPageBytes, PermToProt(perm)) == 0);
  for (PageId page = first; page < first + count; ++page) {
    perms_[page] = perm;
  }
}

void View::RemapSuperpage(std::size_t superpage, const Arena& arena) {
  // Held across the remap so a concurrent batch commit can never mprotect a
  // half-replaced mapping or observe a shadow entry for the old frames.
  SpinLockGuard guard(commit_lock_);
  const std::size_t off = superpage * superpage_bytes_;
  CSM_CHECK(off < size_);
  const std::size_t len = std::min(superpage_bytes_, size_ - off);
  void* p = mmap(base_ + off, len, PROT_NONE, MAP_SHARED | MAP_FIXED, arena.fd(),
                 static_cast<off_t>(off));
  CSM_CHECK(p == base_ + off);
  const PageId first = static_cast<PageId>(off / kPageBytes);
  const PageId last = static_cast<PageId>((off + len) / kPageBytes);
  for (PageId page = first; page < last; ++page) {
    perms_[page] = Perm::kInvalid;
  }
}

}  // namespace cashmere
