// A node arena is the "physical memory" of one coherence unit: a memfd
// holding the unit's copy of the entire shared heap. Multiple views
// (per-processor mappings) of the same arena share frames, so processors
// within an SMP node are kept hardware-coherent by the host, exactly as in
// the paper's AlphaServers. The protocol itself accesses arenas through an
// always-read-write mapping that never faults.
//
// Under the shm transport an arena's memfd may have been created by a
// different OS process (the node's peer, fd-passed over the control plane)
// and is mapped at an unrelated address there — so frames have two names:
// the process-local pointer (PagePtr, the fast path) and the position-
// independent PageFrameRef (FrameOf) carrying {segment id, byte offset},
// valid across every process that mapped the segment.
#ifndef CASHMERE_VM_ARENA_HPP_
#define CASHMERE_VM_ARENA_HPP_

#include <cstddef>
#include <cstdint>

#include "cashmere/common/types.hpp"
#include "cashmere/mc/transport.hpp"

namespace cashmere {

class Arena {
 public:
  // Creates a fresh memfd of `bytes` and maps it.
  Arena(std::size_t bytes, const char* name);
  // Adopts an existing segment fd (takes ownership; e.g. a peer-created
  // segment passed over the shm control plane) and maps it locally.
  Arena(int adopted_fd, std::size_t bytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&&) = delete;

  int fd() const { return fd_; }
  std::size_t size() const { return size_; }

  // The protocol's unprotected read-write mapping of the whole arena.
  std::byte* protocol_base() const { return protocol_base_; }
  std::byte* PagePtr(PageId page) const { return protocol_base_ + page * kPageBytes; }

  // Transport segment identity, assigned when the runtime registers the
  // arena with the bound McTransport (kInvalidSegment before that).
  SegmentId segment() const { return segment_; }
  void set_segment(SegmentId seg) { segment_ = seg; }
  // Position-independent name of a page frame; resolve back to a pointer
  // with McTransport::Resolve (inline, one indexed load).
  PageFrameRef FrameOf(PageId page) const {
    return PageFrameRef{segment_, static_cast<std::uint64_t>(page) * kPageBytes};
  }

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
  std::byte* protocol_base_ = nullptr;
  SegmentId segment_ = kInvalidSegment;
};

}  // namespace cashmere

#endif  // CASHMERE_VM_ARENA_HPP_
