// A node arena is the "physical memory" of one coherence unit: a memfd
// holding the unit's copy of the entire shared heap. Multiple views
// (per-processor mappings) of the same arena share frames, so processors
// within an SMP node are kept hardware-coherent by the host, exactly as in
// the paper's AlphaServers. The protocol itself accesses arenas through an
// always-read-write mapping that never faults.
#ifndef CASHMERE_VM_ARENA_HPP_
#define CASHMERE_VM_ARENA_HPP_

#include <cstddef>
#include <cstdint>

#include "cashmere/common/types.hpp"

namespace cashmere {

class Arena {
 public:
  Arena(std::size_t bytes, const char* name);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&&) = delete;

  int fd() const { return fd_; }
  std::size_t size() const { return size_; }

  // The protocol's unprotected read-write mapping of the whole arena.
  std::byte* protocol_base() const { return protocol_base_; }
  std::byte* PagePtr(PageId page) const { return protocol_base_ + page * kPageBytes; }

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
  std::byte* protocol_base_ = nullptr;
};

}  // namespace cashmere

#endif  // CASHMERE_VM_ARENA_HPP_
