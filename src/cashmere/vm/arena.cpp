#include "cashmere/vm/arena.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "cashmere/common/logging.hpp"

namespace cashmere {

Arena::Arena(std::size_t bytes, const char* name) : size_(bytes) {
  fd_ = memfd_create(name, 0);
  CSM_CHECK(fd_ >= 0);
  CSM_CHECK(ftruncate(fd_, static_cast<off_t>(bytes)) == 0);
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  CSM_CHECK(p != MAP_FAILED);
  protocol_base_ = static_cast<std::byte*>(p);
}

Arena::Arena(int adopted_fd, std::size_t bytes) : fd_(adopted_fd), size_(bytes) {
  CSM_CHECK(fd_ >= 0);
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  CSM_CHECK(p != MAP_FAILED);
  protocol_base_ = static_cast<std::byte*>(p);
}

Arena::Arena(Arena&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      protocol_base_(std::exchange(other.protocol_base_, nullptr)),
      segment_(std::exchange(other.segment_, kInvalidSegment)) {}

Arena::~Arena() {
  if (protocol_base_ != nullptr) {
    munmap(protocol_base_, size_);
  }
  if (fd_ >= 0) {
    close(fd_);
  }
}

}  // namespace cashmere
