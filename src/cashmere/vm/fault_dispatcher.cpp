#include "cashmere/vm/fault_dispatcher.hpp"

#include <signal.h>
#include <string.h>
#include <ucontext.h>

#include <cstdio>
#include <cstdlib>

#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

struct sigaction g_previous_action;

bool IsWriteFault(void* ucontext_ptr) {
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(ucontext_ptr);
  // Page-fault error code: bit 1 set means the access was a write.
  return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#elif defined(__aarch64__)
  auto* uc = static_cast<ucontext_t*>(ucontext_ptr);
  // ESR_EL1 WnR bit (bit 6) for data aborts.
  return (uc->uc_mcontext.__reserved[0] & 0x40) != 0;  // best effort
#else
  (void)ucontext_ptr;
  return true;  // conservative: treat as write
#endif
}

}  // namespace

FaultDispatcher& FaultDispatcher::Instance() {
  // csm-lint: allow(fault-path-blocking) -- one-time lazy init; the first
  // call is always Register (before any fault can dispatch), so OnSignal
  // only ever sees the already-constructed instance.
  // csm-lint: allow(fault-path-signal-safety) -- same one-time init as above
  static FaultDispatcher* instance = new FaultDispatcher();
  return *instance;
}

void FaultDispatcher::Register(FaultSink* sink) {
  SpinLockGuard guard(lock_);
  if (!installed_) {
    struct sigaction action;
    memset(&action, 0, sizeof(action));  // csm-lint: allow(raw-page-copy) -- zeroes a local sigaction struct
    action.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(
        reinterpret_cast<void*>(&FaultDispatcher::OnSignal));
    action.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&action.sa_mask);
    CSM_CHECK(sigaction(SIGSEGV, &action, &g_previous_action) == 0);
    installed_ = true;
  }
  for (auto& slot : sinks_) {
    FaultSink* expected = nullptr;
    if (slot.compare_exchange_strong(expected, sink)) {
      registered_.fetch_add(1);
      return;
    }
  }
  CSM_CHECK(false && "too many fault sinks");
}

void FaultDispatcher::Unregister(FaultSink* sink) {
  SpinLockGuard guard(lock_);
  for (auto& slot : sinks_) {
    FaultSink* expected = sink;
    if (slot.compare_exchange_strong(expected, nullptr)) {
      registered_.fetch_sub(1);
      return;
    }
  }
}

void FaultDispatcher::OnSignal(int signo, void* info, void* ucontext) {
  auto* si = static_cast<siginfo_t*>(info);
  void* addr = si->si_addr;
  const bool is_write = IsWriteFault(ucontext);
  FaultDispatcher& self = Instance();
  for (auto& slot : self.sinks_) {
    FaultSink* sink = slot.load(std::memory_order_acquire);
    if (sink != nullptr && sink->HandleFault(addr, is_write)) {
      return;
    }
  }
  // Not ours: restore the previous disposition and re-raise for a real crash.
  // csm-lint: allow(fault-path-signal-safety) -- crash-path diagnostic just
  // before re-raising the signal under the previous disposition
  std::fprintf(stderr, "cashmere: unhandled SIGSEGV at %p (%s)\n", addr,
               is_write ? "write" : "read");
  sigaction(SIGSEGV, &g_previous_action, nullptr);
  raise(signo);
}

}  // namespace cashmere
