// A View is one processor's private mapping of the shared heap. Each
// (processor) view maps the heap superpage by superpage, normally all from
// the processor's unit arena; the home-node optimization maps some
// superpages from another unit's arena (the master frames). Per-view
// mprotect gives per-processor access permissions over shared frames — the
// same mechanism Cashmere used via per-process page tables on Digital Unix.
//
// Permission changes are serialized per view by `commit_lock_`: the shadow
// table `perms_` always mirrors the hardware page protections, and both are
// only mutated with the lock held. PermBatch (vm/perm_batch.hpp) holds the
// lock across a whole coalesced range commit; the single-page Protect path
// takes it per call.
#ifndef CASHMERE_VM_VIEW_HPP_
#define CASHMERE_VM_VIEW_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

class Arena;

class View {
 public:
  // Reserves address space for `heap_bytes` and maps every superpage from
  // `arena` with no access permissions.
  View(const Config& cfg, const Arena& arena);
  ~View();
  View(const View&) = delete;
  View& operator=(const View&) = delete;

  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  bool Contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + size_;
  }
  PageId PageOfAddr(const void* addr) const {
    return static_cast<PageId>((static_cast<const std::byte*>(addr) - base_) / kPageBytes);
  }

  // Changes this view's protection for one page. Outside src/cashmere/vm/
  // this must not be called directly — go through PermBatch so the
  // shadow-table elision and range coalescing apply (csm_lint rule
  // raw-view-protect).
  void Protect(PageId page, Perm perm) CSM_EXCLUDES(commit_lock_);
  // Changes the protection of `count` consecutive pages starting at
  // `first` with a single mprotect call.
  void ProtectRange(PageId first, std::size_t count, Perm perm)
      CSM_EXCLUDES(commit_lock_);
  // Shadow-table probe. Takes the commit lock internally so the value read
  // is never torn mid-commit; callers that already hold the lock (batch
  // commits) use PermOfLocked instead.
  Perm PermOf(PageId page) const CSM_EXCLUDES(commit_lock_) {
    SpinLockGuard guard(commit_lock_);
    return perms_[page];
  }

  // The per-view permission commit serializer. Lock order: a holder of a
  // PageLocal lock may take this; the reverse never happens (batch commits
  // touch no protocol state).
  SpinLock& commit_lock() const CSM_RETURN_CAPABILITY(commit_lock_) {
    return commit_lock_;
  }
  Perm PermOfLocked(PageId page) const CSM_REQUIRES(commit_lock_) {
    return perms_[page];
  }
  // One mprotect spanning [first, first + count); updates the shadow table.
  void ProtectRangeLocked(PageId first, std::size_t count, Perm perm)
      CSM_REQUIRES(commit_lock_);

  // Replaces one superpage's backing arena (home-node optimization after a
  // first-touch relocation). The new mapping starts with no access.
  void RemapSuperpage(std::size_t superpage, const Arena& arena)
      CSM_EXCLUDES(commit_lock_);

 private:
  std::size_t size_;
  std::size_t superpage_bytes_;
  std::byte* base_ = nullptr;
  mutable SpinLock commit_lock_;
  std::vector<Perm> perms_ CSM_GUARDED_BY(commit_lock_);
};

int PermToProt(Perm perm);

}  // namespace cashmere

#endif  // CASHMERE_VM_VIEW_HPP_
