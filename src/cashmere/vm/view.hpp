// A View is one processor's private mapping of the shared heap. Each
// (processor) view maps the heap superpage by superpage, normally all from
// the processor's unit arena; the home-node optimization maps some
// superpages from another unit's arena (the master frames). Per-view
// mprotect gives per-processor access permissions over shared frames — the
// same mechanism Cashmere used via per-process page tables on Digital Unix.
#ifndef CASHMERE_VM_VIEW_HPP_
#define CASHMERE_VM_VIEW_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

class Arena;

class View {
 public:
  // Reserves address space for `heap_bytes` and maps every superpage from
  // `arena` with no access permissions.
  View(const Config& cfg, const Arena& arena);
  ~View();
  View(const View&) = delete;
  View& operator=(const View&) = delete;

  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  bool Contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + size_;
  }
  PageId PageOfAddr(const void* addr) const {
    return static_cast<PageId>((static_cast<const std::byte*>(addr) - base_) / kPageBytes);
  }

  // Changes this view's protection for one page.
  void Protect(PageId page, Perm perm);
  Perm PermOf(PageId page) const { return perms_[page]; }

  // Replaces one superpage's backing arena (home-node optimization after a
  // first-touch relocation). The new mapping starts with no access.
  void RemapSuperpage(std::size_t superpage, const Arena& arena);

 private:
  std::size_t size_;
  std::size_t superpage_bytes_;
  std::byte* base_ = nullptr;
  std::vector<Perm> perms_;
};

int PermToProt(Perm perm);

}  // namespace cashmere

#endif  // CASHMERE_VM_VIEW_HPP_
