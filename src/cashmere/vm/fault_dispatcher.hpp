// SIGSEGV-driven page-fault dispatch. Faults on a processor view are routed
// to the coherence protocol of the runtime that owns the view; anything else
// falls through to the default disposition (a genuine crash).
//
// Everything reachable from HandleFault must stay signal-safe: no
// allocation, no blocking syscalls beyond the protocol's own mprotect/mmap.
// That contract covers the permission-batch commits the fault path issues
// before returning (vm/perm_batch.hpp queues and commits entirely within
// preallocated storage), and csm_lint's fault-path rule scans this layer
// for known-blocking calls.
//
// Signal handlers are process-global, so the dispatcher is a singleton that
// multiple Runtime instances register with (tests create runtimes
// back-to-back; only one is typically live at a time, but registration is
// reference-counted and thread-safe).
#ifndef CASHMERE_VM_FAULT_DISPATCHER_HPP_
#define CASHMERE_VM_FAULT_DISPATCHER_HPP_

#include <atomic>
#include <cstddef>

#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

// Implemented by the runtime: handle a fault by `proc` on `page`.
// `is_write` is derived from the hardware error code.
class FaultSink {
 public:
  virtual ~FaultSink() = default;
  // Returns true if the fault was consumed (permissions now allow the
  // access); false means the fault was not ours.
  virtual bool HandleFault(void* addr, bool is_write) = 0;
};

class FaultDispatcher {
 public:
  static FaultDispatcher& Instance();

  // Installs the SIGSEGV handler on first registration.
  void Register(FaultSink* sink);
  void Unregister(FaultSink* sink);

 private:
  FaultDispatcher() = default;
  static void OnSignal(int signo, void* info, void* ucontext);

  static constexpr int kMaxSinks = 8;
  SpinLock lock_;
  std::atomic<FaultSink*> sinks_[kMaxSinks] = {};
  std::atomic<int> registered_{0};
  bool installed_ = false;
};

}  // namespace cashmere

#endif  // CASHMERE_VM_FAULT_DISPATCHER_HPP_
