// Range-coalesced permission commits. A PermBatch is a per-processor
// scratch that collects (proc, page, perm) transitions queued by the
// protocol during one episode (a fault, an acquire drain, a release flush,
// a shootdown) and commits them in bulk: sort, keep the last write per
// (proc, page), re-resolve each against the protocol's page table, elide
// entries the view's shadow table already satisfies, and merge adjacent
// same-perm pages into maximal ranges so each range costs one mprotect.
//
// Why deferring is safe: the queued perm is only a hint. At commit time
// every entry is re-resolved through the bound `Resolver` (the protocol's
// current per-processor perm, read lock-free), so a commit serialized after
// a later transition applies the later truth, and the view commit lock's
// release/acquire ordering guarantees the last committer to touch a page
// wins with the freshest value. The protocol keeps hardware no looser than
// protocol state by committing before any point where a stale-loose mapping
// could be observed (see DESIGN.md §11 for the commit-point inventory).
//
// Signal-safety: Add() is a bounded array store (plus, when full, an early
// Commit — sort and mprotect over preallocated storage); nothing here
// allocates after construction, so the fault path may queue and commit from
// the SIGSEGV handler.
#ifndef CASHMERE_VM_PERM_BATCH_HPP_
#define CASHMERE_VM_PERM_BATCH_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

class Stats;
class View;

class PermBatch {
 public:
  // Maps a queued transition to the perm that should actually be applied
  // for (proc, page) — the protocol's current page-table truth. May be
  // null (tests), in which case the queued perm is applied as-is.
  using Resolver = Perm (*)(void* ctx, ProcId proc, PageId page, Perm queued);

  // Transitions one episode can queue before an early commit. An episode
  // never legitimately exceeds this (the largest is a full-heap drain of
  // 1024 default pages), but an early commit is always correct — it just
  // lands closer to the seed's per-page syscall timing.
  static constexpr std::size_t kCapacity = 2048;

  struct CommitStats {
    std::uint64_t entries = 0;        // queued entries consumed
    std::uint64_t syscalls = 0;       // mprotect calls issued
    std::uint64_t pages_applied = 0;  // pages whose hardware perm changed
    std::uint64_t pages_elided = 0;   // entries the shadow table satisfied
  };

  PermBatch() = default;
  PermBatch(const PermBatch&) = delete;
  PermBatch& operator=(const PermBatch&) = delete;

  // `views` indexes views by global processor id and must outlive the
  // batch. `stats`, when set, receives kMprotectCalls /
  // kMprotectPagesCoalesced at each commit; commits must then stay on the
  // owning processor's thread (Stats is single-writer).
  void Bind(const std::vector<std::unique_ptr<View>>* views, Resolver resolver,
            void* resolver_ctx, Stats* stats) {
    views_ = views;
    resolver_ = resolver;
    resolver_ctx_ = resolver_ctx;
    stats_ = stats;
  }

  // Queues one transition; commits the batch first if it is full.
  void Add(ProcId proc, PageId page, Perm perm);

  bool Empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Applies every queued transition and empties the batch. Safe to call
  // with a PageLocal lock held (takes only view commit locks, which are
  // leaves in the lock order — see docs/concurrency.md). Analysis is
  // suppressed: the commit walk scopes one view's commit lock over a
  // dynamically chosen run of entries, a shape the static checker cannot
  // follow; the discipline is pinned by the View annotations and by
  // PermBatchStressTest under TSan.
  CommitStats Commit() CSM_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct Entry {
    PageId page;
    std::int32_t proc;
    std::uint16_t seq;  // queue order; last-write-wins tiebreak
    std::uint8_t perm;
  };

  const std::vector<std::unique_ptr<View>>* views_ = nullptr;
  Resolver resolver_ = nullptr;
  void* resolver_ctx_ = nullptr;
  Stats* stats_ = nullptr;
  std::size_t size_ = 0;
  std::array<Entry, kCapacity> entries_;
};

}  // namespace cashmere

#endif  // CASHMERE_VM_PERM_BATCH_HPP_
