// The benchmark application suite (Section 3.2). Each application exposes
// a DSM-parallel implementation (run under a Runtime) and a sequential
// reference (plain memory, no protocol), so every run can be verified and
// the paper's speedups computed against "uninstrumented" sequential time.
#ifndef CASHMERE_APPS_APP_HPP_
#define CASHMERE_APPS_APP_HPP_

#include <memory>
#include <string>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {

enum class AppKind : int {
  kSor = 0,
  kLu,
  kWater,
  kTsp,
  kGauss,
  kIlink,
  kEm3d,
  kBarnes,
};
inline constexpr int kNumApps = 8;
const char* AppName(AppKind kind);

// Size classes: 0 = tiny (unit/integration tests), 1 = benchmark default,
// 2 = large (closer to paper scale, still minutes not hours).
inline constexpr int kSizeTest = 0;
inline constexpr int kSizeBench = 1;
inline constexpr int kSizeLarge = 2;

class IApp {
 public:
  virtual ~IApp() = default;

  virtual AppKind kind() const = 0;
  const char* name() const { return AppName(kind()); }
  // Shared-heap bytes the parallel run needs.
  virtual std::size_t HeapBytes() const = 0;
  // Synchronization objects the app uses.
  virtual SyncShape Sync() const { return SyncShape{}; }
  // Runs the parallel version; returns a result checksum.
  virtual double RunParallel(Runtime& rt) = 0;
  // Runs the sequential reference on private memory; returns its checksum.
  virtual double RunSequential() = 0;
  // Relative tolerance for checksum verification (0 = bit-exact expected).
  virtual double Tolerance() const { return 0.0; }
  // Table 2 context: the paper's sequential time and problem size.
  virtual double PaperSeqSeconds() const = 0;
  virtual const char* PaperProblemSize() const = 0;
  virtual std::size_t PaperDataBytes() const = 0;  // Table 2 shared-memory size
  // Table 3's "Data (Mbytes)" row for Cashmere-2L at 32 processors — the
  // paper's measured communication volume, used to derive the cost scale
  // for scaled-down runs.
  virtual double PaperDataMbytes32() const = 0;
  virtual std::string ProblemSize() const = 0;
};

std::unique_ptr<IApp> MakeApp(AppKind kind, int size_class);

// --- Factory registry -----------------------------------------------------
// Each application .cpp self-registers at static-initialization time via
// CASHMERE_REGISTER_APP; the drivers and tests dispatch by name through this
// table, so adding a workload needs no edits outside its own translation
// unit. cashmere_apps is an OBJECT library so the registration objects are
// always linked (a static archive would dead-strip them).
class App {
 public:
  using Factory = std::unique_ptr<IApp> (*)(int size_class);

  // Creates the application registered under `name` (exact match, e.g.
  // "SOR"); nullptr if no such registration exists.
  static std::unique_ptr<IApp> Create(const std::string& name, int size_class);
  // Registered application names, in AppKind order.
  static std::vector<std::string> Names();
  // Name -> kind lookup (for drivers that key experiments by AppKind).
  static bool Lookup(const std::string& name, AppKind* kind);

  // Called by CASHMERE_REGISTER_APP; returns true so the macro can bind the
  // call to a namespace-scope constant's initializer.
  static bool Register(AppKind kind, const char* name, Factory factory);
};

// Registers `cls` (constructible from an int size class) under `name`.
// Place at namespace scope in the application's .cpp.
#define CASHMERE_REGISTER_APP(cls, kind, name)                                 \
  [[maybe_unused]] const bool cls##_registered = ::cashmere::App::Register(    \
      kind, name, [](int size_class) -> std::unique_ptr<::cashmere::IApp> {    \
        return std::make_unique<cls>(size_class);                              \
      })

// One full experiment: run the app on `cfg`, verify against the sequential
// reference, and compute the modeled speedup.
struct AppRunResult {
  AppKind kind = AppKind::kSor;
  Config cfg;
  StatsReport report;
  double parallel_checksum = 0.0;
  double sequential_checksum = 0.0;
  bool verified = false;
  double seq_host_seconds = 0.0;    // measured, uninstrumented, this host
  double seq_alpha_seconds = 0.0;   // scaled to the emulated 233 MHz Alpha
  double speedup = 0.0;             // seq_alpha_seconds / virtual exec time
  // Event streams of the run that produced `report` (the dilation-corrected
  // rerun when one happened); non-null iff cfg.trace.enabled.
  std::shared_ptr<TraceLog> trace;
  // Transport-level results (mc/transport.hpp). transport_verified is the
  // shm backend's cross-process checksum handshake: false when a peer
  // process's view of a segment disagreed with the lead's (or a peer died);
  // always true for in-process transports. wire_ns is measured wall-clock
  // time inside transport ops (shm only; 0 for inproc, which charges
  // virtual time instead).
  bool transport_verified = true;
  std::uint64_t wire_ns = 0;
};

AppRunResult RunApp(AppKind kind, Config cfg, int size_class);

// Measured-and-scaled sequential time (cached per kind/size across calls,
// since the reference run is deterministic).
void SequentialBaseline(AppKind kind, int size_class, double* host_seconds,
                        double* alpha_seconds, double* checksum);

// The cost-model scale factor that restores the paper's compute-to-
// communication ratio for this app at this (scaled-down) size; cached.
// Config::cost.scale == 0 in RunApp triggers this automatically.
double AutoCostScale(AppKind kind, int size_class);

}  // namespace cashmere

#endif  // CASHMERE_APPS_APP_HPP_
