// Branch-and-bound travelling salesman (Section 3.2).
//
// Unsolved tours live in a shared priority queue protected by a lock;
// updates to the shortest path are protected by a separate lock. The search
// order is non-deterministic (as in the paper), but the optimum is unique,
// so verification compares the final tour length with the sequential
// branch-and-bound.
//
// All shared state is only touched while holding its lock; idle processors
// re-acquire the queue lock to re-examine it (release consistency gives no
// other way to observe remote updates).
#include "cashmere/apps/apps.hpp"

#include <algorithm>
#include <vector>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/rng.hpp"

namespace cashmere {

namespace {

constexpr int kMaxCities = 14;
constexpr int kPool = 4096;
constexpr int kQueueLock = 0;
constexpr int kBestLock = 1;
constexpr int kPushFlag = 0;  // event count of queue pushes
constexpr int kDoneFlag = 1;  // set once when the search terminates
constexpr int kDfsTailCities = 7;  // subtrees this small are solved locally

struct Node {
  std::int32_t bound = 0;
  std::int32_t len = 0;
  std::int32_t count = 0;           // cities in path
  std::int32_t visited = 0;         // bitmask
  std::int8_t path[kMaxCities] = {};
};

struct TspShared {
  std::int32_t dist[kMaxCities][kMaxCities];
  std::int32_t min_edge[kMaxCities];
  std::int32_t best_len;
  std::int32_t done;
  std::int32_t idle;
  std::int32_t push_count;
  std::int32_t heap_size;
  std::int32_t heap[kPool];
  std::int32_t free_top;
  std::int32_t free_list[kPool];
  Node pool[kPool];
};

void BuildDistances(std::int32_t dist[kMaxCities][kMaxCities], std::int32_t* min_edge,
                    int cities) {
  SplitMix64 rng(424242);
  for (int i = 0; i < cities; ++i) {
    for (int j = i + 1; j < cities; ++j) {
      const auto d = static_cast<std::int32_t>(1 + rng.NextBelow(99));
      dist[i][j] = d;
      dist[j][i] = d;
    }
    dist[i][i] = 0;
  }
  for (int i = 0; i < cities; ++i) {
    std::int32_t m = 1 << 20;
    for (int j = 0; j < cities; ++j) {
      if (j != i && dist[i][j] < m) {
        m = dist[i][j];
      }
    }
    min_edge[i] = m;
  }
}

std::int32_t LowerBound(const TspShared& s, const Node& n, int cities) {
  std::int32_t bound = n.len;
  for (int c = 0; c < cities; ++c) {
    if ((n.visited & (1 << c)) == 0) {
      bound += s.min_edge[c];
    }
  }
  return bound;
}

// Heap helpers (caller holds the queue lock).
void HeapPush(TspShared& s, std::int32_t idx) {
  int i = s.heap_size++;
  s.heap[i] = idx;
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (s.pool[s.heap[parent]].bound <= s.pool[s.heap[i]].bound) {
      break;
    }
    std::swap(s.heap[parent], s.heap[i]);
    i = parent;
  }
}

std::int32_t HeapPop(TspShared& s) {
  const std::int32_t top = s.heap[0];
  s.heap[0] = s.heap[--s.heap_size];
  int i = 0;
  while (true) {
    const int l = 2 * i + 1;
    const int r = 2 * i + 2;
    int m = i;
    if (l < s.heap_size && s.pool[s.heap[l]].bound < s.pool[s.heap[m]].bound) {
      m = l;
    }
    if (r < s.heap_size && s.pool[s.heap[r]].bound < s.pool[s.heap[m]].bound) {
      m = r;
    }
    if (m == i) {
      break;
    }
    std::swap(s.heap[i], s.heap[m]);
    i = m;
  }
  return top;
}

// Depth-first completion of a node without touching the shared queue (used
// sequentially and as the pool-exhaustion fallback). Returns the best tour
// length found under `n`, bounded by `best`.
std::int32_t SolveDfs(const TspShared& s, const Node& n, int cities, std::int32_t best) {
  if (n.count == cities) {
    const std::int32_t total = n.len + s.dist[n.path[n.count - 1]][n.path[0]];
    return std::min(best, total);
  }
  const int last = n.path[n.count - 1];
  for (int c = 1; c < cities; ++c) {
    if ((n.visited & (1 << c)) != 0) {
      continue;
    }
    Node child = n;
    child.path[child.count++] = static_cast<std::int8_t>(c);
    child.visited |= 1 << c;
    child.len = n.len + s.dist[last][c];
    if (LowerBound(s, child, cities) < best) {
      best = SolveDfs(s, child, cities, best);
    }
  }
  return best;
}

}  // namespace

TspApp::TspApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      cities_ = 8;
      break;
    case kSizeLarge:
      cities_ = 13;
      break;
    default:
      cities_ = 11;
      break;
  }
}

std::size_t TspApp::HeapBytes() const { return sizeof(TspShared); }

std::string TspApp::ProblemSize() const { return std::to_string(cities_) + " cities"; }

double TspApp::RunParallel(Runtime& rt) {
  const GlobalAddr s_addr = rt.heap().AllocPageAligned(sizeof(TspShared));
  const int cities = cities_;
  rt.Run([&](Context& ctx) {
    TspShared* s = ctx.Ptr<TspShared>(s_addr);
    if (ctx.proc() == 0) {
      BuildDistances(s->dist, s->min_edge, cities);
      s->best_len = 1 << 20;
      s->done = 0;
      s->idle = 0;
      s->push_count = 0;
      s->heap_size = 0;
      s->free_top = kPool;
      for (int i = 0; i < kPool; ++i) {
        s->free_list[i] = kPool - 1 - i;
      }
      // Seed: the root tour starting at city 0.
      const std::int32_t root = s->free_list[--s->free_top];
      Node& rn = s->pool[root];
      rn = Node{};
      rn.path[0] = 0;
      rn.count = 1;
      rn.visited = 1;
      rn.bound = LowerBound(*s, rn, cities);
      HeapPush(*s, root);
    }
    ctx.Barrier(0);
    ctx.InitDone();

    // Worker loop: pop the most promising tour, expand it, push children.
    // Idle processors wait on the push-event flag rather than hammering the
    // queue lock; the done flag broadcasts termination.
    while (true) {
      ctx.Poll();
      ctx.LockAcquire(kQueueLock);
      if (s->done != 0) {
        ctx.LockRelease(kQueueLock);
        break;
      }
      if (s->heap_size == 0) {
        const std::int32_t seen_pushes = s->push_count;
        s->idle += 1;
        if (s->idle == ctx.total_procs()) {
          s->done = 1;
          ctx.LockRelease(kQueueLock);
          ctx.FlagSet(kDoneFlag, 1);
          break;
        }
        ctx.LockRelease(kQueueLock);
        ctx.IdleWhile([&] {
          return ctx.FlagPeek(kPushFlag) <= static_cast<std::uint64_t>(seen_pushes) &&
                 ctx.FlagPeek(kDoneFlag) == 0;
        });
        if (ctx.FlagPeek(kDoneFlag) != 0) {
          ctx.FlagWaitGe(kDoneFlag, 1);
          break;
        }
        ctx.FlagWaitGe(kPushFlag, static_cast<std::uint64_t>(seen_pushes) + 1);
        ctx.LockAcquire(kQueueLock);
        s->idle -= 1;
        ctx.LockRelease(kQueueLock);
        continue;
      }
      const std::int32_t idx = HeapPop(*s);
      Node n = s->pool[idx];
      s->free_list[s->free_top++] = idx;
      ctx.LockRelease(kQueueLock);

      // Prune against the current best.
      ctx.LockAcquire(kBestLock);
      const std::int32_t best_now = s->best_len;
      ctx.LockRelease(kBestLock);
      if (n.bound >= best_now) {
        continue;
      }

      if (n.count == cities) {
        const std::int32_t total = n.len + s->dist[n.path[n.count - 1]][n.path[0]];
        ctx.LockAcquire(kBestLock);
        if (total < s->best_len) {
          s->best_len = total;
        }
        ctx.LockRelease(kBestLock);
        continue;
      }

      const int last = n.path[n.count - 1];
      std::int32_t announced = -1;
      for (int c = 1; c < cities; ++c) {
        if ((n.visited & (1 << c)) != 0) {
          continue;
        }
        Node child = n;
        child.path[child.count++] = static_cast<std::int8_t>(c);
        child.visited |= 1 << c;
        child.len = n.len + s->dist[last][c];
        child.bound = LowerBound(*s, child, cities);
        if (child.bound >= best_now) {
          continue;
        }
        if (cities - child.count <= kDfsTailCities) {
          // Coarse grain: near the leaves the subtree is cheap enough to
          // finish locally rather than paying a queue round trip per node
          // (standard branch-and-bound practice; keeps the shared queue for
          // the high-value upper tree, as with the paper's 17-city runs).
          const std::int32_t local = SolveDfs(*s, child, cities, best_now);
          if (local < best_now) {
            ctx.LockAcquire(kBestLock);
            if (local < s->best_len) {
              s->best_len = local;
            }
            ctx.LockRelease(kBestLock);
          }
          continue;
        }
        ctx.LockAcquire(kQueueLock);
        if (s->free_top > 0 && s->heap_size < kPool - 1) {
          const std::int32_t ci = s->free_list[--s->free_top];
          s->pool[ci] = child;
          HeapPush(*s, ci);
          s->push_count += 1;
          announced = s->push_count;
          ctx.LockRelease(kQueueLock);
        } else {
          ctx.LockRelease(kQueueLock);
          // Pool exhausted: finish this subtree depth-first locally.
          const std::int32_t local = SolveDfs(*s, child, cities, best_now);
          ctx.LockAcquire(kBestLock);
          if (local < s->best_len) {
            s->best_len = local;
          }
          ctx.LockRelease(kBestLock);
        }
      }
      if (announced >= 0) {
        // One release announces the whole expansion to idle processors.
        ctx.FlagSet(kPushFlag, static_cast<std::uint64_t>(announced));
      }
    }
  });
  TspShared* result = new TspShared;
  rt.CopyOut(s_addr, result, sizeof(TspShared));
  const double best = result->best_len;
  delete result;
  return best;
}

double TspApp::RunSequential() {
  auto s = std::make_unique<TspShared>();
  BuildDistances(s->dist, s->min_edge, cities_);
  Node root;
  root.path[0] = 0;
  root.count = 1;
  root.visited = 1;
  return SolveDfs(*s, root, cities_, 1 << 20);
}

CASHMERE_REGISTER_APP(TspApp, AppKind::kTsp, "TSP");

}  // namespace cashmere
