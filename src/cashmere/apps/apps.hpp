// Concrete application classes (see each .cpp for the workload description
// and its mapping to the paper's Section 3.2 characterization).
#ifndef CASHMERE_APPS_APPS_HPP_
#define CASHMERE_APPS_APPS_HPP_

#include "cashmere/apps/app.hpp"

namespace cashmere {

// Red-Black Successive Over-Relaxation: banded rows, barriers.
class SorApp : public IApp {
 public:
  explicit SorApp(int size_class);
  AppKind kind() const override { return AppKind::kSor; }
  std::size_t HeapBytes() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double PaperSeqSeconds() const override { return 195.0; }
  const char* PaperProblemSize() const override { return "3072x4096 (50 MB)"; }
  std::size_t PaperDataBytes() const override { return 50ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 4.25; }
  std::string ProblemSize() const override;

 private:
  int rows_;
  int cols_;
  int iters_;
};

// SPLASH-2 blocked dense LU factorization: block ownership, barriers.
class LuApp : public IApp {
 public:
  explicit LuApp(int size_class);
  AppKind kind() const override { return AppKind::kLu; }
  std::size_t HeapBytes() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double PaperSeqSeconds() const override { return 254.8; }
  const char* PaperProblemSize() const override { return "2046x2046 (33 MB)"; }
  std::size_t PaperDataBytes() const override { return 33ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 116.56; }
  std::string ProblemSize() const override;

 private:
  int n_;
  int block_;
};

// SPLASH-1 Water: n-squared molecular dynamics, per-molecule locks
// (migratory sharing), barriers.
class WaterApp : public IApp {
 public:
  explicit WaterApp(int size_class);
  AppKind kind() const override { return AppKind::kWater; }
  std::size_t HeapBytes() const override;
  SyncShape Sync() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double Tolerance() const override { return 1e-9; }
  double PaperSeqSeconds() const override { return 1847.6; }
  const char* PaperProblemSize() const override { return "4096 mols (4 MB)"; }
  std::size_t PaperDataBytes() const override { return 4ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 277.83; }
  std::string ProblemSize() const override;

 private:
  int mols_;
  int steps_;
};

// Branch-and-bound travelling salesman: lock-protected priority queue and
// best-tour bound; non-deterministic search order, deterministic optimum.
class TspApp : public IApp {
 public:
  explicit TspApp(int size_class);
  AppKind kind() const override { return AppKind::kTsp; }
  std::size_t HeapBytes() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double PaperSeqSeconds() const override { return 4029.0; }
  const char* PaperProblemSize() const override { return "17 cities (1 MB)"; }
  std::size_t PaperDataBytes() const override { return 1ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 103.23; }
  std::string ProblemSize() const override;

 private:
  int cities_;
};

// Gaussian elimination with cyclic row distribution and per-row release
// flags (single-producer/multiple-consumer sharing).
class GaussApp : public IApp {
 public:
  explicit GaussApp(int size_class);
  AppKind kind() const override { return AppKind::kGauss; }
  std::size_t HeapBytes() const override;
  SyncShape Sync() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double PaperSeqSeconds() const override { return 953.7; }
  const char* PaperProblemSize() const override { return "2046x2046 (33 MB)"; }
  std::size_t PaperDataBytes() const override { return 33ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 385.31; }
  std::string ProblemSize() const override;

 private:
  int n_;
};

// Synthetic genetic-linkage workload with the paper's Ilink communication
// shape: master-slave, one-to-all then all-to-one, sparse round-robin work
// assignment, barrier-synchronized, inherent serial component.
class IlinkApp : public IApp {
 public:
  explicit IlinkApp(int size_class);
  AppKind kind() const override { return AppKind::kIlink; }
  std::size_t HeapBytes() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double Tolerance() const override { return 1e-9; }  // reduction order differs
  double PaperSeqSeconds() const override { return 899.0; }
  const char* PaperProblemSize() const override { return "CLP (15 MB)"; }
  std::size_t PaperDataBytes() const override { return 15ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 479.9; }
  std::string ProblemSize() const override;

 private:
  int buckets_;
  int iters_;
  int sparsity_;  // one nonzero in every `sparsity_` buckets
};

// Split-C Em3d: electromagnetic wave propagation on a bipartite E/H graph
// with nearest-neighbour dependencies, barriers.
class Em3dApp : public IApp {
 public:
  explicit Em3dApp(int size_class);
  AppKind kind() const override { return AppKind::kEm3d; }
  std::size_t HeapBytes() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double PaperSeqSeconds() const override { return 161.4; }
  const char* PaperProblemSize() const override { return "60106 nodes (49 MB)"; }
  std::size_t PaperDataBytes() const override { return 49ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 345.92; }
  std::string ProblemSize() const override;

 private:
  int nodes_;
  int degree_;
  int iters_;
};

// SPLASH-1 Barnes-Hut n-body: sequential tree build, parallel force
// computation over the shared tree, barriers between phases.
class BarnesApp : public IApp {
 public:
  explicit BarnesApp(int size_class);
  AppKind kind() const override { return AppKind::kBarnes; }
  std::size_t HeapBytes() const override;
  double RunParallel(Runtime& rt) override;
  double RunSequential() override;
  double Tolerance() const override { return 1e-9; }
  double PaperSeqSeconds() const override { return 469.4; }
  const char* PaperProblemSize() const override { return "128K bodies (26 MB)"; }
  std::size_t PaperDataBytes() const override { return 26ull * 1024 * 1024; }
  double PaperDataMbytes32() const override { return 616.75; }
  std::string ProblemSize() const override;

 private:
  int bodies_;
  int steps_;
};

}  // namespace cashmere

#endif  // CASHMERE_APPS_APPS_HPP_
