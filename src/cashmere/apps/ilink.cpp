// Ilink (Section 3.2) — genetic linkage analysis from FASTLINK.
//
// The real inputs are proprietary pedigree data; this synthetic workload
// reproduces the communication structure the paper analyses: the main
// shared data is a pool of sparse arrays of genotype probabilities;
// non-zero elements are assigned to processors round-robin; computation is
// master-slave with one-to-all distribution of the updated pool and
// all-to-one collection of partial results, barriers for synchronization,
// and an inherent serial component that limits scalability.
#include "cashmere/apps/apps.hpp"

#include <cmath>
#include <vector>

namespace cashmere {

namespace {

double Recombine(double p, double theta) { return p * (1.0 - theta) + (1.0 - p) * theta; }

}  // namespace

IlinkApp::IlinkApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      buckets_ = 2048;
      iters_ = 6;
      sparsity_ = 3;
      break;
    case kSizeLarge:
      buckets_ = 32768;
      iters_ = 40;
      sparsity_ = 3;
      break;
    default:
      buckets_ = 8192;
      iters_ = 16;
      sparsity_ = 3;
      break;
  }
}

std::size_t IlinkApp::HeapBytes() const {
  return static_cast<std::size_t>(buckets_) * sizeof(double) +
         static_cast<std::size_t>(kMaxProcs) * kPageBytes;
}

std::string IlinkApp::ProblemSize() const {
  return std::to_string(buckets_) + " buckets x" + std::to_string(iters_);
}

double IlinkApp::RunParallel(Runtime& rt) {
  const int buckets = buckets_;
  const int iters = iters_;
  const int sparsity = sparsity_;
  const GlobalAddr pool_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(buckets) * sizeof(double));
  // One page-separated result slot per processor (all-to-one collection).
  const GlobalAddr partial_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(kMaxProcs) * kPageBytes);
  const GlobalAddr total_addr = rt.heap().AllocPageAligned(sizeof(double));
  rt.Run([&](Context& ctx) {
    double* pool = ctx.Ptr<double>(pool_addr);
    const int procs = ctx.total_procs();
    if (ctx.proc() == 0) {
      for (int b = 0; b < buckets; ++b) {
        pool[b] = (b % sparsity == 0) ? 0.5 + 0.4 * std::sin(0.01 * b) : 0.0;
      }
      *ctx.Ptr<double>(total_addr) = 0.0;
    }
    ctx.Barrier(0);
    ctx.InitDone();
    for (int t = 0; t < iters; ++t) {
      ctx.Poll();
      // Serial master phase: update the genotype-probability pool
      // (one-to-all communication; the serial component).
      if (ctx.proc() == 0) {
        const double theta = 0.01 + 0.3 * (t % 5) / 5.0;
        for (int b = 0; b < buckets; b += sparsity) {
          pool[b] = Recombine(pool[b], theta);
        }
      }
      ctx.Barrier(0);
      // Parallel slave phase: round-robin non-zeros; each processor writes
      // its page-separated partial likelihood (all-to-one).
      double local = 0.0;
      int idx = 0;
      for (int b = 0; b < buckets; b += sparsity, ++idx) {
        if (idx % procs != ctx.proc()) {
          continue;
        }
        const double p = pool[b];
        local += std::log(p * p + 0.5) + p * (1.0 - p);
      }
      double* mine =
          ctx.Ptr<double>(partial_addr + static_cast<GlobalAddr>(ctx.proc()) * kPageBytes);
      *mine = local;
      ctx.Barrier(0);
      // Serial reduction by the master (fixed order: deterministic).
      if (ctx.proc() == 0) {
        double sum = 0.0;
        for (int p = 0; p < procs; ++p) {
          sum += *ctx.Ptr<double>(partial_addr + static_cast<GlobalAddr>(p) * kPageBytes);
        }
        *ctx.Ptr<double>(total_addr) += sum;
      }
      ctx.Barrier(0);
    }
  });
  return rt.Read<double>(total_addr);
}

double IlinkApp::RunSequential() {
  std::vector<double> pool(static_cast<std::size_t>(buckets_));
  for (int b = 0; b < buckets_; ++b) {
    pool[b] = (b % sparsity_ == 0) ? 0.5 + 0.4 * std::sin(0.01 * b) : 0.0;
  }
  double total = 0.0;
  for (int t = 0; t < iters_; ++t) {
    const double theta = 0.01 + 0.3 * (t % 5) / 5.0;
    for (int b = 0; b < buckets_; b += sparsity_) {
      pool[b] = Recombine(pool[b], theta);
    }
    double sum = 0.0;
    for (int b = 0; b < buckets_; b += sparsity_) {
      const double p = pool[b];
      sum += std::log(p * p + 0.5) + p * (1.0 - p);
    }
    total += sum;
  }
  return total;
}

CASHMERE_REGISTER_APP(IlinkApp, AppKind::kIlink, "Ilink");

}  // namespace cashmere
