#include "cashmere/apps/app.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>

#include "cashmere/common/calibration.hpp"
#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

// Filled by App::Register during static initialization (each app's .cpp
// holds a CASHMERE_REGISTER_APP object). Function-local static so the table
// exists before the first cross-TU registration call.
struct AppRegistry {
  std::array<App::Factory, kNumApps> factories{};
  std::array<const char*, kNumApps> names{};
};

AppRegistry& Registry() {
  static AppRegistry registry;
  return registry;
}

}  // namespace

bool App::Register(AppKind kind, const char* name, Factory factory) {
  AppRegistry& r = Registry();
  const int k = static_cast<int>(kind);
  CSM_CHECK(k >= 0 && k < kNumApps);
  CSM_CHECK(r.factories[static_cast<std::size_t>(k)] == nullptr);
  r.factories[static_cast<std::size_t>(k)] = factory;
  r.names[static_cast<std::size_t>(k)] = name;
  return true;
}

std::unique_ptr<IApp> App::Create(const std::string& name, int size_class) {
  AppKind kind;
  if (!Lookup(name, &kind)) {
    return nullptr;
  }
  return MakeApp(kind, size_class);
}

std::vector<std::string> App::Names() {
  std::vector<std::string> names;
  names.reserve(kNumApps);
  for (int k = 0; k < kNumApps; ++k) {
    const char* name = Registry().names[static_cast<std::size_t>(k)];
    if (name != nullptr) {
      names.emplace_back(name);
    }
  }
  return names;
}

bool App::Lookup(const std::string& name, AppKind* kind) {
  for (int k = 0; k < kNumApps; ++k) {
    const char* n = Registry().names[static_cast<std::size_t>(k)];
    if (n != nullptr && name == n) {
      *kind = static_cast<AppKind>(k);
      return true;
    }
  }
  return false;
}

const char* AppName(AppKind kind) {
  const char* name = Registry().names[static_cast<std::size_t>(kind)];
  return name != nullptr ? name : "?";
}

std::unique_ptr<IApp> MakeApp(AppKind kind, int size_class) {
  const App::Factory factory = Registry().factories[static_cast<std::size_t>(kind)];
  CSM_CHECK(factory != nullptr);
  return factory(size_class);
}

namespace {

struct Baseline {
  double host_seconds;
  double alpha_seconds;
  double checksum;
};

std::mutex g_baseline_mutex;
std::map<std::pair<int, int>, Baseline>& BaselineCache() {
  static auto* cache = new std::map<std::pair<int, int>, Baseline>();
  return *cache;
}

}  // namespace

void SequentialBaseline(AppKind kind, int size_class, double* host_seconds,
                        double* alpha_seconds, double* checksum) {
  std::lock_guard<std::mutex> guard(g_baseline_mutex);
  const auto key = std::make_pair(static_cast<int>(kind), size_class);
  auto it = BaselineCache().find(key);
  if (it == BaselineCache().end()) {
    auto app = MakeApp(kind, size_class);
    // Repeat and take the minimum: the references run for milliseconds, so
    // a single sample is scheduling-noise dominated.
    double best = 1e30;
    double sum = 0.0;
    double accumulated = 0.0;
    for (int rep = 0; rep < 7 && (rep < 3 || accumulated < 0.25); ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      sum = app->RunSequential();
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      best = std::min(best, secs);
      accumulated += secs;
    }
    Baseline b;
    b.host_seconds = best;
    b.alpha_seconds = b.host_seconds * HostToAlphaTimeScale();
    b.checksum = sum;
    it = BaselineCache().emplace(key, b).first;
  }
  if (host_seconds != nullptr) {
    *host_seconds = it->second.host_seconds;
  }
  if (alpha_seconds != nullptr) {
    *alpha_seconds = it->second.alpha_seconds;
  }
  if (checksum != nullptr) {
    *checksum = it->second.checksum;
  }
}

double AutoCostScale(AppKind kind, int size_class) {
  // Cost scaling for scaled-down problems (see DESIGN.md): compute shrinks
  // by s = our/paper sequential time; communication shrinks by v =
  // our/paper data moved (ours measured once per app at the paper's
  // 32-processor 2L configuration, the paper's from Table 3's Data row).
  // Scaling every modeled cost by s/v restores the paper's
  // compute-to-communication ratio while preserving protocol rankings.
  static std::mutex mutex;
  static auto* cache = new std::map<std::pair<int, int>, double>();
  {
    std::lock_guard<std::mutex> guard(mutex);
    auto it = cache->find({static_cast<int>(kind), size_class});
    if (it != cache->end()) {
      return it->second;
    }
  }
  auto app = MakeApp(kind, size_class);
  double seq_alpha = 0.0;
  SequentialBaseline(kind, size_class, nullptr, &seq_alpha, nullptr);
  Config probe;
  probe.protocol = ProtocolVariant::kTwoLevel;
  probe.nodes = 8;
  probe.procs_per_node = 4;
  probe.cost.scale = 1.0;  // counters are cost-independent
  const AppRunResult r = RunApp(kind, probe, size_class);
  const double our_mbytes =
      static_cast<double>(r.report.total.Get(Counter::kDataBytes)) / (1024.0 * 1024.0);
  const double s = seq_alpha / app->PaperSeqSeconds();
  const double v = our_mbytes > 0 ? our_mbytes / app->PaperDataMbytes32() : 1.0;
  const double scale = std::clamp(s / v, 1e-4, 1.0);
  std::lock_guard<std::mutex> guard(mutex);
  (*cache)[{static_cast<int>(kind), size_class}] = scale;
  return scale;
}

AppRunResult RunApp(AppKind kind, Config cfg, int size_class) {
  auto app = MakeApp(kind, size_class);
  cfg.heap_bytes =
      ((app->HeapBytes() + app->HeapBytes() / 4 + 64 * 1024 + kPageBytes - 1) / kPageBytes) *
      kPageBytes;
  if (cfg.cost.scale == 0.0) {
    cfg.cost.scale = AutoCostScale(kind, size_class);
  }
  AppRunResult result;
  result.kind = kind;
  SequentialBaseline(kind, size_class, &result.seq_host_seconds, &result.seq_alpha_seconds,
                     &result.sequential_checksum);
  // One transport spans the main run and the possible dilation rerun: an
  // shm cluster bootstraps its peer processes once and reuses them (each
  // Runtime boot resets the segment tables); teardown (kShutdown) happens
  // when the transport destructs at the end of RunApp.
  std::unique_ptr<McTransport> transport = MakeTransport(cfg);
  {
    Runtime rt(cfg, app->Sync(), transport.get());
    result.parallel_checksum = app->RunParallel(rt);
    result.report = rt.report();
    result.trace = rt.TakeTraceLog();
  }
  // Oversubscription-dilation correction (see VirtualClock::user_host_ns):
  // on a host with fewer cores than emulated processors, measured per-thread
  // CPU time inflates with cache pollution and context switches. The suite's
  // applications perform (essentially) the sequential amount of total user
  // compute, so re-run with the user-time scale deflated to make the summed
  // user compute match the sequential baseline.
  const double dilation = result.seq_host_seconds > 0
                              ? static_cast<double>(result.report.user_host_ns) / 1e9 /
                                    result.seq_host_seconds
                              : 1.0;
  if (dilation > 1.2 || dilation < 0.8) {
    const double base_scale =
        cfg.cost.time_scale > 0 ? cfg.cost.time_scale : HostToAlphaTimeScale();
    Config corrected = cfg;
    corrected.cost.time_scale =
        base_scale / std::clamp(dilation, 0.25, 100.0);
    auto app2 = MakeApp(kind, size_class);
    Runtime rt(corrected, app2->Sync(), transport.get());
    result.parallel_checksum = app2->RunParallel(rt);
    result.report = rt.report();
    result.trace = rt.TakeTraceLog();  // streams of the run that counts
  }
  result.cfg = cfg;
  result.transport_verified = transport->peers_verified();
  result.wire_ns = transport->wire_ns();
  const double tol = app->Tolerance();
  const double diff = std::fabs(result.parallel_checksum - result.sequential_checksum);
  const double ref = std::fabs(result.sequential_checksum);
  result.verified =
      (tol == 0.0 ? diff == 0.0 : diff <= tol * (ref > 1.0 ? ref : 1.0)) &&
      result.transport_verified;
  const double exec_s = result.report.ExecTimeSec();
  result.speedup = exec_s > 0 ? result.seq_alpha_seconds / exec_s : 0.0;
  return result;
}

}  // namespace cashmere
