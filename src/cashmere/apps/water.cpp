// SPLASH-1 Water (Section 3.2), simplified to its sharing pattern: an
// n-squared molecular-dynamics step. The shared molecule array is divided
// into equal contiguous chunks; the inter-molecular force phase accumulates
// into other processors' molecules under per-molecule locks, producing the
// migratory sharing (and false sharing) the paper analyses; barriers
// separate phases.
//
// Force accumulation order differs between schedules, so verification uses
// a small relative tolerance.
#include "cashmere/apps/apps.hpp"

#include <cmath>
#include <vector>

namespace cashmere {

namespace {

struct Mol {
  double pos[3];
  double vel[3];
  double force[3];
};

constexpr double kDt = 1e-3;
constexpr double kCutoff2 = 6.25;  // cutoff distance squared
constexpr int kLockStride = 64;    // locks 64.. are molecule locks

void InitMols(Mol* mols, int n) {
  // Deterministic pseudo-random cloud in a box sized so the cutoff keeps a
  // healthy number of interacting pairs.
  const double box = std::cbrt(static_cast<double>(n)) * 1.2;
  std::uint64_t s = 12345;
  auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(s >> 11) * 0x1.0p-53;
  };
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      mols[i].pos[d] = next() * box;
      mols[i].vel[d] = (next() - 0.5) * 0.1;
      mols[i].force[d] = 0.0;
    }
  }
}

// Pair force: soft Lennard-Jones-ish with cutoff; returns force on i (j
// receives the negation).
bool PairForce(const Mol& a, const Mol& b, double* f) {
  double d[3];
  double r2 = 0.0;
  for (int k = 0; k < 3; ++k) {
    d[k] = a.pos[k] - b.pos[k];
    r2 += d[k] * d[k];
  }
  if (r2 >= kCutoff2 || r2 < 1e-12) {
    return false;
  }
  const double inv2 = 1.0 / (r2 + 0.1);
  const double mag = inv2 * inv2 - 0.02 * inv2;
  for (int k = 0; k < 3; ++k) {
    f[k] = mag * d[k];
  }
  return true;
}

void Integrate(Mol* mols, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    for (int k = 0; k < 3; ++k) {
      mols[i].vel[k] += mols[i].force[k] * kDt;
      mols[i].pos[k] += mols[i].vel[k] * kDt;
      mols[i].force[k] = 0.0;
    }
  }
}

double Checksum(const Mol* mols, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      sum += mols[i].pos[k] + 0.1 * mols[i].vel[k];
    }
  }
  return sum;
}

}  // namespace

WaterApp::WaterApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      mols_ = 64;
      steps_ = 2;
      break;
    case kSizeLarge:
      mols_ = 512;
      steps_ = 4;
      break;
    default:
      mols_ = 216;
      steps_ = 3;
      break;
  }
}

std::size_t WaterApp::HeapBytes() const { return static_cast<std::size_t>(mols_) * sizeof(Mol); }

SyncShape WaterApp::Sync() const {
  SyncShape s;
  s.locks = kLockStride + mols_;
  return s;
}

std::string WaterApp::ProblemSize() const {
  return std::to_string(mols_) + " mols x" + std::to_string(steps_);
}

double WaterApp::RunParallel(Runtime& rt) {
  const GlobalAddr mols_addr = rt.heap().AllocPageAligned(HeapBytes());
  const int n = mols_;
  const int steps = steps_;
  rt.Run([&](Context& ctx) {
    Mol* mols = ctx.Ptr<Mol>(mols_addr);
    const int procs = ctx.total_procs();
    const int chunk = (n + procs - 1) / procs;
    const int begin = ctx.proc() * chunk;
    const int end = begin + chunk < n ? begin + chunk : n;
    if (ctx.proc() == 0) {
      InitMols(mols, n);
    }
    ctx.Barrier(0);
    ctx.InitDone();
    std::vector<double> acc(static_cast<std::size_t>(n) * 3, 0.0);
    for (int step = 0; step < steps; ++step) {
      // Inter-molecular forces: i in my chunk, j > i anywhere. Local
      // accumulation first, then lock-protected updates into the shared
      // array — the migratory pattern the paper describes.
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int i = begin; i < end; ++i) {
        ctx.Poll();
        for (int j = i + 1; j < n; ++j) {
          double f[3];
          if (PairForce(mols[i], mols[j], f)) {
            for (int k = 0; k < 3; ++k) {
              acc[static_cast<std::size_t>(i) * 3 + k] += f[k];
              acc[static_cast<std::size_t>(j) * 3 + k] -= f[k];
            }
          }
        }
      }
      for (int i = 0; i < n; ++i) {
        const double* a = &acc[static_cast<std::size_t>(i) * 3];
        if (a[0] == 0.0 && a[1] == 0.0 && a[2] == 0.0) {
          continue;
        }
        ctx.LockAcquire(kLockStride + i);
        for (int k = 0; k < 3; ++k) {
          mols[i].force[k] += a[k];
        }
        ctx.LockRelease(kLockStride + i);
      }
      ctx.Barrier(0);
      Integrate(mols, begin, end);
      ctx.Barrier(0);
    }
  });
  std::vector<Mol> out(static_cast<std::size_t>(n));
  rt.CopyOut(mols_addr, out.data(), out.size() * sizeof(Mol));
  return Checksum(out.data(), n);
}

double WaterApp::RunSequential() {
  std::vector<Mol> mols(static_cast<std::size_t>(mols_));
  InitMols(mols.data(), mols_);
  for (int step = 0; step < steps_; ++step) {
    for (int i = 0; i < mols_; ++i) {
      for (int j = i + 1; j < mols_; ++j) {
        double f[3];
        if (PairForce(mols[i], mols[j], f)) {
          for (int k = 0; k < 3; ++k) {
            mols[i].force[k] += f[k];
            mols[j].force[k] -= f[k];
          }
        }
      }
    }
    Integrate(mols.data(), 0, mols_);
  }
  return Checksum(mols.data(), mols_);
}

CASHMERE_REGISTER_APP(WaterApp, AppKind::kWater, "Water");

}  // namespace cashmere
