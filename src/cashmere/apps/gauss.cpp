// Gaussian elimination with back-substitution (Section 3.2).
//
// Rows of the augmented matrix are distributed cyclically for load balance;
// a synchronization flag per row announces that the pivot row is available
// (single-producer/multiple-consumer — the paper notes this is ideally a
// broadcast, which is why Gauss benefits so strongly from intra-node
// sharing). Elimination order is fixed, so results are bit-exact.
#include "cashmere/apps/apps.hpp"

#include <cmath>
#include <vector>

namespace cashmere {

namespace {

void InitSystem(double* a, int n) {
  // Augmented matrix n x (n+1): diagonally dominant, deterministic.
  const int w = n + 1;
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n; ++j) {
      const double v = 0.1 + ((i * 37 + j * 11) % 53) / 53.0;
      a[static_cast<std::size_t>(i) * w + j] = v;
      row_sum += v;
    }
    a[static_cast<std::size_t>(i) * w + i] += row_sum;  // dominance
    a[static_cast<std::size_t>(i) * w + n] = 1.0 + (i % 7);  // rhs
  }
}

void EliminateRow(double* a, int n, int i, int k) {
  const int w = n + 1;
  double* ri = a + static_cast<std::size_t>(i) * w;
  const double* rk = a + static_cast<std::size_t>(k) * w;
  const double factor = ri[k] / rk[k];
  for (int j = k; j <= n; ++j) {
    ri[j] -= factor * rk[j];
  }
}

void BackSubstitute(const double* a, int n, double* x) {
  const int w = n + 1;
  for (int i = n - 1; i >= 0; --i) {
    double v = a[static_cast<std::size_t>(i) * w + n];
    for (int j = i + 1; j < n; ++j) {
      v -= a[static_cast<std::size_t>(i) * w + j] * x[j];
    }
    x[i] = v / a[static_cast<std::size_t>(i) * w + i];
  }
}

double Checksum(const double* x, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += x[i] * ((i % 11) + 1);
  }
  return sum;
}

}  // namespace

GaussApp::GaussApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      n_ = 64;
      break;
    case kSizeLarge:
      n_ = 320;
      break;
    default:
      n_ = 160;
      break;
  }
}

std::size_t GaussApp::HeapBytes() const {
  return static_cast<std::size_t>(n_) * (n_ + 1) * sizeof(double) +
         static_cast<std::size_t>(n_) * sizeof(double);
}

SyncShape GaussApp::Sync() const {
  SyncShape s;
  s.flags = n_ + 8;
  return s;
}

std::string GaussApp::ProblemSize() const {
  return std::to_string(n_) + "x" + std::to_string(n_);
}

double GaussApp::RunParallel(Runtime& rt) {
  const int n = n_;
  const GlobalAddr a_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(n) * (n + 1) * sizeof(double));
  const GlobalAddr x_addr = rt.heap().AllocPageAligned(static_cast<std::size_t>(n) * sizeof(double));
  rt.Run([&](Context& ctx) {
    double* a = ctx.Ptr<double>(a_addr);
    const int procs = ctx.total_procs();
    if (ctx.proc() == 0) {
      InitSystem(a, n);
    }
    ctx.Barrier(0);
    ctx.InitDone();
    // Cyclic row ownership: row i belongs to processor i % procs. A row is
    // published through its flag once it has been eliminated against every
    // earlier pivot.
    if (0 % procs == ctx.proc()) {
      ctx.FlagSet(0, 1);  // row 0 is a ready pivot immediately
    }
    for (int k = 0; k < n - 1; ++k) {
      ctx.Poll();
      ctx.FlagWaitGe(k, 1);
      for (int i = k + 1; i < n; ++i) {
        if (i % procs != ctx.proc()) {
          continue;
        }
        EliminateRow(a, n, i, k);
        if (i == k + 1) {
          ctx.FlagSet(k + 1, 1);  // next pivot row fully eliminated
        }
      }
    }
    ctx.Barrier(0);
    if (ctx.proc() == 0) {
      double* x = ctx.Ptr<double>(x_addr);
      BackSubstitute(a, n, x);
    }
    ctx.Barrier(0);
  });
  std::vector<double> x(static_cast<std::size_t>(n));
  rt.CopyOut(x_addr, x.data(), x.size() * sizeof(double));
  return Checksum(x.data(), n);
}

double GaussApp::RunSequential() {
  const int n = n_;
  std::vector<double> a(static_cast<std::size_t>(n) * (n + 1));
  InitSystem(a.data(), n);
  for (int k = 0; k < n - 1; ++k) {
    for (int i = k + 1; i < n; ++i) {
      EliminateRow(a.data(), n, i, k);
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  BackSubstitute(a.data(), n, x.data());
  return Checksum(x.data(), n);
}

CASHMERE_REGISTER_APP(GaussApp, AppKind::kGauss, "Gauss");

}  // namespace cashmere
