// SPLASH-2 blocked dense LU factorization (Section 3.2).
//
// The matrix is divided into square blocks, stored block-contiguously for
// locality; each block is owned by one processor (2D scatter), which
// performs all computation on it. Three barrier-separated phases per step:
// diagonal factorization, perimeter update, interior update. Block
// computations are independent, so the result is bit-identical to the
// sequential reference.
#include "cashmere/apps/apps.hpp"

#include <vector>

namespace cashmere {

namespace {

struct LuGeometry {
  int n;
  int block;
  int nb;  // blocks per dimension

  std::size_t BlockOffset(int bi, int bj) const {
    return (static_cast<std::size_t>(bi) * nb + bj) * block * block;
  }
};

// In-place LU of a b x b diagonal block (no pivoting; matrix constructed
// diagonally dominant).
void FactorDiagonal(double* a, int b) {
  for (int k = 0; k < b; ++k) {
    for (int i = k + 1; i < b; ++i) {
      a[i * b + k] /= a[k * b + k];
      const double lik = a[i * b + k];
      for (int j = k + 1; j < b; ++j) {
        a[i * b + j] -= lik * a[k * b + j];
      }
    }
  }
}

// Row-perimeter block: A := L(diag)^-1 * A (forward solve).
void UpdateRowPerimeter(const double* diag, double* a, int b) {
  for (int k = 0; k < b; ++k) {
    for (int i = k + 1; i < b; ++i) {
      const double lik = diag[i * b + k];
      for (int j = 0; j < b; ++j) {
        a[i * b + j] -= lik * a[k * b + j];
      }
    }
  }
}

// Column-perimeter block: A := A * U(diag)^-1 (backward solve on columns).
void UpdateColPerimeter(const double* diag, double* a, int b) {
  for (int k = 0; k < b; ++k) {
    const double ukk = diag[k * b + k];
    for (int i = 0; i < b; ++i) {
      a[i * b + k] /= ukk;
      const double aik = a[i * b + k];
      for (int j = k + 1; j < b; ++j) {
        a[i * b + j] -= aik * diag[k * b + j];
      }
    }
  }
}

// Interior block: A -= L * U.
void UpdateInterior(const double* l, const double* u, double* a, int b) {
  for (int i = 0; i < b; ++i) {
    for (int k = 0; k < b; ++k) {
      const double lik = l[i * b + k];
      for (int j = 0; j < b; ++j) {
        a[i * b + j] -= lik * u[k * b + j];
      }
    }
  }
}

void InitMatrix(double* a, const LuGeometry& g) {
  // Diagonally dominant deterministic matrix (stable without pivoting).
  for (int bi = 0; bi < g.nb; ++bi) {
    for (int bj = 0; bj < g.nb; ++bj) {
      double* blk = a + g.BlockOffset(bi, bj);
      for (int i = 0; i < g.block; ++i) {
        for (int j = 0; j < g.block; ++j) {
          const int gi = bi * g.block + i;
          const int gj = bj * g.block + j;
          double v = 0.5 + 0.25 * (((gi * 131 + gj * 17) % 97) / 97.0);
          if (gi == gj) {
            v += 2.0 * g.n;
          }
          blk[i * g.block + j] = v;
        }
      }
    }
  }
}

// 2D processor scatter: choose pr x pc close to square.
void ProcGrid(int procs, int* pr, int* pc) {
  int r = 1;
  for (int d = 1; d * d <= procs; ++d) {
    if (procs % d == 0) {
      r = d;
    }
  }
  *pr = r;
  *pc = procs / r;
}

int OwnerOf(int bi, int bj, int pr, int pc) { return (bi % pr) * pc + (bj % pc); }

void FactorStep(double* a, const LuGeometry& g, int k, int me, int procs, int pr, int pc,
                int phase) {
  double* diag = a + g.BlockOffset(k, k);
  switch (phase) {
    case 0:
      if (me < 0 || OwnerOf(k, k, pr, pc) == me) {
        FactorDiagonal(diag, g.block);
      }
      break;
    case 1:
      for (int j = k + 1; j < g.nb; ++j) {
        if (me < 0 || OwnerOf(k, j, pr, pc) == me) {
          UpdateRowPerimeter(diag, a + g.BlockOffset(k, j), g.block);
        }
      }
      for (int i = k + 1; i < g.nb; ++i) {
        if (me < 0 || OwnerOf(i, k, pr, pc) == me) {
          UpdateColPerimeter(diag, a + g.BlockOffset(i, k), g.block);
        }
      }
      break;
    case 2:
      for (int i = k + 1; i < g.nb; ++i) {
        const double* l = a + g.BlockOffset(i, k);
        for (int j = k + 1; j < g.nb; ++j) {
          if (me < 0 || OwnerOf(i, j, pr, pc) == me) {
            UpdateInterior(l, a + g.BlockOffset(k, j), a + g.BlockOffset(i, j), g.block);
          }
        }
      }
      break;
    default:
      break;
  }
}

double Checksum(const double* a, const LuGeometry& g) {
  double sum = 0.0;
  const std::size_t total = static_cast<std::size_t>(g.n) * g.n;
  for (std::size_t i = 0; i < total; ++i) {
    sum += a[i] * ((i % 13) + 1);
  }
  return sum;
}

}  // namespace

LuApp::LuApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      n_ = 64;
      block_ = 16;
      break;
    case kSizeLarge:
      n_ = 384;
      block_ = 32;
      break;
    default:
      n_ = 192;
      block_ = 16;
      break;
  }
}

std::size_t LuApp::HeapBytes() const {
  return static_cast<std::size_t>(n_) * n_ * sizeof(double);
}

std::string LuApp::ProblemSize() const {
  return std::to_string(n_) + "x" + std::to_string(n_) + " b" + std::to_string(block_);
}

double LuApp::RunParallel(Runtime& rt) {
  const LuGeometry g{n_, block_, n_ / block_};
  const GlobalAddr a_addr = rt.heap().AllocPageAligned(HeapBytes());
  rt.Run([&](Context& ctx) {
    double* a = ctx.Ptr<double>(a_addr);
    int pr = 1;
    int pc = 1;
    ProcGrid(ctx.total_procs(), &pr, &pc);
    if (ctx.proc() == 0) {
      InitMatrix(a, g);
    }
    ctx.Barrier(0);
    ctx.InitDone();
    for (int k = 0; k < g.nb; ++k) {
      ctx.Poll();
      FactorStep(a, g, k, ctx.proc(), ctx.total_procs(), pr, pc, 0);
      ctx.Barrier(0);
      FactorStep(a, g, k, ctx.proc(), ctx.total_procs(), pr, pc, 1);
      ctx.Barrier(0);
      FactorStep(a, g, k, ctx.proc(), ctx.total_procs(), pr, pc, 2);
      ctx.Barrier(0);
    }
  });
  std::vector<double> out(static_cast<std::size_t>(n_) * n_);
  rt.CopyOut(a_addr, out.data(), out.size() * sizeof(double));
  return Checksum(out.data(), g);
}

double LuApp::RunSequential() {
  const LuGeometry g{n_, block_, n_ / block_};
  std::vector<double> a(static_cast<std::size_t>(n_) * n_);
  InitMatrix(a.data(), g);
  for (int k = 0; k < g.nb; ++k) {
    FactorStep(a.data(), g, k, -1, 1, 1, 1, 0);
    FactorStep(a.data(), g, k, -1, 1, 1, 1, 1);
    FactorStep(a.data(), g, k, -1, 1, 1, 1, 2);
  }
  return Checksum(a.data(), g);
}

CASHMERE_REGISTER_APP(LuApp, AppKind::kLu, "LU");

}  // namespace cashmere
