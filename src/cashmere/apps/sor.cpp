// Red-Black Successive Over-Relaxation (Section 3.2).
//
// The grid is divided into roughly equal bands of rows, one band per
// processor; communication happens across band boundaries; processors
// synchronize with barriers after each colour phase. The red/black split
// makes the computation deterministic, so the parallel checksum matches the
// sequential reference bit for bit.
#include "cashmere/apps/apps.hpp"

#include <vector>

namespace cashmere {

namespace {

// One colour phase over rows [row_begin, row_end).
void RelaxPhase(double* grid, int rows, int cols, int row_begin, int row_end, int colour) {
  for (int i = row_begin; i < row_end; ++i) {
    if (i == 0 || i == rows - 1) {
      continue;  // fixed boundary
    }
    double* row = grid + static_cast<std::size_t>(i) * cols;
    const double* up = row - cols;
    const double* down = row + cols;
    for (int j = 1 + ((i + 1 + colour) % 2); j < cols - 1; j += 2) {
      row[j] = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
    }
  }
}

void InitGrid(double* grid, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const bool boundary = i == 0 || i == rows - 1 || j == 0 || j == cols - 1;
      grid[static_cast<std::size_t>(i) * cols + j] = boundary ? 1.0 : 0.0;
    }
  }
}

double Checksum(const double* grid, int rows, int cols) {
  double sum = 0.0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(rows) * cols; ++k) {
    sum += grid[k];
  }
  return sum;
}

}  // namespace

SorApp::SorApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      rows_ = 48;
      cols_ = 64;
      iters_ = 4;
      break;
    case kSizeLarge:
      rows_ = 512;
      cols_ = 512;
      iters_ = 24;
      break;
    default:
      rows_ = 192;
      cols_ = 256;
      iters_ = 12;
      break;
  }
}

std::size_t SorApp::HeapBytes() const {
  return static_cast<std::size_t>(rows_) * cols_ * sizeof(double);
}

std::string SorApp::ProblemSize() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_) + " x" + std::to_string(iters_);
}

double SorApp::RunParallel(Runtime& rt) {
  const GlobalAddr grid_addr = rt.heap().AllocPageAligned(HeapBytes());
  const int rows = rows_;
  const int cols = cols_;
  const int iters = iters_;
  rt.Run([&](Context& ctx) {
    double* grid = ctx.Ptr<double>(grid_addr);
    const int procs = ctx.total_procs();
    const int band = (rows + procs - 1) / procs;
    const int begin = ctx.proc() * band;
    const int end = begin + band < rows ? begin + band : rows;
    if (ctx.proc() == 0) {
      InitGrid(grid, rows, cols);
    }
    ctx.Barrier(0);
    ctx.InitDone();
    for (int it = 0; it < iters; ++it) {
      ctx.Poll();
      RelaxPhase(grid, rows, cols, begin, end, 0);
      ctx.Barrier(0);
      RelaxPhase(grid, rows, cols, begin, end, 1);
      ctx.Barrier(0);
    }
  });
  std::vector<double> out(static_cast<std::size_t>(rows) * cols);
  rt.CopyOut(grid_addr, out.data(), out.size() * sizeof(double));
  return Checksum(out.data(), rows, cols);
}

double SorApp::RunSequential() {
  std::vector<double> grid(static_cast<std::size_t>(rows_) * cols_);
  InitGrid(grid.data(), rows_, cols_);
  for (int it = 0; it < iters_; ++it) {
    RelaxPhase(grid.data(), rows_, cols_, 0, rows_, 0);
    RelaxPhase(grid.data(), rows_, cols_, 0, rows_, 1);
  }
  return Checksum(grid.data(), rows_, cols_);
}

CASHMERE_REGISTER_APP(SorApp, AppKind::kSor, "SOR");

}  // namespace cashmere
