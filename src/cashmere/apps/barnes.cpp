// SPLASH-1 Barnes-Hut n-body simulation (Section 3.2).
//
// The major shared structures are two arrays: the bodies and the cells (the
// octree). As in the paper's version, tree construction is sequential
// (processor 0) while force computation and integration are parallel, with
// barriers between phases. Force accumulation per body follows a fixed
// traversal order, but the tolerance absorbs platform-level FP ordering.
#include "cashmere/apps/apps.hpp"

#include <cmath>
#include <vector>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/rng.hpp"

namespace cashmere {

namespace {

constexpr double kTheta = 0.6;   // opening criterion
constexpr double kSoft2 = 1e-4;  // softening
constexpr double kDt = 1e-2;

struct Body {
  double pos[3];
  double vel[3];
  double acc[3];
  double mass;
};

// Octree cell: child[i] >= 0 is a cell index; child[i] <= -2 encodes body
// (-child - 2); -1 is empty.
struct Cell {
  double center[3];
  double half;
  double mass;
  double com[3];
  std::int32_t child[8];
};

struct Tree {
  std::int32_t ncells = 0;
  std::int32_t root = -1;
};

int OctantOf(const Cell& c, const double* p) {
  int o = 0;
  for (int k = 0; k < 3; ++k) {
    if (p[k] >= c.center[k]) {
      o |= 1 << k;
    }
  }
  return o;
}

std::int32_t NewCell(Cell* cells, Tree* t, int max_cells, const double* center, double half) {
  CSM_CHECK(t->ncells < max_cells);
  const std::int32_t idx = t->ncells++;
  Cell& c = cells[idx];
  for (int k = 0; k < 3; ++k) {
    c.center[k] = center[k];
  }
  c.half = half;
  c.mass = 0.0;
  c.com[0] = c.com[1] = c.com[2] = 0.0;
  for (auto& ch : c.child) {
    ch = -1;
  }
  return idx;
}

void InsertBody(Cell* cells, Tree* t, int max_cells, const Body* bodies, std::int32_t cell,
                std::int32_t body) {
  Cell& c = cells[cell];
  const int o = OctantOf(c, bodies[body].pos);
  const std::int32_t ch = c.child[o];
  if (ch == -1) {
    c.child[o] = -static_cast<std::int32_t>(body) - 2;
    return;
  }
  if (ch <= -2) {
    // Split: replace the body leaf with a sub-cell holding both bodies.
    const std::int32_t other = -ch - 2;
    double center[3];
    const double half = c.half / 2.0;
    for (int k = 0; k < 3; ++k) {
      center[k] = c.center[k] + ((o >> k & 1) ? half : -half);
    }
    const std::int32_t sub = NewCell(cells, t, max_cells, center, half);
    c.child[o] = sub;
    InsertBody(cells, t, max_cells, bodies, sub, other);
    InsertBody(cells, t, max_cells, bodies, sub, body);
    return;
  }
  InsertBody(cells, t, max_cells, bodies, ch, body);
}

void ComputeMoments(Cell* cells, const Body* bodies, std::int32_t cell) {
  Cell& c = cells[cell];
  c.mass = 0.0;
  c.com[0] = c.com[1] = c.com[2] = 0.0;
  for (const std::int32_t ch : c.child) {
    if (ch == -1) {
      continue;
    }
    if (ch <= -2) {
      const Body& b = bodies[-ch - 2];
      c.mass += b.mass;
      for (int k = 0; k < 3; ++k) {
        c.com[k] += b.mass * b.pos[k];
      }
    } else {
      ComputeMoments(cells, bodies, ch);
      c.mass += cells[ch].mass;
      for (int k = 0; k < 3; ++k) {
        c.com[k] += cells[ch].mass * cells[ch].com[k];
      }
    }
  }
  if (c.mass > 0.0) {
    for (int k = 0; k < 3; ++k) {
      c.com[k] /= c.mass;
    }
  }
}

void BuildTree(Cell* cells, Tree* t, int max_cells, const Body* bodies, int n) {
  t->ncells = 0;
  double lo[3] = {1e30, 1e30, 1e30};
  double hi[3] = {-1e30, -1e30, -1e30};
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      lo[k] = std::min(lo[k], bodies[i].pos[k]);
      hi[k] = std::max(hi[k], bodies[i].pos[k]);
    }
  }
  double center[3];
  double half = 0.0;
  for (int k = 0; k < 3; ++k) {
    center[k] = (lo[k] + hi[k]) / 2.0;
    half = std::max(half, (hi[k] - lo[k]) / 2.0 + 1e-6);
  }
  t->root = NewCell(cells, t, max_cells, center, half);
  for (int i = 0; i < n; ++i) {
    InsertBody(cells, t, max_cells, bodies, t->root, i);
  }
  ComputeMoments(cells, bodies, t->root);
}

void AccumulateForce(const Cell* cells, const Body* bodies, std::int32_t node,
                     const Body& target, int self, double* acc) {
  if (node <= -2) {
    const int bi = -node - 2;
    if (bi == self) {
      return;
    }
    const Body& b = bodies[bi];
    double d[3];
    double r2 = kSoft2;
    for (int k = 0; k < 3; ++k) {
      d[k] = b.pos[k] - target.pos[k];
      r2 += d[k] * d[k];
    }
    const double inv = b.mass / (r2 * std::sqrt(r2));
    for (int k = 0; k < 3; ++k) {
      acc[k] += inv * d[k];
    }
    return;
  }
  const Cell& c = cells[node];
  double d[3];
  double r2 = kSoft2;
  for (int k = 0; k < 3; ++k) {
    d[k] = c.com[k] - target.pos[k];
    r2 += d[k] * d[k];
  }
  const double size = 2.0 * c.half;
  if (size * size < kTheta * kTheta * r2) {
    const double inv = c.mass / (r2 * std::sqrt(r2));
    for (int k = 0; k < 3; ++k) {
      acc[k] += inv * d[k];
    }
    return;
  }
  for (const std::int32_t ch : c.child) {
    if (ch != -1) {
      AccumulateForce(cells, bodies, ch, target, self, acc);
    }
  }
}

void InitBodies(Body* bodies, int n) {
  SplitMix64 rng(777);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      bodies[i].pos[k] = rng.NextDouble() * 10.0 - 5.0;
      bodies[i].vel[k] = (rng.NextDouble() - 0.5) * 0.1;
      bodies[i].acc[k] = 0.0;
    }
    bodies[i].mass = 0.5 + rng.NextDouble();
  }
}

void ForcePhase(const Cell* cells, const Tree* t, Body* bodies, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    double acc[3] = {0.0, 0.0, 0.0};
    AccumulateForce(cells, bodies, t->root, bodies[i], i, acc);
    for (int k = 0; k < 3; ++k) {
      bodies[i].acc[k] = acc[k];
    }
  }
}

void IntegratePhase(Body* bodies, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    for (int k = 0; k < 3; ++k) {
      bodies[i].vel[k] += bodies[i].acc[k] * kDt;
      bodies[i].pos[k] += bodies[i].vel[k] * kDt;
    }
  }
}

double Checksum(const Body* bodies, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      sum += bodies[i].pos[k];
    }
  }
  return sum;
}

}  // namespace

BarnesApp::BarnesApp(int size_class) {
  switch (size_class) {
    case kSizeTest:
      bodies_ = 128;
      steps_ = 2;
      break;
    case kSizeLarge:
      bodies_ = 2048;
      steps_ = 4;
      break;
    default:
      bodies_ = 512;
      steps_ = 3;
      break;
  }
}

std::size_t BarnesApp::HeapBytes() const {
  const std::size_t max_cells = 8 * static_cast<std::size_t>(bodies_) + 64;
  return static_cast<std::size_t>(bodies_) * sizeof(Body) + max_cells * sizeof(Cell) +
         sizeof(Tree) + kPageBytes;
}

std::string BarnesApp::ProblemSize() const {
  return std::to_string(bodies_) + " bodies x" + std::to_string(steps_);
}

double BarnesApp::RunParallel(Runtime& rt) {
  const int n = bodies_;
  const int steps = steps_;
  const int max_cells = 8 * n + 64;
  const GlobalAddr bodies_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(n) * sizeof(Body));
  const GlobalAddr cells_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(max_cells) * sizeof(Cell));
  const GlobalAddr tree_addr = rt.heap().AllocPageAligned(sizeof(Tree));
  rt.Run([&](Context& ctx) {
    Body* bodies = ctx.Ptr<Body>(bodies_addr);
    Cell* cells = ctx.Ptr<Cell>(cells_addr);
    Tree* tree = ctx.Ptr<Tree>(tree_addr);
    const int procs = ctx.total_procs();
    const int chunk = (n + procs - 1) / procs;
    const int begin = ctx.proc() * chunk;
    const int end = begin + chunk < n ? begin + chunk : n;
    if (ctx.proc() == 0) {
      InitBodies(bodies, n);
    }
    ctx.Barrier(0);
    ctx.InitDone();
    for (int step = 0; step < steps; ++step) {
      ctx.Poll();
      // Sequential tree construction (as in the paper's Barnes).
      if (ctx.proc() == 0) {
        BuildTree(cells, tree, max_cells, bodies, n);
      }
      ctx.Barrier(0);
      ForcePhase(cells, tree, bodies, begin, end);
      ctx.Barrier(0);
      IntegratePhase(bodies, begin, end);
      ctx.Barrier(0);
    }
  });
  std::vector<Body> out(static_cast<std::size_t>(n));
  rt.CopyOut(bodies_addr, out.data(), out.size() * sizeof(Body));
  return Checksum(out.data(), n);
}

double BarnesApp::RunSequential() {
  const int n = bodies_;
  const int max_cells = 8 * n + 64;
  std::vector<Body> bodies(static_cast<std::size_t>(n));
  std::vector<Cell> cells(static_cast<std::size_t>(max_cells));
  Tree tree;
  InitBodies(bodies.data(), n);
  for (int step = 0; step < steps_; ++step) {
    BuildTree(cells.data(), &tree, max_cells, bodies.data(), n);
    ForcePhase(cells.data(), &tree, bodies.data(), 0, n);
    IntegratePhase(bodies.data(), 0, n);
  }
  return Checksum(bodies.data(), n);
}

CASHMERE_REGISTER_APP(BarnesApp, AppKind::kBarnes, "Barnes");

}  // namespace cashmere
