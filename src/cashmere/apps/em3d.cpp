// Em3d (Section 3.2) — electromagnetic wave propagation through 3D objects
// (from Split-C). The major data structure is an array of electric and
// magnetic nodes, equally distributed among processors. With the standard
// input, a node depends only on nodes owned by the same or neighbouring
// processors, which is what the nearest-neighbour dependency pattern below
// reproduces. Barriers separate the E and H update phases; updates are
// per-element deterministic, so results are bit-exact.
#include "cashmere/apps/apps.hpp"

#include <vector>

#include "cashmere/common/rng.hpp"

namespace cashmere {

namespace {

// Dependencies of element i: `degree` neighbours centred on i in the other
// field's array (wrapping), with deterministic weights.
void UpdateField(double* dst, const double* src, int n, int degree, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    double v = dst[i];
    for (int d = 0; d < degree; ++d) {
      const int j = (i + d - degree / 2 + n) % n;
      const double w = 0.01 + 0.002 * ((i * 7 + d * 13) % 11);
      v -= w * src[j];
    }
    dst[i] = v * 0.999;
  }
}

void InitField(double* f, int n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int i = 0; i < n; ++i) {
    f[i] = rng.NextDouble() - 0.5;
  }
}

double Checksum(const double* e, const double* h, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += e[i] - h[i];
  }
  return sum;
}

}  // namespace

Em3dApp::Em3dApp(int size_class) {
  degree_ = 5;
  switch (size_class) {
    case kSizeTest:
      nodes_ = 4096;
      iters_ = 4;
      break;
    case kSizeLarge:
      nodes_ = 65536;
      iters_ = 20;
      break;
    default:
      nodes_ = 16384;
      iters_ = 10;
      break;
  }
}

std::size_t Em3dApp::HeapBytes() const {
  return 2 * static_cast<std::size_t>(nodes_ / 2) * sizeof(double);
}

std::string Em3dApp::ProblemSize() const {
  return std::to_string(nodes_) + " nodes x" + std::to_string(iters_);
}

double Em3dApp::RunParallel(Runtime& rt) {
  const int half = nodes_ / 2;
  const int degree = degree_;
  const int iters = iters_;
  const GlobalAddr e_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(half) * sizeof(double));
  const GlobalAddr h_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(half) * sizeof(double));
  rt.Run([&](Context& ctx) {
    double* e = ctx.Ptr<double>(e_addr);
    double* h = ctx.Ptr<double>(h_addr);
    const int procs = ctx.total_procs();
    const int chunk = (half + procs - 1) / procs;
    const int begin = ctx.proc() * chunk;
    const int end = begin + chunk < half ? begin + chunk : half;
    if (ctx.proc() == 0) {
      InitField(e, half, 111);
      InitField(h, half, 222);
    }
    ctx.Barrier(0);
    ctx.InitDone();
    for (int it = 0; it < iters; ++it) {
      ctx.Poll();
      UpdateField(e, h, half, degree, begin, end);
      ctx.Barrier(0);
      UpdateField(h, e, half, degree, begin, end);
      ctx.Barrier(0);
    }
  });
  std::vector<double> e(static_cast<std::size_t>(half));
  std::vector<double> h(static_cast<std::size_t>(half));
  rt.CopyOut(e_addr, e.data(), e.size() * sizeof(double));
  rt.CopyOut(h_addr, h.data(), h.size() * sizeof(double));
  return Checksum(e.data(), h.data(), half);
}

double Em3dApp::RunSequential() {
  const int half = nodes_ / 2;
  std::vector<double> e(static_cast<std::size_t>(half));
  std::vector<double> h(static_cast<std::size_t>(half));
  InitField(e.data(), half, 111);
  InitField(h.data(), half, 222);
  for (int it = 0; it < iters_; ++it) {
    UpdateField(e.data(), h.data(), half, degree_, 0, half);
    UpdateField(h.data(), e.data(), half, degree_, 0, half);
  }
  return Checksum(e.data(), h.data(), half);
}

CASHMERE_REGISTER_APP(Em3dApp, AppKind::kEm3d, "Em3d");

}  // namespace cashmere
