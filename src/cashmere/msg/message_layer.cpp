#include "cashmere/msg/message_layer.hpp"

#include "cashmere/common/logging.hpp"
#include "cashmere/common/trace.hpp"

namespace cashmere {

MessageLayer::MessageLayer(const Config& cfg)
    : units_(cfg.units()),
      bins_(static_cast<std::size_t>(units_) * static_cast<std::size_t>(units_)),
      pending_(static_cast<std::size_t>(units_)),
      poll_locks_(static_cast<std::size_t>(units_)),
      slots_(static_cast<std::size_t>(cfg.total_procs())),
      diff_slots_(static_cast<std::size_t>(cfg.total_procs())),
      next_seq_(static_cast<std::size_t>(cfg.total_procs())) {
  for (auto& s : next_seq_) {
    s.store(0, std::memory_order_relaxed);
  }
  unit_of_proc_.resize(static_cast<std::size_t>(cfg.total_procs()));
  for (ProcId p = 0; p < cfg.total_procs(); ++p) {
    unit_of_proc_[static_cast<std::size_t>(p)] = cfg.UnitOfProc(p);
  }
}

std::uint64_t MessageLayer::Send(ProcId from, UnitId dst_unit, Request request) {
  request.from_proc = from;
  request.seq = next_seq_[static_cast<std::size_t>(from)].fetch_add(1) + 1;
  if (TraceActive()) {
    // Flow id (requester << 32 | seq) pairs this send with the responder's
    // kReqServe and the requester's kReqDone in the merged stream.
    TraceEmit(EventKind::kReqSend, request.page, 0,
              static_cast<std::uint32_t>(request.kind),
              (static_cast<std::uint64_t>(from) << 32) | request.seq);
  }
  const UnitId src_unit = unit_of_proc_[static_cast<std::size_t>(from)];
  Bin& bin = BinOf(dst_unit, src_unit);
  Backoff backoff;
  bin.producer_lock.Lock();
  // Wait for ring space (drained by the destination's pollers).
  while (bin.head.load(std::memory_order_relaxed) -
             bin.tail.load(std::memory_order_acquire) >=
         Bin::kCapacity) {
    backoff.Pause();
  }
  const std::uint64_t head = bin.head.load(std::memory_order_relaxed);
  bin.ring[head % Bin::kCapacity] = request;
  bin.head.store(head + 1, std::memory_order_release);
  bin.producer_lock.Unlock();
  pending_[static_cast<std::size_t>(dst_unit)].v.fetch_add(1, std::memory_order_acq_rel);
  heartbeat_.fetch_add(1, std::memory_order_relaxed);
  return request.seq;
}

int MessageLayer::Poll(UnitId my_unit) {
  if (!HasPending(my_unit)) {
    return 0;
  }
  SpinLock& poll_lock = poll_locks_[static_cast<std::size_t>(my_unit)].lock;
  if (!poll_lock.TryLock()) {
    return 0;  // another local processor is already draining
  }
  int handled = 0;
  for (int src = 0; src < units_; ++src) {
    Bin& bin = BinOf(my_unit, src);
    while (true) {
      const std::uint64_t tail = bin.tail.load(std::memory_order_relaxed);
      if (tail == bin.head.load(std::memory_order_acquire)) {
        break;
      }
      Request request = bin.ring[tail % Bin::kCapacity];
      bin.tail.store(tail + 1, std::memory_order_release);
      pending_[static_cast<std::size_t>(my_unit)].v.fetch_sub(1, std::memory_order_acq_rel);
      CSM_CHECK(handler_ != nullptr);
      handler_->HandleRequest(request);
      ++handled;
    }
  }
  poll_lock.Unlock();
  if (handled > 0) {
    heartbeat_.fetch_add(static_cast<std::uint64_t>(handled), std::memory_order_relaxed);
  }
  return handled;
}

void MessageLayer::Complete(ProcId requester, std::uint64_t seq, std::uint32_t flags,
                            VirtTime responder_vt) {
  if (TraceActive()) {
    TraceEmit(EventKind::kReqServe, kNoTracePage, 0, flags,
              (static_cast<std::uint64_t>(requester) << 32) | seq);
  }
  ReplySlot& slot = SlotOf(requester);
  slot.flags = flags;
  slot.responder_vt = responder_vt;
  slot.done_seq.store(seq, std::memory_order_release);
  heartbeat_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cashmere
