// Run-serialized diff transport.
//
// The seed shipped outgoing diffs by walking the in-memory DiffBuffer and
// issuing one remote write per run. This layer finishes the wire format:
// the encoded diff — DiffRun headers followed by the payload snapshot — is
// serialized into a per-processor wire buffer owned by the message layer,
// and the apply side replays the runs directly from that image into the
// home node's master copy (one run McOp issued through the hub per run), never re-scanning
// the page word-by-word on the receive side.
//
// The sender performs the replay synchronously, which is faithful to the
// Memory Channel: a diff flush is DMA of the modified words into the home
// node's receive region, performed by the sender's writes themselves. By
// default traffic accounting is byte-identical to the seed's direct loop
// (payload bytes, one accounted write per run); the
// Config::diff.charge_run_headers variant additionally bills the 8-byte
// run headers as diff traffic (see config.hpp).
#ifndef CASHMERE_MSG_DIFF_WIRE_HPP_
#define CASHMERE_MSG_DIFF_WIRE_HPP_

#include <cstddef>
#include <cstdint>

#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {

// One serialized diff: [nruns run headers][nwords payload words], plus
// host-side metadata. Sized for the worst case (alternating dirty words),
// one slot per processor, so serialization never allocates — the flush
// paths run inside the SIGSEGV fault handler.
struct DiffWireSlot {
  PageId page = kInvalidPage;
  std::uint32_t nruns = 0;
  std::uint32_t nwords = 0;
  alignas(64) std::byte wire[DiffBuffer::kMaxRuns * kDiffRunHeaderBytes + kPageBytes];
};

// Serializes `diff` into `slot`. Returns the wire size in bytes
// (headers + payload), i.e. diff.WireBytes().
std::size_t SerializeDiffRuns(PageId page, const DiffBuffer& diff, DiffWireSlot& slot);

// Replays a serialized diff into the page frame at `master_base`: one
// run McOp issued through the hub per run, scattering exactly the modified words. Passes
// `header_bytes_per_run` through to the hub's traffic accounting (0 keeps
// the default payload-only accounting). Returns the wire bytes consumed,
// surfaced as the kDiffRunApplyBytes statistic.
std::size_t ReplayDiffWire(const DiffWireSlot& slot, McHub& hub, std::byte* master_base,
                           std::size_t header_bytes_per_run = 0);

}  // namespace cashmere

#endif  // CASHMERE_MSG_DIFF_WIRE_HPP_
