// Polling-based explicit requests (Section 2.3, Figures 2 and 5).
//
// The Memory Channel supports no remote reads, so reading remote data needs
// a message-passing protocol: the requester deposits a request in a
// per-(destination, source) bin inside the destination's receive region and
// raises the destination's polling flag; any processor of the destination
// unit notices the flag at its next poll, drains the bins, and writes the
// reply (page data) into the requester's reply buffer.
//
// Cashmere-2L uses explicit requests for exactly two purposes: fetching a
// page copy from its home node, and breaking a page out of exclusive mode.
#ifndef CASHMERE_MSG_MESSAGE_LAYER_HPP_
#define CASHMERE_MSG_MESSAGE_LAYER_HPP_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/msg/diff_wire.hpp"

namespace cashmere {

struct Request {
  enum class Kind : std::uint32_t {
    kPageFetch = 0,
    kBreakExclusive = 1,
  };
  Kind kind = Kind::kPageFetch;
  PageId page = kInvalidPage;
  ProcId from_proc = -1;
  std::uint64_t seq = 0;  // requester's outstanding-request sequence
  VirtTime send_vt = 0;   // requester's virtual clock at send time
};

// Reply flags.
inline constexpr std::uint32_t kReplyHasPage = 1u << 0;    // data[] holds the page image
inline constexpr std::uint32_t kReplyFetchHome = 1u << 1;  // requester should fetch from home

// One reply buffer per processor ("page read buffers" in the paper).
struct ReplySlot {
  alignas(64) std::atomic<std::uint64_t> done_seq{0};
  std::uint32_t flags = 0;
  VirtTime responder_vt = 0;
  alignas(64) std::byte data[kPageBytes];
};

// Implemented by the protocol; invoked on the responding processor's thread
// during a poll.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual void HandleRequest(const Request& request) = 0;
};

class MessageLayer {
 public:
  explicit MessageLayer(const Config& cfg);
  MessageLayer(const MessageLayer&) = delete;
  MessageLayer& operator=(const MessageLayer&) = delete;

  void set_handler(RequestHandler* handler) { handler_ = handler; }

  // Deposits a request for `dst_unit`. Returns the sequence number to wait
  // on if a reply is expected.
  std::uint64_t Send(ProcId from, UnitId dst_unit, Request request);

  // Drains this unit's bins if any requests are pending. Returns the number
  // of requests handled. Cheap when idle (one relaxed load).
  int Poll(UnitId my_unit);

  bool HasPending(UnitId my_unit) const {
    return pending_[static_cast<std::size_t>(my_unit)].v.load(std::memory_order_acquire) > 0;
  }

  // Reply path: the responder fills `slot.data`/flags and then calls
  // Complete. The requester's wait loop lives in the protocol (it must poll
  // its own unit while waiting, to avoid cross-unit deadlock).
  ReplySlot& SlotOf(ProcId proc) { return slots_[static_cast<std::size_t>(proc)]; }
  void Complete(ProcId requester, std::uint64_t seq, std::uint32_t flags, VirtTime responder_vt);

  // Per-processor diff wire buffer ("diff transmit region"): the flush
  // paths serialize encoded runs here and replay them into the home node's
  // master copy (see diff_wire.hpp). Preallocated like the reply slots so
  // flushes inside the SIGSEGV handler never allocate.
  DiffWireSlot& DiffSlotOf(ProcId proc) {
    return diff_slots_[static_cast<std::size_t>(proc)];
  }

  // Global progress heartbeat for the deadlock watchdog.
  std::uint64_t heartbeat() const { return heartbeat_.load(std::memory_order_relaxed); }

 private:
  struct Bin {
    SpinLock producer_lock;
    static constexpr std::size_t kCapacity = 1024;
    std::atomic<std::uint64_t> head{0};  // next slot to fill
    std::atomic<std::uint64_t> tail{0};  // next slot to drain
    Request ring[kCapacity];
  };
  struct alignas(64) PaddedAtomicInt {
    std::atomic<int> v{0};
  };
  struct alignas(64) PaddedSpinLock {
    SpinLock lock;
  };

  Bin& BinOf(UnitId dst, UnitId src) {
    return bins_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(units_) +
                 static_cast<std::size_t>(src)];
  }

  int units_;
  RequestHandler* handler_ = nullptr;
  std::vector<Bin> bins_;                  // [dst_unit][src_unit]
  std::vector<PaddedAtomicInt> pending_;   // per destination unit
  std::vector<PaddedSpinLock> poll_locks_; // per destination unit
  std::vector<ReplySlot> slots_;           // per processor
  std::vector<DiffWireSlot> diff_slots_;   // per processor
  std::vector<std::atomic<std::uint64_t>> next_seq_;  // per processor
  std::vector<UnitId> unit_of_proc_;
  std::atomic<std::uint64_t> heartbeat_{0};
};

}  // namespace cashmere

#endif  // CASHMERE_MSG_MESSAGE_LAYER_HPP_
