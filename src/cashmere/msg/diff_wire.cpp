#include "cashmere/msg/diff_wire.hpp"

#include <cstring>

namespace cashmere {

std::size_t SerializeDiffRuns(PageId page, const DiffBuffer& diff, DiffWireSlot& slot) {
  slot.page = page;
  slot.nruns = static_cast<std::uint32_t>(diff.run_count());
  slot.nwords = static_cast<std::uint32_t>(diff.words());
  std::byte* cursor = slot.wire;
  for (std::size_t r = 0; r < diff.run_count(); ++r) {
    const DiffRun run = diff.run(r);
    // csm-lint: allow(raw-page-copy) -- wire slot is private to the flushing
    // processor; word atomicity is re-established by the replay's MC writes.
    std::memcpy(cursor, &run, kDiffRunHeaderBytes);
    cursor += kDiffRunHeaderBytes;
  }
  // The payload is the encoder's snapshot (already word-exact values); the
  // slot is private to the flushing processor, so plain copies suffice —
  // word atomicity is re-established by the replay's remote writes.
  std::memcpy(cursor, diff.payload(0), diff.words() * kWordBytes);  // csm-lint: allow(raw-page-copy) -- private slot, as above
  return diff.WireBytes();
}

std::size_t ReplayDiffWire(const DiffWireSlot& slot, McHub& hub, std::byte* master_base,
                           std::size_t header_bytes_per_run) {
  const std::byte* headers = slot.wire;
  const std::byte* payload =
      slot.wire + static_cast<std::size_t>(slot.nruns) * kDiffRunHeaderBytes;
  std::size_t cursor_words = 0;
  for (std::uint32_t r = 0; r < slot.nruns; ++r) {
    DiffRun run;
    // csm-lint: allow(raw-page-copy) -- deserializes a header out of the
    // private wire slot into a local; page data flows through hub.Issue.
    std::memcpy(&run, headers + static_cast<std::size_t>(r) * kDiffRunHeaderBytes,
                kDiffRunHeaderBytes);
    hub.Issue(McOp::Run(master_base, run.offset_words,
                        payload + cursor_words * kWordBytes, run.nwords,
                        Traffic::kDiffData, header_bytes_per_run));
    cursor_words += run.nwords;
  }
  return cursor_words * kWordBytes +
         static_cast<std::size_t>(slot.nruns) * kDiffRunHeaderBytes;
}

}  // namespace cashmere
