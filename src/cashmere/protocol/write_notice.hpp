// Write-notice structures (Section 2.3, Figure 4).
//
// Each unit exposes a globally writable write-notice list with one *bin*
// per remote unit (so every bin has a single remote writer unit and needs
// no global lock). On an acquire, a processor drains the global bins and
// distributes the notices to per-processor second-level lists; each
// second-level list is a bitmap plus a queue protected by a local (ll/sc)
// lock, so duplicate notices cost one bit test.
//
// Both levels are bounded by the page count: a bin holds at most one
// pending entry per page (the bitmap deduplicates), which is exactly what
// makes the structure allocation-free and overflow-free.
#ifndef CASHMERE_PROTOCOL_WRITE_NOTICE_HPP_
#define CASHMERE_PROTOCOL_WRITE_NOTICE_HPP_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

// A deduplicating page queue: bitmap + ring. One producer side (guarded by
// `producer_lock` when there can be several producing processors) and one
// consumer at a time.
class PageNoticeQueue {
 public:
  explicit PageNoticeQueue(std::size_t pages);
  PageNoticeQueue(const PageNoticeQueue&) = delete;
  PageNoticeQueue& operator=(const PageNoticeQueue&) = delete;

  // Returns true if the page was newly enqueued (bit was clear).
  // Producer side: requires producer_lock when several processors can
  // produce into this queue (both call sites below take it).
  bool Post(PageId page) CSM_REQUIRES(producer_lock);
  // Drains all pending notices, invoking fn(page) for each. The bit is
  // cleared *before* fn runs, so a concurrent Post re-enqueues rather than
  // being lost. Returns the number drained.
  template <typename Fn>
  int Drain(Fn&& fn) {
    int n = 0;
    while (true) {
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (tail == head_.load(std::memory_order_acquire)) {
        break;
      }
      const PageId page = ring_[tail % ring_.size()];
      tail_.store(tail + 1, std::memory_order_release);
      ClearBit(page);
      fn(page);
      ++n;
    }
    return n;
  }

  // Drains at most `max` notices into `out` (bits cleared, as in Drain).
  int DrainUpTo(PageId* out, int max) {
    int n = 0;
    while (n < max) {
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (tail == head_.load(std::memory_order_acquire)) {
        break;
      }
      const PageId page = ring_[tail % ring_.size()];
      tail_.store(tail + 1, std::memory_order_release);
      ClearBit(page);
      out[n++] = page;
    }
    return n;
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  SpinLock producer_lock;

 private:
  bool TestAndSetBit(PageId page);
  void ClearBit(PageId page);

  std::vector<std::atomic<std::uint32_t>> bitmap_;
  // ring_ is deliberately NOT GUARDED_BY a lock: slot (h % size) is written
  // by the producer (under producer_lock) strictly before the release store
  // of head_ = h + 1, and read by the consumer only after its acquire load
  // of head_ observes h + 1 — a release/acquire handoff, the same idiom as
  // the message-layer bins. Capacity = page count and the bitmap dedup
  // guarantee head and tail can never be more than `pages` apart, so a slot
  // is never overwritten while still unconsumed.
  std::vector<PageId> ring_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

class WriteNoticeBoard {
 public:
  WriteNoticeBoard(const Config& cfg, McHub& hub);

  // Global level: deposits a notice for `page` into dst_unit's bin for
  // src_unit (an MC remote write).
  void PostGlobal(UnitId dst_unit, UnitId src_unit, PageId page);

  // Drains all of `self`'s global bins; fn(page) is called once per
  // deduplicated notice. Caller distributes to the per-processor lists.
  template <typename Fn>
  int DrainGlobal(UnitId self, Fn&& fn) {
    int n = 0;
    for (int src = 0; src < units_; ++src) {
      if (src == self) {
        continue;
      }
      PageNoticeQueue& bin = GlobalBin(self, src);
      SpinLockGuard guard(consumer_locks_[static_cast<std::size_t>(self)].lock);
      n += bin.Drain(fn);
    }
    return n;
  }

  bool GlobalPending(UnitId self) const;

  // Second level: per-processor lists.
  void PostLocal(ProcId proc, PageId page);
  // Drains the processor's list. The local lock is NOT held across `fn`:
  // callers' callbacks take page locks, while PostLocal is invoked *under*
  // page locks (write-notice distribution) — holding the queue lock across
  // the callback would invert that order and deadlock. Notices are pulled
  // in bounded chunks under the lock, then processed outside it.
  template <typename Fn>
  int DrainLocal(ProcId proc, Fn&& fn) {
    PageNoticeQueue& q = local_[static_cast<std::size_t>(proc)];
    int total = 0;
    while (true) {
      PageId buffer[64];
      int n = 0;
      {
        SpinLockGuard guard(q.producer_lock);  // paper: local ll/sc lock
        n = q.DrainUpTo(buffer, 64);
      }
      if (n == 0) {
        break;
      }
      for (int i = 0; i < n; ++i) {
        fn(buffer[i]);
      }
      total += n;
    }
    return total;
  }

 private:
  PageNoticeQueue& GlobalBin(UnitId dst, UnitId src) {
    return global_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(units_) +
                   static_cast<std::size_t>(src)];
  }
  const PageNoticeQueue& GlobalBin(UnitId dst, UnitId src) const {
    return global_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(units_) +
                   static_cast<std::size_t>(src)];
  }

  struct alignas(64) PaddedLock {
    SpinLock lock;
  };

  int units_;
  McHub& hub_;
  std::deque<PageNoticeQueue> global_;  // [dst][src]
  std::deque<PageNoticeQueue> local_;   // [proc]
  std::vector<PaddedLock> consumer_locks_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_WRITE_NOTICE_HPP_
