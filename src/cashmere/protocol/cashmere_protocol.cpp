#include "cashmere/protocol/cashmere_protocol.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/msg/diff_wire.hpp"
#include "cashmere/protocol/diff.hpp"
#include "cashmere/vm/perm_batch.hpp"


namespace cashmere {

namespace {

inline std::uint8_t Bit(int i) { return static_cast<std::uint8_t>(1u << i); }

// Stamps the per-(unit, page) transition sequence for trace events emitted
// under the page lock. Returns 0 (no sequence) while tracing is inactive so
// the counter never moves — and tracing can never perturb — untraced runs.
inline std::uint32_t NextTraceSeq(PageLocal& pl) {
  if (!TraceActive()) {
    return 0;
  }
  return pl.trace_seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

CashmereProtocol::CashmereProtocol(Deps deps) : deps_(deps), cfg_(*deps.cfg) {
  deps_.msg->set_handler(this);
}

// ---------------------------------------------------------------------------
// Topology helpers

bool CashmereProtocol::UnitAtMaster(UnitId unit, PageId page) const {
  const UnitId home = deps_.homes->HomeOfPage(page);
  if (unit == home) {
    return true;
  }
  if (cfg_.home_opt && !cfg_.two_level()) {
    // Home-node optimization: processors on the home processor's SMP node
    // share the master frame in hardware.
    return cfg_.NodeOfProc(cfg_.FirstProcOfUnit(unit)) ==
           cfg_.NodeOfProc(cfg_.FirstProcOfUnit(home));
  }
  return false;
}

// Page frames are addressed base-relatively: the arena names the frame as
// a position-independent {segment, offset} ref and the transport resolves
// it through this process's mapping table (one inline indexed load — the
// zero-cost fast path). Under the shm transport the same ref resolves to a
// different address in every process that mapped the segment.
std::byte* CashmereProtocol::MasterPtr(PageId page) const {
  const UnitId home = deps_.homes->HomeOfPage(page);
  const Arena& arena = *(*deps_.arenas)[static_cast<std::size_t>(home)];
  return deps_.hub->transport().Resolve(arena.FrameOf(page));
}

std::byte* CashmereProtocol::WorkingPtr(UnitId unit, PageId page) const {
  if (UnitAtMaster(unit, page)) {
    return MasterPtr(page);
  }
  const Arena& arena = *(*deps_.arenas)[static_cast<std::size_t>(unit)];
  return deps_.hub->transport().Resolve(arena.FrameOf(page));
}

void CashmereProtocol::ProtectLocal(Context& ctx, PageLocal& pl, UnitId unit, int local_index,
                                    PageId page, Perm perm) {
  if (pl.PermOfLocal(local_index) == perm) {
    return;
  }
  pl.SetPermOfLocal(local_index, perm);
  if (TraceActive()) {
    // Seq only when the transition lands in the emitting processor's own
    // unit: the checker attributes sequenced events to the emitter's unit,
    // and superpage relocation mutates the *old* home's page table.
    TraceEmit(EventKind::kPageProtect, page,
              unit == ctx.unit() ? NextTraceSeq(pl) : 0,
              static_cast<std::uint32_t>(perm),
              static_cast<std::uint64_t>(GlobalProc(unit, local_index)));
  }
  if (cfg_.fault_mode == FaultMode::kSigsegv) {
    // Queue the hardware change instead of issuing it: the episode commits
    // the coalesced batch before any point where a stale-loose mapping
    // could be observed (DESIGN.md §11). Software mode never queues — the
    // views stay fully open and the page table alone carries permissions.
    ctx.perm_batch().Add(GlobalProc(unit, local_index), page, perm);
    if (!cfg_.vm.batch_mprotect) {
      ctx.perm_batch().Commit();  // historical one-syscall-per-page timing
    }
  }
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.mprotect_us));
}

void CashmereProtocol::CommitPermBatch(Context& ctx) {
  if (cfg_.fault_mode != FaultMode::kSigsegv) {
    return;
  }
  ctx.perm_batch().Commit();
}

Perm CashmereProtocol::ResolveQueuedPerm(void* self, ProcId proc, PageId page,
                                         Perm /*queued*/) {
  auto* proto = static_cast<CashmereProtocol*>(self);
  const UnitId unit = proto->cfg_.UnitOfProc(proc);
  // Lock-free probe of the protocol's current truth (documented benign
  // race, page_table.hpp): the view commit lock's release/acquire ordering
  // ensures the last commit to touch a page observes its latest transition.
  return proto->Unit(unit).Page(page).PermOfLocalRelaxed(
      proc - proto->cfg_.FirstProcOfUnit(unit));
}

// ---------------------------------------------------------------------------
// Directory helpers

void CashmereProtocol::UpdateDirWord(Context& ctx, PageId page, DirWord word) {
  DirWriteResult res;
  if (IsGlobalLock()) {
    SpinLockGuard guard(deps_.dir->EntryLock(page));
    // csm-lint: allow(raw-dir-write) -- UpdateDirWord IS the sanctioned
    // directory-write funnel; every fault/acquire-path caller routes here.
    res = deps_.dir->Write(page, ctx.unit(), word);
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.dir_update_locked_us));
  } else {
    // csm-lint: allow(raw-dir-write) -- UpdateDirWord IS the sanctioned
    // directory-write funnel; every fault/acquire-path caller routes here.
    res = deps_.dir->Write(page, ctx.unit(), word);
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.dir_update_us));
  }
  ctx.stats().Add(Counter::kDirectoryUpdates);
  ctx.stats().Add(res.p2p ? Counter::kDirP2PUpdates : Counter::kDirBroadcastUpdates);
  if (TraceActive()) {
    UnitState& us = Unit(ctx.unit());
    TraceEmit(EventKind::kDirUpdate, page, NextTraceSeq(us.Page(page)),
              DirUpdateTraceArg(word, res), us.Now());
  }
}

void CashmereProtocol::SetTwinTraced(PageLocal& pl, PageId page, bool valid) {
  if (pl.twin_valid == valid) {
    return;  // idempotent store: no transition, no generation bump, no event
  }
  pl.SetTwinValid(valid);
  TraceEmit(valid ? EventKind::kTwinCreate : EventKind::kTwinDiscard, page,
            NextTraceSeq(pl), 0, pl.twin_gen.load(std::memory_order_relaxed));
}

void CashmereProtocol::RefreshLoosestPerm(Context& ctx, PageLocal& pl, PageId page) {
  Perm loosest = pl.Loosest(cfg_.procs_per_unit());
  // Keep presence in the sharing set while the unit holds unflushed
  // modifications (no other unit may claim exclusive mode and later
  // overwrite our pending flush with a stale full-page copy), and while a
  // fetch is in flight (a concurrent releaser must count us as a sharer so
  // we receive its write notice — the paper updates the directory entry
  // *first* in the fault handler for exactly this reason). Published-but-
  // unapplied log records (async mode) are pending flushes in the same
  // sense: the modifications have left the dirty lists but are not in the
  // master copy yet, so exclusive claims must stay blocked until the
  // cache agent applies them.
  if (loosest == Perm::kInvalid &&
      (pl.dirty_mask != 0 || pl.twin_valid ||
       pl.pending_flush.load(std::memory_order_acquire) != 0 ||
       pl.fetch_in_progress.load(std::memory_order_acquire))) {
    loosest = Perm::kRead;
  }
  DirWord word;
  word.perm = loosest;
  word.exclusive = pl.exclusive;
  word.excl_proc = pl.exclusive ? pl.excl_proc : 0;
  const DirWord current = deps_.dir->Read(page, ctx.unit());
  if (current.Pack() != word.Pack()) {
    UpdateDirWord(ctx, page, word);
  }
}

// ---------------------------------------------------------------------------
// Polling and request handling

void CashmereProtocol::Poll(Context& ctx) {
  ctx.stats().Add(Counter::kPolls);
  ctx.clock().Charge(ctx.stats(), TimeCategory::kPolling,
                     static_cast<std::uint64_t>(cfg_.costs.poll_ns));
  if (deps_.msg->HasPending(ctx.unit())) {
    ProtocolScope scope(ctx);
    deps_.msg->Poll(ctx.unit());
  }
}

void CashmereProtocol::HandleRequest(const Request& request) {
  Context& ctx = *Context::Current();
  ctx.stats().Add(Counter::kMessagesHandled);
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.request_handle_us));
  if (cfg_.delivery == DeliveryMode::kInterrupt) {
    // In interrupt mode the request would have interrupted us.
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.inter_node_interrupt_us));
  }
  const PageId page = request.page;
  switch (request.kind) {
    case Request::Kind::kPageFetch: {
      // We are (a processor of) the page's home unit: write the master copy
      // into the requester's page read buffer.
      ReplySlot& slot = deps_.msg->SlotOf(request.from_proc);
      deps_.hub->Issue(
          McOp::Stream(slot.data, MasterPtr(page), kWordsPerPage, Traffic::kPageData));
      deps_.msg->Complete(request.from_proc, request.seq, kReplyHasPage, ctx.clock().now());
      return;
    }
    case Request::Kind::kBreakExclusive: {
      UnitState& us = Unit(ctx.unit());
      PageLocal& pl = us.Page(page);
      SpinLockGuard guard(pl.lock);
      if (!pl.exclusive) {
        // Raced with another break or a voluntary exit: master is current.
        deps_.msg->Complete(request.from_proc, request.seq, kReplyFetchHome,
                            ctx.clock().now());
        return;
      }
      pl.exclusive = false;
      ctx.stats().Add(Counter::kExclTransitions);
      if (TraceActive()) {
        TraceEmit(EventKind::kExclBreak, page, NextTraceSeq(pl),
                  static_cast<std::uint32_t>(pl.excl_proc), 0);
      }
      std::byte* working = WorkingPtr(ctx.unit(), page);
      if (!UnitAtMaster(ctx.unit(), page)) {
        // Flush the entire page to the home node (Section 2.4.1).
        deps_.hub->Issue(
            McOp::Stream(MasterPtr(page), working, kWordsPerPage, Traffic::kPageData));
        pl.flush_ts.store(us.Tick(), std::memory_order_release);
        ctx.stats().Add(Counter::kPageFlushes);
        ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                           cfg_.costs.PageTransferNs(false, cfg_.two_level()));
      }
      // The exclusive holder processor is downgraded so its future writes
      // fault; other local writers keep their mappings but are noted in
      // their no-longer-exclusive lists so they flush (and send write
      // notices) at their next release. At the master copy no twin is
      // needed — writes land in the master directly — but the NLE entries
      // still drive write-notice generation.
      const int holder_li = pl.excl_proc - cfg_.FirstProcOfUnit(ctx.unit());
      bool other_writers = false;
      for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
        if (li != holder_li && pl.PermOfLocal(li) == Perm::kReadWrite) {
          other_writers = true;
        }
      }
      if (other_writers) {
        if (!pl.twin_valid && !UnitAtMaster(ctx.unit(), page)) {
          CopyPage(TwinPtr(ctx.unit(), page), working);
          InitTwinMap(ctx, pl, ctx.unit(), page);
          SetTwinTraced(pl, page, true);
          ctx.stats().Add(Counter::kTwinCreations);
          if (!IsWriteDouble()) {
            ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                               CostModel::UsToNs(cfg_.costs.twin_us));
          }
        }
        for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
          if (li != holder_li && pl.PermOfLocal(li) == Perm::kReadWrite) {
            us.NleList(li).Add(page);
            pl.dirty_mask |= Bit(li);
          }
        }
      }
      if (holder_li >= 0 && holder_li < cfg_.procs_per_unit() &&
          pl.PermOfLocal(holder_li) == Perm::kReadWrite) {
        ProtectLocal(ctx, pl, ctx.unit(), holder_li, page, Perm::kRead);
      }
      RefreshLoosestPerm(ctx, pl, page);
      // The holder's hardware downgrade must land before the page is
      // shipped: a deferred mprotect would leave a window where the holder
      // keeps writing after the requester copied the "latest" contents.
      CommitPermBatch(ctx);
      // Piggyback the latest copy of the page to the requester.
      ReplySlot& slot = deps_.msg->SlotOf(request.from_proc);
      deps_.hub->Issue(
          McOp::Stream(slot.data, working, kWordsPerPage, Traffic::kPageData));
      deps_.msg->Complete(request.from_proc, request.seq, kReplyHasPage, ctx.clock().now());
      return;
    }
  }
}

std::uint64_t CashmereProtocol::AwaitReply(Context& ctx, std::uint64_t seq) {
  ctx.SetDebugState(2, seq);
  ReplySlot& slot = deps_.msg->SlotOf(ctx.proc());
  Backoff backoff;
  while (slot.done_seq.load(std::memory_order_acquire) < seq) {
    // Service our own unit's incoming requests while waiting, as the
    // paper's polling instrumentation does: this is what prevents two
    // mutually-fetching nodes from deadlocking.
    if (deps_.msg->HasPending(ctx.unit())) {
      deps_.msg->Poll(ctx.unit());
      backoff.Reset();
    } else {
      backoff.Pause();
    }
  }
  ctx.SetDebugState(1, 0xffffffff);  // back in the fault path
  return slot.responder_vt;
}

// ---------------------------------------------------------------------------
// Fault handling (Section 2.4.1)

bool CashmereProtocol::NeedFetch(const PageLocal& pl, UnitId unit, PageId page) const {
  if (pl.exclusive) {
    return false;  // we are the exclusive holder: the local copy is the copy
  }
  // Every fault consults the directory (Section 2.4.1): if another unit
  // holds the page exclusively, its modifications are invisible (no write
  // notices are generated in exclusive mode), so exclusivity must be broken
  // before the access proceeds — even when a timestamp-valid local copy or
  // the master frame is at hand. The holder-at-master case is the one
  // exception for master-sharing units: they read the same frame.
  const UnitId holder = deps_.dir->ExclusiveHolder(page, unit);
  if (holder >= 0 && holder != unit) {
    if (!(UnitAtMaster(unit, page) && UnitAtMaster(holder, page))) {
      return true;
    }
  }
  if (UnitAtMaster(unit, page)) {
    return false;  // we work directly on the (current) master copy
  }
  if (!pl.ever_valid) {
    return true;
  }
  // "Page fetch requests can safely be eliminated if the page's last update
  // timestamp is greater than the page's last write notice timestamp."
  return pl.update_ts.load(std::memory_order_acquire) <=
         pl.wn_ts.load(std::memory_order_acquire);
}

void CashmereProtocol::WaitFetchDone(Context& ctx, PageLocal& pl) {
  ctx.SetDebugState(8, reinterpret_cast<std::uintptr_t>(&pl) & 0xffffffffu);
  Backoff backoff;
  while (pl.fetch_in_progress.load(std::memory_order_acquire)) {
    if (deps_.msg->HasPending(ctx.unit())) {
      deps_.msg->Poll(ctx.unit());
      backoff.Reset();
    } else {
      backoff.Pause();
    }
  }
}

void CashmereProtocol::ApplyIncoming(Context& ctx, PageLocal& pl, PageId page,
                                     const std::byte* image, bool piggyback) {
  std::byte* working = WorkingPtr(ctx.unit(), page);
  if (pl.twin_valid) {
    // Two-way diffing (Section 2.5): merge only the remote modifications so
    // concurrent local writers are not disturbed — this replaces TLB
    // shootdown. (2LS never reaches here with a twin: it shoots down and
    // flushes before fetching.) The merge writes working and twin
    // identically, so the dirty-block map (working-vs-twin) is untouched.
    DiffScanStats scan;
    const std::size_t words =
        ApplyIncomingDiff(image, TwinPtr(ctx.unit(), page), working, &scan);
    ctx.stats().Add(Counter::kIncomingDiffs);
    ctx.stats().Add(Counter::kDiffBlocksScanned, scan.blocks_scanned);
    ctx.stats().Add(Counter::kDiffRunsEmitted, scan.runs);
    if (TraceActive()) {
      TraceEmit(EventKind::kDiffApplyIncoming, page, NextTraceSeq(pl),
                static_cast<std::uint32_t>(words), piggyback ? 1 : 0);
    }
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol, cfg_.costs.DiffInNs(words));
  } else {
    CopyPage(working, image);
    if (TraceActive()) {
      TraceEmit(EventKind::kPageCopy, page, NextTraceSeq(pl), 0, piggyback ? 1 : 0);
    }
  }
}

void CashmereProtocol::BreakRemoteExclusive(Context& ctx, PageLocal& pl, PageId page,
                                            UnitId holder) {
  // The update timestamp must not postdate any data the reply can contain:
  // stamp it at request time, so a write notice distributed while the
  // request is in flight still forces a refetch (update_ts <= wn_ts).
  const std::uint64_t fetch_start_ts = Unit(ctx.unit()).Tick();
  Request request;
  request.kind = Request::Kind::kBreakExclusive;
  request.page = page;
  request.send_vt = ctx.clock().now();
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.mc_write_latency_us));
  const std::uint64_t seq = deps_.msg->Send(ctx.proc(), holder, request);
  const VirtTime responder_vt = AwaitReply(ctx, seq);
  ReplySlot& slot = deps_.msg->SlotOf(ctx.proc());
  const VirtTime service = std::max(request.send_vt, responder_vt);
  // The holder's break-time flush and the reply each cross the serial MC
  // bus: latency bound under no contention, queuing bound under load.
  VirtTime arrival = std::max(service + cfg_.costs.PageTransferNs(false, cfg_.two_level()),
                              deps_.hub->ReserveBus(service, 2 * kPageBytes));
  if (cfg_.delivery == DeliveryMode::kInterrupt) {
    arrival += CostModel::UsToNs(cfg_.costs.inter_node_interrupt_us);
  }
  ctx.clock().AdvanceTo(ctx.stats(), arrival);
  if (TraceActive()) {
    TraceEmit(EventKind::kReqDone, page, 0,
              static_cast<std::uint32_t>(Request::Kind::kBreakExclusive),
              (static_cast<std::uint64_t>(ctx.proc()) << 32) | seq);
  }
  if ((slot.flags & kReplyHasPage) != 0) {
    ctx.stats().Add(Counter::kPageTransfers);
    if (!UnitAtMaster(ctx.unit(), page)) {
      // Apply under the page lock: a concurrent local flush diffing
      // working-vs-twin must not interleave with the incoming merge's
      // working-then-twin writes, or it can push a stale word to the home.
      SpinLockGuard guard(pl.lock);
      ApplyIncoming(ctx, pl, page, slot.data, /*piggyback=*/true);
      pl.update_ts.store(fetch_start_ts, std::memory_order_release);
      pl.ever_valid = true;
    }
    // At the master copy the holder's break-time flush already updated our
    // frame; the piggybacked image is redundant.
  }
  // The holder's directory downgrade just changed the entry: drop any
  // cached image so subsequent holder queries refetch (sharded backend).
  deps_.dir->InvalidateCached(ctx.unit(), page);
}

void CashmereProtocol::FetchPage(Context& ctx, PageLocal& pl, PageId page) {
  // Called with the page lock NOT held; fetch_in_progress is set so
  // concurrent local faults coalesce onto this fetch.
  const UnitId home = deps_.homes->HomeOfPage(page);

  // Async mode: this unit may have published diffs for the page that its
  // cache agent has not applied to the master copy yet. Reading the master
  // before our own writes land would lose them — same-unit visibility is
  // program order, not covered by the write-notice/gate machinery — so
  // wait for the agent first. Safe to spin here: the agent takes no page
  // locks and this path holds none.
  if (deps_.coh != nullptr) {
    Backoff pending;
    while (pl.pending_flush.load(std::memory_order_acquire) != 0) {
      if (deps_.msg->HasPending(ctx.unit())) {
        deps_.msg->Poll(ctx.unit());
        pending.Reset();
      } else {
        pending.Pause();
      }
    }
  }

  // 2LS: before fetching, shoot down concurrent local writers and flush,
  // so the incoming image can simply overwrite the frame (Section 2.6).
  if (IsShootdown()) {
    SpinLockGuard guard(pl.lock);
    if (pl.twin_valid) {
      ShootdownLocalWriters(ctx, pl, page);
    }
  }

  // Authoritative lookup: a cached "no holder" here could miss a claim
  // that raced with our fault and leave the holder's modifications
  // invisible (no write notices in exclusive mode), so re-read the entry.
  const UnitId holder = deps_.dir->ExclusiveHolderFresh(page, ctx.unit());
  if (holder >= 0 && holder != ctx.unit()) {
    BreakRemoteExclusive(ctx, pl, page, holder);
    if (UnitAtMaster(ctx.unit(), page)) {
      return;  // the holder's flush refreshed our (master) frame
    }
    {
      // ever_valid is lock-guarded (home relocation can write it from
      // another unit's processor); take the lock for the probe. The
      // timestamps are atomics, but reading them in the same critical
      // section keeps the ever_valid/update_ts pair coherent.
      SpinLockGuard guard(pl.lock);
      if (pl.ever_valid &&
          pl.update_ts.load(std::memory_order_acquire) >
              pl.wn_ts.load(std::memory_order_acquire)) {
        return;  // the piggybacked copy sufficed
      }
    }
  }
  if (UnitAtMaster(ctx.unit(), page)) {
    return;  // exclusivity already cleared; the master frame is current
  }

  // As above: the image cannot contain data newer than the request time.
  const std::uint64_t fetch_start_ts = Unit(ctx.unit()).Tick();
  Request request;
  request.kind = Request::Kind::kPageFetch;
  request.page = page;
  request.send_vt = ctx.clock().now();
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.mc_write_latency_us));
  const std::uint64_t seq = deps_.msg->Send(ctx.proc(), home, request);
  const VirtTime responder_vt = AwaitReply(ctx, seq);
  ReplySlot& slot = deps_.msg->SlotOf(ctx.proc());
  const bool home_is_local_node =
      cfg_.NodeOfProc(cfg_.FirstProcOfUnit(home)) == ctx.node();
  const VirtTime service = std::max(request.send_vt, responder_vt);
  // Latency bound under no contention; serial-bus occupancy under load
  // ("MC is a bus", Section 3.3.3 — this is what penalizes protocols that
  // move more data).
  VirtTime arrival =
      std::max(service + cfg_.costs.PageTransferNs(home_is_local_node, cfg_.two_level()),
               deps_.hub->ReserveBus(service, kPageBytes));
  if (cfg_.delivery == DeliveryMode::kInterrupt) {
    arrival += CostModel::UsToNs(cfg_.costs.inter_node_interrupt_us);
  }
  ctx.clock().AdvanceTo(ctx.stats(), arrival);
  ctx.stats().Add(Counter::kPageTransfers);
  if (TraceActive()) {
    TraceEmit(EventKind::kReqDone, page, 0,
              static_cast<std::uint32_t>(Request::Kind::kPageFetch),
              (static_cast<std::uint64_t>(ctx.proc()) << 32) | seq);
  }
  {
    // Serialize the merge against concurrent local flushes (see above).
    SpinLockGuard guard(pl.lock);
    ApplyIncoming(ctx, pl, page, slot.data, /*piggyback=*/false);
    pl.update_ts.store(fetch_start_ts, std::memory_order_release);
    pl.ever_valid = true;
  }
}

void CashmereProtocol::EnsureTwin(Context& ctx, PageLocal& pl, PageId page) {
  if (UnitAtMaster(ctx.unit(), page) || pl.twin_valid) {
    return;
  }
  CopyPage(TwinPtr(ctx.unit(), page), WorkingPtr(ctx.unit(), page));
  InitTwinMap(ctx, pl, ctx.unit(), page);
  SetTwinTraced(pl, page, true);
  ctx.stats().Add(Counter::kTwinCreations);
  if (!IsWriteDouble()) {
    // Cashmere-1L has no twins on the real system (write-through); the twin
    // here is only the emulation's mechanism for finding doubled words, so
    // its cost is not charged.
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.twin_us));
  }
}

void CashmereProtocol::InitTwinMap(Context& ctx, const PageLocal& pl, UnitId unit,
                                   PageId page) {
  DirtyBlockMap& map = TwinMap(unit, page);
  if (cfg_.fault_mode == FaultMode::kSoftware) {
    // Any shard still carrying marks belongs to an earlier twin generation
    // (the new odd generation is only published after this returns, so no
    // marker can have stamped it yet): its content is discarded, never
    // merged into the new twin's map. Discarding is sound because a stale
    // mark's write either predates the twin copy just taken — the value is
    // already in the twin, so no diff is needed — or it raced a twin
    // transition the same way it would have raced the seed's locked
    // twin_valid check. Shards are owner-reset lazily at the owner's next
    // mark; the merger never writes them.
    std::uint64_t stale = 0;
    for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
      if (WriteShard(unit, page, li).AnyMarks()) {
        ++stale;
      }
    }
    if (stale != 0) {
      ctx.stats().Add(Counter::kDirtyShardStaleDrops, stale);
    }
  }
  if (cfg_.fault_mode == FaultMode::kSoftware &&
      pl.WriterCount(cfg_.procs_per_unit()) == 0) {
    // Every write after this point is announced via NoteLocalWrite (the
    // creating writer only gains ReadWrite after the twin exists), so the
    // map can start empty and track exactly.
    map.Clear();
  } else {
    // SIGSEGV mode (writes invisible to the runtime) or a pre-existing
    // local writer whose earlier stores were never tracked (break-exclusive
    // twin creation): the whole page must be scanned.
    map.MarkAll();
  }
}

void CashmereProtocol::NoteLocalWrite(UnitId unit, int local_index, PageId page,
                                      std::size_t offset, std::size_t bytes) {
  if (cfg_.fault_mode != FaultMode::kSoftware || bytes == 0) {
    return;
  }
  // Lock-free fast path: this runs once per instrumented store, so it must
  // not serialize concurrent local writers. The generation's parity is the
  // unlocked equivalent of the seed's twin_valid check; a mark that races a
  // twin transition lands stamped with the old generation and is discarded
  // at merge time, exactly as the seed's locked check would have skipped it.
  PageLocal& pl = Unit(unit).Page(page);
  const std::uint64_t gen = pl.twin_gen.load(std::memory_order_acquire);
  if ((gen & 1) == 0) {
    return;  // master-sharing, exclusive mode, or no local writer: no diff
  }
  WriteShard(unit, page, local_index).MarkRange(gen, offset, bytes);
}

void CashmereProtocol::MergeWriteShards(UnitId unit, PageLocal& pl, PageId page,
                                        Stats* stats) {
  if (cfg_.fault_mode != FaultMode::kSoftware) {
    return;  // shards are only fed in software fault mode
  }
  const std::uint64_t gen = pl.twin_gen.load(std::memory_order_relaxed);
  if ((gen & 1) == 0) {
    return;
  }
  DirtyBlockMap& map = TwinMap(unit, page);
  std::uint64_t merged = 0;
  for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
    DirtyMapShard& sh = WriteShard(unit, page, li);
    // Acquire pairs with the owner's release stamp: a matching generation
    // implies the owner's reset is visible, so no bits of an older twin
    // leak in. Marks fetch_or-ed after this read are covered by the marking
    // writer's own later flush (the shard and map are monotone per
    // generation — the same argument MarkRange has always relied on).
    if (sh.gen.load(std::memory_order_acquire) != gen) {
      continue;  // stale or unused shard: discard, never merge
    }
    bool any = false;
    for (std::size_t w = 0; w < DirtyBlockMap::kMapWords; ++w) {
      const std::uint64_t bits = sh.bits[w].load(std::memory_order_relaxed);
      if (bits != 0) {
        map.OrWord(w, bits);
        any = true;
      }
    }
    if (any) {
      ++merged;
    }
  }
  if (merged != 0 && stats != nullptr) {
    stats->Add(Counter::kDirtyShardMerges, merged);
  }
}

const DirtyBlockMap& CashmereProtocol::MergedTwinMapForTesting(UnitId unit, PageId page) {
  PageLocal& pl = Unit(unit).Page(page);
  SpinLockGuard guard(pl.lock);
  MergeWriteShards(unit, pl, page, nullptr);
  return TwinMap(unit, page);
}

CashmereProtocol::FlushResult CashmereProtocol::FlushOutgoingDiffRuns(Context& ctx,
                                                                     PageLocal& pl,
                                                                     PageId page,
                                                                     bool flush_update,
                                                                     bool replay_now) {
  MergeWriteShards(ctx.unit(), pl, page, &ctx.stats());
  DiffBuffer& buf = ctx.diff_scratch();
  DiffScanStats scan;
  EncodeOutgoingDiff(WorkingPtr(ctx.unit(), page), TwinPtr(ctx.unit(), page), flush_update,
                     &TwinMap(ctx.unit(), page), buf, &scan);
  // Ship the encoded runs through the wire format: serialize headers +
  // payload into this processor's transmit buffer, then replay the runs
  // into the home node's master copy as MC remote writes. Traffic is
  // byte-identical to writing each run straight out of the DiffBuffer; the
  // diff.charge_run_headers variant additionally bills the run framing.
  // The async publish path defers the replay: the serialized image travels
  // in the log record and the unit's cache agent replays it (booking
  // kDiffRunApplyBytes on its own Stats, folded into the run totals).
  const std::size_t hdr_bytes =
      cfg_.diff.charge_run_headers ? kDiffRunHeaderBytes : std::size_t{0};
  DiffWireSlot& slot = deps_.msg->DiffSlotOf(ctx.proc());
  SerializeDiffRuns(page, buf, slot);
  if (replay_now) {
    const std::size_t applied = ReplayDiffWire(slot, *deps_.hub, MasterPtr(page), hdr_bytes);
    ctx.stats().Add(Counter::kDiffRunApplyBytes, applied);
  }
  ctx.stats().Add(Counter::kDiffBlocksScanned, scan.blocks_scanned);
  ctx.stats().Add(Counter::kDiffBlocksSkipped, scan.blocks_skipped);
  ctx.stats().Add(Counter::kDiffRunsEmitted, scan.runs);
  ctx.stats().Add(Counter::kDiffRunBytes, scan.run_bytes);
  if (TraceActive()) {
    TraceEmit(EventKind::kDiffEncode, page, NextTraceSeq(pl),
              static_cast<std::uint32_t>(scan.runs), buf.words());
  }
  return FlushResult{buf.words(),
                     buf.words() * kWordBytes + buf.run_count() * hdr_bytes};
}

void CashmereProtocol::ShootdownLocalWriters(Context& ctx, PageLocal& pl, PageId page) {
  // Called with the page lock held (2LS only): revoke every local write
  // mapping, flush outstanding changes to the home node, discard the twin.
  UnitState& us = Unit(ctx.unit());
  int victims = 0;
  for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
    if (pl.PermOfLocal(li) == Perm::kReadWrite) {
      if (GlobalProc(ctx.unit(), li) != ctx.proc()) {
        ++victims;
      }
      ProtectLocal(ctx, pl, ctx.unit(), li, page, Perm::kRead);
    }
  }
  if (victims > 0) {
    ctx.stats().Add(Counter::kShootdowns, static_cast<std::uint64_t>(victims));
    const double per_victim = cfg_.delivery == DeliveryMode::kInterrupt
                                  ? cfg_.costs.shootdown_interrupt_us
                                  : cfg_.costs.shootdown_poll_us;
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(per_victim * victims));
  }
  // The victims' hardware downgrades must land before the diff scan below:
  // a writer left RW past this point could dirty words the scan already
  // visited, losing the write.
  CommitPermBatch(ctx);
  if (pl.twin_valid && !UnitAtMaster(ctx.unit(), page)) {
    const FlushResult r = FlushOutgoingDiffRuns(ctx, pl, page, /*flush_update=*/false);
    deps_.hub->ReserveBus(ctx.clock().now(), r.bus_bytes);
    pl.flush_ts.store(us.Tick(), std::memory_order_release);
    ctx.stats().Add(Counter::kPageFlushes);
    const bool home_local =
        cfg_.NodeOfProc(cfg_.FirstProcOfUnit(deps_.homes->HomeOfPage(page))) == ctx.node();
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       cfg_.costs.DiffOutNs(r.words, home_local));
    SendWriteNotices(ctx, page);
  }
  SetTwinTraced(pl, page, false);
  pl.dirty_mask = 0;
}

void CashmereProtocol::EnterExclusiveOrShare(Context& ctx, PageLocal& pl, PageId page) {
  // Called with the page lock held, on a write fault, after the local copy
  // is valid. Decides between exclusive mode and the shared write path.
  UnitState& us = Unit(ctx.unit());
  const int li = ctx.local_index();
  if (pl.exclusive) {
    return;  // unit already exclusive; the new writer just joins
  }
  if (!deps_.dir->AnyOtherSharer(page, ctx.unit())) {
    // Claim exclusive mode through the ordered directory broadcast: if two
    // units claim concurrently, the one ordered second sees the first and
    // withdraws (MC's total write ordering resolves the race).
    DirWord claim;
    claim.perm = Perm::kReadWrite;
    claim.exclusive = true;
    claim.excl_proc = ctx.proc();
    std::uint32_t snapshot[kMaxProcs];
    // csm-lint: allow(raw-dir-write) -- the exclusive-mode claim must be an
    // ordered write+snapshot on the fault path itself; it cannot ride the
    // coherence log (the race is resolved by MC write ordering, not HB).
    const DirWriteResult res = deps_.dir->WriteAndSnapshot(page, ctx.unit(), claim, snapshot);
    ctx.stats().Add(Counter::kDirectoryUpdates);
    ctx.stats().Add(res.p2p ? Counter::kDirP2PUpdates : Counter::kDirBroadcastUpdates);
    if (TraceActive()) {
      TraceEmit(EventKind::kDirUpdate, page, NextTraceSeq(pl),
                DirUpdateTraceArg(claim, res), us.Now());
    }
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.dir_update_us));
    bool conflict = false;
    for (int u = 0; u < cfg_.units(); ++u) {
      if (u == ctx.unit()) {
        continue;
      }
      const DirWord w = DirWord::Unpack(snapshot[u]);
      if (w.perm != Perm::kInvalid || w.exclusive) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      pl.exclusive = true;
      pl.excl_proc = ctx.proc();
      if (TraceActive()) {
        TraceEmit(EventKind::kExclEnter, page, NextTraceSeq(pl),
                  static_cast<std::uint32_t>(ctx.proc()), 0);
      }
      ctx.stats().Add(Counter::kExclTransitions);
      // Exclusive pages have no twin, never enter dirty lists, and generate
      // no write notices or flushes (Section 2.4.1).
      return;
    }
    // Withdraw the claim and fall through to the shared path.
    DirWord shared = claim;
    shared.exclusive = false;
    UpdateDirWord(ctx, page, shared);
  }
  EnsureTwin(ctx, pl, page);
  if (us.DirtyList(li).Add(page)) {
    pl.dirty_mask |= Bit(li);
  }
}

void CashmereProtocol::OnFault(Context& ctx, PageId page, bool is_write) {
  ProtocolScope scope(ctx);
  ctx.SetDebugState(1, page);
  TraceEmit(EventKind::kFaultBegin, page, 0, is_write ? 1u : 0u, 0);
  ctx.stats().Add(is_write ? Counter::kWriteFaults : Counter::kReadFaults);
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.page_fault_us));
  MaybeFirstTouch(ctx, page);

  UnitState& us = Unit(ctx.unit());
  PageLocal& pl = us.Page(page);
  const int li = ctx.local_index();

  while (true) {
    pl.lock.Lock();
    if (pl.fetch_in_progress.load(std::memory_order_acquire)) {
      pl.lock.Unlock();
      WaitFetchDone(ctx, pl);  // intra-node fetch coalescing
      continue;
    }
    if (NeedFetch(pl, ctx.unit(), page)) {
      pl.fetch_in_progress.store(true, std::memory_order_release);
      // Join the sharing set *before* fetching (Section 2.4.1 does the
      // directory update first): a release overlapping this fetch must
      // either be visible in the fetched image or send us a write notice.
      RefreshLoosestPerm(ctx, pl, page);
      pl.lock.Unlock();
      FetchPage(ctx, pl, page);
      ctx.SetDebugState(9, page);
      pl.lock.Lock();
      pl.fetch_in_progress.store(false, std::memory_order_release);
      // Re-check before installing a mapping: write notices distributed
      // while the fetch was in flight (update_ts <= wn_ts) mean the image
      // may predate those flushes, and no notice targets us yet — fetch
      // again rather than map a possibly stale copy.
      pl.lock.Unlock();
      continue;
    }
    break;
  }
  // Page lock held; local copy valid (or we are at the master copy).
  if (is_write) {
    EnterExclusiveOrShare(ctx, pl, page);
    ProtectLocal(ctx, pl, ctx.unit(), li, page, Perm::kReadWrite);
  } else {
    if (pl.PermOfLocal(li) == Perm::kInvalid) {
      ProtectLocal(ctx, pl, ctx.unit(), li, page, Perm::kRead);
    }
  }
  RefreshLoosestPerm(ctx, pl, page);
  pl.lock.Unlock();
  // Mandatory commit: the faulting instruction retries as soon as the
  // handler returns, so the upgrade must be in hardware here. Batch size is
  // normally 1 (plus anything a nested shootdown or break queued); the win
  // on this path is the shadow-table elision, not coalescing.
  CommitPermBatch(ctx);
  TraceEmit(EventKind::kFaultEnd, page, 0, is_write ? 1u : 0u, 0);
  ctx.SetDebugState(0, 0);
}

// ---------------------------------------------------------------------------
// Releases (Section 2.4.3)

std::uint32_t CashmereProtocol::WriteNoticeTargets(Context& ctx, PageId page) {
  UnitId sharers[kMaxProcs];
  const int n = deps_.dir->Sharers(page, ctx.unit(), sharers);
  std::uint32_t mask = 0;
  for (int i = 0; i < n; ++i) {
    const UnitId u = sharers[i];
    if (UnitAtMaster(u, page)) {
      continue;  // home (and master-sharing) units see flushes directly
    }
    mask |= 1u << u;
  }
  return mask;
}

void CashmereProtocol::SendWriteNotices(Context& ctx, PageId page) {
  const std::uint32_t targets = WriteNoticeTargets(ctx, page);
  int sent = 0;
  for (int u = 0; u < cfg_.units(); ++u) {
    if ((targets & (1u << u)) == 0) {
      continue;
    }
    if (IsGlobalLock()) {
      ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                         CostModel::UsToNs(cfg_.costs.dir_lock_us));
    }
    deps_.notices->PostGlobal(static_cast<UnitId>(u), ctx.unit(), page);
    if (TraceActive()) {
      TraceEmit(EventKind::kWnPost, page, 0, static_cast<std::uint32_t>(u), 0);
    }
    ++sent;
  }
  if (sent > 0) {
    ctx.stats().Add(Counter::kWriteNotices, static_cast<std::uint64_t>(sent));
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.mc_write_latency_us));
  }
}

void CashmereProtocol::PublishCoherenceRecord(Context& ctx, PageLocal& pl, PageId page) {
  const bool has_diff = !UnitAtMaster(ctx.unit(), page) && pl.twin_valid;
  FlushResult r{};
  if (has_diff) {
    r = FlushOutgoingDiffRuns(ctx, pl, page, /*flush_update=*/true,
                              /*replay_now=*/false);
    ctx.stats().Add(Counter::kPageFlushes);
    ctx.stats().Add(Counter::kFlushUpdates);
  }
  const std::uint32_t targets = WriteNoticeTargets(ctx, page);
  if (!has_diff && targets == 0) {
    return;  // nothing to propagate: no record, no agent work
  }
  // The releaser pays only the local publish cost; the diff replay, the MC
  // bus occupancy, and the write-notice latency all move to the cache
  // agent (AgentApply), off the release's critical path.
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.log_publish_us));
  const bool home_local =
      cfg_.NodeOfProc(cfg_.FirstProcOfUnit(deps_.homes->HomeOfPage(page))) == ctx.node();
  const DiffWireSlot& slot = deps_.msg->DiffSlotOf(ctx.proc());
  bool stalled = false;
  const std::uint64_t seq = deps_.coh->LogOf(ctx.unit()).Publish(
      [&](CoherenceRecord& rec) {
        rec.page = page;
        rec.publisher = ctx.proc();
        rec.publish_vt = ctx.clock().now();
        rec.words = static_cast<std::uint32_t>(r.words);
        rec.hdr_bytes = static_cast<std::uint32_t>(
            cfg_.diff.charge_run_headers ? kDiffRunHeaderBytes : std::size_t{0});
        rec.bus_bytes = r.bus_bytes;
        rec.wn_targets = targets;
        rec.has_diff = has_diff;
        rec.home_local = home_local;
        if (has_diff) {
          rec.slot.page = slot.page;
          rec.slot.nruns = slot.nruns;
          rec.slot.nwords = slot.nwords;
          // Copy only the used wire prefix (headers + payload): the record
          // must carry its own image because the per-processor transmit
          // slot is reused by the publisher's next flush.
          // csm-lint: allow(raw-page-copy) -- wire-format bytes between two
          // protocol-owned scratch buffers, not a page frame copy
          std::memcpy(rec.slot.wire, slot.wire,
                      slot.nruns * kDiffRunHeaderBytes + slot.nwords * kWordBytes);
        }
      },
      &stalled);
  // Order matters: the pending-flush count must cover the record before
  // the publisher's release returns (FetchPage spins on it), and the
  // sequence lands in the publisher's own seen_seq so sync objects can
  // propagate the dependency to later acquirers.
  pl.pending_flush.fetch_add(1, std::memory_order_acq_rel);
  ctx.seen_seq()[ctx.unit()] = seq;
  ctx.stats().Add(Counter::kCohLogPublishes);
  if (stalled) {
    ctx.stats().Add(Counter::kCohLogPublishStalls);
  }
  if (TraceActive()) {
    TraceEmit(EventKind::kCohPublish, page, 0, static_cast<std::uint32_t>(ctx.unit()),
              seq);
  }
}

void CashmereProtocol::FlushPage(Context& ctx, PageLocal& pl, PageId page,
                                 std::uint64_t release_start, bool barrier_arrival) {
  UnitState& us = Unit(ctx.unit());
  const int li = ctx.local_index();
  SpinLockGuard guard(pl.lock);

  if (pl.exclusive) {
    // The page re-entered exclusive mode after the NLE notice; exclusive
    // pages incur no flush.
    pl.dirty_mask &= static_cast<std::uint8_t>(~Bit(li));
    return;
  }

  // Skip rule: if a flush of this page began after this release began, that
  // flush already covered our modifications (a diff covers the whole page).
  if (pl.flush_ts.load(std::memory_order_acquire) > release_start) {
    pl.dirty_mask &= static_cast<std::uint8_t>(~Bit(li));
    if (pl.PermOfLocal(li) == Perm::kReadWrite) {
      ProtectLocal(ctx, pl, ctx.unit(), li, page, Perm::kRead);
    }
    RefreshLoosestPerm(ctx, pl, page);
    return;
  }

  if (barrier_arrival) {
    // "Each processor, as it arrives, performs page flushes for those pages
    // for which it is the last arriving local writer" — if another local
    // writer has not arrived yet, leave the flush to them.
    const std::uint32_t arrived = us.barrier_arrived_mask().load(std::memory_order_acquire);
    for (int other = 0; other < cfg_.procs_per_unit(); ++other) {
      if (other == li) {
        continue;
      }
      if ((pl.dirty_mask & Bit(other)) != 0 && (arrived & (1u << other)) == 0) {
        pl.dirty_mask &= static_cast<std::uint8_t>(~Bit(li));
        if (pl.PermOfLocal(li) == Perm::kReadWrite) {
          ProtectLocal(ctx, pl, ctx.unit(), li, page, Perm::kRead);
        }
        return;
      }
    }
  }

  pl.flush_ts.store(us.Tick(), std::memory_order_release);

  if (deps_.coh != nullptr && !IsShootdown() && !IsWriteDouble()) {
    // Async release path: serialize the diff + write-notice targets into
    // the unit's CoherenceLog; the cache agent replays and posts off the
    // critical path. Shootdown (2LS) and write-doubling (1L) keep the
    // synchronous path — their flush semantics are inherently tied to the
    // releasing processor.
    PublishCoherenceRecord(ctx, pl, page);
  } else {
    if (!UnitAtMaster(ctx.unit(), page) && pl.twin_valid) {
      if (IsShootdown()) {
        ShootdownLocalWriters(ctx, pl, page);  // flushes + discards the twin
      } else {
        // Flush-update: write local modifications to both the home node and
        // the twin, so overlapping releases skip redundant work (Section 2.5).
        const FlushResult r = FlushOutgoingDiffRuns(ctx, pl, page, /*flush_update=*/true);
        const std::size_t words = r.words;
        // The flusher is write-buffered and does not stall, but the diff
        // occupies the serial MC: later transfers queue behind it.
        deps_.hub->ReserveBus(ctx.clock().now(), r.bus_bytes);
        ctx.stats().Add(Counter::kPageFlushes);
        ctx.stats().Add(Counter::kFlushUpdates);
        const bool home_local =
            cfg_.NodeOfProc(cfg_.FirstProcOfUnit(deps_.homes->HomeOfPage(page))) == ctx.node();
        if (IsWriteDouble()) {
          // Cashmere-1L: modifications were (conceptually) written through as
          // they happened; charge the per-word doubling cost instead of the
          // diff cost.
          const double per_word = home_local ? cfg_.costs.write_double_word_home_us
                                             : cfg_.costs.write_double_word_us;
          ctx.clock().Charge(ctx.stats(), TimeCategory::kWriteDoubling,
                             CostModel::UsToNs(per_word * static_cast<double>(words)));
        } else {
          ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                             cfg_.costs.DiffOutNs(words, home_local));
        }
      }
    }
    SendWriteNotices(ctx, page);
  }
  pl.dirty_mask = 0;
  if (pl.PermOfLocal(li) == Perm::kReadWrite) {
    ProtectLocal(ctx, pl, ctx.unit(), li, page, Perm::kRead);
  }
  if (!IsShootdown() && pl.twin_valid && pl.WriterCount(cfg_.procs_per_unit()) == 0) {
    SetTwinTraced(pl, page, false);  // no writers left: the twin is no longer needed
  }
  RefreshLoosestPerm(ctx, pl, page);
}

void CashmereProtocol::ReleaseSync(Context& ctx, bool barrier_arrival) {
  ProtocolScope scope(ctx);
  UnitState& us = Unit(ctx.unit());
  const int li = ctx.local_index();
  const std::uint64_t release_start = us.Tick();
  us.last_release_time().store(release_start, std::memory_order_release);
  const VirtTime path_start = ctx.clock().now();

  // The modified-page set is derived exactly once per release, into the
  // reusable per-processor scratch (capacity reserved by the Runtime, so
  // the hot path never allocates). The same hoisted set feeds both
  // propagation modes — the synchronous diff scan and the asynchronous log
  // publish — page by page through FlushPage; neither re-walks the lists.
  // Cross-list duplicates (a page on both the dirty and the NLE list) are
  // absorbed by FlushPage's flush-timestamp skip rule, in both modes.
  std::vector<PageId>& pages = ctx.release_scratch();
  pages.clear();
  us.DirtyList(li).TakeAll(pages);
  us.NleList(li).TakeAll(pages);
  for (const PageId page : pages) {
    FlushPage(ctx, us.Page(page), page, release_start, barrier_arrival);
  }
  // One commit for the whole release: contiguous RW->R downgrades queued by
  // the FlushPage loop collapse into ranged mprotects. It must land before
  // the release completes — once a remote acquirer observes this release,
  // our writes here must fault again.
  CommitPermBatch(ctx);
  // Critical-path accounting for the sync-vs-async ablation
  // (bench_async_release): virtual nanoseconds from release entry to the
  // point where user execution may resume. In async mode the deferred
  // replay/notice costs land on the cache agent's clock instead and this
  // counter records only the publish cost.
  ctx.stats().Add(Counter::kReleasePathNs,
                  static_cast<std::uint64_t>(ctx.clock().now() - path_start));
}

// ---------------------------------------------------------------------------
// Async coherence pipeline: agent apply + acquire gate (DESIGN.md §12)

void CashmereProtocol::AgentApply(UnitId unit, const CoherenceRecord& rec,
                                  VirtualClock& clock, Stats& stats) {
  const PageId page = rec.page;
  if (rec.has_diff) {
    const std::size_t applied =
        ReplayDiffWire(rec.slot, *deps_.hub, MasterPtr(page), rec.hdr_bytes);
    stats.Add(Counter::kDiffRunApplyBytes, applied);
    // The apply occupies the serial MC exactly as the synchronous flush
    // would have: later transfers queue behind it.
    deps_.hub->ReserveBus(clock.now(), rec.bus_bytes);
    clock.Charge(stats, TimeCategory::kProtocol,
                 cfg_.costs.DiffOutNs(rec.words, rec.home_local));
  }
  int sent = 0;
  for (int u = 0; u < cfg_.units(); ++u) {
    if ((rec.wn_targets & (1u << u)) == 0) {
      continue;
    }
    if (IsGlobalLock()) {
      clock.Charge(stats, TimeCategory::kProtocol,
                   CostModel::UsToNs(cfg_.costs.dir_lock_us));
    }
    deps_.notices->PostGlobal(static_cast<UnitId>(u), unit, page);
    if (TraceActive()) {
      TraceEmit(EventKind::kWnPost, page, 0, static_cast<std::uint32_t>(u), 0);
    }
    ++sent;
  }
  if (sent > 0) {
    stats.Add(Counter::kWriteNotices, static_cast<std::uint64_t>(sent));
    clock.Charge(stats, TimeCategory::kProtocol,
                 CostModel::UsToNs(cfg_.costs.mc_write_latency_us));
  }
  // Decrement only after the master replay and the notice posts: a local
  // fetch spinning on pending_flush must observe the applied diff, and a
  // gated acquirer that observes the advanced applied_seq (PopApplied,
  // called by the agent loop after this returns) must find the notices
  // already posted.
  Unit(unit).Page(page).pending_flush.fetch_sub(1, std::memory_order_acq_rel);
  stats.Add(Counter::kCohLogApplies);
  if (TraceActive()) {
    TraceEmit(EventKind::kCohApply, page, 0, static_cast<std::uint32_t>(unit),
              rec.seq);
  }
}

void CashmereProtocol::GateOnAppliedSeq(Context& ctx) {
  if (deps_.coh == nullptr) {
    return;
  }
  const std::uint64_t* seen = ctx.seen_seq();
  VirtTime gate_vt = 0;
  for (int u = 0; u < cfg_.units(); ++u) {
    const std::uint64_t want = seen[u];
    if (u == ctx.unit() || want == 0) {
      // Own-unit visibility is direct (local processors share the unit's
      // working frames; fetches spin on pending_flush), so the gate only
      // covers units whose releases this acquire happens-after.
      continue;
    }
    CoherenceLog& log = deps_.coh->LogOf(static_cast<UnitId>(u));
    if (log.applied_seq() < want) {
      ctx.stats().Add(Counter::kCohGateWaits);
      if (TraceActive()) {
        TraceEmit(EventKind::kCohGate, kNoTracePage, 0,
                  static_cast<std::uint32_t>(u), want);
      }
      Backoff backoff;
      while (log.applied_seq() < want) {
        // The agent itself never blocks on us (it takes no locks and sends
        // no requests), but remote releasers feeding its log may — keep
        // servicing our unit's incoming requests while we wait.
        if (deps_.msg->HasPending(ctx.unit())) {
          deps_.msg->Poll(ctx.unit());
          backoff.Reset();
        } else {
          backoff.Pause();
        }
      }
    }
    const VirtTime applied_vt = log.AppliedVtOf(want);
    if (applied_vt > gate_vt) {
      gate_vt = applied_vt;
    }
  }
  if (gate_vt != 0) {
    // Reconcile with the latest gated apply time: the acquire completes no
    // earlier than the point at which its last happens-before predecessor
    // became globally visible. A gate slot lost to ring wraparound
    // contributes 0 — a documented conservative modeling choice (the
    // happens-before wait itself is still exact via applied_seq).
    ctx.clock().AdvanceTo(ctx.stats(), gate_vt);
  }
}

// ---------------------------------------------------------------------------
// Acquires (Section 2.4.2)

void CashmereProtocol::AcquireSync(Context& ctx) {
  ProtocolScope scope(ctx);
  const std::uint64_t prev_state = ctx.debug_state();
  ctx.SetDebugState(7, 0);
  UnitState& us = Unit(ctx.unit());
  us.Tick();
  // Async mode: wait (happens-before only) for the log prefixes this
  // acquire depends on, BEFORE draining write notices — the gated agents'
  // posts must be in the bins when the drain runs (the relaxed ordering
  // the replay checker verifies: WN visible before the acquire gate
  // passes, not before the release returns).
  GateOnAppliedSeq(ctx);

  // Distribute global write notices to the per-processor lists of local
  // processors with mappings, stamping the page's write-notice time.
  // The drain-and-distribute is serialized per unit: otherwise a processor
  // could find the bins empty while a concurrent local drainer has not yet
  // posted to the per-processor lists, and would acquire without the
  // invalidations it needs.
  if (IsGlobalLock()) {
    ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                       CostModel::UsToNs(cfg_.costs.dir_lock_us));
  }
  {
    SpinLockGuard acquire_guard(us.acquire_lock());
    deps_.notices->DrainGlobal(ctx.unit(), [&](PageId page) {
      PageLocal& pl = us.Page(page);
      SpinLockGuard guard(pl.lock);
      // A write notice means the page's entry changed remotely: drop this
      // unit's cached directory entry (no-op for the replicated backend).
      deps_.dir->InvalidateCached(ctx.unit(), page);
      const std::uint64_t wn_ts = us.Now();
      pl.wn_ts.store(wn_ts, std::memory_order_release);
      if (TraceActive()) {
        TraceEmit(EventKind::kWnDrainGlobal, page, NextTraceSeq(pl), 0, wn_ts);
      }
      for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
        if (pl.PermOfLocal(li) != Perm::kInvalid) {
          deps_.notices->PostLocal(GlobalProc(ctx.unit(), li), page);
        }
      }
    });
  }

  ctx.SetDebugState(7, 1);  // past the global drain
  // Process this processor's own list: invalidate pages whose last update
  // precedes their last write notice.
  deps_.notices->DrainLocal(ctx.proc(), [&](PageId page) {
    PageLocal& pl = us.Page(page);
    SpinLockGuard guard(pl.lock);
    if (UnitAtMaster(ctx.unit(), page)) {
      return;  // the master copy is always current
    }
    const bool stale = pl.update_ts.load(std::memory_order_acquire) <=
                       pl.wn_ts.load(std::memory_order_acquire);
    const bool invalidate = stale && pl.PermOfLocal(ctx.local_index()) != Perm::kInvalid;
    if (TraceActive()) {
      TraceEmit(EventKind::kWnConsumeLocal, page, NextTraceSeq(pl),
                invalidate ? 1u : 0u, 0);
    }
    if (invalidate) {
      ProtectLocal(ctx, pl, ctx.unit(), ctx.local_index(), page, Perm::kInvalid);
      RefreshLoosestPerm(ctx, pl, page);
    }
  });
  // One commit for the whole drain: the invalidations collected under the
  // per-page locks above coalesce into ranged mprotects, and they must be
  // in hardware before the acquire returns — user code may read these
  // pages the next instruction.
  CommitPermBatch(ctx);
  ctx.SetDebugState(static_cast<int>(prev_state >> 56), prev_state & 0xffffffffull);
}

// ---------------------------------------------------------------------------
// Barrier bookkeeping

void CashmereProtocol::BarrierArriveBegin(Context& ctx) {
  Unit(ctx.unit())
      .barrier_arrived_mask()
      .fetch_or(1u << ctx.local_index(), std::memory_order_acq_rel);
}

void CashmereProtocol::BarrierDepartEnd(Context& ctx) {
  Unit(ctx.unit())
      .barrier_arrived_mask()
      .fetch_and(~(1u << ctx.local_index()), std::memory_order_acq_rel);
}

void CashmereProtocol::FinalFlush(Context& ctx) {
  UnitState& us = Unit(ctx.unit());
  // Async mode: the gated AcquireSync of the preceding full barrier already
  // covers every record published before the barrier's arrivals, so the
  // logs are normally drained here. Wait for our own unit's log anyway
  // (belt and braces — e.g. an app whose last release raced the barrier):
  // the quiesce below reads master frames the agent may still write.
  if (deps_.coh != nullptr) {
    Backoff backoff;
    const CoherenceLog& log = deps_.coh->LogOf(ctx.unit());
    while (!log.Empty()) {
      if (deps_.msg->HasPending(ctx.unit())) {
        deps_.msg->Poll(ctx.unit());
        backoff.Reset();
      } else {
        backoff.Pause();
      }
    }
  }
  for (PageId page = 0; page < cfg_.pages(); ++page) {
    PageLocal& pl = us.Page(page);
    SpinLockGuard guard(pl.lock);
    if (UnitAtMaster(ctx.unit(), page)) {
      continue;
    }
    if (pl.exclusive) {
      CopyPage(MasterPtr(page), WorkingPtr(ctx.unit(), page));
      pl.exclusive = false;
      if (TraceActive()) {
        TraceEmit(EventKind::kExclBreak, page, NextTraceSeq(pl),
                  static_cast<std::uint32_t>(pl.excl_proc), 0);
      }
    } else if (pl.twin_valid) {
      MergeWriteShards(ctx.unit(), pl, page, &ctx.stats());
      DiffScanStats scan;
      const std::size_t words =
          ApplyOutgoingDiff(WorkingPtr(ctx.unit(), page), TwinPtr(ctx.unit(), page),
                            MasterPtr(page), true, &TwinMap(ctx.unit(), page), &scan);
      if (TraceActive()) {
        TraceEmit(EventKind::kDiffApplyOutgoing, page, NextTraceSeq(pl),
                  static_cast<std::uint32_t>(scan.runs), words);
      }
    }
    pl.dirty_mask = 0;
  }
  // Currently a no-op (the loop above copies through arena pointers and
  // queues nothing), but the end-of-run quiesce is an episode boundary and
  // keeps the inventory rule: no episode exits with a pending batch.
  CommitPermBatch(ctx);
}

// ---------------------------------------------------------------------------
// First touch (Section 2.3)

void CashmereProtocol::MaybeFirstTouch(Context& ctx, PageId page) {
  if (!cfg_.first_touch || !deps_.homes->FirstTouchEnabled()) {
    return;
  }
  const std::size_t sp = deps_.homes->SuperpageOf(page);
  if (!deps_.homes->IsDefault(sp)) {
    return;
  }
  // "To relocate a page a processor must acquire a global lock"; ordinary
  // page operations skip it because they always follow the unit's first
  // access. The lock cost is the directory-entry lock cost from Section 3.1.
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     CostModel::UsToNs(cfg_.costs.dir_lock_us));
  SpinLock& lock = deps_.homes->GlobalLock();
  Backoff backoff;
  while (!lock.TryLock()) {
    // Keep servicing requests: other units may need this unit's pages
    // while we wait for home selection.
    if (deps_.msg->HasPending(ctx.unit())) {
      deps_.msg->Poll(ctx.unit());
    }
    backoff.Pause();
  }
  if (!deps_.homes->IsDefault(sp)) {
    lock.Unlock();
    return;  // someone else won the race
  }
  if (deps_.homes->HomeOfSuperpage(sp) != ctx.unit()) {
    // Relocation copies the master frames, so it is only safe when every
    // master copy is current. A page held in exclusive mode elsewhere has
    // an out-of-date master (the holder flushes only when broken), so the
    // superpage keeps its round-robin home.
    bool any_exclusive = false;
    const PageId first = static_cast<PageId>(sp * deps_.homes->superpage_pages());
    const PageId last = static_cast<PageId>(
        std::min<std::size_t>((sp + 1) * deps_.homes->superpage_pages(), cfg_.pages()));
    for (PageId page = first; page < last && !any_exclusive; ++page) {
      // Authoritative: relocating under a missed exclusive holder would
      // copy a stale master frame.
      any_exclusive = deps_.dir->ExclusiveHolderFresh(page, ctx.unit()) >= 0;
    }
    if (!any_exclusive) {
      RelocateSuperpage(ctx, sp, ctx.unit());
      lock.Unlock();
      return;
    }
  }
  deps_.homes->SealDefault(sp);
  lock.Unlock();
}

void CashmereProtocol::RelocateSuperpage(Context& ctx, std::size_t sp, UnitId new_home) {
  const UnitId old_home = deps_.homes->HomeOfSuperpage(sp);
  UnitState& old_us = Unit(old_home);
  UnitState& new_us = Unit(new_home);
  const PageId first = static_cast<PageId>(sp * deps_.homes->superpage_pages());
  const PageId last = static_cast<PageId>(
      std::min<std::size_t>((sp + 1) * deps_.homes->superpage_pages(), cfg_.pages()));

  for (PageId page = first; page < last; ++page) {
    PageLocal& opl = old_us.Page(page);
    SpinLockGuard old_guard(opl.lock);
    // Quiesce the old home: downgrade its writers so future modifications
    // are tracked like any non-home unit's.
    for (int li = 0; li < cfg_.procs_per_unit(); ++li) {
      if (opl.PermOfLocal(li) == Perm::kReadWrite) {
        ProtectLocal(ctx, opl, old_home, li, page, Perm::kRead);
      }
    }
    // The old-home downgrades must be in hardware before the master copy
    // moves below: a writer left RW would dirty the old frame after it was
    // copied, and the write would vanish.
    CommitPermBatch(ctx);
    // No twin-discard event for the old home: master units never hold twins
    // (and the event stream attributes sequenced events to the emitting
    // processor's unit, which is the new home here).
    opl.exclusive = false;
    opl.SetTwinValid(false);
    opl.dirty_mask = 0;

    PageLocal& npl = new_us.Page(page);
    SpinLockGuard new_guard(npl.lock);
    // Move the master copy (frame refs, resolved through the transport,
    // like every other master access).
    std::byte* old_master = deps_.hub->transport().Resolve(
        (*deps_.arenas)[static_cast<std::size_t>(old_home)]->FrameOf(page));
    std::byte* new_master = deps_.hub->transport().Resolve(
        (*deps_.arenas)[static_cast<std::size_t>(new_home)]->FrameOf(page));
    CopyPage(new_master, old_master);
    deps_.hub->AccountWrite(Traffic::kPageData, kPageBytes);
    SetTwinTraced(npl, page, false);
    npl.ever_valid = true;
    npl.update_ts.store(new_us.Tick(), std::memory_order_release);
    if (TraceActive()) {
      TraceEmit(EventKind::kHomeRelocate, page, NextTraceSeq(npl),
                static_cast<std::uint32_t>(new_home),
                static_cast<std::uint64_t>(old_home));
    }
    // The old home's frame still holds the current data.
    opl.ever_valid = true;
    opl.update_ts.store(old_us.Tick(), std::memory_order_release);
    ctx.stats().Add(Counter::kHomeRelocations);
  }
  deps_.homes->Relocate(sp, new_home);
  ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol,
                     cfg_.costs.PageTransferNs(false, cfg_.two_level()) *
                         static_cast<std::uint64_t>(last - first));

  // Home-node optimization: remap views whose master-sharing status for
  // this superpage changed.
  if (cfg_.home_opt && !cfg_.two_level()) {
    for (ProcId p = 0; p < cfg_.total_procs(); ++p) {
      const UnitId pu = cfg_.UnitOfProc(p);
      const bool now_master = UnitAtMaster(pu, first);
      const Arena& desired = now_master
                                 ? *(*deps_.arenas)[static_cast<std::size_t>(new_home)]
                                 : *(*deps_.arenas)[static_cast<std::size_t>(pu)];
      if (cfg_.fault_mode == FaultMode::kSigsegv) {
        ViewOf(p).RemapSuperpage(sp, desired);
      }
      UnitState& pus = Unit(pu);
      for (PageId page = first; page < last; ++page) {
        PageLocal& pl = pus.Page(page);
        SpinLockGuard guard(pl.lock);
        pl.SetPermOfLocal(p - cfg_.FirstProcOfUnit(pu), Perm::kInvalid);
        if (cfg_.fault_mode == FaultMode::kSigsegv) {
          // Explicitly re-queue kInvalid for the remapped range: a batched
          // entry for this (proc, page) committed between the remap and
          // this store would have resolved against the pre-remap page
          // table and re-opened the fresh PROT_NONE mapping. The entry
          // re-asserts the page table's truth; in the common case the
          // shadow already reads kInvalid and the commit elides it.
          ctx.perm_batch().Add(p, page, Perm::kInvalid);
        }
      }
    }
  }
  CommitPermBatch(ctx);
}

}  // namespace cashmere
