#include "cashmere/protocol/directory_sharded.hpp"

#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

std::uint32_t RoundUpPow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v && p < (1u << 30)) {
    p <<= 1;
  }
  return p;
}

}  // namespace

ShardedDirectory::ShardedDirectory(const Config& cfg, McHub& hub, const HomeTable& homes)
    : DirectoryBackend(cfg),
      hub_(hub),
      homes_(homes),
      segment_pages_(cfg.dir.segment_pages),
      segment_words_(static_cast<std::size_t>(cfg.dir.segment_pages) *
                     static_cast<std::size_t>(units_)),
      cache_mask_(RoundUpPow2(cfg.dir.cache_entries) - 1),
      segments_((cfg.pages() + segment_pages_ - 1) / segment_pages_),
      caches_(static_cast<std::size_t>(units_)),
      order_locks_(kNumOrderLocks) {
  CSM_CHECK(units_ <= kMaxProcs);  // a sharer set must fit one 32-bit MC word
  for (UnitCache& cache : caches_) {
    cache.entries = std::vector<CacheEntry>(cache_mask_ + 1);
  }
}

std::uint32_t* ShardedDirectory::EnsureSegment(PageId page) {
  const std::size_t idx = SegmentIndex(page);
  std::uint32_t* seg = segments_[idx].load(std::memory_order_acquire);
  if (seg != nullptr) {
    return seg;
  }
  SpinLockGuard guard(alloc_lock_);
  seg = segments_[idx].load(std::memory_order_relaxed);
  if (seg != nullptr) {
    return seg;
  }
  // Value-initialized: an untouched word is packed DirWord{} (invalid).
  // csm-lint: allow(fault-path-signal-safety) -- first-touch segment
  // allocation can run under a fault; it happens once per segment, and
  // preallocating in sigsegv mode is an open ROADMAP item
  auto storage = std::make_unique<std::uint32_t[]>(segment_words_);
  seg = storage.get();
  // csm-lint: allow(fault-path-signal-safety) -- same one-time segment
  // bookkeeping as the allocation above
  owned_segments_.push_back(std::move(storage));
  segments_allocated_.fetch_add(1, std::memory_order_relaxed);
  // Release pairs with SegmentFor's acquire: a reader that sees the
  // pointer sees the zeroed words.
  segments_[idx].store(seg, std::memory_order_release);
  return seg;
}

void ShardedDirectory::FillLocked(CacheEntry& e, PageId page, UnitId reader) {
  const std::uint32_t* seg = SegmentFor(page);
  for (int u = 0; u < units_; ++u) {
    e.words[u] = seg != nullptr ? LoadWord32(&seg[SlotOf(page, u)]) : 0;
  }
  e.page = page;
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (ShardOwner(page) != reader) {
    // Entry fetch from the owner: one request word out, the entry back.
    hub_.AccountWrite(Traffic::kDirectory,
                      kWordBytes * (1 + static_cast<std::size_t>(units_)));
  }
}

DirWord ShardedDirectory::Read(PageId page, UnitId unit) {
  // Own-word lookup (reader == unit). Exact: the unit's own word in a live
  // cache entry is maintained by write-through under the entry lock, and a
  // miss refills from the authoritative entry.
  CacheEntry& e = EntryFor(unit, page);
  SpinLockGuard guard(e.lock);
  if (e.page != page) {
    FillLocked(e, page, unit);
  } else {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return DirWord::Unpack(e.words[unit]);
}

DirWriteResult ShardedDirectory::Write(PageId page, UnitId unit, DirWord word) {
  CsmAssertUnitWriter(unit, "ShardedDirectory::Write");
  std::uint32_t* seg = EnsureSegment(page);
  {
    SpinLockGuard order(OrderLockFor(page));
    // csm-lint: allow(raw-dir-write) -- ShardedDirectory::Write IS the
    // backend's word-mutation funnel; the store lands in the owner-side
    // entry inside its MC write order.
    StoreWord32(&seg[SlotOf(page, unit)], word.Pack());
  }
  DirWriteResult res;
  res.p2p = true;
  if (ShardOwner(page) != unit) {
    res.wire_bytes = static_cast<std::uint32_t>(kWordBytes);
    hub_.AccountWrite(Traffic::kDirectory, kWordBytes);
  }
  // Write-through so the unit's own-word reads stay exact while the entry
  // is cached. Other units' cached copies go stale until their next
  // write-notice invalidation or miss — by design (freshness contract).
  CacheEntry& e = EntryFor(unit, page);
  SpinLockGuard guard(e.lock);
  if (e.page == page) {
    e.words[unit] = word.Pack();
  }
  return res;
}

DirWriteResult ShardedDirectory::WriteAndSnapshot(PageId page, UnitId unit, DirWord word,
                                                  std::uint32_t* snapshot) {
  CsmAssertUnitWriter(unit, "ShardedDirectory::WriteAndSnapshot");
  std::uint32_t* seg = EnsureSegment(page);
  {
    // The claim and the snapshot execute inside the entry's MC write
    // order, owner-side: two concurrent claimants serialize here, and the
    // one ordered second sees the first in its snapshot and withdraws —
    // the same arbitration the replicated broadcast provides.
    SpinLockGuard order(OrderLockFor(page));
    // csm-lint: allow(raw-dir-write) -- owner-side ordered claim store;
    // the snapshot below must observe it atomically with the entry.
    StoreWord32(&seg[SlotOf(page, unit)], word.Pack());
    for (int u = 0; u < units_; ++u) {
      snapshot[u] = LoadWord32(&seg[SlotOf(page, u)]);
    }
  }
  DirWriteResult res;
  res.p2p = true;
  if (ShardOwner(page) != unit) {
    // Claim word to the owner plus the snapshot reply.
    res.wire_bytes =
        static_cast<std::uint32_t>(kWordBytes * (1 + static_cast<std::size_t>(units_)));
    hub_.AccountWrite(Traffic::kDirectory, res.wire_bytes);
  }
  // The snapshot is the freshest possible entry image: refresh the
  // claimer's cache slot with it.
  CacheEntry& e = EntryFor(unit, page);
  SpinLockGuard guard(e.lock);
  e.page = page;
  for (int u = 0; u < units_; ++u) {
    e.words[u] = snapshot[u];
  }
  return res;
}

bool ShardedDirectory::AnyOtherSharer(PageId page, UnitId self) {
  // Cached query: a stale answer only mis-gates the claim *attempt*; the
  // claim itself is arbitrated by WriteAndSnapshot's owner-side snapshot.
  CacheEntry& e = EntryFor(self, page);
  SpinLockGuard guard(e.lock);
  if (e.page != page) {
    FillLocked(e, page, self);
  } else {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  for (int u = 0; u < units_; ++u) {
    if (u == self) {
      continue;
    }
    const DirWord w = DirWord::Unpack(e.words[u]);
    if (w.perm != Perm::kInvalid || w.exclusive) {
      return true;
    }
  }
  return false;
}

UnitId ShardedDirectory::ExclusiveHolder(PageId page, UnitId reader) {
  // Cached query: a missed holder is caught by the fault path's timestamp
  // check plus the authoritative ExclusiveHolderFresh in FetchPage (a
  // claim can only have succeeded while our word was invalid, which
  // implies our copy is not timestamp-valid — see DESIGN.md §13).
  CacheEntry& e = EntryFor(reader, page);
  SpinLockGuard guard(e.lock);
  if (e.page != page) {
    FillLocked(e, page, reader);
  } else {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  for (int u = 0; u < units_; ++u) {
    if (DirWord::Unpack(e.words[u]).exclusive) {
      return u;
    }
  }
  return -1;
}

UnitId ShardedDirectory::ExclusiveHolderFresh(PageId page, UnitId reader) {
  CacheEntry& e = EntryFor(reader, page);
  SpinLockGuard guard(e.lock);
  FillLocked(e, page, reader);
  for (int u = 0; u < units_; ++u) {
    if (DirWord::Unpack(e.words[u]).exclusive) {
      return u;
    }
  }
  return -1;
}

int ShardedDirectory::Sharers(PageId page, UnitId exclude, UnitId* out) {
  // Authoritative: the release path must see a unit that joined the
  // sharing set an instant ago (its directory update is ordered before
  // its fetch), or that unit would miss a write notice and read stale
  // data. Reads the owner-side entry directly; with units <= 32 the
  // sharer set crosses the wire as a single word.
  const std::uint32_t* seg = SegmentFor(page);
  if (exclude >= 0 && ShardOwner(page) != exclude) {
    // Request word to the owner, sharer-bitmask word back.
    hub_.AccountWrite(Traffic::kDirectory, 2 * kWordBytes);
  }
  int n = 0;
  if (seg == nullptr) {
    return n;
  }
  for (int u = 0; u < units_; ++u) {
    if (u == exclude) {
      continue;
    }
    const DirWord w = DirWord::Unpack(LoadWord32(&seg[SlotOf(page, u)]));
    if (w.perm != Perm::kInvalid || w.exclusive) {
      out[n++] = u;
    }
  }
  return n;
}

void ShardedDirectory::InvalidateCached(UnitId reader, PageId page) {
  CacheEntry& e = EntryFor(reader, page);
  SpinLockGuard guard(e.lock);
  if (e.page == page) {
    e.page = kNoCachedPage;
  }
}

std::size_t ShardedDirectory::ResidentBytes() const {
  const std::size_t segment_bytes =
      segments_allocated_.load(std::memory_order_relaxed) * segment_words_ * kWordBytes;
  const std::size_t cache_bytes = static_cast<std::size_t>(units_) *
                                  (static_cast<std::size_t>(cache_mask_) + 1) *
                                  sizeof(CacheEntry);
  return segment_bytes + cache_bytes;
}

std::unique_ptr<DirectoryBackend> MakeDirectory(const Config& cfg, McHub& hub,
                                                const HomeTable& homes) {
  if (cfg.dir.mode == DirMode::kSharded) {
    return std::make_unique<ShardedDirectory>(cfg, hub, homes);
  }
  return std::make_unique<GlobalDirectory>(cfg, hub);
}

}  // namespace cashmere
