#include "cashmere/protocol/twin_pool.hpp"

#include <sys/mman.h>

#include "cashmere/common/logging.hpp"

namespace cashmere {

TwinPool::TwinPool(std::size_t heap_bytes)
    : size_(heap_bytes),
      maps_(std::make_unique<DirtyBlockMap[]>((heap_bytes + kPageBytes - 1) / kPageBytes)),
      shards_(std::make_unique<DirtyMapShard[]>(
          ((heap_bytes + kPageBytes - 1) / kPageBytes) * kMaxProcsPerNode)) {
  void* p = mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CSM_CHECK(p != MAP_FAILED);
  base_ = static_cast<std::byte*>(p);
}

TwinPool::~TwinPool() {
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
}

}  // namespace cashmere
