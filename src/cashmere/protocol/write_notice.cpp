#include "cashmere/protocol/write_notice.hpp"

namespace cashmere {

PageNoticeQueue::PageNoticeQueue(std::size_t pages)
    : bitmap_((pages + 31) / 32), ring_(pages == 0 ? 1 : pages) {
  for (auto& w : bitmap_) {
    w.store(0, std::memory_order_relaxed);
  }
}

bool PageNoticeQueue::TestAndSetBit(PageId page) {
  std::atomic<std::uint32_t>& word = bitmap_[page / 32];
  const std::uint32_t mask = 1u << (page % 32);
  const std::uint32_t prev = word.fetch_or(mask, std::memory_order_acq_rel);
  return (prev & mask) == 0;
}

void PageNoticeQueue::ClearBit(PageId page) {
  bitmap_[page / 32].fetch_and(~(1u << (page % 32)), std::memory_order_acq_rel);
}

bool PageNoticeQueue::Post(PageId page) {
  if (!TestAndSetBit(page)) {
    return false;  // already pending; one queue entry covers both notices
  }
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  ring_[head % ring_.size()] = page;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

WriteNoticeBoard::WriteNoticeBoard(const Config& cfg, McHub& hub)
    : units_(cfg.units()), hub_(hub), consumer_locks_(static_cast<std::size_t>(cfg.units())) {
  const std::size_t pages = cfg.pages();
  for (int dst = 0; dst < units_; ++dst) {
    for (int src = 0; src < units_; ++src) {
      global_.emplace_back(pages);
    }
  }
  for (int p = 0; p < cfg.total_procs(); ++p) {
    local_.emplace_back(pages);
  }
}

void WriteNoticeBoard::PostGlobal(UnitId dst_unit, UnitId src_unit, PageId page) {
  PageNoticeQueue& bin = GlobalBin(dst_unit, src_unit);
  // Multiple processors of src_unit may produce into the same bin; they
  // serialize on an intra-node lock (invisible to other nodes).
  SpinLockGuard guard(bin.producer_lock);
  bin.Post(page);
  hub_.AccountWrite(Traffic::kWriteNotice, kWordBytes);
}

bool WriteNoticeBoard::GlobalPending(UnitId self) const {
  for (int src = 0; src < units_; ++src) {
    if (src != self && !GlobalBin(self, src).Empty()) {
      return true;
    }
  }
  return false;
}

void WriteNoticeBoard::PostLocal(ProcId proc, PageId page) {
  PageNoticeQueue& q = local_[static_cast<std::size_t>(proc)];
  SpinLockGuard guard(q.producer_lock);
  q.Post(page);
}

}  // namespace cashmere
