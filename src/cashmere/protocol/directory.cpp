#include "cashmere/protocol/directory.hpp"

#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

// Directory writes are ordered among themselves (MC guarantees a total
// order per region); a module-level lock per directory models that.
SpinLock& OrderLock() {
  static SpinLock lock;
  return lock;
}

}  // namespace

GlobalDirectory::GlobalDirectory(const Config& cfg, McHub& hub)
    : DirectoryBackend(cfg),
      hub_(hub),
      words_(cfg.pages() * static_cast<std::size_t>(units_), 0) {}

DirWord GlobalDirectory::Read(PageId page, UnitId unit) {
  return DirWord::Unpack(LoadWord32(WordPtr(page, unit)));
}

DirWriteResult GlobalDirectory::Write(PageId page, UnitId unit, DirWord word) {
  CsmAssertUnitWriter(unit, "GlobalDirectory::Write");
  SpinLockGuard guard(OrderLock());
  StoreWord32(WordPtr(page, unit), word.Pack());
  hub_.AccountWrite(Traffic::kDirectory, kWordBytes * static_cast<std::size_t>(units_));
  DirWriteResult res;
  res.wire_bytes = static_cast<std::uint32_t>(kWordBytes * static_cast<std::size_t>(units_));
  res.p2p = false;
  return res;
}

DirWriteResult GlobalDirectory::WriteAndSnapshot(PageId page, UnitId unit, DirWord word,
                                                 std::uint32_t* snapshot) {
  CsmAssertUnitWriter(unit, "GlobalDirectory::WriteAndSnapshot");
  SpinLockGuard guard(OrderLock());
  StoreWord32(WordPtr(page, unit), word.Pack());
  hub_.AccountWrite(Traffic::kDirectory, kWordBytes * static_cast<std::size_t>(units_));
  for (int u = 0; u < units_; ++u) {
    snapshot[u] = LoadWord32(WordPtr(page, u));
  }
  DirWriteResult res;
  res.wire_bytes = static_cast<std::uint32_t>(kWordBytes * static_cast<std::size_t>(units_));
  res.p2p = false;
  return res;
}

bool GlobalDirectory::AnyOtherSharer(PageId page, UnitId self) {
  for (int u = 0; u < units_; ++u) {
    if (u == self) {
      continue;
    }
    const DirWord w = Read(page, u);
    if (w.perm != Perm::kInvalid || w.exclusive) {
      return true;
    }
  }
  return false;
}

UnitId GlobalDirectory::ExclusiveHolder(PageId page, UnitId /*reader*/) {
  for (int u = 0; u < units_; ++u) {
    if (Read(page, u).exclusive) {
      return u;
    }
  }
  return -1;
}

int GlobalDirectory::Sharers(PageId page, UnitId exclude, UnitId* out) {
  int n = 0;
  for (int u = 0; u < units_; ++u) {
    if (u == exclude) {
      continue;
    }
    const DirWord w = Read(page, u);
    if (w.perm != Perm::kInvalid || w.exclusive) {
      out[n++] = u;
    }
  }
  return n;
}

}  // namespace cashmere
