#include "cashmere/protocol/directory.hpp"

#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

// Directory writes are ordered among themselves (MC guarantees a total
// order per region); a module-level lock per directory models that.
SpinLock& OrderLock() {
  static SpinLock lock;
  return lock;
}

}  // namespace

GlobalDirectory::GlobalDirectory(const Config& cfg, McHub& hub)
    : units_(cfg.units()),
      hub_(hub),
      words_(cfg.pages() * static_cast<std::size_t>(units_), 0),
      entry_locks_(kNumEntryLocks) {}

DirWord GlobalDirectory::Read(PageId page, UnitId unit) const {
  return DirWord::Unpack(LoadWord32(WordPtr(page, unit)));
}

void GlobalDirectory::Write(PageId page, UnitId unit, DirWord word) {
  CsmAssertUnitWriter(unit, "GlobalDirectory::Write");
  SpinLockGuard guard(OrderLock());
  StoreWord32(WordPtr(page, unit), word.Pack());
  hub_.AccountWrite(Traffic::kDirectory, kWordBytes * static_cast<std::size_t>(units_));
}

void GlobalDirectory::WriteAndSnapshot(PageId page, UnitId unit, DirWord word,
                                       std::uint32_t* snapshot) const {
  CsmAssertUnitWriter(unit, "GlobalDirectory::WriteAndSnapshot");
  SpinLockGuard guard(OrderLock());
  StoreWord32(const_cast<std::uint32_t*>(WordPtr(page, unit)), word.Pack());
  hub_.AccountWrite(Traffic::kDirectory, kWordBytes * static_cast<std::size_t>(units_));
  for (int u = 0; u < units_; ++u) {
    snapshot[u] = LoadWord32(WordPtr(page, u));
  }
}

bool GlobalDirectory::AnyOtherSharer(PageId page, UnitId self) const {
  for (int u = 0; u < units_; ++u) {
    if (u == self) {
      continue;
    }
    const DirWord w = Read(page, u);
    if (w.perm != Perm::kInvalid || w.exclusive) {
      return true;
    }
  }
  return false;
}

UnitId GlobalDirectory::ExclusiveHolder(PageId page) const {
  for (int u = 0; u < units_; ++u) {
    if (Read(page, u).exclusive) {
      return u;
    }
  }
  return -1;
}

int GlobalDirectory::Sharers(PageId page, UnitId exclude, UnitId* out) const {
  int n = 0;
  for (int u = 0; u < units_; ++u) {
    if (u == exclude) {
      continue;
    }
    const DirWord w = Read(page, u);
    if (w.perm != Perm::kInvalid || w.exclusive) {
      out[n++] = u;
    }
  }
  return n;
}

}  // namespace cashmere
