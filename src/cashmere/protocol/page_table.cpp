#include "cashmere/protocol/page_table.hpp"

#include <memory>

namespace cashmere {

UnitState::UnitState(const Config& cfg, UnitId unit) {
  const std::size_t pages = cfg.pages();
  for (std::size_t i = 0; i < pages; ++i) {
    pages_.emplace_back();
  }
  const int ppu = cfg.procs_per_unit();
  dirty_.reserve(static_cast<std::size_t>(ppu));
  nle_.reserve(static_cast<std::size_t>(ppu));
  for (int i = 0; i < ppu; ++i) {
    dirty_.push_back(std::make_unique<PageList>(pages));
    nle_.push_back(std::make_unique<PageList>(pages));
  }
}

}  // namespace cashmere
