// The Cashmere protocol family (Section 2).
//
// One implementation covers the paper's five protocols; they differ only in
// unit topology and a few strategy points:
//
//   Cashmere-2L   units = SMP nodes; two-way diffing; lock-free directory
//                 and write-notice structures.
//   Cashmere-2LS  like 2L, but page updates and releases shoot down all
//                 concurrent local write mappings (flush + discard twin)
//                 instead of merging with incoming diffs.
//   2L-globallock Section 3.3.5 ablation: directory entries and write
//                 notice lists guarded by cluster-wide locks.
//   Cashmere-1LD  units = individual processors; twins + outgoing diffs.
//   Cashmere-1L   like 1LD, but modifications are costed as write-through
//                 ("write doubling") rather than release-time diffs.
//
// The one-level protocols can additionally run with the home-node
// optimization: processors on the home processor's SMP node work directly
// on the master copy and skip twins/invalidations for those pages.
//
// Concurrency discipline (see DESIGN.md):
//   - Per-page-per-unit state is guarded by PageLocal::lock; no code ever
//     waits (polls) while holding a page lock. Fetches mark the page
//     "fetch in progress", drop the lock, and wait; concurrent local
//     faults on the same page wait for the fetch and reuse the new copy,
//     which is exactly the paper's intra-node fetch coalescing.
//   - Exclusive-mode claims are resolved through the directory's ordered
//     broadcast (MC total ordering): a claimant re-reads the directory
//     inside the order and withdraws if another unit is visible.
#ifndef CASHMERE_PROTOCOL_CASHMERE_PROTOCOL_HPP_
#define CASHMERE_PROTOCOL_CASHMERE_PROTOCOL_HPP_

#include <memory>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/msg/message_layer.hpp"
#include "cashmere/protocol/coherence_log.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/home_table.hpp"
#include "cashmere/protocol/page_table.hpp"
#include "cashmere/protocol/twin_pool.hpp"
#include "cashmere/protocol/write_notice.hpp"
#include "cashmere/runtime/context.hpp"
#include "cashmere/vm/arena.hpp"
#include "cashmere/vm/view.hpp"

namespace cashmere {

class CashmereProtocol : public RequestHandler {
 public:
  struct Deps {
    const Config* cfg = nullptr;
    McHub* hub = nullptr;
    MessageLayer* msg = nullptr;
    DirectoryBackend* dir = nullptr;
    HomeTable* homes = nullptr;
    WriteNoticeBoard* notices = nullptr;
    std::vector<std::unique_ptr<Arena>>* arenas = nullptr;     // per unit
    std::vector<std::unique_ptr<View>>* views = nullptr;       // per processor
    std::vector<std::unique_ptr<TwinPool>>* twins = nullptr;   // per unit
    std::vector<std::unique_ptr<UnitState>>* units = nullptr;  // per unit
    // Non-null iff Config::async.release: the per-unit CoherenceLogs the
    // release path publishes into and the cache agents drain.
    CoherenceEngine* coh = nullptr;
  };

  explicit CashmereProtocol(Deps deps);

  // --- Entry points -----------------------------------------------------
  // Page fault by ctx's processor (from SIGSEGV or the software driver).
  // Escaped from the thread-safety analysis: the fault loop conditionally
  // drops and retakes the page lock across iterations (fetch coalescing,
  // fetch-in-progress hand-off), a dance beyond what the static analysis
  // can follow. The lock pairing is exercised by every protocol test.
  void OnFault(Context& ctx, PageId page, bool is_write)
      CSM_NO_THREAD_SAFETY_ANALYSIS;

  // Consistency actions at a lock acquire / flag read / barrier departure.
  void AcquireSync(Context& ctx);
  // Consistency actions before a lock release / flag set / barrier
  // arrival. `barrier_arrival` enables the last-local-writer flush rule.
  void ReleaseSync(Context& ctx, bool barrier_arrival);

  // Barrier-episode bookkeeping (arrival mask for the flush rule).
  void BarrierArriveBegin(Context& ctx);
  void BarrierDepartEnd(Context& ctx);

  // Explicit requests from remote units (executed on a polling processor).
  void HandleRequest(const Request& request) override;

  // Poll for and service pending requests (Figure 5's poll sequence).
  void Poll(Context& ctx);

  // End-of-run quiesce: flushes exclusive-mode pages and any remaining
  // dirty pages of the calling processor's unit to the master copies so
  // results can be read out. Called once per unit after a full barrier.
  void FinalFlush(Context& ctx);

  // Async release-path coherence: applies one published log record on the
  // cache-agent thread of `unit` — replays the record's serialized diff
  // into the home node's master copy, posts the recorded write notices,
  // and decrements the page's pending-flush count. The caller (the agent
  // loop in Runtime::Run) advances `clock` to the record's publish time
  // first and calls CoherenceLog::PopApplied afterwards, in that order, so
  // a gated acquirer that observes the advanced applied_seq also observes
  // the applied diff and the posted notices. Takes no page locks (see
  // docs/concurrency.md: publishers may spin on a full ring while holding
  // one).
  void AgentApply(UnitId unit, const CoherenceRecord& rec, VirtualClock& clock,
                  Stats& stats);

  // Software fault mode only: records that [offset, offset + bytes) of
  // `page` is about to be written by the processor at `local_index` of
  // `unit`, so diff scans can skip untouched blocks. Lock-free: the mark
  // lands in the calling processor's own dirty-map shard (stamped with the
  // current twin generation) via relaxed atomics; flushes OR-fold the
  // shards into the twin's map under the page lock. No-op while the page
  // has no live twin (master-sharing, exclusive mode, or no local writer).
  void NoteLocalWrite(UnitId unit, int local_index, PageId page, std::size_t offset,
                      std::size_t bytes);

  // --- Introspection (tests) ---------------------------------------------
  PageLocal& PageState(UnitId unit, PageId page) { return Unit(unit).Page(page); }
  UnitState& Unit(UnitId unit) { return *(*deps_.units)[static_cast<std::size_t>(unit)]; }
  bool UnitAtMaster(UnitId unit, PageId page) const;
  std::byte* MasterPtr(PageId page) const;
  std::byte* WorkingPtr(UnitId unit, PageId page) const;
  // Takes the page lock, folds the unit's shards into the twin's map, and
  // returns that map — lets tests assert that concurrently-noted writes
  // are never lost, without reaching into the flush paths.
  const DirtyBlockMap& MergedTwinMapForTesting(UnitId unit, PageId page);

 private:
  // Fault machinery.
  bool NeedFetch(const PageLocal& pl, UnitId unit, PageId page) const
      CSM_REQUIRES(pl.lock);
  // Takes the page lock internally (fetch_in_progress is set, so this
  // processor is the page's only fetcher); must not be entered holding it.
  void FetchPage(Context& ctx, PageLocal& pl, PageId page) CSM_EXCLUDES(pl.lock);
  // `piggyback` distinguishes images piggybacked on a break-exclusive reply
  // from home fetches; the replay checker exempts piggybacks from the
  // write-notice-before-diff invariant.
  void ApplyIncoming(Context& ctx, PageLocal& pl, PageId page, const std::byte* image,
                     bool piggyback) CSM_REQUIRES(pl.lock);
  void BreakRemoteExclusive(Context& ctx, PageLocal& pl, PageId page, UnitId holder)
      CSM_EXCLUDES(pl.lock);
  void WaitFetchDone(Context& ctx, PageLocal& pl) CSM_EXCLUDES(pl.lock);
  std::uint64_t AwaitReply(Context& ctx, std::uint64_t seq);

  // Write-fault helpers (page lock held).
  void EnterExclusiveOrShare(Context& ctx, PageLocal& pl, PageId page)
      CSM_REQUIRES(pl.lock);
  void EnsureTwin(Context& ctx, PageLocal& pl, PageId page) CSM_REQUIRES(pl.lock);
  void ShootdownLocalWriters(Context& ctx, PageLocal& pl, PageId page)
      CSM_REQUIRES(pl.lock);
  // The traced counterpart of PageLocal::SetTwinValid (page lock held):
  // emits kTwinCreate/kTwinDiscard carrying the post-toggle generation so
  // the replay checker can verify the twin-iff-odd-generation invariant.
  void SetTwinTraced(PageLocal& pl, PageId page, bool valid) CSM_REQUIRES(pl.lock);

  // Release machinery.
  void FlushPage(Context& ctx, PageLocal& pl, PageId page, std::uint64_t release_start,
                 bool barrier_arrival) CSM_EXCLUDES(pl.lock);
  void SendWriteNotices(Context& ctx, PageId page);
  // Units (bitmask) a release of `page` must notify: the directory's
  // sharing set minus master-sharing units. In async mode this is read at
  // publish time, under the page lock — the same point of the release at
  // which the synchronous path reads it — so the write-notice sets (and
  // the kWriteNotices counters) are identical across modes.
  std::uint32_t WriteNoticeTargets(Context& ctx, PageId page);
  // Async release path (Config::async.release): serializes the page's
  // outgoing diff and write-notice target set into the unit's CoherenceLog
  // instead of replaying synchronously, bumps the page's pending-flush
  // count, records the new sequence in ctx.seen_seq(), and charges only
  // the publish cost — the diff replay, bus occupancy, and write-notice
  // latency move to the cache agent (AgentApply).
  void PublishCoherenceRecord(Context& ctx, PageLocal& pl, PageId page)
      CSM_REQUIRES(pl.lock);
  // Happens-before gate at the top of AcquireSync (async mode): waits
  // until every unit whose releases precede this acquire (per
  // ctx.seen_seq(), max-folded through sync objects) has applied the
  // corresponding log prefix, then reconciles the acquirer's clock with
  // the latest gated apply time. Gates on exactly the happens-before
  // predecessors — never on unrelated in-flight traffic. No-op in
  // synchronous mode.
  void GateOnAppliedSeq(Context& ctx);
  // Result of one outgoing diff flush: modified words (drives the DiffOut
  // virtual-time charge) and the bytes the transfer occupies on the serial
  // MC bus — payload only by default, payload + run headers under the
  // diff.charge_run_headers cost variant.
  struct FlushResult {
    std::size_t words = 0;
    std::size_t bus_bytes = 0;
  };
  // Merges the unit's write-tracking shards into the twin's map, block-scans
  // working-vs-twin (restricted by the map), serializes the RLE runs into
  // the flusher's wire buffer in the message layer, and — when `replay_now`
  // — replays them into the home node's master copy as MC remote writes.
  // The async publish path passes replay_now = false: the serialized image
  // is copied into the log record and the unit's cache agent performs the
  // replay (and books kDiffRunApplyBytes) when it applies the record. `pl`
  // is the page's state on ctx's unit; its lock is held by the caller.
  FlushResult FlushOutgoingDiffRuns(Context& ctx, PageLocal& pl, PageId page,
                                    bool flush_update, bool replay_now = true)
      CSM_REQUIRES(pl.lock);
  // OR-folds every local shard stamped with the current twin generation
  // into the twin's master map; stale-generation shards are skipped. `pl`
  // is the page's state on `unit`; its lock is held by the caller
  // (twin_gen cannot change mid-merge). `stats` (may be null) receives the
  // kDirtyShardMerges count.
  void MergeWriteShards(UnitId unit, PageLocal& pl, PageId page, Stats* stats)
      CSM_REQUIRES(pl.lock);

  // Directory helpers (charge costs, honour the global-lock ablation).
  void UpdateDirWord(Context& ctx, PageId page, DirWord word);
  void RefreshLoosestPerm(Context& ctx, PageLocal& pl, PageId page)
      CSM_REQUIRES(pl.lock);

  // First touch (Section 2.3, "Home node selection").
  // Escaped from the thread-safety analysis: acquires the global home lock
  // through a TryLock-poll loop (servicing requests between attempts) and
  // releases it on three different exits — beyond the analysis.
  void MaybeFirstTouch(Context& ctx, PageId page) CSM_NO_THREAD_SAFETY_ANALYSIS;
  void RelocateSuperpage(Context& ctx, std::size_t superpage, UnitId new_home);

  // Topology helpers.
  View& ViewOf(ProcId proc) { return *(*deps_.views)[static_cast<std::size_t>(proc)]; }
  std::byte* TwinPtr(UnitId unit, PageId page) const {
    return (*deps_.twins)[static_cast<std::size_t>(unit)]->TwinPtr(page);
  }
  DirtyBlockMap& TwinMap(UnitId unit, PageId page) const {
    return (*deps_.twins)[static_cast<std::size_t>(unit)]->Map(page);
  }
  DirtyMapShard& WriteShard(UnitId unit, PageId page, int local_index) const {
    return (*deps_.twins)[static_cast<std::size_t>(unit)]->Shard(page, local_index);
  }
  // Initializes the dirty map at twin creation (page lock held): exact
  // tracking is possible only when every subsequent write is visible
  // (software fault mode with no pre-existing writer); otherwise the map
  // is conservatively full. Counts still-marked shards of earlier twin
  // generations as discarded (kDirtyShardStaleDrops).
  void InitTwinMap(Context& ctx, const PageLocal& pl, UnitId unit, PageId page)
      CSM_REQUIRES(pl.lock);
  ProcId GlobalProc(UnitId unit, int local_index) const {
    return cfg_.FirstProcOfUnit(unit) + local_index;
  }
  void ProtectLocal(Context& ctx, PageLocal& pl, UnitId unit, int local_index, PageId page,
                    Perm perm) CSM_REQUIRES(pl.lock);
  // Flushes the processor's queued permission changes as coalesced
  // mprotect ranges (no-op outside SIGSEGV fault mode, where nothing is
  // ever queued). Every protocol episode that queued transitions must call
  // this before user code could observe a stale-loose hardware mapping;
  // see DESIGN.md §11 for the commit-point inventory.
  void CommitPermBatch(Context& ctx);

 public:
  // PermBatch resolver: re-reads the protocol's current per-processor perm
  // for (proc, page) at commit time, superseding the queued hint. `self`
  // is the CashmereProtocol instance.
  static Perm ResolveQueuedPerm(void* self, ProcId proc, PageId page, Perm queued);

 private:
  bool IsWriteDouble() const {
    return cfg_.protocol == ProtocolVariant::kOneLevelWriteDouble;
  }
  bool IsShootdown() const {
    return cfg_.protocol == ProtocolVariant::kTwoLevelShootdown;
  }
  bool IsGlobalLock() const {
    return cfg_.protocol == ProtocolVariant::kTwoLevelGlobalLock;
  }

  Deps deps_;
  const Config& cfg_;
};

// RAII protocol-section guard: converts elapsed CPU time into user virtual
// time on entry and restarts the user-time clock on exit.
class ProtocolScope {
 public:
  explicit ProtocolScope(Context& ctx) : ctx_(ctx) {
    ctx_.clock().EnterProtocol(ctx_.stats());
  }
  ~ProtocolScope() { ctx_.clock().ExitProtocol(); }
  ProtocolScope(const ProtocolScope&) = delete;
  ProtocolScope& operator=(const ProtocolScope&) = delete;

 private:
  Context& ctx_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_CASHMERE_PROTOCOL_HPP_
