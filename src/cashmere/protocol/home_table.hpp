// Home assignment (Section 2.3, "Home node selection" and "Superpages").
//
// Homes are assigned per *superpage* (all pages of a superpage share a home
// because each superpage is one Memory Channel mapping). Initial assignment
// is round-robin; after application initialization a superpage is
// re-assigned once to the first unit that touches it ("first touch"),
// under a global lock — the only use of a global lock in the protocol.
#ifndef CASHMERE_PROTOCOL_HOME_TABLE_HPP_
#define CASHMERE_PROTOCOL_HOME_TABLE_HPP_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

class HomeTable {
 public:
  explicit HomeTable(const Config& cfg);

  UnitId HomeOfPage(PageId page) const { return HomeOfSuperpage(page / superpage_pages_); }
  UnitId HomeOfSuperpage(std::size_t sp) const {
    return entries_[sp].home.load(std::memory_order_acquire);
  }
  bool IsDefault(std::size_t sp) const {
    return !entries_[sp].relocated.load(std::memory_order_acquire);
  }
  std::size_t SuperpageOf(PageId page) const { return page / superpage_pages_; }
  std::size_t superpages() const { return entries_.size(); }
  std::size_t superpage_pages() const { return superpage_pages_; }

  // First-touch phase control: relocation is only permitted between
  // EnableFirstTouch() and the first relocation of each superpage.
  void EnableFirstTouch() { first_touch_enabled_.store(true, std::memory_order_release); }
  bool FirstTouchEnabled() const {
    return first_touch_enabled_.load(std::memory_order_acquire);
  }

  // The global home-selection lock (paper: an MC lock; cost charged by the
  // caller from the cost model).
  SpinLock& GlobalLock() { return global_lock_; }

  // Must hold GlobalLock(). Marks the superpage relocated to `unit`.
  void Relocate(std::size_t sp, UnitId unit) {
    entries_[sp].home.store(unit, std::memory_order_release);
    entries_[sp].relocated.store(true, std::memory_order_release);
  }
  // Must hold GlobalLock(). Marks the superpage as permanently default
  // (used when first touch decides to keep the round-robin home).
  void SealDefault(std::size_t sp) { entries_[sp].relocated.store(true, std::memory_order_release); }

 private:
  struct Entry {
    std::atomic<UnitId> home{0};
    std::atomic<bool> relocated{false};
  };

  std::size_t superpage_pages_;
  std::vector<Entry> entries_;
  std::atomic<bool> first_touch_enabled_{false};
  SpinLock global_lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_HOME_TABLE_HPP_
