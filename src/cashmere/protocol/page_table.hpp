// Per-unit protocol state: the second-level directory (per-processor
// permissions + three timestamps per page, Section 2.3), the unit's
// logical clock, per-processor dirty lists, and no-longer-exclusive (NLE)
// lists.
//
// Timestamps hold values of the unit's logical clock, which is incremented
// on protocol events (page faults, flushes, acquires, releases). They are:
//   flush_ts  — when the most recent flush of the page to the home began;
//   update_ts — when the local copy was last brought up to date;
//   wn_ts     — when the most recent write notice for the page was
//               distributed locally.
// A fetch can be skipped iff update_ts > wn_ts; a flush can be skipped iff
// it began after the releasing processor's release started.
#ifndef CASHMERE_PROTOCOL_PAGE_TABLE_HPP_
#define CASHMERE_PROTOCOL_PAGE_TABLE_HPP_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/logging.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

// State of one page on one unit. The spin lock guards all fields; waiting
// for a fetch in progress is done *without* the lock (see protocol).
struct PageLocal {
  SpinLock lock;
  std::atomic<bool> fetch_in_progress{false};

  std::atomic<std::uint64_t> update_ts{0};
  std::atomic<std::uint64_t> wn_ts{0};
  std::atomic<std::uint64_t> flush_ts{0};
  // Virtual time at which the last flush's data was globally visible;
  // used to order release->acquire reconciliation.
  std::atomic<std::uint64_t> flush_vt{0};

  std::uint8_t proc_perm[kMaxProcsPerNode] = {};  // Perm per local processor
  std::uint8_t dirty_mask = 0;                    // local procs holding the page dirty
  bool twin_valid = false;
  // Twin generation: incremented (under the page lock, via SetTwinValid)
  // every time twin_valid toggles, so parity encodes validity (odd ⇔ a
  // twin is live). The lock-free write-tracking fast path reads it without
  // the lock and stamps per-processor dirty-map shards with it; shards
  // stamped with a stale generation are discarded at merge time instead of
  // polluting a newer twin's map (see DirtyMapShard).
  std::atomic<std::uint64_t> twin_gen{0};
  bool exclusive = false;   // this unit holds the page in exclusive mode
  ProcId excl_proc = 0;     // processor recorded as the exclusive holder
  bool ever_valid = false;  // the local frame has held a valid copy
  // Trace-only transition sequence: bumped (under the page lock) for every
  // traced per-page protocol transition, giving the replay invariant
  // checker a total order over one page's transitions that does not depend
  // on cross-processor virtual-clock comparisons. Never read by the
  // protocol itself, and only bumped while tracing is active, so enabling
  // tracing cannot change protocol decisions.
  std::atomic<std::uint32_t> trace_seq{0};

  // The only way twin_valid may be changed (page lock held): keeps the
  // generation's parity in sync with the flag. Idempotent stores (e.g.
  // re-clearing an already-invalid twin during superpage relocation) do not
  // bump the generation, so every live twin has exactly one odd generation.
  void SetTwinValid(bool v) {
    if (twin_valid == v) {
      return;
    }
    twin_valid = v;
    twin_gen.fetch_add(1, std::memory_order_release);
  }

  Perm PermOfLocal(int local_index) const {
    return static_cast<Perm>(proc_perm[local_index]);
  }
  void SetPermOfLocal(int local_index, Perm p) {
    proc_perm[local_index] = static_cast<std::uint8_t>(p);
  }
  Perm Loosest(int procs_per_unit) const {
    Perm loosest = Perm::kInvalid;
    for (int i = 0; i < procs_per_unit; ++i) {
      if (proc_perm[i] > static_cast<std::uint8_t>(loosest)) {
        loosest = static_cast<Perm>(proc_perm[i]);
      }
    }
    return loosest;
  }
  int WriterCount(int procs_per_unit) const {
    int n = 0;
    for (int i = 0; i < procs_per_unit; ++i) {
      if (proc_perm[i] == static_cast<std::uint8_t>(Perm::kReadWrite)) {
        ++n;
      }
    }
    return n;
  }
};

// A bounded, lock-protected page list used for the per-processor dirty and
// NLE lists. Deduplicates via bitmap, like the write-notice queues.
class PageList {
 public:
  explicit PageList(std::size_t pages) : bitmap_((pages + 31) / 32), pages_() {
    pages_.reserve(pages);
    for (auto& w : bitmap_) {
      w.store(0, std::memory_order_relaxed);
    }
  }
  PageList(const PageList&) = delete;
  PageList& operator=(const PageList&) = delete;

  // Returns true if newly added.
  bool Add(PageId page) {
    SpinLockGuard guard(lock_);
    std::atomic<std::uint32_t>& word = bitmap_[page / 32];
    const std::uint32_t mask = 1u << (page % 32);
    if ((word.load(std::memory_order_relaxed) & mask) != 0) {
      return false;
    }
    word.fetch_or(mask, std::memory_order_relaxed);
    pages_.push_back(page);
    return true;
  }

  bool Contains(PageId page) const {
    return (bitmap_[page / 32].load(std::memory_order_acquire) & (1u << (page % 32))) != 0;
  }

  // Removes and returns all pages (order preserved).
  void TakeAll(std::vector<PageId>& out) {
    SpinLockGuard guard(lock_);
    out.insert(out.end(), pages_.begin(), pages_.end());
    for (const PageId p : pages_) {
      bitmap_[p / 32].fetch_and(~(1u << (p % 32)), std::memory_order_relaxed);
    }
    pages_.clear();
  }

  bool Empty() const {
    SpinLockGuard guard(const_cast<SpinLock&>(lock_));
    return pages_.empty();
  }

 private:
  mutable SpinLock lock_;
  std::vector<std::atomic<std::uint32_t>> bitmap_;
  std::vector<PageId> pages_;
};

// All protocol state owned by one coherence unit.
class UnitState {
 public:
  UnitState(const Config& cfg, UnitId unit);
  UnitState(const UnitState&) = delete;
  UnitState& operator=(const UnitState&) = delete;

  PageLocal& Page(PageId page) { return pages_[page]; }
  std::size_t page_count() const { return pages_.size(); }

  // Logical clock: "incremented every time the protocol begins an acquire
  // or release operation and applies local changes to the home node, or
  // vice versa".
  std::uint64_t Tick() { return clock_.fetch_add(1, std::memory_order_acq_rel) + 1; }
  std::uint64_t Now() const { return clock_.load(std::memory_order_acquire); }

  std::atomic<std::uint64_t>& last_release_time() { return last_release_time_; }

  PageList& DirtyList(int local_index) { return *dirty_[static_cast<std::size_t>(local_index)]; }
  PageList& NleList(int local_index) { return *nle_[static_cast<std::size_t>(local_index)]; }

  // Barrier-episode arrival mask (for the "last arriving local writer"
  // flush rule, Section 2.3).
  std::atomic<std::uint32_t>& barrier_arrived_mask() { return barrier_arrived_mask_; }

  // Serializes global write-notice drain + distribution among this unit's
  // processors, so a processor that finds the global bins already drained
  // is guaranteed the concurrent drainer has finished distributing to the
  // per-processor lists before it processes its own list.
  SpinLock& acquire_lock() { return acquire_lock_; }

 private:
  std::deque<PageLocal> pages_;
  std::atomic<std::uint64_t> clock_{1};
  std::atomic<std::uint64_t> last_release_time_{0};
  std::vector<std::unique_ptr<PageList>> dirty_;
  std::vector<std::unique_ptr<PageList>> nle_;
  std::atomic<std::uint32_t> barrier_arrived_mask_{0};
  SpinLock acquire_lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_PAGE_TABLE_HPP_
