// Per-unit protocol state: the second-level directory (per-processor
// permissions + three timestamps per page, Section 2.3), the unit's
// logical clock, per-processor dirty lists, and no-longer-exclusive (NLE)
// lists.
//
// Timestamps hold values of the unit's logical clock, which is incremented
// on protocol events (page faults, flushes, acquires, releases). They are:
//   flush_ts  — when the most recent flush of the page to the home began;
//   update_ts — when the local copy was last brought up to date;
//   wn_ts     — when the most recent write notice for the page was
//               distributed locally.
// A fetch can be skipped iff update_ts > wn_ts; a flush can be skipped iff
// it began after the releasing processor's release started.
#ifndef CASHMERE_PROTOCOL_PAGE_TABLE_HPP_
#define CASHMERE_PROTOCOL_PAGE_TABLE_HPP_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/logging.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

// State of one page on one unit. The spin lock guards all fields; waiting
// for a fetch in progress is done *without* the lock (see protocol).
struct PageLocal {
  SpinLock lock;
  std::atomic<bool> fetch_in_progress{false};

  std::atomic<std::uint64_t> update_ts{0};
  std::atomic<std::uint64_t> wn_ts{0};
  std::atomic<std::uint64_t> flush_ts{0};
  // Virtual time at which the last flush's data was globally visible;
  // used to order release->acquire reconciliation.
  std::atomic<std::uint64_t> flush_vt{0};

  // Perm per local processor. Written only under the page lock; the atomic
  // type exists for PermOfLocalRelaxed, the software-fault driver's
  // per-access probe, which reads without the lock (previously a plain
  // unlocked read — a data race against cross-processor downgrades).
  std::atomic<std::uint8_t> proc_perm[kMaxProcsPerNode] = {};
  // Local procs holding the page dirty
  std::uint8_t dirty_mask CSM_GUARDED_BY(lock) = 0;
  bool twin_valid CSM_GUARDED_BY(lock) = false;
  // Twin generation: incremented (under the page lock, via SetTwinValid)
  // every time twin_valid toggles, so parity encodes validity (odd ⇔ a
  // twin is live). The lock-free write-tracking fast path reads it without
  // the lock and stamps per-processor dirty-map shards with it; shards
  // stamped with a stale generation are discarded at merge time instead of
  // polluting a newer twin's map (see DirtyMapShard).
  std::atomic<std::uint64_t> twin_gen{0};
  // This unit holds the page in exclusive mode
  bool exclusive CSM_GUARDED_BY(lock) = false;
  // Processor recorded as the exclusive holder
  ProcId excl_proc CSM_GUARDED_BY(lock) = 0;
  // The local frame has held a valid copy
  bool ever_valid CSM_GUARDED_BY(lock) = false;
  // Async release-path coherence (protocol/coherence_log.hpp): number of
  // published-but-not-yet-applied log records covering this page on this
  // unit. Incremented under the page lock at publish time; decremented by
  // the unit's cache agent (which takes no page locks) after it has
  // replayed the record's diff into the master copy and posted the write
  // notices. While nonzero, (a) a local fetch must not read the master copy
  // — it would miss this unit's own in-flight modifications — and (b) the
  // unit must stay in the page's sharing set so no other unit claims
  // exclusive mode over the pending flush.
  std::atomic<std::uint32_t> pending_flush{0};
  // Trace-only transition sequence: bumped (under the page lock) for every
  // traced per-page protocol transition, giving the replay invariant
  // checker a total order over one page's transitions that does not depend
  // on cross-processor virtual-clock comparisons. Never read by the
  // protocol itself, and only bumped while tracing is active, so enabling
  // tracing cannot change protocol decisions.
  std::atomic<std::uint32_t> trace_seq{0};

  // The only way twin_valid may be changed (page lock held): keeps the
  // generation's parity in sync with the flag. Idempotent stores (e.g.
  // re-clearing an already-invalid twin during superpage relocation) do not
  // bump the generation, so every live twin has exactly one odd generation.
  void SetTwinValid(bool v) CSM_REQUIRES(lock) {
    if (twin_valid == v) {
      return;
    }
    twin_valid = v;
    twin_gen.fetch_add(1, std::memory_order_release);
  }

  Perm PermOfLocal(int local_index) const CSM_REQUIRES(lock) {
    return static_cast<Perm>(proc_perm[local_index].load(std::memory_order_relaxed));
  }
  // Unlocked fast-path probe (EnsureRead/EnsureWrite, per instrumented
  // access). A stale read is benign: a racing *upgrade* only causes a
  // spurious fault that re-validates under the lock, and a racing
  // *downgrade* can be ordered before the probe anyway — equivalent to the
  // access having happened just before the downgrader took the lock, which
  // the flush/merge discipline already tolerates (monotone dirty maps,
  // stale-generation shard discard).
  Perm PermOfLocalRelaxed(int local_index) const {
    return static_cast<Perm>(proc_perm[local_index].load(std::memory_order_relaxed));
  }
  void SetPermOfLocal(int local_index, Perm p) CSM_REQUIRES(lock) {
    proc_perm[local_index].store(static_cast<std::uint8_t>(p), std::memory_order_relaxed);
  }
  Perm Loosest(int procs_per_unit) const CSM_REQUIRES(lock) {
    Perm loosest = Perm::kInvalid;
    for (int i = 0; i < procs_per_unit; ++i) {
      const std::uint8_t p = proc_perm[i].load(std::memory_order_relaxed);
      if (p > static_cast<std::uint8_t>(loosest)) {
        loosest = static_cast<Perm>(p);
      }
    }
    return loosest;
  }
  int WriterCount(int procs_per_unit) const CSM_REQUIRES(lock) {
    int n = 0;
    for (int i = 0; i < procs_per_unit; ++i) {
      if (proc_perm[i].load(std::memory_order_relaxed) ==
          static_cast<std::uint8_t>(Perm::kReadWrite)) {
        ++n;
      }
    }
    return n;
  }
};

// A bounded, lock-protected page list used for the per-processor dirty and
// NLE lists. Deduplicates via bitmap, like the write-notice queues.
class PageList {
 public:
  explicit PageList(std::size_t pages) : bitmap_((pages + 31) / 32), pages_() {
    pages_.reserve(pages);
    for (auto& w : bitmap_) {
      w.store(0, std::memory_order_relaxed);
    }
  }
  PageList(const PageList&) = delete;
  PageList& operator=(const PageList&) = delete;

  // Returns true if newly added.
  bool Add(PageId page) {
    SpinLockGuard guard(lock_);
    std::atomic<std::uint32_t>& word = bitmap_[page / 32];
    const std::uint32_t mask = 1u << (page % 32);
    if ((word.load(std::memory_order_relaxed) & mask) != 0) {
      return false;
    }
    word.fetch_or(mask, std::memory_order_relaxed);
    // csm-lint: allow(fault-path-signal-safety) -- pages_ is reserved to
    // capacity at construction and the bitmap dedup bounds growth, so this
    // push_back never allocates
    pages_.push_back(page);
    return true;
  }

  bool Contains(PageId page) const {
    return (bitmap_[page / 32].load(std::memory_order_acquire) & (1u << (page % 32))) != 0;
  }

  // Removes and returns all pages (order preserved).
  void TakeAll(std::vector<PageId>& out) {
    SpinLockGuard guard(lock_);
    out.insert(out.end(), pages_.begin(), pages_.end());
    for (const PageId p : pages_) {
      bitmap_[p / 32].fetch_and(~(1u << (p % 32)), std::memory_order_relaxed);
    }
    pages_.clear();
  }

  bool Empty() const {
    SpinLockGuard guard(lock_);
    return pages_.empty();
  }

 private:
  mutable SpinLock lock_;
  // Read lock-free by Contains (dedup hint); mutated only under lock_.
  std::vector<std::atomic<std::uint32_t>> bitmap_;
  std::vector<PageId> pages_ CSM_GUARDED_BY(lock_);
};

// All protocol state owned by one coherence unit.
class UnitState {
 public:
  UnitState(const Config& cfg, UnitId unit);
  UnitState(const UnitState&) = delete;
  UnitState& operator=(const UnitState&) = delete;

  PageLocal& Page(PageId page) { return pages_[page]; }
  std::size_t page_count() const { return pages_.size(); }

  // Logical clock: "incremented every time the protocol begins an acquire
  // or release operation and applies local changes to the home node, or
  // vice versa".
  std::uint64_t Tick() { return clock_.fetch_add(1, std::memory_order_acq_rel) + 1; }
  std::uint64_t Now() const { return clock_.load(std::memory_order_acquire); }

  std::atomic<std::uint64_t>& last_release_time() { return last_release_time_; }

  PageList& DirtyList(int local_index) { return *dirty_[static_cast<std::size_t>(local_index)]; }
  PageList& NleList(int local_index) { return *nle_[static_cast<std::size_t>(local_index)]; }

  // Barrier-episode arrival mask (for the "last arriving local writer"
  // flush rule, Section 2.3).
  std::atomic<std::uint32_t>& barrier_arrived_mask() { return barrier_arrived_mask_; }

  // Serializes global write-notice drain + distribution among this unit's
  // processors, so a processor that finds the global bins already drained
  // is guaranteed the concurrent drainer has finished distributing to the
  // per-processor lists before it processes its own list.
  SpinLock& acquire_lock() { return acquire_lock_; }

 private:
  std::deque<PageLocal> pages_;
  std::atomic<std::uint64_t> clock_{1};
  std::atomic<std::uint64_t> last_release_time_{0};
  std::vector<std::unique_ptr<PageList>> dirty_;
  std::vector<std::unique_ptr<PageList>> nle_;
  std::atomic<std::uint32_t> barrier_arrived_mask_{0};
  SpinLock acquire_lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_PAGE_TABLE_HPP_
