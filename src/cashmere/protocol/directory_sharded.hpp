// Hash-sharded point-to-point directory backend (Config::dir.mode =
// sharded; DESIGN.md §13).
//
// Scale problem: the replicated directory costs O(pages x units) words on
// every node and O(units) wire bytes per update — fine at the paper's 8
// nodes x thousands of pages, hostile at millions of pages. Here each
// page's directory entry (all units' words) lives only on its *shard
// owner*, the HomeTable home of the page's superpage, so directory
// placement rides the existing first-touch home locality and follows
// HomeTable::Relocate automatically:
//
//   - A unit updates its word with one point-to-point MC write to the
//     shard owner (4 bytes; free when the updater is the owner) instead of
//     a units-wide broadcast.
//   - Exclusive claims stay race-free: WriteAndSnapshot applies the claim
//     and snapshots the whole entry inside the entry's MC write order,
//     owner-side — the same total-order arbitration as the replicated
//     broadcast, at one entry instead of every replica.
//   - Readers consult a small per-unit direct-mapped entry cache; a miss
//     fetches the entry from the owner (request word + entry reply). The
//     cache is invalidated by the existing write-notice drain path
//     (DirectoryBackend::InvalidateCached), and the unit's own word is
//     kept exact by write-through. Cached other-unit words may be stale;
//     every caller of the cached queries tolerates that (see the
//     freshness contract in directory.hpp and DESIGN.md §13).
//   - Entry storage is allocated lazily in fixed-size segments of
//     dir.segment_pages pages, so an arena with 10^6 mostly-untouched
//     pages costs memory proportional to *touched* pages, not
//     pages x units. An untouched page's entry reads as all-invalid.
//
// The simulation stores each entry once (as it does for every MC region);
// traffic is accounted as if the words crossed the wire to/from the owner.
// Modeled virtual time per update is identical to the replicated backend
// (the protocol charges dir_update_us either way): the gated win is wire
// bytes and resident memory, not simulated latency.
#ifndef CASHMERE_PROTOCOL_DIRECTORY_SHARDED_HPP_
#define CASHMERE_PROTOCOL_DIRECTORY_SHARDED_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/home_table.hpp"

namespace cashmere {

class ShardedDirectory final : public DirectoryBackend {
 public:
  ShardedDirectory(const Config& cfg, McHub& hub, const HomeTable& homes);

  DirWord Read(PageId page, UnitId unit) override;
  DirWriteResult Write(PageId page, UnitId unit, DirWord word) override;
  DirWriteResult WriteAndSnapshot(PageId page, UnitId unit, DirWord word,
                                  std::uint32_t* snapshot) override;
  bool AnyOtherSharer(PageId page, UnitId self) override;
  UnitId ExclusiveHolder(PageId page, UnitId reader) override;
  UnitId ExclusiveHolderFresh(PageId page, UnitId reader) override;
  int Sharers(PageId page, UnitId exclude, UnitId* out) override;
  void InvalidateCached(UnitId reader, PageId page) override;

  std::size_t ResidentBytes() const override;
  std::uint64_t CacheHits() const override {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t CacheMisses() const override {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t SegmentsAllocated() const override {
    return segments_allocated_.load(std::memory_order_relaxed);
  }

  // The unit whose node stores `page`'s entry: the HomeTable home of the
  // page's superpage. Follows HomeTable::Relocate (the entry migrates with
  // the superpage's MC mapping; the simulation's single copy needs no
  // data movement, only the accounting changes).
  UnitId ShardOwner(PageId page) const { return homes_.HomeOfPage(page); }

 private:
  static constexpr PageId kNoCachedPage = 0xffffffffu;
  static constexpr std::size_t kNumOrderLocks = 64;

  // One per-unit direct-mapped cache slot: the tag plus every unit's
  // packed word for the cached page. The lock serializes the unit's
  // processors on the slot (fill vs write-through vs invalidate).
  struct alignas(64) CacheEntry {
    SpinLock lock;
    PageId page = kNoCachedPage;
    std::uint32_t words[kMaxProcs] = {};
  };
  struct UnitCache {
    std::vector<CacheEntry> entries;
  };

  std::size_t SegmentIndex(PageId page) const { return page / segment_pages_; }
  std::size_t SlotOf(PageId page, UnitId unit) const {
    return (static_cast<std::size_t>(page % segment_pages_)) *
               static_cast<std::size_t>(units_) +
           static_cast<std::size_t>(unit);
  }
  // Acquire-load of the page's segment; nullptr means never touched (every
  // word reads as packed DirWord{} == 0, i.e. invalid).
  std::uint32_t* SegmentFor(PageId page) const {
    return segments_[SegmentIndex(page)].load(std::memory_order_acquire);
  }
  std::uint32_t* EnsureSegment(PageId page);
  CacheEntry& EntryFor(UnitId reader, PageId page) {
    return caches_[static_cast<std::size_t>(reader)]
        .entries[page & cache_mask_];
  }
  // Reads the authoritative entry into `e` under e.lock and charges the
  // owner fetch (request word + entry reply) when `reader` is remote.
  void FillLocked(CacheEntry& e, PageId page, UnitId reader) CSM_REQUIRES(e.lock);
  // MC write-order stripe for the entry (WriteAndSnapshot atomicity vs
  // concurrent updates of the same entry). Striped by page, not by owner,
  // so the lock identity is stable across home relocation.
  SpinLock& OrderLockFor(PageId page) {
    return order_locks_[page % kNumOrderLocks].lock;
  }

  McHub& hub_;
  const HomeTable& homes_;
  std::uint32_t segment_pages_;
  std::size_t segment_words_;
  std::uint32_t cache_mask_;

  // Lazily-allocated shard segments. Readers take the acquire-load fast
  // path; allocation double-checks under alloc_lock_ (see
  // docs/concurrency.md lock ordering).
  std::vector<std::atomic<std::uint32_t*>> segments_;
  SpinLock alloc_lock_;
  std::vector<std::unique_ptr<std::uint32_t[]>> owned_segments_
      CSM_GUARDED_BY(alloc_lock_);

  std::vector<UnitCache> caches_;
  std::vector<PaddedLock> order_locks_;

  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> segments_allocated_{0};
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_DIRECTORY_SHARDED_HPP_
