// Asynchronous release-path coherence (DESIGN.md §12).
//
// In the synchronous protocol every release replays outgoing diffs into the
// home node's master copy and posts write notices on the releaser's critical
// path. With Config::async.release on, the releaser instead publishes a
// compact log record — the serialized DiffWireSlot image, the write-notice
// target set, and the releaser's clocks — into its unit's bounded MPSC
// CoherenceLog. A per-unit background cache-agent thread drains the log in
// sequence order, applies each diff via the existing DiffWireSlot replay,
// posts the write notices, and advances the log's applied sequence number
// (the per-node applied_clock of the paper's log-based design).
//
// Acquires gate on happens-before only: sync objects carry a per-unit
// sequence vector (the releaser's own publishes, max-folded with everything
// it had itself observed), and an acquirer waits until applied_seq[u] covers
// the merged vector entry for exactly the units whose releases precede its
// acquire — never for unrelated in-flight traffic.
//
// Lock ordering: the log's producer lock is a leaf. Publishers call Publish
// while holding a page lock; the agent takes no page locks at all (diff
// replay is hub word writes into the master frame, write-notice posting
// takes only the bin producer lock), so a publisher spinning on a full ring
// always drains (see docs/concurrency.md).
#ifndef CASHMERE_PROTOCOL_COHERENCE_LOG_HPP_
#define CASHMERE_PROTOCOL_COHERENCE_LOG_HPP_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/msg/diff_wire.hpp"

namespace cashmere {

// One published release: everything the cache agent needs to finish the
// release's global side effects off the critical path.
struct CoherenceRecord {
  PageId page = kInvalidPage;
  ProcId publisher = -1;        // releasing processor (trace attribution)
  std::uint64_t seq = 0;        // per-log sequence, assigned by Publish
  VirtTime publish_vt = 0;      // releaser's virtual clock at publish
  std::uint32_t words = 0;      // diff payload words (drives DiffOutNs)
  std::uint32_t hdr_bytes = 0;  // accounted header bytes per run (0 or 8)
  std::uint64_t bus_bytes = 0;  // MC bus occupancy to reserve at apply
  std::uint32_t wn_targets = 0; // unit bitmask to post write notices to
  bool has_diff = false;        // false: write-notice-only record
  bool home_local = false;      // home on the releasing unit (1L variants)
  DiffWireSlot slot;            // serialized diff image (used prefix valid)
};

// Bounded MPSC ring of CoherenceRecords. Producers are the owning unit's
// releasing processors (serialized by producer_lock); the single consumer
// is the unit's cache-agent thread. Sequence numbers start at 1; a record
// with sequence s lives in slot (s - 1) % capacity and is reusable once
// applied_seq >= s, i.e. the ring is full while
// published_seq - applied_seq == capacity.
class CoherenceLog {
 public:
  explicit CoherenceLog(std::uint32_t entries);
  CoherenceLog(const CoherenceLog&) = delete;
  CoherenceLog& operator=(const CoherenceLog&) = delete;

  std::uint32_t capacity() const { return static_cast<std::uint32_t>(ring_.size()); }

  // Producer side. Claims the next slot (spinning via Backoff while the
  // ring is full), invokes fill(record) to populate it in place, assigns
  // the record's sequence number and makes it visible to the consumer.
  // Returns the assigned sequence. `*stalled` is set to true if the call
  // had to wait for the agent at least once (left untouched otherwise).
  template <typename Filler>
  std::uint64_t Publish(Filler&& fill, bool* stalled) {
    SpinLockGuard guard(producer_lock_);
    const std::uint64_t seq = published_seq_.load(std::memory_order_relaxed) + 1;
    if (seq - applied_seq_.load(std::memory_order_acquire) > ring_.size()) {
      if (stalled != nullptr) {
        *stalled = true;
      }
      Backoff backoff;
      while (seq - applied_seq_.load(std::memory_order_acquire) > ring_.size()) {
        backoff.Pause();
      }
    }
    CoherenceRecord& rec = ring_[static_cast<std::size_t>((seq - 1) % ring_.size())];
    fill(rec);
    rec.seq = seq;
    published_seq_.store(seq, std::memory_order_release);
    return seq;
  }

  // True iff a Publish issued now would have to wait for the agent.
  bool Full() const {
    return published_seq_.load(std::memory_order_acquire) -
               applied_seq_.load(std::memory_order_acquire) >=
           ring_.size();
  }

  // Consumer side (single drainer). Peek returns the oldest unapplied
  // record, or nullptr when the log is drained; PopApplied retires it and
  // records the virtual time at which it became visible (the gate time
  // acquirers reconcile to).
  const CoherenceRecord* Peek() const {
    const std::uint64_t applied = applied_seq_.load(std::memory_order_relaxed);
    if (published_seq_.load(std::memory_order_acquire) == applied) {
      return nullptr;
    }
    return &ring_[static_cast<std::size_t>(applied % ring_.size())];
  }
  void PopApplied(VirtTime applied_vt) {
    const std::uint64_t seq = applied_seq_.load(std::memory_order_relaxed) + 1;
    GateSlot& g = gate_[static_cast<std::size_t>(seq % gate_.size())];
    g.vt.store(applied_vt, std::memory_order_relaxed);
    g.seq.store(seq, std::memory_order_release);
    applied_seq_.store(seq, std::memory_order_release);
  }

  std::uint64_t published_seq() const {
    return published_seq_.load(std::memory_order_acquire);
  }
  std::uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }
  bool Empty() const { return applied_seq() == published_seq(); }

  // Virtual time at which record `seq` was applied, for the acquirer's
  // clock reconciliation after the gate passes. Returns 0 when the gate
  // ring has wrapped past `seq`; a torn read across a wrap can only return
  // a *later* applied time (applied times are monotonic per log), so the
  // gate is at worst conservative — documented in DESIGN.md §12.
  VirtTime AppliedVtOf(std::uint64_t seq) const {
    const GateSlot& g = gate_[static_cast<std::size_t>(seq % gate_.size())];
    if (g.seq.load(std::memory_order_acquire) != seq) {
      return 0;
    }
    const VirtTime vt = g.vt.load(std::memory_order_relaxed);
    if (g.seq.load(std::memory_order_acquire) != seq) {
      return 0;
    }
    return vt;
  }

 private:
  // Seq-tagged apply-time slots, sized past the record ring so a gater
  // reconciling a recently applied sequence usually still finds its time.
  struct GateSlot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<VirtTime> vt{0};
  };

  SpinLock producer_lock_;
  std::atomic<std::uint64_t> published_seq_{0};
  std::atomic<std::uint64_t> applied_seq_{0};
  std::vector<CoherenceRecord> ring_;
  std::vector<GateSlot> gate_;
};

// The per-unit logs plus the agents' stop flag. Owned by the Runtime and
// handed to the protocol through CashmereProtocol::Deps.
class CoherenceEngine {
 public:
  explicit CoherenceEngine(const Config& cfg);
  CoherenceEngine(const CoherenceEngine&) = delete;
  CoherenceEngine& operator=(const CoherenceEngine&) = delete;

  int units() const { return static_cast<int>(logs_.size()); }
  CoherenceLog& LogOf(UnitId u) { return logs_[static_cast<std::size_t>(u)]; }
  const CoherenceLog& LogOf(UnitId u) const {
    return logs_[static_cast<std::size_t>(u)];
  }

  bool AllEmpty() const;

 private:
  std::deque<CoherenceLog> logs_;
};

// Happens-before sequence vectors, carried by sync objects. PublishSeqVector
// max-folds a processor's observed vector into a sync object's atomic vector
// at release; MergeSeqVector folds the object's vector back into the
// acquirer's before its acquire gate runs. CAS max-folds make the vectors
// safe under every sync shape (racing flag setters, barrier episodes).
inline void PublishSeqVector(std::atomic<std::uint64_t>* dst, const std::uint64_t* src,
                             int units) {
  for (int u = 0; u < units; ++u) {
    std::uint64_t cur = dst[u].load(std::memory_order_relaxed);
    while (cur < src[u] &&
           !dst[u].compare_exchange_weak(cur, src[u], std::memory_order_acq_rel)) {
    }
  }
}

inline void MergeSeqVector(std::uint64_t* dst, const std::atomic<std::uint64_t>* src,
                           int units) {
  for (int u = 0; u < units; ++u) {
    const std::uint64_t v = src[u].load(std::memory_order_acquire);
    if (v > dst[u]) {
      dst[u] = v;
    }
  }
}

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_COHERENCE_LOG_HPP_
