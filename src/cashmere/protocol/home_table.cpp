#include "cashmere/protocol/home_table.hpp"

namespace cashmere {

HomeTable::HomeTable(const Config& cfg)
    : superpage_pages_(cfg.superpage_pages), entries_(cfg.superpages()) {
  // Round-robin initial assignment across units.
  const int units = cfg.units();
  for (std::size_t sp = 0; sp < entries_.size(); ++sp) {
    entries_[sp].home.store(static_cast<UnitId>(sp % static_cast<std::size_t>(units)),
                            std::memory_order_relaxed);
  }
}

}  // namespace cashmere
