// Diff engine (Sections 2.2 and 2.5): outgoing diffs propagate local
// modifications to the home node; incoming diffs merge remote modifications
// into the local copy without disturbing concurrent local writers — the
// paper's "two-way diffing", which replaces intra-node TLB shootdown.
//
// All comparisons and stores are 32-bit atomic, matching the Memory
// Channel's write grain: data-race-free programs never race on a word, so
// word-level merging is exact.
#ifndef CASHMERE_PROTOCOL_DIFF_HPP_
#define CASHMERE_PROTOCOL_DIFF_HPP_

#include <cstddef>

#include "cashmere/common/types.hpp"

namespace cashmere {

// Outgoing diff: for every word where `working` differs from `twin`, write
// the working word to `master`. With `flush_update` the twin is updated
// too ("flush-update", Section 2.5), so later releases on this unit see
// these modifications as already flushed. Returns the number of words
// written.
std::size_t ApplyOutgoingDiff(const std::byte* working, std::byte* twin, std::byte* master,
                              bool flush_update);

// Incoming diff: for every word where `incoming` differs from `twin`,
// write the incoming word to both `working` and `twin`. Because programs
// are data-race-free, those words are exactly the remote modifications and
// never overlap concurrent local writes. Returns words applied.
std::size_t ApplyIncomingDiff(const std::byte* incoming, std::byte* twin, std::byte* working);

// Full page copy (used when no local writer exists). Word-atomic.
void CopyPage(std::byte* dst, const std::byte* src);

// Number of words differing between two page images (no writes).
std::size_t CountDiffWords(const std::byte* a, const std::byte* b);

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_DIFF_HPP_
