// Diff engine (Sections 2.2 and 2.5): outgoing diffs propagate local
// modifications to the home node; incoming diffs merge remote modifications
// into the local copy without disturbing concurrent local writers — the
// paper's "two-way diffing", which replaces intra-node TLB shootdown.
//
// The engine is built from three cooperating layers:
//
//  1. A block-scanning core: pages are compared in 64-byte blocks using
//     64-bit chunked atomic loads (see word_access.hpp). A clean chunk
//     costs two loads and one compare for two words; only mismatching
//     chunks are examined word-by-word. Stores stay 32-bit atomic, so MC's
//     write grain is preserved exactly and word-level merge semantics are
//     unchanged from the word-at-a-time scanner.
//  2. A run-length encoded diff format: maximal runs of consecutive
//     modified words, `DiffRun{offset, nwords}` plus a payload snapshot.
//     The runs are the unit in which outgoing diffs are written to the
//     home node (a run `McOp` through `McHub::Issue`) and accounted, and the in-memory form
//     used by tests and benches.
//  3. Per-page dirty-block bitmaps (`DirtyBlockMap`, owned by `TwinPool`):
//     a conservative superset of the blocks where the working copy may
//     differ from the twin. Scans skip unmarked blocks without touching
//     them. In SIGSEGV fault mode writes are invisible to the runtime, so
//     the map stays fully set while local writers exist; in software fault
//     mode `EnsureWrite` marks exactly the written blocks.
//
// All comparisons and stores are 32-bit atomic (loads may be 64-bit
// chunked, which is never weaker than two successive 32-bit loads):
// data-race-free programs never race on a word, so word-level merging is
// exact.
#ifndef CASHMERE_PROTOCOL_DIFF_HPP_
#define CASHMERE_PROTOCOL_DIFF_HPP_

#include <cstddef>
#include <cstdint>

#include "cashmere/common/ownership.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/common/word_access.hpp"

namespace cashmere {

// ---------------------------------------------------------------------------
// Dirty-region tracking: one bit per 64-byte block of a page.

class DirtyBlockMap {
 public:
  static constexpr std::size_t kMapWords = kBlocksPerPage / 64;  // 2

  void MarkAll() {
    for (auto& w : bits_) {
      w.store(~0ull, std::memory_order_relaxed);
    }
  }
  void Clear() {
    for (auto& w : bits_) {
      w.store(0, std::memory_order_relaxed);
    }
  }
  // Marks every block overlapping [offset, offset + bytes) (byte offsets
  // within the page). Relaxed: the mark happens-before the write it covers
  // only through the program's own ordering, which suffices because flushes
  // that miss a racing write also keep its mark (the map is monotone while
  // a twin is live; see TwinPool).
  void MarkRange(std::size_t offset, std::size_t bytes) {
    if (bytes == 0) {
      return;
    }
    const std::size_t first = offset / kBlockBytes;
    const std::size_t last = (offset + bytes - 1) / kBlockBytes;
    for (std::size_t b = first; b <= last && b < kBlocksPerPage; ++b) {
      bits_[b / 64].fetch_or(1ull << (b % 64), std::memory_order_relaxed);
    }
  }
  bool Test(std::size_t block) const {
    return (bits_[block / 64].load(std::memory_order_relaxed) & (1ull << (block % 64))) != 0;
  }
  // ORs a whole map word in (shard merging). Monotone like MarkRange.
  void OrWord(std::size_t i, std::uint64_t mask) {
    if (mask != 0) {
      bits_[i].fetch_or(mask, std::memory_order_relaxed);
    }
  }
  bool Any() const {
    for (const auto& w : bits_) {
      if (w.load(std::memory_order_relaxed) != 0) {
        return true;
      }
    }
    return false;
  }
  std::uint64_t Word(std::size_t i) const { return bits_[i].load(std::memory_order_relaxed); }
  int PopCount() const;

 private:
  std::atomic<std::uint64_t> bits_[kMapWords]{};
};

// Per-processor dirty-map shard: the lock-free side of software-fault-mode
// write tracking. Each local processor owns one shard per page; only the
// owner ever writes it (marks, and the lazy reset when the twin generation
// changes), so the instrumented-write fast path is a couple of relaxed
// atomic ops with no shared-line contention. The protocol OR-folds shards
// into the twin's master DirtyBlockMap under the page lock at flush time,
// and discards shards stamped with a stale twin generation instead of
// merging them (a stale mark's write either predates the new twin's copy —
// already in the twin, no diff needed — or the twin was created with
// WriterCount > 0 and the map is conservatively full anyway).
struct alignas(64) DirtyMapShard {
  // Twin generation the bits belong to (PageLocal::twin_gen; odd = live
  // twin). Written only by the owning processor; readers (the merger, under
  // the page lock) treat a mismatch as "discard".
  CSM_SINGLE_WRITER("the local processor this shard belongs to")
  std::atomic<std::uint64_t> gen{0};
  CSM_SINGLE_WRITER("the local processor this shard belongs to")
  std::atomic<std::uint64_t> bits[DirtyBlockMap::kMapWords]{};
  // Dynamic single-writer verifier (no-op unless ownership checks are on).
  OwnerCell owner_check;

  // Owner-only. Re-stamps the shard when `g` differs from the recorded
  // generation (lazy reset: the merger never writes shards, so a reset can
  // never race an owner's mark), then ORs the blocks overlapping
  // [offset, offset + bytes). Because the owner is the only writer, the OR
  // needs no read-modify-write: a relaxed load + store pair is equivalent
  // and compiles with no lock prefix, so the common case — a small write
  // inside one 64-block map word — is a handful of plain loads and stores.
  void MarkRange(std::uint64_t g, std::size_t offset, std::size_t bytes) {
    owner_check.NoteWrite("DirtyMapShard::MarkRange");
    if (gen.load(std::memory_order_relaxed) != g) {
      for (auto& w : bits) {
        w.store(0, std::memory_order_relaxed);
      }
      // Release: a merger that observes the new stamp also observes the
      // zeroed words rather than bits of the previous generation.
      gen.store(g, std::memory_order_release);
    }
    const std::size_t first = offset / kBlockBytes;
    const std::size_t last = (offset + bytes - 1) / kBlockBytes;
    if (first / 64 == last / 64) {
      const std::uint64_t mask =
          (last - first == 63 ? ~0ull : ((1ull << (last - first + 1)) - 1)) << (first % 64);
      OwnerOr(bits[first / 64], mask);
      return;
    }
    for (std::size_t b = first; b <= last && b < kBlocksPerPage; ++b) {
      OwnerOr(bits[b / 64], 1ull << (b % 64));
    }
  }

  bool AnyMarks() const {
    for (const auto& w : bits) {
      if (w.load(std::memory_order_relaxed) != 0) {
        return true;
      }
    }
    return false;
  }

 private:
  // Single-writer OR without a lock-prefixed RMW; safe only because no one
  // but the owning processor ever stores to shard words.
  static void OwnerOr(std::atomic<std::uint64_t>& w, std::uint64_t mask) {
    const std::uint64_t old = w.load(std::memory_order_relaxed);
    if ((old & mask) != mask) {
      w.store(old | mask, std::memory_order_relaxed);
    }
  }
};

// ---------------------------------------------------------------------------
// Run-length encoded diffs.

struct DiffRun {
  std::uint32_t offset_words;  // first modified word, page-relative
  std::uint32_t nwords;        // run length in 32-bit words
};

// Wire-format size of one run descriptor (offset + length); tracked by the
// kDiffRunBytes statistic. The payload itself is raw remote word writes on
// MC, so the Table 3 "Data" accounting charges payload bytes only, exactly
// as the word-at-a-time engine did.
inline constexpr std::size_t kDiffRunHeaderBytes = sizeof(DiffRun);

// Host-side scan instrumentation, surfaced as kDiffBlocks* counters.
struct DiffScanStats {
  std::uint64_t blocks_scanned = 0;  // blocks whose words were loaded
  std::uint64_t blocks_skipped = 0;  // blocks skipped via the dirty map
  std::uint64_t runs = 0;            // RLE runs emitted (or applied)
  std::uint64_t run_bytes = 0;       // wire bytes: payload + run headers
};

// A fixed-capacity encoded diff. Sized for the worst case (alternating
// dirty words), so encoding never allocates — the protocol's scratch
// instances are usable from the SIGSEGV fault path.
class DiffBuffer {
 public:
  static constexpr std::size_t kMaxRuns = kWordsPerPage / 2 + 1;

  void Clear() {
    nruns_ = 0;
    nwords_ = 0;
  }
  std::size_t run_count() const { return nruns_; }
  std::size_t words() const { return nwords_; }
  const DiffRun& run(std::size_t i) const { return runs_[i]; }
  // Payload of run i: words()-indexed slice starting at the run's cursor.
  const std::uint32_t* payload(std::size_t offset) const { return payload_ + offset; }
  std::size_t WireBytes() const {
    return nwords_ * kWordBytes + nruns_ * kDiffRunHeaderBytes;
  }

  // Appends `word` at page word-offset `index`, extending the current run
  // or opening a new one.
  void Append(std::uint32_t index, std::uint32_t word) {
    if (nruns_ == 0 || runs_[nruns_ - 1].offset_words + runs_[nruns_ - 1].nwords != index) {
      runs_[nruns_].offset_words = index;
      runs_[nruns_].nwords = 0;
      ++nruns_;
    }
    ++runs_[nruns_ - 1].nwords;
    payload_[nwords_++] = word;
  }

 private:
  std::size_t nruns_ = 0;
  std::size_t nwords_ = 0;
  DiffRun runs_[kMaxRuns];
  std::uint32_t payload_[kWordsPerPage];
};

// ---------------------------------------------------------------------------
// Encode / apply.

// Density cutover for map-restricted scans: when more than this many blocks
// are marked, the SIMD XOR prefilter is pure overhead (few blocks can be
// skipped, and dirty blocks pay both the wide pass and the atomic confirm
// loads), so the scan falls back to the straight word-at-a-time walk of the
// marked blocks. Results and statistics are unaffected — only host time.
inline constexpr std::size_t kDiffDenseCutoverBlocks = kBlocksPerPage / 2;

// Block-scans working vs twin and appends every modified word to `out` as
// RLE runs (runs freely straddle block boundaries). With `flush_update`
// the twin is synchronized from the payload snapshot during the scan, so
// twin and master receive bit-identical values even if a local writer
// races with the scan. `dirty` (may be null) restricts the scan to marked
// blocks. Returns the number of modified words.
std::size_t EncodeOutgoingDiff(const std::byte* working, std::byte* twin, bool flush_update,
                               const DirtyBlockMap* dirty, DiffBuffer& out,
                               DiffScanStats* scan = nullptr);

// Word-atomic scatter of an encoded diff into a page image.
void ApplyDiffRuns(const DiffBuffer& diff, std::byte* dst);

// Outgoing diff: for every word where `working` differs from `twin`, write
// the working word to `master`. With `flush_update` the twin is updated
// too ("flush-update", Section 2.5), so later releases on this unit see
// these modifications as already flushed. Returns the number of words
// written. Block-scanned; allocation-free (fault-path safe).
std::size_t ApplyOutgoingDiff(const std::byte* working, std::byte* twin, std::byte* master,
                              bool flush_update, const DirtyBlockMap* dirty = nullptr,
                              DiffScanStats* scan = nullptr);

// Incoming diff: for every word where `incoming` differs from `twin`,
// write the incoming word to both `working` and `twin`. Because programs
// are data-race-free, those words are exactly the remote modifications and
// never overlap concurrent local writes. Returns words applied.
std::size_t ApplyIncomingDiff(const std::byte* incoming, std::byte* twin, std::byte* working,
                              DiffScanStats* scan = nullptr);

// Full page copy (used when no local writer exists). Word-atomic.
void CopyPage(std::byte* dst, const std::byte* src);

// Number of words differing between two page images (no writes). `dirty`
// (may be null) restricts the scan to marked blocks.
std::size_t CountDiffWords(const std::byte* a, const std::byte* b,
                           const DirtyBlockMap* dirty = nullptr);

// ---------------------------------------------------------------------------
// Reference word-at-a-time scanners: the seed implementation, kept as the
// oracle for property tests and as the baseline of bench_diff_engine.

std::size_t ApplyOutgoingDiffWordScan(const std::byte* working, std::byte* twin,
                                      std::byte* master, bool flush_update);
std::size_t ApplyIncomingDiffWordScan(const std::byte* incoming, std::byte* twin,
                                      std::byte* working);
std::size_t CountDiffWordsWordScan(const std::byte* a, const std::byte* b);

// Debug-build verification that the RLE encode reproduces the word-level
// diff the reference scanner finds (compiled out under NDEBUG; can be
// disabled for tests that race writers against the scanner, where the
// re-scan would be a false positive).
void SetDiffVerifyForTesting(bool enabled);

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_DIFF_HPP_
