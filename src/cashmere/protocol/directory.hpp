// The replicated global page directory (Section 2.3, Figure 1).
//
// Each page has one 32-bit word per coherence unit; the word is written
// *only* by that unit, which is what makes the directory lock-free: 32 bits
// is the atomic write grain of both the Alpha and the Memory Channel, so a
// single-writer word needs no lock. Updates are broadcast over MC (doubled
// to the writer's own replica in software).
//
// Word layout (this reproduction):
//   bits 0-1   loosest permission of any processor on the unit
//   bit  2     unit claims the page in exclusive mode
//   bits 3-8   processor id holding the page exclusively (valid with bit 2)
// The home-node id lives in a separate replicated table (HomeTable); the
// paper stores it redundantly in every word, which carries the same
// information.
//
// The 2L-globallock ablation (Section 3.3.5) instead guards each entry with
// a global lock; the protocol then charges the locked update cost and
// serializes on a real per-entry lock.
#ifndef CASHMERE_PROTOCOL_DIRECTORY_HPP_
#define CASHMERE_PROTOCOL_DIRECTORY_HPP_

#include <cstdint>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/ownership.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

struct DirWord {
  Perm perm = Perm::kInvalid;
  bool exclusive = false;
  ProcId excl_proc = 0;

  std::uint32_t Pack() const {
    return static_cast<std::uint32_t>(perm) | (exclusive ? 4u : 0u) |
           (static_cast<std::uint32_t>(excl_proc & 0x3f) << 3);
  }
  static DirWord Unpack(std::uint32_t w) {
    DirWord d;
    d.perm = static_cast<Perm>(w & 0x3u);
    d.exclusive = (w & 4u) != 0;
    d.excl_proc = static_cast<ProcId>((w >> 3) & 0x3f);
    return d;
  }
};

class GlobalDirectory {
 public:
  GlobalDirectory(const Config& cfg, McHub& hub);

  DirWord Read(PageId page, UnitId unit) const;

  // Writes `unit`'s word for `page` via ordered MC broadcast. Only the
  // owning unit may call this for its own word (single-writer invariant),
  // except during home relocation which holds the global home lock and
  // enters an OwnershipOverrideScope. Enforced dynamically via
  // CsmAssertUnitWriter when ownership checks are on.
  void Write(PageId page, UnitId unit, DirWord word);

  // Ordered write that also returns a consistent snapshot taken inside the
  // MC total order: after this returns, `snapshot[u]` holds every unit's
  // word as ordered after our write. Used for race-free exclusive claims.
  void WriteAndSnapshot(PageId page, UnitId unit, DirWord word, std::uint32_t* snapshot) const;

  // True if any unit other than `self` has a non-invalid permission or an
  // exclusive claim.
  bool AnyOtherSharer(PageId page, UnitId self) const;
  // Unit holding an exclusive claim, or -1.
  UnitId ExclusiveHolder(PageId page) const;
  // Units (other than `exclude`) with non-invalid permission or an
  // exclusive claim. Fills `out` (capacity >= units()); returns the count.
  // Array-based so the fault path never allocates.
  int Sharers(PageId page, UnitId exclude, UnitId* out) const;

  // Per-entry lock for the 2L-globallock ablation.
  SpinLock& EntryLock(PageId page) { return entry_locks_[page % kNumEntryLocks].lock; }

  int units() const { return units_; }

 private:
  std::uint32_t* WordPtr(PageId page, UnitId unit) {
    return &words_[static_cast<std::size_t>(page) * static_cast<std::size_t>(units_) +
                   static_cast<std::size_t>(unit)];
  }
  const std::uint32_t* WordPtr(PageId page, UnitId unit) const {
    return &words_[static_cast<std::size_t>(page) * static_cast<std::size_t>(units_) +
                   static_cast<std::size_t>(unit)];
  }

  static constexpr std::size_t kNumEntryLocks = 256;
  struct alignas(64) PaddedLock {
    SpinLock lock;
  };

  int units_;
  McHub& hub_;
  // One 32-bit word per (page, unit); word (p, u) is written only by unit u
  // (home relocation excepted), so readers need no lock — the MC's 32-bit
  // write atomicity is modeled by the word_access helpers.
  CSM_SINGLE_WRITER("unit u for word (page, u)")
  mutable std::vector<std::uint32_t> words_;
  std::vector<PaddedLock> entry_locks_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_DIRECTORY_HPP_
