// The global page directory (Section 2.3, Figure 1), behind a selectable
// backend (Config::dir.mode).
//
// Each page has one 32-bit word per coherence unit; the word is written
// *only* by that unit, which is what makes the directory lock-free: 32 bits
// is the atomic write grain of both the Alpha and the Memory Channel, so a
// single-writer word needs no lock.
//
// Word layout (this reproduction):
//   bits 0-1   loosest permission of any processor on the unit
//   bit  2     unit claims the page in exclusive mode
//   bits 3-8   processor id holding the page exclusively (valid with bit 2)
// The home-node id lives in a separate replicated table (HomeTable); the
// paper stores it redundantly in every word, which carries the same
// information.
//
// Backends:
//   GlobalDirectory   (dir.mode = replicated, default) — the paper's
//                     replicated directory: every unit holds a full
//                     replica and updates are ordered MC broadcasts.
//   ShardedDirectory  (dir.mode = sharded, directory_sharded.hpp) — each
//                     page's entry lives only on its hash-assigned shard
//                     owner (the HomeTable home); updates are point-to-
//                     point writes and readers go through a per-unit entry
//                     cache. See DESIGN.md §13.
//
// The 2L-globallock ablation (Section 3.3.5) instead guards each entry with
// a global lock; the protocol then charges the locked update cost and
// serializes on a real per-entry lock (EntryLock, shared by both backends).
#ifndef CASHMERE_PROTOCOL_DIRECTORY_HPP_
#define CASHMERE_PROTOCOL_DIRECTORY_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/common/ownership.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

class HomeTable;

struct DirWord {
  Perm perm = Perm::kInvalid;
  bool exclusive = false;
  ProcId excl_proc = 0;

  std::uint32_t Pack() const {
    return static_cast<std::uint32_t>(perm) | (exclusive ? 4u : 0u) |
           (static_cast<std::uint32_t>(excl_proc & 0x3f) << 3);
  }
  static DirWord Unpack(std::uint32_t w) {
    DirWord d;
    d.perm = static_cast<Perm>(w & 0x3u);
    d.exclusive = (w & 4u) != 0;
    d.excl_proc = static_cast<ProcId>((w >> 3) & 0x3f);
    return d;
  }
};

// What one directory update put on the wire, so the protocol's update
// funnel can book the per-mode counters and trace the traffic shape
// without knowing which backend it talks to.
struct DirWriteResult {
  std::uint32_t wire_bytes = 0;  // MC bytes the update placed on the wire
  bool p2p = false;              // point-to-point (sharded) vs broadcast
};

// Encoding of a kDirUpdate trace event's a0 argument: the packed DirWord in
// the low bits (DirWord::Pack uses 9), the p2p flag at bit 15, and the
// update's wire bytes in the high half. The replay checker reads only a1
// (the unit logical clock), so both backends stay checker-clean; the
// contention tool decodes a0 for its per-page directory-traffic table.
inline std::uint32_t DirUpdateTraceArg(DirWord word, DirWriteResult res) {
  const std::uint32_t bytes = res.wire_bytes > 0xffffu ? 0xffffu : res.wire_bytes;
  return (word.Pack() & 0x7fffu) | (res.p2p ? 0x8000u : 0u) | (bytes << 16);
}
struct DirUpdateTraceInfo {
  bool p2p = false;
  std::uint32_t wire_bytes = 0;
};
inline DirUpdateTraceInfo DecodeDirUpdateTraceArg(std::uint32_t a0) {
  return DirUpdateTraceInfo{(a0 & 0x8000u) != 0, a0 >> 16};
}

// Directory backend interface. All per-(page, unit) words obey the
// single-writer invariant (word (p, u) is written only by unit u); reads
// are word-atomic and lock-free in both backends.
//
// Freshness contract (what the protocol relies on — see DESIGN.md §13):
//   - Read(page, unit) is the unit's *own-word* lookup (reader == unit)
//     and is always exact.
//   - Write / WriteAndSnapshot are authoritative; WriteAndSnapshot's
//     snapshot is taken inside the MC total order for the entry.
//   - Sharers and ExclusiveHolderFresh are authoritative (the release
//     path's write-notice targets and the post-join fetch check must never
//     act on stale data).
//   - AnyOtherSharer and ExclusiveHolder may be served from a backend
//     cache and can be stale; every caller tolerates staleness (a claim is
//     re-validated by WriteAndSnapshot's snapshot, and a missed holder is
//     caught by the timestamp check plus ExclusiveHolderFresh in
//     FetchPage).
class DirectoryBackend {
 public:
  explicit DirectoryBackend(const Config& cfg)
      : units_(cfg.units()), entry_locks_(kNumEntryLocks) {}
  virtual ~DirectoryBackend() = default;
  DirectoryBackend(const DirectoryBackend&) = delete;
  DirectoryBackend& operator=(const DirectoryBackend&) = delete;

  // The unit's own word for `page` (reader == unit). Exact.
  virtual DirWord Read(PageId page, UnitId unit) = 0;

  // Writes `unit`'s word for `page`. Only the owning unit may call this
  // for its own word (single-writer invariant); enforced dynamically via
  // CsmAssertUnitWriter when ownership checks are on.
  virtual DirWriteResult Write(PageId page, UnitId unit, DirWord word) = 0;

  // Ordered write that also returns a consistent snapshot taken inside the
  // MC total order for the entry: after this returns, `snapshot[u]` holds
  // every unit's word as ordered after our write. Used for race-free
  // exclusive claims.
  virtual DirWriteResult WriteAndSnapshot(PageId page, UnitId unit, DirWord word,
                                          std::uint32_t* snapshot) = 0;

  // True if any unit other than `self` has a non-invalid permission or an
  // exclusive claim. May be stale (see the freshness contract).
  virtual bool AnyOtherSharer(PageId page, UnitId self) = 0;
  // Unit holding an exclusive claim, or -1, as observed by `reader`. May
  // be stale.
  virtual UnitId ExclusiveHolder(PageId page, UnitId reader) = 0;
  // Authoritative holder lookup: re-reads the owning entry (refreshing the
  // reader's cache in sharded mode).
  virtual UnitId ExclusiveHolderFresh(PageId page, UnitId reader) {
    return ExclusiveHolder(page, reader);
  }
  // Units (other than `exclude`) with non-invalid permission or an
  // exclusive claim. Fills `out` (capacity >= units()); returns the count.
  // Array-based so the fault path never allocates. Authoritative; the
  // caller is `exclude`'s unit (the releaser).
  virtual int Sharers(PageId page, UnitId exclude, UnitId* out) = 0;

  // Drops `reader`'s cached entry for `page` (no-op for the replicated
  // backend). Called on the write-notice drain path, which is exactly when
  // a cached entry can have gone stale in a way the reader must observe.
  virtual void InvalidateCached(UnitId reader, PageId page) {}

  // Cluster-wide resident directory memory: replicated counts one full
  // replica per unit; sharded counts allocated segments plus entry caches.
  virtual std::size_t ResidentBytes() const = 0;
  // Backend-global instrumentation, folded into the report after a run
  // (zero for the replicated backend).
  virtual std::uint64_t CacheHits() const { return 0; }
  virtual std::uint64_t CacheMisses() const { return 0; }
  virtual std::uint64_t SegmentsAllocated() const { return 0; }

  // Per-entry lock for the 2L-globallock ablation (backend-independent).
  SpinLock& EntryLock(PageId page) { return entry_locks_[page % kNumEntryLocks].lock; }

  int units() const { return units_; }

 protected:
  static constexpr std::size_t kNumEntryLocks = 256;
  struct alignas(64) PaddedLock {
    SpinLock lock;
  };

  int units_;
  std::vector<PaddedLock> entry_locks_;
};

// The paper's replicated directory: one 32-bit word per unit per page on
// every node (the simulation stores the bitwise-identical replicas once),
// updates broadcast over MC (doubled to the writer's own replica in
// software). Every query is a local-replica scan: free on the wire, always
// authoritative.
class GlobalDirectory final : public DirectoryBackend {
 public:
  GlobalDirectory(const Config& cfg, McHub& hub);

  DirWord Read(PageId page, UnitId unit) override;
  DirWriteResult Write(PageId page, UnitId unit, DirWord word) override;
  DirWriteResult WriteAndSnapshot(PageId page, UnitId unit, DirWord word,
                                  std::uint32_t* snapshot) override;
  bool AnyOtherSharer(PageId page, UnitId self) override;
  UnitId ExclusiveHolder(PageId page, UnitId reader) override;
  int Sharers(PageId page, UnitId exclude, UnitId* out) override;
  std::size_t ResidentBytes() const override {
    // One full replica per unit: the per-node O(pages x units) footprint
    // the sharded backend exists to avoid.
    return words_.size() * kWordBytes * static_cast<std::size_t>(units_);
  }

 private:
  std::uint32_t* WordPtr(PageId page, UnitId unit) {
    return &words_[static_cast<std::size_t>(page) * static_cast<std::size_t>(units_) +
                   static_cast<std::size_t>(unit)];
  }

  McHub& hub_;
  // One 32-bit word per (page, unit); word (p, u) is written only by unit u
  // (home relocation excepted), so readers need no lock — the MC's 32-bit
  // write atomicity is modeled by the word_access helpers.
  CSM_SINGLE_WRITER("unit u for word (page, u)")
  std::vector<std::uint32_t> words_;
};

// Constructs the backend selected by cfg.dir.mode. The sharded backend
// reads shard ownership from `homes` (shard = HomeTable home of the page's
// superpage), so entries follow first-touch relocation automatically.
// Defined in directory_sharded.cpp.
std::unique_ptr<DirectoryBackend> MakeDirectory(const Config& cfg, McHub& hub,
                                                const HomeTable& homes);

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_DIRECTORY_HPP_
