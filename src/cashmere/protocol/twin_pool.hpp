// Twin storage (Section 2.5).
//
// A twin is a pristine copy of a page: the unit's latest view of the home
// node's master copy. Twins are compared against the working copy to
// extract outgoing diffs, and against incoming page images to extract
// incoming diffs (two-way diffing).
//
// Twins live in a lazily-populated anonymous mapping with one fixed slot
// per page, so twin creation never allocates (the fault path runs inside a
// signal handler).
//
// Alongside each twin slot the pool keeps a DirtyBlockMap: a conservative
// superset of the 64-byte blocks where the working copy may differ from
// the twin, letting diff scans skip blocks that cannot have changed. The
// map is only meaningful while the page's twin is valid, and is monotone
// over a twin's lifetime: marks are added (at twin creation, and per write
// in software fault mode) but never removed until the twin is recreated —
// clearing at flush time would race with writers that mark before a flush
// scan but write after it.
#ifndef CASHMERE_PROTOCOL_TWIN_POOL_HPP_
#define CASHMERE_PROTOCOL_TWIN_POOL_HPP_

#include <cstddef>
#include <memory>

#include "cashmere/common/types.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {

class TwinPool {
 public:
  explicit TwinPool(std::size_t heap_bytes);
  ~TwinPool();
  TwinPool(const TwinPool&) = delete;
  TwinPool& operator=(const TwinPool&) = delete;

  std::byte* TwinPtr(PageId page) const { return base_ + static_cast<std::size_t>(page) * kPageBytes; }

  // Dirty-block map for the page's twin slot (valid iff the twin is).
  DirtyBlockMap& Map(PageId page) const { return maps_[static_cast<std::size_t>(page)]; }

  // Per-processor dirty-map shard for the page: the lock-free write path
  // marks here (owner-only writes); flushes OR-fold generation-matching
  // shards into Map(page) under the page lock. Cache-line sized and
  // indexed [page][local_index] so concurrent markers never share a line.
  DirtyMapShard& Shard(PageId page, int local_index) const {
    return shards_[static_cast<std::size_t>(page) * kMaxProcsPerNode +
                   static_cast<std::size_t>(local_index)];
  }

 private:
  std::size_t size_;
  std::byte* base_ = nullptr;
  std::unique_ptr<DirtyBlockMap[]> maps_;
  std::unique_ptr<DirtyMapShard[]> shards_;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_TWIN_POOL_HPP_
