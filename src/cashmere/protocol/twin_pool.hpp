// Twin storage (Section 2.5).
//
// A twin is a pristine copy of a page: the unit's latest view of the home
// node's master copy. Twins are compared against the working copy to
// extract outgoing diffs, and against incoming page images to extract
// incoming diffs (two-way diffing).
//
// Twins live in a lazily-populated anonymous mapping with one fixed slot
// per page, so twin creation never allocates (the fault path runs inside a
// signal handler).
#ifndef CASHMERE_PROTOCOL_TWIN_POOL_HPP_
#define CASHMERE_PROTOCOL_TWIN_POOL_HPP_

#include <cstddef>

#include "cashmere/common/types.hpp"

namespace cashmere {

class TwinPool {
 public:
  explicit TwinPool(std::size_t heap_bytes);
  ~TwinPool();
  TwinPool(const TwinPool&) = delete;
  TwinPool& operator=(const TwinPool&) = delete;

  std::byte* TwinPtr(PageId page) const { return base_ + static_cast<std::size_t>(page) * kPageBytes; }

 private:
  std::size_t size_;
  std::byte* base_ = nullptr;
};

}  // namespace cashmere

#endif  // CASHMERE_PROTOCOL_TWIN_POOL_HPP_
