#include "cashmere/protocol/coherence_log.hpp"

namespace cashmere {

namespace {

std::uint32_t ClampEntries(std::uint32_t entries) {
  return entries == 0 ? 1u : entries;
}

}  // namespace

CoherenceLog::CoherenceLog(std::uint32_t entries)
    : ring_(ClampEntries(entries)),
      // 4x the record ring: gate slots only hold {seq, vt}, and the larger
      // ring keeps apply times findable well after the record slot recycles.
      gate_(static_cast<std::size_t>(ClampEntries(entries)) * 4) {}

CoherenceEngine::CoherenceEngine(const Config& cfg) {
  const std::uint32_t entries = ClampEntries(cfg.async.log_entries);
  for (int u = 0; u < cfg.units(); ++u) {
    logs_.emplace_back(entries);
  }
}

bool CoherenceEngine::AllEmpty() const {
  for (const CoherenceLog& log : logs_) {
    if (!log.Empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace cashmere
