#include "cashmere/protocol/diff.hpp"

#include <atomic>
#include <bit>
#include <cstring>

#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

#ifndef NDEBUG
// Debug-only: re-derive the word-level diff with the reference scanner and
// check the RLE encode covers exactly the same words. Off by default: the
// re-scan races with writers that mutate `working` mid-flush, which is
// legal for the engine (the writer's own release re-flushes) but a false
// positive here. Single-threaded tests switch it on.
std::atomic<bool> g_diff_verify{false};
#endif

// Block mismatch prefilter: XORs two 64-byte blocks with plain (non-atomic)
// wide loads — SIMD via GNU vector extensions where available — writing the
// eight chunk XORs to `x`; returns true when the block is clean (all zero).
// The per-object atomic loads never vectorize, and this single pass is what
// makes skipping clean blocks cheap. These reads are not atomic, but a torn
// or stale read can only flip the *detection* of a word that a local writer
// is racing the scan on, and missing such a word is already legal: the
// dirty map is monotone, so the block stays marked and the writer's own
// release re-flushes it (see MarkRange). Words that are stable across the
// scan are detected exactly. Diff *values* never come from these loads.
inline bool BlockXorChunks(const std::byte* a, const std::byte* b,
                           std::uint64_t x[kChunksPerBlock]) {
#if defined(__GNUC__) || defined(__clang__)
  typedef std::uint64_t VChunk __attribute__((vector_size(32), aligned(8), may_alias));
  const VChunk* va = reinterpret_cast<const VChunk*>(a);
  const VChunk* vb = reinterpret_cast<const VChunk*>(b);
  const VChunk x0 = va[0] ^ vb[0];
  const VChunk x1 = va[1] ^ vb[1];
  const VChunk any = x0 | x1;
  if ((any[0] | any[1] | any[2] | any[3]) == 0) {
    return true;
  }
  // csm-lint: allow(raw-page-copy) -- spills vector registers to a stack
  // array; never touches page memory.
  std::memcpy(x, &x0, sizeof(x0));
  std::memcpy(x + kChunksPerBlock / 2, &x1, sizeof(x1));  // csm-lint: allow(raw-page-copy) -- stack-to-stack, as above
  return false;
#else
  std::uint64_t av[kChunksPerBlock];
  std::uint64_t bv[kChunksPerBlock];
  // csm-lint: allow(raw-page-copy) -- the prefilter's documented benign racy
  // read INTO a stack buffer (see comment above); stores never use this path.
  std::memcpy(av, a, kBlockBytes);
  std::memcpy(bv, b, kBlockBytes);  // csm-lint: allow(raw-page-copy) -- stack buffer, as above
  std::uint64_t any = 0;
  for (std::size_t c = 0; c < kChunksPerBlock; ++c) {
    x[c] = av[c] ^ bv[c];
    any |= x[c];
  }
  return any == 0;
#endif
}

// One block of the scan. By-value parameters and forced inlining matter
// here: routed through a capture-by-reference closure, GCC re-loads every
// captured pointer after each atomic store (the store may alias the
// closure), roughly doubling the dense-page scan cost.
template <typename OnWord>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
inline void
ScanOneBlock(const std::byte* a, const std::byte* b, std::size_t block, bool chunked,
             OnWord& on_word) {
  const std::size_t word0 = block * kWordsPerBlock;
  if (chunked) {
    const std::byte* ab = a + block * kBlockBytes;
    const std::byte* bb = b + block * kBlockBytes;
    std::uint64_t x[kChunksPerBlock];
    if (BlockXorChunks(ab, bb, x)) {
      return;
    }
    for (std::size_t c = 0; c < kChunksPerBlock; ++c) {
      if (x[c] == 0) {
        continue;  // both words of this chunk compared clean
      }
      for (std::size_t h = 0; h < kWordsPerChunk; ++h) {
        // Confirm with atomic loads: the committed values, not the
        // prefilter snapshot (a racing word may compare equal again).
        const std::size_t index = word0 + c * kWordsPerChunk + h;
        const std::uint32_t aw = LoadWord32Relaxed(a, index);
        const std::uint32_t bw = LoadWord32Relaxed(b, index);
        if (aw != bw) {
          on_word(index, aw, bw);
        }
      }
    }
  } else {
    // Unaligned images (only seen from tests feeding odd buffers): fall
    // back to the word-at-a-time scan within the block.
    for (std::size_t i = 0; i < kWordsPerBlock; ++i) {
      const std::uint32_t aw = LoadWord32Relaxed(a, word0 + i);
      const std::uint32_t bw = LoadWord32Relaxed(b, word0 + i);
      if (aw != bw) {
        on_word(word0 + i, aw, bw);
      }
    }
  }
}

// Block-scanning core: calls on_word(word_index, a_word, b_word) for every
// word where page images `a` and `b` differ, in increasing index order.
// `dirty` (may be null) restricts the scan to marked 64-byte blocks.
// Word-exact semantics and 32-bit stores are untouched: the prefilter only
// decides which words get the atomic confirm loads, and the callback always
// receives individually-loaded words.
template <typename OnWord>
inline void ScanPairBlocks(const std::byte* a, const std::byte* b, const DirtyBlockMap* dirty,
                           DiffScanStats* scan, OnWord&& on_word) {
  const bool chunked = Chunk64Aligned(a) && Chunk64Aligned(b);
  if (dirty == nullptr) {
    for (std::size_t block = 0; block < kBlocksPerPage; ++block) {
      ScanOneBlock(a, b, block, chunked, on_word);
    }
    if (scan != nullptr) {
      scan->blocks_scanned += kBlocksPerPage;
    }
    return;
  }
  // Restricted scan: iterate the set bits of the map directly, so the cost
  // is proportional to the number of ever-dirty blocks, not the page size.
  // Snapshot the words once — the map is monotone, so a racing mark missed
  // here is covered by the marking writer's own later flush.
  std::uint64_t snapshot[DirtyBlockMap::kMapWords];
  std::size_t marked = 0;
  for (std::size_t w = 0; w < DirtyBlockMap::kMapWords; ++w) {
    snapshot[w] = dirty->Word(w);
    marked += static_cast<std::size_t>(std::popcount(snapshot[w]));
  }
  if (scan != nullptr) {
    scan->blocks_scanned += marked;
    scan->blocks_skipped += kBlocksPerPage - marked;
  }
  // Density cutover: on a mostly-dirty page the prefilter cannot skip
  // enough blocks to pay for its extra pass, so use the plain word walk.
  const bool prefilter = chunked && marked <= kDiffDenseCutoverBlocks;
  for (std::size_t w = 0; w < DirtyBlockMap::kMapWords; ++w) {
    std::uint64_t bits = snapshot[w];
    while (bits != 0) {
      const std::size_t block = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      ScanOneBlock(a, b, block, prefilter, on_word);
    }
  }
}

// Tracks RLE run statistics for the direct-apply paths, which do not
// materialize a DiffBuffer.
struct RunTracker {
  std::size_t last_index = kWordsPerPage + 1;  // sentinel: not adjacent to any word
  DiffScanStats* scan;

  explicit RunTracker(DiffScanStats* s) : scan(s) {}
  void Note(std::size_t index) {
    if (scan != nullptr) {
      if (index != last_index + 1) {
        ++scan->runs;
        scan->run_bytes += kDiffRunHeaderBytes;
      }
      scan->run_bytes += kWordBytes;
    }
    last_index = index;
  }
};

}  // namespace

int DirtyBlockMap::PopCount() const {
  int n = 0;
  for (const auto& w : bits_) {
    n += std::popcount(w.load(std::memory_order_relaxed));
  }
  return n;
}

void SetDiffVerifyForTesting(bool enabled) {
#ifndef NDEBUG
  g_diff_verify.store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;
#endif
}

std::size_t EncodeOutgoingDiff(const std::byte* working, std::byte* twin, bool flush_update,
                               const DirtyBlockMap* dirty, DiffBuffer& out,
                               DiffScanStats* scan) {
  out.Clear();
#ifndef NDEBUG
  // Reference pass first (read-only), so the twin is still pristine.
  std::uint64_t expect[kWordsPerPage / 64] = {};
  const bool verify = g_diff_verify.load(std::memory_order_relaxed);
  if (verify) {
    for (std::size_t i = 0; i < kWordsPerPage; ++i) {
      const bool in_dirty_block =
          dirty == nullptr || dirty->Test(i / kWordsPerBlock);
      if (in_dirty_block && LoadWord32Relaxed(working, i) != LoadWord32Relaxed(twin, i)) {
        expect[i / 64] |= 1ull << (i % 64);
      }
    }
  }
#endif
  ScanPairBlocks(working, twin, dirty, scan,
                 [&](std::size_t index, std::uint32_t w, std::uint32_t /*t*/) {
                   out.Append(static_cast<std::uint32_t>(index), w);
                   if (flush_update) {
                     // Sync the twin from the payload snapshot, so twin and
                     // master receive bit-identical values even if a local
                     // writer races with the scan.
                     StoreWord32Relaxed(twin, index, w);
                   }
                 });
  if (scan != nullptr) {
    scan->runs += out.run_count();
    scan->run_bytes += out.WireBytes();
  }
#ifndef NDEBUG
  if (verify) {
    std::uint64_t got[kWordsPerPage / 64] = {};
    std::size_t cursor = 0;
    for (std::size_t r = 0; r < out.run_count(); ++r) {
      const DiffRun& run = out.run(r);
      for (std::uint32_t i = 0; i < run.nwords; ++i) {
        const std::size_t index = run.offset_words + i;
        got[index / 64] |= 1ull << (index % 64);
        // Round trip: the payload snapshot is the working value (verify
        // mode implies no racing writer), and with flush-update the twin
        // was synchronized from that exact snapshot.
        CSM_DCHECK(out.payload(cursor)[i] == LoadWord32Relaxed(working, index));
        CSM_DCHECK(!flush_update ||
                   LoadWord32Relaxed(twin, index) == out.payload(cursor)[i]);
      }
      cursor += run.nwords;
    }
    for (std::size_t w = 0; w < kWordsPerPage / 64; ++w) {
      CSM_DCHECK(expect[w] == got[w]);
    }
  }
#endif
  std::atomic_thread_fence(std::memory_order_release);
  return out.words();
}

void ApplyDiffRuns(const DiffBuffer& diff, std::byte* dst) {
  std::size_t cursor = 0;
  for (std::size_t r = 0; r < diff.run_count(); ++r) {
    const DiffRun& run = diff.run(r);
    const std::uint32_t* payload = diff.payload(cursor);
    for (std::uint32_t i = 0; i < run.nwords; ++i) {
      StoreWord32Relaxed(dst, run.offset_words + i, payload[i]);
    }
    cursor += run.nwords;
  }
  std::atomic_thread_fence(std::memory_order_release);
}

std::size_t ApplyOutgoingDiff(const std::byte* working, std::byte* twin, std::byte* master,
                              bool flush_update, const DirtyBlockMap* dirty,
                              DiffScanStats* scan) {
  std::size_t changed = 0;
  RunTracker runs(scan);
  ScanPairBlocks(working, twin, dirty, scan,
                 [&](std::size_t index, std::uint32_t w, std::uint32_t /*t*/) {
                   StoreWord32Relaxed(master, index, w);
                   if (flush_update) {
                     StoreWord32Relaxed(twin, index, w);
                   }
                   runs.Note(index);
                   ++changed;
                 });
  std::atomic_thread_fence(std::memory_order_release);
  return changed;
}

std::size_t ApplyIncomingDiff(const std::byte* incoming, std::byte* twin, std::byte* working,
                              DiffScanStats* scan) {
  std::size_t changed = 0;
  RunTracker runs(scan);
  ScanPairBlocks(incoming, twin, /*dirty=*/nullptr, scan,
                 [&](std::size_t index, std::uint32_t in, std::uint32_t /*t*/) {
                   StoreWord32Relaxed(working, index, in);
                   StoreWord32Relaxed(twin, index, in);
                   runs.Note(index);
                   ++changed;
                 });
  std::atomic_thread_fence(std::memory_order_release);
  return changed;
}

void CopyPage(std::byte* dst, const std::byte* src) {
  for (std::size_t w = 0; w < kWordsPerPage; ++w) {
    StoreWord32Relaxed(dst, w, LoadWord32Relaxed(src, w));
  }
  std::atomic_thread_fence(std::memory_order_release);
}

std::size_t CountDiffWords(const std::byte* a, const std::byte* b,
                           const DirtyBlockMap* dirty) {
  std::size_t n = 0;
  ScanPairBlocks(a, b, dirty, /*scan=*/nullptr,
                 [&](std::size_t, std::uint32_t, std::uint32_t) { ++n; });
  return n;
}

// ---------------------------------------------------------------------------
// Reference word-at-a-time scanners (the seed implementation, verbatim
// semantics): oracle for property tests and bench_diff_engine's baseline.

std::size_t ApplyOutgoingDiffWordScan(const std::byte* working, std::byte* twin,
                                      std::byte* master, bool flush_update) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    const std::uint32_t w = LoadWord32Relaxed(working, i);
    const std::uint32_t t = LoadWord32Relaxed(twin, i);
    if (w != t) {
      StoreWord32Relaxed(master, i, w);
      if (flush_update) {
        StoreWord32Relaxed(twin, i, w);
      }
      ++changed;
    }
  }
  std::atomic_thread_fence(std::memory_order_release);
  return changed;
}

std::size_t ApplyIncomingDiffWordScan(const std::byte* incoming, std::byte* twin,
                                      std::byte* working) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    const std::uint32_t in = LoadWord32Relaxed(incoming, i);
    const std::uint32_t t = LoadWord32Relaxed(twin, i);
    if (in != t) {
      StoreWord32Relaxed(working, i, in);
      StoreWord32Relaxed(twin, i, in);
      ++changed;
    }
  }
  std::atomic_thread_fence(std::memory_order_release);
  return changed;
}

std::size_t CountDiffWordsWordScan(const std::byte* a, const std::byte* b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    if (LoadWord32Relaxed(a, i) != LoadWord32Relaxed(b, i)) {
      ++n;
    }
  }
  return n;
}

}  // namespace cashmere
