#include "cashmere/protocol/diff.hpp"

#include <atomic>

#include "cashmere/mc/hub.hpp"

namespace cashmere {

namespace {

inline std::uint32_t LoadRelaxed(const std::byte* p, std::size_t i) {
  return reinterpret_cast<const std::atomic<std::uint32_t>*>(p)[i].load(
      std::memory_order_relaxed);
}

inline void StoreRelaxed(std::byte* p, std::size_t i, std::uint32_t v) {
  reinterpret_cast<std::atomic<std::uint32_t>*>(p)[i].store(v, std::memory_order_relaxed);
}

}  // namespace

std::size_t ApplyOutgoingDiff(const std::byte* working, std::byte* twin, std::byte* master,
                              bool flush_update) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    const std::uint32_t w = LoadRelaxed(working, i);
    const std::uint32_t t = LoadRelaxed(twin, i);
    if (w != t) {
      StoreRelaxed(master, i, w);
      if (flush_update) {
        StoreRelaxed(twin, i, w);
      }
      ++changed;
    }
  }
  std::atomic_thread_fence(std::memory_order_release);
  return changed;
}

std::size_t ApplyIncomingDiff(const std::byte* incoming, std::byte* twin, std::byte* working) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    const std::uint32_t in = LoadRelaxed(incoming, i);
    const std::uint32_t t = LoadRelaxed(twin, i);
    if (in != t) {
      StoreRelaxed(working, i, in);
      StoreRelaxed(twin, i, in);
      ++changed;
    }
  }
  std::atomic_thread_fence(std::memory_order_release);
  return changed;
}

void CopyPage(std::byte* dst, const std::byte* src) { CopyWords32(dst, src, kWordsPerPage); }

std::size_t CountDiffWords(const std::byte* a, const std::byte* b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    if (LoadRelaxed(a, i) != LoadRelaxed(b, i)) {
      ++n;
    }
  }
  return n;
}

}  // namespace cashmere
