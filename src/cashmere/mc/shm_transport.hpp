// ShmTransport: the multi-process shared-memory backend.
//
// One OS process per node. Arena segments are memfd_create regions created
// by the process that owns the node and mapped (at whatever address the
// kernel hands out) by every process that needs them, so a remote write
// issued here really lands in another process's address space — the
// PageFrameRef {segment, offset} indirection exists exactly because those
// mappings disagree on addresses. Ordered operations serialize through a
// SharedWordLock whose word lives in a shared control segment: unlike the
// in-process SpinLock, that word is address-free and contendable from any
// process of the cluster.
//
// Two modes:
//   Cluster mode — entered when the launcher environment is present
//     (CSM_SHM_CTRL_FD/CSM_SHM_NODES/CSM_SHM_NODE). This process is the
//     lead node of a cashmere_launch cluster: peer processes host the
//     other nodes' arena segments and serve the UDS control plane
//     (mc/control_plane.hpp). ArenaFdFor asks the owning peer to create
//     the segment and returns the SCM_RIGHTS-passed fd; BeginRun runs the
//     barrier-of-last-resort; EndRun proves cross-process visibility by
//     comparing this process's checksum of each remote segment against
//     the owning peer's checksum over its own mapping; destruction sends
//     kShutdown for clean teardown.
//   Solo mode — no launcher: segments are created locally (still real
//     memfd + MAP_SHARED) and the control plane is absent. This is the
//     backend the parameterized transport tests run to pin Execute
//     semantics without forking a cluster.
//
// v1 execution model (DESIGN.md §14): compute runs on the lead; peers are
// segment hosts + control-plane servers. Spreading the processor threads
// themselves across the peers (true SPMD) is the documented follow-up —
// the transport API already carries everything it needs (frame refs,
// fd-passed segments, the shared-word lock).
#ifndef CASHMERE_MC_SHM_TRANSPORT_HPP_
#define CASHMERE_MC_SHM_TRANSPORT_HPP_

#include <atomic>
#include <memory>
#include <vector>

#include "cashmere/mc/control_plane.hpp"
#include "cashmere/mc/transport.hpp"
#include "cashmere/sync/shared_word_lock.hpp"

namespace cashmere {

class ShmTransport final : public McTransport {
 public:
  // Solo mode.
  ShmTransport();
  // Cluster mode: `ctrl` connects to the launcher relay, `nodes` processes,
  // this process is node `node` (v1: must be 0, the lead).
  ShmTransport(CtrlEndpoint ctrl, int nodes, int node);
  ~ShmTransport() override;

  // Builds from the cashmere_launch environment if present, else solo.
  static std::unique_ptr<ShmTransport> FromEnv();

  const char* name() const override { return "shm"; }
  bool cluster() const { return ctrl_.valid(); }
  int cluster_processes() const override { return cluster() ? nodes_ : 1; }

  std::uint32_t Execute(const McOp& op) override;

  SegmentId RegisterArena(const SegmentInfo& info, std::byte* local_base) override;
  int ArenaFdFor(UnitId unit, std::size_t bytes) override;

  void BeginBoot() override;
  void BeginRun() override;
  void EndRun() override;

  // Cluster-wide rendezvous through the launcher (the barrier of last
  // resort): proves every peer process is alive and serving before/after a
  // run, independent of the shared segments themselves.
  void BarrierLastResort();

  // Cumulative wall-clock nanoseconds spent executing ops — the measured
  // wire time recorded alongside the virtual-time charges (BENCH_transport
  // reports the per-op cost derived from it).
  std::uint64_t wire_ns() const override {
    return wire_ns_.load(std::memory_order_relaxed);
  }
  // False iff an EndRun checksum exchange found a peer whose view of a
  // segment disagrees with ours (or a peer died mid-exchange).
  bool peers_verified() const override { return peers_verified_; }

 private:
  void InitCtlSegment();

  CtrlEndpoint ctrl_;          // invalid in solo mode
  int nodes_ = 1;
  int node_ = 0;
  // Control segment: holds the ordered-op lock word (offset 0).
  int ctl_fd_ = -1;
  std::byte* ctl_base_ = nullptr;
  std::unique_ptr<SharedWordLock> order_lock_;
  // Per registered segment: creation index within its owning peer (the
  // peer-local id a kChecksum probe names); -1 for locally-created segments.
  std::vector<int> peer_index_;
  std::atomic<std::uint64_t> wire_ns_{0};
  bool peers_verified_ = true;
};

}  // namespace cashmere

#endif  // CASHMERE_MC_SHM_TRANSPORT_HPP_
