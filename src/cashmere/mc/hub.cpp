#include "cashmere/mc/hub.hpp"

#include <cstring>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/trace.hpp"

namespace cashmere {

void CopyWords32(void* dst, const void* src, std::size_t words) {
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < words; ++i) {
    // The source may be concurrently written (race-free programs never race
    // on the same word, but neighbouring words of a page move while we
    // copy), so loads are atomic too.
    StoreWord32Relaxed(d, i, LoadWord32Relaxed(s, i));
  }
  std::atomic_thread_fence(std::memory_order_release);
}

std::uint32_t LoadWord32(const void* src) { return LoadWord32Acquire(src); }

void StoreWord32(void* dst, std::uint32_t value) { StoreWord32Release(dst, value); }

void McHub::OrderedBroadcast32(std::uint32_t* location, std::uint32_t value, Traffic t) {
  SpinLockGuard guard(order_lock_);
  StoreWord32Release(location, value);
  AccountWrite(t, kWordBytes * static_cast<std::size_t>(units_));
}

std::uint32_t McHub::OrderedExchange32(std::uint32_t* location, std::uint32_t value, Traffic t) {
  SpinLockGuard guard(order_lock_);
  const std::uint32_t prev = LoadWord32Acquire(location);
  StoreWord32Release(location, value);
  AccountWrite(t, kWordBytes * static_cast<std::size_t>(units_));
  return prev;
}

void McHub::WriteStream(void* dst, const void* src, std::size_t words, Traffic t) {
  CopyWords32(dst, src, words);
  AccountWrite(t, words * kWordBytes);
}

void McHub::WriteRun(void* dst_base, std::size_t offset_words, const void* payload,
                     std::size_t nwords, Traffic t, std::size_t header_bytes) {
  CopyWords32(static_cast<std::byte*>(dst_base) + offset_words * kWordBytes, payload, nwords);
  AccountWrite(t, nwords * kWordBytes + header_bytes);
}

void McHub::Write32(std::uint32_t* dst, std::uint32_t value, Traffic t) {
  StoreWord32Release(dst, value);
  AccountWrite(t, kWordBytes);
}

void McHub::AccountWrite(Traffic t, std::size_t bytes) {
  bytes_[static_cast<int>(t)].fetch_add(bytes, std::memory_order_relaxed);
  writes_[static_cast<int>(t)].fetch_add(1, std::memory_order_relaxed);
  // Single chokepoint for MC traffic: every Write32/WriteRun/WriteStream/
  // ordered-broadcast lands here, so one emit covers the hub.
  if (TraceActive()) {
    TraceEmit(EventKind::kMcWrite, kNoTracePage, 0, static_cast<std::uint32_t>(t),
              static_cast<std::uint64_t>(bytes));
  }
}

VirtTime McHub::ReserveBus(VirtTime earliest, std::size_t bytes) {
  if (ns_per_byte_ <= 0.0) {
    return earliest;
  }
  const auto duration =
      static_cast<std::uint64_t>(static_cast<double>(bytes) * ns_per_byte_);
  std::uint64_t seen = bus_clock_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t start = seen > earliest ? seen : earliest;
    const std::uint64_t end = start + duration;
    if (bus_clock_.compare_exchange_weak(seen, end, std::memory_order_acq_rel)) {
      return end;
    }
  }
}

std::uint64_t McHub::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bytes_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t McHub::DataBytes() const {
  return BytesSent(Traffic::kPageData) + BytesSent(Traffic::kDiffData) +
         BytesSent(Traffic::kWriteNotice);
}

}  // namespace cashmere
