#include "cashmere/mc/hub.hpp"

#include <cstring>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/trace.hpp"

namespace cashmere {

void CopyWords32(void* dst, const void* src, std::size_t words) {
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < words; ++i) {
    // The source may be concurrently written (race-free programs never race
    // on the same word, but neighbouring words of a page move while we
    // copy), so loads are atomic too.
    StoreWord32Relaxed(d, i, LoadWord32Relaxed(s, i));
  }
  std::atomic_thread_fence(std::memory_order_release);
}

std::uint32_t LoadWord32(const void* src) { return LoadWord32Acquire(src); }

void StoreWord32(void* dst, std::uint32_t value) { StoreWord32Release(dst, value); }

McHub::McHub(int units)
    : units_(units),
      owned_transport_(std::make_unique<InProcTransport>()),
      transport_(owned_transport_.get()),
      inproc_(transport_->AsInProc()) {}

McHub::McHub(int units, McTransport* transport)
    : units_(units), transport_(transport), inproc_(transport_->AsInProc()) {
  CSM_CHECK(transport_ != nullptr);
}

std::uint32_t McHub::IssueVirtual(McOp op) {
  const std::uint32_t prev = transport_->Execute(op);
  AccountWrite(op.traffic, op.WireBytes(units_));
  return prev;
}


VirtTime McHub::ReserveBus(VirtTime earliest, std::size_t bytes) {
  if (ns_per_byte_ <= 0.0) {
    return earliest;
  }
  const auto duration =
      static_cast<std::uint64_t>(static_cast<double>(bytes) * ns_per_byte_);
  std::uint64_t seen = bus_clock_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t start = seen > earliest ? seen : earliest;
    const std::uint64_t end = start + duration;
    if (bus_clock_.compare_exchange_weak(seen, end, std::memory_order_acq_rel)) {
      return end;
    }
  }
}

std::uint64_t McHub::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bytes_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t McHub::DataBytes() const {
  return BytesSent(Traffic::kPageData) + BytesSent(Traffic::kDiffData) +
         BytesSent(Traffic::kWriteNotice);
}

}  // namespace cashmere
