#include "cashmere/mc/hub.hpp"

#include <cstring>

#include "cashmere/common/logging.hpp"

namespace cashmere {

namespace {

std::atomic<std::uint32_t>* AsAtomic(void* p) {
  return reinterpret_cast<std::atomic<std::uint32_t>*>(p);
}

const std::uint32_t* AsWords(const void* p) { return static_cast<const std::uint32_t*>(p); }

}  // namespace

void CopyWords32(void* dst, const void* src, std::size_t words) {
  auto* d = AsAtomic(dst);
  const std::uint32_t* s = AsWords(src);
  for (std::size_t i = 0; i < words; ++i) {
    // The source may be concurrently written (race-free programs never race
    // on the same word, but neighbouring words of a page move while we
    // copy), so loads are atomic too.
    const std::uint32_t v =
        reinterpret_cast<const std::atomic<std::uint32_t>*>(s + i)->load(
            std::memory_order_relaxed);
    d[i].store(v, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_release);
}

std::uint32_t LoadWord32(const void* src) {
  return reinterpret_cast<const std::atomic<std::uint32_t>*>(src)->load(
      std::memory_order_acquire);
}

void StoreWord32(void* dst, std::uint32_t value) {
  AsAtomic(dst)->store(value, std::memory_order_release);
}

void McHub::OrderedBroadcast32(std::uint32_t* location, std::uint32_t value, Traffic t) {
  SpinLockGuard guard(order_lock_);
  AsAtomic(location)->store(value, std::memory_order_release);
  AccountWrite(t, kWordBytes * static_cast<std::size_t>(units_));
}

std::uint32_t McHub::OrderedExchange32(std::uint32_t* location, std::uint32_t value, Traffic t) {
  SpinLockGuard guard(order_lock_);
  const std::uint32_t prev = AsAtomic(location)->load(std::memory_order_acquire);
  AsAtomic(location)->store(value, std::memory_order_release);
  AccountWrite(t, kWordBytes * static_cast<std::size_t>(units_));
  return prev;
}

void McHub::WriteStream(void* dst, const void* src, std::size_t words, Traffic t) {
  CopyWords32(dst, src, words);
  AccountWrite(t, words * kWordBytes);
}

void McHub::Write32(std::uint32_t* dst, std::uint32_t value, Traffic t) {
  AsAtomic(dst)->store(value, std::memory_order_release);
  AccountWrite(t, kWordBytes);
}

void McHub::AccountWrite(Traffic t, std::size_t bytes) {
  bytes_[static_cast<int>(t)].fetch_add(bytes, std::memory_order_relaxed);
  writes_[static_cast<int>(t)].fetch_add(1, std::memory_order_relaxed);
}

VirtTime McHub::ReserveBus(VirtTime earliest, std::size_t bytes) {
  if (ns_per_byte_ <= 0.0) {
    return earliest;
  }
  const auto duration =
      static_cast<std::uint64_t>(static_cast<double>(bytes) * ns_per_byte_);
  std::uint64_t seen = bus_clock_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t start = seen > earliest ? seen : earliest;
    const std::uint64_t end = start + duration;
    if (bus_clock_.compare_exchange_weak(seen, end, std::memory_order_acq_rel)) {
      return end;
    }
  }
}

std::uint64_t McHub::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bytes_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t McHub::DataBytes() const {
  return BytesSent(Traffic::kPageData) + BytesSent(Traffic::kDiffData) +
         BytesSent(Traffic::kWriteNotice);
}

}  // namespace cashmere
