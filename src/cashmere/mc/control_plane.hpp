// Control plane for the multi-process shm transport.
//
// The data plane of ShmTransport is pure shared memory (remote writes land
// directly in memfd segments mapped by every node process), but three
// things cannot ride shared memory: passing the segment fds themselves,
// a barrier of last resort that works before/after the segments exist, and
// detecting a dead peer. Those ride a tiny Unix-domain-socket control
// plane: the launcher (tools/cashmere_launch, or the in-process ShmLauncher
// below for tests) holds one SOCK_SEQPACKET pair per node and relays
// messages between the lead node — the process that runs the Runtime — and
// the peers — the processes whose address spaces host the other nodes'
// arena segments.
//
// Wire format: fixed-size CtrlMsg records (SOCK_SEQPACKET preserves
// boundaries), with segment fds attached as SCM_RIGHTS ancillary data on
// kSegFd. A closed socket (recv returning 0/ECONNRESET) is the failure
// model: the launcher treats any child exiting before kShutdown as a crash,
// kills the rest of the cluster, and exits nonzero — the "teardown with a
// killed child" contract transport_test pins.
#ifndef CASHMERE_MC_CONTROL_PLANE_HPP_
#define CASHMERE_MC_CONTROL_PLANE_HPP_

#include <sys/types.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace cashmere {

enum class CtrlKind : std::uint32_t {
  kHello = 1,        // peer -> launcher: alive, unit id attached
  kSegReset,         // lead -> peers: drop segment table (new Runtime boot)
  kSegCreate,        // lead -> peer: create arena segment (a=bytes)
  kSegFd,            // peer -> lead: created segment fd (SCM_RIGHTS)
  kChecksum,         // lead -> peer: checksum your mapping of segment a
  kChecksumRep,      // peer -> lead: FNV-64 of the segment (a=lo32, b=hi32)
  kBarrier,          // any -> launcher: entered barrier-of-last-resort
  kBarrierGo,        // launcher -> all: everyone arrived, proceed
  kShutdown,         // lead -> all: run complete, exit cleanly
};

struct CtrlMsg {
  CtrlKind kind = CtrlKind::kHello;
  std::int32_t unit = -1;  // sender or target unit, message-dependent
  std::uint32_t a = 0;     // payload words, message-dependent
  std::uint32_t b = 0;
};

// One end of a SOCK_SEQPACKET control connection. Does not own the fd
// unless adopted; Send/Recv move whole CtrlMsg records, optionally carrying
// one file descriptor as SCM_RIGHTS ancillary data.
class CtrlEndpoint {
 public:
  CtrlEndpoint() = default;
  explicit CtrlEndpoint(int fd, bool owned = true) : fd_(fd), owned_(owned) {}
  ~CtrlEndpoint();
  CtrlEndpoint(CtrlEndpoint&& other) noexcept;
  CtrlEndpoint& operator=(CtrlEndpoint&& other) noexcept;
  CtrlEndpoint(const CtrlEndpoint&) = delete;
  CtrlEndpoint& operator=(const CtrlEndpoint&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  // Sends one record, with `fd_to_pass` attached when >= 0. Returns false
  // on a broken connection (EPIPE/ECONNRESET) — the peer died.
  bool Send(const CtrlMsg& msg, int fd_to_pass = -1);
  // Receives one record; a passed fd (if any) lands in *received_fd, which
  // the caller owns. Returns false on EOF or error — the peer died.
  bool Recv(CtrlMsg* msg, int* received_fd = nullptr);

  // Creates a connected SOCK_SEQPACKET pair (CLOEXEC off so one end can
  // survive exec into a peer process).
  static bool MakePair(CtrlEndpoint* a, CtrlEndpoint* b);

 private:
  void Close();
  int fd_ = -1;
  bool owned_ = false;
};

// FNV-1a over a byte range; the checksum peers report so the lead can prove
// its remote writes are visible in the peer's own mapping.
std::uint64_t Fnv64(const void* data, std::size_t bytes);

// Peer service loop: runs in each non-lead node process (or thread, under
// the test launcher). Creates arena segments on request, answers checksum
// probes over its own mapping, participates in barriers, and exits on
// kShutdown or EOF. Returns 0 on clean shutdown, nonzero on protocol error.
int ShmPeerServe(CtrlEndpoint ctrl, int unit);

// In-process cluster launcher, the library form of tools/cashmere_launch.
// Forks `nodes - 1` peer processes (unit ids 1..nodes-1), runs the relay in
// a background thread, and hands the lead (unit 0) its control endpoint.
// The relay implements the star topology: every message a node sends names
// its target via CtrlMsg::unit and the launcher forwards it, so nodes need
// no pairwise connections. Used directly by transport_test; the CLI tool
// wraps the same class around fork+exec of the app binary.
class ShmLauncher {
 public:
  ShmLauncher() = default;
  ~ShmLauncher();
  ShmLauncher(const ShmLauncher&) = delete;
  ShmLauncher& operator=(const ShmLauncher&) = delete;

  // Forks peers and starts the relay. Returns false on fork/socket failure.
  bool Start(int nodes);
  // Control endpoint for the lead node (unit 0); valid after Start.
  CtrlEndpoint TakeLeadEndpoint();
  // Waits for all peers to exit. Returns true iff every peer exited zero
  // after a clean kShutdown; on a peer crash the remaining peers are
  // killed (the teardown guarantee).
  bool Join();
  // Kills one peer (test hook for the killed-child teardown case).
  void KillPeer(int unit, int sig);
  // For a CLI that fork+execs the lead: call in the child, after
  // TakeLeadEndpoint and before exec, to close the child's inherited copies
  // of the launcher-side link fds (async-signal-safe; raw close only).
  void CloseLauncherFdsInChild();

  pid_t peer_pid(int unit) const;

 private:
  void Relay();

  int nodes_ = 0;
  std::vector<pid_t> pids_;           // index = unit, [0] unused
  std::vector<CtrlEndpoint> links_;   // launcher end per unit, [0] = lead link
  CtrlEndpoint lead_;                 // handed to the lead node
  std::thread relay_;
  bool peer_crashed_ = false;
};

}  // namespace cashmere

#endif  // CASHMERE_MC_CONTROL_PLANE_HPP_
