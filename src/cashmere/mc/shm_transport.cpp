#include "cashmere/mc/shm_transport.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>

#include "cashmere/common/logging.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShmTransport::ShmTransport() { InitCtlSegment(); }

ShmTransport::ShmTransport(CtrlEndpoint ctrl, int nodes, int node)
    : ctrl_(std::move(ctrl)), nodes_(nodes), node_(node) {
  // v1 execution model: the lead process runs the Runtime, peers host
  // segments. True SPMD (node_ != 0 running compute) is the documented
  // follow-up; reject it rather than half-run it.
  CSM_CHECK(node_ == 0 && "shm cluster v1: only the lead node runs a Runtime");
  CSM_CHECK(nodes_ >= 1);
  InitCtlSegment();
}

ShmTransport::~ShmTransport() {
  if (cluster()) {
    ctrl_.Send(CtrlMsg{CtrlKind::kShutdown, -1, 0, 0});
  }
  if (ctl_base_ != nullptr) {
    munmap(ctl_base_, kPageBytes);
  }
  if (ctl_fd_ >= 0) {
    close(ctl_fd_);
  }
}

void ShmTransport::InitCtlSegment() {
  // One page of control words; the ordered-op lock word sits at offset 0.
  // The segment is memfd-backed so it can be fd-passed and mapped by peer
  // processes — the lock word must be the same physical word everywhere.
  ctl_fd_ = memfd_create("cashmere-shm-ctl", 0);
  CSM_CHECK(ctl_fd_ >= 0);
  CSM_CHECK(ftruncate(ctl_fd_, static_cast<off_t>(kPageBytes)) == 0);
  void* p = mmap(nullptr, kPageBytes, PROT_READ | PROT_WRITE, MAP_SHARED, ctl_fd_, 0);
  CSM_CHECK(p != MAP_FAILED);
  ctl_base_ = static_cast<std::byte*>(p);
  order_lock_ =
      std::make_unique<SharedWordLock>(reinterpret_cast<std::uint32_t*>(ctl_base_));
}

std::unique_ptr<ShmTransport> ShmTransport::FromEnv() {
  const char* fd_env = std::getenv("CSM_SHM_CTRL_FD");
  if (fd_env == nullptr) {
    return std::make_unique<ShmTransport>();
  }
  const char* nodes_env = std::getenv("CSM_SHM_NODES");
  const char* node_env = std::getenv("CSM_SHM_NODE");
  CSM_CHECK(nodes_env != nullptr && node_env != nullptr);
  const int fd = std::atoi(fd_env);
  CSM_CHECK(fd >= 0);
  return std::make_unique<ShmTransport>(CtrlEndpoint(fd), std::atoi(nodes_env),
                                        std::atoi(node_env));
}

std::uint32_t ShmTransport::Execute(const McOp& op) {
  const std::uint64_t t0 = NowNs();
  std::uint32_t prev = 0;
  switch (op.kind) {
    case McOpKind::kWrite32:
      StoreWord32Release(op.dst, op.value);
      break;
    case McOpKind::kWriteStream:
      CopyWords32(op.dst, op.src, op.words);
      break;
    case McOpKind::kWriteRun:
      CopyWords32(static_cast<std::byte*>(op.dst) + op.offset_words * kWordBytes, op.src,
                  op.words);
      break;
    case McOpKind::kOrderedBroadcast32: {
      SharedWordLockGuard guard(*order_lock_);
      StoreWord32Release(op.dst, op.value);
      break;
    }
    case McOpKind::kOrderedExchange32: {
      SharedWordLockGuard guard(*order_lock_);
      prev = LoadWord32Acquire(op.dst);
      StoreWord32Release(op.dst, op.value);
      break;
    }
  }
  wire_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  return prev;
}

SegmentId ShmTransport::RegisterArena(const SegmentInfo& info, std::byte* local_base) {
  const SegmentId seg = McTransport::RegisterArena(info, local_base);
  // Peer-local creation index: the owning peer numbers the segments it
  // created in order, and ArenaFdFor/RegisterArena run in that same order,
  // so the index is the count of this owner's earlier registrations.
  int idx = -1;
  if (cluster() && info.owner != node_) {
    idx = 0;
    for (SegmentId s = 0; s < seg; ++s) {
      if (segments_[s].owner == info.owner && peer_index_[s] >= 0) {
        ++idx;
      }
    }
  }
  peer_index_.push_back(idx);
  return seg;
}

int ShmTransport::ArenaFdFor(UnitId unit, std::size_t bytes) {
  if (!cluster() || unit == node_ || unit >= nodes_) {
    // Solo mode, our own node, or a unit beyond the process cluster (a
    // shape with more coherence units than launched processes): the caller
    // creates the segment locally. Still memfd + MAP_SHARED.
    return -1;
  }
  const CtrlMsg req{CtrlKind::kSegCreate, static_cast<std::int32_t>(unit),
                    static_cast<std::uint32_t>(bytes),
                    static_cast<std::uint32_t>(bytes >> 32)};
  CSM_CHECK(ctrl_.Send(req) && "shm control plane down during bootstrap");
  CtrlMsg rep;
  int fd = -1;
  while (true) {
    CSM_CHECK(ctrl_.Recv(&rep, &fd) && "peer died during segment bootstrap");
    if (rep.kind == CtrlKind::kSegFd) {
      CSM_CHECK(fd >= 0);
      return fd;
    }
    if (fd >= 0) {
      close(fd);
    }
  }
}

void ShmTransport::BeginBoot() {
  McTransport::BeginBoot();
  peer_index_.clear();
  if (cluster()) {
    CSM_CHECK(ctrl_.Send(CtrlMsg{CtrlKind::kSegReset, -1, 0, 0}));
  }
}

void ShmTransport::BeginRun() {
  if (cluster()) {
    BarrierLastResort();
  }
}

void ShmTransport::BarrierLastResort() {
  CSM_CHECK(cluster());
  CSM_CHECK(ctrl_.Send(CtrlMsg{CtrlKind::kBarrier, node_, 0, 0}));
  CtrlMsg msg;
  while (true) {
    if (!ctrl_.Recv(&msg)) {
      peers_verified_ = false;
      CSM_CHECK(false && "shm barrier: control plane closed (peer crashed?)");
    }
    if (msg.kind == CtrlKind::kBarrierGo) {
      return;
    }
  }
}

void ShmTransport::EndRun() {
  if (!cluster()) {
    return;
  }
  // Cross-process visibility proof: for every peer-hosted segment, compare
  // our checksum of the mapping the run wrote through against the owning
  // peer's checksum over its own independent mapping of the same memfd.
  for (SegmentId s = 0; s < segments_.size(); ++s) {
    if (peer_index_[s] < 0) {
      continue;
    }
    const std::uint64_t local = Fnv64(bases_[s], segments_[s].bytes);
    const CtrlMsg req{CtrlKind::kChecksum, static_cast<std::int32_t>(segments_[s].owner),
                      static_cast<std::uint32_t>(peer_index_[s]), 0};
    if (!ctrl_.Send(req)) {
      peers_verified_ = false;
      return;
    }
    CtrlMsg rep;
    while (true) {
      if (!ctrl_.Recv(&rep)) {
        peers_verified_ = false;
        return;
      }
      if (rep.kind == CtrlKind::kChecksumRep) {
        break;
      }
    }
    const std::uint64_t remote =
        static_cast<std::uint64_t>(rep.a) | (static_cast<std::uint64_t>(rep.b) << 32);
    if (remote != local) {
      peers_verified_ = false;
      std::fprintf(stderr,
                   "shm EndRun: checksum mismatch on segment %u (owner %d): "
                   "lead=%016llx peer=%016llx\n",
                   s, segments_[s].owner, static_cast<unsigned long long>(local),
                   static_cast<unsigned long long>(remote));
    }
  }
}

}  // namespace cashmere
