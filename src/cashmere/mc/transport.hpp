// McTransport — the pluggable remote-write transport behind McHub.
//
// DEC's Memory Channel is a remote-write network: the full vocabulary the
// Cashmere protocol needs from it is five operations (one unordered word
// write, an unordered word-stream write, an RLE diff-run scatter, and the
// totally-ordered broadcast/exchange pair used for control words), plus
// segment registration so receive regions can be named position-
// independently. This header defines that vocabulary as a typed `McOp`
// descriptor and an abstract `McTransport` that executes it, so the MC
// layer can be re-pointed at different "wires":
//
//   InProcTransport (mc/inproc_transport.hpp) — the historical behaviour:
//     every emulated node lives in this process, a remote write is an
//     atomic 32-bit store into the receiver's memory, ordering is a spin
//     lock. The default; counters are byte-identical to the pre-transport
//     McHub.
//   ShmTransport (mc/shm_transport.hpp) — one OS process per node: arenas
//     live on memfd_create segments mapped into every node process, so a
//     remote write really lands in another process's address space;
//     ordered operations serialize through a futex-or-spin lock word in a
//     shared control segment; bootstrap/barrier/teardown ride a small UDS
//     control plane (mc/control_plane.hpp, tools/cashmere_launch).
//
// McHub stays the accounting and bus-reservation chokepoint: every op is
// issued through McHub::Issue, which charges traffic once (single funnel)
// and delegates the raw write to the bound transport.
#ifndef CASHMERE_MC_TRANSPORT_HPP_
#define CASHMERE_MC_TRANSPORT_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/types.hpp"

#include <memory>

namespace cashmere {

class InProcTransport;
struct Config;

// Traffic classes, for the Table 3 "Data" row and the MC accounting tests.
enum class Traffic : int {
  kDirectory = 0,
  kSyncObject,
  kWriteNotice,
  kRequest,
  kPageData,   // full page transfers (fetch replies, exclusive flushes)
  kDiffData,   // outgoing diffs flushed to home nodes
  kNumClasses,
};
inline constexpr int kNumTrafficClasses = static_cast<int>(Traffic::kNumClasses);

// --- Segments -------------------------------------------------------------
// A segment is one registered shared-memory region (an arena, in practice).
// Segment ids are dense and assigned in registration order; with arenas
// registered unit-by-unit at Runtime construction, segment id == unit id.

using SegmentId = std::uint32_t;
inline constexpr SegmentId kInvalidSegment = static_cast<SegmentId>(-1);

struct SegmentInfo {
  int fd = -1;             // backing memfd (not owned by the transport)
  std::size_t bytes = 0;
  UnitId owner = -1;       // unit whose "physical memory" this segment is
};

// Position-independent name for a page frame: segment + byte offset. A
// frame ref is valid in every process of the cluster, unlike a raw
// pointer, because shm-mapped arenas land at different base addresses per
// process. Resolution back to a local pointer is the inline fast path
// McTransport::Resolve below — one indexed load, so inproc mode pays
// nothing for the indirection.
struct PageFrameRef {
  SegmentId seg = kInvalidSegment;
  std::uint64_t offset = 0;
};

// --- The remote-write vocabulary ------------------------------------------

enum class McOpKind : std::uint8_t {
  kWrite32 = 0,           // unordered remote write of one word
  kWriteStream,           // unordered remote write of a word stream
  kWriteRun,              // RLE diff run: scatter payload at a word offset
  kOrderedBroadcast32,    // totally-ordered broadcast of one word
  kOrderedExchange32,     // ordered read-modify-broadcast (returns previous)
};

// One remote-write operation, fully described. Call sites build a typed
// descriptor with the named constructors and funnel it through
// McHub::Issue; the per-op wire-byte math lives here (WireBytes) so the
// accounting cannot drift between backends.
struct McOp {
  McOpKind kind = McOpKind::kWrite32;
  Traffic traffic = Traffic::kDirectory;
  void* dst = nullptr;          // destination word or stream/run base
  const void* src = nullptr;    // payload (stream/run ops)
  std::uint32_t value = 0;      // payload (word ops)
  std::size_t words = 0;        // payload length in 32-bit words
  std::size_t offset_words = 0; // run scatter offset from dst
  std::size_t header_bytes = 0; // run framing charged by a cost variant

  // Unordered remote write of a single word.
  static McOp Word(std::uint32_t* dst, std::uint32_t value, Traffic t) {
    McOp op;
    op.kind = McOpKind::kWrite32;
    op.traffic = t;
    op.dst = dst;
    op.value = value;
    return op;
  }
  // Unordered remote write of `words` words into one destination node's
  // receive region (page data, diffs, write notices). Word-atomic.
  static McOp Stream(void* dst, const void* src, std::size_t words, Traffic t) {
    McOp op;
    op.kind = McOpKind::kWriteStream;
    op.traffic = t;
    op.dst = dst;
    op.src = src;
    op.words = words;
    return op;
  }
  // One RLE diff run: scatters `nwords` payload words into `dst_base` at
  // word offset `offset_words`. On MC a diff run is raw remote writes of
  // the modified words, so traffic is the payload bytes only; under the
  // Config::diff.charge_run_headers cost variant the caller passes the
  // run's framing overhead as `header_bytes`, accounted into the same
  // traffic class without changing the write count.
  static McOp Run(void* dst_base, std::size_t offset_words, const void* payload,
                  std::size_t nwords, Traffic t, std::size_t header_bytes = 0) {
    McOp op;
    op.kind = McOpKind::kWriteRun;
    op.traffic = t;
    op.dst = dst_base;
    op.src = payload;
    op.words = nwords;
    op.offset_words = offset_words;
    op.header_bytes = header_bytes;
    return op;
  }
  // Totally-ordered broadcast of one word to a replicated location.
  // Issue returns only after the write is globally performed (loop-back
  // semantics). Traffic is accounted as one write per replica.
  static McOp Broadcast(std::uint32_t* location, std::uint32_t value, Traffic t) {
    McOp op;
    op.kind = McOpKind::kOrderedBroadcast32;
    op.traffic = t;
    op.dst = location;
    op.value = value;
    return op;
  }
  // Ordered read-modify-broadcast: applies `value` and returns the previous
  // value, all inside the global order. Used to resolve races the real
  // protocol resolves through MC's total write ordering (e.g. concurrent
  // exclusive-mode claims).
  static McOp Exchange(std::uint32_t* location, std::uint32_t value, Traffic t) {
    McOp op;
    op.kind = McOpKind::kOrderedExchange32;
    op.traffic = t;
    op.dst = location;
    op.value = value;
    return op;
  }

  // Wire bytes this op charges, exactly matching the historical per-call
  // accounting: broadcasts charge one word per replica, runs charge payload
  // plus any framing the cost variant added.
  std::size_t WireBytes(int units) const {
    switch (kind) {
      case McOpKind::kWrite32:
        return kWordBytes;
      case McOpKind::kWriteStream:
        return words * kWordBytes;
      case McOpKind::kWriteRun:
        return words * kWordBytes + header_bytes;
      case McOpKind::kOrderedBroadcast32:
      case McOpKind::kOrderedExchange32:
        return kWordBytes * static_cast<std::size_t>(units);
    }
    return 0;
  }
};

// --- The transport interface ----------------------------------------------

class McTransport {
 public:
  McTransport() = default;
  virtual ~McTransport() = default;
  McTransport(const McTransport&) = delete;
  McTransport& operator=(const McTransport&) = delete;

  virtual const char* name() const = 0;

  // Executes the remote write `op` describes against this transport's
  // wire. Returns the previous word value for kOrderedExchange32, 0 for
  // every other kind. Must provide: 32-bit write atomicity for all kinds,
  // a single global order observed identically everywhere for the ordered
  // kinds, and loop-back (the write is globally performed on return).
  virtual std::uint32_t Execute(const McOp& op) = 0;

  // --- Segment registration (control plane) -------------------------------

  // Announces a shared segment and this process's mapping of it. Returns
  // the dense SegmentId used by PageFrameRef. `local_base` is where the
  // caller mapped the segment in this address space.
  virtual SegmentId RegisterArena(const SegmentInfo& info, std::byte* local_base) {
    segments_.push_back(info);
    bases_.push_back(local_base);
    return static_cast<SegmentId>(segments_.size() - 1);
  }

  // Local mapping of a registered segment — in another process of the
  // cluster this returns a different address for the same frames; that is
  // the indirection PageFrameRef exists to cross.
  virtual std::byte* MapRemote(SegmentId seg) const {
    CSM_CHECK(seg < bases_.size());
    return bases_[static_cast<std::size_t>(seg)];
  }

  // Resolves a frame ref to a pointer in this process. Inline, one indexed
  // load — the fast path that keeps base-relative addressing free for the
  // in-process backend.
  std::byte* Resolve(PageFrameRef ref) const {
    return bases_[static_cast<std::size_t>(ref.seg)] + ref.offset;
  }

  std::size_t segment_count() const { return segments_.size(); }
  const SegmentInfo& segment(SegmentId seg) const {
    CSM_CHECK(seg < segments_.size());
    return segments_[static_cast<std::size_t>(seg)];
  }

  // Number of OS processes in the cluster this transport spans; 1 for
  // in-process transports and shm solo mode. The runtime uses it to
  // validate that the configured cluster shape matches what was launched.
  virtual int cluster_processes() const { return 1; }

  // If the transport hosts the backing storage for unit arenas (the shm
  // backend: segments are created by the owning node's process and
  // fd-passed at bootstrap), returns a dup'd fd the caller adopts and maps.
  // Returns -1 when the caller should create its own backing (inproc).
  virtual int ArenaFdFor(UnitId unit, std::size_t bytes) { return -1; }

  // Devirtualization hook: non-null iff this is the in-process backend.
  // McHub caches the result so the default configuration dispatches through
  // a direct (inlinable) call instead of the vtable — that is what keeps
  // the seam within the bench_transport ≤5% gate.
  virtual InProcTransport* AsInProc() { return nullptr; }

  // --- Control-plane handshake --------------------------------------------
  // BeginBoot: a new Runtime is about to register arenas against this
  // transport. A transport can outlive a Runtime (the auto-dilation rerun
  // binds a second Runtime to the same cluster), so the segment table
  // resets here; the shm backend additionally tells its peers to drop the
  // previous boot's segments (kSegReset).
  virtual void BeginBoot() {
    segments_.clear();
    bases_.clear();
  }
  // Cluster-wide hooks around each Runtime::Run: bootstrap synchronization
  // before processor threads start, and post-run verification/teardown
  // (the shm backend checks that every peer process observes the bytes the
  // run wrote into its segments). No-ops for in-process transports.
  virtual void BeginRun() {}
  virtual void EndRun() {}

  // --- Post-run reporting --------------------------------------------------
  // Measured wall-clock nanoseconds spent inside Execute, for transports
  // whose wire is real (shm). 0 for modeled transports, whose cost lives in
  // virtual time instead.
  virtual std::uint64_t wire_ns() const { return 0; }
  // False iff a cross-process verification step failed (a peer's view of a
  // shared segment disagreed with ours, or a peer died). Always true for
  // single-process transports.
  virtual bool peers_verified() const { return true; }

 protected:
  std::vector<SegmentInfo> segments_;
  std::vector<std::byte*> bases_;  // this process's mapping per segment
};

// Builds the transport Config::mc selects: kInProc -> InProcTransport,
// kShm -> ShmTransport (cluster mode when the cashmere_launch environment
// is present, solo otherwise).
std::unique_ptr<McTransport> MakeTransport(const Config& cfg);

}  // namespace cashmere

#endif  // CASHMERE_MC_TRANSPORT_HPP_
