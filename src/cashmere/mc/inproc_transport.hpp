// InProcTransport: the historical single-process MC emulation, behind the
// McTransport seam.
//
// All emulated nodes live in this process, so a remote write is an atomic
// 32-bit store executed by the sender directly into the receiver's memory.
// That reproduces MC's observable behaviour exactly:
//   - atomicity: std::atomic_ref<uint32_t> stores (common/word_access.hpp);
//   - global ordering for control traffic: the ordered ops serialize
//     through a spin lock (MC is physically a bus);
//   - loop-back: a broadcast is globally performed when Execute returns.
// Replicated regions (directory, lock arrays) are stored once rather than
// once per node: because updates are applied atomically inside the hub,
// every per-node replica would be bitwise identical at all times, so a
// single copy is observationally equivalent; broadcast *traffic* is still
// accounted per replica (McOp::WireBytes).
//
// The class is final and McHub keeps a devirtualized fast-path pointer to
// it (McTransport::AsInProc), so in the default configuration the seam
// compiles down to the same direct calls the pre-transport hub made.
#ifndef CASHMERE_MC_INPROC_TRANSPORT_HPP_
#define CASHMERE_MC_INPROC_TRANSPORT_HPP_

#include "cashmere/common/spin.hpp"
#include "cashmere/common/word_access.hpp"
#include "cashmere/mc/transport.hpp"

namespace cashmere {

// Atomic word-stream copy (defined in hub.cpp; also declared in hub.hpp).
void CopyWords32(void* dst, const void* src, std::size_t words);

class InProcTransport final : public McTransport {
 public:
  InProcTransport() = default;

  const char* name() const override { return "inproc"; }

  std::uint32_t Execute(const McOp& op) override { return ExecuteInline(op); }
  InProcTransport* AsInProc() override { return this; }

  // Non-virtual body McHub calls through its cached InProcTransport*.
  // Defined here, in the header, on purpose: McHub::Issue call sites build
  // the McOp with a compile-time-constant kind, so full inlining folds the
  // dispatch switch away and the seam costs the same instructions the
  // pre-transport per-method hub did (the bench_transport ≤5% gate). By
  // value for the same reason as McHub::Issue: no reference to the
  // descriptor survives on this path, so it can be scalarized.
  std::uint32_t ExecuteInline(McOp op) {
    switch (op.kind) {
      case McOpKind::kWrite32:
        StoreWord32Release(op.dst, op.value);
        return 0;
      case McOpKind::kWriteStream:
        CopyWords32(op.dst, op.src, op.words);
        return 0;
      case McOpKind::kWriteRun:
        CopyWords32(static_cast<std::byte*>(op.dst) + op.offset_words * kWordBytes,
                    op.src, op.words);
        return 0;
      case McOpKind::kOrderedBroadcast32: {
        SpinLockGuard guard(order_lock_);
        StoreWord32Release(op.dst, op.value);
        return 0;
      }
      case McOpKind::kOrderedExchange32: {
        SpinLockGuard guard(order_lock_);
        const std::uint32_t prev = LoadWord32Acquire(op.dst);
        StoreWord32Release(op.dst, op.value);
        return prev;
      }
    }
    return 0;
  }

 private:
  // Capability ordering the "bus": the ordered-op critical sections model
  // MC's single global write order. It guards no transport field — the
  // serialized stores land in caller-owned replicated locations — so there
  // is no GUARDED_BY; the RAII guard plus the SpinLock capability
  // annotations give the analysis the pairing.
  SpinLock order_lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_MC_INPROC_TRANSPORT_HPP_
