#include "cashmere/mc/control_plane.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cashmere/common/logging.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

// --- CtrlEndpoint ---------------------------------------------------------

CtrlEndpoint::~CtrlEndpoint() { Close(); }

CtrlEndpoint::CtrlEndpoint(CtrlEndpoint&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), owned_(std::exchange(other.owned_, false)) {}

CtrlEndpoint& CtrlEndpoint::operator=(CtrlEndpoint&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    owned_ = std::exchange(other.owned_, false);
  }
  return *this;
}

void CtrlEndpoint::Close() {
  if (owned_ && fd_ >= 0) {
    close(fd_);
  }
  fd_ = -1;
  owned_ = false;
}

bool CtrlEndpoint::MakePair(CtrlEndpoint* a, CtrlEndpoint* b) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fds) != 0) {
    return false;
  }
  *a = CtrlEndpoint(fds[0]);
  *b = CtrlEndpoint(fds[1]);
  return true;
}

bool CtrlEndpoint::Send(const CtrlMsg& msg, int fd_to_pass) {
  iovec iov;
  iov.iov_base = const_cast<CtrlMsg*>(&msg);
  iov.iov_len = sizeof(msg);
  msghdr hdr{};
  hdr.msg_iov = &iov;
  hdr.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  if (fd_to_pass >= 0) {
    // csm-lint: allow(raw-page-copy) -- SCM_RIGHTS ancillary buffer, local
    // control-plane bytes; no shared-page data moves here.
    std::memset(cbuf, 0, sizeof(cbuf));
    hdr.msg_control = cbuf;
    hdr.msg_controllen = sizeof(cbuf);
    cmsghdr* cmsg = CMSG_FIRSTHDR(&hdr);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    // csm-lint: allow(raw-page-copy) -- packs the passed fd into the cmsg,
    // per the CMSG_DATA aliasing rules; not page data.
    std::memcpy(CMSG_DATA(cmsg), &fd_to_pass, sizeof(int));
  }
  ssize_t n;
  do {
    n = sendmsg(fd_, &hdr, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  return n == static_cast<ssize_t>(sizeof(msg));
}

bool CtrlEndpoint::Recv(CtrlMsg* msg, int* received_fd) {
  if (received_fd != nullptr) {
    *received_fd = -1;
  }
  iovec iov;
  iov.iov_base = msg;
  iov.iov_len = sizeof(*msg);
  msghdr hdr{};
  hdr.msg_iov = &iov;
  hdr.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  hdr.msg_control = cbuf;
  hdr.msg_controllen = sizeof(cbuf);
  ssize_t n;
  do {
    n = recvmsg(fd_, &hdr, 0);
  } while (n < 0 && errno == EINTR);
  if (n != static_cast<ssize_t>(sizeof(*msg))) {
    return false;  // EOF, short packet, or error: the peer is gone
  }
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&hdr); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&hdr, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
      int fd;
      // csm-lint: allow(raw-page-copy) -- unpacks the received fd from the
      // cmsg, per the CMSG_DATA aliasing rules; not page data.
      std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      if (received_fd != nullptr) {
        *received_fd = fd;
      } else {
        close(fd);  // unexpected fd: do not leak it
      }
    }
  }
  return true;
}

// --- Checksums ------------------------------------------------------------

std::uint64_t Fnv64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- Peer service loop ----------------------------------------------------

namespace {

struct PeerSeg {
  int fd = -1;
  void* base = nullptr;
  std::size_t bytes = 0;
};

void DropSegs(std::vector<PeerSeg>* segs) {
  for (PeerSeg& s : *segs) {
    if (s.base != nullptr) {
      munmap(s.base, s.bytes);
    }
    if (s.fd >= 0) {
      close(s.fd);
    }
  }
  segs->clear();
}

}  // namespace

int ShmPeerServe(CtrlEndpoint ctrl, int unit) {
  std::vector<PeerSeg> segs;
  if (!ctrl.Send(CtrlMsg{CtrlKind::kHello, unit, 0, 0})) {
    return 1;
  }
  CtrlMsg msg;
  while (ctrl.Recv(&msg)) {
    switch (msg.kind) {
      case CtrlKind::kSegReset:
        DropSegs(&segs);
        break;
      case CtrlKind::kSegCreate: {
        const std::size_t bytes =
            static_cast<std::size_t>(msg.a) | (static_cast<std::size_t>(msg.b) << 32);
        PeerSeg seg;
        seg.bytes = bytes;
        seg.fd = memfd_create("cashmere-peer-arena", 0);
        if (seg.fd < 0 || ftruncate(seg.fd, static_cast<off_t>(bytes)) != 0) {
          DropSegs(&segs);
          return 1;
        }
        seg.base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, seg.fd, 0);
        if (seg.base == MAP_FAILED) {
          DropSegs(&segs);
          return 1;
        }
        // The fd rides back as SCM_RIGHTS; we keep our own fd + mapping so
        // checksum probes read through *this* process's view of the pages.
        if (!ctrl.Send(CtrlMsg{CtrlKind::kSegFd, unit, msg.a, msg.b}, seg.fd)) {
          DropSegs(&segs);
          return 1;
        }
        segs.push_back(seg);
        break;
      }
      case CtrlKind::kChecksum: {
        const std::size_t idx = msg.a;
        if (idx >= segs.size()) {
          return 1;
        }
        const std::uint64_t h = Fnv64(segs[idx].base, segs[idx].bytes);
        if (!ctrl.Send(CtrlMsg{CtrlKind::kChecksumRep, unit,
                               static_cast<std::uint32_t>(h),
                               static_cast<std::uint32_t>(h >> 32)})) {
          return 1;
        }
        break;
      }
      case CtrlKind::kBarrier:
        // Barrier-of-last-resort arrival ack; the launcher releases everyone
        // with kBarrierGo once all units answered.
        if (!ctrl.Send(CtrlMsg{CtrlKind::kBarrier, unit, 0, 0})) {
          return 1;
        }
        break;
      case CtrlKind::kBarrierGo:
        break;  // peers do not block on the release
      case CtrlKind::kShutdown:
        DropSegs(&segs);
        return 0;
      default:
        return 1;
    }
  }
  DropSegs(&segs);
  return 1;  // launcher vanished without kShutdown
}

// --- ShmLauncher ----------------------------------------------------------

ShmLauncher::~ShmLauncher() {
  if (relay_.joinable()) {
    Join();
  }
}

bool ShmLauncher::Start(int nodes) {
  CSM_CHECK(nodes >= 1 && !relay_.joinable());
  nodes_ = nodes;
  pids_.assign(static_cast<std::size_t>(nodes), -1);
  links_.resize(static_cast<std::size_t>(nodes));
  // Lead link: the lead node runs in this process (tests) or in an exec'd
  // child that inherited the other end (the CLI tool dups it there).
  CtrlEndpoint lead_far;
  if (!CtrlEndpoint::MakePair(&links_[0], &lead_far)) {
    return false;
  }
  lead_ = std::move(lead_far);
  for (int u = 1; u < nodes; ++u) {
    CtrlEndpoint near_end;
    CtrlEndpoint far_end;
    if (!CtrlEndpoint::MakePair(&near_end, &far_end)) {
      return false;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      return false;
    }
    if (pid == 0) {
      // Peer process: close every inherited launcher-side and lead-side fd
      // except our own link — socket EOF only tracks process death if no
      // stray copy of an endpoint survives in another child. _exit skips
      // atexit machinery inherited from the parent (gtest, stdio flushes).
      near_end = CtrlEndpoint();
      lead_ = CtrlEndpoint();
      for (CtrlEndpoint& link : links_) {
        link = CtrlEndpoint();
      }
      _exit(ShmPeerServe(std::move(far_end), u));
    }
    pids_[static_cast<std::size_t>(u)] = pid;
    links_[static_cast<std::size_t>(u)] = std::move(near_end);
  }
  relay_ = std::thread([this] { Relay(); });
  return true;
}

CtrlEndpoint ShmLauncher::TakeLeadEndpoint() { return std::move(lead_); }

pid_t ShmLauncher::peer_pid(int unit) const {
  CSM_CHECK(unit >= 1 && unit < nodes_);
  return pids_[static_cast<std::size_t>(unit)];
}

void ShmLauncher::KillPeer(int unit, int sig) { kill(peer_pid(unit), sig); }

void ShmLauncher::CloseLauncherFdsInChild() {
  // Runs between fork and exec in the child that becomes the lead process
  // (tools/cashmere_launch). Only raw close(2) — the parent is already
  // multi-threaded (relay), so the child must stay async-signal-safe. The
  // lead endpoint itself was moved out via TakeLeadEndpoint and survives.
  for (const CtrlEndpoint& link : links_) {
    if (link.valid()) {
      close(link.fd());
    }
  }
}

void ShmLauncher::Relay() {
  // Star relay: every node talks only to us; we forward by target unit and
  // implement the barrier count. Any peer EOF before the lead's kShutdown is
  // a crash: kill the survivors and tear the lead link down so a blocked
  // lead Recv fails fast instead of hanging.
  bool shutdown_sent = false;
  int barrier_arrivals = 0;
  std::vector<bool> open(static_cast<std::size_t>(nodes_), true);
  auto open_count = [&] {
    int n = 0;
    for (int u = 0; u < nodes_; ++u) {
      n += open[static_cast<std::size_t>(u)] ? 1 : 0;
    }
    return n;
  };
  while (open_count() > 0) {
    std::vector<pollfd> pfds;
    std::vector<int> pfd_unit;
    for (int u = 0; u < nodes_; ++u) {
      if (open[static_cast<std::size_t>(u)]) {
        pfds.push_back(pollfd{links_[static_cast<std::size_t>(u)].fd(), POLLIN, 0});
        pfd_unit.push_back(u);
      }
    }
    if (poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const int u = pfd_unit[i];
      CtrlEndpoint& link = links_[static_cast<std::size_t>(u)];
      CtrlMsg msg;
      int fd = -1;
      if (!link.Recv(&msg, &fd)) {
        open[static_cast<std::size_t>(u)] = false;
        if (!shutdown_sent) {
          // Crash before clean shutdown: kill everyone else, break the
          // remaining links, record the failure.
          peer_crashed_ = true;
          for (int v = 1; v < nodes_; ++v) {
            if (v != u && pids_[static_cast<std::size_t>(v)] > 0) {
              kill(pids_[static_cast<std::size_t>(v)], SIGKILL);
            }
          }
          for (int v = 0; v < nodes_; ++v) {
            links_[static_cast<std::size_t>(v)] = CtrlEndpoint();
            open[static_cast<std::size_t>(v)] = false;
          }
          return;
        }
        continue;
      }
      switch (msg.kind) {
        case CtrlKind::kHello:
          break;
        case CtrlKind::kSegReset:
        case CtrlKind::kShutdown:
          for (int v = 1; v < nodes_; ++v) {
            if (open[static_cast<std::size_t>(v)]) {
              links_[static_cast<std::size_t>(v)].Send(msg);
            }
          }
          if (msg.kind == CtrlKind::kShutdown) {
            shutdown_sent = true;
            // The lead is done with the control plane; drop its link so the
            // loop ends once the peers have drained out.
            links_[0] = CtrlEndpoint();
            open[0] = false;
          }
          break;
        case CtrlKind::kSegCreate:
        case CtrlKind::kChecksum:
          // Lead -> specific peer.
          if (msg.unit >= 1 && msg.unit < nodes_ &&
              open[static_cast<std::size_t>(msg.unit)]) {
            links_[static_cast<std::size_t>(msg.unit)].Send(msg);
          }
          break;
        case CtrlKind::kSegFd:
        case CtrlKind::kChecksumRep:
          // Peer -> lead; a passed fd is forwarded and our relay copy closed.
          if (open[0]) {
            links_[0].Send(msg, fd);
          }
          break;
        case CtrlKind::kBarrier:
          if (u == 0) {
            // The lead opens the barrier round: poll every peer for life.
            for (int v = 1; v < nodes_; ++v) {
              if (open[static_cast<std::size_t>(v)]) {
                links_[static_cast<std::size_t>(v)].Send(msg);
              }
            }
          }
          if (++barrier_arrivals == nodes_) {
            barrier_arrivals = 0;
            const CtrlMsg go{CtrlKind::kBarrierGo, -1, 0, 0};
            for (int v = 0; v < nodes_; ++v) {
              if (open[static_cast<std::size_t>(v)]) {
                links_[static_cast<std::size_t>(v)].Send(go);
              }
            }
          }
          break;
        default:
          break;
      }
      if (fd >= 0) {
        close(fd);  // relay's copy; the receiver got its own via SCM_RIGHTS
      }
    }
  }
}

bool ShmLauncher::Join() {
  if (relay_.joinable()) {
    relay_.join();
  }
  bool all_clean = !peer_crashed_;
  for (int u = 1; u < nodes_; ++u) {
    pid_t& pid = pids_[static_cast<std::size_t>(u)];
    if (pid > 0) {
      int status = 0;
      waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        all_clean = false;
      }
      pid = -1;
    }
  }
  return all_clean;
}

}  // namespace cashmere
