#include "cashmere/mc/transport.hpp"

#include "cashmere/common/config.hpp"
#include "cashmere/mc/inproc_transport.hpp"
#include "cashmere/mc/shm_transport.hpp"

namespace cashmere {

std::unique_ptr<McTransport> MakeTransport(const Config& cfg) {
  if (cfg.mc.transport == McTransportKind::kShm) {
    return ShmTransport::FromEnv();
  }
  return std::make_unique<InProcTransport>();
}

}  // namespace cashmere
