// Memory Channel (MC) hub: the accounting and bus-reservation chokepoint.
//
// DEC's Memory Channel is a remote-write network: writes (32-bit granularity)
// to a transmit region are forwarded through a hub and DMA-ed into receive
// regions with the same identifier on other nodes; remote reads do not
// exist. MC guarantees (a) 32-bit write atomicity, (b) a single global order
// for writes to the same region, observed identically on every node, and
// (c) optional loop-back so a writer can tell when its own write has been
// globally performed.
//
// The raw wire behind those guarantees is pluggable (mc/transport.hpp):
// InProcTransport emulates the cluster inside one process, ShmTransport
// spreads it across one OS process per node on shared memfd segments. The
// hub itself is wire-agnostic — protocol code builds a typed McOp and calls
// Issue(), which delegates the write to the bound transport and charges
// traffic exactly once. Counters under the default in-process transport are
// byte-identical to the historical per-method accounting (pinned by
// mc_test's InprocCountersMatchPrePluggableAccounting).
#ifndef CASHMERE_MC_HUB_HPP_
#define CASHMERE_MC_HUB_HPP_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "cashmere/common/trace.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/common/word_access.hpp"
#include "cashmere/mc/inproc_transport.hpp"
#include "cashmere/mc/transport.hpp"

namespace cashmere {

// Atomic 32-bit word copy helpers. All shared-page data movement in the
// system goes through these, mirroring MC's 32-bit write atomicity and
// keeping concurrent access by race-free programs well defined. The word
// accesses themselves are the shared std::atomic_ref helpers in
// common/word_access.hpp, which the diff engine uses too.
void CopyWords32(void* dst, const void* src, std::size_t words);
std::uint32_t LoadWord32(const void* src);
void StoreWord32(void* dst, std::uint32_t value);

class McHub {
 public:
  // Owns a default in-process transport.
  explicit McHub(int units);
  // Binds an externally-owned transport (must outlive the hub).
  McHub(int units, McTransport* transport);
  McHub(const McHub&) = delete;
  McHub& operator=(const McHub&) = delete;

  int units() const { return units_; }
  McTransport& transport() { return *transport_; }
  const McTransport& transport() const { return *transport_; }

  // The single remote-write funnel: executes `op` on the bound transport
  // and charges its wire bytes to the op's traffic class. Returns the
  // previous word value for exchange ops, 0 otherwise. The descriptor is
  // passed by value everywhere on this path — including into the
  // out-of-line IssueVirtual fallback — so its address never escapes and
  // the compiler can scalarize it; call sites build the op with a
  // compile-time-constant kind, so the dispatch and WireBytes switches
  // fold away on the devirtualized default path (the bench_transport
  // ≤5% gate). Calling Execute(const McOp&) here directly would leak &op
  // into a virtual call and pin the descriptor in memory.
  std::uint32_t Issue(McOp op) {
    if (inproc_ != nullptr) {
      const std::uint32_t prev = inproc_->ExecuteInline(op);
      AccountWrite(op.traffic, op.WireBytes(units_));
      return prev;
    }
    // Rebuilt field-by-field so this cold block is the only place a whole
    // McOp object exists: `op` itself then has scalar uses only, and the
    // hot path above carries no aggregate stores at all.
    return IssueVirtual(McOp{op.kind, op.traffic, op.dst, op.src, op.value,
                             op.words, op.offset_words, op.header_bytes});
  }

  // Account traffic that was moved by other means (e.g. diff runs applied
  // word by word inside the diff engine, directory words stored under a
  // lock already held). Inline: with ExecuteInline also in its header, the
  // default Issue path compiles down to the store plus these two relaxed
  // fetch-adds — the same instructions the pre-transport hub executed.
  void AccountWrite(Traffic t, std::size_t bytes) {
    bytes_[static_cast<int>(t)].fetch_add(bytes, std::memory_order_relaxed);
    writes_[static_cast<int>(t)].fetch_add(1, std::memory_order_relaxed);
    // Single chokepoint for MC traffic: every Issue() lands here, so one
    // emit covers the hub.
    if (TraceActive()) {
      TraceEmit(EventKind::kMcWrite, kNoTracePage, 0, static_cast<std::uint32_t>(t),
                static_cast<std::uint64_t>(bytes));
    }
  }

  std::uint64_t BytesSent(Traffic t) const {
    return bytes_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }
  std::uint64_t WritesSent(Traffic t) const {
    return writes_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }
  std::uint64_t TotalBytes() const;
  // Data traffic as counted by the paper's Table 3 "Data" row (page data +
  // diffs + write notices; excludes directory and synchronization words).
  std::uint64_t DataBytes() const;

  // --- Bus occupancy (virtual time) --------------------------------------
  // MC is a serial interconnect: bulk transfers queue behind each other.
  // Reserves the bus for `bytes` starting no earlier than `earliest`;
  // returns the virtual time at which the transfer completes. ns-per-byte
  // is configured by the runtime from the (scaled) cost model; 0 disables
  // occupancy modeling.
  void set_ns_per_byte(double ns_per_byte) { ns_per_byte_ = ns_per_byte; }
  VirtTime ReserveBus(VirtTime earliest, std::size_t bytes);

 private:
  // Cold path for non-inproc backends: the vtable dispatch to
  // McTransport::Execute plus the traffic charge. Out of line (hub.cpp)
  // and by value on purpose — see Issue.
  std::uint32_t IssueVirtual(McOp op);

  int units_;
  std::unique_ptr<McTransport> owned_transport_;  // set by the 1-arg ctor
  McTransport* transport_;
  InProcTransport* inproc_;  // devirtualized fast path; null for other backends
  // Set once by the runtime before processor threads start; read-only after.
  double ns_per_byte_ = 0.0;
  std::atomic<std::uint64_t> bus_clock_{0};
  std::array<std::atomic<std::uint64_t>, kNumTrafficClasses> bytes_{};
  std::array<std::atomic<std::uint64_t>, kNumTrafficClasses> writes_{};
};

}  // namespace cashmere

#endif  // CASHMERE_MC_HUB_HPP_
