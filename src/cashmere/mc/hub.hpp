// Memory Channel (MC) simulator.
//
// DEC's Memory Channel is a remote-write network: writes (32-bit granularity)
// to a transmit region are forwarded through a hub and DMA-ed into receive
// regions with the same identifier on other nodes; remote reads do not
// exist. MC guarantees (a) 32-bit write atomicity, (b) a single global order
// for writes to the same region, observed identically on every node, and
// (c) optional loop-back so a writer can tell when its own write has been
// globally performed.
//
// In this reproduction all emulated nodes live in one process, so a remote
// write is an atomic 32-bit store executed by the sender directly into the
// receiver's memory. That reproduces MC's observable behaviour exactly:
//   - atomicity: std::atomic_ref<uint32_t> stores;
//   - global ordering for control traffic: OrderedBroadcast32 serializes
//     through the hub lock (MC is physically a bus);
//   - loop-back: a broadcast is globally performed when the call returns.
// Replicated regions (directory, lock arrays) are stored once rather than
// once per node: because updates are applied atomically inside the hub,
// every per-node replica would be bitwise identical at all times, so a
// single copy is observationally equivalent; broadcast *traffic* is still
// accounted per replica.
#ifndef CASHMERE_MC_HUB_HPP_
#define CASHMERE_MC_HUB_HPP_

#include <array>
#include <atomic>
#include <cstdint>

#include "cashmere/common/spin.hpp"
#include "cashmere/common/thread_safety.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/common/word_access.hpp"

namespace cashmere {

// Traffic classes, for the Table 3 "Data" row and the MC accounting tests.
enum class Traffic : int {
  kDirectory = 0,
  kSyncObject,
  kWriteNotice,
  kRequest,
  kPageData,   // full page transfers (fetch replies, exclusive flushes)
  kDiffData,   // outgoing diffs flushed to home nodes
  kNumClasses,
};
inline constexpr int kNumTrafficClasses = static_cast<int>(Traffic::kNumClasses);

// Atomic 32-bit word copy helpers. All shared-page data movement in the
// system goes through these, mirroring MC's 32-bit write atomicity and
// keeping concurrent access by race-free programs well defined. The word
// accesses themselves are the shared std::atomic_ref helpers in
// common/word_access.hpp, which the diff engine uses too.
void CopyWords32(void* dst, const void* src, std::size_t words);
std::uint32_t LoadWord32(const void* src);
void StoreWord32(void* dst, std::uint32_t value);

class McHub {
 public:
  explicit McHub(int units) : units_(units) {}
  McHub(const McHub&) = delete;
  McHub& operator=(const McHub&) = delete;

  int units() const { return units_; }

  // Totally-ordered broadcast of one 32-bit word to a replicated location.
  // Returns only after the write is globally performed (loop-back
  // semantics). Traffic is accounted as one write per replica.
  void OrderedBroadcast32(std::uint32_t* location, std::uint32_t value, Traffic t);

  // Ordered read-modify-broadcast: applies `value` and returns the previous
  // value, all inside the global order. Used to resolve races that the real
  // protocol resolves through MC's total write ordering (e.g. concurrent
  // exclusive-mode claims).
  std::uint32_t OrderedExchange32(std::uint32_t* location, std::uint32_t value, Traffic t);

  // Unordered remote write of a word stream into one destination node's
  // receive region (page data, diffs, write notices). Word-atomic.
  void WriteStream(void* dst, const void* src, std::size_t words, Traffic t);
  // Remote write of one RLE diff run: scatters `nwords` payload words into
  // `dst_base` at word offset `offset_words`. On MC a diff run is raw
  // remote writes of the modified words, so by default traffic is accounted
  // as the payload bytes only (run descriptors are host-side bookkeeping,
  // tracked by the kDiffRunBytes statistic, not MC traffic). Under the
  // Config::diff.charge_run_headers cost variant the caller passes the
  // run's framing overhead as `header_bytes`, which is accounted into the
  // same traffic class without changing the write count.
  void WriteRun(void* dst_base, std::size_t offset_words, const void* payload,
                std::size_t nwords, Traffic t, std::size_t header_bytes = 0);
  // Remote write of a single word without global ordering.
  void Write32(std::uint32_t* dst, std::uint32_t value, Traffic t);

  // Account traffic that was moved by other means (e.g. diff runs applied
  // word by word inside the diff engine).
  void AccountWrite(Traffic t, std::size_t bytes);

  std::uint64_t BytesSent(Traffic t) const {
    return bytes_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }
  std::uint64_t WritesSent(Traffic t) const {
    return writes_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }
  std::uint64_t TotalBytes() const;
  // Data traffic as counted by the paper's Table 3 "Data" row (page data +
  // diffs + write notices; excludes directory and synchronization words).
  std::uint64_t DataBytes() const;

  // --- Bus occupancy (virtual time) --------------------------------------
  // MC is a serial interconnect: bulk transfers queue behind each other.
  // Reserves the bus for `bytes` starting no earlier than `earliest`;
  // returns the virtual time at which the transfer completes. ns-per-byte
  // is configured by the runtime from the (scaled) cost model; 0 disables
  // occupancy modeling.
  void set_ns_per_byte(double ns_per_byte) { ns_per_byte_ = ns_per_byte; }
  VirtTime ReserveBus(VirtTime earliest, std::size_t bytes);

 private:
  int units_;
  // Capability ordering the "bus": OrderedBroadcast32 / OrderedExchange32
  // critical sections model MC's single global write order. It guards no
  // hub field — the serialized stores land in caller-owned replicated
  // locations — so there is no GUARDED_BY; the RAII guard plus the
  // SpinLock capability annotations give the analysis the pairing.
  SpinLock order_lock_;
  // Set once by the runtime before processor threads start; read-only after.
  double ns_per_byte_ = 0.0;
  std::atomic<std::uint64_t> bus_clock_{0};
  std::array<std::atomic<std::uint64_t>, kNumTrafficClasses> bytes_{};
  std::array<std::atomic<std::uint64_t>, kNumTrafficClasses> writes_{};
};

}  // namespace cashmere

#endif  // CASHMERE_MC_HUB_HPP_
