// Deterministic, cheap pseudo-random number generation for workloads and
// property tests (SplitMix64).
#ifndef CASHMERE_COMMON_RNG_HPP_
#define CASHMERE_COMMON_RNG_HPP_

#include <cstdint>

namespace cashmere {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  std::uint64_t NextBelow(std::uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_RNG_HPP_
