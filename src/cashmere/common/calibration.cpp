#include "cashmere/common/calibration.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cashmere/common/virtual_clock.hpp"

namespace cashmere {

namespace {

// A streaming array kernel representative of the benchmark suite's inner
// loops (SOR/Gauss/Em3d-style: loads, a multiply-add, a store per element).
// It is deliberately vectorizable: the host runs it the way it runs the
// applications, while the in-order, scalar 21064A is modeled below.
double RunKernelOnce(std::vector<double>& a, const std::vector<double>& b,
                     const std::vector<double>& c, int reps) {
  const std::size_t n = a.size();
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 1; i + 1 < n; ++i) {
      a[i] = 0.25 * (b[i - 1] + b[i + 1] + b[i] * c[i]) + 0.5 * a[i];
    }
  }
  return a[n / 2];
}

double MeasureScale() {
  // Model: per element the kernel needs ~4 loads, 1 store, 3 FP adds, 2 FP
  // multiplies plus loop overhead. On the in-order, dual-issue 21064A with
  // its multi-cycle FP latencies and no L1-miss overlap this is roughly 12
  // cycles per element at 233 MHz.
  constexpr double kAlphaCyclesPerElem = 12.0;
  constexpr double kAlphaNsPerElem = kAlphaCyclesPerElem / 0.233;

  constexpr std::size_t kN = 1 << 16;  // 512 KB working set: fits in L2
  constexpr int kReps = 50;
  std::vector<double> a(kN, 1.0);
  std::vector<double> b(kN, 0.999);
  std::vector<double> c(kN, 1.001);
  volatile double sink = RunKernelOnce(a, b, c, 4);  // warm up
  const std::uint64_t t0 = ThreadCpuNowNs();
  sink = RunKernelOnce(a, b, c, kReps);
  const std::uint64_t t1 = ThreadCpuNowNs();
  (void)sink;
  const double host_ns_per_elem =
      static_cast<double>(t1 - t0) / (static_cast<double>(kN) * kReps);
  if (host_ns_per_elem <= 0.0) {
    return 1.0;
  }
  return std::clamp(kAlphaNsPerElem / host_ns_per_elem, 1.0, 1000.0);
}

}  // namespace

double HostToAlphaTimeScale() {
  static const double scale = MeasureScale();
  return scale;
}

}  // namespace cashmere
