#include "cashmere/common/stats.hpp"

#include <cstdio>

namespace cashmere {

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kLockAcquires:
      return "Lock Acquires";
    case Counter::kFlagAcquires:
      return "Flag Acquires";
    case Counter::kBarriers:
      return "Barriers";
    case Counter::kReadFaults:
      return "Read Faults";
    case Counter::kWriteFaults:
      return "Write Faults";
    case Counter::kPageTransfers:
      return "Page Transfers";
    case Counter::kDirectoryUpdates:
      return "Directory Updates";
    case Counter::kWriteNotices:
      return "Write Notices";
    case Counter::kExclTransitions:
      return "Excl. Mode Transitions";
    case Counter::kDataBytes:
      return "Data (bytes)";
    case Counter::kTwinCreations:
      return "Twin Creations";
    case Counter::kIncomingDiffs:
      return "Incoming Diffs";
    case Counter::kFlushUpdates:
      return "Flush-Updates";
    case Counter::kShootdowns:
      return "Shootdowns";
    case Counter::kPageFlushes:
      return "Page Flushes";
    case Counter::kPolls:
      return "Polls";
    case Counter::kMessagesHandled:
      return "Messages Handled";
    case Counter::kHomeRelocations:
      return "Home Relocations";
    case Counter::kDiffBlocksScanned:
      return "Diff Blocks Scanned";
    case Counter::kDiffBlocksSkipped:
      return "Diff Blocks Skipped";
    case Counter::kDiffRunsEmitted:
      return "Diff Runs Emitted";
    case Counter::kDiffRunBytes:
      return "Diff Run Bytes";
    case Counter::kDirtyShardMerges:
      return "Dirty Shard Merges";
    case Counter::kDirtyShardStaleDrops:
      return "Dirty Shard Stale Drops";
    case Counter::kDiffRunApplyBytes:
      return "Diff Run Apply Bytes";
    case Counter::kTraceEvents:
      return "Trace Events";
    case Counter::kTraceDrops:
      return "Trace Drops";
    case Counter::kMprotectCalls:
      return "Mprotect Calls";
    case Counter::kMprotectPagesCoalesced:
      return "Mprotect Pages Coalesced";
    case Counter::kCohLogPublishes:
      return "Coh. Log Publishes";
    case Counter::kCohLogApplies:
      return "Coh. Log Applies";
    case Counter::kCohLogPublishStalls:
      return "Coh. Log Publish Stalls";
    case Counter::kCohGateWaits:
      return "Coh. Gate Waits";
    case Counter::kReleasePathNs:
      return "Release Path (ns)";
    case Counter::kDirP2PUpdates:
      return "Dir. P2P Updates";
    case Counter::kDirBroadcastUpdates:
      return "Dir. Broadcast Updates";
    case Counter::kDirCacheHits:
      return "Dir. Cache Hits";
    case Counter::kDirSegmentsAllocated:
      return "Dir. Segments Allocated";
    case Counter::kNumCounters:
      break;
  }
  return "?";
}

Stats& Stats::operator+=(const Stats& other) {
  for (int i = 0; i < kNumCounters; ++i) {
    counts[i] += other.counts[i];
  }
  for (int i = 0; i < kNumTimeCategories; ++i) {
    time_ns[i] += other.time_ns[i];
  }
  return *this;
}

std::string StatsReport::CsvHeader() {
  std::string out = "exec_time_s";
  for (int i = 0; i < kNumCounters; ++i) {
    std::string name = CounterName(static_cast<Counter>(i));
    for (char& c : name) {
      if (c == ' ' || c == '.' || c == '(' || c == ')' || c == '/') {
        c = '_';
      }
    }
    out += ",";
    out += name;
  }
  for (int i = 0; i < kNumTimeCategories; ++i) {
    std::string name = TimeCategoryName(static_cast<TimeCategory>(i));
    for (char& c : name) {
      if (c == ' ' || c == '&') {
        c = '_';
      }
    }
    out += ",time_" + name + "_s";
  }
  return out;
}

std::string StatsReport::ToCsvRow() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", ExecTimeSec());
  std::string out = buf;
  for (int i = 0; i < kNumCounters; ++i) {
    std::snprintf(buf, sizeof(buf), ",%llu",
                  static_cast<unsigned long long>(total.counts[i]));
    out += buf;
  }
  for (int i = 0; i < kNumTimeCategories; ++i) {
    std::snprintf(buf, sizeof(buf), ",%.9f", static_cast<double>(total.time_ns[i]) / 1e9);
    out += buf;
  }
  return out;
}

std::string StatsReport::ToString() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "%-24s %12.6f s\n", "Exec. time (virtual)", ExecTimeSec());
  out += line;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    std::snprintf(line, sizeof(line), "%-24s %12llu\n", CounterName(c),
                  static_cast<unsigned long long>(total.Get(c)));
    out += line;
  }
  for (int i = 0; i < kNumTimeCategories; ++i) {
    std::snprintf(line, sizeof(line), "%-24s %12.6f s\n",
                  TimeCategoryName(static_cast<TimeCategory>(i)),
                  static_cast<double>(total.time_ns[i]) / 1e9);
    out += line;
  }
  return out;
}

}  // namespace cashmere
