// Per-processor virtual clock.
//
// The reproduction runs on an arbitrary (possibly single-core) host, so wall
// clock is meaningless. Instead every emulated processor advances a virtual
// clock:
//   - user compute: measured thread CPU time between protocol entries,
//     multiplied by a host->Alpha-21064A calibration factor;
//   - protocol operations: the paper's measured cost constants;
//   - waits: the clock jumps forward to the event that released the wait
//     (lock release time, message service completion, barrier max).
// Reported execution time is the maximum final clock over all processors.
#ifndef CASHMERE_COMMON_VIRTUAL_CLOCK_HPP_
#define CASHMERE_COMMON_VIRTUAL_CLOCK_HPP_

#include <atomic>
#include <cstdint>
#include <ctime>

#include "cashmere/common/cost_model.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

inline std::uint64_t ThreadCpuNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

class VirtualClock {
 public:
  void Start(double time_scale) {
    scale_ = time_scale;
    now_ns_ = 0;
    user_host_ns_ = 0;
    depth_ = 0;
    last_cpu_mark_ns_ = ThreadCpuNowNs();
  }

  VirtTime now() const { return now_ns_; }

  // Protocol section nesting: only the outermost entry/exit converts the
  // elapsed CPU time into user virtual time, so nested protocol operations
  // (a fault inside a barrier flush, a message handled while waiting) do
  // not double-charge.
  void EnterProtocol(Stats& stats) {
    if (depth_++ == 0) {
      AccrueUser(stats);
    }
  }
  void ExitProtocol() {
    if (--depth_ == 0) {
      last_cpu_mark_ns_ = ThreadCpuNowNs();
    }
  }
  int depth() const { return depth_; }

  // Charge a modeled cost to a category.
  void Charge(Stats& stats, TimeCategory cat, std::uint64_t ns) {
    now_ns_ += ns;
    stats.AddTime(cat, ns);
  }

  // Jump forward to an externally imposed time (wait reconciliation); the
  // gap is accounted as communication-and-wait time.
  void AdvanceTo(Stats& stats, VirtTime t) {
    if (t > now_ns_) {
      stats.AddTime(TimeCategory::kCommWait, t - now_ns_);
      now_ns_ = t;
    }
  }

  // Fold outstanding measured CPU time into user time (also used at the end
  // of the run).
  void AccrueUser(Stats& stats) {
    const std::uint64_t cpu = ThreadCpuNowNs();
    if (cpu > last_cpu_mark_ns_) {
      const std::uint64_t host = cpu - last_cpu_mark_ns_;
      user_host_ns_ += host;
      const auto delta =
          static_cast<std::uint64_t>(static_cast<double>(host) * scale_);
      now_ns_ += delta;
      stats.AddTime(TimeCategory::kUser, delta);
    }
    last_cpu_mark_ns_ = cpu;
  }

  // Raw (unscaled) host CPU time attributed to user compute. Used for the
  // oversubscription-dilation correction: on a heavily oversubscribed host,
  // per-thread CPU measurements inflate with cache pollution and context
  // switches, so harnesses compare this against the sequential baseline and
  // re-run with an adjusted scale (see apps/app.cpp).
  std::uint64_t user_host_ns() const { return user_host_ns_; }

 private:
  VirtTime now_ns_ = 0;
  std::uint64_t last_cpu_mark_ns_ = 0;
  std::uint64_t user_host_ns_ = 0;
  double scale_ = 1.0;
  int depth_ = 0;
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_VIRTUAL_CLOCK_HPP_
