// Lightweight event tracing for protocol debugging. Enabled by setting the
// CASHMERE_TRACE environment variable; compiled in but branch-predicted
// away otherwise. Output goes to stderr, one line per protocol event.
#ifndef CASHMERE_COMMON_TRACE_HPP_
#define CASHMERE_COMMON_TRACE_HPP_

#include <cstdio>
#include <cstdlib>

namespace cashmere {

inline bool TraceEnabled() {
  static const bool enabled =
      std::getenv("CASHMERE_TRACE") != nullptr || std::getenv("CSM_TRACE") != nullptr;
  return enabled;
}

}  // namespace cashmere

#define CSM_TRACE(...)                    \
  do {                                    \
    if (::cashmere::TraceEnabled()) {     \
      std::fprintf(stderr, __VA_ARGS__);  \
    }                                     \
  } while (0)

#endif  // CASHMERE_COMMON_TRACE_HPP_
