// Structured protocol event tracing.
//
// Every protocol edge (faults, twin lifecycle, diffs, directory updates,
// write notices, exclusive-mode transitions, synchronization, Memory
// Channel writes) appends a fixed-size typed TraceEvent to a per-processor
// ring buffer. The rings follow the DirtyMapShard idiom: cache-line
// aligned, single writer (the bound processor thread), no locks, relaxed
// stores with a release publish, so the instrumented paths — including the
// SIGSEGV fault handler — never allocate or synchronize. When the ring
// wraps, the oldest events are overwritten and counted as drops (exposed
// through Counter::kTraceDrops).
//
// After a run the per-processor streams are merged by virtual time into one
// totally-ordered-per-processor stream that the Chrome-trace exporter and
// the replay invariant checker (trace_check.hpp) consume. Per-(unit, page)
// protocol transitions additionally carry a page sequence number
// (PageLocal::trace_seq, bumped under the page lock) because per-processor
// virtual clocks are only partially ordered across processors.
#ifndef CASHMERE_COMMON_TRACE_HPP_
#define CASHMERE_COMMON_TRACE_HPP_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "cashmere/common/ownership.hpp"
#include "cashmere/common/types.hpp"
#include "cashmere/common/virtual_clock.hpp"

namespace cashmere {

struct Config;

// One enumerator per instrumented protocol edge. Argument conventions are
// documented per kind (a0/a1 are the kind-specific fields of TraceEvent).
enum class EventKind : std::uint8_t {
  kFaultBegin = 0,     // a0 = 1 for write faults, 0 for read faults
  kFaultEnd,           // closes the matching kFaultBegin on the same proc
  kTwinCreate,         // a1 = twin generation after creation (odd)
  kTwinDiscard,        // a1 = twin generation after discard (even)
  kDiffEncode,         // outgoing scan+encode: a0 = runs, a1 = payload words
  kDiffApplyIncoming,  // twin-merge apply: a0 = words, a1 = 1 if piggybacked
                       // on a break-exclusive reply, 0 if fetched from home
  kDiffApplyOutgoing,  // final-flush apply to master: a0 = runs, a1 = words
  kPageCopy,           // full-page transfer into the local frame
  kDirUpdate,          // directory word transition: a0 = packed word in the
                       // low bits, p2p flag at bit 15, wire bytes in the
                       // high half (DirUpdateTraceArg, directory.hpp);
                       // a1 = unit logical clock at the update
  kWnPost,             // write notice posted: a0 = destination unit
  kWnDrainGlobal,      // notice drained into this unit: a1 = stamped wn_ts
  kWnConsumeLocal,     // notice consumed by a processor: a0 = 1 if the
                       // local mapping was invalidated
  kExclEnter,          // page entered exclusive mode: a0 = holder proc
  kExclBreak,          // exclusive mode broken: a0 = holder proc
  kLockAcquire,        // a0 = lock id, a1 = releaser vt reconciled with
  kLockRelease,        // a0 = lock id, a1 = published release vt
  kFlagSet,            // a0 = flag id, a1 = value
  kFlagWait,           // a0 = flag id, a1 = value waited for
  kBarrierArrive,      // a0 = barrier id, a1 = episode epoch
  kBarrierDepart,      // a0 = barrier id, a1 = episode epoch
  kMcWrite,            // a0 = Traffic class, a1 = bytes placed on the MC
  kReqSend,            // a0 = Request::Kind, a1 = flow id (proc<<32 | seq)
  kReqServe,           // responder handled the request; a1 = flow id
  kReqDone,            // requester observed the reply; a1 = flow id
  kPageProtect,        // vm mapping change: a0 = new Perm, a1 = proc whose
                       // mapping changed (may differ from the emitter)
  kHomeRelocate,       // first-touch relocation: a0 = new home unit,
                       // a1 = old home unit
  kProtectRange,       // one coalesced mprotect issued by a PermBatch
                       // commit: page = first page, a0 = new Perm,
                       // a1 = (proc whose mapping changed) << 32 | page
                       // count; seq = 0 (not a locked page transition)
  kCohPublish,         // async release published a log record: a0 = the
                       // publishing unit, a1 = assigned log sequence;
                       // seq = 0 (the apply is the page transition)
  kCohApply,           // cache agent applied a log record: a0 = the
                       // agent's unit, a1 = log sequence; seq = 0
  kCohGate,            // acquire gated on a unit's applied_seq: a0 = the
                       // unit waited on, a1 = sequence waited for; seq = 0
  kNumKinds,
};
inline constexpr int kNumEventKinds = static_cast<int>(EventKind::kNumKinds);

const char* EventKindName(EventKind kind);

inline constexpr std::uint32_t kNoTracePage = 0xffffffffu;

// Fixed-size trace record. 40 bytes so a default ring stays cache-friendly;
// the layout is padding-free by construction (static_assert below).
struct TraceEvent {
  VirtTime vt = 0;            // emitting processor's virtual clock (ns)
  std::uint64_t host_ns = 0;  // host steady clock (ns since epoch)
  std::uint64_t a1 = 0;       // kind-specific (see EventKind)
  std::uint32_t page = kNoTracePage;
  std::uint32_t seq = 0;      // per-(unit, page) transition sequence; 0 when
                              // the event is not a locked page transition
  std::uint32_t a0 = 0;       // kind-specific (see EventKind)
  std::uint16_t proc = 0;
  std::uint8_t kind = 0;      // EventKind
  std::uint8_t reserved = 0;
};
static_assert(sizeof(TraceEvent) == 40, "TraceEvent must stay fixed-size");

// Single-writer event ring. Only the owning processor thread appends;
// readers either poll the atomic counters (watchdog/tests) or snapshot the
// contents after the writer has quiesced (post-join, ordered by the join).
class alignas(64) TraceRing {
 public:
  explicit TraceRing(std::uint32_t capacity_events);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Owner-only append. Wraps when full: the oldest event is overwritten and
  // counted as dropped. Plain slot store + release publish of the count —
  // the same owner-only store discipline as DirtyMapShard::MarkRange.
  void Append(const TraceEvent& e) {
    owner_check_.NoteWrite("TraceRing::Append");
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(n) & mask_] = e;
    count_.store(n + 1, std::memory_order_release);
  }

  std::uint32_t capacity() const { return static_cast<std::uint32_t>(mask_ + 1); }
  // Total events ever appended (monotone; safe to poll cross-thread).
  std::uint64_t total() const { return count_.load(std::memory_order_acquire); }
  // Events still held (min(total, capacity)) and events lost to wraparound.
  std::uint64_t size() const;
  std::uint64_t dropped() const;

  void Reset() {
    count_.store(0, std::memory_order_release);
    owner_check_.Reset();  // the ring may be adopted by a new owner
  }

  // Copies the retained events in append order (oldest retained first).
  // Only valid once the writer has quiesced.
  void Snapshot(std::vector<TraceEvent>& out) const;

  // Racy-by-design tail read for live diagnostics (the watchdog's stall
  // dump): copies up to `max` of the most recent events into `out` (oldest
  // first) WHILE the owner may still be appending. A slot being overwritten
  // concurrently can yield a torn event; acceptable for a crash dump,
  // never used by the protocol or the replay checker. The corresponding
  // TSan report is suppressed in .tsan-suppressions.
  std::size_t DebugTail(TraceEvent* out, std::size_t max) const;

 private:
  CSM_SINGLE_WRITER("the processor thread bound to this ring")
  std::vector<TraceEvent> slots_;
  std::uint64_t mask_;
  OwnerCell owner_check_;
  alignas(64) std::atomic<std::uint64_t> count_{0};
};

// All per-processor rings of one run, owned by the Runtime.
class TraceLog {
 public:
  TraceLog(int procs, std::uint32_t ring_events);

  int procs() const { return static_cast<int>(rings_.size()); }
  TraceRing& ring(ProcId proc) { return *rings_[static_cast<std::size_t>(proc)]; }
  const TraceRing& ring(ProcId proc) const {
    return *rings_[static_cast<std::size_t>(proc)];
  }

  std::uint64_t TotalEvents() const;
  std::uint64_t TotalDropped() const;
  // A complete stream retains every emitted event (no ring wrapped); the
  // invariant checker only runs its existence/pairing checks on complete
  // streams.
  bool complete() const { return TotalDropped() == 0; }

  void ResetAll();

  // Merges all rings into one stream ordered by (vt, proc, ring position);
  // per-processor append order is preserved.
  std::vector<TraceEvent> Merged() const;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

// --- Thread binding -------------------------------------------------------
// Runtime::Run binds each processor thread to its ring alongside
// Context::Bind. The binding lives here (not on Context) so layers below
// the runtime — the MC hub, the message layer, the vm views — can emit
// without a dependency on runtime headers. Unbound threads no-op.
struct TraceBinding {
  TraceRing* ring = nullptr;
  const VirtualClock* clock = nullptr;
  std::uint16_t proc = 0;
};

inline TraceBinding& ThreadTraceBinding() {
  thread_local TraceBinding binding;
  return binding;
}

inline void TraceBindThread(TraceRing* ring, const VirtualClock* clock, ProcId proc) {
  TraceBinding& b = ThreadTraceBinding();
  b.ring = ring;
  b.clock = clock;
  b.proc = static_cast<std::uint16_t>(proc);
}

inline void TraceUnbindThread() { TraceBindThread(nullptr, nullptr, 0); }

// The disabled-tracing cost on instrumented paths is this one thread-local
// load + branch.
inline bool TraceActive() { return ThreadTraceBinding().ring != nullptr; }

inline std::uint64_t TraceHostNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline void TraceEmit(EventKind kind, std::uint32_t page, std::uint32_t seq,
                      std::uint32_t a0, std::uint64_t a1) {
  TraceBinding& b = ThreadTraceBinding();
  if (b.ring == nullptr) {
    return;
  }
  TraceEvent e;
  e.vt = b.clock->now();
  e.host_ns = TraceHostNowNs();
  e.a1 = a1;
  e.page = page;
  e.seq = seq;
  e.a0 = a0;
  e.proc = b.proc;
  e.kind = static_cast<std::uint8_t>(kind);
  b.ring->Append(e);
}

// --- Chrome trace_event export -------------------------------------------
// Writes the merged stream as Chrome trace-viewer JSON (chrome://tracing /
// Perfetto): one track per processor grouped by node, duration events for
// fault and barrier episodes, flow arrows for request/reply pairs, instants
// for everything else. `cfg` supplies the proc->node mapping.
void WriteChromeTrace(const std::vector<TraceEvent>& merged, const Config& cfg,
                      std::FILE* out);

}  // namespace cashmere

#endif  // CASHMERE_COMMON_TRACE_HPP_
