#include "cashmere/common/trace.hpp"

#include <algorithm>
#include <cinttypes>

#include "cashmere/common/config.hpp"
#include "cashmere/common/logging.hpp"

namespace cashmere {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kFaultBegin:
      return "fault-begin";
    case EventKind::kFaultEnd:
      return "fault-end";
    case EventKind::kTwinCreate:
      return "twin-create";
    case EventKind::kTwinDiscard:
      return "twin-discard";
    case EventKind::kDiffEncode:
      return "diff-encode";
    case EventKind::kDiffApplyIncoming:
      return "diff-apply-in";
    case EventKind::kDiffApplyOutgoing:
      return "diff-apply-out";
    case EventKind::kPageCopy:
      return "page-copy";
    case EventKind::kDirUpdate:
      return "dir-update";
    case EventKind::kWnPost:
      return "wn-post";
    case EventKind::kWnDrainGlobal:
      return "wn-drain";
    case EventKind::kWnConsumeLocal:
      return "wn-consume";
    case EventKind::kExclEnter:
      return "excl-enter";
    case EventKind::kExclBreak:
      return "excl-break";
    case EventKind::kLockAcquire:
      return "lock-acquire";
    case EventKind::kLockRelease:
      return "lock-release";
    case EventKind::kFlagSet:
      return "flag-set";
    case EventKind::kFlagWait:
      return "flag-wait";
    case EventKind::kBarrierArrive:
      return "barrier-arrive";
    case EventKind::kBarrierDepart:
      return "barrier-depart";
    case EventKind::kMcWrite:
      return "mc-write";
    case EventKind::kReqSend:
      return "req-send";
    case EventKind::kReqServe:
      return "req-serve";
    case EventKind::kReqDone:
      return "req-done";
    case EventKind::kPageProtect:
      return "page-protect";
    case EventKind::kHomeRelocate:
      return "home-relocate";
    case EventKind::kProtectRange:
      return "protect-range";
    case EventKind::kCohPublish:
      return "coh-publish";
    case EventKind::kCohApply:
      return "coh-apply";
    case EventKind::kCohGate:
      return "coh-gate";
    case EventKind::kNumKinds:
      break;
  }
  return "?";
}

namespace {

std::uint32_t RoundUpPow2(std::uint32_t v) {
  std::uint32_t cap = 1;
  while (cap < v) {
    cap <<= 1;
  }
  return cap;
}

}  // namespace

TraceRing::TraceRing(std::uint32_t capacity_events)
    : slots_(RoundUpPow2(capacity_events < 2 ? 2 : capacity_events)),
      mask_(slots_.size() - 1) {}

std::uint64_t TraceRing::size() const {
  const std::uint64_t n = total();
  return n < slots_.size() ? n : slots_.size();
}

std::uint64_t TraceRing::dropped() const {
  const std::uint64_t n = total();
  return n > slots_.size() ? n - slots_.size() : 0;
}

void TraceRing::Snapshot(std::vector<TraceEvent>& out) const {
  const std::uint64_t n = total();
  const std::uint64_t first = n > slots_.size() ? n - slots_.size() : 0;
  out.reserve(out.size() + static_cast<std::size_t>(n - first));
  for (std::uint64_t i = first; i < n; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
  }
}

std::size_t TraceRing::DebugTail(TraceEvent* out, std::size_t max) const {
  const std::uint64_t n = total();
  const std::uint64_t held = n < slots_.size() ? n : slots_.size();
  const std::uint64_t take = held < max ? held : max;
  // If the owner appends while we copy, the slot nearest the head may be
  // torn; tolerated (diagnostic-only — see the header comment).
  for (std::uint64_t i = 0; i < take; ++i) {
    out[static_cast<std::size_t>(i)] =
        slots_[static_cast<std::size_t>(n - take + i) & mask_];
  }
  return static_cast<std::size_t>(take);
}

TraceLog::TraceLog(int procs, std::uint32_t ring_events) {
  rings_.reserve(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    rings_.push_back(std::make_unique<TraceRing>(ring_events));
  }
}

std::uint64_t TraceLog::TotalEvents() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    n += r->total();
  }
  return n;
}

std::uint64_t TraceLog::TotalDropped() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    n += r->dropped();
  }
  return n;
}

void TraceLog::ResetAll() {
  for (auto& r : rings_) {
    r->Reset();
  }
}

std::vector<TraceEvent> TraceLog::Merged() const {
  struct Keyed {
    TraceEvent e;
    std::uint64_t pos;
  };
  std::vector<Keyed> keyed;
  std::vector<TraceEvent> scratch;
  for (const auto& r : rings_) {
    scratch.clear();
    r->Snapshot(scratch);
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      keyed.push_back({scratch[i], i});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.e.vt != b.e.vt) {
      return a.e.vt < b.e.vt;
    }
    if (a.e.proc != b.e.proc) {
      return a.e.proc < b.e.proc;
    }
    return a.pos < b.pos;
  });
  std::vector<TraceEvent> out;
  out.reserve(keyed.size());
  for (const Keyed& k : keyed) {
    out.push_back(k.e);
  }
  return out;
}

namespace {

// One emitted JSON record. `first` tracks the leading comma.
void BeginRecord(std::FILE* out, bool* first) {
  if (*first) {
    *first = false;
    std::fprintf(out, "\n  ");
  } else {
    std::fprintf(out, ",\n  ");
  }
}

void WriteArgs(std::FILE* out, const TraceEvent& e) {
  std::fprintf(out, "\"args\":{");
  bool need_comma = false;
  if (e.page != kNoTracePage) {
    std::fprintf(out, "\"page\":%" PRIu32, e.page);
    need_comma = true;
  }
  if (e.seq != 0) {
    std::fprintf(out, "%s\"seq\":%" PRIu32, need_comma ? "," : "", e.seq);
    need_comma = true;
  }
  std::fprintf(out, "%s\"a0\":%" PRIu32 ",\"a1\":%" PRIu64 ",\"host_ns\":%" PRIu64 "}",
               need_comma ? "," : "", e.a0, e.a1, e.host_ns);
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& merged, const Config& cfg,
                      std::FILE* out) {
  std::fprintf(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  // Track metadata: one process per node, one thread per processor.
  for (int n = 0; n < cfg.nodes; ++n) {
    BeginRecord(out, &first);
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"node %d\"}}",
                 n, n);
    BeginRecord(out, &first);
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_sort_index\","
                 "\"args\":{\"sort_index\":%d}}",
                 n, n);
  }
  for (ProcId p = 0; p < cfg.total_procs(); ++p) {
    BeginRecord(out, &first);
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"p%d\"}}",
                 cfg.NodeOfProc(p), p, p);
  }
  // Async mode: the per-unit cache agents emit with proc ids past the
  // processor range (total_procs + unit); give each its own named track on
  // its unit's node.
  const int rows = cfg.total_procs() + (cfg.AsyncRelease() ? cfg.units() : 0);
  const auto pid_of = [&cfg](int proc) {
    if (proc < cfg.total_procs()) {
      return cfg.NodeOfProc(static_cast<ProcId>(proc));
    }
    const UnitId u = proc - cfg.total_procs();
    return cfg.NodeOfProc(cfg.FirstProcOfUnit(u));
  };
  for (int u = 0; u < cfg.units() && cfg.AsyncRelease(); ++u) {
    BeginRecord(out, &first);
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"agent u%d\"}}",
                 pid_of(cfg.total_procs() + u), cfg.total_procs() + u, u);
  }

  // Duration nesting per track: faults and barrier episodes become B/E
  // pairs. Tolerate imbalance (wrapped rings) by demoting an unmatched end
  // to an instant and closing leftovers at the final timestamp.
  std::vector<int> open_depth(static_cast<std::size_t>(rows), 0);
  double last_ts_us = 0.0;

  for (const TraceEvent& e : merged) {
    const auto kind = static_cast<EventKind>(e.kind);
    if (static_cast<int>(e.proc) >= rows) {
      continue;  // malformed row; the invariant checker reports it
    }
    const int pid = pid_of(e.proc);
    const int tid = e.proc;
    const double ts_us = static_cast<double>(e.vt) / 1000.0;
    last_ts_us = ts_us > last_ts_us ? ts_us : last_ts_us;
    switch (kind) {
      case EventKind::kFaultBegin:
      case EventKind::kBarrierArrive: {
        BeginRecord(out, &first);
        std::fprintf(out,
                     "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"%s\",",
                     pid, tid, ts_us,
                     kind == EventKind::kFaultBegin ? "fault" : "barrier");
        WriteArgs(out, e);
        std::fprintf(out, "}");
        ++open_depth[static_cast<std::size_t>(tid)];
        break;
      }
      case EventKind::kFaultEnd:
      case EventKind::kBarrierDepart: {
        if (open_depth[static_cast<std::size_t>(tid)] > 0) {
          --open_depth[static_cast<std::size_t>(tid)];
          BeginRecord(out, &first);
          std::fprintf(out, "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f}", pid,
                       tid, ts_us);
        } else {
          BeginRecord(out, &first);
          std::fprintf(out,
                       "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                       "\"name\":\"%s\",",
                       pid, tid, ts_us, EventKindName(kind));
          WriteArgs(out, e);
          std::fprintf(out, "}");
        }
        break;
      }
      case EventKind::kReqSend:
      case EventKind::kReqServe:
      case EventKind::kReqDone: {
        BeginRecord(out, &first);
        std::fprintf(out,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"%s\",",
                     pid, tid, ts_us, EventKindName(kind));
        WriteArgs(out, e);
        std::fprintf(out, "}");
        // Flow arrow: requester -> responder -> requester, keyed by the
        // (requester, sequence) flow id.
        const char* ph = kind == EventKind::kReqSend    ? "s"
                         : kind == EventKind::kReqServe ? "t"
                                                        : "f";
        BeginRecord(out, &first);
        std::fprintf(out,
                     "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"cat\":\"req\",\"name\":\"req\",\"id\":\"%" PRIu64 "\"%s}",
                     ph, pid, tid, ts_us, e.a1,
                     kind == EventKind::kReqDone ? ",\"bp\":\"e\"" : "");
        break;
      }
      default: {
        BeginRecord(out, &first);
        std::fprintf(out,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"%s\",",
                     pid, tid, ts_us, EventKindName(kind));
        WriteArgs(out, e);
        std::fprintf(out, "}");
        break;
      }
    }
  }
  for (int p = 0; p < rows; ++p) {
    while (open_depth[static_cast<std::size_t>(p)]-- > 0) {
      BeginRecord(out, &first);
      std::fprintf(out, "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f}",
                   pid_of(p), p, last_ts_us);
    }
  }
  std::fprintf(out, "\n]}\n");
}

}  // namespace cashmere
