// Clang thread-safety-analysis annotation macros.
//
// The protocol core is audited with clang's -Werror=thread-safety pass (the
// CI `clang-analyze` job); under GCC and MSVC the macros expand to nothing so
// the annotated tree builds unchanged everywhere else. See
// docs/concurrency.md for the discipline these annotations encode.
#ifndef CASHMERE_COMMON_THREAD_SAFETY_HPP_
#define CASHMERE_COMMON_THREAD_SAFETY_HPP_

#if defined(__clang__) && (!defined(SWIG))
#define CSM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CSM_THREAD_ANNOTATION(x)  // no-op
#endif

// A type that acts as a lockable capability (our SpinLock).
#define CSM_CAPABILITY(x) CSM_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases it
// in its destructor (our SpinLockGuard).
#define CSM_SCOPED_CAPABILITY CSM_THREAD_ANNOTATION(scoped_lockable)

// Data members that may only be touched while the named capability is held.
#define CSM_GUARDED_BY(x) CSM_THREAD_ANNOTATION(guarded_by(x))
#define CSM_PT_GUARDED_BY(x) CSM_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions that require the named capability to be held by the caller.
#define CSM_REQUIRES(...) \
  CSM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CSM_REQUIRES_SHARED(...) \
  CSM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions that acquire / release capabilities.
#define CSM_ACQUIRE(...) CSM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CSM_RELEASE(...) CSM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CSM_TRY_ACQUIRE(...) \
  CSM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions that must NOT be called with the capability held.
#define CSM_EXCLUDES(...) CSM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Assert (to the analysis, not at runtime) that a capability is held.
#define CSM_ASSERT_CAPABILITY(x) CSM_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the named capability.
#define CSM_RETURN_CAPABILITY(x) CSM_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for lock dances the analysis cannot follow (conditional
// drop/retake loops, lock handoff across functions). Every use carries a
// one-line justification at the use site.
#define CSM_NO_THREAD_SAFETY_ANALYSIS \
  CSM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CASHMERE_COMMON_THREAD_SAFETY_HPP_
