// Virtual-time cost model. All constants come from the paper's measured
// numbers (Section 2.1, Section 3.1, Table 1) on the 8-node AlphaServer
// 2100 4/233 + Memory Channel prototype. Protocol code charges these costs
// to per-processor virtual clocks; reported execution times are virtual.
#ifndef CASHMERE_COMMON_COST_MODEL_HPP_
#define CASHMERE_COMMON_COST_MODEL_HPP_

#include <cstdint>

#include "cashmere/common/types.hpp"

namespace cashmere {

inline constexpr std::uint64_t kNsPerUs = 1000;

// Time categories for the Figure 6 execution-time breakdown.
enum class TimeCategory : int {
  kUser = 0,
  kProtocol = 1,
  kPolling = 2,
  kCommWait = 3,
  kWriteDoubling = 4,
};
inline constexpr int kNumTimeCategories = 5;

inline const char* TimeCategoryName(TimeCategory c) {
  switch (c) {
    case TimeCategory::kUser:
      return "User";
    case TimeCategory::kProtocol:
      return "Protocol";
    case TimeCategory::kPolling:
      return "Polling";
    case TimeCategory::kCommWait:
      return "Comm & Wait";
    case TimeCategory::kWriteDoubling:
      return "Write Doubling";
  }
  return "?";
}

// All costs in microseconds unless noted. Defaults reproduce the paper.
struct CostModel {
  // Section 2.1: Memory Channel characteristics.
  double mc_write_latency_us = 5.2;       // process-to-process write latency
  double mc_link_bandwidth_mb_s = 29.0;   // per-link sustained bandwidth
  double mc_aggregate_bandwidth_mb_s = 60.0;

  // Section 3.1: basic operation costs.
  double mprotect_us = 55.0;
  double page_fault_us = 72.0;  // fault on an already-resident page
  double twin_us = 199.0;       // twinning an 8 KB page
  double dir_update_us = 5.0;   // directory entry modification, lock-free
  double dir_update_locked_us = 16.0;  // with global lock (2L-globallock)
  double dir_lock_us = 11.0;           // acquiring/releasing the entry lock

  // Outgoing diff cost ranges by diff size (Section 3.1). Interpolated
  // linearly between the empty-diff and full-page-diff endpoints.
  double diff_out_remote_min_us = 290.0;  // home remote: written to I/O space
  double diff_out_remote_max_us = 363.0;
  double diff_out_local_min_us = 340.0;  // home local (one-level protocols)
  double diff_out_local_max_us = 561.0;
  double diff_in_min_us = 533.0;  // incoming diff: applies to twin and page
  double diff_in_max_us = 541.0;

  // Table 1: synchronization and page transfers.
  double lock_acquire_2l_us = 19.0;
  double lock_acquire_1l_us = 11.0;
  double barrier_2proc_2l_us = 58.0;
  double barrier_32proc_2l_us = 321.0;
  double barrier_2proc_1l_us = 41.0;
  double barrier_32proc_1l_us = 364.0;
  double page_transfer_local_us = 467.0;   // within the requester's node
  double page_transfer_remote_2l_us = 824.0;
  double page_transfer_remote_1l_us = 777.0;

  // Section 2.3 / Section 3.3.4: interrupts and shootdown.
  double intra_node_interrupt_us = 80.0;   // after the kernel fast-path fix
  double inter_node_interrupt_us = 445.0;
  double shootdown_poll_us = 72.0;       // shoot down one processor, polling
  double shootdown_interrupt_us = 142.0;  // via intra-node interrupts

  // MC bus occupancy: the Memory Channel is a serial interconnect ("MC is
  // a bus", Section 3.3.3), so concurrent transfers queue. Derived from the
  // 29 MB/s per-link sustained bandwidth: ~34.5 ns per byte of page or
  // diff data. This is what penalizes protocols that move more data.
  double mc_ns_per_byte = 1000.0 / 29.0;

  // Polling: the 4-instruction poll sequence of Figure 5 on a 233 MHz Alpha.
  double poll_ns = 17.0;

  // Message handling overhead on the responding processor (function call +
  // bin traversal after a successful poll).
  double request_handle_us = 10.0;

  // Async release-path coherence (DESIGN.md §12): publishing one log
  // record — copying the serialized diff image into the node-local
  // CoherenceLog ring and bumping the sequence — replaces the synchronous
  // diff replay on the releaser's critical path. Local memory traffic, not
  // MC: sized between the bookkeeping-only floor and the 8 KB local copy
  // ceiling (the twin cost bounds a full-page copy at 199 us).
  double log_publish_us = 30.0;

  // Write doubling (Cashmere-1L): per-32-bit-word cost of the doubled
  // write. Remote stores go to uncached I/O space through the write buffer;
  // home-node stores additionally pollute the cache.
  double write_double_word_us = 0.18;
  double write_double_word_home_us = 0.35;

  // Returns a copy with every charged cost multiplied by `f`. Used when a
  // scaled-down problem must keep the paper's compute-to-communication
  // ratio: all protocol costs shrink by one factor, so protocols keep
  // their relative standing (see DESIGN.md, virtual time).
  CostModel ScaledBy(double f) const;

  // Derived helpers ------------------------------------------------------
  std::uint64_t DiffOutNs(std::size_t words_changed, bool home_local) const;
  std::uint64_t DiffInNs(std::size_t words_changed) const;
  std::uint64_t BarrierNs(int total_procs, bool two_level) const;
  std::uint64_t LockAcquireNs(bool two_level) const {
    return UsToNs(two_level ? lock_acquire_2l_us : lock_acquire_1l_us);
  }
  std::uint64_t PageTransferNs(bool requester_on_home_node, bool two_level) const;

  static std::uint64_t UsToNs(double us) { return static_cast<std::uint64_t>(us * 1000.0); }
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_COST_MODEL_HPP_
