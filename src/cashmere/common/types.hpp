// Core identifier types and fixed platform constants for the Cashmere-2L
// reproduction. The emulated platform mirrors the paper's prototype: up to
// eight SMP nodes with up to four processors each, 8 KB pages, and 32-bit
// Memory Channel write granularity.
#ifndef CASHMERE_COMMON_TYPES_HPP_
#define CASHMERE_COMMON_TYPES_HPP_

#include <cstddef>
#include <cstdint>

namespace cashmere {

// Hard platform bounds (matching the paper's 8x4 AlphaServer cluster).
inline constexpr int kMaxNodes = 8;
inline constexpr int kMaxProcsPerNode = 4;
inline constexpr int kMaxProcs = kMaxNodes * kMaxProcsPerNode;

// Coherence granularity: 8 KB pages, 32-bit Memory Channel words.
inline constexpr std::size_t kPageBytes = 8192;
inline constexpr std::size_t kWordBytes = 4;
inline constexpr std::size_t kWordsPerPage = kPageBytes / kWordBytes;

// A processor id is global across the cluster: procs of node n are
// [n * procs_per_node, (n + 1) * procs_per_node).
using ProcId = int;
using NodeId = int;

// A coherence "unit" is the entity the inter-node protocol level sees:
// an SMP node for two-level protocols, a single processor for one-level
// protocols.
using UnitId = int;

// Page index within the shared heap.
using PageId = std::uint32_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

// Byte offset into the shared heap; the portable name for a shared datum.
using GlobalAddr = std::uint64_t;

// Virtual time in nanoseconds (see VirtualClock).
using VirtTime = std::uint64_t;

// Page access permissions, as tracked by both directory levels.
enum class Perm : std::uint8_t {
  kInvalid = 0,
  kRead = 1,
  kReadWrite = 2,
};

inline PageId PageOf(GlobalAddr addr) { return static_cast<PageId>(addr / kPageBytes); }
inline std::size_t PageOffset(GlobalAddr addr) { return addr % kPageBytes; }

}  // namespace cashmere

#endif  // CASHMERE_COMMON_TYPES_HPP_
