// Shared atomic word-access helpers and block-scan geometry.
//
// All shared-page data movement in the system is 32-bit word-atomic,
// mirroring the Memory Channel's write grain: data-race-free programs never
// race on a word, so word-granularity comparison and merging are exact.
// Both the MC hub (`CopyWords32`) and the diff engine express their accesses
// through the helpers below so the two implementations cannot drift, and so
// the access idiom is `std::atomic_ref` (well-defined on live objects)
// rather than the `reinterpret_cast<std::atomic<T>*>` punning it replaces.
//
// The diff engine additionally scans pages in 64-byte blocks (geometry
// below). Its wide-load mismatch prefilter is deliberately non-atomic —
// see BlockXorChunks in diff.cpp for why that is sound — but every word it
// flags is re-read and every store is issued through the 32-bit atomic
// helpers here, preserving MC write atomicity at every boundary.
#ifndef CASHMERE_COMMON_WORD_ACCESS_HPP_
#define CASHMERE_COMMON_WORD_ACCESS_HPP_

#include <atomic>
#include <cstdint>

#include "cashmere/common/types.hpp"

namespace cashmere {

// Block-scan geometry: 64-byte blocks (one cache line), 8-byte chunks.
inline constexpr std::size_t kBlockBytes = 64;
inline constexpr std::size_t kWordsPerBlock = kBlockBytes / kWordBytes;        // 16
inline constexpr std::size_t kBlocksPerPage = kPageBytes / kBlockBytes;        // 128
inline constexpr std::size_t kChunkBytes = sizeof(std::uint64_t);
inline constexpr std::size_t kChunksPerBlock = kBlockBytes / kChunkBytes;      // 8
inline constexpr std::size_t kWordsPerChunk = kChunkBytes / kWordBytes;        // 2

static_assert(std::atomic_ref<std::uint32_t>::is_always_lock_free);

// 32-bit word accesses (the MC write grain). `p` must be 4-byte aligned.
inline std::uint32_t LoadWord32Relaxed(const void* p, std::size_t word = 0) {
  auto* w = const_cast<std::uint32_t*>(static_cast<const std::uint32_t*>(p)) + word;
  return std::atomic_ref<std::uint32_t>(*w).load(std::memory_order_relaxed);
}

inline void StoreWord32Relaxed(void* p, std::size_t word, std::uint32_t v) {
  auto* w = static_cast<std::uint32_t*>(p) + word;
  std::atomic_ref<std::uint32_t>(*w).store(v, std::memory_order_relaxed);
}

inline std::uint32_t LoadWord32Acquire(const void* p) {
  auto* w = const_cast<std::uint32_t*>(static_cast<const std::uint32_t*>(p));
  return std::atomic_ref<std::uint32_t>(*w).load(std::memory_order_acquire);
}

inline void StoreWord32Release(void* p, std::uint32_t v) {
  std::atomic_ref<std::uint32_t>(*static_cast<std::uint32_t*>(p))
      .store(v, std::memory_order_release);
}

// Read-modify-write on a shared word. Used by the cross-process
// SharedWordLock (sync/shared_word_lock.hpp), whose lock word lives in a
// shm control segment: std::atomic_ref on a plain uint32_t is exactly the
// process-shared-capable idiom (address-free, always lock-free per the
// static_assert above).
inline bool CasWord32AcqRel(void* p, std::uint32_t& expected, std::uint32_t desired) {
  return std::atomic_ref<std::uint32_t>(*static_cast<std::uint32_t*>(p))
      .compare_exchange_strong(expected, desired, std::memory_order_acq_rel,
                               std::memory_order_acquire);
}

inline std::uint32_t ExchangeWord32AcqRel(void* p, std::uint32_t v) {
  return std::atomic_ref<std::uint32_t>(*static_cast<std::uint32_t*>(p))
      .exchange(v, std::memory_order_acq_rel);
}

inline std::uint32_t FetchAddWord32AcqRel(void* p, std::uint32_t v) {
  return std::atomic_ref<std::uint32_t>(*static_cast<std::uint32_t*>(p))
      .fetch_add(v, std::memory_order_acq_rel);
}

inline bool Chunk64Aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t)) == 0;
}

}  // namespace cashmere

#endif  // CASHMERE_COMMON_WORD_ACCESS_HPP_
