// Single-writer ownership annotations and a dynamic verifier.
//
// Several protocol structures are lock-free because exactly one processor (or
// one unit) ever writes them: global-directory words, per-processor
// DirtyMapShards, TraceRings, and per-processor Stats counters. Nothing in
// the type system enforces "exactly one writer", so this header provides:
//
//  1. CSM_SINGLE_WRITER(owner) — a declarative, zero-cost annotation naming
//     the owning writer of a field. Purely documentation for readers and for
//     tools/csm_lint (which treats annotated files as audited).
//  2. OwnerCell — an optional dynamic verifier embedded next to a
//     single-writer structure. It records the processor that first writes
//     through it and aborts the process if a different bound processor ever
//     writes. Checks are runtime-gated (default on in !NDEBUG builds, off
//     under NDEBUG) so release hot paths pay one relaxed load + predicted
//     branch; tests force them on via SetOwnershipChecksForTesting().
//
// Threads advertise their protocol identity with OwnershipBindThread(),
// called by Runtime next to TraceBindThread(). Writes from unbound threads
// (the orchestrator folding per-proc stats after join, test harness setup)
// are exempt: single-writer only has meaning while processors run
// concurrently.
#ifndef CASHMERE_COMMON_OWNERSHIP_HPP_
#define CASHMERE_COMMON_OWNERSHIP_HPP_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "cashmere/common/types.hpp"

// Declarative single-writer annotation: names the owner of the field that
// follows. Expands to nothing; the dynamic check lives in OwnerCell.
//   CSM_SINGLE_WRITER("owning processor's shard index")
//   std::uint32_t bits[kMapWords];
#define CSM_SINGLE_WRITER(owner)

namespace cashmere {

namespace ownership_internal {

// Runtime gate. Default: on in debug builds, off when NDEBUG (release /
// RelWithDebInfo) so the verifier costs one relaxed load on hot paths.
#if defined(NDEBUG)
inline constexpr bool kOwnershipChecksDefault = false;
#else
inline constexpr bool kOwnershipChecksDefault = true;
#endif

inline std::atomic<bool> g_checks_enabled{kOwnershipChecksDefault};

struct ThreadIdentity {
  ProcId proc = -1;   // -1 = unbound (external/orchestrator thread)
  UnitId unit = -1;
  int override_depth = 0;  // >0 inside an OwnershipOverrideScope
};

inline thread_local ThreadIdentity t_identity;

[[noreturn]] inline void Die(const char* what, ProcId writer, ProcId owner) {
  std::fprintf(stderr,
               "cashmere ownership violation: %s: proc %d wrote a "
               "single-writer value owned by proc %d\n",
               what, static_cast<int>(writer), static_cast<int>(owner));
  std::abort();
}

}  // namespace ownership_internal

inline bool OwnershipChecksEnabled() {
  return ownership_internal::g_checks_enabled.load(std::memory_order_relaxed);
}

// Tests flip the gate explicitly (the tier-1 build defines NDEBUG, so the
// default would otherwise hide the abort the ownership test asserts).
inline void SetOwnershipChecksForTesting(bool enabled) {
  ownership_internal::g_checks_enabled.store(enabled,
                                             std::memory_order_relaxed);
}

// Bind the calling thread to its protocol identity. Runtime::Run calls this
// in each processor thread next to TraceBindThread.
inline void OwnershipBindThread(ProcId proc, UnitId unit) {
  ownership_internal::t_identity.proc = proc;
  ownership_internal::t_identity.unit = unit;
}

inline void OwnershipUnbindThread() {
  ownership_internal::t_identity.proc = -1;
  ownership_internal::t_identity.unit = -1;
}

inline ProcId OwnershipBoundProc() {
  return ownership_internal::t_identity.proc;
}
inline UnitId OwnershipBoundUnit() {
  return ownership_internal::t_identity.unit;
}

// Scoped exemption for the documented exceptions to single-writer rules —
// today only superpage home relocation, which rewrites another unit's
// directory word while holding the global home lock.
class OwnershipOverrideScope {
 public:
  OwnershipOverrideScope() { ++ownership_internal::t_identity.override_depth; }
  ~OwnershipOverrideScope() { --ownership_internal::t_identity.override_depth; }
  OwnershipOverrideScope(const OwnershipOverrideScope&) = delete;
  OwnershipOverrideScope& operator=(const OwnershipOverrideScope&) = delete;
};

inline bool OwnershipOverrideActive() {
  return ownership_internal::t_identity.override_depth > 0;
}

// Abort unless the calling thread is bound to `unit` (or unbound, overridden,
// or checks are off). Guards APIs whose single-writer owner is named by
// argument rather than by an embedded cell — the global directory.
inline void CsmAssertUnitWriter(UnitId unit, const char* what) {
  if (!OwnershipChecksEnabled()) return;
  const auto& id = ownership_internal::t_identity;
  if (id.unit < 0 || id.override_depth > 0) return;
  if (id.unit != unit) {
    // csm-lint: allow(fault-path-signal-safety) -- violation diagnostic
    // immediately before std::abort; the process dies either way
    std::fprintf(stderr,
                 "cashmere ownership violation: %s: unit %d wrote a "
                 "single-writer value owned by unit %d\n",
                 what, static_cast<int>(id.unit), static_cast<int>(unit));
    std::abort();
  }
}

// Dynamic single-writer verifier, embedded next to the structure it guards.
// The atomic member is always present (identical layout in every build type,
// so debug/release object files never disagree on struct offsets); whether
// NoteWrite does anything is the runtime gate above.
class OwnerCell {
 public:
  static constexpr std::int32_t kUnowned = -1;

  // Record/verify a write by the calling thread. First bound writer claims
  // the cell; any later write by a *different* bound processor aborts.
  void NoteWrite(const char* what) {
    if (!OwnershipChecksEnabled()) return;
    const auto& id = ownership_internal::t_identity;
    if (id.proc < 0 || id.override_depth > 0) return;
    std::int32_t owner = owner_.load(std::memory_order_relaxed);
    if (owner == id.proc) return;
    if (owner == kUnowned) {
      if (owner_.compare_exchange_strong(owner, id.proc,
                                         std::memory_order_relaxed)) {
        return;
      }
      if (owner == id.proc) return;  // lost the race to ourselves elsewhere
    }
    ownership_internal::Die(what, id.proc, static_cast<ProcId>(owner));
  }

  // Release the claim (structure recycled for a new owner, e.g. TraceRing
  // reset between runs or a shard re-seeded for a new twin generation).
  void Reset() { owner_.store(kUnowned, std::memory_order_relaxed); }

  std::int32_t OwnerForTesting() const {
    return owner_.load(std::memory_order_relaxed);
  }

  // Copying a stats object (aggregation snapshots) must not propagate the
  // claim: the copy is a fresh value with no writer history.
  OwnerCell() = default;
  OwnerCell(const OwnerCell&) {}
  OwnerCell& operator=(const OwnerCell&) { return *this; }

 private:
  std::atomic<std::int32_t> owner_{kUnowned};
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_OWNERSHIP_HPP_
