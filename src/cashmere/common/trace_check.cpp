#include "cashmere/common/trace_check.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "cashmere/common/config.hpp"

namespace cashmere {

namespace {

struct PageItem {
  std::uint32_t seq;
  EventKind kind;
  std::uint32_t a0;
  std::uint64_t a1;
  std::uint16_t proc;
  std::size_t index;  // position in the merged stream
};

struct Checker {
  TraceCheckResult result;

  void Issue(std::size_t index, std::string message) {
    result.ok = false;
    if (result.issues.size() < TraceCheckResult::kMaxIssues) {
      // csm-lint: allow(fault-path-signal-safety) -- name-based call
      // resolution aliases this Issue with McHub::Issue; the checker runs
      // in the offline trace validator, never on the fault path
      result.issues.push_back({index, std::move(message)});
    }
  }

  void Issuef(std::size_t index, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    Issue(index, buf);
  }
};

}  // namespace

TraceCheckResult CheckTrace(const std::vector<TraceEvent>& merged, const Config& cfg,
                            std::uint64_t dropped) {
  Checker ck;
  ck.result.events = merged.size();
  ck.result.dropped = dropped;
  ck.result.complete = dropped == 0;
  const bool complete = ck.result.complete;

  const int procs = cfg.total_procs();
  // Async release mode adds one trace row per cache agent after the
  // processor rows; agent events are legal, not malformed.
  const int rows = procs + (cfg.AsyncRelease() ? cfg.units() : 0);
  std::vector<VirtTime> last_vt(static_cast<std::size_t>(rows), 0);
  std::vector<int> fault_depth(static_cast<std::size_t>(rows), 0);
  std::vector<int> barrier_depth(static_cast<std::size_t>(rows), 0);
  // Coherence-log pipeline state (invariant 5): per-unit published and
  // applied sequence lists, and gate waits to validate at end of stream.
  std::vector<std::vector<std::uint64_t>> coh_published(
      static_cast<std::size_t>(cfg.units()));
  std::vector<std::uint64_t> coh_last_applied(static_cast<std::size_t>(cfg.units()), 0);
  std::vector<std::uint64_t> coh_applies(static_cast<std::size_t>(cfg.units()), 0);
  struct GateWait {
    std::size_t index;
    std::uint32_t unit;
    std::uint64_t want;
  };
  std::vector<GateWait> coh_gates;

  // Per (unit, page) transition streams, ordered by the page sequence
  // number stamped under the page lock.
  std::unordered_map<std::uint64_t, std::vector<PageItem>> per_page;
  // Per (unit, page, proc) last seq: a single processor's appends must carry
  // increasing sequence numbers for a given page.
  std::unordered_map<std::uint64_t, std::uint32_t> last_seq_by_proc;
  // Flow pairing: flow id -> bitmask of {send=1, serve=2, done=4}.
  std::unordered_map<std::uint64_t, std::uint8_t> flows;

  for (std::size_t i = 0; i < merged.size(); ++i) {
    const TraceEvent& e = merged[i];
    const auto kind = static_cast<EventKind>(e.kind);
    if (static_cast<int>(e.proc) >= rows || static_cast<int>(e.kind) >= kNumEventKinds) {
      ck.Issuef(i, "malformed event: proc=%u kind=%u", e.proc, e.kind);
      continue;
    }
    const auto p = static_cast<std::size_t>(e.proc);
    if (e.vt < last_vt[p]) {
      ck.Issuef(i, "p%u virtual clock regressed: %" PRIu64 " -> %" PRIu64, e.proc,
                last_vt[p], e.vt);
    }
    last_vt[p] = e.vt;

    switch (kind) {
      case EventKind::kFaultBegin:
        if (fault_depth[p] != 0) {
          ck.Issuef(i, "p%u fault-begin while a fault is already open", e.proc);
        }
        ++fault_depth[p];
        break;
      case EventKind::kFaultEnd:
        if (fault_depth[p] == 0) {
          if (complete) {
            ck.Issuef(i, "p%u fault-end without fault-begin", e.proc);
          }
        } else {
          --fault_depth[p];
        }
        break;
      case EventKind::kBarrierArrive:
        if (barrier_depth[p] != 0) {
          ck.Issuef(i, "p%u barrier-arrive while an episode is open", e.proc);
        }
        ++barrier_depth[p];
        break;
      case EventKind::kBarrierDepart:
        if (barrier_depth[p] == 0) {
          if (complete) {
            ck.Issuef(i, "p%u barrier-depart without barrier-arrive", e.proc);
          }
        } else {
          --barrier_depth[p];
        }
        break;
      case EventKind::kReqSend:
      case EventKind::kReqServe:
      case EventKind::kReqDone: {
        // Pairing is checked at end of stream, not in merged order: the
        // responder's virtual clock is not ordered against the requester's,
        // so a serve may legitimately sort before its send.
        const std::uint8_t bit = kind == EventKind::kReqSend    ? 1
                                 : kind == EventKind::kReqServe ? 2
                                                                : 4;
        flows[e.a1] |= bit;
        break;
      }
      case EventKind::kCohPublish:
        if (static_cast<int>(e.a0) >= cfg.units()) {
          ck.Issuef(i, "coh publish for out-of-range unit %u", e.a0);
        } else {
          coh_published[e.a0].push_back(e.a1);
        }
        break;
      case EventKind::kCohApply:
        if (static_cast<int>(e.a0) >= cfg.units()) {
          ck.Issuef(i, "coh apply for out-of-range unit %u", e.a0);
        } else {
          // A unit's applies all come from its single agent row, whose
          // append order the merge preserves: sequences must be exactly
          // 1, 2, 3, ... (wrapped streams lose the prefix, so only the
          // increasing part is checked there).
          std::uint64_t& last = coh_last_applied[e.a0];
          if (e.a1 != last + 1 && (complete || e.a1 <= last)) {
            ck.Issuef(i, "unit %u coh apply seq not contiguous: %" PRIu64 " -> %" PRIu64,
                      e.a0, last, e.a1);
          }
          last = e.a1;
          ++coh_applies[e.a0];
        }
        break;
      case EventKind::kCohGate:
        if (static_cast<int>(e.a0) >= cfg.units()) {
          ck.Issuef(i, "coh gate on out-of-range unit %u", e.a0);
        } else {
          // Validated at end of stream: the publish may sort after the
          // gate (publisher and gater clocks are only partially ordered).
          coh_gates.push_back({i, e.a0, e.a1});
        }
        break;
      default:
        break;
    }

    if (e.seq != 0 && e.page != kNoTracePage) {
      // Agent rows (proc >= procs, async mode) never stamp page sequence
      // numbers; processor rows key by their unit as before.
      const auto unit = static_cast<std::uint64_t>(
          static_cast<int>(e.proc) < procs ? cfg.UnitOfProc(e.proc)
                                           : static_cast<int>(e.proc) - procs);
      const std::uint64_t key = (unit << 32) | e.page;
      per_page[key].push_back({e.seq, kind, e.a0, e.a1, e.proc, i});
      std::uint32_t& last = last_seq_by_proc[(static_cast<std::uint64_t>(e.proc) << 56) |
                                             (unit << 32) | e.page];
      if (e.seq <= last) {
        ck.Issuef(i, "p%u page %u seq regressed: %u -> %u", e.proc, e.page, last,
                  e.seq);
      }
      last = e.seq;
    }
  }

  for (ProcId p = 0; p < rows; ++p) {
    if (fault_depth[static_cast<std::size_t>(p)] != 0) {
      ck.Issuef(merged.size(), "p%d fault still open at end of stream", p);
    }
    if (barrier_depth[static_cast<std::size_t>(p)] != 0) {
      ck.Issuef(merged.size(), "p%d barrier episode still open at end of stream", p);
    }
  }

  // Invariant 5: coherence-log pipeline (async release mode). Publishes are
  // collected from all processor rows of a unit, so they are only
  // per-publisher ordered in the merged stream — sort before checking.
  for (int u = 0; u < cfg.units(); ++u) {
    std::vector<std::uint64_t>& pub = coh_published[static_cast<std::size_t>(u)];
    std::sort(pub.begin(), pub.end());
    for (std::size_t i = 0; i + 1 < pub.size(); ++i) {
      if (pub[i] == pub[i + 1]) {
        ck.Issuef(merged.size(), "unit %d coh publish seq %" PRIu64 " duplicated", u,
                  pub[i]);
      }
    }
    if (complete && !pub.empty()) {
      if (pub.front() != 1 || pub.back() != pub.size()) {
        ck.Issuef(merged.size(),
                  "unit %d coh publish seqs not contiguous 1..%zu (saw %" PRIu64
                  "..%" PRIu64 ")",
                  u, pub.size(), pub.front(), pub.back());
      }
      // Drain-before-exit: every published record must have been applied.
      if (coh_applies[static_cast<std::size_t>(u)] != pub.size()) {
        ck.Issuef(merged.size(),
                  "unit %d published %zu coh records but applied %" PRIu64, u,
                  pub.size(), coh_applies[static_cast<std::size_t>(u)]);
      }
    }
  }
  if (complete) {
    for (const GateWait& g : coh_gates) {
      const std::vector<std::uint64_t>& pub = coh_published[g.unit];
      if (pub.empty() || pub.back() < g.want) {
        ck.Issuef(g.index,
                  "coh gate waited on unit %u seq %" PRIu64 " which was never published",
                  g.unit, g.want);
      }
    }
  }
  if (complete) {
    for (const auto& [id, mask] : flows) {
      if ((mask & 2) != 0 && (mask & 1) == 0) {
        ck.Issuef(merged.size(), "req flow %" PRIu64 " served but never sent", id);
      }
      if ((mask & 4) != 0 && (mask & 2) == 0) {
        ck.Issuef(merged.size(), "req flow %" PRIu64 " completed but never served", id);
      }
      if ((mask & 1) != 0 && (mask & 4) == 0) {
        ck.Issuef(merged.size(), "req flow %" PRIu64 " sent but never completed", id);
      }
    }
  }

  // Per-page invariants in page-sequence order.
  for (auto& [key, items] : per_page) {
    const auto unit = static_cast<UnitId>(key >> 32);
    const auto page = static_cast<PageId>(key & 0xffffffffu);
    std::sort(items.begin(), items.end(), [](const PageItem& a, const PageItem& b) {
      return a.seq < b.seq;
    });
    bool twin_live = false;
    bool twin_state_known = complete;  // wrapped streams start mid-lifecycle
    std::uint64_t last_gen = 0;
    bool have_gen = false;
    bool exclusive = false;
    bool excl_state_known = complete;
    bool saw_wn_drain = false;
    std::uint64_t last_dir_clock = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const PageItem& it = items[i];
      if (i > 0 && items[i - 1].seq == it.seq) {
        ck.Issuef(it.index, "unit %d page %u duplicate transition seq %u", unit, page,
                  it.seq);
      }
      switch (it.kind) {
        case EventKind::kTwinCreate:
          if ((it.a1 & 1) == 0) {
            ck.Issuef(it.index, "unit %d page %u twin created with even generation %" PRIu64,
                      unit, page, it.a1);
          }
          if (twin_state_known && twin_live) {
            ck.Issuef(it.index, "unit %d page %u twin created while one is live", unit,
                      page);
          }
          if (have_gen && it.a1 <= last_gen) {
            ck.Issuef(it.index,
                      "unit %d page %u twin generation regressed: %" PRIu64 " -> %" PRIu64,
                      unit, page, last_gen, it.a1);
          }
          last_gen = it.a1;
          have_gen = true;
          twin_live = true;
          twin_state_known = true;
          break;
        case EventKind::kTwinDiscard:
          if ((it.a1 & 1) != 0) {
            ck.Issuef(it.index,
                      "unit %d page %u twin discarded with odd generation %" PRIu64, unit,
                      page, it.a1);
          }
          if (twin_state_known && !twin_live) {
            ck.Issuef(it.index, "unit %d page %u twin discarded while none is live", unit,
                      page);
          }
          if (have_gen && it.a1 <= last_gen) {
            ck.Issuef(it.index,
                      "unit %d page %u twin generation regressed: %" PRIu64 " -> %" PRIu64,
                      unit, page, last_gen, it.a1);
          }
          last_gen = it.a1;
          have_gen = true;
          twin_live = false;
          twin_state_known = true;
          break;
        case EventKind::kExclEnter:
          if (excl_state_known && exclusive) {
            ck.Issuef(it.index, "unit %d page %u entered exclusive mode twice", unit,
                      page);
          }
          exclusive = true;
          excl_state_known = true;
          break;
        case EventKind::kExclBreak:
          if (excl_state_known && !exclusive) {
            ck.Issuef(it.index, "unit %d page %u exclusive break without enter", unit,
                      page);
          }
          exclusive = false;
          excl_state_known = true;
          break;
        case EventKind::kWnDrainGlobal:
          saw_wn_drain = true;
          break;
        case EventKind::kDiffApplyIncoming:
          if (excl_state_known && exclusive) {
            ck.Issuef(it.index,
                      "unit %d page %u received a remote diff while exclusive", unit,
                      page);
          }
          if (complete && it.a1 == 0 && !saw_wn_drain) {
            ck.Issuef(it.index,
                      "unit %d page %u diff applied without a preceding write notice",
                      unit, page);
          }
          break;
        case EventKind::kDirUpdate:
          if (it.a1 < last_dir_clock) {
            ck.Issuef(it.index,
                      "unit %d page %u directory clock regressed: %" PRIu64 " -> %" PRIu64,
                      unit, page, last_dir_clock, it.a1);
          }
          last_dir_clock = it.a1;
          break;
        default:
          break;
      }
    }
  }

  return ck.result;
}

TraceBreakdown DeriveBreakdown(const std::vector<TraceEvent>& merged, int procs,
                               const std::vector<int>& data_traffic_classes) {
  TraceBreakdown b;
  // Per-processor open-episode state. Faults and barrier episodes never
  // nest on one processor (OnFault does not recur; a thread waits at one
  // barrier at a time), so a single open slot per kind suffices. ~0 marks
  // "no episode open".
  constexpr VirtTime kNone = ~VirtTime{0};
  std::vector<VirtTime> fault_open(static_cast<std::size_t>(procs), kNone);
  std::vector<VirtTime> barrier_open(static_cast<std::size_t>(procs), kNone);
  std::uint64_t barrier_arrives = 0;
  for (const TraceEvent& e : merged) {
    if (e.proc >= procs) {
      // Cache-agent rows (async mode) carry no episode events, but their
      // MC writes are real traffic and must land in the byte sums.
      if (static_cast<EventKind>(e.kind) == EventKind::kMcWrite) {
        b.total_bytes += e.a1;
        for (const int cls : data_traffic_classes) {
          if (e.a0 == static_cast<std::uint32_t>(cls)) {
            b.data_bytes += e.a1;
            break;
          }
        }
      }
      continue;
    }
    const std::size_t p = e.proc;
    switch (static_cast<EventKind>(e.kind)) {
      case EventKind::kFaultBegin:
        (e.a0 != 0 ? b.write_faults : b.read_faults) += 1;
        if (fault_open[p] != kNone) {
          ++b.unpaired_episodes;
        }
        fault_open[p] = e.vt;
        break;
      case EventKind::kFaultEnd:
        if (fault_open[p] == kNone || e.vt < fault_open[p]) {
          ++b.unpaired_episodes;
        } else {
          b.fault_ns += e.vt - fault_open[p];
        }
        fault_open[p] = kNone;
        break;
      case EventKind::kBarrierArrive:
        ++barrier_arrives;
        if (barrier_open[p] != kNone) {
          ++b.unpaired_episodes;
        }
        barrier_open[p] = e.vt;
        break;
      case EventKind::kBarrierDepart:
        if (barrier_open[p] == kNone || e.vt < barrier_open[p]) {
          ++b.unpaired_episodes;
        } else {
          b.barrier_ns += e.vt - barrier_open[p];
        }
        barrier_open[p] = kNone;
        break;
      case EventKind::kTwinCreate:
        ++b.twin_creates;
        break;
      case EventKind::kDirUpdate:
        ++b.dir_updates;
        break;
      case EventKind::kProtectRange:
        ++b.mprotect_calls;
        b.mprotect_pages_coalesced += (e.a1 & 0xffffffffu) - 1;
        break;
      case EventKind::kMcWrite:
        b.total_bytes += e.a1;
        for (const int cls : data_traffic_classes) {
          if (e.a0 == static_cast<std::uint32_t>(cls)) {
            b.data_bytes += e.a1;
            break;
          }
        }
        break;
      default:
        break;
    }
  }
  for (int p = 0; p < procs; ++p) {
    if (fault_open[static_cast<std::size_t>(p)] != kNone) {
      ++b.unpaired_episodes;
    }
    if (barrier_open[static_cast<std::size_t>(p)] != kNone) {
      ++b.unpaired_episodes;
    }
  }
  b.barriers = procs > 0 ? barrier_arrives / static_cast<std::uint64_t>(procs) : 0;
  return b;
}

std::string TraceCheckResult::ToString() const {
  char head[160];
  std::snprintf(head, sizeof(head),
                "trace check: %s — %" PRIu64 " events, %" PRIu64 " dropped%s, %zu issue(s)\n",
                ok ? "OK" : "FAILED", events, dropped,
                complete ? "" : " (stream incomplete; existence checks skipped)",
                issues.size());
  std::string out = head;
  for (const TraceIssue& issue : issues) {
    char line[320];
    std::snprintf(line, sizeof(line), "  [%zu] %s\n", issue.event_index,
                  issue.message.c_str());
    out += line;
  }
  return out;
}

}  // namespace cashmere
