#include "cashmere/common/config.hpp"

#include <cstdio>

namespace cashmere {

const char* ProtocolVariantName(ProtocolVariant v) {
  switch (v) {
    case ProtocolVariant::kTwoLevel:
      return "2L";
    case ProtocolVariant::kTwoLevelShootdown:
      return "2LS";
    case ProtocolVariant::kTwoLevelGlobalLock:
      return "2L-lock";
    case ProtocolVariant::kOneLevelDiff:
      return "1LD";
    case ProtocolVariant::kOneLevelWriteDouble:
      return "1L";
  }
  return "?";
}

bool IsTwoLevel(ProtocolVariant v) {
  switch (v) {
    case ProtocolVariant::kTwoLevel:
    case ProtocolVariant::kTwoLevelShootdown:
    case ProtocolVariant::kTwoLevelGlobalLock:
      return true;
    case ProtocolVariant::kOneLevelDiff:
    case ProtocolVariant::kOneLevelWriteDouble:
      return false;
  }
  return true;
}

std::string Config::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %d:%d heap=%zuKB pages=%zu sp=%zu%s%s%s",
                ProtocolVariantName(protocol), total_procs(), procs_per_node,
                heap_bytes / 1024, pages(), superpage_pages, home_opt ? " home-opt" : "",
                delivery == DeliveryMode::kInterrupt ? " interrupts" : "",
                charge_diff_run_headers ? " run-hdrs" : "");
  return buf;
}

}  // namespace cashmere
