#include "cashmere/common/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cashmere {

const char* ProtocolVariantName(ProtocolVariant v) {
  switch (v) {
    case ProtocolVariant::kTwoLevel:
      return "2L";
    case ProtocolVariant::kTwoLevelShootdown:
      return "2LS";
    case ProtocolVariant::kTwoLevelGlobalLock:
      return "2L-lock";
    case ProtocolVariant::kOneLevelDiff:
      return "1LD";
    case ProtocolVariant::kOneLevelWriteDouble:
      return "1L";
  }
  return "?";
}

bool IsTwoLevel(ProtocolVariant v) {
  switch (v) {
    case ProtocolVariant::kTwoLevel:
    case ProtocolVariant::kTwoLevelShootdown:
    case ProtocolVariant::kTwoLevelGlobalLock:
      return true;
    case ProtocolVariant::kOneLevelDiff:
    case ProtocolVariant::kOneLevelWriteDouble:
      return false;
  }
  return true;
}

namespace {

// The single registration point for variant switches: every boolean knob
// that changes protocol behaviour or accounting gets one row here, and
// Describe() renders the active ones in registration order. Adding a
// variant means adding a field to its option group and one row below.
struct VariantFlag {
  const char* label;  // rendered with a leading space when active
  bool (*active)(const Config&);
};

constexpr VariantFlag kVariantFlags[] = {
    {" home-opt", [](const Config& c) { return c.home_opt; }},
    {" interrupts", [](const Config& c) { return c.delivery == DeliveryMode::kInterrupt; }},
    {" run-hdrs", [](const Config& c) { return c.diff.charge_run_headers; }},
    {" trace", [](const Config& c) { return c.trace.enabled; }},
    {" no-perm-batch", [](const Config& c) { return !c.vm.batch_mprotect; }},
    {" dir-sharded", [](const Config& c) { return c.dir.mode == DirMode::kSharded; }},
    {" async-release", [](const Config& c) { return c.AsyncRelease(); }},
    {" mc-shm", [](const Config& c) { return c.mc.transport == McTransportKind::kShm; }},
};

}  // namespace

bool ParseTransportKind(const char* name, McTransportKind* out) {
  if (std::strcmp(name, "inproc") == 0) {
    *out = McTransportKind::kInProc;
    return true;
  }
  if (std::strcmp(name, "shm") == 0) {
    *out = McTransportKind::kShm;
    return true;
  }
  return false;
}

bool ApplyTransportEnv(Config* cfg) {
  const char* env = std::getenv("CSM_TRANSPORT");
  if (env == nullptr) {
    return true;
  }
  return ParseTransportKind(env, &cfg->mc.transport);
}

std::string Config::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %d:%d heap=%zuKB pages=%zu sp=%zu",
                ProtocolVariantName(protocol), total_procs(), procs_per_node,
                heap_bytes / 1024, pages(), superpage_pages);
  std::string out = buf;
  for (const VariantFlag& flag : kVariantFlags) {
    if (flag.active(*this)) {
      out += flag.label;
    }
  }
  return out;
}

}  // namespace cashmere
