// Spin primitives tuned for a heavily oversubscribed host: every spin loop
// yields quickly so that 32 emulated processors make progress on few cores.
#ifndef CASHMERE_COMMON_SPIN_HPP_
#define CASHMERE_COMMON_SPIN_HPP_

#include <atomic>
#include <cstdint>

#include <sched.h>

#include "cashmere/common/thread_safety.hpp"

namespace cashmere {

// Call once per iteration of any wait loop. Spins briefly, then yields.
class Backoff {
 public:
  void Pause() {
    if (++spins_ <= kSpinsBeforeYield) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    } else {
      sched_yield();
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinsBeforeYield = 16;
  int spins_ = 0;
};

// A simple test-and-test-and-set spin lock. Used for intra-node protocol
// structures (the paper's ll/sc-protected local locks). Safe to take inside
// the SIGSEGV fault path because holders never block.
//
// Declared as a clang thread-safety capability: fields annotated
// CSM_GUARDED_BY(lock) and functions annotated CSM_REQUIRES(lock) are
// statically checked against Lock/Unlock pairing in the clang-analyze build.
class CSM_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() CSM_ACQUIRE() {
    Backoff backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        backoff.Pause();
      }
    }
  }

  bool TryLock() CSM_TRY_ACQUIRE(true) {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() CSM_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

class CSM_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) CSM_ACQUIRE(lock) : lock_(lock) {
    lock_.Lock();
  }
  ~SpinLockGuard() CSM_RELEASE() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_SPIN_HPP_
