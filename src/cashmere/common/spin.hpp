// Spin primitives tuned for a heavily oversubscribed host: every spin loop
// yields quickly so that 32 emulated processors make progress on few cores.
#ifndef CASHMERE_COMMON_SPIN_HPP_
#define CASHMERE_COMMON_SPIN_HPP_

#include <atomic>
#include <cstdint>

#include <sched.h>

namespace cashmere {

// Call once per iteration of any wait loop. Spins briefly, then yields.
class Backoff {
 public:
  void Pause() {
    if (++spins_ <= kSpinsBeforeYield) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    } else {
      sched_yield();
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinsBeforeYield = 16;
  int spins_ = 0;
};

// A simple test-and-test-and-set spin lock. Used for intra-node protocol
// structures (the paper's ll/sc-protected local locks). Safe to take inside
// the SIGSEGV fault path because holders never block.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    Backoff backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        backoff.Pause();
      }
    }
  }

  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_SPIN_HPP_
