// Replay invariant checker: walks a merged trace stream and asserts the
// protocol invariants that must hold in any legal execution, independent of
// scheduling:
//
//   1. Twin lifecycle — a twin is live iff its generation is odd: create
//      events carry odd generations, discards even, and per (unit, page)
//      the create/discard sequence alternates with strictly increasing
//      generations.
//   2. Write-notice causality — an incoming diff is only merged into a
//      local copy after a write notice for that page was drained into the
//      unit (break-exclusive piggybacks are the documented exception and
//      are flagged in the event).
//   3. Exclusive isolation — a page in exclusive mode never receives a
//      remote diff: no diff-apply between an exclusive-enter and the
//      matching break on the same (unit, page).
//   4. Directory monotonicity — the unit logical clock stamped on
//      directory-word updates never regresses per (unit, page).
//
// Cross-processor ordering: per-processor virtual clocks are only
// partially ordered (they reconcile at synchronization), so per-page
// invariants are ordered by the page transition sequence number
// (TraceEvent::seq, bumped under the page lock) rather than by timestamp.
// Existence checks (2, and request/reply pairing) only run on complete
// streams — rings that wrapped lose their prefix.
#ifndef CASHMERE_COMMON_TRACE_CHECK_HPP_
#define CASHMERE_COMMON_TRACE_CHECK_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "cashmere/common/trace.hpp"

namespace cashmere {

struct Config;

struct TraceIssue {
  std::size_t event_index = 0;  // index into the merged stream (~0 if none)
  std::string message;
};

struct TraceCheckResult {
  bool ok = true;
  bool complete = true;       // no ring wrapped; all invariants were checked
  std::uint64_t events = 0;   // events examined
  std::uint64_t dropped = 0;  // events lost to ring wraparound
  std::vector<TraceIssue> issues;  // capped at kMaxIssues

  static constexpr std::size_t kMaxIssues = 64;
  std::string ToString() const;
};

// `merged` must be a TraceLog::Merged()-ordered stream (per-processor
// append order preserved). `dropped` is TraceLog::TotalDropped().
TraceCheckResult CheckTrace(const std::vector<TraceEvent>& merged, const Config& cfg,
                            std::uint64_t dropped);

}  // namespace cashmere

#endif  // CASHMERE_COMMON_TRACE_CHECK_HPP_
