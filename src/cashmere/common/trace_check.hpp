// Replay invariant checker: walks a merged trace stream and asserts the
// protocol invariants that must hold in any legal execution, independent of
// scheduling:
//
//   1. Twin lifecycle — a twin is live iff its generation is odd: create
//      events carry odd generations, discards even, and per (unit, page)
//      the create/discard sequence alternates with strictly increasing
//      generations.
//   2. Write-notice causality — an incoming diff is only merged into a
//      local copy after a write notice for that page was drained into the
//      unit (break-exclusive piggybacks are the documented exception and
//      are flagged in the event).
//   3. Exclusive isolation — a page in exclusive mode never receives a
//      remote diff: no diff-apply between an exclusive-enter and the
//      matching break on the same (unit, page).
//   4. Directory monotonicity — the unit logical clock stamped on
//      directory-word updates never regresses per (unit, page).
//   5. Coherence-log pipeline (async release mode) — per unit, published
//      log sequences form a contiguous 1..N with no duplicates, applies
//      are a prefix of the publishes in order, every publish is applied by
//      the end of the stream (FinalFlush drains the logs), and no acquire
//      gates on a sequence that was never published.
//
// Relaxed ordering under async release: write notices become visible when
// the unit's cache agent applies the log record, not when the releasing
// processor returns — i.e. WN-visible-before-acquire-gate replaces
// WN-before-release-return. Invariant 2 is unchanged by this: the agent
// posts a record's notices before advancing applied_seq, and an acquirer
// passes its gate (kCohGate) before draining notices, so a diff is still
// merged only after the corresponding notice was drained into the unit.
// Event rows: in async mode the merged stream additionally carries the
// cache agents' rows at proc ids [total_procs, total_procs + units); agent
// events are not page transitions (seq == 0 throughout).
//
// Cross-processor ordering: per-processor virtual clocks are only
// partially ordered (they reconcile at synchronization), so per-page
// invariants are ordered by the page transition sequence number
// (TraceEvent::seq, bumped under the page lock) rather than by timestamp.
// Existence checks (2, and request/reply pairing) only run on complete
// streams — rings that wrapped lose their prefix.
#ifndef CASHMERE_COMMON_TRACE_CHECK_HPP_
#define CASHMERE_COMMON_TRACE_CHECK_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "cashmere/common/trace.hpp"

namespace cashmere {

struct Config;

struct TraceIssue {
  std::size_t event_index = 0;  // index into the merged stream (~0 if none)
  std::string message;
};

struct TraceCheckResult {
  bool ok = true;
  bool complete = true;       // no ring wrapped; all invariants were checked
  std::uint64_t events = 0;   // events examined
  std::uint64_t dropped = 0;  // events lost to ring wraparound
  std::vector<TraceIssue> issues;  // capped at kMaxIssues

  static constexpr std::size_t kMaxIssues = 64;
  std::string ToString() const;
};

// `merged` must be a TraceLog::Merged()-ordered stream (per-processor
// append order preserved). `dropped` is TraceLog::TotalDropped().
TraceCheckResult CheckTrace(const std::vector<TraceEvent>& merged, const Config& cfg,
                            std::uint64_t dropped);

// --- Figure-6-style breakdown derivation ----------------------------------
// Re-derives the run's headline statistics and time breakdown from the
// event stream alone, so a test can cross-check the trace subsystem against
// the independently maintained Stats counters: if instrumentation drifts
// (an edge loses its emit, a category is double-charged), the two
// derivations disagree. Only meaningful on complete streams.
struct TraceBreakdown {
  // Event counts (cross-checked against Table 3 counters).
  std::uint64_t read_faults = 0;      // kFaultBegin with a0 == 0
  std::uint64_t write_faults = 0;     // kFaultBegin with a0 == 1
  std::uint64_t twin_creates = 0;     // vs Counter::kTwinCreations
  std::uint64_t dir_updates = 0;      // vs Counter::kDirectoryUpdates
  std::uint64_t barriers = 0;         // arrive events / procs
  // Bytes placed on the MC (kMcWrite a1 sums). `data_bytes` sums only the
  // Traffic classes the caller names (the paper's "Data" row);
  // `total_bytes` sums every class.
  std::uint64_t data_bytes = 0;
  std::uint64_t total_bytes = 0;
  // PermBatch commits (kProtectRange): each event is one mprotect call
  // covering `count` pages (a1 low word), so the counts cross-check
  // Counter::kMprotectCalls / kMprotectPagesCoalesced exactly.
  std::uint64_t mprotect_calls = 0;
  std::uint64_t mprotect_pages_coalesced = 0;  // sum of (count - 1)
  // Virtual-time episode sums over all processors (Figure 6's non-compute
  // slices as seen by the trace): fault handling between kFaultBegin/End,
  // barrier episodes between kBarrierArrive/Depart.
  std::uint64_t fault_ns = 0;
  std::uint64_t barrier_ns = 0;
  std::uint64_t unpaired_episodes = 0;  // begin without end (or vice versa)
};

// `data_traffic_classes` holds the Traffic enum values (as ints) that count
// toward `data_bytes`; the caller supplies them so this layer does not
// depend on mc/. `procs` bounds the per-processor pairing state.
TraceBreakdown DeriveBreakdown(const std::vector<TraceEvent>& merged, int procs,
                               const std::vector<int>& data_traffic_classes);

}  // namespace cashmere

#endif  // CASHMERE_COMMON_TRACE_CHECK_HPP_
