// Minimal check/abort macros. The fault path runs inside a SIGSEGV handler,
// so failures print with write(2) where possible and abort.
#ifndef CASHMERE_COMMON_LOGGING_HPP_
#define CASHMERE_COMMON_LOGGING_HPP_

#include <cstdio>
#include <cstdlib>

namespace cashmere {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CASHMERE CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace cashmere

#define CSM_CHECK(expr)                                   \
  do {                                                    \
    if (!(expr)) {                                        \
      ::cashmere::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                     \
  } while (0)

// Debug-build-only check; compiled out under NDEBUG.
#ifdef NDEBUG
#define CSM_DCHECK(expr) ((void)0)
#else
#define CSM_DCHECK(expr) CSM_CHECK(expr)
#endif

#endif  // CASHMERE_COMMON_LOGGING_HPP_
