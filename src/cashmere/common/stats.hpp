// Per-processor event counters for the Table 3 statistics, plus the time
// breakdown needed for Figure 6. Each processor owns its own Stats
// instance; aggregation happens after the run. Event counts are relaxed
// atomics with single-writer read-modify-write (plain load + add + store —
// no lock prefix) because the deadlock watchdog samples them from its own
// thread while the run is live.
#ifndef CASHMERE_COMMON_STATS_HPP_
#define CASHMERE_COMMON_STATS_HPP_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "cashmere/common/cost_model.hpp"
#include "cashmere/common/ownership.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

// Rows of the paper's Table 3 (plus a few internal extras).
enum class Counter : int {
  kLockAcquires = 0,
  kFlagAcquires,
  kBarriers,
  kReadFaults,
  kWriteFaults,
  kPageTransfers,
  kDirectoryUpdates,
  kWriteNotices,
  kExclTransitions,  // transitions into and out of exclusive mode
  kDataBytes,        // all data placed on the Memory Channel
  kTwinCreations,
  kIncomingDiffs,
  kFlushUpdates,
  kShootdowns,
  kPageFlushes,
  kPolls,
  kMessagesHandled,
  kHomeRelocations,
  // Diff-engine host-side scan instrumentation (not part of Table 3).
  kDiffBlocksScanned,  // 64-byte blocks whose words were loaded
  kDiffBlocksSkipped,  // blocks skipped via dirty-region maps
  kDiffRunsEmitted,    // RLE runs emitted by outgoing/incoming scans
  kDiffRunBytes,       // wire-format bytes: run payload + run headers
  // Lock-free write-tracking instrumentation (software fault mode).
  kDirtyShardMerges,     // per-proc shards OR-folded into a twin's map
  kDirtyShardStaleDrops, // marked shards discarded at twin creation (stale gen)
  kDiffRunApplyBytes,    // wire bytes replayed by the run-serialized apply
  // Structured event tracing (common/trace.hpp).
  kTraceEvents,          // typed events appended to the per-proc rings
  kTraceDrops,           // events lost to ring wraparound
  kMprotectCalls,        // mprotect syscalls issued by PermBatch commits
  kMprotectPagesCoalesced,  // pages whose syscall was merged into a range
                            // (applied pages minus calls)
  // Asynchronous release-path coherence (protocol/coherence_log.hpp).
  kCohLogPublishes,      // records published into the per-unit logs
  kCohLogApplies,        // records applied by the cache agents
  kCohLogPublishStalls,  // publishes that waited on a full ring
  kCohGateWaits,         // acquires that waited on an applied_seq gate
  kReleasePathNs,        // virtual ns spent inside ReleaseSync (critical path)
  // Directory backend instrumentation (protocol/directory_sharded.hpp).
  kDirP2PUpdates,        // directory updates sent point-to-point (sharded)
  kDirBroadcastUpdates,  // directory updates broadcast to every replica
  kDirCacheHits,         // sharded-mode entry-cache hits (folded post-run)
  kDirSegmentsAllocated, // lazily-allocated shard segments (folded post-run)
  kNumCounters,
};
inline constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);

const char* CounterName(Counter c);

struct Stats {
  // Single-writer: only the owning processor's thread calls Add/AddTime.
  // The watchdog may *read* counts concurrently (hence atomics); the
  // plain load + add + store RMW is only safe because of single-writer.
  CSM_SINGLE_WRITER("the processor this Stats instance belongs to")
  std::array<std::atomic<std::uint64_t>, kNumCounters> counts{};
  // time_ns stays plain: it is never read off-thread while the run is live.
  CSM_SINGLE_WRITER("the processor this Stats instance belongs to")
  std::array<std::uint64_t, kNumTimeCategories> time_ns{};
  // Dynamic single-writer verifier (no-op unless ownership checks are on;
  // copying a Stats resets the copy's claim — see OwnerCell).
  OwnerCell owner_check;

  Stats() = default;
  Stats(const Stats& other) { *this = other; }
  Stats& operator=(const Stats& other) {
    for (int i = 0; i < kNumCounters; ++i) {
      counts[i].store(other.counts[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    time_ns = other.time_ns;
    return *this;
  }

  void Add(Counter c, std::uint64_t n = 1) {
    owner_check.NoteWrite("Stats::Add");
    std::atomic<std::uint64_t>& a = counts[static_cast<int>(c)];
    a.store(a.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  std::uint64_t Get(Counter c) const {
    return counts[static_cast<int>(c)].load(std::memory_order_relaxed);
  }
  void AddTime(TimeCategory cat, std::uint64_t ns) {
    owner_check.NoteWrite("Stats::AddTime");
    time_ns[static_cast<int>(cat)] += ns;
  }

  Stats& operator+=(const Stats& other);
};

// Aggregated report over all processors of a run.
struct StatsReport {
  Stats total;
  VirtTime exec_time_ns = 0;  // max final virtual clock over processors
  // Raw host CPU nanoseconds attributed to user compute, summed over
  // processors (pre-scaling); used for dilation correction.
  std::uint64_t user_host_ns = 0;

  double ExecTimeSec() const { return static_cast<double>(exec_time_ns) / 1e9; }
  // Human-readable multi-line summary in the style of the paper's Table 3.
  std::string ToString() const;
  // Machine-readable forms for downstream analysis. The CSV header row and
  // a value row (matching column order); keys are stable kebab-case names.
  static std::string CsvHeader();
  std::string ToCsvRow() const;
};

}  // namespace cashmere

#endif  // CASHMERE_COMMON_STATS_HPP_
