// Run configuration: protocol variant, cluster shape, heap geometry, and
// cost-model/feature switches. Mirrors the paper's experimental knobs.
#ifndef CASHMERE_COMMON_CONFIG_HPP_
#define CASHMERE_COMMON_CONFIG_HPP_

#include <cstddef>
#include <cstdint>
#include <string>

#include "cashmere/common/cost_model.hpp"
#include "cashmere/common/logging.hpp"
#include "cashmere/common/types.hpp"

namespace cashmere {

// The protocol family evaluated in the paper.
enum class ProtocolVariant : int {
  kTwoLevel = 0,           // Cashmere-2L: two-way diffing, lock-free structures
  kTwoLevelShootdown = 1,  // Cashmere-2LS: intra-node shootdown of write mappings
  kTwoLevelGlobalLock = 2, // Section 3.3.5 ablation: global-lock directory/WN lists
  kOneLevelDiff = 3,       // Cashmere-1LD: each processor a node, twins + diffs
  kOneLevelWriteDouble = 4,  // Cashmere-1L: write-through (doubled writes) cost model
};

const char* ProtocolVariantName(ProtocolVariant v);
bool IsTwoLevel(ProtocolVariant v);

// How explicit requests (page fetch, break-exclusive, shootdown) are
// delivered. Polling is the paper's default; interrupt mode only changes
// the charged costs (Section 3.3.4).
enum class DeliveryMode : int {
  kPolling = 0,
  kInterrupt = 1,
};

// How page access faults are generated.
enum class FaultMode : int {
  kSigsegv = 0,    // real mprotect + SIGSEGV, the production path
  kSoftware = 1,   // explicit EnsureRead/EnsureWrite calls (tests/debugging)
};

// --- Variant option groups ------------------------------------------------
// The feature switches are grouped by subsystem rather than kept as flat
// Config fields. Each group is a plain struct with defaults matching the
// historical flat fields exactly; Config::Describe renders every active
// variant flag through a single registration table in config.cpp, so a new
// switch needs one field here and one table row there.

// Diff-engine variants.
struct DiffTuning {
  // Cost-model variant: charge the 8-byte DiffRun wire headers (tracked by
  // the kDiffRunBytes statistic) as Memory Channel diff traffic — they are
  // accounted in the Table 3 data volume and occupy the serial bus at flush
  // time. Off by default: on real MC a diff run is raw remote writes of the
  // modified words and the run descriptors are host-side bookkeeping, so
  // the paper's numbers charge payload bytes only. Enabling this models a
  // transport that ships the framed runs themselves (the user-level DSM
  // framing in PAPERS.md) and must leave the default outputs byte-identical
  // when off.
  bool charge_run_headers = false;
};

// Structured event tracing (common/trace.hpp).
struct TraceOptions {
  // Record typed protocol events into per-processor rings. Off by default:
  // the disabled cost on instrumented paths is one thread-local load.
  bool enabled = false;
  // Ring capacity in events per processor (rounded up to a power of two).
  // 16Ki events x 40 bytes = 640 KB per processor; when a ring wraps, the
  // oldest events are dropped and counted (Counter::kTraceDrops).
  std::uint32_t ring_events = 1u << 14;
};

// VM permission-engine variants (vm/perm_batch.hpp).
struct VmTuning {
  // Batch protocol permission changes per episode through the PermBatch
  // engine: queued transitions are sorted, deduplicated, elided against the
  // view shadow table, and committed as one mprotect per coalesced range.
  // Off = commit each queued transition immediately, reproducing the
  // historical one-syscall-per-page behaviour (the bench_protect baseline).
  // Either setting must leave the modeled virtual-time outputs
  // byte-identical: batching moves when syscalls happen, never what the
  // simulated protocol observes.
  bool batch_mprotect = true;
};

// Global directory backend selection (protocol/directory.hpp,
// protocol/directory_sharded.hpp, DESIGN.md §13).
enum class DirMode : int {
  // The paper's replicated directory: every unit holds a full replica
  // (O(pages x units) words per node) and every update is an ordered MC
  // broadcast. The default, byte-identical to the historical behaviour.
  kReplicated = 0,
  // Hash-sharded directory: each page's entry lives only on its shard
  // owner (co-located with the HomeTable home), updates are point-to-point
  // writes to that owner, readers go through a per-unit entry cache
  // invalidated on write notices, and entry storage is lazily allocated in
  // fixed-size segments (memory proportional to touched pages).
  kSharded = 1,
};

struct DirTuning {
  DirMode mode = DirMode::kReplicated;
  // Sharded mode: per-unit directory-entry cache size (rounded up to a
  // power of two; direct-mapped).
  std::uint32_t cache_entries = 4096;
  // Sharded mode: pages per lazily-allocated shard segment. Smaller
  // segments track sparse touch patterns more tightly; larger ones
  // amortize allocation.
  std::uint32_t segment_pages = 64;
};

// Asynchronous release-path coherence (protocol/coherence_log.hpp,
// DESIGN.md §12). Named `async` rather than the issue's `protocol.*`
// spelling because Config::protocol is the variant enum.
struct AsyncTuning {
  // Publish release-path diff replay and write-notice posting into the
  // per-unit CoherenceLog, drained by a background cache-agent thread, and
  // gate acquires on the happens-before sequence vector instead of waiting
  // for all in-flight traffic. On by default for the lock-free two-level
  // variants (2L, 2L-lock), where the pipeline has soaked through the TSan
  // CI job and the bench_async_release gate; other variants ignore it (see
  // Config::AsyncRelease). Set false to force the historical synchronous
  // release path.
  bool release = true;
  // CoherenceLog ring capacity (records per unit). A full ring back-
  // pressures the publisher, which spins until the agent catches up.
  std::uint32_t log_entries = 64;
};

// Memory Channel transport selection (mc/transport.hpp, DESIGN.md §14).
enum class McTransportKind : int {
  // All emulated nodes in one process; remote writes are atomic stores into
  // the receiver's memory. The default, byte-identical counters to the
  // pre-transport McHub.
  kInProc = 0,
  // One OS process per node: arenas on memfd segments mapped by every node
  // process, ordered ops through a cross-process futex-or-spin lock, UDS
  // control plane for bootstrap/barrier/teardown (tools/cashmere_launch).
  kShm = 1,
};

struct McTuning {
  McTransportKind transport = McTransportKind::kInProc;
};

// Parses a transport name ("inproc" | "shm") into `*out`; false on an
// unknown name. Shared by the CLI drivers' --transport flags.
bool ParseTransportKind(const char* name, McTransportKind* out);

// Cost-model scaling knobs.
struct CostTuning {
  // Multiplier applied to every modeled protocol cost (Runtime applies it
  // to `costs` at construction). Benchmarks on scaled-down problems set
  // this to sizeratio-derived values so the compute-to-communication ratio
  // matches the paper's full-size runs; 1.0 charges the paper's absolute
  // costs.
  double scale = 1.0;
  // Host-to-Alpha user-time scale. 0 means auto-calibrate at startup.
  double time_scale = 0.0;
};

struct Config {
  ProtocolVariant protocol = ProtocolVariant::kTwoLevel;
  int nodes = 8;
  int procs_per_node = 4;

  std::size_t heap_bytes = 8 * 1024 * 1024;
  // Pages per superpage (one Memory Channel mapping per superpage; all
  // pages of a superpage share a home node).
  std::size_t superpage_pages = 16;

  // Home-node optimization for the one-level protocols: processors on the
  // home processor's SMP node work directly on the master copy.
  bool home_opt = false;
  // First-touch home relocation after initialization (Section 2.3).
  bool first_touch = true;

  DeliveryMode delivery = DeliveryMode::kPolling;
  FaultMode fault_mode = FaultMode::kSigsegv;

  DiffTuning diff;
  TraceOptions trace;
  VmTuning vm;
  DirTuning dir;
  AsyncTuning async;
  McTuning mc;
  CostTuning cost;

  CostModel costs;
  // Abort the run if no processor makes progress for this many seconds of
  // real time (deadlock watchdog); 0 disables.
  double watchdog_seconds = 120.0;

  int total_procs() const { return nodes * procs_per_node; }
  std::size_t pages() const { return heap_bytes / kPageBytes; }
  std::size_t superpages() const {
    return (pages() + superpage_pages - 1) / superpage_pages;
  }
  std::size_t superpage_bytes() const { return superpage_pages * kPageBytes; }

  // Number of coherence units and their mapping to processors.
  bool two_level() const { return IsTwoLevel(protocol); }
  int units() const { return two_level() ? nodes : total_procs(); }
  int procs_per_unit() const { return two_level() ? procs_per_node : 1; }
  UnitId UnitOfProc(ProcId p) const { return two_level() ? p / procs_per_node : p; }
  NodeId NodeOfProc(ProcId p) const { return p / procs_per_node; }
  ProcId FirstProcOfUnit(UnitId u) const { return u * procs_per_unit(); }

  // Whether the async release-path pipeline is active for this run: the
  // `async.release` switch applies to the lock-free two-level variants
  // only. 2LS flushes synchronously by construction (shootdown + full-page
  // overwrite), and the one-level protocols have not soaked with the
  // agents, so they keep the synchronous release regardless of the switch.
  bool AsyncRelease() const {
    return async.release && (protocol == ProtocolVariant::kTwoLevel ||
                             protocol == ProtocolVariant::kTwoLevelGlobalLock);
  }

  void Validate() const {
    // DirWord::Pack stores the exclusive-holder processor id in 6 bits
    // (directory.hpp); a larger cluster would silently truncate the id and
    // corrupt exclusive-holder identity, so reject it at config load,
    // before the per-dimension caps (which may grow past it some day).
    CSM_CHECK(nodes >= 1 && procs_per_node >= 1);
    CSM_CHECK(total_procs() <= 64 &&
              "DirWord::Pack holds excl_proc in 6 bits: at most 64 processors");
    CSM_CHECK(nodes <= kMaxNodes);
    CSM_CHECK(procs_per_node <= kMaxProcsPerNode);
    CSM_CHECK(heap_bytes % kPageBytes == 0);
    CSM_CHECK(heap_bytes >= kPageBytes);
    CSM_CHECK(superpage_pages >= 1);
    CSM_CHECK(dir.cache_entries >= 1);
    CSM_CHECK(dir.segment_pages >= 1);
  }

  std::string Describe() const;
};

// Applies the CSM_TRANSPORT environment variable (if set) to `cfg->mc`.
// This is how tools/cashmere_launch selects the shm backend in the lead
// process without rewriting its command line; an explicit --transport flag
// parsed afterwards wins. Returns false (cfg untouched) on an unknown value.
bool ApplyTransportEnv(Config* cfg);

}  // namespace cashmere

#endif  // CASHMERE_COMMON_CONFIG_HPP_
