// Host-to-Alpha calibration: estimates how much slower a 233 MHz Alpha
// 21064A would execute user compute than this host, so measured thread CPU
// time can be scaled into paper-era virtual time.
#ifndef CASHMERE_COMMON_CALIBRATION_HPP_
#define CASHMERE_COMMON_CALIBRATION_HPP_

namespace cashmere {

// Returns the multiplicative factor applied to measured host CPU time.
// Computed once per process (cached); typical values are 20-100 on modern
// x86 hosts.
double HostToAlphaTimeScale();

}  // namespace cashmere

#endif  // CASHMERE_COMMON_CALIBRATION_HPP_
