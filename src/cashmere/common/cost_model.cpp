#include "cashmere/common/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace cashmere {

namespace {

// Linear interpolation between the measured empty-diff and full-page-diff
// endpoints, by fraction of the page that changed.
double Interp(double min_us, double max_us, std::size_t words_changed) {
  const double frac =
      std::min(1.0, static_cast<double>(words_changed) / static_cast<double>(kWordsPerPage));
  return min_us + (max_us - min_us) * frac;
}

}  // namespace

CostModel CostModel::ScaledBy(double f) const {
  CostModel scaled = *this;
  scaled.mc_write_latency_us *= f;
  scaled.mprotect_us *= f;
  scaled.page_fault_us *= f;
  scaled.twin_us *= f;
  scaled.dir_update_us *= f;
  scaled.dir_update_locked_us *= f;
  scaled.dir_lock_us *= f;
  scaled.diff_out_remote_min_us *= f;
  scaled.diff_out_remote_max_us *= f;
  scaled.diff_out_local_min_us *= f;
  scaled.diff_out_local_max_us *= f;
  scaled.diff_in_min_us *= f;
  scaled.diff_in_max_us *= f;
  scaled.lock_acquire_2l_us *= f;
  scaled.lock_acquire_1l_us *= f;
  scaled.barrier_2proc_2l_us *= f;
  scaled.barrier_32proc_2l_us *= f;
  scaled.barrier_2proc_1l_us *= f;
  scaled.barrier_32proc_1l_us *= f;
  scaled.page_transfer_local_us *= f;
  scaled.page_transfer_remote_2l_us *= f;
  scaled.page_transfer_remote_1l_us *= f;
  scaled.intra_node_interrupt_us *= f;
  scaled.inter_node_interrupt_us *= f;
  scaled.shootdown_poll_us *= f;
  scaled.shootdown_interrupt_us *= f;
  scaled.mc_ns_per_byte *= f;
  scaled.poll_ns *= f;
  scaled.request_handle_us *= f;
  scaled.log_publish_us *= f;
  scaled.write_double_word_us *= f;
  scaled.write_double_word_home_us *= f;
  return scaled;
}

std::uint64_t CostModel::DiffOutNs(std::size_t words_changed, bool home_local) const {
  if (home_local) {
    return UsToNs(Interp(diff_out_local_min_us, diff_out_local_max_us, words_changed));
  }
  return UsToNs(Interp(diff_out_remote_min_us, diff_out_remote_max_us, words_changed));
}

std::uint64_t CostModel::DiffInNs(std::size_t words_changed) const {
  return UsToNs(Interp(diff_in_min_us, diff_in_max_us, words_changed));
}

std::uint64_t CostModel::BarrierNs(int total_procs, bool two_level) const {
  // Interpolate between the measured 2-processor and 32-processor barrier
  // costs; barrier latency grows roughly logarithmically with participants,
  // but the paper only reports the two endpoints, so interpolate linearly
  // in processor count.
  const double lo = two_level ? barrier_2proc_2l_us : barrier_2proc_1l_us;
  const double hi = two_level ? barrier_32proc_2l_us : barrier_32proc_1l_us;
  const double frac = std::clamp((static_cast<double>(total_procs) - 2.0) / 30.0, 0.0, 1.0);
  return UsToNs(lo + (hi - lo) * frac);
}

std::uint64_t CostModel::PageTransferNs(bool requester_on_home_node, bool two_level) const {
  if (requester_on_home_node) {
    return UsToNs(page_transfer_local_us);
  }
  return UsToNs(two_level ? page_transfer_remote_2l_us : page_transfer_remote_1l_us);
}

}  // namespace cashmere
