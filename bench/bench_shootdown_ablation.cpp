// Section 3.3.4: TLB shootdown versus two-way diffing.
//
// Reproduces the paper's comparison: 2L (two-way diffing) vs 2LS
// (shootdown) at 32 processors, with the shootdown mechanism costed for
// both polling-based messaging (72 us per processor) and intra-node
// interrupts (142 us). The paper's finding: with polling, 2LS matches 2L
// (shootdown is rare — only multiple concurrent writers at a release or
// page update, i.e. false sharing in lock-based applications like Water);
// with interrupts, Water's execution time rises by ~6%.
#include <cstdio>

#include "bench_common.hpp"

namespace cashmere {
namespace {

AppRunResult RunOnce(AppKind kind, ProtocolVariant v, DeliveryMode delivery,
                     int size_class) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.delivery = delivery;
  cfg.cost.scale = 0.0;  // auto: preserve the paper's compute/comm ratio
  return RunApp(kind, cfg, size_class);
}

void Run(const bench::BenchOptions& opt) {
  bench::PrintHeader("Section 3.3.4: shootdown vs two-way diffing at 32 processors");
  std::printf("%-8s %12s %12s %14s | %12s %12s\n", "Program", "2L exec(s)",
              "2LS-poll(s)", "2LS-intr(s)", "shootdowns", "2LS/2L");
  bench::PrintRule(84);
  for (const AppKind kind : opt.apps) {
    const AppRunResult two_level =
        RunOnce(kind, ProtocolVariant::kTwoLevel, DeliveryMode::kPolling, opt.size_class);
    const AppRunResult shoot_poll = RunOnce(kind, ProtocolVariant::kTwoLevelShootdown,
                                            DeliveryMode::kPolling, opt.size_class);
    const AppRunResult shoot_intr = RunOnce(kind, ProtocolVariant::kTwoLevelShootdown,
                                            DeliveryMode::kInterrupt, opt.size_class);
    const double ratio =
        two_level.report.ExecTimeSec() > 0
            ? shoot_poll.report.ExecTimeSec() / two_level.report.ExecTimeSec()
            : 0.0;
    std::printf("%-8s %12.3f %12.3f %14.3f | %12llu %11.2fx%s\n", AppName(kind),
                two_level.report.ExecTimeSec(), shoot_poll.report.ExecTimeSec(),
                shoot_intr.report.ExecTimeSec(),
                static_cast<unsigned long long>(
                    shoot_poll.report.total.Get(Counter::kShootdowns)),
                ratio,
                (two_level.verified && shoot_poll.verified && shoot_intr.verified)
                    ? ""
                    : "  (UNVERIFIED)");
  }
  std::printf(
      "\nPaper's finding reproduced when: shootdown counts are nonzero only for the\n"
      "lock-based programs with false sharing (Water, TSP), 2LS-poll tracks 2L\n"
      "closely, and the interrupt-based shootdown column is slower for those\n"
      "programs (the paper reports +6%% for Water).\n");
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  const auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  cashmere::Run(opt);
  return 0;
}
