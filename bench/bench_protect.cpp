// Permission-batch engine benchmark (vm/perm_batch.hpp).
//
// The interesting reduction is at the *drain sites* — the acquire-side
// invalidation drain and the release/shootdown downgrade loops — where the
// protocol changes many contiguous pages at once and the batch turns one
// syscall per page into one per coalesced range. Fault-path upgrades stay
// 1:1 in any design (each refault re-opens exactly one page), so the
// end-to-end syscall total is diluted by them; this harness therefore
// classifies every kProtectRange trace event as inside or outside a fault
// episode (per-proc kFaultBegin/kFaultEnd depth) and gates on the
// drain-site reduction.
//
// Three sections:
//   1. drain-replay microbench on a raw View: PermBatch commit vs the
//      historical per-page Protect loop (wall-clock per page, syscalls);
//   2. an acquire-invalidation-heavy producer/sweeping-consumer kernel at
//      32:4 through the full runtime, batched vs unbatched
//      (Config::vm.batch_mprotect), reduction measured from the traces;
//   3. SOR at 32:4 syscall-counter context rows.
//
// Exit status is nonzero if any run fails verification or the drain-site
// reduction falls below 4x. Results go to stdout and BENCH_protect.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/runtime/runtime.hpp"
#include "cashmere/vm/arena.hpp"
#include "cashmere/vm/perm_batch.hpp"
#include "cashmere/vm/view.hpp"

namespace cashmere {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// ---------------------------------------------------------------------------
// Section 1: drain replay on a raw view.

struct ReplayRow {
  int pages = 0;
  double batched_ns_per_page = 0.0;
  double unbatched_ns_per_page = 0.0;
  std::uint64_t batched_syscalls_per_drain = 0;
};

// Replays an invalidation drain of `pages` contiguous pages `iters` times:
// open the range read-write (untimed), then downgrade to kInvalid either
// through a PermBatch commit or the historical per-page Protect loop.
ReplayRow ReplayDrain(int pages, int iters) {
  Config cfg;
  cfg.nodes = 1;
  cfg.procs_per_node = 1;
  cfg.heap_bytes = static_cast<std::size_t>(pages) * kPageBytes;
  Arena arena(cfg.heap_bytes, "bench-protect");
  std::vector<std::unique_ptr<View>> views;
  views.push_back(std::make_unique<View>(cfg, arena));
  View& view = *views[0];
  PermBatch batch;
  batch.Bind(&views, nullptr, nullptr, nullptr);

  ReplayRow row;
  row.pages = pages;
  std::uint64_t batched_ns = 0;
  std::uint64_t unbatched_ns = 0;
  for (int it = 0; it < iters; ++it) {
    view.ProtectRange(0, static_cast<std::size_t>(pages), Perm::kReadWrite);
    std::uint64_t t0 = NowNs();
    for (PageId p = 0; p < static_cast<PageId>(pages); ++p) {
      batch.Add(0, p, Perm::kInvalid);
    }
    const PermBatch::CommitStats cs = batch.Commit();
    batched_ns += NowNs() - t0;
    row.batched_syscalls_per_drain = cs.syscalls;

    view.ProtectRange(0, static_cast<std::size_t>(pages), Perm::kReadWrite);
    t0 = NowNs();
    for (PageId p = 0; p < static_cast<PageId>(pages); ++p) {
      // csm-lint: allow(raw-view-protect) -- the unbatched baseline arm
      // measures the historical per-page syscall path on purpose
      view.Protect(p, Perm::kInvalid);
    }
    unbatched_ns += NowNs() - t0;
  }
  const double denom = static_cast<double>(pages) * iters;
  row.batched_ns_per_page = static_cast<double>(batched_ns) / denom;
  row.unbatched_ns_per_page = static_cast<double>(unbatched_ns) / denom;
  return row;
}

// ---------------------------------------------------------------------------
// Section 2: acquire-invalidation-heavy kernel through the full runtime.

constexpr int kKernelPages = 48;   // pages the producer dirties per round
constexpr int kKernelRounds = 6;
constexpr int kIntsPerPage = static_cast<int>(kPageBytes / sizeof(int));

struct DrainProfile {
  bool verified = false;
  bool trace_complete = false;
  std::uint64_t drain_calls = 0;   // kProtectRange outside fault episodes
  std::uint64_t drain_pages = 0;   // pages those calls covered
  std::uint64_t fault_calls = 0;   // kProtectRange inside fault episodes
  std::uint64_t total_mprotect = 0;
};

// Producer p0 rewrites kKernelPages contiguous pages each round; every
// other processor full-sweeps them after the barrier. Each round therefore
// hands every consumer an acquire drain of kKernelPages contiguous
// invalidations and the producer a release downgrade of the same span —
// the drain shapes the batch engine exists to coalesce.
DrainProfile RunKernel(bool batch_mprotect) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.heap_bytes = 64 * kPageBytes;
  cfg.first_touch = false;
  cfg.cost.time_scale = 10.0;
  cfg.vm.batch_mprotect = batch_mprotect;
  cfg.trace.enabled = true;
  cfg.trace.ring_events = 1u << 18;

  DrainProfile out;
  bool data_ok = true;
  {
    Runtime rt(cfg);
    const GlobalAddr data = rt.heap().AllocPageAligned(
        static_cast<std::size_t>(kKernelPages) * kPageBytes);
    rt.Run([&](Context& ctx) {
      int* p = ctx.Ptr<int>(data);
      for (int round = 0; round < kKernelRounds; ++round) {
        if (ctx.proc() == 0) {
          for (int page = 0; page < kKernelPages; ++page) {
            p[page * kIntsPerPage] = round * kKernelPages + page;
          }
        }
        ctx.Barrier(0);
        if (ctx.proc() != 0) {
          long long sum = 0;
          for (int page = 0; page < kKernelPages; ++page) {
            sum += p[page * kIntsPerPage];
          }
          const long long want = static_cast<long long>(kKernelPages) *
                                     (2 * round * kKernelPages + kKernelPages - 1) / 2;
          if (sum != want) {
            data_ok = false;  // benign race on failure; only flips one way
          }
        }
        ctx.Barrier(0);
      }
    });
    out.verified = data_ok;
    out.total_mprotect = rt.report().total.Get(Counter::kMprotectCalls);

    const std::unique_ptr<TraceLog> trace = rt.TakeTraceLog();
    out.trace_complete = trace->complete();
    std::vector<int> fault_depth(static_cast<std::size_t>(cfg.total_procs()), 0);
    for (const TraceEvent& e : trace->Merged()) {
      switch (static_cast<EventKind>(e.kind)) {
        case EventKind::kFaultBegin:
          ++fault_depth[e.proc];
          break;
        case EventKind::kFaultEnd:
          --fault_depth[e.proc];
          break;
        case EventKind::kProtectRange: {
          const std::uint64_t pages = e.a1 & 0xffffffffu;
          if (fault_depth[e.proc] > 0) {
            ++out.fault_calls;
          } else {
            ++out.drain_calls;
            out.drain_pages += pages;
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

int RunBench(const bench::BenchOptions& opt, const std::string& json_path) {
  bench::PrintHeader("Permission-batch engine: drain-site mprotect coalescing");

  // Section 1: raw drain replay.
  std::printf("%-28s %10s %14s %14s %10s\n", "Drain replay (raw view)", "pages",
              "batched ns/pg", "per-page ns/pg", "syscalls");
  bench::PrintRule(78);
  std::vector<ReplayRow> replay;
  for (const int pages : {8, 32, 128}) {
    replay.push_back(ReplayDrain(pages, /*iters=*/2000));
    const ReplayRow& r = replay.back();
    std::printf("%-28s %10d %14.1f %14.1f %10llu\n", "", r.pages, r.batched_ns_per_page,
                r.unbatched_ns_per_page,
                static_cast<unsigned long long>(r.batched_syscalls_per_drain));
  }

  // Section 2: full-runtime kernel, batched vs unbatched.
  const DrainProfile batched = RunKernel(/*batch_mprotect=*/true);
  const DrainProfile unbatched = RunKernel(/*batch_mprotect=*/false);
  const double coalesce =
      batched.drain_calls > 0
          ? static_cast<double>(batched.drain_pages) / static_cast<double>(batched.drain_calls)
          : 0.0;
  const double cross = batched.drain_calls > 0
                           ? static_cast<double>(unbatched.drain_calls) /
                                 static_cast<double>(batched.drain_calls)
                           : 0.0;
  std::printf("\nProducer/sweeping-consumer kernel, 32:4 2L, %d pages x %d rounds\n",
              kKernelPages, kKernelRounds);
  std::printf("%-34s %14s %14s\n", "", "batched", "per-page");
  bench::PrintRule(64);
  std::printf("%-34s %14llu %14llu\n", "drain-site mprotect calls",
              static_cast<unsigned long long>(batched.drain_calls),
              static_cast<unsigned long long>(unbatched.drain_calls));
  std::printf("%-34s %14llu %14llu\n", "drain-site pages covered",
              static_cast<unsigned long long>(batched.drain_pages),
              static_cast<unsigned long long>(unbatched.drain_pages));
  std::printf("%-34s %14llu %14llu\n", "fault-path mprotect calls (1:1)",
              static_cast<unsigned long long>(batched.fault_calls),
              static_cast<unsigned long long>(unbatched.fault_calls));
  std::printf("%-34s %14llu %14llu\n", "total mprotect calls",
              static_cast<unsigned long long>(batched.total_mprotect),
              static_cast<unsigned long long>(unbatched.total_mprotect));
  std::printf("drain-site reduction: %.1fx (pages per drain syscall %.1f)\n", cross, coalesce);

  // Section 3: SOR context rows (fault-path singles dilute the total here;
  // the drain-site numbers above are the gated measurement).
  Config sor_cfg;
  sor_cfg.protocol = ProtocolVariant::kTwoLevel;
  sor_cfg.nodes = 8;
  sor_cfg.procs_per_node = 4;
  sor_cfg.cost.scale = 1.0;
  sor_cfg.vm.batch_mprotect = true;
  const AppRunResult sor_b = RunApp(AppKind::kSor, sor_cfg, opt.size_class);
  sor_cfg.vm.batch_mprotect = false;
  const AppRunResult sor_u = RunApp(AppKind::kSor, sor_cfg, opt.size_class);
  const unsigned long long sor_calls_b =
      static_cast<unsigned long long>(sor_b.report.total.Get(Counter::kMprotectCalls));
  const unsigned long long sor_calls_u =
      static_cast<unsigned long long>(sor_u.report.total.Get(Counter::kMprotectCalls));
  std::printf("\nSOR 32:4 context: %llu mprotect calls batched, %llu per-page%s\n",
              sor_calls_b, sor_calls_u,
              (sor_b.verified && sor_u.verified) ? "" : "  (UNVERIFIED)");

  const bool all_verified = batched.verified && unbatched.verified && batched.trace_complete &&
                            unbatched.trace_complete && sor_b.verified && sor_u.verified;
  const bool meets_goal = cross >= 4.0;
  std::printf("\n%s: drain-site reduction %.1fx (goal >= 4x), %s\n",
              (all_verified && meets_goal) ? "PASS" : "FAIL", cross,
              all_verified ? "all runs verified" : "VERIFICATION FAILED");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::string replay_rows;
  for (const ReplayRow& r : replay) {
    char row[192];
    std::snprintf(row, sizeof(row),
                  "    {\"pages\": %d, \"batched_ns_per_page\": %.1f, "
                  "\"per_page_ns_per_page\": %.1f, \"batched_syscalls\": %llu}",
                  r.pages, r.batched_ns_per_page, r.unbatched_ns_per_page,
                  static_cast<unsigned long long>(r.batched_syscalls_per_drain));
    if (!replay_rows.empty()) {
      replay_rows += ",\n";
    }
    replay_rows += row;
  }
  std::fprintf(
      f,
      "{\n  \"kernel\": {\"procs\": 32, \"ppn\": 4, \"pages\": %d, \"rounds\": %d,\n"
      "    \"drain_calls_batched\": %llu, \"drain_calls_per_page\": %llu,\n"
      "    \"drain_pages_batched\": %llu, \"fault_calls_batched\": %llu,\n"
      "    \"total_mprotect_batched\": %llu, \"total_mprotect_per_page\": %llu,\n"
      "    \"drain_site_reduction\": %.2f, \"pages_per_drain_syscall\": %.2f},\n"
      "  \"sor_context\": {\"mprotect_calls_batched\": %llu, "
      "\"mprotect_calls_per_page\": %llu},\n"
      "  \"drain_replay\": [\n%s\n  ],\n"
      "  \"all_verified\": %s,\n  \"meets_4x_goal\": %s\n}\n",
      kKernelPages, kKernelRounds, static_cast<unsigned long long>(batched.drain_calls),
      static_cast<unsigned long long>(unbatched.drain_calls),
      static_cast<unsigned long long>(batched.drain_pages),
      static_cast<unsigned long long>(batched.fault_calls),
      static_cast<unsigned long long>(batched.total_mprotect),
      static_cast<unsigned long long>(unbatched.total_mprotect), cross, coalesce, sor_calls_b,
      sor_calls_u, replay_rows.c_str(), all_verified ? "true" : "false",
      meets_goal ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return (all_verified && meets_goal) ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  std::string json_path = "BENCH_protect.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return cashmere::RunBench(opt, json_path);
}
