// Cost-model ablation: in-band diff run framing (ROADMAP open item).
//
// The wire protocol sends each diff as RLE runs; Config::diff
// charge_run_headers decides whether the 8-byte per-run framing words are
// billed as Memory Channel traffic (the paper's Table 3 "Data" row counts
// payload only; the real transport also moves the framing). This sweep runs
// the suite at the paper's 32-processor 2L configuration with framing
// charged and uncharged and records the traffic delta, so the cost of the
// modeling choice is a measured number instead of a guess. Results go to
// stdout and to BENCH_diffheaders.json.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"

namespace cashmere {
namespace {

AppRunResult RunOnce(AppKind kind, bool charge_run_headers, int size_class) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.diff.charge_run_headers = charge_run_headers;
  cfg.cost.scale = 1.0;  // traffic counters are cost-scale independent
  return RunApp(kind, cfg, size_class);
}

int RunSweep(const bench::BenchOptions& opt, const std::string& json_path) {
  bench::PrintHeader(
      "Diff run-header ablation: Table-3 traffic with/without in-band framing");
  std::printf("%-8s %14s %14s %10s %12s\n", "Program", "payload(MB)", "framed(MB)",
              "delta", "runs");
  bench::PrintRule(64);

  std::string rows;
  bool all_verified = true;
  for (const AppKind kind : opt.apps) {
    const AppRunResult payload = RunOnce(kind, /*charge_run_headers=*/false,
                                         opt.size_class);
    const AppRunResult framed = RunOnce(kind, /*charge_run_headers=*/true,
                                        opt.size_class);
    all_verified = all_verified && payload.verified && framed.verified;
    const double payload_mb = bench::Mega(payload.report.total.Get(Counter::kDataBytes));
    const double framed_mb = bench::Mega(framed.report.total.Get(Counter::kDataBytes));
    const double delta_pct =
        payload_mb > 0 ? (framed_mb / payload_mb - 1.0) * 100.0 : 0.0;
    const unsigned long long runs = static_cast<unsigned long long>(
        payload.report.total.Get(Counter::kDiffRunsEmitted));
    std::printf("%-8s %14.3f %14.3f %9.2f%% %12llu%s\n", AppName(kind), payload_mb,
                framed_mb, delta_pct, runs,
                (payload.verified && framed.verified) ? "" : "  (UNVERIFIED)");
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"app\": \"%s\", \"payload_mb\": %.4f, \"framed_mb\": %.4f, "
                  "\"delta_pct\": %.3f, \"runs\": %llu}",
                  AppName(kind), payload_mb, framed_mb, delta_pct, runs);
    if (!rows.empty()) {
      rows += ",\n";
    }
    rows += row;
  }
  std::printf(
      "\nThe framing surcharge is bounded by 8 bytes per encoded run; apps with\n"
      "dense contiguous diffs (few long runs) sit near 0%%. Lock-based apps\n"
      "(Water, TSP) are scheduling-dependent: billing the framing shifts the\n"
      "virtual clocks, which shifts lock interleavings, so their delta also\n"
      "carries run-to-run traffic noise, not framing bytes alone.\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"protocol\": \"2L\",\n  \"procs\": 32,\n  \"ppn\": 4,\n"
               "  \"all_verified\": %s,\n  \"sweep\": [\n%s\n  ]\n}\n",
               all_verified ? "true" : "false", rows.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return all_verified ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  std::string json_path = "BENCH_diffheaders.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return cashmere::RunSweep(opt, json_path);
}
