// Figure 6: breakdown of execution time at 32 processors, normalized to
// Cashmere-2L, for the 2L, 2LS, 1LD and 1L protocols. Components: User,
// Protocol, Polling, Comm & Wait, and Write Doubling (1L only).
#include <cstdio>

#include "bench_common.hpp"

namespace cashmere {
namespace {

void Run(const bench::BenchOptions& opt) {
  bench::PrintHeader(
      "Figure 6: normalized execution-time breakdown at 32 processors (% of 2L)");
  const bench::ClusterShape shape{32, 4};
  const auto protocols = bench::PaperProtocols();

  for (const AppKind kind : opt.apps) {
    std::printf("\n%s\n", AppName(kind));
    std::printf("  %-6s %8s | %8s %9s %9s %11s %9s | %8s\n", "proto", "exec(s)", "User",
                "Protocol", "Polling", "Comm&Wait", "WrDouble", "total%");
    bench::PrintRule(88);
    double base_exec = 0.0;
    for (const bench::ProtocolColumn& column : protocols) {
      const AppRunResult r = bench::RunExperiment(kind, column, shape, opt.size_class);
      const double exec = r.report.ExecTimeSec();
      if (column.variant == ProtocolVariant::kTwoLevel) {
        base_exec = exec;
      }
      // Components are aggregated over processors; normalize them so the
      // bar height equals exec/base like the paper's chart (each
      // component's share of the protocol's own execution time, scaled by
      // the protocol's slowdown over 2L).
      double comp[kNumTimeCategories];
      double comp_total = 0.0;
      for (int c = 0; c < kNumTimeCategories; ++c) {
        comp[c] = static_cast<double>(r.report.total.time_ns[c]) / 1e9;
        comp_total += comp[c];
      }
      const double bar = base_exec > 0 ? 100.0 * exec / base_exec : 100.0;
      std::printf("  %-6s %8.4f |", column.label, exec);
      for (int c = 0; c < kNumTimeCategories; ++c) {
        const double pct = comp_total > 0 ? bar * comp[c] / comp_total : 0.0;
        std::printf(c == 3 ? " %11.1f" : " %9.1f", pct);
      }
      std::printf(" | %7.1f%%%s\n", bar, r.verified ? "" : "  (UNVERIFIED)");
    }
  }
  std::printf(
      "\nReading: each row's components sum to the protocol's normalized execution\n"
      "time (2L = 100%%), mirroring the stacked bars of the paper's Figure 6.\n");
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  const auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  cashmere::Run(opt);
  return 0;
}
