// Shared helpers for the paper-reproduction benchmark harnesses: run
// configuration parsing, table formatting, and the standard experiment
// driver (app x protocol x cluster shape).
#ifndef CASHMERE_BENCH_BENCH_COMMON_HPP_
#define CASHMERE_BENCH_BENCH_COMMON_HPP_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cashmere/apps/app.hpp"

namespace cashmere::bench {

// Command-line knobs shared by the table generators.
struct BenchOptions {
  int size_class = kSizeBench;
  bool full = false;  // full sweep vs the quick default
  std::string csv_path;  // when set, also append machine-readable rows
  std::vector<AppKind> apps;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions opt;
    opt.apps.reserve(kNumApps);
    for (int a = 0; a < kNumApps; ++a) {
      opt.apps.push_back(static_cast<AppKind>(a));
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        opt.full = true;
        opt.size_class = kSizeLarge;
      } else if (std::strcmp(argv[i], "--small") == 0) {
        opt.size_class = kSizeTest;
      } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        opt.csv_path = argv[++i];
      } else if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
        opt.apps.clear();
        const char* name = argv[++i];
        for (int a = 0; a < kNumApps; ++a) {
          if (std::strcmp(AppName(static_cast<AppKind>(a)), name) == 0) {
            opt.apps.push_back(static_cast<AppKind>(a));
          }
        }
      }
    }
    return opt;
  }
};

// The paper's protocol line-up for Tables 3 / Figures 6-7.
struct ProtocolColumn {
  const char* label;
  ProtocolVariant variant;
  bool home_opt;
};

inline std::vector<ProtocolColumn> PaperProtocols() {
  return {
      {"2L", ProtocolVariant::kTwoLevel, false},
      {"2LS", ProtocolVariant::kTwoLevelShootdown, false},
      {"1LD", ProtocolVariant::kOneLevelDiff, false},
      {"1L", ProtocolVariant::kOneLevelWriteDouble, false},
  };
}

// A Figure 7 cluster configuration "P:ppn".
struct ClusterShape {
  int total;
  int ppn;
  int nodes() const { return total / ppn; }
  std::string Label() const { return std::to_string(total) + ":" + std::to_string(ppn); }
};

inline std::vector<ClusterShape> PaperShapes(bool full) {
  if (full) {
    return {{4, 1}, {4, 4}, {8, 1}, {8, 2}, {8, 4}, {16, 2}, {16, 4}, {24, 3}, {32, 4}};
  }
  return {{4, 1}, {8, 2}, {16, 4}, {32, 4}};
}

inline AppRunResult RunExperiment(AppKind kind, const ProtocolColumn& column,
                                  ClusterShape shape, int size_class) {
  Config cfg;
  cfg.protocol = column.variant;
  cfg.home_opt = column.home_opt;
  cfg.nodes = shape.nodes();
  cfg.procs_per_node = shape.ppn;
  cfg.cost.scale = 0.0;  // auto: preserve the paper's compute/comm ratio
  return RunApp(kind, cfg, size_class);
}

// Appends one experiment row to a CSV file (header written when the file
// is empty/new): app, protocol, shape, verification, speedup, then the
// full StatsReport columns.
inline void AppendCsv(const std::string& path, AppKind kind, const char* protocol,
                      const ClusterShape& shape, const AppRunResult& result) {
  if (path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return;
  }
  if (std::ftell(f) == 0) {
    std::fprintf(f, "app,protocol,procs,ppn,verified,speedup,seq_alpha_s,%s\n",
                 StatsReport::CsvHeader().c_str());
  }
  std::fprintf(f, "%s,%s,%d,%d,%d,%.4f,%.6f,%s\n", AppName(kind), protocol, shape.total,
               shape.ppn, result.verified ? 1 : 0, result.speedup, result.seq_alpha_seconds,
               result.report.ToCsvRow().c_str());
  std::fclose(f);
}

// Formatting helpers (rows like the paper's tables).
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void PrintHeader(const char* title) {
  std::printf("\n");
  PrintRule(78);
  std::printf("%s\n", title);
  PrintRule(78);
}

inline double Kilo(std::uint64_t n) { return static_cast<double>(n) / 1000.0; }
inline double Mega(std::uint64_t n) { return static_cast<double>(n) / (1024.0 * 1024.0); }

}  // namespace cashmere::bench

#endif  // CASHMERE_BENCH_BENCH_COMMON_HPP_
