// Asynchronous release-path coherence ablation (protocol/coherence_log.hpp).
//
// At release, the synchronous protocol replays the diff into the master
// copy, reserves the Memory Channel, and posts write notices before
// returning to the application; the async pipeline publishes a compact log
// record instead and a per-unit cache agent does the replay and the notice
// posts off the critical path. The acquire side gates on per-unit applied
// sequence numbers, so correctness is unchanged (SC-for-DRF via
// happens-before) while the releaser's critical path shrinks to the diff
// encode plus one log publish.
//
// Two sections:
//   1. a Table-3-style write-heavy producer/consumer kernel at 32:4, sync
//      vs async: every processor rewrites its own page span each round and
//      sweeps a neighbor's after the barrier, so every round is diff
//      traffic + write notices on the release path. The gated measurement
//      is the release-path critical-path reduction, Counter::kReleasePathNs
//      summed over processors (virtual ns inside ReleaseSync).
//   2. the deterministic apps (SOR, LU, Gauss, Em3d) under both modes:
//      checksums must be bit-identical and the schedule-independent
//      counter subset (lock acquires, flag acquires, barriers) must match
//      exactly. Water is excluded: its lock-scheduling nondeterminism
//      reorders molecule updates between any two runs (see EXPERIMENTS.md),
//      sync or async alike. TSP's branch-and-bound is likewise
//      schedule-dependent.
//
// Exit status is nonzero if any run fails verification, a deterministic
// app diverges, or the release-path reduction falls below 2x. Results go
// to stdout and BENCH_asyncrelease.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

// ---------------------------------------------------------------------------
// Section 1: write-heavy kernel through the full runtime.

constexpr int kPagesPerProc = 2;    // pages each processor rewrites per round
constexpr int kKernelRounds = 8;
constexpr int kIntsPerPage = static_cast<int>(kPageBytes / sizeof(int));

struct KernelProfile {
  bool verified = false;
  std::uint64_t release_path_ns = 0;   // kReleasePathNs summed over procs
  std::uint64_t page_flushes = 0;
  std::uint64_t write_notices = 0;
  std::uint64_t publishes = 0;
  std::uint64_t applies = 0;
  std::uint64_t publish_stalls = 0;
  std::uint64_t gate_waits = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t diff_apply_bytes = 0;
  double exec_seconds = 0.0;
};

// Every processor rewrites its own kPagesPerProc-page span each round, then
// after the barrier sweeps the next processor's span. Each round therefore
// puts a multi-page diff + its write notices on every processor's release
// path — the Table-3 write-heavy shape the async pipeline targets.
KernelProfile RunKernel(bool async_release) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.heap_bytes = static_cast<std::size_t>(32 * kPagesPerProc + 8) * kPageBytes;
  cfg.first_touch = false;
  cfg.cost.time_scale = 10.0;
  cfg.async.release = async_release;

  KernelProfile out;
  bool data_ok = true;
  Runtime rt(cfg);
  const int procs = cfg.total_procs();
  const GlobalAddr data = rt.heap().AllocPageAligned(
      static_cast<std::size_t>(procs * kPagesPerProc) * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* base = ctx.Ptr<int>(data);
    const int me = ctx.proc();
    for (int round = 0; round < kKernelRounds; ++round) {
      // Write phase: rewrite every word of my span (write-heavy: the whole
      // page diffs, not one cache line).
      for (int pg = 0; pg < kPagesPerProc; ++pg) {
        int* p = base + (me * kPagesPerProc + pg) * kIntsPerPage;
        for (int w = 0; w < kIntsPerPage; ++w) {
          p[w] = round * 1000003 + me * 1009 + w;
        }
      }
      ctx.Barrier(0);
      // Sweep phase: read my right neighbor's span, forcing the diff to be
      // applied and the notice to be consumed before the next round.
      const int other = (me + 1) % procs;
      long long sum = 0;
      for (int pg = 0; pg < kPagesPerProc; ++pg) {
        const int* p = base + (other * kPagesPerProc + pg) * kIntsPerPage;
        for (int w = 0; w < kIntsPerPage; w += 64) {
          sum += p[w];
        }
      }
      long long want = 0;
      for (int pg = 0; pg < kPagesPerProc; ++pg) {
        for (int w = 0; w < kIntsPerPage; w += 64) {
          want += round * 1000003 + other * 1009 + w;
        }
      }
      if (sum != want) {
        data_ok = false;  // benign race on failure; only flips one way
      }
      ctx.Barrier(0);
    }
  });
  const Stats& total = rt.report().total;
  out.verified = data_ok;
  out.release_path_ns = total.Get(Counter::kReleasePathNs);
  out.page_flushes = total.Get(Counter::kPageFlushes);
  out.write_notices = total.Get(Counter::kWriteNotices);
  out.publishes = total.Get(Counter::kCohLogPublishes);
  out.applies = total.Get(Counter::kCohLogApplies);
  out.publish_stalls = total.Get(Counter::kCohLogPublishStalls);
  out.gate_waits = total.Get(Counter::kCohGateWaits);
  out.diff_bytes = total.Get(Counter::kDiffRunBytes);
  out.diff_apply_bytes = total.Get(Counter::kDiffRunApplyBytes);
  out.exec_seconds = rt.report().ExecTimeSec();
  return out;
}

// ---------------------------------------------------------------------------
// Section 2: deterministic-app parity.

// Counters that only depend on application structure, never on scheduling:
// synchronization operations are issued by the program text. Fault, flush,
// transfer, and notice counts legitimately vary run-to-run (the
// flush-timestamp skip rule, sharing-set timing), sync and async alike, so
// they are not part of the parity gate.
const Counter kDeterministicCounters[] = {Counter::kLockAcquires,
                                          Counter::kFlagAcquires, Counter::kBarriers};

struct ParityRow {
  AppKind kind;
  bool verified_sync = false;
  bool verified_async = false;
  bool checksums_match = false;
  bool counters_match = false;
  double checksum_sync = 0.0;
  double checksum_async = 0.0;
};

// One mode of one app, with a single retry on verification failure: Gauss
// at bench size has a rare pre-existing verification flake (observed ~1/15
// on the synchronous protocol before the async pipeline existed; see
// EXPERIMENTS.md), and this gate is about sync-vs-async *divergence*, not
// about re-litigating that flake. A reproducible failure still fails both
// attempts and the bench.
AppRunResult RunOnce(AppKind kind, Config cfg, int size_class) {
  AppRunResult r = RunApp(kind, cfg, size_class);
  if (!r.verified) {
    r = RunApp(kind, cfg, size_class);
  }
  return r;
}

ParityRow RunParity(AppKind kind, int size_class) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.cost.scale = 1.0;

  ParityRow row;
  row.kind = kind;
  cfg.async.release = false;
  const AppRunResult rs = RunOnce(kind, cfg, size_class);
  cfg.async.release = true;
  const AppRunResult ra = RunOnce(kind, cfg, size_class);
  row.verified_sync = rs.verified;
  row.verified_async = ra.verified;
  row.checksum_sync = rs.parallel_checksum;
  row.checksum_async = ra.parallel_checksum;
  row.checksums_match = rs.parallel_checksum == ra.parallel_checksum;
  row.counters_match = true;
  for (const Counter c : kDeterministicCounters) {
    if (rs.report.total.Get(c) != ra.report.total.Get(c)) {
      row.counters_match = false;
    }
  }
  return row;
}

// ---------------------------------------------------------------------------

int RunBench(const bench::BenchOptions& opt, const std::string& json_path) {
  bench::PrintHeader("Async release-path coherence: log agents vs synchronous flush");

  const KernelProfile sync_k = RunKernel(/*async_release=*/false);
  const KernelProfile async_k = RunKernel(/*async_release=*/true);
  const double reduction =
      async_k.release_path_ns > 0
          ? static_cast<double>(sync_k.release_path_ns) /
                static_cast<double>(async_k.release_path_ns)
          : 0.0;

  std::printf("Write-heavy kernel, 32:4 2L, %d pages/proc x %d rounds\n", kPagesPerProc,
              kKernelRounds);
  std::printf("%-34s %14s %14s\n", "", "sync", "async");
  bench::PrintRule(64);
  std::printf("%-34s %14llu %14llu\n", "release path (virtual ns)",
              (unsigned long long)sync_k.release_path_ns,
              (unsigned long long)async_k.release_path_ns);
  std::printf("%-34s %14llu %14llu\n", "page flushes",
              (unsigned long long)sync_k.page_flushes,
              (unsigned long long)async_k.page_flushes);
  std::printf("%-34s %14llu %14llu\n", "write notices",
              (unsigned long long)sync_k.write_notices,
              (unsigned long long)async_k.write_notices);
  std::printf("%-34s %14llu %14llu\n", "log publishes",
              (unsigned long long)sync_k.publishes, (unsigned long long)async_k.publishes);
  std::printf("%-34s %14llu %14llu\n", "log applies", (unsigned long long)sync_k.applies,
              (unsigned long long)async_k.applies);
  std::printf("%-34s %14llu %14llu\n", "publish stalls (ring full)",
              (unsigned long long)sync_k.publish_stalls,
              (unsigned long long)async_k.publish_stalls);
  std::printf("%-34s %14llu %14llu\n", "acquire gate waits",
              (unsigned long long)sync_k.gate_waits, (unsigned long long)async_k.gate_waits);
  std::printf("%-34s %14llu %14llu\n", "diff wire bytes",
              (unsigned long long)sync_k.diff_bytes, (unsigned long long)async_k.diff_bytes);
  std::printf("%-34s %14llu %14llu\n", "diff apply bytes",
              (unsigned long long)sync_k.diff_apply_bytes,
              (unsigned long long)async_k.diff_apply_bytes);
  std::printf("%-34s %14.6f %14.6f\n", "exec time (virtual s)", sync_k.exec_seconds,
              async_k.exec_seconds);
  std::printf("release-path critical-path reduction: %.2fx\n", reduction);

  // Determinism parity on the barrier apps (Water and TSP excluded; see the
  // header comment and EXPERIMENTS.md).
  const AppKind det[] = {AppKind::kSor, AppKind::kLu, AppKind::kGauss, AppKind::kEm3d};
  std::printf("\nDeterministic-app parity (sync vs async), 32:4 2L\n");
  std::printf("%-8s %10s %10s %10s %10s\n", "app", "verified", "checksum", "counters",
              "status");
  bench::PrintRule(56);
  std::vector<ParityRow> rows;
  bool parity_ok = true;
  for (const AppKind kind : det) {
    rows.push_back(RunParity(kind, opt.size_class));
    const ParityRow& r = rows.back();
    const bool ok =
        r.verified_sync && r.verified_async && r.checksums_match && r.counters_match;
    parity_ok = parity_ok && ok;
    std::printf("%-8s %10s %10s %10s %10s\n", AppName(r.kind),
                (r.verified_sync && r.verified_async) ? "both" : "FAIL",
                r.checksums_match ? "match" : "DIVERGE",
                r.counters_match ? "match" : "DIVERGE", ok ? "ok" : "FAIL");
  }

  const bool kernel_ok =
      sync_k.verified && async_k.verified && async_k.publishes == async_k.applies &&
      async_k.diff_bytes == async_k.diff_apply_bytes;
  const bool meets_goal = reduction >= 2.0;
  std::printf("\n%s: release-path reduction %.2fx (goal >= 2x), %s, %s\n",
              (kernel_ok && parity_ok && meets_goal) ? "PASS" : "FAIL", reduction,
              kernel_ok ? "kernel verified" : "KERNEL FAILED",
              parity_ok ? "deterministic apps identical" : "PARITY FAILED");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::string parity_rows;
  for (const ParityRow& r : rows) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"app\": \"%s\", \"verified\": %s, \"checksums_match\": %s, "
                  "\"counters_match\": %s}",
                  AppName(r.kind),
                  (r.verified_sync && r.verified_async) ? "true" : "false",
                  r.checksums_match ? "true" : "false",
                  r.counters_match ? "true" : "false");
    if (!parity_rows.empty()) {
      parity_rows += ",\n";
    }
    parity_rows += buf;
  }
  std::fprintf(
      f,
      "{\n  \"kernel\": {\"procs\": 32, \"ppn\": 4, \"pages_per_proc\": %d, "
      "\"rounds\": %d,\n"
      "    \"release_path_ns_sync\": %llu, \"release_path_ns_async\": %llu,\n"
      "    \"reduction\": %.2f,\n"
      "    \"publishes\": %llu, \"applies\": %llu, \"publish_stalls\": %llu, "
      "\"gate_waits\": %llu,\n"
      "    \"diff_bytes\": %llu, \"diff_apply_bytes\": %llu},\n"
      "  \"deterministic_apps\": [\n%s\n  ],\n"
      "  \"water_excluded\": \"pre-existing lock-scheduling nondeterminism; see "
      "EXPERIMENTS.md\",\n"
      "  \"all_verified\": %s,\n  \"meets_2x_goal\": %s\n}\n",
      kPagesPerProc, kKernelRounds, (unsigned long long)sync_k.release_path_ns,
      (unsigned long long)async_k.release_path_ns, reduction,
      (unsigned long long)async_k.publishes, (unsigned long long)async_k.applies,
      (unsigned long long)async_k.publish_stalls, (unsigned long long)async_k.gate_waits,
      (unsigned long long)async_k.diff_bytes,
      (unsigned long long)async_k.diff_apply_bytes, parity_rows.c_str(),
      (kernel_ok && parity_ok) ? "true" : "false", meets_goal ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return (kernel_ok && parity_ok && meets_goal) ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  std::string json_path = "BENCH_asyncrelease.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return cashmere::RunBench(opt, json_path);
}
