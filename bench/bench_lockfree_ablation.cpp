// Section 3.3.5: impact of lock-free protocol structures.
//
// Compares Cashmere-2L against the modified protocol that guards directory
// entries and write-notice lists with global locks (entries compressed,
// lists unified — modeled by the per-operation lock cost plus real
// serialization). The paper reports improvements from the lock-free
// structures of 5% (Barnes), 5% (Em3d) and 7% (Ilink), tracking each
// application's volume of directory accesses and write notices.
#include <cstdio>

#include "bench_common.hpp"

namespace cashmere {
namespace {

void Run(const bench::BenchOptions& opt) {
  bench::PrintHeader(
      "Section 3.3.5: lock-free vs global-lock protocol structures at 32 processors");
  std::printf("%-8s %14s %14s %10s | %14s %12s\n", "Program", "lock-free(s)",
              "global-lock(s)", "gain", "dir updates", "wr notices");
  bench::PrintRule(84);
  const bench::ClusterShape shape{32, 4};
  for (const AppKind kind : opt.apps) {
    const AppRunResult lock_free = bench::RunExperiment(
        kind, {"2L", ProtocolVariant::kTwoLevel, false}, shape, opt.size_class);
    const AppRunResult locked = bench::RunExperiment(
        kind, {"2L-lock", ProtocolVariant::kTwoLevelGlobalLock, false}, shape,
        opt.size_class);
    const double gain =
        lock_free.report.ExecTimeSec() > 0
            ? 100.0 * (locked.report.ExecTimeSec() - lock_free.report.ExecTimeSec()) /
                  locked.report.ExecTimeSec()
            : 0.0;
    std::printf("%-8s %14.3f %14.3f %9.1f%% | %14.1fK %11.1fK%s\n", AppName(kind),
                lock_free.report.ExecTimeSec(), locked.report.ExecTimeSec(), gain,
                bench::Kilo(lock_free.report.total.Get(Counter::kDirectoryUpdates)),
                bench::Kilo(lock_free.report.total.Get(Counter::kWriteNotices)),
                (lock_free.verified && locked.verified) ? "" : "  (UNVERIFIED)");
  }
  std::printf(
      "\nPaper's finding reproduced when: the gain is largest for the applications\n"
      "with the most directory accesses and write notices (Barnes ~5%%, Em3d ~5%%,\n"
      "Ilink ~7%%) and negligible for the rest.\n");
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  const auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  cashmere::Run(opt);
  return 0;
}
