// Table 2: data set sizes and sequential execution time of applications.
//
// The reproduction runs scaled-down problems, so this harness reports, per
// application: the paper's problem size and sequential time, our problem
// size, the measured host time of the uninstrumented sequential reference,
// and the modeled 233 MHz-Alpha-equivalent time (host time x calibration).
#include <cstdio>

#include "bench_common.hpp"
#include "cashmere/common/calibration.hpp"

namespace cashmere {
namespace {

void Run(const bench::BenchOptions& opt) {
  bench::PrintHeader("Table 2: data set sizes and sequential execution time");
  std::printf("Host->Alpha calibration factor: %.1fx\n\n", HostToAlphaTimeScale());
  std::printf("%-8s %-22s %10s | %-18s %12s %14s\n", "Program", "Paper size", "Paper (s)",
              "Our size", "Host (s)", "Alpha-eq (s)");
  bench::PrintRule(92);
  for (const AppKind kind : opt.apps) {
    auto app = MakeApp(kind, opt.size_class);
    double host = 0.0;
    double alpha = 0.0;
    SequentialBaseline(kind, opt.size_class, &host, &alpha, nullptr);
    std::printf("%-8s %-22s %10.1f | %-18s %12.4f %14.4f\n", app->name(),
                app->PaperProblemSize(), app->PaperSeqSeconds(), app->ProblemSize().c_str(),
                host, alpha);
  }
  std::printf(
      "\nNote: absolute times differ from the paper because problem sizes are scaled\n"
      "down for a single-host run; the Alpha-equivalent column is the sequential\n"
      "baseline used for every speedup in Figure 7.\n");
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  const auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  cashmere::Run(opt);
  return 0;
}
