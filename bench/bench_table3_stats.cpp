// Table 3: detailed statistics for the 2L, 2LS, 1LD and 1L protocols at 32
// processors (8 nodes x 4 processors), in the paper's row layout. All
// counters are real event counts from real executions; execution time is
// virtual (see DESIGN.md).
#include <cstdio>

#include "bench_common.hpp"

namespace cashmere {
namespace {

struct Row {
  const char* label;
  Counter counter;
  double divisor;  // 1000 => report in thousands, like the paper's "(K)"
};

void PrintProtocolBlock(const bench::ProtocolColumn& column,
                        const std::vector<AppRunResult>& results) {
  std::printf("\n=== %s ===\n", column.label);
  std::printf("%-26s", "Application");
  for (const AppRunResult& r : results) {
    std::printf("%10s", AppName(r.kind));
  }
  std::printf("\n");
  bench::PrintRule(26 + 10 * static_cast<int>(results.size()));

  std::printf("%-26s", "Exec. time (virt. secs)");
  for (const AppRunResult& r : results) {
    std::printf("%10.4f", r.report.ExecTimeSec());
  }
  std::printf("\n%-26s", "Verified");
  for (const AppRunResult& r : results) {
    std::printf("%10s", r.verified ? "yes" : "NO");
  }
  std::printf("\n");

  const Row rows[] = {
      {"Lock/Flag Acquires (K)", Counter::kLockAcquires, 1000.0},
      {"Barriers", Counter::kBarriers, 1.0},
      {"Read Faults (K)", Counter::kReadFaults, 1000.0},
      {"Write Faults (K)", Counter::kWriteFaults, 1000.0},
      {"Page Transfers (K)", Counter::kPageTransfers, 1000.0},
      {"Directory Updates (K)", Counter::kDirectoryUpdates, 1000.0},
      {"Write Notices (K)", Counter::kWriteNotices, 1000.0},
      {"Excl. Mode Trans. (K)", Counter::kExclTransitions, 1000.0},
      {"Data (Mbytes)", Counter::kDataBytes, 1024.0 * 1024.0},
      {"Twin Creations (K)", Counter::kTwinCreations, 1000.0},
      {"Incoming Diffs", Counter::kIncomingDiffs, 1.0},
      {"Flush-Updates", Counter::kFlushUpdates, 1.0},
      {"Shootdowns", Counter::kShootdowns, 1.0},
  };
  for (const Row& row : rows) {
    // The paper reports twin-maintenance statistics only for the two-level
    // protocols, and shootdowns only for 2LS.
    const bool twin_row = row.counter == Counter::kIncomingDiffs ||
                          row.counter == Counter::kFlushUpdates ||
                          row.counter == Counter::kTwinCreations ||
                          row.counter == Counter::kShootdowns;
    const bool two_level = column.variant == ProtocolVariant::kTwoLevel ||
                           column.variant == ProtocolVariant::kTwoLevelShootdown;
    if (twin_row && !two_level) {
      continue;
    }
    std::printf("%-26s", row.label);
    for (const AppRunResult& r : results) {
      const double v =
          static_cast<double>(r.report.total.Get(row.counter)) / row.divisor;
      if (row.divisor == 1.0) {
        std::printf("%10.0f", v);
      } else {
        std::printf("%10.2f", v);
      }
    }
    std::printf("\n");
  }
  // Flag acquires are folded into the paper's Lock/Flag row; print them
  // separately for completeness.
  std::printf("%-26s", "  (of which flags, K)");
  for (const AppRunResult& r : results) {
    std::printf("%10.2f", bench::Kilo(r.report.total.Get(Counter::kFlagAcquires)));
  }
  std::printf("\n");
}

void Run(const bench::BenchOptions& opt) {
  bench::PrintHeader(
      "Table 3: detailed statistics at 32 processors (8 nodes x 4 processors)");
  const bench::ClusterShape shape{32, 4};
  for (const bench::ProtocolColumn& column : bench::PaperProtocols()) {
    std::vector<AppRunResult> results;
    results.reserve(opt.apps.size());
    for (const AppKind kind : opt.apps) {
      results.push_back(bench::RunExperiment(kind, column, shape, opt.size_class));
      bench::AppendCsv(opt.csv_path, kind, column.label, shape, results.back());
    }
    PrintProtocolBlock(column, results);
  }
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  const auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  cashmere::Run(opt);
  return 0;
}
