// Figure 7: speedups for the 2L, 2LS, 1LD and 1L protocols over the
// paper's cluster configurations (4:1 ... 32:4), plus the home-node
// optimization extension bars for the one-level protocols. Speedup =
// modeled sequential (Alpha-equivalent) time / virtual parallel execution
// time.
#include <cstdio>

#include "bench_common.hpp"

namespace cashmere {
namespace {

void Run(const bench::BenchOptions& opt) {
  bench::PrintHeader("Figure 7: speedups by protocol and cluster configuration");
  const auto shapes = bench::PaperShapes(opt.full);
  auto protocols = bench::PaperProtocols();
  // Home-node optimization extensions (the unshaded bar extensions in the
  // paper's Figure 7).
  protocols.push_back({"1LD+H", ProtocolVariant::kOneLevelDiff, true});
  protocols.push_back({"1L+H", ProtocolVariant::kOneLevelWriteDouble, true});

  for (const AppKind kind : opt.apps) {
    double seq_alpha = 0.0;
    SequentialBaseline(kind, opt.size_class, nullptr, &seq_alpha, nullptr);
    std::printf("\n%s  (sequential Alpha-equivalent: %.3f s)\n", AppName(kind), seq_alpha);
    std::printf("  %-7s", "config");
    for (const auto& column : protocols) {
      std::printf("%9s", column.label);
    }
    std::printf("\n");
    bench::PrintRule(9 + 9 * static_cast<int>(protocols.size()));
    for (const auto& shape : shapes) {
      std::printf("  %-7s", shape.Label().c_str());
      for (const auto& column : protocols) {
        const AppRunResult r = bench::RunExperiment(kind, column, shape, opt.size_class);
        bench::AppendCsv(opt.csv_path, kind, column.label, shape, r);
        if (r.verified) {
          std::printf("%9.2f", r.speedup);
        } else {
          std::printf("%8.2f!", r.speedup);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nReading: rows are the paper's P:ppn configurations; '!' marks an unverified\n"
      "run. Compare shapes with the paper's Figure 7: two-level protocols win at\n"
      "scale, most visibly for Gauss, Ilink, Em3d and Barnes; home-opt (+H) lifts\n"
      "the one-level protocols where home-node locality dominates (Em3d).\n");
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  const auto opt = cashmere::bench::BenchOptions::Parse(argc, argv);
  cashmere::Run(opt);
  return 0;
}
