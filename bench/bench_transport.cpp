// Transport-seam benchmark (DESIGN.md §14).
//
// Two questions, one gate:
//  1. What does the McTransport seam cost on the default path? The pre-PR
//     McHub executed remote writes in its own out-of-line methods; today
//     McHub::Issue charges traffic inline and calls the devirtualized
//     InProcTransport::ExecuteInline. The gate: Issue dispatch must stay
//     within 5% of a direct-call baseline that replicates the pre-PR body
//     (store + account, one out-of-line call), else exit nonzero.
//  2. What does the real wire cost under the shm backend? Measured wall
//     clock for the ordered ops (a cross-process futex-or-spin lock round
//     trip) and the unordered stream path, plus the cluster barrier of
//     last resort round-trip through a real forked peer.
//
// Results go to stdout and BENCH_transport.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cashmere/common/rng.hpp"
#include "cashmere/mc/control_plane.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/mc/shm_transport.hpp"

namespace cashmere {
namespace {

constexpr double kGatePct = 5.0;

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The pre-PR dispatch shape: one out-of-line call whose body stores the
// word and charges the traffic. noinline pins the call boundary the old
// McHub::Write32 had, so the comparison is seam-vs-seam, not call-vs-none.
__attribute__((noinline)) void DirectWrite32(McHub& hub, std::uint32_t* dst,
                                             std::uint32_t value, Traffic t) {
  StoreWord32Release(dst, value);
  hub.AccountWrite(t, kWordBytes);
}

// Per-op nanoseconds for `fn` run kIters times; best of `reps` trials.
template <typename Fn>
double BestNsPerOp(int reps, int iters, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSec();
    for (int i = 0; i < iters; ++i) {
      fn(i);
    }
    const double t1 = NowSec();
    best = std::min(best, (t1 - t0) * 1e9 / iters);
  }
  return best;
}

struct GateResult {
  double direct_ns = 0;
  double issue_ns = 0;
  double overhead_pct = 0;
  bool ok = false;
};

GateResult RunInprocGate() {
  McHub hub(8);
  std::uint32_t word = 0;
  constexpr int kReps = 9;
  constexpr int kIters = 2'000'000;
  // Interleave the two variants' trials so frequency drift hits both.
  double direct = 1e30;
  double issue = 1e30;
  // No DoNotOptimize inside the loops: the written word is an atomic
  // release store, a side effect the compiler must perform each iteration,
  // and an asm memory clobber here would force the issue variant to
  // re-evaluate the op descriptor from its stack slot every pass — an
  // artifact no protocol call site has.
  for (int r = 0; r < kReps; ++r) {
    direct = std::min(direct, BestNsPerOp(1, kIters, [&](int i) {
                        DirectWrite32(hub, &word, static_cast<std::uint32_t>(i),
                                      Traffic::kDirectory);
                      }));
    issue = std::min(issue, BestNsPerOp(1, kIters, [&](int i) {
                       hub.Issue(McOp::Word(&word, static_cast<std::uint32_t>(i),
                                            Traffic::kDirectory));
                     }));
  }
  benchmark::DoNotOptimize(word);
  GateResult g;
  g.direct_ns = direct;
  g.issue_ns = issue;
  g.overhead_pct = direct > 0 ? (issue / direct - 1.0) * 100.0 : 0.0;
  // Sub-nanosecond absolute jitter floor: on a ~1 ns op, timer and
  // scheduling noise alone exceed 5%; the gate is on dispatch cost, so a
  // 0.15 ns absolute delta also passes.
  g.ok = g.overhead_pct <= kGatePct || (issue - direct) <= 0.15;
  return g;
}

struct ShmCosts {
  double exchange_ns = 0;       // ordered op: SharedWordLock round trip
  double stream_gbps = 0;       // unordered page-sized stream bandwidth
  double barrier_us = 0;        // cluster barrier of last resort (2 procs)
  bool cluster_ok = false;
};

ShmCosts RunShmCosts() {
  ShmCosts c;
  {
    ShmTransport solo;
    std::uint32_t loc = 0;
    c.exchange_ns = BestNsPerOp(7, 200'000, [&](int i) {
      solo.Execute(McOp::Exchange(&loc, static_cast<std::uint32_t>(i),
                                  Traffic::kSyncObject));
    });
    std::vector<std::uint32_t> src(kWordsPerPage);
    SplitMix64 rng(7);
    for (auto& w : src) {
      w = static_cast<std::uint32_t>(rng.Next());
    }
    std::vector<std::uint32_t> dst(kWordsPerPage);
    const double ns = BestNsPerOp(7, 20'000, [&](int) {
      solo.Execute(McOp::Stream(dst.data(), src.data(), kWordsPerPage,
                                Traffic::kPageData));
    });
    c.stream_gbps = ns > 0 ? static_cast<double>(kPageBytes) / ns : 0.0;
  }
  {
    ShmLauncher launcher;
    if (launcher.Start(2)) {
      {
        ShmTransport lead(launcher.TakeLeadEndpoint(), 2, 0);
        constexpr int kBarriers = 500;
        const double t0 = NowSec();
        for (int i = 0; i < kBarriers; ++i) {
          lead.BarrierLastResort();
        }
        c.barrier_us = (NowSec() - t0) * 1e6 / kBarriers;
      }
      c.cluster_ok = launcher.Join();
    }
  }
  return c;
}

int Run(const std::string& json_path) {
  bench::PrintHeader("Transport seam: inproc dispatch gate + shm wire costs");
  const GateResult g = RunInprocGate();
  std::printf("%-44s %10.3f ns\n", "inproc direct (pre-PR dispatch shape)", g.direct_ns);
  std::printf("%-44s %10.3f ns\n", "inproc McHub::Issue (devirtualized seam)", g.issue_ns);
  std::printf("%-44s %+9.2f %%  [gate <= %.0f%%: %s]\n", "dispatch overhead",
              g.overhead_pct, kGatePct, g.ok ? "OK" : "FAIL");

  const ShmCosts c = RunShmCosts();
  std::printf("%-44s %10.3f ns\n", "shm ordered exchange (futex-or-spin lock)",
              c.exchange_ns);
  std::printf("%-44s %10.3f GB/s\n", "shm unordered stream (8K page)", c.stream_gbps);
  std::printf("%-44s %10.3f us  [%s]\n", "shm cluster barrier round trip (2 procs)",
              c.barrier_us, c.cluster_ok ? "clean teardown" : "TEARDOWN FAILED");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"inproc_direct_ns\": %.4f,\n"
               "  \"inproc_issue_ns\": %.4f,\n"
               "  \"overhead_pct\": %.3f,\n"
               "  \"gate_pct\": %.1f,\n"
               "  \"gate_ok\": %s,\n"
               "  \"shm_exchange_ns\": %.3f,\n"
               "  \"shm_stream_gbps\": %.3f,\n"
               "  \"shm_barrier_us\": %.3f,\n"
               "  \"shm_cluster_clean\": %s\n"
               "}\n",
               g.direct_ns, g.issue_ns, g.overhead_pct, kGatePct,
               g.ok ? "true" : "false", c.exchange_ns, c.stream_gbps, c.barrier_us,
               c.cluster_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return (g.ok && c.cluster_ok) ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  std::string json_path = "BENCH_transport.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return cashmere::Run(json_path);
}
