// Diff-engine microbenchmark: host-time cost of the outgoing-diff scan at
// several dirty densities, old vs new.
//
//   word       the seed's word-at-a-time scanner (the oracle);
//   block      the 64-byte block scan with chunked loads;
//   block+map  the block scan restricted by a dirty-block map that marks
//              exactly the modified blocks (the software-fault-mode path).
//
// All variants run with flush_update off so every iteration re-scans the
// same images (master stores are idempotent), which makes iterations
// comparable; the scan is what differs between engines, and the virtual-
// time cost model charges the paper's constants regardless (EXPERIMENTS.md).
// Each variant's master image is checked byte-identical to the oracle's
// before timing. Results go to stdout and to BENCH_diff.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cashmere/common/rng.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {
namespace {

using Page = std::vector<std::uint32_t>;

Page RandomPage(std::uint64_t seed) {
  Page p(kWordsPerPage);
  SplitMix64 rng(seed);
  for (auto& w : p) {
    w = static_cast<std::uint32_t>(rng.Next());
  }
  return p;
}

std::byte* Bytes(Page& p) { return reinterpret_cast<std::byte*>(p.data()); }

// One density scenario: a twin, a working copy with `dirty_words` random
// words modified, and a map marking exactly the modified blocks.
struct Scenario {
  double density_pct;
  std::size_t dirty_words;
  Page twin;
  Page working;
  DirtyBlockMap map;

  Scenario(double pct, std::uint64_t seed) : density_pct(pct) {
    dirty_words = static_cast<std::size_t>(static_cast<double>(kWordsPerPage) * pct / 100.0);
    twin = RandomPage(seed);
    working = twin;
    map.Clear();
    SplitMix64 rng(seed + 1);
    for (std::size_t k = 0; k < dirty_words; ++k) {
      const std::size_t i = rng.NextBelow(kWordsPerPage);
      working[i] ^= 0x5A5A5A5Au;  // involutory: repeatable across runs
      map.MarkRange(i * kWordBytes, kWordBytes);
    }
  }
};

enum class Engine { kWord, kBlock, kBlockMap };

std::size_t RunOnce(Engine e, Scenario& s, Page& master) {
  switch (e) {
    case Engine::kWord:
      return ApplyOutgoingDiffWordScan(Bytes(s.working), Bytes(s.twin), Bytes(master), false);
    case Engine::kBlock:
      return ApplyOutgoingDiff(Bytes(s.working), Bytes(s.twin), Bytes(master), false);
    case Engine::kBlockMap:
      return ApplyOutgoingDiff(Bytes(s.working), Bytes(s.twin), Bytes(master), false, &s.map);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark registrations (density in tenths of a percent).

void BM_DiffScan(benchmark::State& state, Engine engine) {
  Scenario s(static_cast<double>(state.range(0)) / 10.0, 7);
  Page master = s.twin;
  for (auto _ : state) {
    const std::size_t n = RunOnce(engine, s, master);
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageBytes);
  state.counters["dirty_words"] = static_cast<double>(s.dirty_words);
}

void RegisterBenchmarks() {
  for (const auto& [engine, name] :
       {std::pair{Engine::kWord, "word"}, {Engine::kBlock, "block"},
        {Engine::kBlockMap, "block_map"}}) {
    const std::string bench_name = std::string("BM_DiffScan/") + name;
    benchmark::RegisterBenchmark(bench_name.c_str(),
                                 [engine = engine](benchmark::State& st) {
                                   BM_DiffScan(st, engine);
                                 })
        ->Arg(0)       // 0%
        ->Arg(10)      // 1%
        ->Arg(250)     // 25%
        ->Arg(1000);   // 100%
  }
}

// ---------------------------------------------------------------------------
// Sweep + JSON emission.

struct Measurement {
  double density_pct;
  std::size_t dirty_words;
  double ns[3];  // per Engine
};

double TimeEngine(Engine e, Scenario& s, Page& master) {
  using Clock = std::chrono::steady_clock;
  // Warm up and size the rep count for ~20ms of work.
  std::size_t reps = 64;
  RunOnce(e, s, master);
  while (true) {
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(RunOnce(e, s, master));
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    if (ns > 2e7 || reps >= (1u << 22)) {
      return ns / static_cast<double>(reps);
    }
    reps *= 4;
  }
}

bool VerifyByteIdentical(Scenario& s) {
  Page oracle = s.twin;
  Page blk = s.twin;
  Page map = s.twin;
  const std::size_t n0 = RunOnce(Engine::kWord, s, oracle);
  const std::size_t n1 = RunOnce(Engine::kBlock, s, blk);
  const std::size_t n2 = RunOnce(Engine::kBlockMap, s, map);
  return n0 == n1 && n1 == n2 && oracle == blk && oracle == map;
}

int RunSweep(const std::string& json_path) {
  const double densities[] = {0.0, 1.0, 25.0, 100.0};
  std::vector<Measurement> results;
  bool all_identical = true;
  for (const double pct : densities) {
    Scenario s(pct, 40 + static_cast<std::uint64_t>(pct));
    all_identical = all_identical && VerifyByteIdentical(s);
    Measurement m;
    m.density_pct = pct;
    m.dirty_words = s.dirty_words;
    for (const Engine e : {Engine::kWord, Engine::kBlock, Engine::kBlockMap}) {
      Page master = s.twin;
      m.ns[static_cast<int>(e)] = TimeEngine(e, s, master);
    }
    results.push_back(m);
  }

  std::printf("\nOutgoing diff scan, 8K page, host time per scan (ns)\n");
  std::printf("%-10s %12s %12s %12s %12s %14s\n", "density", "dirty_words", "word", "block",
              "block+map", "speedup(blk)");
  double sparse_block_speedup = 0.0;
  double sparse_map_speedup = 0.0;
  for (const Measurement& m : results) {
    const double blk_speedup = m.ns[0] / m.ns[1];
    std::printf("%8.1f%% %12zu %12.1f %12.1f %12.1f %13.2fx\n", m.density_pct, m.dirty_words,
                m.ns[0], m.ns[1], m.ns[2], blk_speedup);
    if (m.density_pct > 0.0 && m.density_pct <= 1.0) {
      sparse_block_speedup = blk_speedup;
      sparse_map_speedup = m.ns[0] / m.ns[2];
    }
  }
  std::printf("byte-identical across engines: %s\n", all_identical ? "yes" : "NO");
  std::printf("sparse (1%%) speedup: block %.2fx, block+map %.2fx (acceptance: >= 3x)\n",
              sparse_block_speedup, sparse_map_speedup);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"page_bytes\": %zu,\n  \"byte_identical\": %s,\n", kPageBytes,
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"sparse_speedup_block\": %.3f,\n", sparse_block_speedup);
    std::fprintf(f, "  \"sparse_speedup_block_map\": %.3f,\n", sparse_map_speedup);
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Measurement& m = results[i];
      std::fprintf(f,
                   "    {\"density_pct\": %.1f, \"dirty_words\": %zu, \"word_ns\": %.1f, "
                   "\"block_ns\": %.1f, \"block_map_ns\": %.1f}%s\n",
                   m.density_pct, m.dirty_words, m.ns[0], m.ns[1], m.ns[2],
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  std::string json_path = "BENCH_diff.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  cashmere::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return cashmere::RunSweep(json_path);
}
