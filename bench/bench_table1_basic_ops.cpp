// Table 1 + Section 3.1: costs of basic operations.
//
// Two parts:
//  1. google-benchmark micro-benchmarks of the real implementation
//     primitives (diffs, twins, page copies, directory updates, write
//     notices) — host-time measurements of this reproduction's code;
//  2. the modeled (virtual-time) operation costs, which reproduce the
//     paper's Table 1 and Section 3.1 numbers by construction, printed
//     side by side with the published values for verification.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cashmere/common/rng.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/diff.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/write_notice.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

std::vector<std::uint32_t> RandomPage(std::uint64_t seed) {
  std::vector<std::uint32_t> page(kWordsPerPage);
  SplitMix64 rng(seed);
  for (auto& w : page) {
    w = static_cast<std::uint32_t>(rng.Next());
  }
  return page;
}

std::byte* Bytes(std::vector<std::uint32_t>& p) {
  return reinterpret_cast<std::byte*>(p.data());
}

void BM_TwinCreation(benchmark::State& state) {
  auto src = RandomPage(1);
  std::vector<std::uint32_t> twin(kWordsPerPage);
  for (auto _ : state) {
    CopyPage(Bytes(twin), Bytes(src));
    benchmark::DoNotOptimize(twin.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_TwinCreation);

void BM_OutgoingDiff(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  auto twin = RandomPage(2);
  auto working = twin;
  auto master = twin;
  SplitMix64 rng(3);
  for (std::size_t i = 0; i < changed; ++i) {
    working[rng.NextBelow(kWordsPerPage)] ^= 0xffffffffu;
  }
  for (auto _ : state) {
    // Measure the scan+write; reset the twin afterwards (outside timing
    // would need pauses; the reset cost is symmetric and small).
    auto t = twin;
    const std::size_t n = ApplyOutgoingDiff(Bytes(working), Bytes(t), Bytes(master), true);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_OutgoingDiff)->Arg(0)->Arg(64)->Arg(512)->Arg(2048);

void BM_IncomingDiff(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  auto twin = RandomPage(4);
  auto incoming = twin;
  auto working = twin;
  SplitMix64 rng(5);
  for (std::size_t i = 0; i < changed; ++i) {
    incoming[rng.NextBelow(kWordsPerPage)] ^= 0x55555555u;
  }
  for (auto _ : state) {
    auto t = twin;
    auto w = working;
    const std::size_t n = ApplyIncomingDiff(Bytes(incoming), Bytes(t), Bytes(w));
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_IncomingDiff)->Arg(64)->Arg(2048);

void BM_DirectoryUpdate(benchmark::State& state) {
  Config cfg;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.heap_bytes = 64 * kPageBytes;
  McHub hub(cfg.units());
  GlobalDirectory dir(cfg, hub);
  DirWord w;
  w.perm = Perm::kReadWrite;
  PageId page = 0;
  for (auto _ : state) {
    dir.Write(page, 3, w);
    page = (page + 1) % 64;
  }
}
BENCHMARK(BM_DirectoryUpdate);

void BM_WriteNoticePostDrain(benchmark::State& state) {
  Config cfg;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.heap_bytes = 64 * kPageBytes;
  McHub hub(cfg.units());
  WriteNoticeBoard board(cfg, hub);
  for (auto _ : state) {
    board.PostGlobal(1, 0, 7);
    int n = 0;
    board.DrainGlobal(1, [&](PageId) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_WriteNoticePostDrain);

void BM_PageWriteStream(benchmark::State& state) {
  McHub hub(8);
  auto src = RandomPage(6);
  std::vector<std::uint32_t> dst(kWordsPerPage);
  for (auto _ : state) {
    hub.Issue(McOp::Stream(dst.data(), src.data(), kWordsPerPage, Traffic::kPageData));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageBytes);
}
BENCHMARK(BM_PageWriteStream);

// ---------------------------------------------------------------------------
// Part 2: the modeled Table 1, printed against the paper's numbers.

struct Table1Row {
  const char* operation;
  double paper_2l_us;
  double paper_1l_us;
  double model_2l_us;
  double model_1l_us;
};

void PrintModeledTable1() {
  const CostModel costs;
  const std::vector<Table1Row> rows = {
      {"Lock Acquire", 19, 11, costs.LockAcquireNs(true) / 1000.0,
       costs.LockAcquireNs(false) / 1000.0},
      {"Barrier (2 procs)", 58, 41, costs.BarrierNs(2, true) / 1000.0,
       costs.BarrierNs(2, false) / 1000.0},
      {"Barrier (32 procs)", 321, 364, costs.BarrierNs(32, true) / 1000.0,
       costs.BarrierNs(32, false) / 1000.0},
      {"Page Transfer (local)", 467, 467, costs.PageTransferNs(true, true) / 1000.0,
       costs.PageTransferNs(true, false) / 1000.0},
      {"Page Transfer (remote)", 824, 777, costs.PageTransferNs(false, true) / 1000.0,
       costs.PageTransferNs(false, false) / 1000.0},
  };
  bench::PrintHeader(
      "Table 1: basic operation costs (us) — paper vs this reproduction's model");
  std::printf("%-26s %10s %10s %10s %10s\n", "Operation", "2L/2LS", "1LD/1L", "model-2L",
              "model-1L");
  for (const Table1Row& r : rows) {
    std::printf("%-26s %10.0f %10.0f %10.1f %10.1f\n", r.operation, r.paper_2l_us,
                r.paper_1l_us, r.model_2l_us, r.model_1l_us);
  }
  bench::PrintHeader("Section 3.1: memory-management operation costs (us)");
  std::printf("%-40s %8s %8s\n", "Operation", "paper", "model");
  std::printf("%-40s %8.0f %8.1f\n", "mprotect", 55.0, costs.mprotect_us);
  std::printf("%-40s %8.0f %8.1f\n", "Page fault (resident)", 72.0, costs.page_fault_us);
  std::printf("%-40s %8.0f %8.1f\n", "Twin (8K page)", 199.0, costs.twin_us);
  std::printf("%-40s %8.0f %8.1f\n", "Directory update (lock-free)", 5.0,
              costs.dir_update_us);
  std::printf("%-40s %8.0f %8.1f\n", "Directory update (locked)", 16.0,
              costs.dir_update_locked_us);
  std::printf("%-40s %8s %8.1f-%.1f\n", "Outgoing diff (remote home)", "290-363",
              costs.DiffOutNs(0, false) / 1000.0, costs.DiffOutNs(kWordsPerPage, false) / 1000.0);
  std::printf("%-40s %8s %8.1f-%.1f\n", "Outgoing diff (local home)", "340-561",
              costs.DiffOutNs(0, true) / 1000.0, costs.DiffOutNs(kWordsPerPage, true) / 1000.0);
  std::printf("%-40s %8s %8.1f-%.1f\n", "Incoming diff", "533-541",
              costs.DiffInNs(0) / 1000.0, costs.DiffInNs(kWordsPerPage) / 1000.0);
  std::printf("%-40s %8.0f %8.1f\n", "Shootdown one processor (polling)", 72.0,
              costs.shootdown_poll_us);
  std::printf("%-40s %8.0f %8.1f\n", "Shootdown one processor (interrupt)", 142.0,
              costs.shootdown_interrupt_us);
}

// Measured (virtual-time) costs of a real lock transfer and barrier on a
// live runtime, to confirm the model feeds through the full stack.
void PrintMeasuredSyncCosts() {
  bench::PrintHeader("Measured end-to-end synchronization (virtual time, 2 processors)");
  {
    Config cfg;
    cfg.nodes = 2;
    cfg.procs_per_node = 1;
    cfg.heap_bytes = 64 * 1024;
    cfg.cost.time_scale = 1.0;
    Runtime rt(cfg);
    constexpr int kIters = 100;
    rt.Run([&](Context& ctx) {
      for (int i = 0; i < kIters; ++i) {
        ctx.LockAcquire(0);
        ctx.LockRelease(0);
        ctx.Poll();
      }
    });
    const double per_acquire_us =
        rt.report().ExecTimeSec() * 1e6 / (2.0 * kIters);
    std::printf("%-40s %8.1f us (paper: 19)\n", "Lock acquire+release round trip / 2",
                per_acquire_us / 2.0);
  }
  {
    Config cfg;
    cfg.nodes = 2;
    cfg.procs_per_node = 1;
    cfg.heap_bytes = 64 * 1024;
    cfg.cost.time_scale = 1.0;
    Runtime rt(cfg);
    constexpr int kIters = 100;
    rt.Run([&](Context& ctx) {
      for (int i = 0; i < kIters; ++i) {
        ctx.Barrier(0);
      }
    });
    std::printf("%-40s %8.1f us (paper: 58)\n", "Barrier (2 processors)",
                rt.report().ExecTimeSec() * 1e6 / kIters);
  }
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cashmere::PrintModeledTable1();
  cashmere::PrintMeasuredSyncCosts();
  return 0;
}
