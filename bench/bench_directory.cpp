// Directory backend benchmark: replicated broadcast vs sharded
// point-to-point at million-page arena scale (Config::dir.mode;
// DESIGN.md §13, EXPERIMENTS.md).
//
// The replicated directory pays O(units) wire bytes per update and
// O(pages x units) resident words on *every* unit; the sharded backend
// pays one point-to-point word per update (free when the updater is the
// shard owner) and allocates entry segments lazily, so memory follows
// touched pages. This harness drives both backends standalone (directory +
// MC hub + home table, no full runtime) through an identical protocol-shaped
// update/query mix and sweeps pages 10^3 -> 10^6 and units 4 -> 32 (units
// above 8 use the 1LD shape: units = processors, the sweep's directory
// scale axis).
//
// Per (pages, units) cell, for each touched page: every unit joins the
// sharing set, one unit attempts an exclusive claim (query + ordered
// write-and-snapshot + withdrawal), one unit collects write-notice targets,
// and every unit churns its word twice more — the per-page shape of the
// fault/release paths. Wire bytes come from the hub's directory traffic
// class; resident bytes from DirectoryBackend::ResidentBytes() (replicated:
// one replica per unit cluster-wide; sharded: allocated segments + entry
// caches). Both backends are cross-checked for identical sharer sets and
// holders on a sample of pages.
//
// Exit status is nonzero unless, at the top of the sweep (10^6 pages, 32
// units), the sharded backend shows >= 4x lower directory wire traffic and
// >= 10x lower resident directory memory, and every cell cross-checks.
// Results go to stdout and BENCH_directory.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cashmere/common/config.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/directory_sharded.hpp"
#include "cashmere/protocol/home_table.hpp"

namespace cashmere {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// Cluster shape yielding `units` coherence units: the 2L family (units =
// nodes) up to 8, the 1LD shape (units = processors) above.
Config UnitsConfig(int units, std::size_t pages) {
  Config cfg;
  if (units <= kMaxNodes) {
    cfg.protocol = ProtocolVariant::kTwoLevel;
    cfg.nodes = units;
    cfg.procs_per_node = 1;
  } else {
    cfg.protocol = ProtocolVariant::kOneLevelDiff;
    cfg.nodes = kMaxNodes;
    cfg.procs_per_node = units / kMaxNodes;
  }
  cfg.heap_bytes = pages * kPageBytes;
  return cfg;
}

struct CellResult {
  std::size_t pages = 0;
  int units = 0;
  std::size_t touched = 0;
  std::uint64_t updates = 0;
  std::uint64_t wire_replicated = 0;
  std::uint64_t wire_sharded = 0;
  std::size_t resident_replicated = 0;
  std::size_t resident_sharded = 0;
  double ns_per_update_replicated = 0.0;
  double ns_per_update_sharded = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t segments = 0;
  bool parity_ok = false;
  double WireRatio() const {
    return wire_sharded > 0
               ? static_cast<double>(wire_replicated) / static_cast<double>(wire_sharded)
               : 0.0;
  }
  double ResidentRatio() const {
    return resident_sharded > 0 ? static_cast<double>(resident_replicated) /
                                      static_cast<double>(resident_sharded)
                                : 0.0;
  }
};

// The protocol-shaped per-page mix (see file comment). Returns updates
// issued and wall-clock ns; wire bytes accumulate in the hub.
std::uint64_t DriveWorkload(DirectoryBackend& dir, const Config& cfg, std::size_t touched,
                            std::size_t stride, std::uint64_t* wall_ns) {
  const int units = cfg.units();
  std::uint64_t updates = 0;
  std::uint32_t snapshot[kMaxProcs];
  UnitId sharers[kMaxProcs];
  DirWord read_w;
  read_w.perm = Perm::kRead;
  DirWord rw_w;
  rw_w.perm = Perm::kReadWrite;
  const std::uint64_t t0 = NowNs();
  for (std::size_t i = 0; i < touched; ++i) {
    const PageId page = static_cast<PageId>((i * stride) % cfg.pages());
    for (UnitId u = 0; u < units; ++u) {
      dir.Write(page, u, read_w);
      ++updates;
    }
    const UnitId claimant = static_cast<UnitId>(page % static_cast<PageId>(units));
    if (!dir.AnyOtherSharer(page, claimant)) {
      // Unreached under this mix (every page has sharers); kept so the
      // cached gate query is exercised the way the fault path uses it.
      continue;
    }
    DirWord claim = rw_w;
    claim.exclusive = true;
    dir.WriteAndSnapshot(page, claimant, claim, snapshot);
    ++updates;
    dir.Write(page, claimant, rw_w);  // withdraw: other sharers exist
    ++updates;
    const UnitId releaser = static_cast<UnitId>((page + 1) % static_cast<PageId>(units));
    dir.Sharers(page, releaser, sharers);
    for (UnitId u = 0; u < units; ++u) {
      dir.Write(page, u, rw_w);
      dir.Write(page, u, read_w);
      updates += 2;
    }
  }
  *wall_ns = NowNs() - t0;
  return updates;
}

// Both backends must agree on the authoritative view after the same mix.
bool CrossCheck(DirectoryBackend& a, DirectoryBackend& b, const Config& cfg,
                std::size_t touched, std::size_t stride) {
  const int units = cfg.units();
  UnitId sa[kMaxProcs];
  UnitId sb[kMaxProcs];
  const std::size_t step = touched > 64 ? touched / 64 : 1;
  for (std::size_t i = 0; i < touched; i += step) {
    const PageId page = static_cast<PageId>((i * stride) % cfg.pages());
    const int na = a.Sharers(page, -1, sa);
    const int nb = b.Sharers(page, -1, sb);
    if (na != nb) {
      return false;
    }
    for (int k = 0; k < na; ++k) {
      if (sa[k] != sb[k]) {
        return false;
      }
    }
    for (UnitId u = 0; u < units; ++u) {
      if (a.Read(page, u).Pack() != b.Read(page, u).Pack()) {
        return false;
      }
      if (a.ExclusiveHolderFresh(page, u) != b.ExclusiveHolderFresh(page, u)) {
        return false;
      }
    }
  }
  return true;
}

CellResult RunCell(std::size_t pages, int units) {
  Config cfg = UnitsConfig(units, pages);
  cfg.Validate();

  CellResult cell;
  cell.pages = pages;
  cell.units = units;
  // Sparse touch, protocol-realistic for a large arena: a working set of
  // at most 8192 pages strided across the arena (so it spans superpages
  // and shard segments rather than one dense run).
  cell.touched = pages < 8192 ? pages : 8192;
  const std::size_t stride = pages / cell.touched > 0 ? pages / cell.touched : 1;

  McHub rep_hub(cfg.units());
  Config rep_cfg = cfg;
  rep_cfg.dir.mode = DirMode::kReplicated;
  GlobalDirectory replicated(rep_cfg, rep_hub);
  std::uint64_t rep_ns = 0;
  cell.updates = DriveWorkload(replicated, cfg, cell.touched, stride, &rep_ns);
  cell.wire_replicated = rep_hub.BytesSent(Traffic::kDirectory);
  cell.resident_replicated = replicated.ResidentBytes();
  cell.ns_per_update_replicated =
      static_cast<double>(rep_ns) / static_cast<double>(cell.updates);

  McHub shard_hub(cfg.units());
  Config shard_cfg = cfg;
  shard_cfg.dir.mode = DirMode::kSharded;
  HomeTable homes(shard_cfg);
  ShardedDirectory sharded(shard_cfg, shard_hub, homes);
  std::uint64_t shard_ns = 0;
  DriveWorkload(sharded, cfg, cell.touched, stride, &shard_ns);
  cell.wire_sharded = shard_hub.BytesSent(Traffic::kDirectory);
  cell.resident_sharded = sharded.ResidentBytes();
  cell.ns_per_update_sharded =
      static_cast<double>(shard_ns) / static_cast<double>(cell.updates);
  cell.cache_hits = sharded.CacheHits();
  cell.segments = sharded.SegmentsAllocated();

  cell.parity_ok = CrossCheck(replicated, sharded, cfg, cell.touched, stride);
  return cell;
}

int RunBench(bool small, const std::string& json_path) {
  std::printf("Directory backends: replicated broadcast vs sharded point-to-point\n");
  std::printf("================================================================\n\n");
  std::printf("%9s %6s %8s %12s %12s %7s %11s %11s %8s %8s %8s %6s\n", "pages", "units",
              "touched", "wireRep(B)", "wireShard(B)", "wire_x", "memRep(B)",
              "memShard(B)", "mem_x", "ns/upR", "ns/upS", "ok");

  const std::vector<std::size_t> page_sweep =
      small ? std::vector<std::size_t>{1000, 10000}
            : std::vector<std::size_t>{1000, 10000, 100000, 1000000};
  const std::vector<int> unit_sweep = small ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 16, 32};

  std::vector<CellResult> cells;
  for (const std::size_t pages : page_sweep) {
    for (const int units : unit_sweep) {
      cells.push_back(RunCell(pages, units));
    }
  }
  // The gate cell (top of the sweep) always runs, --small included: the
  // smoke run must exercise the same claim CI records.
  cells.push_back(RunCell(1000000, 32));
  const CellResult& top = cells.back();

  bool parity_all = true;
  for (const CellResult& c : cells) {
    parity_all = parity_all && c.parity_ok;
    std::printf("%9zu %6d %8zu %12llu %12llu %6.1fx %11zu %11zu %7.0fx %8.1f %8.1f %6s\n",
                c.pages, c.units, c.touched, (unsigned long long)c.wire_replicated,
                (unsigned long long)c.wire_sharded, c.WireRatio(), c.resident_replicated,
                c.resident_sharded, c.ResidentRatio(), c.ns_per_update_replicated,
                c.ns_per_update_sharded, c.parity_ok ? "yes" : "NO");
  }

  const bool wire_goal = top.WireRatio() >= 4.0;
  const bool mem_goal = top.ResidentRatio() >= 10.0;
  const bool pass = wire_goal && mem_goal && parity_all;
  std::printf("\ntop of sweep (%zu pages, %d units): wire %.1fx (goal >= 4x), "
              "memory %.0fx (goal >= 10x), parity %s\n",
              top.pages, top.units, top.WireRatio(), top.ResidentRatio(),
              parity_all ? "clean" : "BROKEN");
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::string rows;
  for (const CellResult& c : cells) {
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"pages\": %zu, \"units\": %d, \"touched\": %zu, "
                  "\"updates\": %llu, \"wire_replicated\": %llu, \"wire_sharded\": %llu, "
                  "\"wire_ratio\": %.2f, \"resident_replicated\": %zu, "
                  "\"resident_sharded\": %zu, \"resident_ratio\": %.2f, "
                  "\"ns_per_update_replicated\": %.1f, \"ns_per_update_sharded\": %.1f, "
                  "\"cache_hits\": %llu, \"segments\": %llu, \"parity\": %s}",
                  c.pages, c.units, c.touched, (unsigned long long)c.updates,
                  (unsigned long long)c.wire_replicated, (unsigned long long)c.wire_sharded,
                  c.WireRatio(), c.resident_replicated, c.resident_sharded, c.ResidentRatio(),
                  c.ns_per_update_replicated, c.ns_per_update_sharded,
                  (unsigned long long)c.cache_hits, (unsigned long long)c.segments,
                  c.parity_ok ? "true" : "false");
    if (!rows.empty()) {
      rows += ",\n";
    }
    rows += row;
  }
  std::fprintf(f,
               "{\n  \"cells\": [\n%s\n  ],\n"
               "  \"gate\": {\"pages\": %zu, \"units\": %d, \"wire_ratio\": %.2f, "
               "\"resident_ratio\": %.2f},\n"
               "  \"meets_4x_wire_goal\": %s,\n  \"meets_10x_memory_goal\": %s,\n"
               "  \"parity_all\": %s\n}\n",
               rows.c_str(), top.pages, top.units, top.WireRatio(), top.ResidentRatio(),
               wire_goal ? "true" : "false", mem_goal ? "true" : "false",
               parity_all ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  bool small = false;
  std::string json_path = "BENCH_directory.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  return cashmere::RunBench(small, json_path);
}
