// Instrumented-write fast-path microbenchmark: host-time cost of one
// NoteLocalWrite at 1, 2, and 4 contending threads, old vs new.
//
//   locked    the seed's fast path: take the per-page spin lock, check
//             twin_valid, MarkRange on the shared dirty map;
//   sharded   the lock-free path: acquire-load the twin generation, check
//             parity, relaxed fetch_or into the caller's own shard.
//
// Every thread hammers the same page (the worst case for the locked
// variant and the common case for a hot shared page), with offsets drawn
// from a cheap thread-local generator so the tracker dominates the loop.
// The headline number is wall time per write across all threads — the
// system-wide cost of tracking one instrumented store. Results go to
// stdout and to BENCH_writepath.json; acceptance is sharded >= 3x cheaper
// than locked at 4 contending threads.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cashmere/common/rng.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {
namespace {

constexpr int kMaxThreads = 4;
constexpr std::size_t kWritesPerThread = 100'000;

// The seed's NoteLocalWrite body (cashmere_protocol.cpp before this
// change): one spin-lock round trip per instrumented write.
struct LockedTracker {
  SpinLock lock;
  bool twin_valid = true;
  DirtyBlockMap map;

  void Note(int /*local_index*/, std::size_t offset, std::size_t bytes) {
    SpinLockGuard guard(lock);
    if (!twin_valid) {
      return;
    }
    map.MarkRange(offset, bytes);
  }
};

// The new lock-free body: generation parity check + owner-shard mark.
struct ShardedTracker {
  std::atomic<std::uint64_t> twin_gen{1};  // odd: live twin
  DirtyMapShard shards[kMaxThreads];

  void Note(int local_index, std::size_t offset, std::size_t bytes) {
    const std::uint64_t gen = twin_gen.load(std::memory_order_acquire);
    if ((gen & 1) == 0) {
      return;
    }
    shards[local_index].MarkRange(gen, offset, bytes);
  }
};

template <typename Tracker>
void HammerLoop(Tracker& tracker, int local_index, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (std::size_t k = 0; k < kWritesPerThread; ++k) {
    const std::size_t offset = rng.Next() & (kPageBytes - kWordBytes);
    tracker.Note(local_index, offset, kWordBytes);
  }
}

// Wall-clock ns per instrumented write with `nthreads` contending on one
// tracker. Threads rendezvous on an atomic flag so the timed region holds
// only the hammer loops.
template <typename Tracker>
double TimeTracker(int nthreads) {
  using Clock = std::chrono::steady_clock;
  Tracker tracker;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 1; t < nthreads; ++t) {
    threads.emplace_back([&tracker, &ready, &go, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      HammerLoop(tracker, t, 91 + static_cast<std::uint64_t>(t));
    });
  }
  while (ready.load(std::memory_order_acquire) != nthreads - 1) {
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  HammerLoop(tracker, 0, 91);
  for (std::thread& th : threads) {
    th.join();
  }
  const double ns = std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
  return ns / static_cast<double>(kWritesPerThread * static_cast<std::size_t>(nthreads));
}

// ---------------------------------------------------------------------------
// google-benchmark registrations (contention via benchmark's own threads).

template <typename Tracker>
void BM_WritePath(benchmark::State& state) {
  static Tracker* tracker = nullptr;
  if (state.thread_index() == 0) {
    tracker = new Tracker();
  }
  SplitMix64 rng(91 + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const std::size_t offset = rng.Next() & (kPageBytes - kWordBytes);
    tracker->Note(state.thread_index(), offset, kWordBytes);
  }
  if (state.thread_index() == 0) {
    delete tracker;
    tracker = nullptr;
  }
}

void RegisterBenchmarks() {
  benchmark::RegisterBenchmark("BM_WritePath/locked", BM_WritePath<LockedTracker>)
      ->Threads(1)
      ->Threads(2)
      ->Threads(4);
  benchmark::RegisterBenchmark("BM_WritePath/sharded", BM_WritePath<ShardedTracker>)
      ->Threads(1)
      ->Threads(2)
      ->Threads(4);
}

// ---------------------------------------------------------------------------
// Sweep + JSON emission.

int RunSweep(const std::string& json_path) {
  const int thread_counts[] = {1, 2, 4};
  double locked_ns[3];
  double sharded_ns[3];
  // Interleave a warmup pass so both variants see warm caches.
  TimeTracker<LockedTracker>(1);
  TimeTracker<ShardedTracker>(1);
  for (int i = 0; i < 3; ++i) {
    locked_ns[i] = TimeTracker<LockedTracker>(thread_counts[i]);
    sharded_ns[i] = TimeTracker<ShardedTracker>(thread_counts[i]);
  }

  std::printf("\nInstrumented-write tracking, host time per write (ns)\n");
  std::printf("%-8s %12s %12s %10s\n", "threads", "locked", "sharded", "speedup");
  for (int i = 0; i < 3; ++i) {
    std::printf("%8d %12.1f %12.1f %9.2fx\n", thread_counts[i], locked_ns[i], sharded_ns[i],
                locked_ns[i] / sharded_ns[i]);
  }
  const double speedup_4t = locked_ns[2] / sharded_ns[2];
  std::printf("4-thread speedup: %.2fx (acceptance: >= 3x)\n", speedup_4t);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"writes_per_thread\": %zu,\n", kWritesPerThread);
    std::fprintf(f, "  \"speedup_4t\": %.3f,\n  \"sweep\": [\n", speedup_4t);
    for (int i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    {\"threads\": %d, \"locked_ns\": %.1f, \"sharded_ns\": %.1f, "
                   "\"speedup\": %.3f}%s\n",
                   thread_counts[i], locked_ns[i], sharded_ns[i],
                   locked_ns[i] / sharded_ns[i], i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return speedup_4t >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace cashmere

int main(int argc, char** argv) {
  std::string json_path = "BENCH_writepath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  cashmere::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return cashmere::RunSweep(json_path);
}
