// cashmere_trace: run one application with structured tracing enabled,
// replay the merged event stream through the invariant checker, and
// optionally export it as Chrome trace_event JSON.
//
//   cashmere_trace --app SOR [--protocol 2L] [--procs 32] [--ppn 4]
//                  [--size test|bench|large] [--ring-events N]
//                  [--json trace.json] [--no-check]
//
// Exits 0 iff the run verified against the sequential reference and the
// invariant checker found no issues; the checker is on by default so CI can
// pipe any deterministic app through it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cashmere/apps/app.hpp"
#include "cashmere/common/trace_check.hpp"

namespace {

using namespace cashmere;

[[noreturn]] void Usage(const char* argv0) {
  std::string names;
  for (const std::string& name : App::Names()) {
    if (!names.empty()) {
      names += '|';
    }
    names += name;
  }
  std::fprintf(stderr,
               "usage: %s --app <%s>\n"
               "          [--protocol 2L|2LS|2L-lock|1LD|1L] [--procs N] [--ppn N]\n"
               "          [--size test|bench|large] [--ring-events N]\n"
               "          [--json <file>] [--no-check]\n",
               argv0, names.c_str());
  std::exit(2);
}

bool ParseProtocol(const char* name, ProtocolVariant* out) {
  const ProtocolVariant all[] = {
      ProtocolVariant::kTwoLevel, ProtocolVariant::kTwoLevelShootdown,
      ProtocolVariant::kTwoLevelGlobalLock, ProtocolVariant::kOneLevelDiff,
      ProtocolVariant::kOneLevelWriteDouble};
  for (const ProtocolVariant v : all) {
    if (std::strcmp(ProtocolVariantName(v), name) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  AppKind kind = AppKind::kSor;
  bool have_app = false;
  bool check = true;
  const char* json_path = nullptr;
  Config cfg;
  cfg.cost.scale = 1.0;  // counters, not modeled time, are what tracing reads
  cfg.trace.enabled = true;
  int procs = 32;
  int ppn = 4;
  int size_class = kSizeTest;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      if (!App::Lookup(next(), &kind)) {
        Usage(argv[0]);
      }
      have_app = true;
    } else if (arg == "--protocol") {
      if (!ParseProtocol(next(), &cfg.protocol)) {
        Usage(argv[0]);
      }
    } else if (arg == "--procs") {
      procs = std::atoi(next());
    } else if (arg == "--ppn") {
      ppn = std::atoi(next());
    } else if (arg == "--size") {
      const std::string s = next();
      size_class = s == "test" ? kSizeTest : s == "large" ? kSizeLarge : kSizeBench;
    } else if (arg == "--ring-events") {
      cfg.trace.ring_events = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--no-check") {
      check = false;
    } else {
      Usage(argv[0]);
    }
  }
  if (!have_app) {
    Usage(argv[0]);
  }
  if (ppn <= 0 || procs <= 0 || procs % ppn != 0 || procs / ppn > kMaxNodes ||
      ppn > kMaxProcsPerNode) {
    std::fprintf(stderr, "invalid cluster shape %d:%d (max %d nodes x %d processors)\n",
                 procs, ppn, kMaxNodes, kMaxProcsPerNode);
    return 2;
  }
  cfg.nodes = procs / ppn;
  cfg.procs_per_node = ppn;

  const AppRunResult r = RunApp(kind, cfg, size_class);
  std::printf("%s on %s  [%s]\n", AppName(kind), r.cfg.Describe().c_str(),
              r.verified ? "VERIFIED" : "VERIFICATION FAILED");
  if (!r.trace) {
    std::fprintf(stderr, "cashmere_trace: run produced no trace log\n");
    return 1;
  }
  const std::vector<TraceEvent> merged = r.trace->Merged();
  std::printf("  events: %llu appended, %llu retained, %llu dropped\n",
              (unsigned long long)r.trace->TotalEvents(),
              (unsigned long long)merged.size(),
              (unsigned long long)r.trace->TotalDropped());

  bool ok = r.verified;
  if (check) {
    const TraceCheckResult res = CheckTrace(merged, r.cfg, r.trace->TotalDropped());
    std::printf("%s", res.ToString().c_str());
    ok = ok && res.ok;
  }
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cashmere_trace: cannot open %s\n", json_path);
      return 1;
    }
    WriteChromeTrace(merged, r.cfg, f);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  }
  return ok ? 0 : 1;
}
