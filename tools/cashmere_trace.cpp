// cashmere_trace: run one application with structured tracing enabled,
// replay the merged event stream through the invariant checker, and
// optionally export it as Chrome trace_event JSON.
//
//   cashmere_trace --app SOR [--protocol 2L] [--procs 32] [--ppn 4]
//                  [--size test|bench|large] [--ring-events N] [--async]
//                  [--json trace.json] [--no-check]
//
// Exits 0 iff the run verified against the sequential reference and the
// invariant checker found no issues; the checker is on by default so CI can
// pipe any deterministic app through it.
//
// The `contention` subcommand runs the same way but instead derives the
// top-N contended pages and locks from the event stream:
//
//   cashmere_trace contention --app SOR [--top 10] [...run options...]
//
// Page contention ranks by protocol traffic per page (faults + transfers +
// diffs + write notices); per-page directory-update columns break the
// page's directory traffic into broadcast vs point-to-point updates and
// wire bytes (decoded from kDirUpdate's a0). Lock contention ranks by
// acquire count and the number of distinct acquiring processors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cashmere/apps/app.hpp"
#include "cashmere/common/trace_check.hpp"
#include "cashmere/protocol/directory.hpp"

namespace {

using namespace cashmere;

[[noreturn]] void Usage(const char* argv0) {
  std::string names;
  for (const std::string& name : App::Names()) {
    if (!names.empty()) {
      names += '|';
    }
    names += name;
  }
  std::fprintf(stderr,
               "usage: %s [contention] --app <%s>\n"
               "          [--protocol 2L|2LS|2L-lock|1LD|1L] [--procs N] [--ppn N]\n"
               "          [--size test|bench|large] [--ring-events N] [--async]\n"
               "          [--no-async] [--dir replicated|sharded]\n"
               "          [--json <file>] [--no-check] [--top N]\n",
               argv0, names.c_str());
  std::exit(2);
}

// --- contention derivation ------------------------------------------------

struct PageContention {
  std::uint32_t page = 0;
  std::uint64_t faults = 0;     // kFaultBegin
  std::uint64_t transfers = 0;  // kPageCopy
  std::uint64_t diffs = 0;      // kDiffApplyIncoming + kDiffApplyOutgoing
  std::uint64_t notices = 0;    // kWnPost
  std::uint64_t dir_bcast = 0;  // kDirUpdate, broadcast (replicated backend)
  std::uint64_t dir_p2p = 0;    // kDirUpdate, point-to-point (sharded)
  std::uint64_t dir_bytes = 0;  // directory wire bytes for this page
  std::uint64_t procs = 0;      // distinct rows that faulted on the page
  std::uint64_t total() const { return faults + transfers + diffs + notices; }
};

struct LockContention {
  std::uint32_t id = 0;
  std::uint64_t acquires = 0;
  std::uint64_t procs = 0;         // distinct acquiring processors
  VirtTime hold_ns = 0;            // sum of acquire->release spans per proc
};

void ReportContention(const std::vector<TraceEvent>& merged, int top) {
  std::map<std::uint32_t, PageContention> pages;
  std::map<std::uint32_t, std::map<std::uint16_t, bool>> page_proc_set;
  std::map<std::uint32_t, LockContention> locks;
  std::map<std::uint32_t, std::map<std::uint16_t, bool>> lock_proc_set;
  // Per (proc, lock) open acquire vt, for hold-span sums.
  std::map<std::uint64_t, VirtTime> open_acquire;

  for (const TraceEvent& e : merged) {
    const auto kind = static_cast<EventKind>(e.kind);
    switch (kind) {
      case EventKind::kFaultBegin:
        if (e.page != kNoTracePage) {
          PageContention& pc = pages[e.page];
          pc.page = e.page;
          ++pc.faults;
          page_proc_set[e.page][e.proc] = true;
        }
        break;
      case EventKind::kPageCopy:
        if (e.page != kNoTracePage) {
          pages[e.page].page = e.page;
          ++pages[e.page].transfers;
        }
        break;
      case EventKind::kDiffApplyIncoming:
      case EventKind::kDiffApplyOutgoing:
        if (e.page != kNoTracePage) {
          pages[e.page].page = e.page;
          ++pages[e.page].diffs;
        }
        break;
      case EventKind::kWnPost:
        if (e.page != kNoTracePage) {
          pages[e.page].page = e.page;
          ++pages[e.page].notices;
        }
        break;
      case EventKind::kDirUpdate:
        if (e.page != kNoTracePage) {
          PageContention& pc = pages[e.page];
          pc.page = e.page;
          const DirUpdateTraceInfo info = DecodeDirUpdateTraceArg(e.a0);
          ++(info.p2p ? pc.dir_p2p : pc.dir_bcast);
          pc.dir_bytes += info.wire_bytes;
        }
        break;
      case EventKind::kLockAcquire: {
        LockContention& lc = locks[e.a0];
        lc.id = e.a0;
        ++lc.acquires;
        lock_proc_set[e.a0][e.proc] = true;
        open_acquire[(static_cast<std::uint64_t>(e.proc) << 32) | e.a0] = e.vt;
        break;
      }
      case EventKind::kLockRelease: {
        const std::uint64_t key = (static_cast<std::uint64_t>(e.proc) << 32) | e.a0;
        auto it = open_acquire.find(key);
        if (it != open_acquire.end() && e.vt >= it->second) {
          locks[e.a0].hold_ns += e.vt - it->second;
          open_acquire.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  for (auto& [page, pc] : pages) {
    pc.procs = page_proc_set[page].size();
  }
  for (auto& [id, lc] : locks) {
    lc.procs = lock_proc_set[id].size();
  }

  std::vector<PageContention> page_rank;
  page_rank.reserve(pages.size());
  for (const auto& [page, pc] : pages) {
    page_rank.push_back(pc);
  }
  std::sort(page_rank.begin(), page_rank.end(),
            [](const PageContention& a, const PageContention& b) {
              return a.total() != b.total() ? a.total() > b.total() : a.page < b.page;
            });
  std::vector<LockContention> lock_rank;
  lock_rank.reserve(locks.size());
  for (const auto& [id, lc] : locks) {
    lock_rank.push_back(lc);
  }
  std::sort(lock_rank.begin(), lock_rank.end(),
            [](const LockContention& a, const LockContention& b) {
              return a.acquires != b.acquires ? a.acquires > b.acquires : a.id < b.id;
            });

  std::printf("\ntop %d contended pages (of %zu with traffic):\n", top, page_rank.size());
  std::printf("  %-8s %8s %8s %8s %8s %8s %8s %8s %9s %8s\n", "page", "total",
              "faults", "copies", "diffs", "notices", "dirBcast", "dirP2P",
              "dirBytes", "procs");
  for (std::size_t i = 0; i < page_rank.size() && i < static_cast<std::size_t>(top);
       ++i) {
    const PageContention& pc = page_rank[i];
    std::printf("  %-8u %8llu %8llu %8llu %8llu %8llu %8llu %8llu %9llu %8llu\n",
                pc.page, (unsigned long long)pc.total(), (unsigned long long)pc.faults,
                (unsigned long long)pc.transfers, (unsigned long long)pc.diffs,
                (unsigned long long)pc.notices, (unsigned long long)pc.dir_bcast,
                (unsigned long long)pc.dir_p2p, (unsigned long long)pc.dir_bytes,
                (unsigned long long)pc.procs);
  }
  std::printf("\ntop %d contended locks (of %zu acquired):\n", top, lock_rank.size());
  std::printf("  %-8s %8s %8s %12s\n", "lock", "acquires", "procs", "hold(ms)");
  for (std::size_t i = 0; i < lock_rank.size() && i < static_cast<std::size_t>(top);
       ++i) {
    const LockContention& lc = lock_rank[i];
    std::printf("  %-8u %8llu %8llu %12.3f\n", lc.id, (unsigned long long)lc.acquires,
                (unsigned long long)lc.procs, static_cast<double>(lc.hold_ns) / 1e6);
  }
}

bool ParseProtocol(const char* name, ProtocolVariant* out) {
  const ProtocolVariant all[] = {
      ProtocolVariant::kTwoLevel, ProtocolVariant::kTwoLevelShootdown,
      ProtocolVariant::kTwoLevelGlobalLock, ProtocolVariant::kOneLevelDiff,
      ProtocolVariant::kOneLevelWriteDouble};
  for (const ProtocolVariant v : all) {
    if (std::strcmp(ProtocolVariantName(v), name) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  AppKind kind = AppKind::kSor;
  bool have_app = false;
  bool check = true;
  bool contention = false;
  int top = 10;
  const char* json_path = nullptr;
  Config cfg;
  cfg.cost.scale = 1.0;  // counters, not modeled time, are what tracing reads
  cfg.trace.enabled = true;
  // Honor CSM_TRANSPORT so the shm-smoke CI job can push a launched
  // cluster's run through the trace checker unchanged.
  if (!ApplyTransportEnv(&cfg)) {
    std::fprintf(stderr, "unknown CSM_TRANSPORT '%s' (want inproc|shm)\n",
                 std::getenv("CSM_TRANSPORT"));
    return 2;
  }
  int procs = 32;
  int ppn = 4;
  int size_class = kSizeTest;

  int first_arg = 1;
  if (argc > 1 && std::strcmp(argv[1], "contention") == 0) {
    contention = true;
    first_arg = 2;
  }
  for (int i = first_arg; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      if (!App::Lookup(next(), &kind)) {
        Usage(argv[0]);
      }
      have_app = true;
    } else if (arg == "--protocol") {
      if (!ParseProtocol(next(), &cfg.protocol)) {
        Usage(argv[0]);
      }
    } else if (arg == "--procs") {
      procs = std::atoi(next());
    } else if (arg == "--ppn") {
      ppn = std::atoi(next());
    } else if (arg == "--size") {
      const std::string s = next();
      size_class = s == "test" ? kSizeTest : s == "large" ? kSizeLarge : kSizeBench;
    } else if (arg == "--ring-events") {
      cfg.trace.ring_events = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--no-check") {
      check = false;
    } else if (arg == "--async") {
      cfg.async.release = true;
    } else if (arg == "--no-async") {
      cfg.async.release = false;
    } else if (arg == "--dir") {
      const std::string s = next();
      if (s == "sharded") {
        cfg.dir.mode = DirMode::kSharded;
      } else if (s == "replicated") {
        cfg.dir.mode = DirMode::kReplicated;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--top") {
      top = std::atoi(next());
    } else {
      Usage(argv[0]);
    }
  }
  if (!have_app) {
    Usage(argv[0]);
  }
  if (ppn <= 0 || procs <= 0 || procs % ppn != 0 || procs / ppn > kMaxNodes ||
      ppn > kMaxProcsPerNode) {
    std::fprintf(stderr, "invalid cluster shape %d:%d (max %d nodes x %d processors)\n",
                 procs, ppn, kMaxNodes, kMaxProcsPerNode);
    return 2;
  }
  cfg.nodes = procs / ppn;
  cfg.procs_per_node = ppn;

  const AppRunResult r = RunApp(kind, cfg, size_class);
  std::printf("%s on %s  [%s]\n", AppName(kind), r.cfg.Describe().c_str(),
              r.verified ? "VERIFIED" : "VERIFICATION FAILED");
  if (!r.trace) {
    std::fprintf(stderr, "cashmere_trace: run produced no trace log\n");
    return 1;
  }
  const std::vector<TraceEvent> merged = r.trace->Merged();
  std::printf("  events: %llu appended, %llu retained, %llu dropped\n",
              (unsigned long long)r.trace->TotalEvents(),
              (unsigned long long)merged.size(),
              (unsigned long long)r.trace->TotalDropped());

  if (contention) {
    ReportContention(merged, top);
    return r.verified ? 0 : 1;
  }
  bool ok = r.verified;
  if (check) {
    const TraceCheckResult res = CheckTrace(merged, r.cfg, r.trace->TotalDropped());
    std::printf("%s", res.ToString().c_str());
    ok = ok && res.ok;
  }
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cashmere_trace: cannot open %s\n", json_path);
      return 1;
    }
    WriteChromeTrace(merged, r.cfg, f);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  }
  return ok ? 0 : 1;
}
