// cashmere_launch: run a cashmere driver as a multi-process shm cluster.
//
//   cashmere_launch -n N -- <command> [args...]
//
// Forks N-1 peer processes (arena-segment hosts + control-plane servers,
// unit ids 1..N-1), then fork+execs <command> as the lead node with the
// environment contract ShmTransport::FromEnv reads:
//
//   CSM_SHM_CTRL_FD   control-plane socket to the launcher relay
//   CSM_SHM_NODES=N   cluster size in OS processes
//   CSM_SHM_NODE=0    this process's node id (the lead)
//   CSM_TRANSPORT=shm selects the backend in drivers that honor it
//
// The launcher runs the star relay between lead and peers (segment fd
// passing, checksum probes, the barrier of last resort) and enforces the
// failure model: any child exiting before the lead's kShutdown gets the
// whole cluster killed and the launcher exits nonzero. Exit status is the
// lead's when the cluster tore down cleanly, 1 otherwise.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cashmere/common/types.hpp"
#include "cashmere/mc/control_plane.hpp"

extern char** environ;

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -n <nodes 1..%d> -- <command> [args...]\n"
               "runs <command> as the lead node of an shm cluster of <nodes>\n"
               "OS processes (the other nodes host arena segments).\n",
               argv0, cashmere::kMaxNodes);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using cashmere::CtrlEndpoint;
  using cashmere::ShmLauncher;

  int nodes = 0;
  int cmd_start = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--") == 0) {
      cmd_start = i + 1;
      break;
    } else {
      Usage(argv[0]);
    }
  }
  if (nodes < 1 || nodes > cashmere::kMaxNodes || cmd_start < 0 || cmd_start >= argc) {
    Usage(argv[0]);
  }

  ShmLauncher launcher;
  if (!launcher.Start(nodes)) {
    std::fprintf(stderr, "cashmere_launch: failed to start %d-node cluster\n", nodes);
    return 1;
  }
  CtrlEndpoint lead_ep = launcher.TakeLeadEndpoint();

  // Assemble argv/envp for the lead before forking: the parent's relay
  // thread is already running, so the child may only use async-signal-safe
  // calls between fork and exec.
  std::vector<char*> cmd_argv;
  for (int i = cmd_start; i < argc; ++i) {
    cmd_argv.push_back(argv[i]);
  }
  cmd_argv.push_back(nullptr);
  std::vector<std::string> env_store;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "CSM_SHM_", 8) == 0 ||
        std::strncmp(*e, "CSM_TRANSPORT=", 14) == 0) {
      continue;  // replaced below
    }
    env_store.emplace_back(*e);
  }
  env_store.push_back("CSM_SHM_CTRL_FD=" + std::to_string(lead_ep.fd()));
  env_store.push_back("CSM_SHM_NODES=" + std::to_string(nodes));
  env_store.push_back("CSM_SHM_NODE=0");
  env_store.push_back("CSM_TRANSPORT=shm");
  std::vector<char*> envp;
  envp.reserve(env_store.size() + 1);
  for (std::string& e : env_store) {
    envp.push_back(e.data());
  }
  envp.push_back(nullptr);

  const pid_t lead_pid = fork();
  if (lead_pid < 0) {
    std::perror("cashmere_launch: fork");
    return 1;
  }
  if (lead_pid == 0) {
    // Lead child: drop the inherited launcher-side fds (EOF must track
    // process death), keep only our control endpoint, and exec.
    launcher.CloseLauncherFdsInChild();
    execvpe(cmd_argv[0], cmd_argv.data(), envp.data());
    // Only reached on failure; write(2)-level reporting, then _exit.
    std::perror("cashmere_launch: exec");
    _exit(127);
  }
  // Parent: the child owns the lead endpoint now; close our copy so the
  // relay sees EOF if the lead dies without kShutdown.
  lead_ep = CtrlEndpoint();

  // Blocks until the lead's kShutdown drains the peers out — or a crash
  // kills the cluster. Crash propagation reaches a blocked lead through
  // its control-socket EOF, so no extra signalling is needed here.
  const bool peers_clean = launcher.Join();

  int lead_status = 0;
  while (waitpid(lead_pid, &lead_status, 0) < 0 && errno == EINTR) {
  }
  const bool lead_clean = WIFEXITED(lead_status) && WEXITSTATUS(lead_status) == 0;
  if (!peers_clean) {
    std::fprintf(stderr, "cashmere_launch: cluster tore down uncleanly\n");
  }
  if (WIFSIGNALED(lead_status)) {
    std::fprintf(stderr, "cashmere_launch: lead killed by signal %d\n",
                 WTERMSIG(lead_status));
  }
  if (lead_clean && peers_clean) {
    return 0;
  }
  return WIFEXITED(lead_status) && WEXITSTATUS(lead_status) != 0
             ? WEXITSTATUS(lead_status)
             : 1;
}
