// csm_lint token stream: a minimal C++ lexer good enough for syntactic
// protocol linting. It is not a compiler front end — no preprocessing, no
// template instantiation — but it gets the lexical structure right where
// the old per-line regex pass got it wrong:
//
//   - comments (// and /* */) never produce code tokens, so a rule token
//     mentioned in prose cannot fire a finding or mask one;
//   - string / character literals (including raw strings and encoding
//     prefixes) are single kString/kChar tokens whose contents are opaque;
//   - backslash-newline splices are applied before tokenization (phase 2),
//     so an identifier or literal split across physical lines lexes as one
//     token (splices are NOT applied inside raw-string bodies, matching
//     the standard's raw-string reversion);
//   - a preprocessor directive is one kPp token covering its whole logical
//     line, so #include paths and macro bodies are invisible to rules.
//
// Comment text is preserved per source line (csm-lint waivers and fixture
// directives live in comments), together with a per-line "comment only"
// flag that defines the waiver window: a waiver covers its own line or a
// flagged line it precedes across a contiguous run of comment-only lines.
#ifndef CSM_LINT_LEXER_HPP_
#define CSM_LINT_LEXER_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace csmlint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // pp-number (integer / floating literals, digit separators)
  kString,  // string literal, incl. raw strings; text includes delimiters
  kChar,    // character literal
  kPunct,   // operators and punctuators (multi-char greedily matched)
  kPp,      // one whole preprocessor logical line
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 0-based line where the token starts
};

struct LexedFile {
  std::vector<Token> tokens;  // code tokens only; comments never appear
  // Per 0-based source line: concatenated comment text on that line (empty
  // if the line carries no comment), and whether the line consists of
  // nothing but comments/whitespace (the waiver-window predicate).
  std::vector<std::string> comment_text;
  std::vector<std::uint8_t> comment_only;
};

// Lexes a whole translation unit. Never fails: malformed input degrades to
// best-effort tokens (an unterminated literal ends at end of line/file).
LexedFile Lex(const std::string& text);

}  // namespace csmlint

#endif  // CSM_LINT_LEXER_HPP_
