#include "lint/lexer.hpp"

#include <cctype>

namespace csmlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Longest-match punctuator table. Only multi-char sequences that could be
// mis-split into meaningful fragments need listing; everything else falls
// through to a single-char token.
const char* const kPuncts3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* const kPuncts2[] = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=",
                                "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                                "|=", "^=", "++", "--", ".*", "##"};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile Run() {
    while (i_ < text_.size()) {
      SkipSplices();
      if (i_ >= text_.size()) {
        break;
      }
      const char c = text_[i_];
      if (c == '\n') {
        ++i_;
        ++line_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (c == '/' && Next() == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Next() == '*') {
        BlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        Preprocessor();
        continue;
      }
      if (IsIdentStart(c)) {
        Identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Next())) != 0)) {
        Number();
        continue;
      }
      if (c == '"') {
        StringLit("");
        continue;
      }
      if (c == '\'') {
        CharLit("");
        continue;
      }
      Punct();
    }
    Finish();
    return std::move(out_);
  }

 private:
  char Next() const { return i_ + 1 < text_.size() ? text_[i_ + 1] : '\0'; }

  // Applies phase-2 backslash-newline splices at the cursor. Not used
  // inside raw-string bodies (the standard reverts splices there).
  void SkipSplices() {
    while (i_ < text_.size() && text_[i_] == '\\') {
      std::size_t j = i_ + 1;
      if (j < text_.size() && text_[j] == '\r') {
        ++j;
      }
      if (j < text_.size() && text_[j] == '\n') {
        i_ = j + 1;
        ++line_;
      } else {
        break;
      }
    }
  }

  void EnsureLine(int line) {
    while (static_cast<int>(has_code_.size()) <= line) {
      has_code_.push_back(false);
      out_.comment_text.emplace_back();
    }
  }
  void MarkCode(int first, int last) {
    EnsureLine(last);
    for (int l = first; l <= last; ++l) {
      has_code_[l] = true;
    }
    at_line_start_ = false;
  }
  void AddComment(int line, const std::string& s) {
    EnsureLine(line);
    out_.comment_text[line] += s;
  }

  void Emit(TokKind kind, std::string text, int start_line, int end_line) {
    MarkCode(start_line, end_line);
    out_.tokens.push_back(Token{kind, std::move(text), start_line});
  }

  void LineComment() {
    std::string buf;
    i_ += 2;  // "//"
    while (i_ < text_.size()) {
      if (text_[i_] == '\\') {
        // A spliced newline continues the comment onto the next line.
        std::size_t j = i_ + 1;
        if (j < text_.size() && text_[j] == '\r') {
          ++j;
        }
        if (j < text_.size() && text_[j] == '\n') {
          AddComment(line_, buf);
          buf.clear();
          i_ = j + 1;
          ++line_;
          continue;
        }
      }
      if (text_[i_] == '\n') {
        break;  // leave the newline for the main loop
      }
      buf.push_back(text_[i_]);
      ++i_;
    }
    AddComment(line_, buf);
  }

  void BlockComment() {
    std::string buf;
    i_ += 2;  // "/*"
    while (i_ < text_.size()) {
      if (text_[i_] == '*' && Next() == '/') {
        i_ += 2;
        break;
      }
      if (text_[i_] == '\n') {
        AddComment(line_, buf);
        buf.clear();
        ++i_;
        ++line_;
        continue;
      }
      buf.push_back(text_[i_]);
      ++i_;
    }
    AddComment(line_, buf);
  }

  // One whole preprocessor logical line becomes a single opaque token:
  // #include paths and macro replacement text never reach the rules.
  void Preprocessor() {
    const int start = line_;
    std::string buf;
    while (i_ < text_.size()) {
      SkipSplices();
      if (i_ >= text_.size() || text_[i_] == '\n') {
        break;
      }
      const char c = text_[i_];
      if (c == '/' && Next() == '/') {
        LineComment();
        break;
      }
      if (c == '/' && Next() == '*') {
        BlockComment();
        buf.push_back(' ');
        continue;
      }
      if (c == '"' || c == '\'') {
        // Consume a quoted region opaquely so a // inside it cannot be
        // mistaken for a comment (e.g. #include "a//b.h").
        const char quote = c;
        buf.push_back(c);
        ++i_;
        while (i_ < text_.size() && text_[i_] != '\n') {
          buf.push_back(text_[i_]);
          if (text_[i_] == '\\' && i_ + 1 < text_.size() &&
              text_[i_ + 1] != '\n') {
            buf.push_back(text_[i_ + 1]);
            i_ += 2;
            continue;
          }
          if (text_[i_] == quote) {
            ++i_;
            break;
          }
          ++i_;
        }
        continue;
      }
      buf.push_back(c);
      ++i_;
    }
    Emit(TokKind::kPp, std::move(buf), start, line_);
  }

  void Identifier() {
    const int start = line_;
    std::string buf;
    while (i_ < text_.size()) {
      SkipSplices();
      if (i_ < text_.size() && IsIdentChar(text_[i_])) {
        buf.push_back(text_[i_]);
        ++i_;
      } else {
        break;
      }
    }
    // Encoding prefixes / raw-string markers glue onto a following literal.
    if (i_ < text_.size() && text_[i_] == '"') {
      if (buf == "R" || buf == "LR" || buf == "uR" || buf == "UR" ||
          buf == "u8R") {
        RawString(buf, start);
        return;
      }
      if (buf == "u8" || buf == "u" || buf == "U" || buf == "L") {
        StringLit(buf);
        return;
      }
    }
    if (i_ < text_.size() && text_[i_] == '\'' &&
        (buf == "u8" || buf == "u" || buf == "U" || buf == "L")) {
      CharLit(buf);
      return;
    }
    Emit(TokKind::kIdent, std::move(buf), start, line_);
  }

  void Number() {
    const int start = line_;
    std::string buf;
    char prev = '\0';
    while (i_ < text_.size()) {
      SkipSplices();
      if (i_ >= text_.size()) {
        break;
      }
      const char c = text_[i_];
      const bool sign_ok =
          (c == '+' || c == '-') && (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
      if (IsIdentChar(c) || c == '.' || c == '\'' || sign_ok) {
        buf.push_back(c);
        prev = c;
        ++i_;
      } else {
        break;
      }
    }
    Emit(TokKind::kNumber, std::move(buf), start, line_);
  }

  void StringLit(const std::string& prefix) {
    const int start = line_;
    std::string buf = prefix;
    buf.push_back('"');
    ++i_;  // opening quote
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\\') {
        std::size_t j = i_ + 1;
        if (j < text_.size() && text_[j] == '\r') {
          ++j;
        }
        if (j < text_.size() && text_[j] == '\n') {
          i_ = j + 1;  // splice inside the literal
          ++line_;
          continue;
        }
        if (i_ + 1 < text_.size()) {
          buf.push_back(c);
          buf.push_back(text_[i_ + 1]);
          i_ += 2;
          continue;
        }
        ++i_;
        continue;
      }
      if (c == '\n') {
        break;  // unterminated; degrade to end-of-line
      }
      buf.push_back(c);
      ++i_;
      if (c == '"') {
        break;
      }
    }
    Emit(TokKind::kString, std::move(buf), start, line_);
  }

  void CharLit(const std::string& prefix) {
    const int start = line_;
    std::string buf = prefix;
    buf.push_back('\'');
    ++i_;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\\' && i_ + 1 < text_.size() && text_[i_ + 1] != '\n') {
        buf.push_back(c);
        buf.push_back(text_[i_ + 1]);
        i_ += 2;
        continue;
      }
      if (c == '\n') {
        break;
      }
      buf.push_back(c);
      ++i_;
      if (c == '\'') {
        break;
      }
    }
    Emit(TokKind::kChar, std::move(buf), start, line_);
  }

  // R"delim( ... )delim" — read verbatim, no splices, no escapes.
  void RawString(const std::string& prefix, int start) {
    std::string buf = prefix;
    buf.push_back('"');
    ++i_;  // opening quote
    std::string delim;
    while (i_ < text_.size() && text_[i_] != '(' && text_[i_] != '\n' &&
           delim.size() < 16) {
      delim.push_back(text_[i_]);
      buf.push_back(text_[i_]);
      ++i_;
    }
    if (i_ < text_.size() && text_[i_] == '(') {
      buf.push_back('(');
      ++i_;
      const std::string close = ")" + delim + "\"";
      while (i_ < text_.size()) {
        if (text_[i_] == '\n') {
          ++line_;
          EnsureLine(line_);
          has_code_[line_] = true;  // literal body occupies the line
        }
        if (text_.compare(i_, close.size(), close) == 0) {
          buf += close;
          i_ += close.size();
          break;
        }
        buf.push_back(text_[i_]);
        ++i_;
      }
    }
    Emit(TokKind::kString, std::move(buf), start, line_);
  }

  void Punct() {
    const int start = line_;
    for (const char* p : kPuncts3) {
      if (text_.compare(i_, 3, p) == 0) {
        i_ += 3;
        Emit(TokKind::kPunct, p, start, start);
        return;
      }
    }
    for (const char* p : kPuncts2) {
      if (text_.compare(i_, 2, p) == 0) {
        i_ += 2;
        Emit(TokKind::kPunct, p, start, start);
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, text_[i_]), start, start);
    ++i_;
  }

  void Finish() {
    EnsureLine(line_);
    out_.comment_only.resize(has_code_.size());
    for (std::size_t l = 0; l < has_code_.size(); ++l) {
      out_.comment_only[l] =
          !has_code_[l] && !out_.comment_text[l].empty() ? 1 : 0;
    }
  }

  const std::string& text_;
  std::size_t i_ = 0;
  int line_ = 0;
  bool at_line_start_ = true;
  std::vector<bool> has_code_;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(const std::string& text) { return Lexer(text).Run(); }

}  // namespace csmlint
