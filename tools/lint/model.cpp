#include "lint/model.hpp"

#include <algorithm>
#include <fstream>

namespace csmlint {
namespace {

std::string Trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parses a waiver (the allow marker, rule name, and dash-dash
// justification) out of comment text.
bool ParseWaiverText(const std::string& comment, std::string* rule,
                     bool* justified) {
  // Split literal so the lint's own sources never look like a waiver.
  static const std::string kMarker = std::string("csm-lint: ") + "allow(";
  const std::size_t at = comment.find(kMarker);
  if (at == std::string::npos) {
    return false;
  }
  const std::size_t open = at + kMarker.size() - 1;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) {
    return false;
  }
  *rule = comment.substr(open + 1, close - open - 1);
  const std::size_t dashes = comment.find("--", close);
  *justified =
      dashes != std::string::npos && !Trimmed(comment.substr(dashes + 2)).empty();
  return true;
}

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "return", "sizeof",
      "alignof",  "decltype", "noexcept", "catch",    "new",    "delete",
      "throw",    "typeid",   "assert",   "defined",  "int",    "char",
      "void",     "bool",     "long",     "short",    "float",  "double",
      "unsigned", "signed",   "auto",     "const",    "constexpr",
      "static_assert", "operator", "co_await", "co_yield", "co_return",
      "requires", "explicit", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast",
  };
  return kKeywords.count(s) != 0;
}

bool IsId(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == s;
}
bool IsP(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

// Index just past the brace/paren group opened at i (t[i] must be the
// opener). Tolerates truncated input by stopping at e.
std::size_t SkipGroup(const std::vector<Token>& t, std::size_t i, std::size_t e,
                      const char* open, const char* close) {
  int depth = 0;
  for (; i < e; ++i) {
    if (IsP(t, i, open)) {
      ++depth;
    } else if (IsP(t, i, close)) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return e;
}

// Skips a template argument/parameter list opened at '<'. '>>' closes two.
std::size_t SkipAngles(const std::vector<Token>& t, std::size_t i,
                       std::size_t e) {
  int depth = 0;
  for (; i < e; ++i) {
    if (IsP(t, i, "<")) {
      ++depth;
    } else if (IsP(t, i, ">")) {
      if (--depth <= 0) {
        return i + 1;
      }
    } else if (IsP(t, i, ">>")) {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (IsP(t, i, ";") || IsP(t, i, "{")) {
      return i;  // malformed; bail without consuming
    }
  }
  return e;
}

// Declared-type map for the lock classifier: scans a token range for
// "PageLocal[&*] name" / "CacheEntry[&*] name" declarations (parameters
// and locals — the codebase declares both explicitly, pinned by the clang
// thread-safety annotations which need the same explicitness).
std::map<std::string, std::string> CollectTypes(const std::vector<Token>& t,
                                                std::size_t b, std::size_t e) {
  std::map<std::string, std::string> types;
  for (std::size_t i = b; i + 1 < e; ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "PageLocal" && t[i].text != "CacheEntry")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < e && (IsP(t, j, "&") || IsP(t, j, "*") || IsId(t, j, "const"))) {
      ++j;
    }
    if (j < e && t[j].kind == TokKind::kIdent) {
      types[t[j].text] = t[i].text;
    }
  }
  return types;
}

// The lock classifier: maps a lock expression (guard argument, manual-lock
// receiver, or CSM_REQUIRES argument) to one of the documented classes.
LockClass ClassifyLockExpr(const std::vector<Token>& t, std::size_t b,
                           std::size_t e,
                           const std::map<std::string, std::string>& types,
                           const std::string& class_name) {
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& n = t[i].text;
    if (n == "commit_lock_" || n == "commit_lock") {
      return LockClass::kViewCommit;
    }
    if (n == "producer_lock_") {
      return LockClass::kLogProducer;
    }
    if (n == "order_lock_") {
      return LockClass::kMcOrder;
    }
    if (n == "OrderLockFor" || n == "order_locks_" || n == "OrderLock") {
      return LockClass::kDirStripe;
    }
    if (n == "alloc_lock_") {
      return LockClass::kDirAlloc;
    }
    if (n == "lock") {
      if (i >= b + 2 && (IsP(t, i - 1, ".") || IsP(t, i - 1, "->")) &&
          t[i - 2].kind == TokKind::kIdent) {
        const auto it = types.find(t[i - 2].text);
        if (it != types.end()) {
          return it->second == "PageLocal" ? LockClass::kPage
                                          : LockClass::kDirEntryCache;
        }
      } else if (e - b == 1 && class_name == "PageLocal") {
        // Bare `lock` in PageLocal's own inline annotations.
        return LockClass::kPage;
      }
    }
  }
  return LockClass::kUnknown;
}

// Thread-safety attribute macros that may trail a declarator. CSM_REQUIRES
// contributes entry-held classes; the rest are skipped (with their args).
bool IsTsaMacro(const std::string& s) {
  return s.rfind("CSM_", 0) == 0;
}

// --- Pass 1: function extraction ----------------------------------------

struct DeclAnnotations {
  // qualified name -> CSM_REQUIRES classes seen on declarations
  std::map<std::string, std::vector<LockClass>> requires_by_name;
};

class Extractor {
 public:
  Extractor(const FileUnit& f, int file_index, std::vector<Function>* fns,
            DeclAnnotations* decls)
      : f_(f), t_(f.lex.tokens), file_(file_index), fns_(fns), decls_(decls) {}

  void Run() { ParseScope(0, t_.size()); }

 private:
  std::string CurrentClass() const {
    return class_stack_.empty() ? "" : class_stack_.back();
  }
  std::string QualifiedScope() const {
    std::string q;
    for (const std::string& c : class_stack_) {
      q += c;
      q += "::";
    }
    return q;
  }

  void ParseScope(std::size_t b, std::size_t e) {
    std::size_t i = b;
    while (i < e) {
      if (t_[i].kind == TokKind::kPp) {
        ++i;
        continue;
      }
      if (IsId(t_, i, "template")) {
        ++i;
        if (IsP(t_, i, "<")) {
          i = SkipAngles(t_, i, e);
        }
        continue;
      }
      if (IsId(t_, i, "namespace")) {
        std::size_t j = i + 1;
        while (j < e && (t_[j].kind == TokKind::kIdent || IsP(t_, j, "::"))) {
          ++j;
        }
        if (IsP(t_, j, "{")) {
          const std::size_t end = SkipGroup(t_, j, e, "{", "}");
          ParseScope(j + 1, end - 1);  // namespaces are transparent
          i = end;
        } else {
          while (j < e && !IsP(t_, j, ";")) {
            ++j;  // namespace alias
          }
          i = j + 1;
        }
        continue;
      }
      if (IsId(t_, i, "class") || IsId(t_, i, "struct") ||
          IsId(t_, i, "union")) {
        i = ParseClassLike(i, e);
        continue;
      }
      if (IsId(t_, i, "enum")) {
        std::size_t j = i + 1;
        while (j < e && !IsP(t_, j, "{") && !IsP(t_, j, ";")) {
          ++j;
        }
        if (IsP(t_, j, "{")) {
          j = SkipGroup(t_, j, e, "{", "}");
        }
        while (j < e && !IsP(t_, j, ";")) {
          ++j;
        }
        i = j + 1;
        continue;
      }
      if (IsId(t_, i, "extern") && i + 2 < e &&
          t_[i + 1].kind == TokKind::kString && IsP(t_, i + 2, "{")) {
        const std::size_t end = SkipGroup(t_, i + 2, e, "{", "}");
        ParseScope(i + 3, end - 1);
        i = end;
        continue;
      }
      if (IsId(t_, i, "using") || IsId(t_, i, "typedef") ||
          IsId(t_, i, "friend") || IsId(t_, i, "static_assert")) {
        while (i < e && !IsP(t_, i, ";")) {
          ++i;
        }
        ++i;
        continue;
      }
      if (IsP(t_, i, ";") || IsP(t_, i, "}")) {
        ++i;
        continue;
      }
      i = ParseDecl(i, e);
    }
  }

  // class/struct/union: recurse into a definition body with the class name
  // pushed; skip elaborated-type uses and forward declarations.
  std::size_t ParseClassLike(std::size_t i, std::size_t e) {
    std::size_t j = i + 1;
    std::string name;
    while (j < e) {
      if (IsP(t_, j, "[") && IsP(t_, j + 1, "[")) {  // [[attributes]]
        j = SkipGroup(t_, j, e, "[", "]");
        continue;
      }
      if (t_[j].kind == TokKind::kIdent && IsP(t_, j + 1, "(")) {
        // Capability macro attribute, e.g. CSM_CAPABILITY("mutex").
        j = SkipGroup(t_, j + 1, e, "(", ")");
        continue;
      }
      if (t_[j].kind == TokKind::kIdent) {
        name = t_[j].text;
        ++j;
        if (IsP(t_, j, "<")) {  // explicit specialization
          j = SkipAngles(t_, j, e);
        }
        break;
      }
      break;  // anonymous struct — fall through to body scan
    }
    // Find the def body '{', a ';' (fwd decl / variable), or give up.
    while (j < e && !IsP(t_, j, "{") && !IsP(t_, j, ";") && !IsP(t_, j, "(")) {
      if (IsP(t_, j, "<")) {
        j = SkipAngles(t_, j, e);
        continue;
      }
      ++j;
    }
    if (IsP(t_, j, "{")) {
      const std::size_t end = SkipGroup(t_, j, e, "{", "}");
      class_stack_.push_back(name);
      ParseScope(j + 1, end - 1);
      class_stack_.pop_back();
      // Consume any declarator list up to the terminating ';'.
      std::size_t k = end;
      while (k < e && !IsP(t_, k, ";")) {
        ++k;
      }
      return k + 1;
    }
    if (IsP(t_, j, ";")) {
      return j + 1;
    }
    return i + 1;  // elaborated type in a declaration; reparse normally
  }

  // A declaration at class/namespace scope. Finds "name (params)" and then
  // decides declaration vs definition; records functions and declaration
  // CSM_REQUIRES annotations.
  std::size_t ParseDecl(std::size_t start, std::size_t e) {
    std::size_t j = start;
    while (j < e) {
      if (IsP(t_, j, ";")) {
        return j + 1;  // no function here
      }
      if (IsP(t_, j, "{")) {
        // Aggregate initializer or an unrecognized body (operators): skip.
        return SkipGroup(t_, j, e, "{", "}");
      }
      if (IsP(t_, j, "(")) {
        if (j > start && t_[j - 1].kind == TokKind::kIdent &&
            !IsKeyword(t_[j - 1].text)) {
          return AfterParams(start, j, e);
        }
        j = SkipGroup(t_, j, e, "(", ")");
        continue;
      }
      ++j;
    }
    return e;
  }

  // name_at = index of '('; t_[name_at-1] is the candidate function name.
  std::size_t AfterParams(std::size_t start, std::size_t name_at,
                          std::size_t e) {
    const std::string name = t_[name_at - 1].text;
    // Walk back over a qualifier chain: A::B::name.
    std::string qualifier;
    {
      std::size_t k = name_at - 1;
      while (k >= 2 && IsP(t_, k - 1, "::") &&
             t_[k - 2].kind == TokKind::kIdent) {
        qualifier = t_[k - 2].text + "::" + qualifier;
        k -= 2;
      }
    }
    const std::size_t params_end = SkipGroup(t_, name_at, e, "(", ")");
    std::vector<LockClass> req;
    std::map<std::string, std::string> types;
    bool types_ready = false;
    auto classify_args = [&](std::size_t open) -> std::size_t {
      const std::size_t close = SkipGroup(t_, open, e, "(", ")");
      if (!types_ready) {
        types = CollectTypes(t_, start, params_end);
        types_ready = true;
      }
      // Split args at top-level commas.
      std::size_t ab = open + 1;
      int depth = 0;
      for (std::size_t k = open + 1; k + 1 < close; ++k) {
        if (IsP(t_, k, "(")) {
          ++depth;
        } else if (IsP(t_, k, ")")) {
          --depth;
        } else if (depth == 0 && IsP(t_, k, ",")) {
          req.push_back(ClassifyLockExpr(t_, ab, k, types, CurrentClass()));
          ab = k + 1;
        }
      }
      if (ab < close - 1) {
        req.push_back(ClassifyLockExpr(t_, ab, close - 1, types, CurrentClass()));
      }
      return close;
    };

    std::size_t j = params_end;
    while (j < e) {
      if (IsP(t_, j, ";")) {
        RecordDecl(qualifier, name, req);
        return j + 1;
      }
      if (IsP(t_, j, "=")) {
        while (j < e && !IsP(t_, j, ";")) {
          if (IsP(t_, j, "{")) {
            j = SkipGroup(t_, j, e, "{", "}");
            continue;
          }
          ++j;
        }
        RecordDecl(qualifier, name, req);
        return j + 1;
      }
      if (IsId(t_, j, "CSM_REQUIRES") && IsP(t_, j + 1, "(")) {
        j = classify_args(j + 1);
        continue;
      }
      if (t_[j].kind == TokKind::kIdent && IsTsaMacro(t_[j].text)) {
        ++j;
        if (IsP(t_, j, "(")) {
          j = SkipGroup(t_, j, e, "(", ")");
        }
        continue;
      }
      if (IsP(t_, j, ":") && !IsP(t_, j, "::")) {
        // Constructor member-initializer list: parse it structurally —
        // (name, balanced () or {} group, ','?) repeated — so an
        // initializer brace is never mistaken for the body. After the
        // last initializer the next '{' is the function body.
        ++j;
        while (j < e) {
          while (j < e && (t_[j].kind == TokKind::kIdent ||
                           IsP(t_, j, "::") || IsP(t_, j, "."))) {
            ++j;
          }
          if (IsP(t_, j, "<")) {
            j = SkipAngles(t_, j, e);
            continue;
          }
          if (IsP(t_, j, "(")) {
            j = SkipGroup(t_, j, e, "(", ")");
          } else if (IsP(t_, j, "{")) {
            j = SkipGroup(t_, j, e, "{", "}");
          } else {
            break;  // malformed; fall back to the outer loop
          }
          if (IsP(t_, j, ",")) {
            ++j;
            continue;
          }
          break;  // no more initializers: j should sit on the body '{'
        }
        continue;
      }
      if (IsP(t_, j, "(")) {
        j = SkipGroup(t_, j, e, "(", ")");
        continue;
      }
      if (IsP(t_, j, "<")) {
        j = SkipAngles(t_, j, e);
        continue;
      }
      if (IsP(t_, j, "{")) {
        const std::size_t body_end = SkipGroup(t_, j, e, "{", "}");
        Function fn;
        fn.file = file_;
        fn.name = name;
        fn.qualified = !qualifier.empty() ? qualifier + name
                                          : QualifiedScope() + name;
        fn.class_name = !qualifier.empty()
                            ? qualifier.substr(0, qualifier.size() - 2)
                            : CurrentClass();
        fn.def_line = t_[j].line;
        fn.sig_begin = start;
        fn.body_begin = j + 1;
        fn.body_end = body_end - 1;
        for (LockClass c : req) {
          fn.entry_held.push_back(c);
        }
        fns_->push_back(std::move(fn));
        return body_end;
      }
      ++j;  // const, noexcept, override, &, &&, ->, trailing-return tokens
    }
    return e;
  }

  void RecordDecl(const std::string& qualifier, const std::string& name,
                  const std::vector<LockClass>& req) {
    if (req.empty()) {
      return;
    }
    const std::string q =
        !qualifier.empty() ? qualifier + name : QualifiedScope() + name;
    auto& dst = decls_->requires_by_name[q];
    dst.insert(dst.end(), req.begin(), req.end());
  }

  const FileUnit& f_;
  const std::vector<Token>& t_;
  int file_;
  std::vector<Function>* fns_;
  DeclAnnotations* decls_;
  std::vector<std::string> class_stack_;
};

// --- Pass 2: body analysis -----------------------------------------------

void AnalyzeBody(const FileUnit& f, Function& fn) {
  const std::vector<Token>& t = f.lex.tokens;
  const auto types = CollectTypes(t, fn.sig_begin, fn.body_end);
  struct Held {
    LockClass cls;
    int depth;    // brace depth at declaration; -1 = held on entry
    bool manual;  // manual Lock(): released only by Unlock()
  };
  std::vector<Held> held;
  for (LockClass c : fn.entry_held) {
    if (c != LockClass::kUnknown) {
      held.push_back(Held{c, -1, false});
    }
  }
  auto snapshot = [&held] {
    std::vector<LockClass> v;
    for (const Held& h : held) {
      v.push_back(h.cls);
    }
    return v;
  };
  int depth = 0;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
      } else if (tok.text == "}") {
        --depth;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [depth](const Held& h) {
                                    return !h.manual && h.depth > depth;
                                  }),
                   held.end());
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) {
      continue;
    }
    // RAII guard declaration: SpinLockGuard name(lock-expr);
    if ((tok.text == "SpinLockGuard" || tok.text == "SharedWordLockGuard") &&
        i + 2 < fn.body_end && t[i + 1].kind == TokKind::kIdent &&
        IsP(t, i + 2, "(")) {
      const std::size_t close = SkipGroup(t, i + 2, fn.body_end, "(", ")");
      const LockClass cls =
          tok.text == "SharedWordLockGuard"
              ? LockClass::kMcOrder
              : ClassifyLockExpr(t, i + 3, close - 1, types, fn.class_name);
      fn.acquires.push_back(AcquireSite{cls, tok.line, snapshot()});
      if (cls != LockClass::kUnknown) {
        held.push_back(Held{cls, depth, false});
      }
      i = close - 1;
      continue;
    }
    // Manual lock calls: X.lock.Lock() / lock_.TryLock() / ... Sequential
    // token order approximates control flow; a page-lock tracking miss can
    // never manufacture a violation (page may nest under page).
    if ((tok.text == "Lock" || tok.text == "TryLock" || tok.text == "Unlock") &&
        i >= fn.body_begin + 2 && IsP(t, i + 1, "(") &&
        (IsP(t, i - 1, ".") || IsP(t, i - 1, "->")) &&
        t[i - 2].kind == TokKind::kIdent) {
      std::size_t rb = i - 2;
      if (rb >= fn.body_begin + 2 &&
          (IsP(t, rb - 1, ".") || IsP(t, rb - 1, "->")) &&
          t[rb - 2].kind == TokKind::kIdent) {
        rb -= 2;
      }
      const LockClass cls = ClassifyLockExpr(t, rb, i, types, fn.class_name);
      if (tok.text == "Unlock") {
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          if (it->manual && it->cls == cls) {
            held.erase(std::next(it).base());
            break;
          }
        }
      } else if (cls != LockClass::kUnknown) {
        fn.acquires.push_back(AcquireSite{cls, tok.line, snapshot()});
        held.push_back(Held{cls, depth, true});
      }
      i = SkipGroup(t, i + 1, fn.body_end, "(", ")") - 1;
      continue;
    }
    // Call site: identifier immediately followed by '('.
    if (i + 1 < fn.body_end && IsP(t, i + 1, "(") && !IsKeyword(tok.text)) {
      CallSite c;
      c.name = tok.text;
      if (i >= fn.body_begin + 2 && IsP(t, i - 1, "::") &&
          t[i - 2].kind == TokKind::kIdent) {
        c.qualified = t[i - 2].text + "::" + tok.text;
      }
      c.line = tok.line;
      c.held = snapshot();
      fn.calls.push_back(std::move(c));
    }
  }
}

}  // namespace

const char* LockClassName(LockClass c) {
  switch (c) {
    case LockClass::kPage:
      return "page";
    case LockClass::kViewCommit:
      return "view-commit";
    case LockClass::kLogProducer:
      return "log-producer";
    case LockClass::kMcOrder:
      return "mc-order";
    case LockClass::kDirStripe:
      return "dir-stripe";
    case LockClass::kDirEntryCache:
      return "dir-entry-cache";
    case LockClass::kDirAlloc:
      return "dir-alloc";
    case LockClass::kUnknown:
      return "unknown";
  }
  return "unknown";
}

bool LoadFileUnit(const std::filesystem::path& path, const std::string& display,
                  FileUnit* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string text;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    out->raw_lines.push_back(line);
    text += line;
    text += '\n';
  }
  out->path = display;
  out->filename = path.filename().string();
  out->lex = Lex(text);
  out->lex.comment_text.resize(out->raw_lines.size());
  out->lex.comment_only.resize(out->raw_lines.size());

  const std::string generic = path.generic_string();
  const std::string& name = out->filename;
  out->copy_domain = generic.find("/protocol/") != std::string::npos ||
                     generic.find("/mc/") != std::string::npos ||
                     generic.find("/msg/") != std::string::npos ||
                     generic.find("/vm/") != std::string::npos;
  out->fault_path = name.rfind("fault_dispatcher", 0) == 0;
  out->word_access = name == "word_access.hpp";
  out->vm_dir = generic.find("/vm/") != std::string::npos;
  out->mc_dir = generic.find("/mc/") != std::string::npos;
  out->dir_home = name == "directory.cpp" || name == "directory.hpp";
  out->dir_sharded = name.rfind("directory_sharded", 0) == 0;

  // Directives and waivers live in comments only: a string literal can no
  // longer fake (or accidentally carry) either.
  static const std::string kDomain = std::string("csm-lint-") + "domain:";
  static const std::string kExpect = std::string("csm-lint-") + "expect:";
  for (std::size_t l = 0; l < out->lex.comment_text.size(); ++l) {
    const std::string& c = out->lex.comment_text[l];
    if (c.empty()) {
      continue;
    }
    std::size_t at = c.find(kDomain);
    if (at != std::string::npos) {
      const std::string domain = Trimmed(c.substr(at + kDomain.size()));
      out->copy_domain = domain == "protocol" || domain == "mc" ||
                         domain == "msg" || domain == "vm" ||
                         domain == "dir-sharded";
      out->fault_path = domain == "fault-path";
      out->vm_dir = domain == "vm";
      out->mc_dir = domain == "mc";
      out->dir_sharded = domain == "dir-sharded";
    }
    at = c.find(kExpect);
    if (at != std::string::npos) {
      std::string rest = Trimmed(c.substr(at + kExpect.size()));
      const std::size_t space = rest.find_first_of(" \t");
      if (space != std::string::npos) {
        rest = rest.substr(0, space);
      }
      if (rest == "none") {
        out->expects_none = true;
      } else if (!rest.empty()) {
        out->expects.push_back(rest);
      }
    }
    std::string rule;
    bool justified = false;
    if (ParseWaiverText(c, &rule, &justified)) {
      out->waivers.push_back(
          Waiver{static_cast<int>(l), rule, justified, false});
    }
  }
  return true;
}

bool Waived(FileUnit& f, int line, const std::string& rule) {
  auto match_at = [&f, &rule](int l) -> Waiver* {
    for (Waiver& w : f.waivers) {
      if (w.line == l && w.rule == rule && w.justified) {
        return &w;
      }
    }
    return nullptr;
  };
  if (Waiver* w = match_at(line)) {
    w->used = true;
    return true;
  }
  for (int j = line - 1; j >= 0; --j) {
    if (j >= static_cast<int>(f.lex.comment_only.size()) ||
        !f.lex.comment_only[j]) {
      break;  // the contiguous comment block (waiver window) ends
    }
    if (Waiver* w = match_at(j)) {
      w->used = true;
      return true;
    }
  }
  return false;
}

void Universe::BuildCallGraph() {
  DeclAnnotations decls;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    if (!files[fi].interproc) {
      continue;
    }
    Extractor(files[fi], static_cast<int>(fi), &fns, &decls).Run();
  }
  for (std::size_t i = 0; i < fns.size(); ++i) {
    by_name[fns[i].name].push_back(static_cast<int>(i));
    by_qualified[fns[i].qualified].push_back(static_cast<int>(i));
    const auto it = decls.requires_by_name.find(fns[i].qualified);
    if (it != decls.requires_by_name.end()) {
      for (LockClass c : it->second) {
        if (std::find(fns[i].entry_held.begin(), fns[i].entry_held.end(), c) ==
            fns[i].entry_held.end()) {
          fns[i].entry_held.push_back(c);
        }
      }
    }
  }
  for (Function& fn : fns) {
    AnalyzeBody(files[fn.file], fn);
  }
  // Transitive-acquire fixpoint: what lock classes can a call into fn end
  // up taking (excluding locks the caller is annotated as already holding).
  bool changed = true;
  while (changed) {
    changed = false;
    for (Function& fn : fns) {
      std::size_t before = fn.trans_acq.size();
      for (const AcquireSite& a : fn.acquires) {
        if (a.cls != LockClass::kUnknown) {
          fn.trans_acq.insert(a.cls);
        }
      }
      for (const CallSite& c : fn.calls) {
        for (int tgt : Resolve(c)) {
          fn.trans_acq.insert(fns[tgt].trans_acq.begin(),
                              fns[tgt].trans_acq.end());
        }
      }
      if (fn.trans_acq.size() != before) {
        changed = true;
      }
    }
  }
}

const std::vector<int>& Universe::Resolve(const CallSite& c) const {
  static const std::vector<int> kEmpty;
  if (!c.qualified.empty()) {
    const auto it = by_qualified.find(c.qualified);
    if (it != by_qualified.end()) {
      return it->second;
    }
  }
  const auto it = by_name.find(c.name);
  return it != by_name.end() ? it->second : kEmpty;
}

}  // namespace csmlint
