#include "lint/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "lint/model.hpp"
#include "lint/rules.hpp"

namespace csmlint {
namespace {

namespace fs = std::filesystem;

bool LintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool InFixtureDir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "lint_fixtures") {
      return true;
    }
  }
  return false;
}

std::vector<fs::path> CollectFiles(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && LintableExtension(entry.path()) &&
          !InFixtureDir(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void RunAllRules(Universe& u, std::vector<Finding>* findings) {
  u.BuildCallGraph();
  for (FileUnit& f : u.files) {
    RunFileLocalRules(f, findings);
  }
  RunInterprocRules(u, findings);
  RunStaleWaiverRule(u, findings);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool WriteSarif(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  std::vector<std::string> rules;
  for (const Finding& f : findings) {
    if (std::find(rules.begin(), rules.end(), f.rule) == rules.end()) {
      rules.push_back(f.rule);
    }
  }
  std::sort(rules.begin(), rules.end());
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"csm_lint\",\n"
      << "          \"informationUri\": \"docs/linting.md\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i ? ", " : "") << "{\"id\": \"" << JsonEscape(rules[i]) << "\"}";
  }
  out << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.text)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << JsonEscape(f.file)
        << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.good();
}

}  // namespace

int RunTree(const std::vector<std::string>& roots,
            const std::string& sarif_path) {
  Universe u;
  for (const fs::path& path : CollectFiles(roots)) {
    FileUnit f;
    if (!LoadFileUnit(path, path.string(), &f)) {
      std::fprintf(stderr, "csm_lint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    f.interproc =
        path.generic_string().find("src/cashmere") != std::string::npos;
    u.files.push_back(std::move(f));
  }
  std::vector<Finding> findings;
  RunAllRules(u, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) {
                       return a.file < b.file;
                     }
                     return a.line < b.line;
                   });
  for (const Finding& fd : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", fd.file.c_str(), fd.line,
                 fd.rule.c_str(), fd.text.c_str());
  }
  std::fprintf(stderr, "csm_lint: %zu file(s), %zu finding(s)\n",
               u.files.size(), findings.size());
  if (!sarif_path.empty() && !WriteSarif(sarif_path, findings)) {
    std::fprintf(stderr, "csm_lint: cannot write %s\n", sarif_path.c_str());
    return 2;
  }
  return findings.empty() ? 0 : 1;
}

namespace {

// Checks one fixture universe (a single file or a cross-file group):
// every file's found-rule multiset must equal its declared expectations.
int CheckUniverse(Universe& u, int* checked) {
  std::vector<Finding> findings;
  RunAllRules(u, &findings);
  std::map<std::string, std::map<std::string, int>> found;
  for (const Finding& fd : findings) {
    ++found[fd.file][fd.rule];
  }
  int failures = 0;
  for (const FileUnit& f : u.files) {
    ++*checked;
    if (f.expects.empty() && !f.expects_none) {
      std::fprintf(stderr, "csm_lint: fixture %s declares no csm-lint-expect\n",
                   f.path.c_str());
      ++failures;
      continue;
    }
    std::map<std::string, int> expected;
    for (const std::string& rule : f.expects) {
      ++expected[rule];
    }
    const auto it = found.find(f.path);
    const std::map<std::string, int> got =
        it != found.end() ? it->second : std::map<std::string, int>{};
    if (expected == got) {
      int n = 0;
      for (const auto& [rule, count] : got) {
        n += count;
      }
      std::fprintf(stderr, "csm_lint: fixture %s OK (%d finding(s))\n",
                   f.path.c_str(), n);
      continue;
    }
    ++failures;
    std::fprintf(stderr, "csm_lint: fixture %s MISMATCH\n", f.path.c_str());
    for (const auto& [rule, n] : expected) {
      std::fprintf(stderr, "  expected %dx %s\n", n, rule.c_str());
    }
    for (const Finding& fd : findings) {
      if (fd.file == f.path) {
        std::fprintf(stderr, "  found %s:%d [%s] %s\n", fd.file.c_str(),
                     fd.line, fd.rule.c_str(), fd.text.c_str());
      }
    }
  }
  return failures;
}

}  // namespace

int RunFixtures(const std::string& dir) {
  std::vector<fs::path> single;
  std::vector<fs::path> groups;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && LintableExtension(entry.path())) {
      single.push_back(entry.path());
    } else if (entry.is_directory()) {
      groups.push_back(entry.path());
    }
  }
  std::sort(single.begin(), single.end());
  std::sort(groups.begin(), groups.end());
  int failures = 0;
  int checked = 0;
  auto load = [](const fs::path& p, Universe* u) {
    FileUnit f;
    if (!LoadFileUnit(p, p.string(), &f)) {
      std::fprintf(stderr, "csm_lint: cannot read %s\n", p.string().c_str());
      return false;
    }
    f.interproc = true;  // every fixture joins its universe's call graph
    u->files.push_back(std::move(f));
    return true;
  };
  for (const fs::path& p : single) {
    Universe u;
    if (!load(p, &u)) {
      return 2;
    }
    failures += CheckUniverse(u, &checked);
  }
  for (const fs::path& g : groups) {
    Universe u;
    std::vector<fs::path> members;
    for (const auto& entry : fs::recursive_directory_iterator(g)) {
      if (entry.is_regular_file() && LintableExtension(entry.path())) {
        members.push_back(entry.path());
      }
    }
    std::sort(members.begin(), members.end());
    for (const fs::path& p : members) {
      if (!load(p, &u)) {
        return 2;
      }
    }
    failures += CheckUniverse(u, &checked);
  }
  if (checked == 0) {
    std::fprintf(stderr, "csm_lint: no fixtures found in %s\n", dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "csm_lint: %d fixture(s), %d mismatch(es)\n", checked,
               failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace csmlint
