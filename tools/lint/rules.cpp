#include "lint/rules.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace csmlint {
namespace {

std::string Trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool IsId(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == s;
}
bool IsP(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}
bool IsMemberAccess(const std::vector<Token>& t, std::size_t i) {
  return i > 0 && (IsP(t, i - 1, ".") || IsP(t, i - 1, "->"));
}
// `std::name` — the identifier at i is qualified by exactly std::.
bool StdQualified(const std::vector<Token>& t, std::size_t i) {
  return i >= 2 && IsP(t, i - 1, "::") && IsId(t, i - 2, "std");
}

// Reconstructs the type spelled between reinterpret_cast< and its matching
// '>' into a canonical string ("std::uint64_t*", "unsigned char *"-style):
// identifiers separated by spaces, '::' tight, everything else verbatim.
// Returns true (with the type) if a full angle group was found.
bool CastTargetType(const std::vector<Token>& t, std::size_t open,
                    std::size_t* after, std::string* type) {
  int depth = 0;
  std::string s;
  std::size_t i = open;
  for (; i < t.size(); ++i) {
    if (IsP(t, i, "<")) {
      ++depth;
      if (depth == 1) {
        continue;
      }
    } else if (IsP(t, i, ">")) {
      if (--depth == 0) {
        *after = i + 1;
        *type = std::move(s);
        return true;
      }
    } else if (IsP(t, i, ">>")) {
      depth -= 2;
      if (depth <= 0) {
        *after = i + 1;
        *type = std::move(s);
        return true;
      }
    } else if (IsP(t, i, ";") || IsP(t, i, "{")) {
      break;  // malformed cast; give up
    }
    if (depth >= 1) {
      const bool tight = IsP(t, i, "::") ||
                         (!s.empty() && s.back() == ':') || s.empty() ||
                         t[i].kind == TokKind::kPunct;
      if (!tight) {
        s.push_back(' ');
      }
      s += t[i].text;
    }
  }
  return false;
}

// word-cast-store: reinterpret_cast<T*> where T is a mutable arithmetic
// type that is not 32 bits wide — the cast that precedes a raw multi-byte
// or sub-word store into page memory. const pointers (reads) pass.
bool BadWordCast(const std::string& type) {
  static const char* kBadBases[] = {
      "std::uint8_t",  "std::int8_t",  "std::uint16_t", "std::int16_t",
      "std::uint64_t", "std::int64_t", "unsigned char", "unsigned short",
      "unsigned long", "char",         "short",         "long",
      "float",         "double",
  };
  if (type.find('*') == std::string::npos) {
    return false;
  }
  if (type.rfind("const ", 0) == 0) {
    return false;
  }
  for (const char* base : kBadBases) {
    if (type.rfind(base, 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

void RunFileLocalRules(FileUnit& f, std::vector<Finding>* out) {
  // Unjustified waivers are findings themselves (and never suppress), so a
  // rubber stamp cannot silence the pass.
  for (const Waiver& w : f.waivers) {
    if (!w.justified) {
      out->push_back(Finding{f.path, w.line + 1, "bad-waiver",
                             "csm-lint: allow() without a '-- justification'"});
    }
  }
  if (f.word_access) {
    return;  // the sanctioned word-atomics implementation site
  }
  std::set<std::pair<int, std::string>> seen;
  auto report = [&](int line0, const char* rule) {
    if (!seen.insert({line0, rule}).second) {
      return;
    }
    if (Waived(f, line0, rule)) {
      return;
    }
    const std::string text = line0 < static_cast<int>(f.raw_lines.size())
                                 ? Trimmed(f.raw_lines[line0])
                                 : "";
    out->push_back(Finding{f.path, line0 + 1, rule, text});
  };

  const std::vector<Token>& t = f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& n = t[i].text;
    const int line = t[i].line;

    // atomic-bypass: std::atomic_ref anywhere outside word_access.hpp.
    if (n == "atomic_ref") {
      report(line, "atomic-bypass");
    }
    // raw-view-protect: `.Protect(` / `->Protect(` member calls outside
    // the vm/ layer (per-page path bypassing the PermBatch engine).
    if (!f.vm_dir && n == "Protect" && IsMemberAccess(t, i) &&
        IsP(t, i + 1, "(")) {
      report(line, "raw-view-protect");
    }
    // raw-mc-write: minting a raw segment pointer outside mc/.
    if (f.copy_domain && !f.mc_dir && (n == "PagePtr" || n == "protocol_base") &&
        IsMemberAccess(t, i) && IsP(t, i + 1, "(")) {
      report(line, "raw-mc-write");
    }
    // raw-dir-write: directory mutations outside directory.{cpp,hpp}.
    if (f.copy_domain && !f.dir_home &&
        (n == "Write" || n == "WriteAndSnapshot") && IsMemberAccess(t, i) &&
        IsP(t, i + 1, "(")) {
      report(line, "raw-dir-write");
    }
    // Sharded backend: entry-word stores outside the Write funnel.
    if (f.dir_sharded && n == "StoreWord32") {
      report(line, "raw-dir-write");
    }
    if (f.copy_domain) {
      // raw-page-copy: bulk byte copies in the shared-memory domains.
      if (n == "memcpy" || n == "memmove" || n == "memset") {
        report(line, "raw-page-copy");
      }
      if ((n == "copy" || n == "copy_n" || n == "fill" || n == "fill_n") &&
          StdQualified(t, i)) {
        report(line, "raw-page-copy");
      }
      if (n == "reinterpret_cast" && IsP(t, i + 1, "<")) {
        std::size_t after = 0;
        std::string type;
        if (CastTargetType(t, i + 1, &after, &type) && BadWordCast(type)) {
          report(line, "word-cast-store");
        }
      }
    }
    // fault-path-blocking: the file-local form, confined to
    // fault_dispatcher.* (the interprocedural fault-path-signal-safety
    // rule covers everything those files reach).
    if (f.fault_path) {
      const bool blocking =
          n == "sleep_for" || n == "sleep_until" || n == "usleep" ||
          n == "nanosleep" || n == "malloc" || n == "calloc" ||
          n == "realloc" || n == "new" ||
          ((n == "mutex" || n == "condition_variable") && StdQualified(t, i));
      if (blocking) {
        report(line, "fault-path-blocking");
      }
    }
  }
}

namespace {

std::string HeldNames(const std::vector<LockClass>& held) {
  std::string s;
  for (LockClass c : held) {
    if (!s.empty()) {
      s += ", ";
    }
    s += LockClassName(c);
  }
  return s;
}

bool HoldsNonPage(const std::vector<LockClass>& held) {
  return std::any_of(held.begin(), held.end(),
                     [](LockClass c) { return c != LockClass::kPage; });
}

// lock-order: the discipline is page-lock-first with leaf inner classes
// (docs/concurrency.md "Lock ordering"), so the check is uniform — any
// acquisition while a non-page class is held violates the table. Acquiring
// a page lock under a leaf is an inversion; anything else nests a leaf.
void LockOrderRule(Universe& u, std::vector<Finding>* out) {
  std::set<std::string> seen;
  auto report = [&](FileUnit& f, int line0, LockClass acq,
                    const std::vector<LockClass>& held,
                    const std::string& via) {
    const char* kind = acq == LockClass::kPage ? "page-lock-first inversion"
                                               : "never-nest leaf";
    const std::string key = f.path + ":" + std::to_string(line0) + ":" +
                            LockClassName(acq) + ":" + via;
    if (!seen.insert(key).second) {
      return;
    }
    if (Waived(f, line0, "lock-order")) {
      return;
    }
    std::string text = via.empty() ? std::string("acquires ")
                                   : "call to " + via + " may acquire ";
    text += LockClassName(acq);
    text += " while holding {" + HeldNames(held) + "} (" + kind + ")";
    out->push_back(Finding{f.path, line0 + 1, "lock-order", std::move(text)});
  };
  for (Function& fn : u.fns) {
    FileUnit& f = u.files[fn.file];
    for (const AcquireSite& a : fn.acquires) {
      if (a.cls != LockClass::kUnknown && HoldsNonPage(a.held)) {
        report(f, a.line, a.cls, a.held, "");
      }
    }
    for (const CallSite& c : fn.calls) {
      if (!HoldsNonPage(c.held)) {
        continue;
      }
      std::set<LockClass> acq;
      for (int tgt : u.Resolve(c)) {
        acq.insert(u.fns[tgt].trans_acq.begin(), u.fns[tgt].trans_acq.end());
      }
      for (LockClass cls : acq) {
        if (cls != LockClass::kUnknown) {
          report(f, c.line, cls, c.held, c.name);
        }
      }
    }
  }
}

// Helpers sanctioned on the fault path: reachability stops here.
bool SignalSafeHelper(const Universe& u, const Function& fn) {
  if (u.files[fn.file].word_access) {
    return true;
  }
  static const std::set<std::string> kClasses = {
      "SpinLock",       "SpinLockGuard", "SharedWordLock",
      "SharedWordLockGuard", "Backoff",  "TraceRing",
      "OwnerCell",
  };
  if (kClasses.count(fn.class_name) != 0) {
    return true;
  }
  static const std::set<std::string> kNames = {"TraceEmit", "TraceActive",
                                               "Pause"};
  return kNames.count(fn.name) != 0;
}

bool SignalUnsafeToken(const std::vector<Token>& t, std::size_t i) {
  const std::string& n = t[i].text;
  static const std::set<std::string> kAlloc = {
      "new",         "malloc",      "calloc",    "realloc",      "free",
      "make_unique", "make_shared", "push_back", "emplace_back", "to_string",
  };
  static const std::set<std::string> kSleep = {
      "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep",
  };
  static const std::set<std::string> kLibc = {
      "printf", "fprintf", "sprintf",  "snprintf", "vprintf",
      "vfprintf", "vsnprintf", "puts", "fputs",    "putc",
      "putchar", "fwrite",  "fread",   "fopen",    "fclose",
      "fflush",  "exit",    "getenv",  "strerror", "perror",
  };
  static const std::set<std::string> kStdSync = {
      "mutex",        "recursive_mutex",    "timed_mutex",
      "shared_mutex", "condition_variable", "condition_variable_any",
  };
  if (kAlloc.count(n) != 0 || kSleep.count(n) != 0 || kLibc.count(n) != 0) {
    return true;
  }
  return kStdSync.count(n) != 0 && StdQualified(t, i);
}

// fault-path-signal-safety: BFS over the call graph from the fault
// dispatcher entry points; every transitively reachable function's body is
// scanned for operations that must never run under SIGSEGV (allocation,
// std sync primitives, sleeps, non-async-signal-safe libc).
void SignalSafetyRule(Universe& u, std::vector<Finding>* out) {
  std::map<int, int> parent;  // reached fn -> predecessor (-1 at an entry)
  std::vector<int> order;
  for (std::size_t i = 0; i < u.fns.size(); ++i) {
    const Function& fn = u.fns[i];
    const bool entry = (u.files[fn.file].fault_path && fn.name == "OnSignal") ||
                       fn.name == "HandleFault";
    if (entry && parent.emplace(static_cast<int>(i), -1).second) {
      order.push_back(static_cast<int>(i));
    }
  }
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const int fi = order[qi];
    for (const CallSite& c : u.fns[fi].calls) {
      for (int tgt : u.Resolve(c)) {
        if (parent.count(tgt) != 0 || SignalSafeHelper(u, u.fns[tgt])) {
          continue;
        }
        parent[tgt] = fi;
        order.push_back(tgt);
      }
    }
  }
  auto chain = [&u, &parent](int fi) {
    std::vector<std::string> names;
    bool truncated = false;
    for (int k = fi; k != -1; k = parent[k]) {
      if (names.size() >= 5) {
        truncated = true;
        break;
      }
      names.push_back(u.fns[k].qualified);
    }
    std::string s = truncated ? "... -> " : "";
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
      if (it != names.rbegin()) {
        s += " -> ";
      }
      s += *it;
    }
    return s;
  };
  for (int fi : order) {
    Function& fn = u.fns[fi];
    FileUnit& f = u.files[fn.file];
    const std::vector<Token>& t = f.lex.tokens;
    std::set<int> lines;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (t[i].kind != TokKind::kIdent || !SignalUnsafeToken(t, i)) {
        continue;
      }
      if (!lines.insert(t[i].line).second) {
        continue;
      }
      if (Waived(f, t[i].line, "fault-path-signal-safety")) {
        continue;
      }
      out->push_back(
          Finding{f.path, t[i].line + 1, "fault-path-signal-safety",
                  "signal-unsafe `" + t[i].text +
                      "` reachable from the fault handler (" + chain(fi) + ")"});
    }
  }
}

}  // namespace

void RunInterprocRules(Universe& u, std::vector<Finding>* out) {
  LockOrderRule(u, out);
  SignalSafetyRule(u, out);
}

void RunStaleWaiverRule(Universe& u, std::vector<Finding>* out) {
  for (FileUnit& f : u.files) {
    for (const Waiver& w : f.waivers) {
      if (w.justified && !w.used) {
        out->push_back(Finding{
            f.path, w.line + 1, "stale-waiver",
            "allow(" + w.rule +
                ") suppresses nothing here; remove it or re-justify"});
      }
    }
  }
}

}  // namespace csmlint
