// csm_lint drivers: whole-tree scan (text + optional SARIF) and the
// multiset-pinned fixture self-check (single files and cross-file groups).
#ifndef CSM_LINT_DRIVER_HPP_
#define CSM_LINT_DRIVER_HPP_

#include <string>
#include <vector>

namespace csmlint {

// Lints every .cpp/.hpp/.cc/.h under the roots (lint_fixtures/ excluded),
// building one call-graph universe; src/cashmere files participate in the
// interprocedural rules. Prints text findings to stderr; writes a SARIF
// 2.1.0 report to `sarif_path` when non-empty. Exit code: 0 clean, 1
// findings, 2 I/O error.
int RunTree(const std::vector<std::string>& roots,
            const std::string& sarif_path);

// Fixture self-check: top-level files in `dir` are single-file universes;
// subdirectories are cross-file groups sharing one call graph (the
// interprocedural fixtures). Every fixture file must declare either
// csm-lint-expect lines or `csm-lint-expect: none`; the found rule multiset
// must match exactly, pinning both fire and no-overfire directions.
int RunFixtures(const std::string& dir);

}  // namespace csmlint

#endif  // CSM_LINT_DRIVER_HPP_
