// csm_lint analysis model: files, waivers, functions, and the whole-tree
// call graph the interprocedural rules run on.
//
// The extractor is deliberately approximate — it links calls by (qualified)
// name, treats virtual dispatch as "every function with that name", and
// tracks lock scopes by brace depth. That over-approximates reachability
// (safe for fault-path-signal-safety) and tracks the documented lock
// classes conservatively enough for lock-order: page locks may nest under
// page locks, every other class is a leaf, so a mis-tracked *page* hold
// can never manufacture a violation. Known blind spots (callbacks invoked
// under a callee's lock, macro expansion, manual Lock/Unlock across
// control flow that token order does not reflect) are documented in
// docs/linting.md.
#ifndef CSM_LINT_MODEL_HPP_
#define CSM_LINT_MODEL_HPP_

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace csmlint {

// The seven documented lock classes (docs/concurrency.md "Lock ordering")
// plus kUnknown for everything the table does not govern. THIS ENUM IS THE
// MACHINE-READABLE LOCK TABLE: the ordering discipline itself is uniform —
// kPage may be held while acquiring anything (including another kPage, the
// superpage-relocation double-lock); every other class is a leaf, so any
// acquisition while a non-page class is held is a violation. Adding a lock
// class = adding an enumerator + a classifier arm (see docs/linting.md
// "Amending the lock table").
enum class LockClass {
  kPage,          // per-page PageLocal::lock
  kViewCommit,    // per-view commit_lock_ (vm/view.hpp)
  kLogProducer,   // per-unit CoherenceLog producer_lock_
  kMcOrder,       // MC ordered-op lock (order_lock_ / SharedWordLock)
  kDirStripe,     // sharded directory 64-way order-lock stripe / OrderLock()
  kDirEntryCache, // sharded directory per-slot CacheEntry::lock
  kDirAlloc,      // sharded directory segment alloc_lock_
  kUnknown,       // not one of the documented classes; never checked
};

const char* LockClassName(LockClass c);

struct Waiver {
  int line = 0;  // 0-based
  std::string rule;
  bool justified = false;
  bool used = false;  // set when the waiver suppresses a finding
};

struct FileUnit {
  std::string path;      // display path (as given on the command line)
  std::string filename;  // basename
  std::vector<std::string> raw_lines;
  LexedFile lex;
  // Domain classification (path-derived, overridable by csm-lint-domain:).
  bool copy_domain = false;  // protocol/, mc/, msg/, vm/
  bool fault_path = false;   // fault_dispatcher.*
  bool word_access = false;  // the sanctioned atomics site
  bool vm_dir = false;
  bool mc_dir = false;
  bool dir_home = false;  // directory.{cpp,hpp}
  bool dir_sharded = false;
  bool interproc = false;  // participates in the call graph
  std::vector<std::string> expects;  // fixture rule expectations
  bool expects_none = false;         // `csm-lint-expect: none`
  std::vector<Waiver> waivers;
};

// Reads and lexes one file; classifies its domain from the path and any
// csm-lint-domain: directive; parses waivers and fixture expectations from
// comment text (string literals can no longer fake either). Returns false
// if the file cannot be read.
bool LoadFileUnit(const std::filesystem::path& path, const std::string& display,
                  FileUnit* out);

// True if a justified waiver for `rule` covers 0-based line `line`: on the
// line itself, or above it across a contiguous run of comment-only lines.
// Marks the covering waiver used (stale-waiver keys off this).
bool Waived(FileUnit& f, int line, const std::string& rule);

struct AcquireSite {
  LockClass cls = LockClass::kUnknown;
  int line = 0;                  // 0-based
  std::vector<LockClass> held;   // known classes held at the acquisition
};

struct CallSite {
  std::string name;       // unqualified callee name
  std::string qualified;  // "Class::name" when written qualified, else ""
  int line = 0;           // 0-based
  std::vector<LockClass> held;  // known classes held at the call
};

struct Function {
  int file = -1;  // index into Universe::files
  std::string name;        // unqualified
  std::string qualified;   // Class::name (namespaces ignored) or name
  std::string class_name;  // enclosing class, "" at namespace scope
  int def_line = 0;                      // 0-based line of the body '{'
  std::size_t sig_begin = 0;             // token index: start of declarator
  std::size_t body_begin = 0, body_end = 0;  // token range inside { }
  std::vector<LockClass> entry_held;     // CSM_REQUIRES classes (decl-merged)
  std::vector<AcquireSite> acquires;     // direct guard / manual Lock sites
  std::vector<CallSite> calls;
  std::set<LockClass> trans_acq;         // fixpoint: direct + callees'
};

// One call-graph universe: a lint run over a tree, or one fixture group.
struct Universe {
  std::vector<FileUnit> files;
  std::vector<Function> fns;
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::vector<int>> by_qualified;

  // Extracts functions from every interproc file, merges CSM_REQUIRES
  // annotations from declarations into definitions by qualified name,
  // analyzes bodies (acquire/call sites with held-set tracking), and runs
  // the transitive-acquire fixpoint.
  void BuildCallGraph();

  // Call targets: exact qualified match if the call was written qualified
  // and resolves; otherwise every function sharing the unqualified name.
  const std::vector<int>& Resolve(const CallSite& c) const;
};

}  // namespace csmlint

#endif  // CSM_LINT_MODEL_HPP_
