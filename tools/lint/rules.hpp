// csm_lint rules. Full catalogue, waiver syntax, and the lock-order table
// live in docs/linting.md.
#ifndef CSM_LINT_RULES_HPP_
#define CSM_LINT_RULES_HPP_

#include <string>
#include <vector>

#include "lint/model.hpp"

namespace csmlint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based (display)
  std::string rule;
  std::string text;
};

// The file-local rules (raw-page-copy, word-cast-store, atomic-bypass,
// fault-path-blocking, raw-view-protect, raw-dir-write, raw-mc-write,
// bad-waiver), re-hosted on the token stream: occurrences inside comments,
// string literals, and preprocessor lines cannot fire. At most one finding
// per (line, rule). Marks used waivers on `f`.
void RunFileLocalRules(FileUnit& f, std::vector<Finding>* out);

// The interprocedural rules over a built call graph:
//   lock-order                 acquisitions (direct or via a resolved call
//                              chain) while a never-nest leaf is held, or
//                              page-lock-first inversions.
//   fault-path-signal-safety   signal-unsafe operations in any function
//                              reachable from the fault-dispatcher entry
//                              points (OnSignal / HandleFault).
// Requires u.BuildCallGraph() to have run.
void RunInterprocRules(Universe& u, std::vector<Finding>* out);

// stale-waiver: justified waivers that suppressed nothing this run. Must
// run after every other rule (it keys off Waiver::used).
void RunStaleWaiverRule(Universe& u, std::vector<Finding>* out);

}  // namespace csmlint

#endif  // CSM_LINT_RULES_HPP_
