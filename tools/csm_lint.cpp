// csm_lint — static enforcement of the MC word-atomicity, fault-path, and
// lock-ordering discipline (DESIGN.md §10, docs/concurrency.md).
//
// The analysis lives in tools/lint/ (token stream, function extractor,
// call graph, rules); the rule catalogue, waiver syntax, and the lock-order
// table are documented in docs/linting.md.
//
// Usage:
//   csm_lint <dir-or-file>...              lint the tree; exit 1 on findings
//   csm_lint --sarif <out.sarif> <dir>...  also write a SARIF 2.1.0 report
//   csm_lint --fixtures <dir>              self-check against known fixtures
#include <cstdio>
#include <string>
#include <vector>

#include "lint/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string fixtures;
  std::string sarif;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fixtures") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "csm_lint: --fixtures needs a directory\n");
        return 2;
      }
      fixtures = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "csm_lint: --sarif needs an output path\n");
        return 2;
      }
      sarif = argv[++i];
    } else {
      roots.push_back(arg);
    }
  }
  if (!fixtures.empty()) {
    return csmlint::RunFixtures(fixtures);
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: csm_lint [--sarif <out>] <dir-or-file>... | "
                 "--fixtures <dir>\n");
    return 2;
  }
  return csmlint::RunTree(roots, sarif);
}
