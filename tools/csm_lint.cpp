// csm_lint — syntactic enforcement of the MC word-atomicity and fault-path
// discipline (DESIGN.md §10, docs/concurrency.md).
//
// The Memory Channel guarantees 32-bit write atomicity and nothing more
// (paper, Section 2.1): every store that can land in shared page memory
// must go through the word_access.hpp helpers, and the SIGSEGV fault path
// must never block or allocate. The clang thread-safety analysis cannot see
// either property, so this pass enforces them syntactically:
//
//   raw-page-copy        memcpy/memmove/memset/std::copy*/std::fill* in the
//                        shared-memory domains (protocol/, mc/, msg/, vm/).
//                        Bulk byte copies into page frames bypass word
//                        atomicity; word_access.hpp is the one sanctioned
//                        implementation site.
//   word-cast-store      reinterpret_cast to a mutable pointer of a non-
//                         32-bit arithmetic type in the same domains: the
//                        cast that precedes a non-word-atomic store. Casts
//                        to const pointers (reads) are not flagged.
//   atomic-bypass        std::atomic_ref anywhere outside word_access.hpp.
//                        Per-site atomic_ref with ad-hoc orderings is how
//                        word-atomicity bugs sneak past review; all of them
//                        live behind the Load/StoreWord32 helpers.
//   fault-path-blocking  std::mutex / condition_variable / sleep /
//                        heap allocation in SIGSEGV fault-path files
//                        (fault_dispatcher.*). SpinLock is the only
//                        sanctioned wait primitive there.
//   raw-view-protect     `.Protect(` / `->Protect(` member calls outside
//                        src/cashmere/vm/. Permission changes must go
//                        through the PermBatch engine (or a ranged
//                        ProtectRange for bulk setup) so the shadow-table
//                        elision and range coalescing always apply; a
//                        stray per-page View::Protect silently reopens the
//                        one-syscall-per-page path.
//   raw-dir-write        `.Write(` / `->Write(` / `WriteAndSnapshot(`
//                        directory mutations in the shared-memory domains
//                        outside directory.{cpp,hpp} itself. The async
//                        release path (DESIGN.md §12) depends on the
//                        logged flush never mutating directory words:
//                        every transition funnels through UpdateDirWord
//                        (fault/acquire path) or the ordered exclusive
//                        claim, so the agent's deferred replay cannot race
//                        a release-side store. Those are the sanctioned
//                        (waived) sites; anything else is a release-path
//                        directory write sneaking around the log.
//                        In the sharded backend files (directory_sharded.*)
//                        the rule also fires on raw `StoreWord32(` word
//                        mutations: entry words may only be stored inside
//                        the DirectoryBackend Write/WriteAndSnapshot
//                        funnel (the two waived stores); a stray store
//                        bypasses the entry's MC write order and the
//                        claimant-snapshot arbitration.
//   raw-mc-write         `.PagePtr(` / `->PagePtr(` / `.protocol_base(` /
//                        `->protocol_base(` in the shared-memory domains
//                        outside src/cashmere/mc/. These calls mint a raw
//                        pointer into a registered shared segment — the
//                        step that precedes a direct store bypassing the
//                        McHub::Issue funnel (and, under the shm backend,
//                        silently assuming this process's mapping).
//                        Protocol code names frames position-independently
//                        (Arena::FrameOf -> PageFrameRef) and resolves
//                        through McTransport::Resolve; only the mc/ layer
//                        and the registration site in runtime/ touch raw
//                        segment bases.
//
// Waivers: a finding is suppressed by a same-line or immediately-preceding
//   // csm-lint: allow(<rule>) -- <justification>
// comment. The justification is mandatory; an allow() without one is itself
// reported (bad-waiver).
//
// Fixture mode (--fixtures <dir>): every file must declare its domain with
// `// csm-lint-domain: protocol|mc|msg|vm|fault-path` and the rules it must
// trip with one `// csm-lint-expect: <rule>` line per expected finding.
// The run fails if any fixture's found rule multiset differs from its
// expectations — pinning both directions: the rules still fire, and they
// do not overfire.
//
// Usage:
//   csm_lint <dir-or-file>...      lint the tree; exit 1 on any finding
//   csm_lint --fixtures <dir>      self-check against known-bad fixtures
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string text;
};

struct FileInfo {
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> stripped;  // comments + literals blanked
  bool copy_domain = false;           // protocol/, mc/, msg/, vm/
  bool fault_path = false;            // fault_dispatcher.*
  bool word_access = false;           // the sanctioned atomics site
  bool vm_dir = false;                // vm/ — View::Protect's home layer
  bool mc_dir = false;                // mc/ — the transport layer itself
  bool dir_home = false;              // directory.{cpp,hpp} — Directory's own file
  bool dir_sharded = false;           // directory_sharded.* — sharded backend
  std::vector<std::string> expects;   // fixture expectations
};

// Blanks string literals, character literals, and comments, preserving the
// line structure so findings keep their line numbers. Directive comments
// are parsed from the raw lines before this runs.
std::vector<std::string> StripLines(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string s;
    s.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) {
        break;  // rest of line is a comment
      }
      if (line.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
        continue;
      }
      const char c = line[i];
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
          } else if (line[i] == quote) {
            ++i;
            break;
          } else {
            ++i;
          }
        }
        s.push_back(quote);
        s.push_back(quote);
        continue;
      }
      s.push_back(c);
      ++i;
    }
    out.push_back(std::move(s));
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Whole-token search: `needle` must not be flanked by identifier chars.
// Needles containing '.' or ':' match as given (callers pass qualified
// names where needed).
bool ContainsToken(const std::string& hay, const std::string& needle) {
  std::size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(hay[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= hay.size() || !IsIdentChar(hay[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = end;
  }
  return false;
}

std::string Trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parses `// csm-lint: allow(rule) -- justification`. Returns true if the
// line carries a waiver; `rule` and `justified` describe it.
bool ParseWaiver(const std::string& raw_line, std::string* rule, bool* justified) {
  const std::size_t at = raw_line.find("csm-lint: allow(");
  if (at == std::string::npos) {
    return false;
  }
  const std::size_t open = at + std::string("csm-lint: allow(").size() - 1;
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) {
    return false;
  }
  *rule = raw_line.substr(open + 1, close - open - 1);
  const std::size_t dashes = raw_line.find("--", close);
  *justified = dashes != std::string::npos && !Trimmed(raw_line.substr(dashes + 2)).empty();
  return true;
}

// A waiver covers its own line (trailing comment) or a flagged line it
// immediately precedes, possibly with further comment lines in between (so
// a justification may wrap). Only justified waivers suppress.
bool Waived(const FileInfo& f, std::size_t line_index, const std::string& rule) {
  std::string waiver_rule;
  bool justified = false;
  if (ParseWaiver(f.raw[line_index], &waiver_rule, &justified) && waiver_rule == rule &&
      justified) {
    return true;
  }
  for (std::size_t j = line_index; j-- > 0;) {
    const std::string t = Trimmed(f.raw[j]);
    if (t.rfind("//", 0) != 0) {
      break;  // not a comment line: the waiver window ends
    }
    if (ParseWaiver(f.raw[j], &waiver_rule, &justified) && waiver_rule == rule &&
        justified) {
      return true;
    }
  }
  return false;
}

// word-cast-store: reinterpret_cast<T*> where T is a mutable arithmetic
// type that is not 32 bits wide. These are the casts that precede raw
// multi-byte or sub-word stores into page memory.
bool FlagsWordCast(const std::string& stripped) {
  static const char* kBadBases[] = {
      "std::uint8_t",  "std::int8_t",  "std::uint16_t", "std::int16_t",
      "std::uint64_t", "std::int64_t", "unsigned char", "unsigned short",
      "unsigned long", "char",         "short",         "long",
      "float",         "double",
  };
  std::size_t pos = 0;
  while ((pos = stripped.find("reinterpret_cast<", pos)) != std::string::npos) {
    const std::size_t open = pos + std::string("reinterpret_cast<").size();
    const std::size_t close = stripped.find('>', open);
    pos = open;
    if (close == std::string::npos) {
      continue;
    }
    const std::string type = Trimmed(stripped.substr(open, close - open));
    if (type.find('*') == std::string::npos) {
      continue;  // not a pointer cast (e.g. uintptr_t)
    }
    if (type.rfind("const ", 0) == 0) {
      continue;  // read-only view
    }
    for (const char* base : kBadBases) {
      if (type.rfind(base, 0) == 0) {
        return true;
      }
    }
  }
  return false;
}

void LintFile(const FileInfo& f, const std::string& display_path,
              std::vector<Finding>* findings) {
  static const char* kRawCopyTokens[] = {
      "memcpy", "memmove", "memset", "std::copy", "std::copy_n", "std::fill",
      "std::fill_n",
  };
  static const char* kFaultPathTokens[] = {
      "std::mutex",  "std::condition_variable",
      "sleep_for",   "sleep_until",
      "usleep",      "nanosleep",
      "malloc",      "calloc",
      "realloc",     "new",
  };
  auto report = [&](std::size_t i, const char* rule) {
    if (Waived(f, i, rule)) {
      return;
    }
    findings->push_back(Finding{display_path, static_cast<int>(i + 1), rule,
                                Trimmed(f.raw[i])});
  };
  for (std::size_t i = 0; i < f.stripped.size(); ++i) {
    const std::string& s = f.stripped[i];
    // A waiver must carry a justification; an unjustified allow() is itself
    // a finding, so a rubber stamp cannot silence the pass.
    {
      std::string waiver_rule;
      bool justified = false;
      if (ParseWaiver(f.raw[i], &waiver_rule, &justified) && !justified) {
        findings->push_back(
            Finding{display_path, static_cast<int>(i + 1), "bad-waiver",
                    "csm-lint: allow() without a '-- justification'"});
      }
    }
    if (f.word_access) {
      continue;  // the sanctioned implementation site
    }
    if (ContainsToken(s, "atomic_ref")) {
      report(i, "atomic-bypass");
    }
    // Plain substring match, not ContainsToken: the needle's leading '.'
    // or '->' is itself the left boundary (the char before it is the
    // object identifier), and '(' bounds the right — `.ProtectRange(`
    // never matches.
    if (!f.vm_dir && (s.find(".Protect(") != std::string::npos ||
                      s.find("->Protect(") != std::string::npos)) {
      report(i, "raw-view-protect");
    }
    // Same boundary trick as raw-view-protect: the leading '.'/'->' and the
    // trailing '(' bound the member-call needles. Arena's own inline
    // definitions don't match (no '.'/'->' prefix on a declaration).
    if (f.copy_domain && !f.mc_dir &&
        (s.find(".PagePtr(") != std::string::npos ||
         s.find("->PagePtr(") != std::string::npos ||
         s.find(".protocol_base(") != std::string::npos ||
         s.find("->protocol_base(") != std::string::npos)) {
      report(i, "raw-mc-write");
    }
    // Same boundary trick as raw-view-protect. `->WriteAndSnapshot(` does
    // not double-fire the `->Write(` needle (next char is 'A', not '(').
    if (f.copy_domain && !f.dir_home &&
        (s.find(".Write(") != std::string::npos ||
         s.find("->Write(") != std::string::npos ||
         s.find(".WriteAndSnapshot(") != std::string::npos ||
         s.find("->WriteAndSnapshot(") != std::string::npos)) {
      report(i, "raw-dir-write");
    }
    // Sharded backend files: entry-word stores are directory mutations.
    // Only the Write/WriteAndSnapshot funnel stores (explicitly waived)
    // may touch the owner-side entry words.
    if (f.dir_sharded && ContainsToken(s, "StoreWord32")) {
      report(i, "raw-dir-write");
    }
    if (f.copy_domain) {
      for (const char* tok : kRawCopyTokens) {
        if (ContainsToken(s, tok)) {
          report(i, "raw-page-copy");
          break;
        }
      }
      if (FlagsWordCast(s)) {
        report(i, "word-cast-store");
      }
    }
    if (f.fault_path) {
      for (const char* tok : kFaultPathTokens) {
        if (ContainsToken(s, tok)) {
          report(i, "fault-path-blocking");
          break;
        }
      }
    }
  }
}

bool LoadFile(const fs::path& path, FileInfo* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    out->raw.push_back(line);
  }
  out->stripped = StripLines(out->raw);
  const std::string generic = path.generic_string();
  const std::string name = path.filename().string();
  out->copy_domain = generic.find("/protocol/") != std::string::npos ||
                     generic.find("/mc/") != std::string::npos ||
                     generic.find("/msg/") != std::string::npos ||
                     generic.find("/vm/") != std::string::npos;
  out->fault_path = name.rfind("fault_dispatcher", 0) == 0;
  out->word_access = name == "word_access.hpp";
  out->vm_dir = generic.find("/vm/") != std::string::npos;
  out->mc_dir = generic.find("/mc/") != std::string::npos;
  out->dir_home = name == "directory.cpp" || name == "directory.hpp";
  out->dir_sharded = name.rfind("directory_sharded", 0) == 0;
  // Fixture directives override path classification.
  for (const std::string& raw : out->raw) {
    std::size_t at = raw.find("csm-lint-domain:");
    if (at != std::string::npos) {
      const std::string domain =
          Trimmed(raw.substr(at + std::string("csm-lint-domain:").size()));
      out->copy_domain = domain == "protocol" || domain == "mc" || domain == "msg" ||
                         domain == "vm" || domain == "dir-sharded";
      out->fault_path = domain == "fault-path";
      out->vm_dir = domain == "vm";
      out->mc_dir = domain == "mc";
      out->dir_sharded = domain == "dir-sharded";
    }
    at = raw.find("csm-lint-expect:");
    if (at != std::string::npos) {
      // First token only: text after the rule name is free-form commentary.
      std::string rest = Trimmed(raw.substr(at + std::string("csm-lint-expect:").size()));
      const std::size_t space = rest.find_first_of(" \t");
      if (space != std::string::npos) {
        rest = rest.substr(0, space);
      }
      out->expects.push_back(rest);
    }
  }
  return true;
}

bool LintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> CollectFiles(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && LintableExtension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int RunLint(const std::vector<std::string>& roots) {
  std::vector<Finding> findings;
  int scanned = 0;
  for (const fs::path& path : CollectFiles(roots)) {
    FileInfo f;
    if (!LoadFile(path, &f)) {
      std::fprintf(stderr, "csm_lint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    ++scanned;
    LintFile(f, path.string(), &findings);
  }
  for (const Finding& fd : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", fd.file.c_str(), fd.line,
                 fd.rule.c_str(), fd.text.c_str());
  }
  std::fprintf(stderr, "csm_lint: %d file(s), %zu finding(s)\n", scanned,
               findings.size());
  return findings.empty() ? 0 : 1;
}

// Fixture self-check: every fixture must trip exactly the rules its
// csm-lint-expect lines declare (as a multiset) — no more, no fewer. This
// pins the rules in both directions: a regression that stops a rule from
// firing fails just as loudly as one that makes it overfire.
int RunFixtures(const std::string& dir) {
  int failures = 0;
  int checked = 0;
  for (const fs::path& path : CollectFiles({dir})) {
    FileInfo f;
    if (!LoadFile(path, &f)) {
      std::fprintf(stderr, "csm_lint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    ++checked;
    if (f.expects.empty()) {
      std::fprintf(stderr, "csm_lint: fixture %s declares no csm-lint-expect\n",
                   path.string().c_str());
      ++failures;
      continue;
    }
    std::vector<Finding> findings;
    LintFile(f, path.string(), &findings);
    std::map<std::string, int> expected;
    for (const std::string& rule : f.expects) {
      ++expected[rule];
    }
    std::map<std::string, int> found;
    for (const Finding& fd : findings) {
      ++found[fd.rule];
    }
    if (expected == found) {
      std::fprintf(stderr, "csm_lint: fixture %s OK (%zu finding(s))\n",
                   path.string().c_str(), findings.size());
      continue;
    }
    ++failures;
    std::fprintf(stderr, "csm_lint: fixture %s MISMATCH\n", path.string().c_str());
    for (const auto& [rule, n] : expected) {
      std::fprintf(stderr, "  expected %dx %s\n", n, rule.c_str());
    }
    for (const Finding& fd : findings) {
      std::fprintf(stderr, "  found %s:%d [%s] %s\n", fd.file.c_str(), fd.line,
                   fd.rule.c_str(), fd.text.c_str());
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "csm_lint: no fixtures found in %s\n", dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "csm_lint: %d fixture(s), %d mismatch(es)\n", checked, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string fixtures;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fixtures") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "csm_lint: --fixtures needs a directory\n");
        return 2;
      }
      fixtures = argv[++i];
    } else {
      roots.push_back(arg);
    }
  }
  if (!fixtures.empty()) {
    return RunFixtures(fixtures);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: csm_lint <dir-or-file>... | --fixtures <dir>\n");
    return 2;
  }
  return RunLint(roots);
}
