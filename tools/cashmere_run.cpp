// cashmere_run: command-line driver for the benchmark suite.
//
//   cashmere_run --app SOR --protocol 2L --procs 32 --ppn 4 [--size bench]
//                [--home-opt] [--interrupts] [--no-first-touch]
//                [--cost-scale auto|<float>] [--verbose]
//
// Runs one application under one configuration, verifies it against the
// sequential reference, and prints the Table-3-style statistics, the
// Figure-6 time breakdown and the speedup.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cashmere/apps/app.hpp"

namespace {

using namespace cashmere;

[[noreturn]] void Usage(const char* argv0) {
  std::string names;
  for (const std::string& name : App::Names()) {
    if (!names.empty()) {
      names += '|';
    }
    names += name;
  }
  std::fprintf(stderr,
               "usage: %s --app <%s>\n"
               "          [--protocol 2L|2LS|2L-lock|1LD|1L] [--procs N] [--ppn N]\n"
               "          [--size test|bench|large] [--home-opt] [--interrupts]\n"
               "          [--no-first-touch] [--async] [--no-async]\n"
               "          [--dir replicated|sharded] [--cost-scale auto|<float>]\n"
               "          [--transport inproc|shm] [--list]\n"
               "  (CSM_TRANSPORT=inproc|shm sets the default backend; the flag\n"
               "   wins. shm under tools/cashmere_launch spans OS processes.)\n",
               argv0, names.c_str());
  std::exit(2);
}

bool ParseProtocol(const char* name, ProtocolVariant* out) {
  const ProtocolVariant all[] = {
      ProtocolVariant::kTwoLevel, ProtocolVariant::kTwoLevelShootdown,
      ProtocolVariant::kTwoLevelGlobalLock, ProtocolVariant::kOneLevelDiff,
      ProtocolVariant::kOneLevelWriteDouble};
  for (const ProtocolVariant v : all) {
    if (std::strcmp(ProtocolVariantName(v), name) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  AppKind kind = AppKind::kSor;
  bool have_app = false;
  Config cfg;
  cfg.cost.scale = 0.0;  // auto
  int procs = 32;
  int ppn = 4;
  int size_class = kSizeBench;

  // Environment default first, so cashmere_launch can select the shm
  // backend without rewriting the lead's command line; an explicit
  // --transport flag overrides it below.
  if (!ApplyTransportEnv(&cfg)) {
    std::fprintf(stderr, "unknown CSM_TRANSPORT '%s' (want inproc|shm)\n",
                 std::getenv("CSM_TRANSPORT"));
    return 2;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      if (!App::Lookup(next(), &kind)) {
        Usage(argv[0]);
      }
      have_app = true;
    } else if (arg == "--protocol") {
      if (!ParseProtocol(next(), &cfg.protocol)) {
        Usage(argv[0]);
      }
    } else if (arg == "--procs") {
      procs = std::atoi(next());
    } else if (arg == "--ppn") {
      ppn = std::atoi(next());
    } else if (arg == "--size") {
      const std::string s = next();
      size_class = s == "test" ? kSizeTest : s == "large" ? kSizeLarge : kSizeBench;
    } else if (arg == "--home-opt") {
      cfg.home_opt = true;
    } else if (arg == "--interrupts") {
      cfg.delivery = DeliveryMode::kInterrupt;
    } else if (arg == "--no-first-touch") {
      cfg.first_touch = false;
    } else if (arg == "--async") {
      cfg.async.release = true;
    } else if (arg == "--no-async") {
      cfg.async.release = false;
    } else if (arg == "--dir") {
      const std::string s = next();
      if (s == "sharded") {
        cfg.dir.mode = DirMode::kSharded;
      } else if (s == "replicated") {
        cfg.dir.mode = DirMode::kReplicated;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--cost-scale") {
      const std::string s = next();
      cfg.cost.scale = s == "auto" ? 0.0 : std::atof(s.c_str());
    } else if (arg == "--transport") {
      if (!ParseTransportKind(next(), &cfg.mc.transport)) {
        Usage(argv[0]);
      }
    } else if (arg == "--list") {
      for (const std::string& name : App::Names()) {
        auto app = App::Create(name, size_class);
        std::printf("%-8s paper: %-22s ours: %s\n", app->name(), app->PaperProblemSize(),
                    app->ProblemSize().c_str());
      }
      return 0;
    } else {
      Usage(argv[0]);
    }
  }
  if (!have_app) {
    Usage(argv[0]);
  }
  if (ppn <= 0 || procs <= 0 || procs % ppn != 0 || procs / ppn > kMaxNodes ||
      ppn > kMaxProcsPerNode) {
    std::fprintf(stderr, "invalid cluster shape %d:%d (max %d nodes x %d processors)\n",
                 procs, ppn, kMaxNodes, kMaxProcsPerNode);
    return 2;
  }
  cfg.nodes = procs / ppn;
  cfg.procs_per_node = ppn;

  const AppRunResult r = RunApp(kind, cfg, size_class);
  std::printf("%s on %s  [%s]\n", AppName(kind), cfg.Describe().c_str(),
              r.verified ? "VERIFIED" : "VERIFICATION FAILED");
  std::printf("  sequential (Alpha-equivalent): %.4f s\n", r.seq_alpha_seconds);
  std::printf("  parallel (virtual):            %.4f s\n", r.report.ExecTimeSec());
  std::printf("  speedup:                       %.2f\n", r.speedup);
  if (cfg.mc.transport == McTransportKind::kShm) {
    std::printf("  shm wire time (wall clock):    %.4f s\n",
                static_cast<double>(r.wire_ns) / 1e9);
    std::printf("  shm peer segments:             %s\n",
                r.transport_verified ? "verified" : "CHECKSUM MISMATCH");
  }
  std::printf("\n");
  std::printf("%s", r.report.ToString().c_str());
  return r.verified ? 0 : 1;
}
