// Unit tests for the range-coalesced permission batch (vm/perm_batch.hpp):
// run merging, last-write-wins dedup, shadow-table elision, resolver
// re-resolution, auto-commit on overflow, and (under TSan) concurrent
// commits against one view from two threads.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "cashmere/common/stats.hpp"
#include "cashmere/vm/arena.hpp"
#include "cashmere/vm/perm_batch.hpp"
#include "cashmere/vm/view.hpp"

namespace cashmere {
namespace {

constexpr std::size_t kTestPages = 16;

Config BatchConfig() {
  Config cfg;
  cfg.nodes = 1;
  cfg.procs_per_node = 1;
  cfg.heap_bytes = kTestPages * kPageBytes;
  cfg.superpage_pages = 4;
  return cfg;
}

// One arena with `views` processor views over it, plus a batch bound to
// them (no resolver, no stats unless a test binds its own).
struct BatchRig {
  explicit BatchRig(int view_count = 1) : cfg(BatchConfig()), arena(cfg.heap_bytes, "perm-batch") {
    for (int i = 0; i < view_count; ++i) {
      views.push_back(std::make_unique<View>(cfg, arena));
    }
    batch.Bind(&views, nullptr, nullptr, nullptr);
  }

  Config cfg;
  Arena arena;
  std::vector<std::unique_ptr<View>> views;
  PermBatch batch;
};

TEST(PermBatchTest, CoalescesAdjacentPagesIntoOneSyscall) {
  BatchRig rig;
  for (PageId p = 2; p < 7; ++p) {
    rig.batch.Add(0, p, Perm::kRead);
  }
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.entries, 5u);
  EXPECT_EQ(cs.syscalls, 1u);
  EXPECT_EQ(cs.pages_applied, 5u);
  EXPECT_EQ(cs.pages_elided, 0u);
  for (PageId p = 2; p < 7; ++p) {
    EXPECT_EQ(rig.views[0]->PermOf(p), Perm::kRead);
  }
  EXPECT_EQ(rig.views[0]->PermOf(1), Perm::kInvalid);
  EXPECT_EQ(rig.views[0]->PermOf(7), Perm::kInvalid);
  EXPECT_TRUE(rig.batch.Empty());
}

TEST(PermBatchTest, AdjacentPagesWithDifferentPermsSplitRuns) {
  BatchRig rig;
  rig.batch.Add(0, 3, Perm::kRead);
  rig.batch.Add(0, 4, Perm::kReadWrite);  // adjacent but different perm
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.syscalls, 2u);
  EXPECT_EQ(cs.pages_applied, 2u);
  EXPECT_EQ(rig.views[0]->PermOf(3), Perm::kRead);
  EXPECT_EQ(rig.views[0]->PermOf(4), Perm::kReadWrite);
}

TEST(PermBatchTest, NonContiguousRunsCostOneSyscallEach) {
  BatchRig rig;
  // Queued out of order on purpose: commit sorts before coalescing.
  rig.batch.Add(0, 9, Perm::kRead);
  rig.batch.Add(0, 1, Perm::kRead);
  rig.batch.Add(0, 8, Perm::kRead);
  rig.batch.Add(0, 0, Perm::kRead);
  rig.batch.Add(0, 5, Perm::kRead);
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.syscalls, 3u);  // {0,1}, {5}, {8,9}
  EXPECT_EQ(cs.pages_applied, 5u);
}

TEST(PermBatchTest, DuplicatePageLastWriteWins) {
  BatchRig rig;
  rig.batch.Add(0, 6, Perm::kReadWrite);
  rig.batch.Add(0, 6, Perm::kInvalid);
  rig.batch.Add(0, 6, Perm::kRead);  // last queued transition wins
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.entries, 3u);
  EXPECT_EQ(cs.syscalls, 1u);
  EXPECT_EQ(cs.pages_applied, 1u);
  EXPECT_EQ(rig.views[0]->PermOf(6), Perm::kRead);
}

TEST(PermBatchTest, ShadowTableElidesNoopTransitions) {
  BatchRig rig;
  rig.views[0]->ProtectRange(0, 4, Perm::kRead);
  for (PageId p = 0; p < 4; ++p) {
    rig.batch.Add(0, p, Perm::kRead);  // hardware already agrees
  }
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.syscalls, 0u);
  EXPECT_EQ(cs.pages_applied, 0u);
  EXPECT_EQ(cs.pages_elided, 4u);
}

TEST(PermBatchTest, ElisionSplitsButDoesNotDuplicateRuns) {
  BatchRig rig;
  // csm-lint: allow(raw-view-protect) -- seeds a pre-existing permission
  // hole directly; the batch engine under test must then split around it
  rig.views[0]->Protect(2, Perm::kRead);  // hole in the middle of the run
  for (PageId p = 0; p < 5; ++p) {
    rig.batch.Add(0, p, Perm::kRead);
  }
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.syscalls, 2u);  // {0,1} and {3,4}; page 2 elided
  EXPECT_EQ(cs.pages_applied, 4u);
  EXPECT_EQ(cs.pages_elided, 1u);
}

TEST(PermBatchTest, RunMayEndExactlyAtArenaEnd) {
  BatchRig rig;
  rig.batch.Add(0, kTestPages - 2, Perm::kReadWrite);
  rig.batch.Add(0, kTestPages - 1, Perm::kReadWrite);
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.syscalls, 1u);
  EXPECT_EQ(rig.views[0]->PermOf(kTestPages - 1), Perm::kReadWrite);
}

TEST(PermBatchTest, EntriesForDifferentProcsCommitToTheirOwnViews) {
  BatchRig rig(/*view_count=*/2);
  for (PageId p = 0; p < 3; ++p) {
    rig.batch.Add(0, p, Perm::kRead);
    rig.batch.Add(1, p, Perm::kReadWrite);
  }
  const PermBatch::CommitStats cs = rig.batch.Commit();
  EXPECT_EQ(cs.syscalls, 2u);  // one run per view
  EXPECT_EQ(cs.pages_applied, 6u);
  for (PageId p = 0; p < 3; ++p) {
    EXPECT_EQ(rig.views[0]->PermOf(p), Perm::kRead);
    EXPECT_EQ(rig.views[1]->PermOf(p), Perm::kReadWrite);
  }
}

TEST(PermBatchTest, ResolverOverridesQueuedPerm) {
  BatchRig rig;
  const auto resolver = +[](void*, ProcId, PageId, Perm) { return Perm::kRead; };
  rig.batch.Bind(&rig.views, resolver, nullptr, nullptr);
  rig.batch.Add(0, 4, Perm::kReadWrite);  // stale hint; resolver says kRead
  rig.batch.Commit();
  EXPECT_EQ(rig.views[0]->PermOf(4), Perm::kRead);
}

TEST(PermBatchTest, CommitRecordsStatsCounters) {
  BatchRig rig;
  Stats stats;
  rig.batch.Bind(&rig.views, nullptr, nullptr, &stats);
  for (PageId p = 0; p < 8; ++p) {
    rig.batch.Add(0, p, Perm::kRead);
  }
  rig.batch.Add(0, 12, Perm::kRead);
  rig.batch.Commit();
  EXPECT_EQ(stats.Get(Counter::kMprotectCalls), 2u);
  // 9 pages changed hardware state with 2 syscalls: 7 saved.
  EXPECT_EQ(stats.Get(Counter::kMprotectPagesCoalesced), 7u);
}

TEST(PermBatchTest, OverflowCommitsEagerlyAndKeepsQueueing) {
  BatchRig rig;
  // Alternate perms on one page so dedup cannot hide the overflow commit.
  for (std::size_t i = 0; i < PermBatch::kCapacity; ++i) {
    rig.batch.Add(0, 3, (i % 2 == 0) ? Perm::kRead : Perm::kReadWrite);
  }
  EXPECT_EQ(rig.batch.size(), PermBatch::kCapacity);
  rig.batch.Add(0, 5, Perm::kRead);  // forces the early commit
  EXPECT_EQ(rig.batch.size(), 1u);
  // The overflowed batch's last write landed (kCapacity is even, so the
  // final queued perm for page 3 was kReadWrite).
  EXPECT_EQ(rig.views[0]->PermOf(3), Perm::kReadWrite);
  EXPECT_EQ(rig.views[0]->PermOf(5), Perm::kInvalid);  // still queued
  rig.batch.Commit();
  EXPECT_EQ(rig.views[0]->PermOf(5), Perm::kRead);
}

// Two threads commit against the same view concurrently: one batches
// multi-page runs (an acquire-drain shape), the other commits single pages
// (a fault-upgrade shape). Both resolve through a fixed truth table, so
// whatever interleaving TSan drives, the last committer per page applies
// the same truth and the shadow must match it exactly after the join.
TEST(PermBatchStressTest, ConcurrentRangeAndSingleCommitsConverge) {
  BatchRig rig;
  std::array<Perm, kTestPages> truth{};
  for (std::size_t p = 0; p < kTestPages; ++p) {
    truth[p] = static_cast<Perm>(p % 3);
  }
  const auto resolver = +[](void* ctx, ProcId, PageId page, Perm) {
    return (*static_cast<std::array<Perm, kTestPages>*>(ctx))[page];
  };

  constexpr int kRounds = 4000;
  std::thread drainer([&] {
    PermBatch batch;
    batch.Bind(&rig.views, resolver, &truth, nullptr);
    for (int r = 0; r < kRounds; ++r) {
      for (PageId p = 0; p < kTestPages; ++p) {
        batch.Add(0, p, Perm::kInvalid);  // hint ignored by the resolver
      }
      batch.Commit();
    }
  });
  std::thread upgrader([&] {
    PermBatch batch;
    batch.Bind(&rig.views, resolver, &truth, nullptr);
    for (int r = 0; r < kRounds; ++r) {
      batch.Add(0, static_cast<PageId>(r % kTestPages), Perm::kReadWrite);
      batch.Commit();
    }
  });
  drainer.join();
  upgrader.join();

  for (PageId p = 0; p < kTestPages; ++p) {
    EXPECT_EQ(rig.views[0]->PermOf(p), truth[p]) << "page " << p;
  }
}

}  // namespace
}  // namespace cashmere
