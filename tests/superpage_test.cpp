// Superpage semantics (Section 2.3): one Memory Channel mapping per
// superpage, homes assigned per superpage, coherence still per page.
#include <gtest/gtest.h>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config SpConfig(std::size_t superpage_pages, int nodes = 4, int ppn = 1) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 64 * kPageBytes;
  cfg.superpage_pages = superpage_pages;
  cfg.cost.time_scale = 3.0;
  cfg.first_touch = false;
  return cfg;
}

TEST(SuperpageTest, HomesAssignedPerSuperpage) {
  Runtime rt(SpConfig(8));
  // 64 pages / 8 per superpage = 8 superpages over 4 units, round-robin.
  for (PageId page = 0; page < 64; ++page) {
    EXPECT_EQ(rt.homes().HomeOfPage(page), static_cast<UnitId>((page / 8) % 4));
  }
}

TEST(SuperpageTest, CoherenceGranularityIsStillOnePage) {
  // Two processors write different pages of the same superpage; their
  // updates are independent (separate faults, transfers, write notices).
  Runtime rt(SpConfig(8, 2, 1));
  const GlobalAddr a = 0;  // superpage 0: pages 0..7, home unit 0
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 1) {
      p[0] = 11;                 // page 0
      p[3 * 2048] = 33;          // page 3
    }
    ctx.Barrier(0);
    EXPECT_EQ(p[0], 11);
    EXPECT_EQ(p[3 * 2048], 33);
    ctx.Barrier(0);
  });
  // Processor 0 (home) reads both pages in place; processor 1 held them
  // exclusively and was broken per page.
  EXPECT_EQ(rt.Read<int>(0), 11);
}

TEST(SuperpageTest, SuperpageSizeOneBehavesLikePlainPages) {
  Runtime rt(SpConfig(1));
  for (PageId page = 0; page < 8; ++page) {
    EXPECT_EQ(rt.homes().HomeOfPage(page), static_cast<UnitId>(page % 4));
  }
  const GlobalAddr a = 0;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    p[ctx.proc() * 2048] = ctx.proc() + 1;  // one page each
    ctx.Barrier(0);
    for (int q = 0; q < ctx.total_procs(); ++q) {
      EXPECT_EQ(p[q * 2048], q + 1);
    }
    ctx.Barrier(0);
  });
}

TEST(SuperpageTest, OddHeapSizeLastSuperpageIsPartial) {
  Config cfg = SpConfig(16);
  cfg.heap_bytes = 36 * kPageBytes;  // 16 + 16 + 4 pages
  Runtime rt(cfg);
  EXPECT_EQ(rt.homes().superpages(), 3u);
  const GlobalAddr last = 35 * kPageBytes;
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 1) {
      *ctx.Ptr<int>(last) = 42;
    }
    ctx.Barrier(0);
    EXPECT_EQ(*ctx.Ptr<int>(last), 42);
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(last), 42);
}

TEST(SuperpageTest, FirstTouchRelocatesWholeSuperpageOnly) {
  Config cfg = SpConfig(8);
  cfg.first_touch = true;
  Runtime rt(cfg);
  // Superpage 1: pages 8..15, homed at unit 1.
  const GlobalAddr a = 8 * kPageBytes;
  rt.Run([&](Context& ctx) {
    ctx.InitDone();
    if (ctx.proc() == 2) {
      ctx.Ptr<int>(a)[0] = 1;  // touch only page 8
    }
    ctx.Barrier(0);
  });
  const UnitId home = rt.homes().HomeOfSuperpage(1);
  for (PageId page = 8; page < 16; ++page) {
    EXPECT_EQ(rt.homes().HomeOfPage(page), home) << "superpage split";
  }
  // Other superpages unaffected.
  EXPECT_EQ(rt.homes().HomeOfSuperpage(0), 0);
}

}  // namespace
}  // namespace cashmere
