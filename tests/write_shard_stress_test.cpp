// Stress test for the lock-free per-processor write-tracking shards: all
// procs_per_unit processors of one unit hammer NoteLocalWrite on shared
// pages (relaxed fetch_or into their own shards, no lock) while a processor
// of another unit concurrently OR-folds the shards into the twin's map
// under the page lock and diff-scans the racing working copy. The merged
// map must cover every write a writer has published, mid-run and at the
// end; the closing barrier's real flush (merge → encode → wire replay)
// must land every written word in the master copy.
//
// This file is the TSan gate for the lock-free fast path: it drives
// NoteLocalWrite and the merge/diff machinery directly, with all test-level
// communication through release/acquire publication.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "cashmere/common/rng.hpp"
#include "cashmere/protocol/diff.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

constexpr int kWritesPerProc = 1500;
constexpr int kPagesUnderTest = 2;

Config StressConfig() {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 2;
  cfg.procs_per_node = kMaxProcsPerNode;
  cfg.heap_bytes = 512 * 1024;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = false;
  cfg.fault_mode = FaultMode::kSoftware;
  return cfg;
}

// Word a writer owns within a block: one word per local processor, so the
// application-level stores are data-race free among the hammering threads.
std::size_t OwnedWord(std::size_t block, int local_index) {
  return block * kWordsPerBlock + static_cast<std::size_t>(local_index);
}

std::uint32_t ValueOf(int page_sel, std::size_t word) {
  return 0x51000000u | (static_cast<std::uint32_t>(page_sel) << 16) |
         static_cast<std::uint32_t>(word);
}

// Per-writer publication log: the writer marks its shard (NoteLocalWrite),
// stores the value, records the (page, block) entry, then publishes the
// count with release. A checker that acquires the count therefore sees the
// shard marks for every entry it reads.
struct alignas(64) WriteLog {
  std::atomic<int> n{0};
  std::uint16_t entries[kWritesPerProc];  // block | (page_sel << 8)
};

TEST(WriteShardStressTest, ConcurrentMergeCoversEveryPublishedWrite) {
  const Config cfg = StressConfig();
  Runtime rt(cfg);
  const int writers = cfg.procs_per_unit();
  GlobalAddr addrs[kPagesUnderTest];
  PageId pages[kPagesUnderTest];
  for (int s = 0; s < kPagesUnderTest; ++s) {
    addrs[s] = rt.heap().AllocPageAligned(kPageBytes);
    pages[s] = static_cast<PageId>(addrs[s] / kPageBytes);
  }
  std::vector<WriteLog> logs(static_cast<std::size_t>(writers));
  std::atomic<int> twins_ready{0};
  std::atomic<int> writers_done{0};
  std::atomic<bool> final_check_done{false};

  rt.Run([&](Context& ctx) {
    if (ctx.unit() == 0 && ctx.local_index() == 0) {
      // Register unit 0 in the sharing set so unit 1 takes the shared
      // write path (twin + shards) instead of claiming exclusive mode.
      for (int s = 0; s < kPagesUnderTest; ++s) {
        std::uint32_t* p = ctx.Ptr<std::uint32_t>(addrs[s]);
        ctx.EnsureWrite(p, sizeof(std::uint32_t));
        p[0] = ValueOf(s, 0);
      }
    }
    // The barrier is the last sync until the hammer phase ends: a later
    // barrier would flush and tear down the twins mid-phase.
    ctx.Barrier(0);

    if (ctx.unit() == 1) {
      const int li = ctx.local_index();
      if (li == 0) {
        // One write fault per page creates the twins; the flag's release
        // publishes the odd twin generation to the other writers.
        for (int s = 0; s < kPagesUnderTest; ++s) {
          std::uint32_t* p = ctx.Ptr<std::uint32_t>(addrs[s]);
          ctx.EnsureWrite(p, sizeof(std::uint32_t));
          p[0] = ValueOf(s, 0);
        }
        twins_ready.store(1, std::memory_order_release);
      } else {
        ctx.IdleWhile([&] { return twins_ready.load(std::memory_order_acquire) == 0; });
      }
      // Hammer: mark the shard, store the value, publish the entry. No
      // page lock is taken anywhere in this loop.
      WriteLog& log = logs[static_cast<std::size_t>(li)];
      SplitMix64 rng(77 + static_cast<std::uint64_t>(ctx.proc()));
      CashmereProtocol& prot = rt.protocol();
      for (int k = 0; k < kWritesPerProc; ++k) {
        const int s = static_cast<int>(rng.NextBelow(kPagesUnderTest));
        const std::size_t block = rng.NextBelow(kBlocksPerPage);
        const std::size_t word = OwnedWord(block, li);
        prot.NoteLocalWrite(1, li, pages[s], word * kWordBytes, kWordBytes);
        StoreWord32Relaxed(prot.WorkingPtr(1, pages[s]), word,
                           ValueOf(s, word));
        log.entries[k] =
            static_cast<std::uint16_t>(block | (static_cast<unsigned>(s) << 8));
        log.n.store(k + 1, std::memory_order_release);
      }
      writers_done.fetch_add(1, std::memory_order_release);
      // Keep polling (to serve any unit-0 fetches) until the checker has
      // taken its final look at the un-flushed shards.
      ctx.IdleWhile([&] { return !final_check_done.load(std::memory_order_acquire); });
    } else if (ctx.local_index() == 0) {
      // Checker: repeatedly merge the shards under the page lock and
      // verify coverage of everything published since the last round (the
      // maps are monotone while the twin lives, so once-covered entries
      // stay covered); every few rounds also run a full diff scan over the
      // racing working copy (into private twin/master images) to exercise
      // the flush-side read path concurrently with the markers. Coverage
      // failures are recorded and reported after the flag is set — an
      // early return here would strand the spinning writers.
      std::vector<std::uint32_t> priv_twin(kWordsPerPage);
      std::vector<std::uint32_t> priv_master(kWordsPerPage);
      int checked[kMaxProcsPerNode] = {};
      int missing = 0;
      int rounds = 0;
      for (;;) {
        const bool last =
            writers_done.load(std::memory_order_acquire) == writers;
        int counts[kMaxProcsPerNode] = {};
        for (int w = 0; w < writers; ++w) {
          counts[w] = logs[static_cast<std::size_t>(w)].n.load(std::memory_order_acquire);
        }
        const DirtyBlockMap* merged[kPagesUnderTest];
        for (int s = 0; s < kPagesUnderTest; ++s) {
          merged[s] = &rt.protocol().MergedTwinMapForTesting(1, pages[s]);
        }
        for (int w = 0; w < writers; ++w) {
          for (int k = checked[w]; k < counts[w]; ++k) {
            const std::uint16_t e = logs[static_cast<std::size_t>(w)].entries[k];
            if (!merged[e >> 8]->Test(e & 0xFFu)) {
              ++missing;
            }
          }
          checked[w] = counts[w];
        }
        if (++rounds % 4 == 0) {
          const int s = (rounds / 4) % kPagesUnderTest;
          std::byte* working = rt.protocol().WorkingPtr(1, pages[s]);
          DirtyBlockMap restrict_map;
          restrict_map.Clear();
          for (std::size_t i = 0; i < DirtyBlockMap::kMapWords; ++i) {
            restrict_map.OrWord(i, merged[s]->Word(i));
          }
          ApplyOutgoingDiff(working,
                            reinterpret_cast<std::byte*>(priv_twin.data()),
                            reinterpret_cast<std::byte*>(priv_master.data()),
                            /*flush_update=*/true, &restrict_map);
        }
        if (last) {
          break;
        }
        ctx.Poll();
      }
      final_check_done.store(true, std::memory_order_release);
      EXPECT_EQ(missing, 0) << "published writes absent from the merged map";
    } else {
      ctx.IdleWhile([&] { return !final_check_done.load(std::memory_order_acquire); });
    }
    // The closing barrier flushes unit 1's pages: shard merge → restricted
    // scan → run serialization → wire replay into the master copies.
    ctx.Barrier(1);
    if (ctx.unit() == 0 && ctx.local_index() == 0) {
      for (int s = 0; s < kPagesUnderTest; ++s) {
        const std::uint32_t* p = ctx.Ptr<const std::uint32_t>(addrs[s]);
        ctx.EnsureRead(p, kPageBytes);
        for (int w = 0; w < writers; ++w) {
          const WriteLog& log = logs[static_cast<std::size_t>(w)];
          const int n = log.n.load(std::memory_order_acquire);
          for (int k = 0; k < n; ++k) {
            const std::uint16_t e = log.entries[k];
            if ((e >> 8) != static_cast<unsigned>(s)) {
              continue;
            }
            const std::size_t word = OwnedWord(e & 0xFFu, w);
            EXPECT_EQ(p[word], ValueOf(s, word))
                << "page " << s << " word " << word << " lost after flush";
          }
        }
      }
    }
    ctx.Barrier(2);
  });

  // The real flush merged marked shards, and the wire replay accounted
  // exactly the bytes the encoder emitted.
  const Stats& total = rt.report().total;
  EXPECT_GT(total.Get(Counter::kDirtyShardMerges), 0u);
  EXPECT_EQ(total.Get(Counter::kDiffRunApplyBytes), total.Get(Counter::kDiffRunBytes));
}

}  // namespace
}  // namespace cashmere
