// Home-node optimization edge cases, including its interaction with
// first-touch relocation (the view-remapping path).
#include <gtest/gtest.h>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config HoConfig(bool first_touch) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kOneLevelDiff;
  cfg.home_opt = true;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 64 * kPageBytes;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 3.0;
  cfg.first_touch = first_touch;
  return cfg;
}

TEST(HomeOptTest, NodeMatesShareTheMasterFrame) {
  Runtime rt(HoConfig(false));
  // Superpage 0 homed at unit 0 (processor 0); processor 1 shares its node.
  const GlobalAddr a = 0;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      p[0] = 123;
    }
    ctx.Barrier(0);
    if (ctx.proc() == 1) {
      EXPECT_EQ(p[0], 123);  // read through the shared master frame
      p[1] = 124;            // and writes go directly to the master
    }
    ctx.Barrier(0);
    EXPECT_EQ(p[1], 124);
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(0), 123);
  EXPECT_EQ(rt.Read<int>(4), 124);
  // Neither master-side processor needed a page transfer; the remote node's
  // reads did.
  EXPECT_GT(rt.report().total.Get(Counter::kPageTransfers), 0u);
}

TEST(HomeOptTest, RemoteNodeStillUsesTwinsAndNotices) {
  Runtime rt(HoConfig(false));
  const GlobalAddr a = 0;  // homed at unit 0 (node 0)
  constexpr int kRounds = 5;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int r = 1; r <= kRounds; ++r) {
      if (ctx.proc() == 2) {  // node 1: not master-side
        p[64] = r;
      }
      ctx.Barrier(0);
      EXPECT_EQ(p[64], r);
      ctx.Barrier(0);
    }
  });
  EXPECT_GT(rt.report().total.Get(Counter::kTwinCreations), 0u);
  EXPECT_GT(rt.report().total.Get(Counter::kWriteNotices), 0u);
}

TEST(HomeOptTest, RelocationRemapsMasterSharingViews) {
  // Superpage 1 (pages 4..7) is homed at unit 1 (processor 1, node 0).
  // After first touch by processor 2 (node 1), the home moves to unit 2 and
  // node 1's processors become the master-sharing side.
  Runtime rt(HoConfig(true));
  const GlobalAddr a = 4 * kPageBytes;
  rt.Run([&](Context& ctx) {
    ctx.InitDone();
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 2) {
      p[0] = 55;
    }
    ctx.Barrier(0);
    EXPECT_EQ(p[0], 55);
    if (ctx.proc() == 3) {
      p[1] = 56;  // node-mate of the new home: writes the master directly
    }
    ctx.Barrier(0);
    EXPECT_EQ(p[1], 56);
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.homes().HomeOfSuperpage(1), 2);
  EXPECT_EQ(rt.Read<int>(a), 55);
  EXPECT_EQ(rt.Read<int>(a + 4), 56);
}

TEST(HomeOptTest, DataWrittenBeforeRelocationSurvivesRemap) {
  Runtime rt(HoConfig(true));
  const GlobalAddr a = 8 * kPageBytes;  // superpage 2, homed at unit 2
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 1024; ++i) {
        p[i] = 7000 + i;
      }
    }
    ctx.Barrier(0);
    ctx.InitDone();
    if (ctx.proc() == 1) {
      // First touch after init: the superpage relocates to unit 1 and every
      // affected view is remapped; the data must survive.
      long sum = 0;
      for (int i = 0; i < 1024; ++i) {
        sum += p[i];
      }
      EXPECT_EQ(sum, 7000L * 1024 + 1023L * 1024 / 2);
    }
    ctx.Barrier(0);
    EXPECT_EQ(p[1023], 7000 + 1023);
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(a + 1023 * 4), 7000 + 1023);
}

TEST(HomeOptTest, TwoLevelIgnoresHomeOptFlag) {
  // home_opt applies to the one-level protocols only; setting it on 2L must
  // be harmless (nodes already share frames in hardware).
  Config cfg = HoConfig(false);
  cfg.protocol = ProtocolVariant::kTwoLevel;
  Runtime rt(cfg);
  const GlobalAddr a = 0;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    p[ctx.proc() * 32] = ctx.proc() + 1;
    ctx.Barrier(0);
    for (int q = 0; q < ctx.total_procs(); ++q) {
      EXPECT_EQ(p[q * 32], q + 1);
    }
    ctx.Barrier(0);
  });
}

}  // namespace
}  // namespace cashmere
