// Unit tests for the common module: cost model, virtual clock, stats,
// config topology helpers, spin primitives, RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cashmere/common/calibration.hpp"
#include "cashmere/common/config.hpp"
#include "cashmere/common/cost_model.hpp"
#include "cashmere/common/rng.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/virtual_clock.hpp"

namespace cashmere {
namespace {

TEST(CostModelTest, DiffCostsInterpolateWithinPaperRanges) {
  CostModel costs;
  // Empty diff and full-page diff hit the published endpoints.
  EXPECT_EQ(costs.DiffOutNs(0, false), CostModel::UsToNs(290.0));
  EXPECT_EQ(costs.DiffOutNs(kWordsPerPage, false), CostModel::UsToNs(363.0));
  EXPECT_EQ(costs.DiffOutNs(0, true), CostModel::UsToNs(340.0));
  EXPECT_EQ(costs.DiffOutNs(kWordsPerPage, true), CostModel::UsToNs(561.0));
  EXPECT_EQ(costs.DiffInNs(0), CostModel::UsToNs(533.0));
  EXPECT_EQ(costs.DiffInNs(kWordsPerPage), CostModel::UsToNs(541.0));
  // Midpoint lies strictly inside the range.
  const auto mid = costs.DiffOutNs(kWordsPerPage / 2, false);
  EXPECT_GT(mid, CostModel::UsToNs(290.0));
  EXPECT_LT(mid, CostModel::UsToNs(363.0));
}

TEST(CostModelTest, BarrierCostsMatchTable1Endpoints) {
  CostModel costs;
  EXPECT_EQ(costs.BarrierNs(2, true), CostModel::UsToNs(58.0));
  EXPECT_EQ(costs.BarrierNs(32, true), CostModel::UsToNs(321.0));
  EXPECT_EQ(costs.BarrierNs(2, false), CostModel::UsToNs(41.0));
  EXPECT_EQ(costs.BarrierNs(32, false), CostModel::UsToNs(364.0));
}

TEST(CostModelTest, LockAndTransferCostsMatchTable1) {
  CostModel costs;
  EXPECT_EQ(costs.LockAcquireNs(true), CostModel::UsToNs(19.0));
  EXPECT_EQ(costs.LockAcquireNs(false), CostModel::UsToNs(11.0));
  EXPECT_EQ(costs.PageTransferNs(true, true), CostModel::UsToNs(467.0));
  EXPECT_EQ(costs.PageTransferNs(false, true), CostModel::UsToNs(824.0));
  EXPECT_EQ(costs.PageTransferNs(false, false), CostModel::UsToNs(777.0));
}

TEST(ConfigTest, TwoLevelTopologyMapsProcsToNodes) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  EXPECT_EQ(cfg.units(), 8);
  EXPECT_EQ(cfg.procs_per_unit(), 4);
  EXPECT_EQ(cfg.UnitOfProc(0), 0);
  EXPECT_EQ(cfg.UnitOfProc(7), 1);
  EXPECT_EQ(cfg.UnitOfProc(31), 7);
  EXPECT_EQ(cfg.FirstProcOfUnit(3), 12);
  EXPECT_EQ(cfg.NodeOfProc(13), 3);
}

TEST(ConfigTest, OneLevelTopologyMapsProcsToThemselves) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kOneLevelDiff;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  EXPECT_EQ(cfg.units(), 32);
  EXPECT_EQ(cfg.procs_per_unit(), 1);
  EXPECT_EQ(cfg.UnitOfProc(13), 13);
  EXPECT_EQ(cfg.NodeOfProc(13), 3);  // SMP node unchanged
}

TEST(ConfigTest, GeometryHelpers) {
  Config cfg;
  cfg.heap_bytes = 64 * kPageBytes;
  cfg.superpage_pages = 16;
  EXPECT_EQ(cfg.pages(), 64u);
  EXPECT_EQ(cfg.superpages(), 4u);
  EXPECT_EQ(cfg.superpage_bytes(), 16 * kPageBytes);
}

TEST(VirtualClockTest, ChargeAdvancesAndCategorizes) {
  VirtualClock clock;
  Stats stats;
  clock.Start(1.0);
  clock.Charge(stats, TimeCategory::kProtocol, 500);
  clock.Charge(stats, TimeCategory::kCommWait, 300);
  EXPECT_EQ(clock.now(), 800u);
  EXPECT_EQ(stats.time_ns[static_cast<int>(TimeCategory::kProtocol)], 500u);
  EXPECT_EQ(stats.time_ns[static_cast<int>(TimeCategory::kCommWait)], 300u);
}

TEST(VirtualClockTest, AdvanceToOnlyMovesForward) {
  VirtualClock clock;
  Stats stats;
  clock.Start(1.0);
  clock.Charge(stats, TimeCategory::kProtocol, 1000);
  clock.AdvanceTo(stats, 500);  // in the past: no-op
  EXPECT_EQ(clock.now(), 1000u);
  clock.AdvanceTo(stats, 2500);
  EXPECT_EQ(clock.now(), 2500u);
  EXPECT_EQ(stats.time_ns[static_cast<int>(TimeCategory::kCommWait)], 1500u);
}

TEST(VirtualClockTest, NestedProtocolScopesChargeUserOnce) {
  VirtualClock clock;
  Stats stats;
  clock.Start(1.0);
  clock.EnterProtocol(stats);
  const auto user_after_outer = stats.time_ns[static_cast<int>(TimeCategory::kUser)];
  clock.EnterProtocol(stats);  // nested: must not re-accrue
  clock.ExitProtocol();
  EXPECT_EQ(stats.time_ns[static_cast<int>(TimeCategory::kUser)], user_after_outer);
  clock.ExitProtocol();
  EXPECT_EQ(clock.depth(), 0);
}

TEST(VirtualClockTest, UserTimeScalesWithFactor) {
  VirtualClock clock;
  Stats stats;
  clock.Start(100.0);
  // Burn a little CPU.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) {
    x = x * 1.0000001;
  }
  clock.AccrueUser(stats);
  const auto scaled = stats.time_ns[static_cast<int>(TimeCategory::kUser)];
  EXPECT_GT(scaled, 0u);

  VirtualClock clock1;
  Stats stats1;
  clock1.Start(1.0);
  for (int i = 0; i < 2000000; ++i) {
    x = x * 1.0000001;
  }
  clock1.AccrueUser(stats1);
  const auto unscaled = stats1.time_ns[static_cast<int>(TimeCategory::kUser)];
  // The 100x-scaled clock should read much larger for similar work.
  EXPECT_GT(scaled, unscaled * 10);
}

TEST(StatsTest, AggregationSums) {
  Stats a;
  Stats b;
  a.Add(Counter::kReadFaults, 5);
  b.Add(Counter::kReadFaults, 7);
  b.Add(Counter::kTwinCreations, 2);
  a += b;
  EXPECT_EQ(a.Get(Counter::kReadFaults), 12u);
  EXPECT_EQ(a.Get(Counter::kTwinCreations), 2u);
}

TEST(StatsTest, ReportRendersAllCounters) {
  StatsReport report;
  report.total.Add(Counter::kWriteNotices, 42);
  report.exec_time_ns = 1500000000;
  const std::string s = report.ToString();
  EXPECT_NE(s.find("Write Notices"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.Lock();
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(RngTest, DeterministicAndWellDistributed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  SplitMix64 c(42);
  int buckets[10] = {};
  for (int i = 0; i < 10000; ++i) {
    buckets[c.NextBelow(10)]++;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(buckets[i], 700);
    EXPECT_LT(buckets[i], 1300);
  }
  SplitMix64 d(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(CalibrationTest, ScaleIsPositiveAndCached) {
  const double s1 = HostToAlphaTimeScale();
  const double s2 = HostToAlphaTimeScale();
  EXPECT_GT(s1, 0.0);
  EXPECT_EQ(s1, s2);
}

TEST(ConfigTest, DescribeMentionsProtocolAndShape) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevelShootdown;
  cfg.nodes = 4;
  cfg.procs_per_node = 2;
  const std::string d = cfg.Describe();
  EXPECT_NE(d.find("2LS"), std::string::npos);
  EXPECT_NE(d.find("8:2"), std::string::npos);
}

}  // namespace
}  // namespace cashmere
