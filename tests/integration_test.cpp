// Cross-module integration tests: every application on several cluster
// shapes, home-opt variants, the full 32-processor configuration, and
// statistics sanity relative to the paper's qualitative claims.
#include <gtest/gtest.h>

#include "cashmere/apps/app.hpp"

namespace cashmere {
namespace {

Config ShapeConfig(ProtocolVariant v, int nodes, int ppn) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.cost.time_scale = 5.0;
  return cfg;
}

TEST(IntegrationTest, AllAppsAtFullScaleTwoLevel) {
  for (int a = 0; a < kNumApps; ++a) {
    const AppRunResult r = RunApp(static_cast<AppKind>(a),
                                  ShapeConfig(ProtocolVariant::kTwoLevel, 8, 4), kSizeTest);
    EXPECT_TRUE(r.verified) << AppName(static_cast<AppKind>(a));
    EXPECT_GT(r.speedup, 0.0);
  }
}

TEST(IntegrationTest, AllAppsAtFullScaleOneLevelDiff) {
  for (int a = 0; a < kNumApps; ++a) {
    const AppRunResult r = RunApp(static_cast<AppKind>(a),
                                  ShapeConfig(ProtocolVariant::kOneLevelDiff, 8, 4), kSizeTest);
    EXPECT_TRUE(r.verified) << AppName(static_cast<AppKind>(a));
  }
}

TEST(IntegrationTest, PaperClusterConfigurations) {
  // The paper's Figure 7 configurations (scaled down to the test size).
  struct Shape {
    int nodes;
    int ppn;
  };
  const Shape shapes[] = {{4, 1}, {1, 4}, {8, 1}, {4, 2}, {2, 4}, {8, 2}, {4, 4}, {8, 3}, {8, 4}};
  for (const Shape& s : shapes) {
    const AppRunResult r =
        RunApp(AppKind::kSor, ShapeConfig(ProtocolVariant::kTwoLevel, s.nodes, s.ppn), kSizeTest);
    EXPECT_TRUE(r.verified) << s.nodes << "x" << s.ppn;
  }
}

TEST(IntegrationTest, HomeOptVariantsVerify) {
  for (const auto v :
       {ProtocolVariant::kOneLevelDiff, ProtocolVariant::kOneLevelWriteDouble}) {
    Config cfg = ShapeConfig(v, 4, 2);
    cfg.home_opt = true;
    for (const AppKind kind : {AppKind::kSor, AppKind::kEm3d, AppKind::kGauss}) {
      const AppRunResult r = RunApp(kind, cfg, kSizeTest);
      EXPECT_TRUE(r.verified) << AppName(kind) << " home-opt " << ProtocolVariantName(v);
    }
  }
}

TEST(IntegrationTest, InterruptModeVerifies) {
  Config cfg = ShapeConfig(ProtocolVariant::kTwoLevelShootdown, 4, 2);
  cfg.delivery = DeliveryMode::kInterrupt;
  const AppRunResult r = RunApp(AppKind::kWater, cfg, kSizeTest);
  EXPECT_TRUE(r.verified);
}

TEST(IntegrationTest, TwoLevelReducesDataVsOneLevel) {
  // The paper's central claim: two-level protocols coalesce intra-node
  // requests, cutting page transfers and data moved relative to 1LD on the
  // same hardware (Table 3: 2-8x for most applications).
  const AppRunResult two = RunApp(
      AppKind::kSor, ShapeConfig(ProtocolVariant::kTwoLevel, 8, 4), kSizeTest);
  const AppRunResult one = RunApp(
      AppKind::kSor, ShapeConfig(ProtocolVariant::kOneLevelDiff, 8, 4), kSizeTest);
  ASSERT_TRUE(two.verified);
  ASSERT_TRUE(one.verified);
  EXPECT_LT(two.report.total.Get(Counter::kPageTransfers),
            one.report.total.Get(Counter::kPageTransfers));
  EXPECT_LT(two.report.total.Get(Counter::kDataBytes),
            one.report.total.Get(Counter::kDataBytes));
}

TEST(IntegrationTest, SequentialBaselineIsDeterministic) {
  double c1 = 0.0;
  double c2 = 0.0;
  SequentialBaseline(AppKind::kLu, kSizeTest, nullptr, nullptr, &c1);
  SequentialBaseline(AppKind::kLu, kSizeTest, nullptr, nullptr, &c2);
  EXPECT_EQ(c1, c2);
}

TEST(IntegrationTest, StatisticsScaleWithSharing) {
  // Em3d's neighbour sharing at 8 nodes produces substantially more write
  // notices than at 2 nodes (more cross-unit boundaries).
  const AppRunResult small = RunApp(
      AppKind::kEm3d, ShapeConfig(ProtocolVariant::kTwoLevel, 2, 1), kSizeTest);
  const AppRunResult large = RunApp(
      AppKind::kEm3d, ShapeConfig(ProtocolVariant::kTwoLevel, 8, 1), kSizeTest);
  ASSERT_TRUE(small.verified);
  ASSERT_TRUE(large.verified);
  EXPECT_GT(large.report.total.Get(Counter::kWriteNotices),
            small.report.total.Get(Counter::kWriteNotices));
}

}  // namespace
}  // namespace cashmere
