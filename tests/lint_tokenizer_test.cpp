// Unit tests for the csm_lint lexer (tools/lint/lexer.*): the lexical
// corner cases the old per-line regex pass got wrong — raw strings,
// escaped quotes, line continuations, comment markers inside literals,
// and block comments spanning waiver windows.
#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using csmlint::Lex;
using csmlint::LexedFile;
using csmlint::TokKind;

std::vector<std::string> IdentTexts(const LexedFile& lf) {
  std::vector<std::string> out;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kIdent) {
      out.push_back(t.text);
    }
  }
  return out;
}

bool HasIdent(const LexedFile& lf, const std::string& name) {
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kIdent && t.text == name) {
      return true;
    }
  }
  return false;
}

TEST(LintLexer, LineCommentProducesNoTokens) {
  const LexedFile lf = Lex("int x; // memcpy(dst, src, n)\n");
  EXPECT_FALSE(HasIdent(lf, "memcpy"));
  EXPECT_TRUE(HasIdent(lf, "x"));
  ASSERT_EQ(lf.comment_text.size(), 2u);
  EXPECT_NE(lf.comment_text[0].find("memcpy"), std::string::npos);
  EXPECT_EQ(lf.comment_only[0], 0);  // the line carries code too
}

TEST(LintLexer, BlockCommentSpansLinesAndKeepsWaiverWindow) {
  // A block comment spanning lines: every covered line is comment-only, so
  // a waiver inside it reaches the first code line below.
  const std::string src =
      "int before;\n"
      "/* csm-lint: allow(raw-page-copy) -- spans\n"
      "   a waiver window */\n"
      "int after;\n";
  const LexedFile lf = Lex(src);
  EXPECT_TRUE(HasIdent(lf, "before"));
  EXPECT_TRUE(HasIdent(lf, "after"));
  EXPECT_FALSE(HasIdent(lf, "allow"));
  ASSERT_GE(lf.comment_only.size(), 4u);
  EXPECT_EQ(lf.comment_only[0], 0);
  EXPECT_EQ(lf.comment_only[1], 1);
  EXPECT_EQ(lf.comment_only[2], 1);
  EXPECT_EQ(lf.comment_only[3], 0);
  EXPECT_NE(lf.comment_text[1].find("csm-lint:"), std::string::npos);
}

TEST(LintLexer, SlashSlashInsideStringIsNotAComment) {
  const LexedFile lf = Lex("const char* url = \"http://x//y\"; int z;\n");
  EXPECT_TRUE(HasIdent(lf, "z"));  // tokenization continued past the "//"
  ASSERT_EQ(lf.comment_text.size(), 2u);
  EXPECT_TRUE(lf.comment_text[0].empty());
  bool found = false;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kString) {
      EXPECT_EQ(t.text, "\"http://x//y\"");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, EscapedQuotesStayInsideTheLiteral) {
  const LexedFile lf = Lex("f(\"a \\\" b\", memchr);\n");
  ASSERT_EQ(IdentTexts(lf), (std::vector<std::string>{"f", "memchr"}));
  ASSERT_EQ(lf.tokens[2].kind, TokKind::kString);
  EXPECT_EQ(lf.tokens[2].text, "\"a \\\" b\"");
}

TEST(LintLexer, StringContentsAreOpaqueToRuleTokens) {
  const LexedFile lf = Lex("log(\"memcpy into page\"); memmove(a, b, 4);\n");
  EXPECT_FALSE(HasIdent(lf, "memcpy"));   // inside the literal
  EXPECT_TRUE(HasIdent(lf, "memmove"));   // real code token
}

TEST(LintLexer, RawStringSwallowsQuotesCommentsAndNewlines) {
  const std::string src =
      "auto s = R\"lint(line one \" // not a comment\n"
      "memcpy(p, q, n) /* still literal */\n"
      ")lint\"; int tail;\n";
  const LexedFile lf = Lex(src);
  EXPECT_FALSE(HasIdent(lf, "memcpy"));
  EXPECT_TRUE(HasIdent(lf, "tail"));
  // No comment text was recorded anywhere in the literal body.
  for (const auto& c : lf.comment_text) {
    EXPECT_TRUE(c.empty());
  }
  // The literal body lines are code lines, not waiver-window lines.
  ASSERT_GE(lf.comment_only.size(), 3u);
  EXPECT_EQ(lf.comment_only[1], 0);
  // The whole literal is one kString token starting on line 0.
  bool found = false;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kString && t.text.rfind("R\"lint(", 0) == 0) {
      EXPECT_EQ(t.line, 0);
      EXPECT_NE(t.text.find("memcpy"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, LineContinuationGluesIdentifiers) {
  // A backslash-newline splice inside an identifier: one token, and the
  // fragments never appear on their own.
  const LexedFile lf = Lex("int mem\\\ncpy_count;\n");
  EXPECT_TRUE(HasIdent(lf, "memcpy_count"));
  EXPECT_FALSE(HasIdent(lf, "mem"));
  EXPECT_FALSE(HasIdent(lf, "cpy_count"));
}

TEST(LintLexer, LineContinuationExtendsLineComment) {
  // A // comment ending in a backslash continues onto the next physical
  // line — the next line's text is comment, not code.
  const LexedFile lf = Lex("// waived here \\\nmemset(p, 0, n);\nint x;\n");
  EXPECT_FALSE(HasIdent(lf, "memset"));
  EXPECT_TRUE(HasIdent(lf, "x"));
  ASSERT_GE(lf.comment_only.size(), 2u);
  EXPECT_EQ(lf.comment_only[0], 1);
  EXPECT_EQ(lf.comment_only[1], 1);
  EXPECT_NE(lf.comment_text[1].find("memset"), std::string::npos);
}

TEST(LintLexer, PreprocessorLineIsOneOpaqueToken) {
  const std::string src =
      "#include \"proto//memcpy.h\"\n"
      "#define COPY(d, s) \\\n"
      "  memcpy(d, s, 4)\n"
      "int x;\n";
  const LexedFile lf = Lex(src);
  EXPECT_FALSE(HasIdent(lf, "memcpy"));
  EXPECT_TRUE(HasIdent(lf, "x"));
  int pp = 0;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kPp) {
      ++pp;
    }
  }
  EXPECT_EQ(pp, 2);  // the spliced #define is a single logical line
}

TEST(LintLexer, TokenLinesAreZeroBasedAndStable) {
  const LexedFile lf = Lex("int a;\nint b;\n\nint c;\n");
  std::vector<int> lines;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kIdent && t.text != "int") {
      lines.push_back(t.line);
    }
  }
  EXPECT_EQ(lines, (std::vector<int>{0, 1, 3}));
}

TEST(LintLexer, MultiCharPunctuatorsDoNotSplit) {
  const LexedFile lf = Lex("a->Write(x); b <<= 2; c <=> d;\n");
  std::vector<std::string> puncts;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kPunct) {
      puncts.push_back(t.text);
    }
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<=>"), puncts.end());
}

TEST(LintLexer, CharLiteralsAndDigitSeparators) {
  const LexedFile lf = Lex("char q = '\\''; auto n = 1'000'000u;\n");
  bool char_ok = false;
  bool num_ok = false;
  for (const auto& t : lf.tokens) {
    if (t.kind == TokKind::kChar && t.text == "'\\''") {
      char_ok = true;
    }
    if (t.kind == TokKind::kNumber && t.text == "1'000'000u") {
      num_ok = true;
    }
  }
  EXPECT_TRUE(char_ok);
  EXPECT_TRUE(num_ok);
}

}  // namespace
