// Property-based tests: randomized data-race-free workloads whose final
// state is computable independently; run across a parameterized sweep of
// protocols and cluster shapes. Each processor owns a random set of words
// scattered across pages (maximum false sharing) and mutates them through
// random rounds of barrier- and lock-synchronized phases.
#include <gtest/gtest.h>

#include <vector>

#include "cashmere/common/rng.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

struct Sweep {
  ProtocolVariant protocol;
  int nodes;
  int ppn;
  std::uint64_t seed;
};

std::string SweepName(const testing::TestParamInfo<Sweep>& info) {
  std::string name = std::string(ProtocolVariantName(info.param.protocol)) + "_" +
                     std::to_string(info.param.nodes) + "x" +
                     std::to_string(info.param.ppn) + "_s" +
                     std::to_string(info.param.seed);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

class RandomWorkloadTest : public testing::TestWithParam<Sweep> {};

// Every processor owns words i with owner(i) == proc; each round every
// processor applies a deterministic mutation to its words, with barriers
// between rounds so remote reads are well defined. Readers check a random
// subset of *other* processors' words from the previous round.
TEST_P(RandomWorkloadTest, ScatteredOwnershipWithBarriers) {
  const Sweep s = GetParam();
  Config cfg;
  cfg.protocol = s.protocol;
  cfg.nodes = s.nodes;
  cfg.procs_per_node = s.ppn;
  cfg.heap_bytes = 16 * kPageBytes;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 3.0;
  Runtime rt(cfg);
  constexpr int kWords = 16 * 2048;
  constexpr int kRounds = 6;
  const int procs = cfg.total_procs();
  const GlobalAddr a = rt.heap().AllocPageAligned(kWords * sizeof(std::uint32_t));

  // Deterministic scattered ownership.
  std::vector<int> owner(kWords);
  SplitMix64 rng(s.seed);
  for (int i = 0; i < kWords; ++i) {
    owner[i] = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(procs)));
  }

  std::atomic<int> check_failures{0};
  rt.Run([&](Context& ctx) {
    std::uint32_t* p = ctx.Ptr<std::uint32_t>(a);
    const int me = ctx.proc();
    ctx.Barrier(0);
    ctx.InitDone();
    for (int round = 1; round <= kRounds; ++round) {
      ctx.Poll();
      for (int i = me; i < kWords; i += 97) {  // sparse touch pattern
        if (owner[i] == me) {
          p[i] = static_cast<std::uint32_t>(round * 1000003 + i);
        }
      }
      ctx.Barrier(0);
      // Verify a sample of other owners' words written this round.
      SplitMix64 vr(s.seed + static_cast<std::uint64_t>(round) * 131 + me);
      for (int k = 0; k < 50; ++k) {
        const int i = static_cast<int>(vr.NextBelow(kWords));
        const int o = owner[i];
        const bool touched = (i % 97) == (o % 97) && i >= o &&
                             ((i - o) % 97 == 0);
        if (touched && o != me) {
          const std::uint32_t expect = static_cast<std::uint32_t>(round * 1000003 + i);
          if (p[i] != expect) {
            check_failures.fetch_add(1);
          }
        }
      }
      ctx.Barrier(0);
    }
  });
  EXPECT_EQ(check_failures.load(), 0);

  // Final state: every touched word holds its last round's value.
  std::vector<std::uint32_t> out(kWords);
  rt.CopyOut(a, out.data(), out.size() * sizeof(std::uint32_t));
  int wrong = 0;
  for (int i = 0; i < kWords; ++i) {
    const int o = owner[i];
    const bool touched = i >= o && (i - o) % 97 == 0;
    if (touched && out[i] != static_cast<std::uint32_t>(kRounds * 1000003 + i)) {
      ++wrong;
    }
  }
  EXPECT_EQ(wrong, 0);
}

// Lock-based property: random increments to shared counters under a small
// lock set; totals must be exact for every protocol.
TEST_P(RandomWorkloadTest, RandomLockedIncrements) {
  const Sweep s = GetParam();
  Config cfg;
  cfg.protocol = s.protocol;
  cfg.nodes = s.nodes;
  cfg.procs_per_node = s.ppn;
  cfg.heap_bytes = 8 * kPageBytes;
  cfg.cost.time_scale = 3.0;
  cfg.first_touch = false;
  Runtime rt(cfg);
  constexpr int kCounters = 64;
  constexpr int kOps = 30;
  const GlobalAddr a = rt.heap().AllocPageAligned(kCounters * sizeof(long));
  std::vector<std::vector<int>> plan(static_cast<std::size_t>(cfg.total_procs()));
  std::vector<long> expected(kCounters, 0);
  SplitMix64 rng(s.seed * 7 + 5);
  for (int p = 0; p < cfg.total_procs(); ++p) {
    for (int k = 0; k < kOps; ++k) {
      const int c = static_cast<int>(rng.NextBelow(kCounters));
      plan[static_cast<std::size_t>(p)].push_back(c);
      expected[c] += p + 1;
    }
  }
  rt.Run([&](Context& ctx) {
    long* counters = ctx.Ptr<long>(a);
    for (const int c : plan[static_cast<std::size_t>(ctx.proc())]) {
      ctx.LockAcquire(c % 8);
      counters[c] += ctx.proc() + 1;
      ctx.LockRelease(c % 8);
      ctx.Poll();
    }
  });
  std::vector<long> out(kCounters);
  rt.CopyOut(a, out.data(), out.size() * sizeof(long));
  EXPECT_EQ(out, expected);
}

std::vector<Sweep> MakeSweeps() {
  std::vector<Sweep> sweeps;
  const ProtocolVariant variants[] = {
      ProtocolVariant::kTwoLevel, ProtocolVariant::kTwoLevelShootdown,
      ProtocolVariant::kTwoLevelGlobalLock, ProtocolVariant::kOneLevelDiff,
      ProtocolVariant::kOneLevelWriteDouble};
  std::uint64_t seed = 1;
  for (const auto v : variants) {
    sweeps.push_back({v, 2, 2, seed++});
    sweeps.push_back({v, 4, 4, seed++});
  }
  sweeps.push_back({ProtocolVariant::kTwoLevel, 8, 4, 99});
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(Sweeps, RandomWorkloadTest, testing::ValuesIn(MakeSweeps()),
                         SweepName);

}  // namespace
}  // namespace cashmere
