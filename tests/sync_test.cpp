// Tests for the distributed synchronization primitives, exercised through
// the full runtime (locks need consistency hooks and contexts).
#include <gtest/gtest.h>

#include <atomic>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config SyncConfig(int nodes, int ppn, ProtocolVariant v = ProtocolVariant::kTwoLevel) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 512 * 1024;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = false;
  return cfg;
}

TEST(ClusterLockTest, MutualExclusionAcrossNodes) {
  Runtime rt(SyncConfig(4, 2));
  const GlobalAddr counter = rt.AllocArray<long>(1);
  const GlobalAddr inside = rt.AllocArray<long>(1);
  std::atomic<int> violations{0};
  rt.Run([&](Context& ctx) {
    for (int i = 0; i < 20; ++i) {
      ctx.LockAcquire(0);
      long* in = ctx.Ptr<long>(inside);
      if (*in != 0) {
        violations.fetch_add(1);
      }
      *in = 1;
      long* c = ctx.Ptr<long>(counter);
      *c = *c + 1;
      *in = 0;
      ctx.LockRelease(0);
      ctx.Poll();
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(rt.Read<long>(counter), 20L * 8);
}

TEST(ClusterLockTest, IndependentLocksDoNotInterfere) {
  Runtime rt(SyncConfig(2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(2 * kPageBytes);
  rt.Run([&](Context& ctx) {
    const int lock_id = ctx.proc() % 2;
    const GlobalAddr mine = a + static_cast<GlobalAddr>(lock_id) * kPageBytes;
    for (int i = 0; i < 10; ++i) {
      ctx.LockAcquire(lock_id);
      long* p = ctx.Ptr<long>(mine);
      *p = *p + 1;
      ctx.LockRelease(lock_id);
      ctx.Poll();
    }
  });
  EXPECT_EQ(rt.Read<long>(a), 20L);
  EXPECT_EQ(rt.Read<long>(a + kPageBytes), 20L);
}

TEST(ClusterLockTest, VirtualTimeChainsThroughLock) {
  Runtime rt(SyncConfig(2, 1));
  const GlobalAddr a = rt.AllocArray<long>(1);
  rt.Run([&](Context& ctx) {
    for (int i = 0; i < 5; ++i) {
      ctx.LockAcquire(0);
      long* p = ctx.Ptr<long>(a);
      *p = *p + 1;
      ctx.LockRelease(0);
      ctx.Poll();
    }
  });
  // 10 sequential critical sections with lock transfer costs: execution
  // time must exceed 10 lock acquires' worth of protocol time.
  EXPECT_GT(rt.report().exec_time_ns,
            10 * rt.config().costs.LockAcquireNs(true));
}

TEST(ClusterBarrierTest, AllArriveBeforeAnyDeparts) {
  Runtime rt(SyncConfig(4, 2));
  std::atomic<int> arrived{0};
  std::atomic<int> violations{0};
  rt.Run([&](Context& ctx) {
    for (int round = 0; round < 10; ++round) {
      arrived.fetch_add(1);
      ctx.Barrier(0);
      if (arrived.load() % rt.config().total_procs() != 0) {
        violations.fetch_add(1);
      }
      ctx.Barrier(1);
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(rt.report().total.Get(Counter::kBarriers), 20u);
}

TEST(ClusterBarrierTest, ManyEpisodesReuseEpisodeSlots) {
  Runtime rt(SyncConfig(2, 2));
  std::atomic<long> sum{0};
  rt.Run([&](Context& ctx) {
    for (int round = 0; round < 100; ++round) {
      sum.fetch_add(1);
      ctx.Barrier(0);
    }
  });
  EXPECT_EQ(sum.load(), 400);
}

TEST(ClusterBarrierTest, ReconcilesVirtualClocksToMax) {
  Runtime rt(SyncConfig(2, 1));
  std::vector<VirtTime> after(2, 0);
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 0) {
      // Give processor 0 a large artificial head start in virtual time.
      ctx.clock().Charge(ctx.stats(), TimeCategory::kProtocol, 50'000'000);
    }
    ctx.Barrier(0);
    after[static_cast<std::size_t>(ctx.proc())] = ctx.clock().now();
  });
  EXPECT_GE(after[1], 50'000'000u);  // slow processor pulled forward
}

TEST(ClusterFlagTest, MonotonicValuesReleaseWaiters) {
  Runtime rt(SyncConfig(2, 2));
  const GlobalAddr data = rt.AllocArray<int>(64);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(data);
    if (ctx.proc() == 0) {
      for (int step = 1; step <= 8; ++step) {
        p[step] = step * step;
        ctx.FlagSet(0, static_cast<std::uint64_t>(step));
      }
    } else {
      for (int step = 1; step <= 8; ++step) {
        ctx.FlagWaitGe(0, static_cast<std::uint64_t>(step));
        EXPECT_EQ(p[step], step * step);
      }
    }
  });
  EXPECT_GT(rt.report().total.Get(Counter::kFlagAcquires), 0u);
}

TEST(ClusterFlagTest, ChainOfFlagsOrdersPipelineStages) {
  Runtime rt(SyncConfig(4, 1));
  const GlobalAddr data = rt.AllocArray<int>(16);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(data);
    const int me = ctx.proc();
    if (me == 0) {
      p[0] = 1;
      ctx.FlagSet(0, 1);
    } else {
      ctx.FlagWaitGe(me - 1, 1);
      p[me] = p[me - 1] + 1;
      ctx.FlagSet(me, 1);
    }
    ctx.FlagWaitGe(3, 1);
    EXPECT_EQ(p[3], 4);
  });
}

TEST(SyncTest, OneLevelLockCostsDiffer) {
  // Table 1: 11 us for one-level lock acquire vs 19 us for two-level.
  Runtime rt2(SyncConfig(2, 1, ProtocolVariant::kTwoLevel));
  Runtime rt1(SyncConfig(2, 1, ProtocolVariant::kOneLevelDiff));
  EXPECT_EQ(rt2.config().costs.LockAcquireNs(rt2.config().two_level()),
            CostModel::UsToNs(19.0));
  EXPECT_EQ(rt1.config().costs.LockAcquireNs(rt1.config().two_level()),
            CostModel::UsToNs(11.0));
}

}  // namespace
}  // namespace cashmere
