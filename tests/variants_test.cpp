// Protocol-variant behavioural tests: 2LS shootdowns, 1L write-doubling
// cost accounting, the global-lock ablation, home-node optimization, and
// interrupt-mode delivery costs.
#include <gtest/gtest.h>

#include "cashmere/common/spin.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config VConfig(ProtocolVariant v, int nodes, int ppn) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 512 * 1024;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = false;
  return cfg;
}

// A deterministic false-sharing workload with a *concurrent* local writer:
// processor 1 (node 0) writes its word and holds the write mapping (it
// never synchronizes mid-round; a harness-level atomic — not DSM — tells
// the others it wrote). Processor 3 (node 1, the page's home) updates a
// third word and releases; processor 0 (node 0) then takes the write
// notice and must update node 0's copy while processor 1 still holds a
// write mapping: 2L merges with an incoming diff, 2LS shoots processor 1
// down — exactly the Sections 2.5/2.6 scenario. The page is in superpage 1
// (home unit 1), so node 0's processors are not at the master and use
// twins.
void ConcurrentWriterWorkload(Runtime& rt, GlobalAddr a, int rounds) {
  std::atomic<int> go1{1};
  std::atomic<int> done1{0};
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    Backoff backoff;
    // Warm-up: everyone reads the page so nobody claims exclusive mode.
    (void)p[0];
    ctx.Barrier(0);
    for (int round = 1; round <= rounds; ++round) {
      if (ctx.proc() == 1) {
        // Concurrent local writer: writes its word, then holds the write
        // mapping (it performs no DSM synchronization inside the round, so
        // nothing downgrades it; a harness-level atomic sequences rounds).
        while (go1.load(std::memory_order_acquire) < round) {
          ctx.Poll();
          backoff.Pause();
        }
        p[64] += 1;
        done1.store(round, std::memory_order_release);
      } else if (ctx.proc() == 0) {
        while (done1.load(std::memory_order_acquire) < round) {
          ctx.Poll();
          backoff.Pause();
        }
        ctx.FlagSet(2, static_cast<std::uint64_t>(round));
      } else if (ctx.proc() == 3) {
        ctx.FlagWaitGe(2, static_cast<std::uint64_t>(round));
        p[128] += 1;  // home-unit writer: master updated directly
        ctx.FlagSet(3, static_cast<std::uint64_t>(round));
      }
      if (ctx.proc() == 0) {
        ctx.FlagWaitGe(3, static_cast<std::uint64_t>(round));
        // This read faults (the write notice invalidated node 0's copy)
        // while processor 1 still holds its write mapping: the update must
        // merge (2L incoming diff) or shoot processor 1 down (2LS).
        EXPECT_EQ(p[128], round);
        go1.store(round + 1, std::memory_order_release);
      }
      ctx.Poll();
    }
    ctx.Barrier(0);
  });
}

TEST(VariantsTest, ShootdownProtocolRecordsShootdowns) {
  Runtime rt(VConfig(ProtocolVariant::kTwoLevelShootdown, 2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(8 * kPageBytes) + 4 * kPageBytes;
  constexpr int kRounds = 10;
  ConcurrentWriterWorkload(rt, a, kRounds);
  
  EXPECT_EQ(rt.Read<int>(a + 64 * 4), kRounds);
  EXPECT_EQ(rt.Read<int>(a + 128 * 4), kRounds);
  // 2LS shoots down the concurrent local writer instead of merging.
  EXPECT_GT(rt.report().total.Get(Counter::kShootdowns), 0u);
  EXPECT_EQ(rt.report().total.Get(Counter::kIncomingDiffs), 0u);
}

TEST(VariantsTest, TwoLevelUsesIncomingDiffsInsteadOfShootdowns) {
  Runtime rt(VConfig(ProtocolVariant::kTwoLevel, 2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(8 * kPageBytes) + 4 * kPageBytes;
  constexpr int kRounds = 10;
  ConcurrentWriterWorkload(rt, a, kRounds);
  
  EXPECT_EQ(rt.Read<int>(a + 64 * 4), kRounds);
  EXPECT_EQ(rt.Read<int>(a + 128 * 4), kRounds);
  EXPECT_EQ(rt.report().total.Get(Counter::kShootdowns), 0u);
  EXPECT_GT(rt.report().total.Get(Counter::kIncomingDiffs), 0u);
}

TEST(VariantsTest, ShootdownCreatesMoreTwins) {
  // 2LS discards the twin at every flush and recreates it on the next
  // write fault (Section 2.6), so it performs at least as many twin
  // creations as 2L on the same workload.
  const int rounds = 10;
  std::uint64_t twins_2l = 0;
  std::uint64_t twins_2ls = 0;
  {
    Runtime rt(VConfig(ProtocolVariant::kTwoLevel, 2, 2));
    const GlobalAddr a = rt.heap().AllocPageAligned(8 * kPageBytes) + 4 * kPageBytes;
    ConcurrentWriterWorkload(rt, a, rounds);
    twins_2l = rt.report().total.Get(Counter::kTwinCreations);
  }
  {
    Runtime rt(VConfig(ProtocolVariant::kTwoLevelShootdown, 2, 2));
    const GlobalAddr a = rt.heap().AllocPageAligned(8 * kPageBytes) + 4 * kPageBytes;
    ConcurrentWriterWorkload(rt, a, rounds);
    twins_2ls = rt.report().total.Get(Counter::kTwinCreations);
  }
  EXPECT_GE(twins_2ls, twins_2l);
}

TEST(VariantsTest, WriteDoublingChargesDoublingCategory) {
  Runtime rt(VConfig(ProtocolVariant::kOneLevelWriteDouble, 2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(2 * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int round = 0; round < 4; ++round) {
      for (int i = ctx.proc(); i < 4096; i += ctx.total_procs()) {
        p[i] = round + i;
      }
      ctx.Barrier(0);
    }
  });
  const Stats& s = rt.report().total;
  EXPECT_GT(s.time_ns[static_cast<int>(TimeCategory::kWriteDoubling)], 0u);
}

TEST(VariantsTest, OneLevelDiffDoesNotChargeDoubling) {
  Runtime rt(VConfig(ProtocolVariant::kOneLevelDiff, 2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(2 * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int round = 0; round < 4; ++round) {
      for (int i = ctx.proc(); i < 4096; i += ctx.total_procs()) {
        p[i] = round + i;
      }
      ctx.Barrier(0);
    }
  });
  EXPECT_EQ(rt.report().total.time_ns[static_cast<int>(TimeCategory::kWriteDoubling)], 0u);
}

TEST(VariantsTest, GlobalLockAblationCostsMorePerDirectoryUpdate) {
  // Same workload under 2L and 2L-globallock: the lock-based variant
  // charges 16 us instead of 5 us per directory update, so its protocol
  // time is at least as large.
  auto run = [](ProtocolVariant v) {
    Runtime rt(VConfig(v, 2, 2));
    const GlobalAddr a = rt.heap().AllocPageAligned(4 * kPageBytes);
    rt.Run([&](Context& ctx) {
      int* p = ctx.Ptr<int>(a);
      for (int round = 0; round < 4; ++round) {
        for (int i = ctx.proc(); i < 8192; i += ctx.total_procs()) {
          p[i] = round + i;
        }
        ctx.Barrier(0);
      }
    });
    return rt.report();
  };
  const StatsReport r_free = run(ProtocolVariant::kTwoLevel);
  const StatsReport r_lock = run(ProtocolVariant::kTwoLevelGlobalLock);
  // Comparable work...
  EXPECT_TRUE(r_lock.total.Get(Counter::kDirectoryUpdates) > 0);
  // ...but higher protocol time per directory update for the lock variant.
  const double per_update_free =
      static_cast<double>(r_free.total.time_ns[static_cast<int>(TimeCategory::kProtocol)]) /
      static_cast<double>(r_free.total.Get(Counter::kDirectoryUpdates));
  const double per_update_lock =
      static_cast<double>(r_lock.total.time_ns[static_cast<int>(TimeCategory::kProtocol)]) /
      static_cast<double>(r_lock.total.Get(Counter::kDirectoryUpdates));
  EXPECT_GT(per_update_lock, per_update_free * 0.9);
}

TEST(VariantsTest, HomeOptSharesMasterFramesWithinNode) {
  // One-level with home-opt: a processor on the home processor's node
  // works directly on the master frame — no page transfers for it.
  Config cfg = VConfig(ProtocolVariant::kOneLevelDiff, 2, 2);
  cfg.home_opt = true;
  Runtime rt(cfg);
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);  // home: unit 0
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 128; ++i) {
        p[i] = i;
      }
    }
    ctx.Barrier(0);
    if (ctx.proc() == 1) {  // same SMP node as home processor 0
      long sum = 0;
      for (int i = 0; i < 128; ++i) {
        sum += p[i];
      }
      EXPECT_EQ(sum, 127L * 128 / 2);
    }
    ctx.Barrier(0);
  });
  // Processor 1 read through the shared master frame: at most the remote
  // node's processors needed transfers, and they did not touch the page.
  EXPECT_EQ(rt.report().total.Get(Counter::kPageTransfers), 0u);
}

TEST(VariantsTest, HomeOptCorrectAcrossNodes) {
  Config cfg = VConfig(ProtocolVariant::kOneLevelDiff, 2, 2);
  cfg.home_opt = true;
  Runtime rt(cfg);
  const GlobalAddr a = rt.heap().AllocPageAligned(2 * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    p[ctx.proc() * 128] = ctx.proc() + 1;
    ctx.Barrier(0);
    for (int q = 0; q < ctx.total_procs(); ++q) {
      EXPECT_EQ(p[q * 128], q + 1);
    }
    ctx.Barrier(0);
  });
}

TEST(VariantsTest, InterruptDeliveryCostsMoreThanPolling) {
  auto run = [](DeliveryMode mode) {
    Config cfg = VConfig(ProtocolVariant::kTwoLevel, 2, 1);
    cfg.delivery = mode;
    Runtime rt(cfg);
    const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
    rt.Run([&](Context& ctx) {
      int* p = ctx.Ptr<int>(a);
      for (int round = 1; round <= 6; ++round) {
        if (ctx.proc() == 0) {
          p[round] = round;
        }
        ctx.Barrier(0);
        if (ctx.proc() == 1) {
          EXPECT_EQ(p[round], round);
        }
        ctx.Barrier(0);
      }
    });
    return rt.report().exec_time_ns;
  };
  const VirtTime polling = run(DeliveryMode::kPolling);
  const VirtTime interrupts = run(DeliveryMode::kInterrupt);
  EXPECT_GT(interrupts, polling);
}

}  // namespace
}  // namespace cashmere
