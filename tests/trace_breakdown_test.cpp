// Figure-6-style cross-check: re-derive the run's headline statistics and
// time breakdown from the structured trace stream alone (DeriveBreakdown)
// and assert agreement with the independently maintained Stats aggregates.
// The two instrumentation paths share no code below the emit sites, so
// drift in either — an edge that loses its TraceEmit, a counter bumped
// twice, an episode left unclosed — shows up as disagreement here.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "cashmere/apps/app.hpp"
#include "cashmere/common/trace_check.hpp"
#include "cashmere/mc/hub.hpp"

namespace cashmere {
namespace {

AppRunResult TracedSorRun() {
  Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.cost.time_scale = 10.0;
  cfg.cost.scale = 1.0;  // fixed model: no auto-calibration runs
  cfg.trace.enabled = true;
  cfg.trace.ring_events = 1u << 16;  // large enough that nothing drops
  return RunApp(AppKind::kSor, cfg, kSizeTest);
}

TEST(TraceBreakdownTest, EventCountsMatchStatsCounters) {
  const AppRunResult r = TracedSorRun();
  ASSERT_TRUE(r.verified);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_TRUE(r.trace->complete()) << "ring wrapped; enlarge trace.ring_events";

  const std::vector<TraceEvent> merged = r.trace->Merged();
  const TraceBreakdown b = DeriveBreakdown(
      merged, r.cfg.total_procs(),
      {static_cast<int>(Traffic::kPageData), static_cast<int>(Traffic::kDiffData),
       static_cast<int>(Traffic::kWriteNotice)});
  const Stats& total = r.report.total;

  EXPECT_EQ(b.read_faults, total.Get(Counter::kReadFaults));
  EXPECT_EQ(b.write_faults, total.Get(Counter::kWriteFaults));
  EXPECT_EQ(b.twin_creates, total.Get(Counter::kTwinCreations));
  EXPECT_EQ(b.dir_updates, total.Get(Counter::kDirectoryUpdates));
  EXPECT_EQ(b.unpaired_episodes, 0u);
  // Every processor passes the same barriers: the counted app episodes plus
  // the uncounted internal ones (2 for the InitDone collective, 2 for the
  // end-of-run quiesce), which trace like any other barrier.
  EXPECT_EQ(b.barriers, total.Get(Counter::kBarriers) + 4);
  // The MC hub's "Data" row (page data + diffs + write notices) must equal
  // the byte sum of the corresponding kMcWrite events: the hub accounts and
  // emits at the same chokepoint, so inequality means dropped or double
  // events.
  EXPECT_EQ(b.data_bytes, total.Get(Counter::kDataBytes));
  EXPECT_GE(b.total_bytes, b.data_bytes);
  // Each kProtectRange event is one real mprotect syscall; the batch engine
  // counts both at commit time, so the trace-derived totals must agree with
  // the Figure-6 counters exactly.
  EXPECT_EQ(b.mprotect_calls, total.Get(Counter::kMprotectCalls));
  EXPECT_EQ(b.mprotect_pages_coalesced, total.Get(Counter::kMprotectPagesCoalesced));
  // The stream itself must also satisfy the replay invariants.
  const TraceCheckResult check = CheckTrace(merged, r.cfg, r.trace->TotalDropped());
  EXPECT_TRUE(check.ok) << check.ToString();
}

TEST(TraceBreakdownTest, EpisodeTimesAgreeWithTimeCategories) {
  const AppRunResult r = TracedSorRun();
  ASSERT_NE(r.trace, nullptr);
  ASSERT_TRUE(r.trace->complete());

  const TraceBreakdown b =
      DeriveBreakdown(r.trace->Merged(), r.cfg.total_procs(), {});
  const Stats& total = r.report.total;

  // Stats side of Figure 6: everything the protocol charged outside user
  // compute, summed over processors.
  const std::uint64_t stats_nonuser_ns =
      total.time_ns[static_cast<int>(TimeCategory::kProtocol)] +
      total.time_ns[static_cast<int>(TimeCategory::kCommWait)] +
      total.time_ns[static_cast<int>(TimeCategory::kPolling)] +
      total.time_ns[static_cast<int>(TimeCategory::kWriteDoubling)];
  // Trace side: virtual time inside fault and barrier episodes. SOR
  // synchronizes only through barriers, so these episodes cover all
  // non-user time except the quiesce flush (charged between the final user
  // statement and the first internal barrier) and per-iteration Poll calls
  // outside any episode — both small on this configuration.
  const std::uint64_t trace_nonuser_ns = b.fault_ns + b.barrier_ns;

  ASSERT_GT(stats_nonuser_ns, 0u);
  ASSERT_GT(trace_nonuser_ns, 0u);
  const double ratio =
      static_cast<double>(trace_nonuser_ns) / static_cast<double>(stats_nonuser_ns);
  std::cout << "[breakdown] fault_ns=" << b.fault_ns << " barrier_ns=" << b.barrier_ns
            << " stats_nonuser_ns=" << stats_nonuser_ns << " ratio=" << ratio << "\n";
  // Empirically the ratio sits at ~0.997 (the missing ~0.3% is the quiesce
  // flush noted above); ±5% leaves headroom without letting a lost episode
  // class slip through.
  EXPECT_GT(ratio, 0.95) << "trace episodes " << trace_nonuser_ns
                         << " ns vs stats non-user " << stats_nonuser_ns << " ns";
  EXPECT_LT(ratio, 1.05) << "trace episodes " << trace_nonuser_ns
                         << " ns vs stats non-user " << stats_nonuser_ns << " ns";
}

}  // namespace
}  // namespace cashmere
