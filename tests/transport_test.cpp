// McTransport contract tests (DESIGN.md §14), parameterized over both
// backends so inproc and shm-solo pin the same Execute semantics: word
// atomicity, stream/run scatter parity against plain memcpy, and the
// total order of the ordered broadcast/exchange pair. Cluster-mode tests
// drive a real fork()ed cluster through the in-process ShmLauncher:
// segment bootstrap over SCM_RIGHTS, a remote write proven visible in the
// peer process's own mapping, the barrier of last resort, and the
// teardown guarantee when a child is killed.
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cashmere/common/config.hpp"
#include "cashmere/common/rng.hpp"
#include "cashmere/mc/control_plane.hpp"
#include "cashmere/mc/inproc_transport.hpp"
#include "cashmere/mc/shm_transport.hpp"
#include "cashmere/mc/transport.hpp"

namespace cashmere {
namespace {

enum class Backend { kInProc, kShmSolo };

std::unique_ptr<McTransport> Make(Backend b) {
  if (b == Backend::kInProc) {
    return std::make_unique<InProcTransport>();
  }
  return std::make_unique<ShmTransport>();  // solo: no cluster, real memfd lock page
}

class TransportTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { t_ = Make(GetParam()); }
  std::unique_ptr<McTransport> t_;
};

INSTANTIATE_TEST_SUITE_P(Backends, TransportTest,
                         ::testing::Values(Backend::kInProc, Backend::kShmSolo),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kInProc ? "inproc" : "shm_solo";
                         });

TEST_P(TransportTest, WordWriteStores) {
  std::uint32_t word = 0;
  EXPECT_EQ(t_->Execute(McOp::Word(&word, 0xdeadbeefu, Traffic::kDirectory)), 0u);
  EXPECT_EQ(word, 0xdeadbeefu);
}

TEST_P(TransportTest, StreamMatchesMemcpy) {
  constexpr std::size_t kWords = 777;
  std::vector<std::uint32_t> src(kWords);
  SplitMix64 rng(11);
  for (auto& w : src) {
    w = static_cast<std::uint32_t>(rng.Next());
  }
  std::vector<std::uint32_t> dst(kWords, 0);
  t_->Execute(McOp::Stream(dst.data(), src.data(), kWords, Traffic::kPageData));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), kWords * kWordBytes), 0);
}

TEST_P(TransportTest, RunScatterMatchesMemcpy) {
  constexpr std::size_t kBaseWords = 512;
  std::vector<std::uint32_t> base(kBaseWords, 0u);
  std::vector<std::uint32_t> expect(kBaseWords, 0u);
  SplitMix64 rng(12);
  // A handful of RLE runs at random offsets; the reference applies each with
  // plain memcpy at the same word offset.
  for (int r = 0; r < 16; ++r) {
    const std::size_t off = rng.NextBelow(kBaseWords - 32);
    const std::size_t n = 1 + rng.NextBelow(31);
    std::vector<std::uint32_t> payload(n);
    for (auto& w : payload) {
      w = static_cast<std::uint32_t>(rng.Next());
    }
    t_->Execute(McOp::Run(base.data(), off, payload.data(), n, Traffic::kDiffData,
                          /*header_bytes=*/8));
    std::memcpy(expect.data() + off, payload.data(), n * kWordBytes);
  }
  EXPECT_EQ(std::memcmp(base.data(), expect.data(), kBaseWords * kWordBytes), 0);
}

TEST_P(TransportTest, BroadcastStoresAndExchangeReturnsPrevious) {
  std::uint32_t loc = 0;
  t_->Execute(McOp::Broadcast(&loc, 41, Traffic::kSyncObject));
  EXPECT_EQ(loc, 41u);
  EXPECT_EQ(t_->Execute(McOp::Exchange(&loc, 42, Traffic::kSyncObject)), 41u);
  EXPECT_EQ(t_->Execute(McOp::Exchange(&loc, 43, Traffic::kSyncObject)), 42u);
  EXPECT_EQ(loc, 43u);
}

// The ordered pair must behave as one globally-ordered sequence: concurrent
// exchanges from many threads hand the location's history around as a chain
// of (previous -> new) links. If and only if every exchange is atomic within
// a single total order, walking the chain back from the final value visits
// every injected value exactly once and terminates at the initial 0.
TEST_P(TransportTest, ConcurrentExchangesFormOneTotalOrder) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::uint32_t loc = 0;
  // prev_of[v] = value the exchange that installed v observed.
  std::vector<std::uint32_t> prev_of(
      static_cast<std::size_t>(kThreads * kIters) + 1, 0);
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint32_t v =
            static_cast<std::uint32_t>(th * kIters + i) + 1;  // unique, nonzero
        prev_of[v] =
            t_->Execute(McOp::Exchange(&loc, v, Traffic::kSyncObject));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<bool> seen(prev_of.size(), false);
  std::uint32_t v = loc;
  std::size_t visited = 0;
  while (v != 0) {
    ASSERT_LT(v, prev_of.size());
    ASSERT_FALSE(seen[v]) << "value " << v << " appears twice in the chain";
    seen[v] = true;
    ++visited;
    v = prev_of[v];
  }
  EXPECT_EQ(visited, static_cast<std::size_t>(kThreads * kIters));
}

// Concurrent ordered broadcasts must each be atomic against the exchanges
// (same global order): the final value is one of the injected values.
TEST_P(TransportTest, BroadcastsSerializeAgainstExchanges) {
  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  std::uint32_t loc = 0;
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint32_t v = static_cast<std::uint32_t>(th * kIters + i) + 1;
        if (th % 2 == 0) {
          t_->Execute(McOp::Broadcast(&loc, v, Traffic::kSyncObject));
        } else {
          t_->Execute(McOp::Exchange(&loc, v, Traffic::kSyncObject));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GE(loc, 1u);
  EXPECT_LE(loc, static_cast<std::uint32_t>(kThreads * kIters));
}

TEST_P(TransportTest, RegisterArenaResolveRoundTrip) {
  alignas(8) std::byte seg_a[256];
  alignas(8) std::byte seg_b[128];
  t_->BeginBoot();
  const SegmentId a = t_->RegisterArena(SegmentInfo{-1, sizeof(seg_a), 0}, seg_a);
  const SegmentId b = t_->RegisterArena(SegmentInfo{-1, sizeof(seg_b), 1}, seg_b);
  EXPECT_EQ(t_->segment_count(), 2u);
  EXPECT_EQ(t_->segment(a).bytes, sizeof(seg_a));
  EXPECT_EQ(t_->segment(b).owner, 1);
  EXPECT_EQ(t_->Resolve(PageFrameRef{a, 0}), seg_a);
  EXPECT_EQ(t_->Resolve(PageFrameRef{a, 100}), seg_a + 100);
  EXPECT_EQ(t_->Resolve(PageFrameRef{b, 64}), seg_b + 64);
  EXPECT_EQ(t_->MapRemote(b), seg_b);
  // A new boot drops the table (the transport outlives Runtimes).
  t_->BeginBoot();
  EXPECT_EQ(t_->segment_count(), 0u);
}

TEST(TransportFactoryTest, ConfigSelectsBackend) {
  Config cfg;
  EXPECT_STREQ(MakeTransport(cfg)->name(), "inproc");
  cfg.mc.transport = McTransportKind::kShm;
  EXPECT_STREQ(MakeTransport(cfg)->name(), "shm");
}

// --- Cluster mode ---------------------------------------------------------

// One mapped arena segment hosted by a forked peer: bootstrap over
// SCM_RIGHTS, a remote write through the transport, and EndRun's checksum
// handshake proving the bytes are visible through the *peer process's* own
// mapping, not just ours.
TEST(ShmClusterTest, RemoteWriteVisibleInPeerProcess) {
  ShmLauncher launcher;
  ASSERT_TRUE(launcher.Start(2));
  {
    ShmTransport lead(launcher.TakeLeadEndpoint(), 2, 0);
    ASSERT_TRUE(lead.cluster());
    EXPECT_EQ(lead.cluster_processes(), 2);
    lead.BeginBoot();
    const std::size_t kBytes = 4 * kPageBytes;
    const int fd = lead.ArenaFdFor(1, kBytes);
    ASSERT_GE(fd, 0);
    void* base = mmap(nullptr, kBytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ASSERT_NE(base, MAP_FAILED);
    const SegmentId seg =
        lead.RegisterArena(SegmentInfo{fd, kBytes, 1}, static_cast<std::byte*>(base));
    lead.BeginRun();  // barrier of last resort: peer alive before the "run"
    std::vector<std::uint32_t> pattern(kBytes / kWordBytes);
    SplitMix64 rng(21);
    for (auto& w : pattern) {
      w = static_cast<std::uint32_t>(rng.Next());
    }
    lead.Execute(McOp::Stream(lead.Resolve(PageFrameRef{seg, 0}), pattern.data(),
                              pattern.size(), Traffic::kPageData));
    lead.EndRun();
    EXPECT_TRUE(lead.peers_verified());
    EXPECT_GT(lead.wire_ns(), 0u);
    munmap(base, kBytes);
    close(fd);
  }  // ~ShmTransport sends kShutdown
  EXPECT_TRUE(launcher.Join());
}

// Killing a child mid-session must tear the whole cluster down and report
// the failure through Join() — never hang the launcher.
TEST(ShmClusterTest, KilledChildTearsClusterDown) {
  ShmLauncher launcher;
  ASSERT_TRUE(launcher.Start(3));
  {
    ShmTransport lead(launcher.TakeLeadEndpoint(), 3, 0);
    lead.BeginBoot();
    launcher.KillPeer(1, SIGKILL);
    // The transport's shutdown send races the crash detection; either way
    // Join must unblock and report an unclean teardown.
  }
  EXPECT_FALSE(launcher.Join());
}

}  // namespace
}  // namespace cashmere
