// Application-level verification: every benchmark app, run tiny, against
// its sequential reference, across a matrix of protocols and cluster
// shapes. These are the primary end-to-end correctness checks for the
// coherence protocols.
#include <gtest/gtest.h>

#include "cashmere/apps/app.hpp"

namespace cashmere {
namespace {

struct Case {
  AppKind kind;
  ProtocolVariant protocol;
  int nodes;
  int ppn;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = std::string(AppName(c.kind)) + "_" + ProtocolVariantName(c.protocol) +
                     "_" + std::to_string(c.nodes) + "x" + std::to_string(c.ppn);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  return name;
}

class AppMatrixTest : public testing::TestWithParam<Case> {};

TEST_P(AppMatrixTest, VerifiesAgainstSequential) {
  const Case& c = GetParam();
  Config cfg;
  cfg.protocol = c.protocol;
  cfg.nodes = c.nodes;
  cfg.procs_per_node = c.ppn;
  cfg.cost.time_scale = 10.0;
  const AppRunResult result = RunApp(c.kind, cfg, kSizeTest);
  EXPECT_TRUE(result.verified)
      << AppName(c.kind) << " parallel=" << result.parallel_checksum
      << " sequential=" << result.sequential_checksum;
  EXPECT_GT(result.report.exec_time_ns, 0u);
}

std::vector<Case> AllAppsTwoLevel() {
  std::vector<Case> cases;
  for (int a = 0; a < kNumApps; ++a) {
    cases.push_back({static_cast<AppKind>(a), ProtocolVariant::kTwoLevel, 2, 2});
  }
  return cases;
}

std::vector<Case> ProtocolSweep() {
  // Every protocol variant over a pair of representative apps: one
  // barrier-based (SOR) and one lock-based with false sharing (Water).
  std::vector<Case> cases;
  for (const auto v :
       {ProtocolVariant::kTwoLevel, ProtocolVariant::kTwoLevelShootdown,
        ProtocolVariant::kTwoLevelGlobalLock, ProtocolVariant::kOneLevelDiff,
        ProtocolVariant::kOneLevelWriteDouble}) {
    cases.push_back({AppKind::kSor, v, 2, 2});
    cases.push_back({AppKind::kWater, v, 2, 2});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppMatrixTest, testing::ValuesIn(AllAppsTwoLevel()),
                         CaseName);
INSTANTIATE_TEST_SUITE_P(Protocols, AppMatrixTest, testing::ValuesIn(ProtocolSweep()),
                         CaseName);

}  // namespace
}  // namespace cashmere
