// Unit tests for the directory backends (replicated and sharded) and the
// home table. The backend tests are parameterized over Config::dir.mode so
// both implementations prove the same contract; sharded-only behavior
// (lazy segments, entry cache, shard ownership) gets its own suite.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/directory_sharded.hpp"
#include "cashmere/protocol/home_table.hpp"

namespace cashmere {
namespace {

Config DirConfig(int nodes = 4, int ppn = 2) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 32 * kPageBytes;
  cfg.superpage_pages = 8;
  return cfg;
}

DirWord ReadWord() {
  DirWord w;
  w.perm = Perm::kRead;
  return w;
}

DirWord ExclWord(ProcId proc) {
  DirWord w;
  w.perm = Perm::kReadWrite;
  w.exclusive = true;
  w.excl_proc = proc;
  return w;
}

TEST(DirWordTest, PackUnpackRoundTrip) {
  for (const Perm perm : {Perm::kInvalid, Perm::kRead, Perm::kReadWrite}) {
    for (const bool excl : {false, true}) {
      for (const ProcId p : {0, 5, 31}) {
        DirWord w;
        w.perm = perm;
        w.exclusive = excl;
        w.excl_proc = p;
        const DirWord u = DirWord::Unpack(w.Pack());
        EXPECT_EQ(u.perm, perm);
        EXPECT_EQ(u.exclusive, excl);
        EXPECT_EQ(u.excl_proc, p);
      }
    }
  }
}

TEST(DirUpdateTraceArgTest, EncodesModeAndBytes) {
  DirWord w = ExclWord(5);
  DirWriteResult broadcast;
  broadcast.wire_bytes = 16;
  broadcast.p2p = false;
  DirWriteResult p2p;
  p2p.wire_bytes = 4;
  p2p.p2p = true;

  const std::uint32_t a0b = DirUpdateTraceArg(w, broadcast);
  EXPECT_EQ(a0b & 0x7fffu, w.Pack());
  EXPECT_FALSE(DecodeDirUpdateTraceArg(a0b).p2p);
  EXPECT_EQ(DecodeDirUpdateTraceArg(a0b).wire_bytes, 16u);

  const std::uint32_t a0p = DirUpdateTraceArg(w, p2p);
  EXPECT_EQ(a0p & 0x7fffu, w.Pack());
  EXPECT_TRUE(DecodeDirUpdateTraceArg(a0p).p2p);
  EXPECT_EQ(DecodeDirUpdateTraceArg(a0p).wire_bytes, 4u);
}

TEST(ConfigValidateTest, RejectsClustersOverSixtyFourProcessors) {
  Config cfg = DirConfig(/*nodes=*/100, /*ppn=*/1);
  EXPECT_DEATH(cfg.Validate(), "excl_proc in 6 bits");
}

// --- Parameterized contract tests: both backends ---------------------------

class DirectoryBackendTest : public ::testing::TestWithParam<DirMode> {
 protected:
  void Init(Config cfg) {
    cfg.dir.mode = GetParam();
    cfg_ = cfg;
    hub_ = std::make_unique<McHub>(cfg_.units());
    homes_ = std::make_unique<HomeTable>(cfg_);
    dir_ = MakeDirectory(cfg_, *hub_, *homes_);
  }

  Config cfg_;
  std::unique_ptr<McHub> hub_;
  std::unique_ptr<HomeTable> homes_;
  std::unique_ptr<DirectoryBackend> dir_;
};

TEST_P(DirectoryBackendTest, WriteAndReadPerUnitWords) {
  Init(DirConfig());
  DirWord w;
  w.perm = Perm::kReadWrite;
  dir_->Write(3, 1, w);
  EXPECT_EQ(dir_->Read(3, 1).perm, Perm::kReadWrite);
  EXPECT_EQ(dir_->Read(3, 0).perm, Perm::kInvalid);
  EXPECT_EQ(dir_->Read(2, 1).perm, Perm::kInvalid);
}

TEST_P(DirectoryBackendTest, SharersAndExclusiveQueries) {
  Init(DirConfig());
  dir_->Write(0, 1, ReadWord());
  dir_->Write(0, 2, ExclWord(5));

  EXPECT_TRUE(dir_->AnyOtherSharer(0, 0));
  EXPECT_TRUE(dir_->AnyOtherSharer(0, 1));
  EXPECT_FALSE(dir_->AnyOtherSharer(5, 0));
  EXPECT_EQ(dir_->ExclusiveHolder(0, 0), 2);
  EXPECT_EQ(dir_->ExclusiveHolder(1, 0), -1);
  EXPECT_EQ(dir_->ExclusiveHolderFresh(0, 3), 2);

  UnitId sharers[kMaxProcs];
  const int n = dir_->Sharers(0, /*exclude=*/1, sharers);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(sharers[0], 2);
}

TEST_P(DirectoryBackendTest, WriteResultShapeMatchesMode) {
  Init(DirConfig());
  // Page 0's shard owner is unit 0 (round-robin homes): a write by unit 0
  // is owner-local in sharded mode, a write by unit 1 crosses the wire.
  const DirWriteResult local = dir_->Write(0, 0, ReadWord());
  const DirWriteResult remote = dir_->Write(0, 1, ReadWord());
  if (GetParam() == DirMode::kSharded) {
    EXPECT_TRUE(local.p2p);
    EXPECT_TRUE(remote.p2p);
    EXPECT_EQ(local.wire_bytes, 0u);
    EXPECT_EQ(remote.wire_bytes, kWordBytes);
  } else {
    EXPECT_FALSE(local.p2p);
    EXPECT_FALSE(remote.p2p);
    const auto broadcast = static_cast<std::uint32_t>(kWordBytes * cfg_.units());
    EXPECT_EQ(local.wire_bytes, broadcast);
    EXPECT_EQ(remote.wire_bytes, broadcast);
  }
}

TEST_P(DirectoryBackendTest, SnapshotReflectsPriorWrites) {
  Init(DirConfig());
  dir_->Write(4, 2, ReadWord());
  std::uint32_t snap[kMaxProcs];
  dir_->WriteAndSnapshot(4, 0, ExclWord(0), snap);
  EXPECT_EQ(DirWord::Unpack(snap[0]).exclusive, true);
  EXPECT_EQ(DirWord::Unpack(snap[2]).perm, Perm::kRead);
  EXPECT_EQ(DirWord::Unpack(snap[1]).perm, Perm::kInvalid);
}

TEST_P(DirectoryBackendTest, ConcurrentExclusiveClaimsAtMostOneWinner) {
  // The WriteAndSnapshot arbitration: of two units claiming exclusivity,
  // at most one can see a snapshot with no other sharer.
  for (int round = 0; round < 100; ++round) {
    Init(DirConfig());
    std::atomic<int> winners{0};
    auto claimant = [&](UnitId unit) {
      std::uint32_t snap[kMaxProcs];
      dir_->WriteAndSnapshot(9, unit, ExclWord(0), snap);
      bool alone = true;
      for (int u = 0; u < cfg_.units(); ++u) {
        if (u == unit) {
          continue;
        }
        const DirWord w = DirWord::Unpack(snap[u]);
        if (w.perm != Perm::kInvalid || w.exclusive) {
          alone = false;
        }
      }
      if (alone) {
        winners.fetch_add(1);
      }
    };
    std::thread t1(claimant, 0);
    std::thread t2(claimant, 1);
    t1.join();
    t2.join();
    EXPECT_LE(winners.load(), 1);
  }
}

std::string ModeName(const ::testing::TestParamInfo<DirMode>& info) {
  return info.param == DirMode::kSharded ? "Sharded" : "Replicated";
}

INSTANTIATE_TEST_SUITE_P(Backends, DirectoryBackendTest,
                         ::testing::Values(DirMode::kReplicated, DirMode::kSharded),
                         ModeName);

// --- Sharded-only behavior --------------------------------------------------

class ShardedDirectoryTest : public ::testing::Test {
 protected:
  void Init(Config cfg) {
    cfg.dir.mode = DirMode::kSharded;
    cfg_ = cfg;
    hub_ = std::make_unique<McHub>(cfg_.units());
    homes_ = std::make_unique<HomeTable>(cfg_);
    dir_ = std::make_unique<ShardedDirectory>(cfg_, *hub_, *homes_);
  }

  Config cfg_;
  std::unique_ptr<McHub> hub_;
  std::unique_ptr<HomeTable> homes_;
  std::unique_ptr<ShardedDirectory> dir_;
};

TEST_F(ShardedDirectoryTest, SegmentsAllocateLazily) {
  Config cfg = DirConfig();
  cfg.dir.segment_pages = 4;
  Init(cfg);
  EXPECT_EQ(dir_->SegmentsAllocated(), 0u);
  const std::size_t untouched = dir_->ResidentBytes();

  dir_->Write(0, 0, ReadWord());
  EXPECT_EQ(dir_->SegmentsAllocated(), 1u);
  dir_->Write(1, 0, ReadWord());  // same segment as page 0
  EXPECT_EQ(dir_->SegmentsAllocated(), 1u);
  dir_->Write(17, 0, ReadWord());  // pages [16, 20): a new segment
  EXPECT_EQ(dir_->SegmentsAllocated(), 2u);

  const std::size_t per_segment =
      static_cast<std::size_t>(cfg.dir.segment_pages) * cfg_.units() * kWordBytes;
  EXPECT_EQ(dir_->ResidentBytes(), untouched + 2 * per_segment);

  // Reads of never-touched pages see all-invalid words and allocate nothing.
  EXPECT_EQ(dir_->Read(25, 0).perm, Perm::kInvalid);
  EXPECT_FALSE(dir_->AnyOtherSharer(25, 0));
  EXPECT_EQ(dir_->SegmentsAllocated(), 2u);
}

TEST_F(ShardedDirectoryTest, ShardedResidentBytesBeatReplicatedOnSparseTouch) {
  // The memory win is a large-arena property: segments scale with touched
  // pages while the replicated backend pays pages x units on every unit.
  Config cfg = DirConfig();
  cfg.heap_bytes = std::size_t{1} << 25;  // 4096 pages
  cfg.dir.cache_entries = 64;
  Init(cfg);
  McHub rep_hub(cfg_.units());
  Config rep_cfg = cfg_;
  GlobalDirectory replicated(rep_cfg, rep_hub);
  dir_->Write(0, 0, ReadWord());  // touch one segment
  EXPECT_LT(dir_->ResidentBytes(), replicated.ResidentBytes());
}

TEST_F(ShardedDirectoryTest, CachedQueriesServeHitsUntilInvalidated) {
  Init(DirConfig());
  const PageId page = 3;

  dir_->Write(page, 1, ReadWord());
  // First query from unit 0 misses and fills; the second hits.
  EXPECT_TRUE(dir_->AnyOtherSharer(page, 0));
  const std::uint64_t misses = dir_->CacheMisses();
  EXPECT_TRUE(dir_->AnyOtherSharer(page, 0));
  EXPECT_EQ(dir_->CacheMisses(), misses);
  EXPECT_GE(dir_->CacheHits(), 1u);

  // Unit 1 leaves the sharing set; unit 0's cached entry is stale (allowed
  // by the freshness contract) until the write-notice path invalidates it.
  DirWord gone;
  dir_->Write(page, 1, gone);
  EXPECT_TRUE(dir_->AnyOtherSharer(page, 0));  // stale cached answer
  dir_->InvalidateCached(0, page);
  EXPECT_FALSE(dir_->AnyOtherSharer(page, 0));  // refetched, fresh
}

TEST_F(ShardedDirectoryTest, ExclusiveHolderFreshBypassesStaleCache) {
  Init(DirConfig());
  const PageId page = 9;
  EXPECT_EQ(dir_->ExclusiveHolder(page, 0), -1);  // caches the empty entry
  dir_->Write(page, 2, ExclWord(5));
  // The cached query may still say "no holder"; the fresh one must not.
  EXPECT_EQ(dir_->ExclusiveHolderFresh(page, 0), 2);
  // And the fresh lookup refreshed the cache for subsequent cached queries.
  EXPECT_EQ(dir_->ExclusiveHolder(page, 0), 2);
}

TEST_F(ShardedDirectoryTest, OwnWordReadsStayExactThroughCache) {
  Init(DirConfig());
  const PageId page = 6;
  EXPECT_EQ(dir_->Read(page, 0).perm, Perm::kInvalid);  // caches the entry
  dir_->Write(page, 0, ReadWord());
  // Write-through: the unit's own word is exact even on a cache hit.
  EXPECT_EQ(dir_->Read(page, 0).perm, Perm::kRead);
}

TEST_F(ShardedDirectoryTest, SharersIsAuthoritativeDespiteStaleCache) {
  Init(DirConfig());
  const PageId page = 2;
  UnitId sharers[kMaxProcs];
  EXPECT_EQ(dir_->Sharers(page, 0, sharers), 0);  // also seeds nothing
  EXPECT_FALSE(dir_->AnyOtherSharer(page, 0));    // caches the empty entry
  dir_->Write(page, 3, ReadWord());
  // The cached query is allowed to be stale; the release-path query is not.
  const int n = dir_->Sharers(page, 0, sharers);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(sharers[0], 3);
}

TEST_F(ShardedDirectoryTest, ShardOwnershipFollowsHomeRelocation) {
  Config cfg = DirConfig(4, 1);  // 4 units, superpages of 8 pages
  Init(cfg);
  const PageId page = 17;  // superpage 2
  EXPECT_EQ(dir_->ShardOwner(page), homes_->HomeOfPage(page));
  EXPECT_EQ(dir_->ShardOwner(page), 2);

  homes_->GlobalLock().Lock();
  homes_->Relocate(2, 3);
  homes_->GlobalLock().Unlock();
  EXPECT_EQ(dir_->ShardOwner(page), 3);
  EXPECT_EQ(dir_->ShardOwner(page), homes_->HomeOfPage(page));

  // The entry is reachable across the move, and updates from the new owner
  // are now owner-local (no wire bytes).
  dir_->Write(page, 3, ReadWord());
  const DirWriteResult res = dir_->Write(page, 3, ReadWord());
  EXPECT_EQ(res.wire_bytes, 0u);
  EXPECT_TRUE(dir_->AnyOtherSharer(page, 0));
}

// --- Home table -------------------------------------------------------------

TEST(HomeTableTest, RoundRobinInitialAssignment) {
  Config cfg = DirConfig(4, 1);  // 4 units
  HomeTable homes(cfg);
  EXPECT_EQ(homes.superpages(), 4u);
  EXPECT_EQ(homes.HomeOfSuperpage(0), 0);
  EXPECT_EQ(homes.HomeOfSuperpage(1), 1);
  EXPECT_EQ(homes.HomeOfSuperpage(3), 3);
  // Pages inherit the superpage's home.
  EXPECT_EQ(homes.HomeOfPage(0), 0);
  EXPECT_EQ(homes.HomeOfPage(7), 0);
  EXPECT_EQ(homes.HomeOfPage(8), 1);
}

TEST(HomeTableTest, RelocationIsSticky) {
  Config cfg = DirConfig(4, 1);
  HomeTable homes(cfg);
  EXPECT_TRUE(homes.IsDefault(2));
  homes.GlobalLock().Lock();
  homes.Relocate(2, 3);
  homes.GlobalLock().Unlock();
  EXPECT_FALSE(homes.IsDefault(2));
  EXPECT_EQ(homes.HomeOfSuperpage(2), 3);
  // SealDefault keeps the round-robin home but forbids future relocation.
  homes.GlobalLock().Lock();
  homes.SealDefault(1);
  homes.GlobalLock().Unlock();
  EXPECT_FALSE(homes.IsDefault(1));
  EXPECT_EQ(homes.HomeOfSuperpage(1), 1);
}

TEST(HomeTableTest, FirstTouchGate) {
  Config cfg = DirConfig();
  HomeTable homes(cfg);
  EXPECT_FALSE(homes.FirstTouchEnabled());
  homes.EnableFirstTouch();
  EXPECT_TRUE(homes.FirstTouchEnabled());
}

}  // namespace
}  // namespace cashmere
