// Unit tests for the lock-free global directory and the home table.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/directory.hpp"
#include "cashmere/protocol/home_table.hpp"

namespace cashmere {
namespace {

Config DirConfig(int nodes = 4, int ppn = 2) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 32 * kPageBytes;
  cfg.superpage_pages = 8;
  return cfg;
}

TEST(DirWordTest, PackUnpackRoundTrip) {
  for (const Perm perm : {Perm::kInvalid, Perm::kRead, Perm::kReadWrite}) {
    for (const bool excl : {false, true}) {
      for (const ProcId p : {0, 5, 31}) {
        DirWord w;
        w.perm = perm;
        w.exclusive = excl;
        w.excl_proc = p;
        const DirWord u = DirWord::Unpack(w.Pack());
        EXPECT_EQ(u.perm, perm);
        EXPECT_EQ(u.exclusive, excl);
        EXPECT_EQ(u.excl_proc, p);
      }
    }
  }
}

TEST(GlobalDirectoryTest, WriteAndReadPerUnitWords) {
  Config cfg = DirConfig();
  McHub hub(cfg.units());
  GlobalDirectory dir(cfg, hub);
  DirWord w;
  w.perm = Perm::kReadWrite;
  dir.Write(3, 1, w);
  EXPECT_EQ(dir.Read(3, 1).perm, Perm::kReadWrite);
  EXPECT_EQ(dir.Read(3, 0).perm, Perm::kInvalid);
  EXPECT_EQ(dir.Read(2, 1).perm, Perm::kInvalid);
}

TEST(GlobalDirectoryTest, SharersAndExclusiveQueries) {
  Config cfg = DirConfig();
  McHub hub(cfg.units());
  GlobalDirectory dir(cfg, hub);
  DirWord ro;
  ro.perm = Perm::kRead;
  DirWord ex;
  ex.perm = Perm::kReadWrite;
  ex.exclusive = true;
  ex.excl_proc = 5;
  dir.Write(0, 1, ro);
  dir.Write(0, 2, ex);

  EXPECT_TRUE(dir.AnyOtherSharer(0, 0));
  EXPECT_TRUE(dir.AnyOtherSharer(0, 1));
  EXPECT_FALSE(dir.AnyOtherSharer(5, 0));
  EXPECT_EQ(dir.ExclusiveHolder(0), 2);
  EXPECT_EQ(dir.ExclusiveHolder(1), -1);

  UnitId sharers[kMaxProcs];
  const int n = dir.Sharers(0, /*exclude=*/1, sharers);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(sharers[0], 2);
}

TEST(GlobalDirectoryTest, ConcurrentExclusiveClaimsAtMostOneWinner) {
  // The WriteAndSnapshot arbitration: of two units claiming exclusivity,
  // at most one can see a snapshot with no other sharer.
  for (int round = 0; round < 100; ++round) {
    Config cfg = DirConfig();
    McHub hub(cfg.units());
    GlobalDirectory dir(cfg, hub);
    std::atomic<int> winners{0};
    std::thread t1([&] {
      DirWord claim;
      claim.perm = Perm::kReadWrite;
      claim.exclusive = true;
      std::uint32_t snap[kMaxProcs];
      dir.WriteAndSnapshot(9, 0, claim, snap);
      bool alone = true;
      for (int u = 1; u < cfg.units(); ++u) {
        const DirWord w = DirWord::Unpack(snap[u]);
        if (w.perm != Perm::kInvalid || w.exclusive) {
          alone = false;
        }
      }
      if (alone) {
        winners.fetch_add(1);
      }
    });
    std::thread t2([&] {
      DirWord claim;
      claim.perm = Perm::kReadWrite;
      claim.exclusive = true;
      std::uint32_t snap[kMaxProcs];
      dir.WriteAndSnapshot(9, 1, claim, snap);
      bool alone = true;
      for (int u = 0; u < cfg.units(); ++u) {
        if (u == 1) {
          continue;
        }
        const DirWord w = DirWord::Unpack(snap[u]);
        if (w.perm != Perm::kInvalid || w.exclusive) {
          alone = false;
        }
      }
      if (alone) {
        winners.fetch_add(1);
      }
    });
    t1.join();
    t2.join();
    EXPECT_LE(winners.load(), 1);
  }
}

TEST(HomeTableTest, RoundRobinInitialAssignment) {
  Config cfg = DirConfig(4, 1);  // 4 units
  HomeTable homes(cfg);
  EXPECT_EQ(homes.superpages(), 4u);
  EXPECT_EQ(homes.HomeOfSuperpage(0), 0);
  EXPECT_EQ(homes.HomeOfSuperpage(1), 1);
  EXPECT_EQ(homes.HomeOfSuperpage(3), 3);
  // Pages inherit the superpage's home.
  EXPECT_EQ(homes.HomeOfPage(0), 0);
  EXPECT_EQ(homes.HomeOfPage(7), 0);
  EXPECT_EQ(homes.HomeOfPage(8), 1);
}

TEST(HomeTableTest, RelocationIsSticky) {
  Config cfg = DirConfig(4, 1);
  HomeTable homes(cfg);
  EXPECT_TRUE(homes.IsDefault(2));
  homes.GlobalLock().Lock();
  homes.Relocate(2, 3);
  homes.GlobalLock().Unlock();
  EXPECT_FALSE(homes.IsDefault(2));
  EXPECT_EQ(homes.HomeOfSuperpage(2), 3);
  // SealDefault keeps the round-robin home but forbids future relocation.
  homes.GlobalLock().Lock();
  homes.SealDefault(1);
  homes.GlobalLock().Unlock();
  EXPECT_FALSE(homes.IsDefault(1));
  EXPECT_EQ(homes.HomeOfSuperpage(1), 1);
}

TEST(HomeTableTest, FirstTouchGate) {
  Config cfg = DirConfig();
  HomeTable homes(cfg);
  EXPECT_FALSE(homes.FirstTouchEnabled());
  homes.EnableFirstTouch();
  EXPECT_TRUE(homes.FirstTouchEnabled());
}

}  // namespace
}  // namespace cashmere
