// Unit tests for the write-notice structures: bitmap+queue deduplication,
// per-bin single-writer discipline, two-level distribution.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/write_notice.hpp"

namespace cashmere {
namespace {

Config WnConfig(int nodes = 4, int ppn = 2) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 256 * kPageBytes;
  return cfg;
}

TEST(PageNoticeQueueTest, PostDrainRoundTrip) {
  PageNoticeQueue q(64);
  EXPECT_TRUE(q.Empty());
  EXPECT_TRUE(q.Post(5));
  EXPECT_TRUE(q.Post(9));
  EXPECT_FALSE(q.Empty());
  std::vector<PageId> got;
  q.Drain([&](PageId p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<PageId>{5, 9}));
  EXPECT_TRUE(q.Empty());
}

TEST(PageNoticeQueueTest, DuplicatePostsCoalesce) {
  PageNoticeQueue q(64);
  EXPECT_TRUE(q.Post(3));
  EXPECT_FALSE(q.Post(3));  // already pending
  EXPECT_FALSE(q.Post(3));
  int n = 0;
  q.Drain([&](PageId) { ++n; });
  EXPECT_EQ(n, 1);
  // After draining, the page can be posted again.
  EXPECT_TRUE(q.Post(3));
}

TEST(PageNoticeQueueTest, PostDuringDrainIsNotLost) {
  // The consumer clears the bit before invoking the callback, so a
  // concurrent post re-enqueues rather than vanishing.
  PageNoticeQueue q(16);
  q.Post(1);
  bool reposted = false;
  int drained = 0;
  q.Drain([&](PageId p) {
    ++drained;
    if (!reposted) {
      reposted = true;
      EXPECT_TRUE(q.Post(p));  // bit already cleared: new entry
    }
  });
  EXPECT_EQ(drained, 2);
}

TEST(PageNoticeQueueTest, CapacityBoundHolds) {
  // At most `pages` distinct entries can ever be pending.
  constexpr std::size_t kPages = 128;
  PageNoticeQueue q(kPages);
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 0; p < kPages; ++p) {
      q.Post(p);
      q.Post(p);  // duplicate
    }
    std::set<PageId> got;
    q.Drain([&](PageId p) { got.insert(p); });
    EXPECT_EQ(got.size(), kPages);
  }
}

TEST(WriteNoticeBoardTest, GlobalBinsRouteByDestination) {
  Config cfg = WnConfig();
  McHub hub(cfg.units());
  WriteNoticeBoard board(cfg, hub);
  board.PostGlobal(/*dst=*/2, /*src=*/0, 11);
  board.PostGlobal(/*dst=*/2, /*src=*/1, 12);
  board.PostGlobal(/*dst=*/3, /*src=*/0, 13);
  EXPECT_TRUE(board.GlobalPending(2));
  EXPECT_TRUE(board.GlobalPending(3));
  EXPECT_FALSE(board.GlobalPending(0));

  std::set<PageId> got;
  board.DrainGlobal(2, [&](PageId p) { got.insert(p); });
  EXPECT_EQ(got, (std::set<PageId>{11, 12}));
  EXPECT_FALSE(board.GlobalPending(2));
  EXPECT_TRUE(board.GlobalPending(3));
  EXPECT_GT(hub.BytesSent(Traffic::kWriteNotice), 0u);
}

TEST(WriteNoticeBoardTest, LocalListsPerProcessor) {
  Config cfg = WnConfig();
  McHub hub(cfg.units());
  WriteNoticeBoard board(cfg, hub);
  board.PostLocal(3, 7);
  board.PostLocal(3, 7);  // dedup
  board.PostLocal(4, 7);
  int n3 = 0;
  board.DrainLocal(3, [&](PageId) { ++n3; });
  EXPECT_EQ(n3, 1);
  int n4 = 0;
  board.DrainLocal(4, [&](PageId) { ++n4; });
  EXPECT_EQ(n4, 1);
}

TEST(WriteNoticeBoardTest, ConcurrentProducersFromSameSourceUnit) {
  // Multiple processors of the same source unit serialize on the bin's
  // intra-node lock; no notices may be lost.
  Config cfg = WnConfig(2, 4);
  McHub hub(cfg.units());
  WriteNoticeBoard board(cfg, hub);
  constexpr int kPages = 256;
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (PageId p = static_cast<PageId>(t); p < kPages; p += 4) {
        board.PostGlobal(1, 0, p);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  std::set<PageId> got;
  board.DrainGlobal(1, [&](PageId p) { got.insert(p); });
  EXPECT_EQ(got.size(), kPages);
}

}  // namespace
}  // namespace cashmere
