// Dynamic single-writer ownership verifier (common/ownership.hpp): claim
// semantics, exemptions (unbound threads, override scopes, copies), the
// unit-writer assertion guarding the global directory, and — the point of
// the whole mechanism — the abort when a second bound processor writes a
// single-writer structure.
#include <gtest/gtest.h>

#include <thread>

#include "cashmere/common/ownership.hpp"
#include "cashmere/common/stats.hpp"
#include "cashmere/common/trace.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {
namespace {

// Tier-1 builds define NDEBUG, so the gate defaults off; every test flips
// it explicitly and restores the default so the suite's other tests see
// the build's normal behavior.
class OwnershipTest : public testing::Test {
 protected:
  void SetUp() override { SetOwnershipChecksForTesting(true); }
  void TearDown() override {
    OwnershipUnbindThread();
    SetOwnershipChecksForTesting(ownership_internal::kOwnershipChecksDefault);
  }
};

TEST_F(OwnershipTest, UnboundThreadsNeverClaim) {
  OwnerCell cell;
  cell.NoteWrite("test");  // this thread is unbound: exempt
  EXPECT_EQ(cell.OwnerForTesting(), OwnerCell::kUnowned);
}

TEST_F(OwnershipTest, FirstBoundWriterClaimsAndMayRepeat) {
  OwnerCell cell;
  OwnershipBindThread(/*proc=*/3, /*unit=*/1);
  cell.NoteWrite("test");
  EXPECT_EQ(cell.OwnerForTesting(), 3);
  cell.NoteWrite("test");  // same proc: fine
  EXPECT_EQ(cell.OwnerForTesting(), 3);
}

TEST_F(OwnershipTest, ResetReleasesTheClaim) {
  OwnerCell cell;
  OwnershipBindThread(2, 0);
  cell.NoteWrite("test");
  cell.Reset();
  EXPECT_EQ(cell.OwnerForTesting(), OwnerCell::kUnowned);
  OwnershipBindThread(5, 1);  // a new owner may now claim
  cell.NoteWrite("test");
  EXPECT_EQ(cell.OwnerForTesting(), 5);
}

TEST_F(OwnershipTest, CopyDoesNotPropagateTheClaim) {
  // Stats snapshots are copied for aggregation; the copy is a fresh value.
  OwnerCell cell;
  OwnershipBindThread(1, 0);
  cell.NoteWrite("test");
  OwnerCell copy(cell);
  EXPECT_EQ(copy.OwnerForTesting(), OwnerCell::kUnowned);
  OwnerCell assigned;
  assigned = cell;
  EXPECT_EQ(assigned.OwnerForTesting(), OwnerCell::kUnowned);
}

TEST_F(OwnershipTest, OverrideScopeExemptsTheWrite) {
  OwnerCell cell;
  OwnershipBindThread(0, 0);
  cell.NoteWrite("test");
  OwnershipBindThread(1, 0);
  {
    // The documented relocation exemption: a different processor may write
    // inside an override scope without claiming or aborting.
    OwnershipOverrideScope scope;
    EXPECT_TRUE(OwnershipOverrideActive());
    cell.NoteWrite("test");
  }
  EXPECT_FALSE(OwnershipOverrideActive());
  EXPECT_EQ(cell.OwnerForTesting(), 0);
}

TEST_F(OwnershipTest, ChecksOffMeansNoClaims) {
  SetOwnershipChecksForTesting(false);
  OwnerCell cell;
  OwnershipBindThread(4, 1);
  cell.NoteWrite("test");
  EXPECT_EQ(cell.OwnerForTesting(), OwnerCell::kUnowned);
}

TEST_F(OwnershipTest, UnitWriterAssertAcceptsOwnerAndExemptions) {
  OwnershipBindThread(/*proc=*/2, /*unit=*/1);
  CsmAssertUnitWriter(1, "test");  // owner: ok
  {
    OwnershipOverrideScope scope;
    CsmAssertUnitWriter(0, "test");  // overridden: ok
  }
  OwnershipUnbindThread();
  CsmAssertUnitWriter(0, "test");  // unbound: ok
}

TEST_F(OwnershipTest, StatsAndTraceRingClaimTheirWriter) {
  OwnershipBindThread(6, 1);
  Stats stats;
  stats.Add(Counter::kReadFaults);
  EXPECT_EQ(stats.owner_check.OwnerForTesting(), 6);
  stats.AddTime(TimeCategory::kProtocol, 10);
  // Copying the stats (aggregation snapshot) resets the copy's claim, so
  // the fold-after-join `operator+=` path never inherits a stale owner.
  Stats snapshot = stats;
  EXPECT_EQ(snapshot.owner_check.OwnerForTesting(), OwnerCell::kUnowned);

  TraceRing ring(64);
  ring.Append(TraceEvent{});
  // Reset (between runs) releases the ring for adoption by a new thread.
  ring.Reset();
  OwnershipBindThread(7, 1);
  ring.Append(TraceEvent{});
}

using OwnershipDeathTest = OwnershipTest;

TEST_F(OwnershipDeathTest, CrossProcessorWriteAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetOwnershipChecksForTesting(true);
        OwnerCell cell;
        std::thread writer([&cell] {
          OwnershipBindThread(/*proc=*/0, /*unit=*/0);
          cell.NoteWrite("DirtyMapShard::MarkRange");
        });
        writer.join();
        std::thread intruder([&cell] {
          OwnershipBindThread(/*proc=*/1, /*unit=*/0);
          cell.NoteWrite("DirtyMapShard::MarkRange");  // second writer: abort
        });
        intruder.join();
      },
      "ownership violation");
}

TEST_F(OwnershipDeathTest, CrossProcessorShardMarkAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetOwnershipChecksForTesting(true);
        // The real structure, not a bare cell: processor 0 seeds its own
        // dirty-map shard, then processor 2's thread marks the same shard —
        // exactly the single-writer violation the annotation declares.
        DirtyMapShard shard;
        std::thread owner([&shard] {
          OwnershipBindThread(0, 0);
          shard.MarkRange(/*twin_generation=*/1, /*offset=*/0, /*bytes=*/64);
        });
        owner.join();
        std::thread intruder([&shard] {
          OwnershipBindThread(2, 0);
          shard.MarkRange(1, 128, 64);
        });
        intruder.join();
      },
      "ownership violation");
}

TEST_F(OwnershipDeathTest, CrossUnitDirectoryWriteAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetOwnershipChecksForTesting(true);
        OwnershipBindThread(/*proc=*/4, /*unit=*/1);
        CsmAssertUnitWriter(/*unit=*/0, "GlobalDirectory::Write");
      },
      "ownership violation");
}

}  // namespace
}  // namespace cashmere
