// Regression test for the write-notice lock-order inversion (PROTOCOL.md,
// "races this design closes" #7): write-notice distribution posts to
// per-processor lists while holding page locks, and the list drain's
// callbacks take page locks. If the drain held the list lock across its
// callbacks, the two paths deadlocked (AB-BA). This test drives both paths
// concurrently and hard; with the inversion present it deadlocks within
// milliseconds.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cashmere/common/config.hpp"
#include "cashmere/common/spin.hpp"
#include "cashmere/mc/hub.hpp"
#include "cashmere/protocol/write_notice.hpp"

namespace cashmere {
namespace {

TEST(WnDeadlockRegressionTest, DrainAndDistributeDoNotInvert) {
  Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 32 * kPageBytes;
  McHub hub(cfg.units());
  WriteNoticeBoard board(cfg, hub);
  SpinLock page_locks[32];

  std::atomic<bool> stop{false};
  std::atomic<long> distributed{0};
  std::atomic<long> drained{0};

  // Thread A models write-notice distribution at an acquire: takes a page
  // lock, then posts to processor 1's local list (the order FlushPage /
  // DrainGlobal callbacks use).
  std::thread distributor([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const PageId page = static_cast<PageId>(i % 32);
      SpinLockGuard guard(page_locks[page]);
      board.PostLocal(1, page);
      distributed.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
  });

  // Thread B models processor 1 processing its own list: the callback
  // takes the page lock (invalidation path).
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      drained.fetch_add(board.DrainLocal(1, [&](PageId page) {
        SpinLockGuard guard(page_locks[page]);
      }),
                        std::memory_order_relaxed);
    }
  });

  // With the inversion, this workload wedges almost immediately; give it
  // generous time to prove liveness instead.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true, std::memory_order_relaxed);
  distributor.join();
  drainer.join();
  // Drain the remainder.
  drained.fetch_add(board.DrainLocal(1, [](PageId) {}));
  EXPECT_GT(distributed.load(), 1000);
  EXPECT_GT(drained.load(), 0);
}

}  // namespace
}  // namespace cashmere
