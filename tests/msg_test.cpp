// Unit tests for the polling message layer: bins, poll flags, reply slots,
// sequencing, cross-unit concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cashmere/msg/message_layer.hpp"

namespace cashmere {
namespace {

Config MsgConfig(int nodes, int ppn) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 4 * kPageBytes;
  return cfg;
}

class RecordingHandler : public RequestHandler {
 public:
  void HandleRequest(const Request& request) override {
    std::lock_guard<std::mutex> guard(mu_);
    requests_.push_back(request);
  }
  std::vector<Request> Take() {
    std::lock_guard<std::mutex> guard(mu_);
    return requests_;
  }

 private:
  std::mutex mu_;
  std::vector<Request> requests_;
};

TEST(MessageLayerTest, SendRaisesPendingAndPollDrains) {
  Config cfg = MsgConfig(2, 2);
  MessageLayer msg(cfg);
  RecordingHandler handler;
  msg.set_handler(&handler);

  Request request;
  request.kind = Request::Kind::kPageFetch;
  request.page = 7;
  const std::uint64_t seq = msg.Send(/*from=*/0, /*dst_unit=*/1, request);
  EXPECT_EQ(seq, 1u);
  EXPECT_TRUE(msg.HasPending(1));
  EXPECT_FALSE(msg.HasPending(0));
  EXPECT_EQ(msg.Poll(1), 1);
  EXPECT_FALSE(msg.HasPending(1));
  const auto got = handler.Take();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].page, 7u);
  EXPECT_EQ(got[0].from_proc, 0);
  EXPECT_EQ(got[0].seq, 1u);
}

TEST(MessageLayerTest, SequenceNumbersArePerProcessor) {
  Config cfg = MsgConfig(2, 2);
  MessageLayer msg(cfg);
  RecordingHandler handler;
  msg.set_handler(&handler);
  Request request;
  EXPECT_EQ(msg.Send(0, 1, request), 1u);
  EXPECT_EQ(msg.Send(0, 1, request), 2u);
  EXPECT_EQ(msg.Send(1, 1, request), 1u);  // different processor
  msg.Poll(1);
}

TEST(MessageLayerTest, CompleteSignalsReplySlot) {
  Config cfg = MsgConfig(2, 1);
  MessageLayer msg(cfg);
  ReplySlot& slot = msg.SlotOf(1);
  EXPECT_EQ(slot.done_seq.load(), 0u);
  msg.Complete(/*requester=*/1, /*seq=*/5, kReplyHasPage, /*responder_vt=*/12345);
  EXPECT_EQ(slot.done_seq.load(), 5u);
  EXPECT_EQ(slot.flags, kReplyHasPage);
  EXPECT_EQ(slot.responder_vt, 12345u);
}

TEST(MessageLayerTest, RequestsFromMultipleSourcesAllArrive) {
  Config cfg = MsgConfig(4, 2);  // 4 units
  MessageLayer msg(cfg);
  RecordingHandler handler;
  msg.set_handler(&handler);
  for (ProcId p = 2; p < 8; ++p) {  // procs of units 1..3 send to unit 0
    Request request;
    request.page = static_cast<PageId>(p);
    msg.Send(p, 0, request);
  }
  int handled = 0;
  while (msg.HasPending(0)) {
    handled += msg.Poll(0);
  }
  EXPECT_EQ(handled, 6);
  EXPECT_EQ(handler.Take().size(), 6u);
}

TEST(MessageLayerTest, ConcurrentSendersDoNotLoseRequests) {
  Config cfg = MsgConfig(8, 4);
  MessageLayer msg(cfg);
  RecordingHandler handler;
  msg.set_handler(&handler);
  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (ProcId p = 4; p < 12; ++p) {  // two units' worth of senders
    senders.emplace_back([&, p] {
      for (int i = 0; i < kPerSender; ++i) {
        Request request;
        request.page = static_cast<PageId>(i);
        msg.Send(p, 0, request);
      }
    });
  }
  std::atomic<int> drained{0};
  std::thread poller([&] {
    while (drained.load() < 8 * kPerSender) {
      drained.fetch_add(msg.Poll(0));
    }
  });
  for (auto& t : senders) {
    t.join();
  }
  poller.join();
  EXPECT_EQ(drained.load(), 8 * kPerSender);
  EXPECT_GE(msg.heartbeat(), static_cast<std::uint64_t>(8 * kPerSender));
}

TEST(MessageLayerTest, PollFromWrongUnitFindsNothing) {
  Config cfg = MsgConfig(4, 1);
  MessageLayer msg(cfg);
  RecordingHandler handler;
  msg.set_handler(&handler);
  Request request;
  msg.Send(0, 2, request);
  EXPECT_EQ(msg.Poll(1), 0);
  EXPECT_EQ(msg.Poll(3), 0);
  EXPECT_EQ(msg.Poll(2), 1);
}

}  // namespace
}  // namespace cashmere
