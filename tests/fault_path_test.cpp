// Fault-path edge cases: access patterns that stress the OnFault state
// machine — read-then-write upgrades, write-after-invalidate merges,
// cold-vs-warm faults, fetch retry on in-flight notices, multi-page
// objects spanning superpage boundaries.
#include <gtest/gtest.h>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config FpConfig(int nodes = 2, int ppn = 2) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 64 * kPageBytes;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 3.0;
  cfg.first_touch = false;
  return cfg;
}

TEST(FaultPathTest, ReadThenWriteUpgradeCountsTwoFaults) {
  Runtime rt(FpConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 1) {
      volatile int* p = ctx.Ptr<volatile int>(a);
      const int v = p[2];  // read fault (volatile: a genuine load)
      p[0] = v + 1;        // write fault (upgrade)
      p[1] = 2;            // no fault
    }
    ctx.Barrier(0);
  });
  const Stats& s = rt.report().total;
  EXPECT_EQ(s.Get(Counter::kReadFaults), 1u);
  EXPECT_EQ(s.Get(Counter::kWriteFaults), 1u);
  EXPECT_EQ(rt.Read<int>(a), 1);  // p[2] was zero-filled
}

TEST(FaultPathTest, WriteFirstTakesSingleWriteFault) {
  Runtime rt(FpConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 1) {
      int* p = ctx.Ptr<int>(a);
      p[0] = 5;            // write fault straight to read-write
      const int v = p[0];  // no fault
      p[1] = v;
    }
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.report().total.Get(Counter::kReadFaults), 0u);
  EXPECT_EQ(rt.report().total.Get(Counter::kWriteFaults), 1u);
}

TEST(FaultPathTest, ObjectSpanningSuperpageBoundary) {
  Runtime rt(FpConfig(4, 1));
  // An array crossing pages 3|4 — a superpage boundary (4 pages/superpage),
  // so its halves have different homes.
  const GlobalAddr a = 3 * kPageBytes + kPageBytes / 2;
  constexpr int kInts = 3 * 2048;  // spans pages 3,4,5
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 2) {
      for (int i = 0; i < kInts; ++i) {
        p[i] = i + 9;
      }
    }
    ctx.Barrier(0);
    long sum = 0;
    for (int i = 0; i < kInts; ++i) {
      sum += p[i];
    }
    EXPECT_EQ(sum, static_cast<long>(kInts) * 9 + static_cast<long>(kInts) * (kInts - 1) / 2);
    ctx.Barrier(0);
  });
}

TEST(FaultPathTest, RepeatedInvalidationsConvergePerRound) {
  // Alternating writers on one page: each round the previous reader's copy
  // is stale and must refetch; counts must scale with rounds, not explode.
  Runtime rt(FpConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  constexpr int kRounds = 10;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int r = 0; r < kRounds; ++r) {
      if (ctx.proc() == r % 2) {
        p[64] = r;
      }
      ctx.Barrier(0);
      EXPECT_EQ(p[64], r);
      ctx.Barrier(0);
    }
  });
  const Stats& s = rt.report().total;
  // At most ~2 transfers per round (one per side) plus cold misses.
  EXPECT_LE(s.Get(Counter::kPageTransfers), 2u * kRounds + 6);
}

TEST(FaultPathTest, DenselySharedPageManyWriters) {
  // All 8 processors write disjoint words of one page every round.
  Runtime rt(FpConfig(4, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  constexpr int kRounds = 6;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int r = 1; r <= kRounds; ++r) {
      p[ctx.proc() * 16] = r * 100 + ctx.proc();
      ctx.Barrier(0);
      for (int q = 0; q < ctx.total_procs(); ++q) {
        EXPECT_EQ(p[q * 16], r * 100 + q) << "round " << r;
      }
      ctx.Barrier(0);
    }
  });
}

TEST(FaultPathTest, SoftwareModeSpanningEnsureCalls) {
  Config cfg = FpConfig(2, 2);
  cfg.fault_mode = FaultMode::kSoftware;
  Runtime rt(cfg);
  const GlobalAddr a = rt.heap().AllocPageAligned(4 * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      ctx.EnsureWrite(p, 4 * kPageBytes);  // multi-page ensure
      for (int i = 0; i < 4 * 2048; ++i) {
        p[i] = i;
      }
    }
    ctx.Barrier(0);
    ctx.EnsureRead(p + 4096, 2 * kPageBytes);  // middle pages only
    EXPECT_EQ(p[4096], 4096);
    EXPECT_EQ(p[8191], 8191);
    ctx.Barrier(0);
  });
}

TEST(FaultPathTest, ColdReadOfZeroFilledHeap) {
  Runtime rt(FpConfig(4, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(2 * kPageBytes);
  rt.Run([&](Context& ctx) {
    const int* p = ctx.Ptr<int>(a);
    long sum = 0;
    for (int i = 0; i < 4096; ++i) {
      sum += p[i];
    }
    EXPECT_EQ(sum, 0);  // master frames are zero-filled
  });
}

}  // namespace
}  // namespace cashmere
