// Unit tests for the async release-path coherence log
// (protocol/coherence_log.hpp): ring full/empty/wraparound, the acquire
// gate's off-by-one edges, agent shutdown with a non-empty log
// (drain-before-exit), the sequence-vector fold helpers, and a TSan-able
// MPSC stress of concurrent publishers against one drainer.
#include "cashmere/protocol/coherence_log.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "cashmere/common/config.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

std::uint64_t PublishPage(CoherenceLog& log, PageId page, VirtTime vt,
                          bool* stalled = nullptr) {
  return log.Publish(
      [&](CoherenceRecord& rec) {
        rec.page = page;
        rec.publisher = 0;
        rec.publish_vt = vt;
        rec.has_diff = false;
        rec.wn_targets = 0;
      },
      stalled);
}

TEST(CoherenceLogTest, StartsEmpty) {
  CoherenceLog log(8);
  EXPECT_TRUE(log.Empty());
  EXPECT_FALSE(log.Full());
  EXPECT_EQ(log.Peek(), nullptr);
  EXPECT_EQ(log.published_seq(), 0u);
  EXPECT_EQ(log.applied_seq(), 0u);
}

TEST(CoherenceLogTest, PublishPeekPopRoundTrip) {
  CoherenceLog log(8);
  const std::uint64_t seq = PublishPage(log, /*page=*/7, /*vt=*/100);
  EXPECT_EQ(seq, 1u);
  EXPECT_FALSE(log.Empty());

  const CoherenceRecord* rec = log.Peek();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->page, 7u);
  EXPECT_EQ(rec->seq, 1u);
  EXPECT_EQ(rec->publish_vt, 100u);

  log.PopApplied(/*applied_vt=*/250);
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.applied_seq(), 1u);
  EXPECT_EQ(log.Peek(), nullptr);
  EXPECT_EQ(log.AppliedVtOf(1), 250u);
}

TEST(CoherenceLogTest, FullAtCapacityAndDrains) {
  CoherenceLog log(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(log.Full());
    PublishPage(log, static_cast<PageId>(i), static_cast<VirtTime>(i));
  }
  EXPECT_TRUE(log.Full());
  // Draining one slot reopens the ring for exactly one more publish.
  log.PopApplied(10);
  EXPECT_FALSE(log.Full());
  PublishPage(log, 4, 4);
  EXPECT_TRUE(log.Full());
}

TEST(CoherenceLogTest, PublisherStallsOnFullRingUntilDrained) {
  CoherenceLog log(2);
  PublishPage(log, 0, 0);
  PublishPage(log, 1, 1);
  ASSERT_TRUE(log.Full());

  // The blocked publish must complete once a concurrent drain frees a slot,
  // and must report the stall.
  bool stalled = false;
  std::atomic<bool> entered{false};
  std::atomic<bool> published{false};
  std::thread publisher([&] {
    entered.store(true, std::memory_order_release);
    PublishPage(log, 2, 2, &stalled);
    published.store(true, std::memory_order_release);
  });
  // Give the publisher time to actually reach the full-ring check before
  // draining, so the stall path is exercised (not just the fast path).
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The publisher cannot make progress while the ring is full.
  EXPECT_FALSE(published.load(std::memory_order_acquire));
  log.PopApplied(5);
  publisher.join();
  EXPECT_TRUE(published.load());
  EXPECT_TRUE(stalled);
  EXPECT_EQ(log.published_seq(), 3u);
}

TEST(CoherenceLogTest, WraparoundPreservesSequenceOrder) {
  CoherenceLog log(4);
  // Push 3 rounds of the 4-slot ring through publish/apply; pages and
  // sequences must stay paired across the wrap.
  std::uint64_t expect_seq = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      const PageId page = static_cast<PageId>(round * 4 + i);
      EXPECT_EQ(PublishPage(log, page, page), ++expect_seq);
    }
    for (int i = 0; i < 4; ++i) {
      const CoherenceRecord* rec = log.Peek();
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(rec->page, static_cast<PageId>(round * 4 + i));
      EXPECT_EQ(rec->seq, log.applied_seq() + 1);
      log.PopApplied(static_cast<VirtTime>(rec->page) * 10);
    }
    EXPECT_TRUE(log.Empty());
  }
  EXPECT_EQ(log.published_seq(), 12u);
  EXPECT_EQ(log.applied_seq(), 12u);
}

// The acquire gate's exact edge: an acquirer that observed sequence s waits
// until applied_seq >= s — not s - 1 (too early: the record's write notices
// may be unposted) and not s + 1 (would deadlock on the last record).
TEST(CoherenceLogTest, GateOffByOneEdges) {
  CoherenceLog log(8);
  PublishPage(log, 0, 10);
  PublishPage(log, 1, 20);

  // Nothing applied: a gate on seq 1 must not pass.
  EXPECT_LT(log.applied_seq(), 1u);

  log.PopApplied(100);
  // Exactly seq 1 applied: a gate on 1 passes, a gate on 2 must not.
  EXPECT_GE(log.applied_seq(), 1u);
  EXPECT_LT(log.applied_seq(), 2u);
  EXPECT_EQ(log.AppliedVtOf(1), 100u);
  // Gate time of a not-yet-applied sequence is unknown (0 = conservative).
  EXPECT_EQ(log.AppliedVtOf(2), 0u);

  log.PopApplied(200);
  EXPECT_GE(log.applied_seq(), 2u);
  EXPECT_EQ(log.AppliedVtOf(2), 200u);
}

TEST(CoherenceLogTest, AppliedVtWrapsConservatively) {
  CoherenceLog log(2);  // gate ring is 4x the record ring = 8 slots
  for (std::uint64_t s = 1; s <= 20; ++s) {
    PublishPage(log, static_cast<PageId>(s), s);
    log.PopApplied(s * 100);
  }
  // Recent sequences still resolve; wrapped-past ones return 0 (the gater
  // then skips the clock reconciliation — conservative, never early).
  EXPECT_EQ(log.AppliedVtOf(20), 2000u);
  EXPECT_EQ(log.AppliedVtOf(13), 1300u);
  EXPECT_EQ(log.AppliedVtOf(5), 0u);
}

TEST(CoherenceLogTest, SeqVectorFoldHelpers) {
  constexpr int kUnits = 4;
  std::atomic<std::uint64_t> shared[kUnits] = {};
  std::uint64_t mine[kUnits] = {5, 0, 7, 2};
  PublishSeqVector(shared, mine, kUnits);
  // Max-fold: a second publisher with smaller entries must not regress.
  std::uint64_t other[kUnits] = {3, 9, 1, 2};
  PublishSeqVector(shared, other, kUnits);
  EXPECT_EQ(shared[0].load(), 5u);
  EXPECT_EQ(shared[1].load(), 9u);
  EXPECT_EQ(shared[2].load(), 7u);
  EXPECT_EQ(shared[3].load(), 2u);

  std::uint64_t acquirer[kUnits] = {6, 1, 0, 0};
  MergeSeqVector(acquirer, shared, kUnits);
  EXPECT_EQ(acquirer[0], 6u);  // own later observation wins
  EXPECT_EQ(acquirer[1], 9u);
  EXPECT_EQ(acquirer[2], 7u);
  EXPECT_EQ(acquirer[3], 2u);
}

TEST(CoherenceEngineTest, OneLogPerUnit) {
  Config cfg;
  cfg.nodes = 4;
  cfg.procs_per_node = 2;
  cfg.async.release = true;
  cfg.async.log_entries = 16;
  cfg.Validate();
  CoherenceEngine engine(cfg);
  EXPECT_EQ(engine.units(), cfg.units());
  EXPECT_TRUE(engine.AllEmpty());
  PublishPage(engine.LogOf(1), 3, 30);
  EXPECT_FALSE(engine.AllEmpty());
  engine.LogOf(1).PopApplied(60);
  EXPECT_TRUE(engine.AllEmpty());
}

// Agent shutdown with a non-empty log: Runtime::Run sets the agents' stop
// flag only after the processor threads joined, and the agent loop honours
// stop only on an empty Peek — so records published right up to the end of
// the run are applied, never abandoned. Exercised end-to-end: a run whose
// final releases publish records, then CopyOut checks the master copies.
TEST(CoherenceEngineTest, RunDrainsLogsBeforeExit) {
  Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 16 * kPageBytes;
  cfg.first_touch = false;
  cfg.async.release = true;
  cfg.async.log_entries = 4;  // tiny ring: force publish stalls too

  Runtime rt(cfg);
  constexpr int kInts = 64;
  const GlobalAddr data = rt.AllocArray<int>(kInts);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(data);
    // Every processor writes its stripe; the final ReleaseSync publishes
    // the last records with no later acquire to gate on them.
    for (int i = ctx.proc(); i < kInts; i += ctx.total_procs()) {
      p[i] = i * 3 + 1;
    }
  });
  ASSERT_NE(rt.coherence(), nullptr);
  EXPECT_TRUE(rt.coherence()->AllEmpty());
  for (int i = 0; i < kInts; ++i) {
    EXPECT_EQ(rt.Read<int>(data + static_cast<GlobalAddr>(i) * sizeof(int)),
              i * 3 + 1)
        << "index " << i;
  }
  EXPECT_EQ(rt.report().total.Get(Counter::kCohLogPublishes),
            rt.report().total.Get(Counter::kCohLogApplies));
}

// MPSC stress: several publisher threads race one drainer through a tiny
// ring. Run under TSan this exercises the publish/apply memory ordering;
// the assertions check lossless, in-order, exactly-once delivery.
TEST(CoherenceLogStressTest, ConcurrentPublishersOneDrainer) {
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 2000;
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kPublishers) * kPerPublisher;
  CoherenceLog log(8);

  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> seen_pages;
  seen_pages.reserve(kTotal);
  std::thread drainer([&] {
    Backoff backoff;
    while (true) {
      const CoherenceRecord* rec = log.Peek();
      if (rec == nullptr) {
        if (stop.load(std::memory_order_acquire)) {
          break;  // drain-before-exit: only stop on an empty log
        }
        backoff.Pause();
        continue;
      }
      backoff.Reset();
      EXPECT_EQ(rec->seq, log.applied_seq() + 1);
      seen_pages.push_back(rec->page);
      log.PopApplied(rec->publish_vt + 1);
    }
  });

  std::vector<std::thread> publishers;
  std::atomic<std::uint64_t> stalls{0};
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&, t] {
      for (int i = 0; i < kPerPublisher; ++i) {
        bool stalled = false;
        const PageId page = static_cast<PageId>(t * kPerPublisher + i);
        PublishPage(log, page, page, &stalled);
        if (stalled) {
          stalls.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : publishers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.published_seq(), kTotal);
  EXPECT_EQ(log.applied_seq(), kTotal);
  ASSERT_EQ(seen_pages.size(), kTotal);
  // Exactly-once: every page value delivered once; per-publisher order
  // preserved (each publisher's pages ascend in the drained stream).
  std::vector<int> next(kPublishers, 0);
  for (const std::uint64_t page : seen_pages) {
    const int t = static_cast<int>(page) / kPerPublisher;
    ASSERT_LT(t, kPublishers);
    EXPECT_EQ(static_cast<int>(page) % kPerPublisher, next[t]);
    ++next[t];
  }
  for (int t = 0; t < kPublishers; ++t) {
    EXPECT_EQ(next[t], kPerPublisher);
  }
  // A 8-slot ring under 4 publishers must have exercised the full path.
  EXPECT_GT(stalls.load(), 0u);
}

}  // namespace
}  // namespace cashmere
