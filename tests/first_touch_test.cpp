// First-touch home relocation tests (Section 2.3): round-robin initial
// homes, one-shot relocation to the first touching unit after
// initialization, superpage granularity, and the exclusive-mode guard.
#include <gtest/gtest.h>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config FtConfig(int nodes, int ppn) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 64 * kPageBytes;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = true;
  return cfg;
}

TEST(FirstTouchTest, RelocationMovesHomeToTouchingUnit) {
  Runtime rt(FtConfig(4, 1));
  // Superpage 1 (pages 4..7) initially homed at unit 1.
  const GlobalAddr a = 4 * kPageBytes;
  ASSERT_EQ(rt.homes().HomeOfSuperpage(1), 1);
  rt.Run([&](Context& ctx) {
    ctx.InitDone();
    if (ctx.proc() == 3) {
      int* p = ctx.Ptr<int>(a);
      p[0] = 77;  // first touch after init: superpage 1 moves to unit 3
    }
    ctx.Barrier(0);
    EXPECT_EQ(ctx.Ptr<int>(a)[0], 77);
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.homes().HomeOfSuperpage(1), 3);
  EXPECT_FALSE(rt.homes().IsDefault(1));
  EXPECT_GT(rt.report().total.Get(Counter::kHomeRelocations), 0u);
  EXPECT_EQ(rt.Read<int>(a), 77);
}

TEST(FirstTouchTest, TouchByDefaultHomeSealsWithoutRelocation) {
  Runtime rt(FtConfig(4, 1));
  const GlobalAddr a = 4 * kPageBytes;  // superpage 1, homed at unit 1
  rt.Run([&](Context& ctx) {
    ctx.InitDone();
    if (ctx.proc() == 1) {
      ctx.Ptr<int>(a)[0] = 5;
    }
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.homes().HomeOfSuperpage(1), 1);
  EXPECT_FALSE(rt.homes().IsDefault(1));  // sealed
  EXPECT_EQ(rt.report().total.Get(Counter::kHomeRelocations), 0u);
}

TEST(FirstTouchTest, DataSurvivesRelocation) {
  // Data written during initialization (before InitDone) must survive a
  // post-init relocation to another unit.
  Runtime rt(FtConfig(4, 1));
  const GlobalAddr a = 8 * kPageBytes;  // superpage 2, homed at unit 2
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 512; ++i) {
        p[i] = 9000 + i;
      }
    }
    ctx.Barrier(0);
    ctx.InitDone();
    if (ctx.proc() == 3) {
      // First post-init touch: reads must see init data even as the
      // superpage relocates.
      long sum = 0;
      for (int i = 0; i < 512; ++i) {
        sum += p[i];
      }
      EXPECT_EQ(sum, 9000L * 512 + 511L * 512 / 2);
    }
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(a + 511 * 4), 9000 + 511);
}

TEST(FirstTouchTest, ExclusiveSuperpageIsNotRelocated) {
  // If another unit holds pages of the superpage in exclusive mode, the
  // master copy is stale, so relocation must be refused (sealed instead).
  Runtime rt(FtConfig(4, 1));
  const GlobalAddr a = 12 * kPageBytes;  // superpage 3, homed at unit 3
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    ctx.InitDone();
    if (ctx.proc() == 0) {
      p[0] = 42;  // unit 0 takes it exclusive... and relocates (it's first)
    }
    ctx.Barrier(0);
    if (ctx.proc() == 1) {
      EXPECT_EQ(p[0], 42);  // regardless of where the home ended up
    }
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(a), 42);
}

TEST(FirstTouchTest, DisabledFirstTouchKeepsRoundRobin) {
  Config cfg = FtConfig(4, 1);
  cfg.first_touch = false;
  Runtime rt(cfg);
  const GlobalAddr a = 4 * kPageBytes;
  rt.Run([&](Context& ctx) {
    ctx.InitDone();
    if (ctx.proc() == 3) {
      ctx.Ptr<int>(a)[0] = 1;
    }
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.homes().HomeOfSuperpage(1), 1);
  EXPECT_EQ(rt.report().total.Get(Counter::kHomeRelocations), 0u);
}

TEST(FirstTouchTest, AllPagesOfSuperpageShareTheNewHome) {
  Runtime rt(FtConfig(4, 1));
  const GlobalAddr a = 16 * kPageBytes;  // superpage 4 -> unit 0 by default
  ASSERT_EQ(rt.homes().HomeOfSuperpage(4), 0);
  rt.Run([&](Context& ctx) {
    ctx.InitDone();
    if (ctx.proc() == 2) {
      ctx.Ptr<int>(a)[0] = 1;  // touch only the first page
    }
    ctx.Barrier(0);
  });
  if (rt.homes().HomeOfSuperpage(4) == 2) {
    for (PageId page = 16; page < 20; ++page) {
      EXPECT_EQ(rt.homes().HomeOfPage(page), 2);
    }
  }
}

TEST(FirstTouchTest, ConcurrentFirstTouchesSettleOnce) {
  // All units race to first-touch the same superpage; exactly one
  // relocation (or seal) may win, and data must stay consistent.
  for (int round = 0; round < 3; ++round) {
    Runtime rt(FtConfig(4, 2));
    const GlobalAddr a = 20 * kPageBytes;  // superpage 5 -> unit 1
    rt.Run([&](Context& ctx) {
      ctx.InitDone();
      int* p = ctx.Ptr<int>(a);
      p[ctx.proc() * 16] = ctx.proc() + 1;  // everyone races
      ctx.Barrier(0);
      for (int q = 0; q < ctx.total_procs(); ++q) {
        EXPECT_EQ(p[q * 16], q + 1);
      }
      ctx.Barrier(0);
    });
    EXPECT_FALSE(rt.homes().IsDefault(5));
  }
}

}  // namespace
}  // namespace cashmere
