// End-to-end runtime smoke tests: allocation, fault-driven sharing,
// synchronization, and result extraction across cluster shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config SmallConfig(ProtocolVariant v, int nodes, int ppn) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 1 * 1024 * 1024;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 10.0;  // fixed: keep tests deterministic-ish and fast
  cfg.first_touch = false;
  return cfg;
}

TEST(RuntimeTest, AllocRespectsAlignment) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 1, 1));
  const GlobalAddr a = rt.Alloc(10, 64);
  const GlobalAddr b = rt.Alloc(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  const GlobalAddr c = rt.heap().AllocPageAligned(10);
  EXPECT_EQ(c % kPageBytes, 0u);
}

TEST(RuntimeTest, CopyInCopyOutRoundTrip) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 2, 2));
  const GlobalAddr a = rt.AllocArray<int>(5000);
  std::vector<int> in(5000);
  std::iota(in.begin(), in.end(), 7);
  rt.CopyIn(a, in.data(), in.size() * sizeof(int));
  std::vector<int> out(5000, 0);
  rt.CopyOut(a, out.data(), out.size() * sizeof(int));
  EXPECT_EQ(in, out);
}

TEST(RuntimeTest, SingleProcessorWritesReachMaster) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 1, 1));
  const GlobalAddr a = rt.AllocArray<int>(1000);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int i = 0; i < 1000; ++i) {
      p[i] = i * 3;
    }
  });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rt.Read<int>(a + static_cast<GlobalAddr>(i) * sizeof(int)), i * 3);
  }
}

TEST(RuntimeTest, FaultCountersAreRecorded) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 2, 1));
  const GlobalAddr a = rt.AllocArray<int>(4096);  // 4 pages
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 0) {
      int* p = ctx.Ptr<int>(a);
      for (int i = 0; i < 4096; ++i) {
        p[i] = i;
      }
    }
    ctx.Barrier(0);
    if (ctx.proc() == 1) {
      const int* p = ctx.Ptr<int>(a);
      long sum = 0;
      for (int i = 0; i < 4096; ++i) {
        sum += p[i];
      }
      EXPECT_EQ(sum, 4096L * 4095 / 2);
    }
    ctx.Barrier(0);
  });
  const Stats& s = rt.report().total;
  EXPECT_GT(s.Get(Counter::kWriteFaults), 0u);
  EXPECT_GT(s.Get(Counter::kReadFaults), 0u);
  EXPECT_EQ(s.Get(Counter::kBarriers), 2u);
  EXPECT_GT(rt.report().exec_time_ns, 0u);
}

TEST(RuntimeTest, ProducerConsumerThroughBarrier) {
  for (const auto v : {ProtocolVariant::kTwoLevel, ProtocolVariant::kOneLevelDiff}) {
    Runtime rt(SmallConfig(v, 2, 2));
    constexpr int kN = 8000;
    const GlobalAddr a = rt.AllocArray<double>(kN);
    rt.Run([&](Context& ctx) {
      double* p = ctx.Ptr<double>(a);
      const int chunk = kN / ctx.total_procs();
      const int begin = ctx.proc() * chunk;
      for (int i = begin; i < begin + chunk; ++i) {
        p[i] = i * 0.5;
      }
      ctx.Barrier(0);
      // Everyone checks everyone else's chunk.
      double sum = 0;
      for (int i = 0; i < kN; ++i) {
        sum += p[i];
      }
      EXPECT_DOUBLE_EQ(sum, 0.5 * kN * (kN - 1) / 2);
      ctx.Barrier(0);
    });
  }
}

TEST(RuntimeTest, LockProtectedCounter) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 2, 2));
  const GlobalAddr a = rt.AllocArray<long>(1);
  rt.Run([&](Context& ctx) {
    for (int i = 0; i < 25; ++i) {
      ctx.LockAcquire(3);
      long* p = ctx.Ptr<long>(a);
      *p = *p + 1;
      ctx.LockRelease(3);
      ctx.Poll();
    }
  });
  EXPECT_EQ(rt.Read<long>(a), 25L * rt.config().total_procs());
  EXPECT_EQ(rt.report().total.Get(Counter::kLockAcquires),
            25u * static_cast<unsigned>(rt.config().total_procs()));
}

TEST(RuntimeTest, FlagsProvideProducerConsumerOrdering) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 2, 1));
  const GlobalAddr a = rt.AllocArray<int>(256);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 256; ++i) {
        p[i] = 1000 + i;
      }
      ctx.FlagSet(0, 1);
    } else {
      ctx.FlagWaitGe(0, 1);
      for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(p[i], 1000 + i);
      }
    }
  });
}

TEST(RuntimeTest, SoftwareFaultModeMatchesSigsegv) {
  Config cfg = SmallConfig(ProtocolVariant::kTwoLevel, 2, 2);
  cfg.fault_mode = FaultMode::kSoftware;
  Runtime rt(cfg);
  constexpr int kN = 4000;
  const GlobalAddr a = rt.AllocArray<int>(kN);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    const int chunk = kN / ctx.total_procs();
    const int begin = ctx.proc() * chunk;
    ctx.EnsureWrite(p + begin, chunk * sizeof(int));
    for (int i = begin; i < begin + chunk; ++i) {
      p[i] = i;
    }
    ctx.Barrier(0);
    ctx.EnsureRead(p, kN * sizeof(int));
    long sum = 0;
    for (int i = 0; i < kN; ++i) {
      sum += p[i];
    }
    EXPECT_EQ(sum, static_cast<long>(kN) * (kN - 1) / 2);
    ctx.Barrier(0);
  });
}

TEST(RuntimeTest, MultipleRunPhasesShareCoherenceState) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 2, 2));
  const GlobalAddr a = rt.AllocArray<int>(2048);
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 0) {
      for (int i = 0; i < 2048; ++i) {
        ctx.Ptr<int>(a)[i] = i;
      }
    }
    ctx.Barrier(0);
  });
  const auto first_faults = rt.report().total.Get(Counter::kWriteFaults);
  EXPECT_GT(first_faults, 0u);
  rt.Run([&](Context& ctx) {
    long sum = 0;
    const int* p = ctx.Ptr<int>(a);
    for (int i = 0; i < 2048; ++i) {
      sum += p[i];
    }
    EXPECT_EQ(sum, 2048L * 2047 / 2);
  });
  // The second phase's report covers only the second phase.
  EXPECT_EQ(rt.report().total.Get(Counter::kWriteFaults), 0u);
  EXPECT_EQ(rt.report().total.Get(Counter::kBarriers), 0u);
}

TEST(RuntimeTest, CsvExportHasMatchingColumns) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 1, 2));
  const GlobalAddr a = rt.AllocArray<int>(16);
  rt.Run([&](Context& ctx) {
    ctx.Ptr<int>(a)[ctx.proc()] = 1;
    ctx.Barrier(0);
  });
  const std::string header = StatsReport::CsvHeader();
  const std::string row = rt.report().ToCsvRow();
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(header.find("Page_Transfers"), std::string::npos);
}

TEST(RuntimeTest, ExecutionTimeBreakdownCoversCategories) {
  Runtime rt(SmallConfig(ProtocolVariant::kTwoLevel, 2, 2));
  const GlobalAddr a = rt.AllocArray<double>(8000);
  rt.Run([&](Context& ctx) {
    double* p = ctx.Ptr<double>(a);
    for (int iter = 0; iter < 3; ++iter) {
      for (int i = ctx.proc(); i < 8000; i += ctx.total_procs()) {
        p[i] += 1.0;
      }
      ctx.Barrier(0);
      ctx.Poll();
    }
  });
  const Stats& s = rt.report().total;
  EXPECT_GT(s.time_ns[static_cast<int>(TimeCategory::kUser)], 0u);
  EXPECT_GT(s.time_ns[static_cast<int>(TimeCategory::kProtocol)], 0u);
}

}  // namespace
}  // namespace cashmere
