// Unit and property tests for the diff engine — the heart of the
// multiple-writer protocol. The key invariants:
//  - outgoing diffs move exactly the locally modified words to the master;
//  - flush-update leaves twin == working for every flushed word;
//  - incoming diffs apply exactly the remote modifications and never
//    disturb concurrent local modifications (data-race-free => disjoint);
//  - merging N writers' diffs at the master reconstructs all N writers'
//    words regardless of order.
#include <gtest/gtest.h>

#include <vector>

#include "cashmere/common/rng.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {
namespace {

using Page = std::vector<std::uint32_t>;

Page MakePage(std::uint64_t seed) {
  Page p(kWordsPerPage);
  SplitMix64 rng(seed);
  for (auto& w : p) {
    w = static_cast<std::uint32_t>(rng.Next());
  }
  return p;
}

std::byte* Bytes(Page& p) { return reinterpret_cast<std::byte*>(p.data()); }

TEST(DiffTest, OutgoingDiffWritesOnlyChangedWords) {
  Page master = MakePage(1);
  Page twin = master;
  Page working = master;
  working[0] = 111;
  working[100] = 222;
  working[kWordsPerPage - 1] = 333;
  const std::size_t n = ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master), false);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(master[0], 111u);
  EXPECT_EQ(master[100], 222u);
  EXPECT_EQ(master[kWordsPerPage - 1], 333u);
  EXPECT_EQ(master[1], twin[1]);
  // Without flush_update the twin is untouched.
  EXPECT_NE(twin[0], 111u);
}

TEST(DiffTest, FlushUpdateSynchronizesTwin) {
  Page master = MakePage(2);
  Page twin = master;
  Page working = master;
  working[7] = 0x1234;
  ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master), true);
  EXPECT_EQ(twin[7], 0x1234u);
  // A second flush finds nothing to do.
  const std::size_t n = ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master), true);
  EXPECT_EQ(n, 0u);
}

TEST(DiffTest, IncomingDiffMergesRemoteWithoutDisturbingLocal) {
  Page master = MakePage(3);
  Page twin = master;    // node's view of the master
  Page working = master;
  // Local writer modifies words 10..19 (unflushed).
  for (int i = 10; i < 20; ++i) {
    working[i] = 0xAAAA0000u + i;
  }
  // Remote writer's modifications arrive in a fresh master image: words
  // 100..109 (data-race-free: disjoint from local ones).
  Page incoming = master;
  for (int i = 100; i < 110; ++i) {
    incoming[i] = 0xBBBB0000u + i;
  }
  const std::size_t n = ApplyIncomingDiff(Bytes(incoming), Bytes(twin), Bytes(working));
  EXPECT_EQ(n, 10u);
  for (int i = 10; i < 20; ++i) {
    EXPECT_EQ(working[i], 0xAAAA0000u + i) << "local modification clobbered";
  }
  for (int i = 100; i < 110; ++i) {
    EXPECT_EQ(working[i], 0xBBBB0000u + i) << "remote modification missed";
    EXPECT_EQ(twin[i], 0xBBBB0000u + i) << "twin not updated";
  }
  // Subsequent outgoing diff must flush only the local words.
  Page master2 = incoming;
  const std::size_t out = ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master2), true);
  EXPECT_EQ(out, 10u);
}

TEST(DiffTest, CopyPageAndCountDiffWords) {
  Page a = MakePage(4);
  Page b(kWordsPerPage, 0);
  EXPECT_GT(CountDiffWords(Bytes(a), Bytes(b)), kWordsPerPage / 2);
  CopyPage(Bytes(b), Bytes(a));
  EXPECT_EQ(CountDiffWords(Bytes(a), Bytes(b)), 0u);
  EXPECT_EQ(a, b);
}

// Property: N writers each modify a disjoint word set; merging their
// outgoing diffs into the master in any order reconstructs every write.
class MultiWriterMergeTest : public testing::TestWithParam<int> {};

TEST_P(MultiWriterMergeTest, DisjointWritersMergeExactly) {
  const int writers = GetParam();
  SplitMix64 rng(1000 + writers);
  Page master = MakePage(5);
  const Page original = master;

  struct Writer {
    Page twin;
    Page working;
    std::vector<int> words;
  };
  std::vector<Writer> ws(writers);
  // Assign each word to at most one writer.
  std::vector<int> owner(kWordsPerPage, -1);
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    if (rng.NextBelow(3) == 0) {
      owner[i] = static_cast<int>(rng.NextBelow(writers));
    }
  }
  for (int w = 0; w < writers; ++w) {
    ws[w].twin = original;
    ws[w].working = original;
  }
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    if (owner[i] >= 0) {
      ws[owner[i]].working[i] = 0xC0000000u | static_cast<std::uint32_t>(i);
      ws[owner[i]].words.push_back(static_cast<int>(i));
    }
  }
  // Merge in a shuffled order.
  std::vector<int> order(writers);
  for (int w = 0; w < writers; ++w) {
    order[w] = w;
  }
  for (int w = writers - 1; w > 0; --w) {
    std::swap(order[w], order[rng.NextBelow(static_cast<std::uint64_t>(w + 1))]);
  }
  for (const int w : order) {
    ApplyOutgoingDiff(Bytes(ws[w].working), Bytes(ws[w].twin), Bytes(master), true);
  }
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    if (owner[i] >= 0) {
      EXPECT_EQ(master[i], 0xC0000000u | static_cast<std::uint32_t>(i));
    } else {
      EXPECT_EQ(master[i], original[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WriterCounts, MultiWriterMergeTest, testing::Values(2, 3, 4, 8, 16));

// Property: alternating rounds of incoming and outgoing diffs keep twin,
// working and master mutually consistent under disjoint updates.
TEST(DiffPropertyTest, AlternatingRoundsConverge) {
  SplitMix64 rng(99);
  Page master = MakePage(6);
  Page twin = master;
  Page working = master;
  for (int round = 0; round < 20; ++round) {
    // Remote round: mutate some "remote" words directly in the master.
    for (int k = 0; k < 10; ++k) {
      const std::size_t i = rng.NextBelow(kWordsPerPage / 2);  // remote half
      master[i] = static_cast<std::uint32_t>(rng.Next());
    }
    ApplyIncomingDiff(Bytes(master), Bytes(twin), Bytes(working));
    // Local round: mutate local-half words in the working copy and flush.
    for (int k = 0; k < 10; ++k) {
      const std::size_t i = kWordsPerPage / 2 + rng.NextBelow(kWordsPerPage / 2);
      working[i] = static_cast<std::uint32_t>(rng.Next());
    }
    ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master), true);
    EXPECT_EQ(CountDiffWords(Bytes(working), Bytes(master)), 0u);
    EXPECT_EQ(CountDiffWords(Bytes(twin), Bytes(master)), 0u);
  }
}

}  // namespace
}  // namespace cashmere
