// Unit tests for the Memory Channel layer: word atomicity, ordered
// broadcast, traffic accounting through the single Issue() funnel, and the
// lock-array use case the synchronization layer depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cashmere/mc/hub.hpp"

namespace cashmere {
namespace {

TEST(McHubTest, Write32AppliesValueAndAccountsTraffic) {
  McHub hub(8);
  std::uint32_t word = 0;
  hub.Issue(McOp::Word(&word, 0xdeadbeef, Traffic::kWriteNotice));
  EXPECT_EQ(LoadWord32(&word), 0xdeadbeefu);
  EXPECT_EQ(hub.BytesSent(Traffic::kWriteNotice), kWordBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kWriteNotice), 1u);
}

TEST(McHubTest, OrderedBroadcastAccountsPerReplica) {
  McHub hub(8);
  std::uint32_t word = 0;
  hub.Issue(McOp::Broadcast(&word, 7, Traffic::kDirectory));
  EXPECT_EQ(LoadWord32(&word), 7u);
  // Broadcast traffic counts one word per replica (8 nodes).
  EXPECT_EQ(hub.BytesSent(Traffic::kDirectory), 8 * kWordBytes);
}

TEST(McHubTest, WriteStreamMovesWholePages) {
  McHub hub(2);
  std::vector<std::uint32_t> src(kWordsPerPage);
  std::vector<std::uint32_t> dst(kWordsPerPage, 0);
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    src[i] = static_cast<std::uint32_t>(i * 3 + 1);
  }
  hub.Issue(McOp::Stream(dst.data(), src.data(), kWordsPerPage, Traffic::kPageData));
  EXPECT_EQ(src, dst);
  EXPECT_EQ(hub.BytesSent(Traffic::kPageData), kPageBytes);
}

TEST(McHubTest, DataBytesCountsOnlyDataClasses) {
  McHub hub(4);
  hub.AccountWrite(Traffic::kPageData, 100);
  hub.AccountWrite(Traffic::kDiffData, 50);
  hub.AccountWrite(Traffic::kWriteNotice, 4);
  hub.AccountWrite(Traffic::kDirectory, 1000);   // excluded
  hub.AccountWrite(Traffic::kSyncObject, 1000);  // excluded
  EXPECT_EQ(hub.DataBytes(), 154u);
  EXPECT_EQ(hub.TotalBytes(), 2154u);
}

TEST(McHubTest, OrderedExchangeReturnsPrevious) {
  McHub hub(4);
  std::uint32_t word = 11;
  EXPECT_EQ(hub.Issue(McOp::Exchange(&word, 22, Traffic::kSyncObject)), 11u);
  EXPECT_EQ(LoadWord32(&word), 22u);
}

// Regression pin for the Issue() refactor: the per-call accounting that
// used to live in Write32/WriteStream/WriteRun/OrderedBroadcast32/
// OrderedExchange32 now derives from McOp::WireBytes in one funnel. This
// fixed op sequence must charge exactly the bytes and write counts the
// per-method arithmetic charged before the transport seam existed —
// deterministic-app counter reports stay byte-identical iff this holds.
TEST(McHubTest, InprocCountersMatchPrePluggableAccounting) {
  constexpr int kUnits = 8;
  McHub hub(kUnits);
  EXPECT_STREQ(hub.transport().name(), "inproc");

  std::uint32_t word = 0;
  std::vector<std::uint32_t> page(kWordsPerPage, 0);
  std::vector<std::uint32_t> src(kWordsPerPage, 0x12345678);

  hub.Issue(McOp::Word(&word, 1, Traffic::kWriteNotice));
  hub.Issue(McOp::Stream(page.data(), src.data(), kWordsPerPage, Traffic::kPageData));
  // A 7-word diff run with the 8-byte framing header charged (the
  // diff.charge_run_headers cost variant's WriteRun signature).
  hub.Issue(McOp::Run(page.data(), 3, src.data(), 7, Traffic::kDiffData,
                      /*header_bytes=*/8));
  // And one without framing (the default).
  hub.Issue(McOp::Run(page.data(), 64, src.data(), 5, Traffic::kDiffData));
  hub.Issue(McOp::Broadcast(&word, 2, Traffic::kDirectory));
  hub.Issue(McOp::Exchange(&word, 3, Traffic::kSyncObject));

  // Pre-PR arithmetic: Write32 -> kWordBytes; WriteStream -> words*4;
  // WriteRun -> nwords*4 + header_bytes; ordered ops -> kWordBytes*units.
  // One write count per call regardless of size.
  EXPECT_EQ(hub.BytesSent(Traffic::kWriteNotice), kWordBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kWriteNotice), 1u);
  EXPECT_EQ(hub.BytesSent(Traffic::kPageData), kPageBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kPageData), 1u);
  EXPECT_EQ(hub.BytesSent(Traffic::kDiffData), 7u * kWordBytes + 8u + 5u * kWordBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kDiffData), 2u);
  EXPECT_EQ(hub.BytesSent(Traffic::kDirectory), kUnits * kWordBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kDirectory), 1u);
  EXPECT_EQ(hub.BytesSent(Traffic::kSyncObject), kUnits * kWordBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kSyncObject), 1u);
  EXPECT_EQ(hub.TotalBytes(), kWordBytes + kPageBytes + 7u * kWordBytes + 8u +
                                  5u * kWordBytes + 2u * kUnits * kWordBytes);
  EXPECT_EQ(hub.DataBytes(), kPageBytes + 7u * kWordBytes + 8u + 5u * kWordBytes +
                                 kWordBytes);
}

// MC guarantees that two writes to the same region appear in the same order
// everywhere. With the hub's ordered broadcast, concurrent single-writer
// claims can be arbitrated: each writer sets its slot and reads the array;
// at most one writer can observe itself alone.
TEST(McHubTest, OrderedBroadcastArbitratesConcurrentClaims) {
  for (int round = 0; round < 50; ++round) {
    McHub hub(2);
    std::uint32_t slots[2] = {0, 0};
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int me = 0; me < 2; ++me) {
      threads.emplace_back([&, me] {
        hub.Issue(McOp::Broadcast(&slots[me], 1, Traffic::kSyncObject));
        const bool alone = LoadWord32(&slots[1 - me]) == 0;
        if (alone) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_LE(winners.load(), 1) << "both claimants believed they were alone";
  }
}

TEST(CopyWords32Test, ConcurrentCopyNeverTearsWords) {
  // A writer flips one word between two values while a reader copies the
  // page; every copied word must be one of the two values (32-bit
  // atomicity), never a mix.
  std::vector<std::uint32_t> page(kWordsPerPage, 0xAAAAAAAA);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t v = 0x55555555;
    while (!stop.load(std::memory_order_relaxed)) {
      StoreWord32(&page[17], v);
      v = ~v;
    }
  });
  std::vector<std::uint32_t> snapshot(kWordsPerPage);
  for (int i = 0; i < 200; ++i) {
    CopyWords32(snapshot.data(), page.data(), kWordsPerPage);
    EXPECT_TRUE(snapshot[17] == 0x55555555u || snapshot[17] == 0xAAAAAAAAu)
        << std::hex << snapshot[17];
    EXPECT_EQ(snapshot[16], 0xAAAAAAAAu);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace cashmere
