// Unit tests for the Memory Channel simulator: word atomicity, ordered
// broadcast, traffic accounting, and the lock-array use case the
// synchronization layer depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cashmere/mc/hub.hpp"

namespace cashmere {
namespace {

TEST(McHubTest, Write32AppliesValueAndAccountsTraffic) {
  McHub hub(8);
  std::uint32_t word = 0;
  hub.Write32(&word, 0xdeadbeef, Traffic::kWriteNotice);
  EXPECT_EQ(LoadWord32(&word), 0xdeadbeefu);
  EXPECT_EQ(hub.BytesSent(Traffic::kWriteNotice), kWordBytes);
  EXPECT_EQ(hub.WritesSent(Traffic::kWriteNotice), 1u);
}

TEST(McHubTest, OrderedBroadcastAccountsPerReplica) {
  McHub hub(8);
  std::uint32_t word = 0;
  hub.OrderedBroadcast32(&word, 7, Traffic::kDirectory);
  EXPECT_EQ(LoadWord32(&word), 7u);
  // Broadcast traffic counts one word per replica (8 nodes).
  EXPECT_EQ(hub.BytesSent(Traffic::kDirectory), 8 * kWordBytes);
}

TEST(McHubTest, WriteStreamMovesWholePages) {
  McHub hub(2);
  std::vector<std::uint32_t> src(kWordsPerPage);
  std::vector<std::uint32_t> dst(kWordsPerPage, 0);
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    src[i] = static_cast<std::uint32_t>(i * 3 + 1);
  }
  hub.WriteStream(dst.data(), src.data(), kWordsPerPage, Traffic::kPageData);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(hub.BytesSent(Traffic::kPageData), kPageBytes);
}

TEST(McHubTest, DataBytesCountsOnlyDataClasses) {
  McHub hub(4);
  hub.AccountWrite(Traffic::kPageData, 100);
  hub.AccountWrite(Traffic::kDiffData, 50);
  hub.AccountWrite(Traffic::kWriteNotice, 4);
  hub.AccountWrite(Traffic::kDirectory, 1000);   // excluded
  hub.AccountWrite(Traffic::kSyncObject, 1000);  // excluded
  EXPECT_EQ(hub.DataBytes(), 154u);
  EXPECT_EQ(hub.TotalBytes(), 2154u);
}

TEST(McHubTest, OrderedExchangeReturnsPrevious) {
  McHub hub(4);
  std::uint32_t word = 11;
  EXPECT_EQ(hub.OrderedExchange32(&word, 22, Traffic::kSyncObject), 11u);
  EXPECT_EQ(LoadWord32(&word), 22u);
}

// MC guarantees that two writes to the same region appear in the same order
// everywhere. With the hub's ordered broadcast, concurrent single-writer
// claims can be arbitrated: each writer sets its slot and reads the array;
// at most one writer can observe itself alone.
TEST(McHubTest, OrderedBroadcastArbitratesConcurrentClaims) {
  for (int round = 0; round < 50; ++round) {
    McHub hub(2);
    std::uint32_t slots[2] = {0, 0};
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int me = 0; me < 2; ++me) {
      threads.emplace_back([&, me] {
        hub.OrderedBroadcast32(&slots[me], 1, Traffic::kSyncObject);
        const bool alone = LoadWord32(&slots[1 - me]) == 0;
        if (alone) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_LE(winners.load(), 1) << "both claimants believed they were alone";
  }
}

TEST(CopyWords32Test, ConcurrentCopyNeverTearsWords) {
  // A writer flips one word between two values while a reader copies the
  // page; every copied word must be one of the two values (32-bit
  // atomicity), never a mix.
  std::vector<std::uint32_t> page(kWordsPerPage, 0xAAAAAAAA);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t v = 0x55555555;
    while (!stop.load(std::memory_order_relaxed)) {
      StoreWord32(&page[17], v);
      v = ~v;
    }
  });
  std::vector<std::uint32_t> snapshot(kWordsPerPage);
  for (int i = 0; i < 200; ++i) {
    CopyWords32(snapshot.data(), page.data(), kWordsPerPage);
    EXPECT_TRUE(snapshot[17] == 0x55555555u || snapshot[17] == 0xAAAAAAAAu)
        << std::hex << snapshot[17];
    EXPECT_EQ(snapshot[16], 0xAAAAAAAAu);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace cashmere
