// Exclusive-mode tests (Section 2.4.1): entry when the sharing set is
// empty, zero overhead while held, break on remote access, re-entry, and
// the stale-master hazard when the home node itself reads an
// exclusively-held page.
#include <gtest/gtest.h>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config XConfig(int nodes, int ppn, ProtocolVariant v = ProtocolVariant::kTwoLevel) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 256 * 1024;
  cfg.superpage_pages = 2;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = false;
  return cfg;
}

TEST(ExclusiveTest, SoleWriterEntersExclusiveMode) {
  Runtime rt(XConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 1) {
      int* p = ctx.Ptr<int>(a);
      for (int round = 0; round < 50; ++round) {
        p[round] = round;
      }
    }
    ctx.Barrier(0);
  });
  // One transition in, and since nobody else touched the page, no flushes
  // or write notices for it.
  EXPECT_GE(rt.report().total.Get(Counter::kExclTransitions), 1u);
  EXPECT_EQ(rt.report().total.Get(Counter::kWriteNotices), 0u);
  // FinalFlush still publishes the data.
  EXPECT_EQ(rt.Read<int>(a + 49 * 4), 49);
}

TEST(ExclusiveTest, RemoteReadBreaksExclusiveAndGetsLatestData) {
  Runtime rt(XConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 1) {
      for (int i = 0; i < 100; ++i) {
        p[i] = 1000 + i;
      }
    }
    ctx.Barrier(0);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(p[i], 1000 + i);
      }
    }
    ctx.Barrier(0);
  });
  // In, then out when broken.
  EXPECT_GE(rt.report().total.Get(Counter::kExclTransitions), 2u);
}

TEST(ExclusiveTest, HomeNodeReadSeesExclusiveHoldersData) {
  // The master copy is stale while another unit holds the page exclusive;
  // the home node's own read must break exclusivity first. Page 0's home
  // is unit 0; unit 1 writes it exclusively; unit 0 then reads.
  Runtime rt(XConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 1) {
      for (int i = 0; i < 64; ++i) {
        p[i] = 7 * i + 1;
      }
    }
    ctx.Barrier(0);
    if (ctx.proc() == 0) {
      long sum = 0;
      for (int i = 0; i < 64; ++i) {
        sum += p[i];
      }
      EXPECT_EQ(sum, 7L * 63 * 64 / 2 + 64);
    }
    ctx.Barrier(0);
  });
}

TEST(ExclusiveTest, PageReentersExclusiveAfterSharersLeave) {
  // Three nodes, so neither the writer (unit 1) nor the reader (unit 2) is
  // the page's home (unit 0): the home keeps no mapping, and once the
  // reader's copy is invalidated the sharing set empties and the writer
  // re-claims exclusivity.
  Runtime rt(XConfig(3, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    // Round 1: proc 1 writes (exclusive), proc 2 reads (breaks it).
    if (ctx.proc() == 1) {
      p[0] = 1;
    }
    ctx.Barrier(0);
    if (ctx.proc() == 2) {
      EXPECT_EQ(p[0], 1);
    }
    ctx.Barrier(0);
    // Rounds 2..N: only proc 1 touches the page. After proc 2's copy is
    // invalidated by the first round's write notice, proc 1's next write
    // finds an empty sharing set and re-claims exclusivity.
    for (int round = 2; round <= 6; ++round) {
      if (ctx.proc() == 1) {
        p[0] = round;
      }
      ctx.Barrier(0);
    }
  });
  // in (1) + out (break) + in again (re-entry) => at least 3.
  EXPECT_GE(rt.report().total.Get(Counter::kExclTransitions), 3u);
  EXPECT_EQ(rt.Read<int>(a), 6);
}

TEST(ExclusiveTest, LocalJoinKeepsExclusiveMode) {
  // A second processor of the holder node joining (read or write) must not
  // break node-level exclusivity (hardware coherence covers it).
  Runtime rt(XConfig(2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.node() == 1) {
      // Both processors of node 1 write the page.
      for (int i = 0; i < 32; ++i) {
        p[ctx.local_index() * 64 + i] = ctx.proc() * 100 + i;
      }
    }
    ctx.Barrier(0);
  });
  const Stats& s = rt.report().total;
  // One entry into exclusive mode; the local join is not a transition.
  // (FinalFlush clears it without counting.)
  EXPECT_EQ(s.Get(Counter::kExclTransitions), 1u);
  EXPECT_EQ(s.Get(Counter::kWriteNotices), 0u);
  EXPECT_EQ(rt.Read<int>(a + 64 * 4), 300);  // proc 3's first element
}

TEST(ExclusiveTest, ConcurrentClaimsResolveToAtMostOneHolder) {
  // Two units write disjoint words of the same never-before-shared page at
  // the same moment; the ordered directory broadcast lets at most one hold
  // exclusivity, and no data may be lost either way.
  for (int round = 0; round < 5; ++round) {
    Runtime rt(XConfig(2, 1));
    const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
    rt.Run([&](Context& ctx) {
      int* p = ctx.Ptr<int>(a);
      p[ctx.proc() * 512] = ctx.proc() + 1;  // both write "simultaneously"
      ctx.Barrier(0);
      EXPECT_EQ(p[0], 1);
      EXPECT_EQ(p[512], 2);
      ctx.Barrier(0);
    });
    EXPECT_EQ(rt.Read<int>(a), 1);
    EXPECT_EQ(rt.Read<int>(a + 512 * 4), 2);
  }
}

TEST(ExclusiveTest, WriteFaultOnExclusiveElsewhereBreaksAndShares) {
  Runtime rt(XConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 1) {
      p[0] = 5;  // exclusive claim by unit 1
    }
    ctx.Barrier(0);
    if (ctx.proc() == 0) {
      p[1] = 6;  // write fault: must break unit 1's exclusivity
    }
    ctx.Barrier(0);
    EXPECT_EQ(p[0], 5);
    EXPECT_EQ(p[1], 6);
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(a), 5);
  EXPECT_EQ(rt.Read<int>(a + 4), 6);
}

}  // namespace
}  // namespace cashmere
