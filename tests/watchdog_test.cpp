// Deadlock watchdog: a program that spins on shared memory without any
// synchronization or polling never observes remote updates under release
// consistency (its cached copy is never invalidated); the watchdog must
// detect the lack of progress and abort with a diagnostic.
#include <gtest/gtest.h>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

TEST(WatchdogDeathTest, SpinningWithoutSynchronizationAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Config cfg;
        cfg.nodes = 2;
        cfg.procs_per_node = 1;
        cfg.heap_bytes = 64 * 1024;
        cfg.cost.time_scale = 3.0;
        cfg.watchdog_seconds = 2.0;  // fast abort for the test
        Runtime rt(cfg);
        const GlobalAddr a = rt.AllocArray<int>(16);
        rt.Run([&](Context& ctx) {
          volatile int* p = ctx.Ptr<volatile int>(a);
          if (ctx.proc() == 0) {
            ctx.Barrier(0);
            p[0] = 1;  // never released: no write notice is ever sent
            ctx.Barrier(1);
          } else {
            (void)p[0];  // warm the local copy (value 0) before the write
            ctx.Barrier(0);
            // BUG (deliberate): spinning on a DSM location without an
            // acquire. The cached copy is never invalidated, so this loop
            // cannot terminate; the watchdog must fire.
            while (p[0] == 0) {
            }
            ctx.Barrier(1);
          }
        });
      },
      "watchdog");
}

// With tracing enabled, the stall diagnostic must also drain the retained
// per-processor trace-ring tails so the post-mortem shows what each
// processor last did — the death regex pins the drain header, and the
// barrier-arrive event name proves real events (not garbage) are printed:
// the spinning processor's tail necessarily ends with its Barrier(0)
// arrive/depart pair.
TEST(WatchdogDeathTest, StallDumpDrainsTraceRingTails) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Config cfg;
        cfg.nodes = 2;
        cfg.procs_per_node = 1;
        cfg.heap_bytes = 64 * 1024;
        cfg.cost.time_scale = 3.0;
        cfg.watchdog_seconds = 2.0;
        cfg.trace.enabled = true;
        Runtime rt(cfg);
        const GlobalAddr a = rt.AllocArray<int>(16);
        rt.Run([&](Context& ctx) {
          volatile int* p = ctx.Ptr<volatile int>(a);
          if (ctx.proc() == 0) {
            ctx.Barrier(0);
            p[0] = 1;
            ctx.Barrier(1);
          } else {
            (void)p[0];
            ctx.Barrier(0);
            while (p[0] == 0) {
            }
            ctx.Barrier(1);
          }
        });
      },
      "trace ring tails.*barrier-arrive");
}

}  // namespace
}  // namespace cashmere
