// Replay invariant checker tests: a hand-built legal stream passes, each
// deliberate corruption (twin parity, exclusive isolation, missing write
// notice, directory regression, broken request pairing, unbalanced faults)
// is caught, incomplete streams skip only the existence checks, and a real
// traced run end-to-end checks clean.
#include <gtest/gtest.h>

#include <vector>

#include "cashmere/common/trace_check.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config TestConfig() {
  Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 1 * 1024 * 1024;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 10.0;
  cfg.first_touch = false;
  cfg.trace.enabled = true;
  return cfg;
}

// Events below are authored in merged order: vt increases monotonically per
// proc, and page transitions carry increasing per-page seq.
TraceEvent Ev(EventKind kind, std::uint16_t proc, VirtTime vt, std::uint32_t page,
              std::uint32_t seq, std::uint32_t a0, std::uint64_t a1) {
  TraceEvent e;
  e.kind = static_cast<std::uint8_t>(kind);
  e.proc = proc;
  e.vt = vt;
  e.page = page;
  e.seq = seq;
  e.a0 = a0;
  e.a1 = a1;
  return e;
}

// A legal little history on page 3 of unit 0 (procs 0-1) with a fetch from
// unit 1 (procs 2-3): twin lifecycle, a write notice drained before a diff
// arrives, a paired request flow, balanced fault/barrier episodes.
std::vector<TraceEvent> LegalStream() {
  const std::uint64_t flow = (2ull << 32) | 1;  // requester p2, seq 1
  return {
      Ev(EventKind::kFaultBegin, 0, 10, 3, 0, 1, 0),
      Ev(EventKind::kTwinCreate, 0, 12, 3, 1, 0, 1),
      Ev(EventKind::kFaultEnd, 0, 14, 3, 0, 0, 0),
      Ev(EventKind::kWnDrainGlobal, 0, 20, 3, 2, 0, 19),
      Ev(EventKind::kDiffApplyIncoming, 0, 22, 3, 3, 16, 0),
      Ev(EventKind::kTwinDiscard, 0, 24, 3, 4, 0, 2),
      Ev(EventKind::kReqSend, 2, 30, 3, 0, 0, flow),
      Ev(EventKind::kReqServe, 0, 31, kNoTracePage, 0, 0, flow),
      Ev(EventKind::kReqDone, 2, 35, 3, 0, 0, flow),
      Ev(EventKind::kDirUpdate, 0, 40, 3, 5, 0, 7),
      Ev(EventKind::kDirUpdate, 0, 44, 3, 6, 0, 9),
      Ev(EventKind::kBarrierArrive, 1, 50, kNoTracePage, 0, 0, 0),
      Ev(EventKind::kBarrierDepart, 1, 60, kNoTracePage, 0, 0, 0),
  };
}

TEST(TraceCheckTest, LegalStreamPasses) {
  const TraceCheckResult r = CheckTrace(LegalStream(), TestConfig(), /*dropped=*/0);
  EXPECT_TRUE(r.ok) << r.ToString();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.issues.size(), 0u);
}

TEST(TraceCheckTest, CatchesEvenGenerationTwinCreate) {
  std::vector<TraceEvent> s = LegalStream();
  s[1].a1 = 2;  // twin created with an even generation
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, CatchesDoubleTwinCreate) {
  std::vector<TraceEvent> s = LegalStream();
  s[5] = Ev(EventKind::kTwinCreate, 0, 24, 3, 4, 0, 3);  // second create, no discard
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, CatchesDiffWithoutWriteNotice) {
  std::vector<TraceEvent> s = LegalStream();
  s.erase(s.begin() + 3);  // drop the kWnDrainGlobal
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, PiggybackedDiffNeedsNoWriteNotice) {
  std::vector<TraceEvent> s = LegalStream();
  s.erase(s.begin() + 3);   // drop the kWnDrainGlobal...
  s[3].a1 = 1;              // ...but mark the diff as a break-exclusive reply
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_TRUE(r.ok) << r.ToString();
}

TEST(TraceCheckTest, CatchesDiffIntoExclusivePage) {
  std::vector<TraceEvent> s = LegalStream();
  // Enter exclusive mode before the diff arrives and never break it;
  // renumber the later page transitions so seq stays strictly increasing
  // and the only violation is the diff into an exclusive page.
  s.insert(s.begin() + 4, Ev(EventKind::kExclEnter, 0, 21, 3, 3, 0, 0));
  s[5].seq = 4;   // kDiffApplyIncoming
  s[6].seq = 5;   // kTwinDiscard
  s[10].seq = 6;  // kDirUpdate
  s[11].seq = 7;  // kDirUpdate
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, CatchesDirectoryClockRegression) {
  std::vector<TraceEvent> s = LegalStream();
  s[10].a1 = 5;  // second kDirUpdate stamps an earlier unit clock
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, CatchesUnpairedRequestFlow) {
  std::vector<TraceEvent> s = LegalStream();
  s.erase(s.begin() + 8);  // drop the kReqDone: flow sent+served, never done
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, ServeSortedBeforeSendStillPairs) {
  // Responder clocks are not ordered against the requester's: a serve may
  // precede its send in the merged order. Pairing must not flag this.
  std::vector<TraceEvent> s = LegalStream();
  std::swap(s[6], s[7]);
  s[6].vt = 29;  // keep per-proc clocks monotone after the swap
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_TRUE(r.ok) << r.ToString();
}

TEST(TraceCheckTest, CatchesUnbalancedFault) {
  std::vector<TraceEvent> s = LegalStream();
  s.erase(s.begin() + 2);  // drop the kFaultEnd
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, CatchesVirtualClockRegression) {
  std::vector<TraceEvent> s = LegalStream();
  s[2].vt = 5;  // p0 goes backwards
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, CatchesMalformedProc) {
  std::vector<TraceEvent> s = LegalStream();
  s[0].proc = 99;  // beyond cfg.total_procs()
  const TraceCheckResult r = CheckTrace(s, TestConfig(), 0);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, IncompleteStreamSkipsExistenceChecks) {
  std::vector<TraceEvent> s = LegalStream();
  s.erase(s.begin());      // stream lost its prefix (wrapped ring)...
  s.erase(s.begin() + 1);  // ...including a fault-begin and the wn drain
  s.erase(s.begin() + 1);
  const TraceCheckResult r = CheckTrace(s, TestConfig(), /*dropped=*/3);
  // Orphaned ends and missing write notices are expected mid-stream; the
  // state-machine checks that remain must still pass.
  EXPECT_TRUE(r.ok) << r.ToString();
  EXPECT_FALSE(r.complete);
}

TEST(TraceCheckTest, IncompleteStreamStillCatchesParityCorruption) {
  std::vector<TraceEvent> s = LegalStream();
  s[1].a1 = 4;  // even-generation create is illegal regardless of drops
  const TraceCheckResult r = CheckTrace(s, TestConfig(), /*dropped=*/17);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckEndToEndTest, TracedRunChecksClean) {
  Config cfg = TestConfig();
  Runtime rt(cfg);
  const GlobalAddr a = rt.AllocArray<int>(8192);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int round = 0; round < 3; ++round) {
      for (int i = ctx.proc(); i < 8192; i += ctx.total_procs()) {
        p[i] += i;
      }
      ctx.Barrier(0);
    }
  });
  ASSERT_NE(rt.trace_log(), nullptr);
  const std::vector<TraceEvent> merged = rt.trace_log()->Merged();
  ASSERT_GT(merged.size(), 0u);
  const TraceCheckResult r =
      CheckTrace(merged, cfg, rt.trace_log()->TotalDropped());
  EXPECT_TRUE(r.ok) << r.ToString();
}

TEST(TraceCheckEndToEndTest, CorruptedRunStreamIsCaught) {
  Config cfg = TestConfig();
  Runtime rt(cfg);
  const GlobalAddr a = rt.AllocArray<int>(8192);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int i = ctx.proc(); i < 8192; i += ctx.total_procs()) {
      p[i] = i;
    }
    ctx.Barrier(0);
  });
  ASSERT_NE(rt.trace_log(), nullptr);
  std::vector<TraceEvent> merged = rt.trace_log()->Merged();
  bool corrupted = false;
  for (TraceEvent& e : merged) {
    if (static_cast<EventKind>(e.kind) == EventKind::kTwinCreate) {
      e.a1 &= ~1ull;  // flip the generation to even
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "run produced no twin-create events to corrupt";
  const TraceCheckResult r =
      CheckTrace(merged, cfg, rt.trace_log()->TotalDropped());
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace cashmere
