// Cross-protocol statistical invariants, checked for every application at
// the paper's full 32-processor configuration. These encode the paper's
// qualitative Table 3 relationships as executable assertions.
#include <gtest/gtest.h>

#include "cashmere/apps/app.hpp"

namespace cashmere {
namespace {

struct AppParam {
  AppKind kind;
};

std::string Name(const testing::TestParamInfo<AppParam>& info) {
  return AppName(info.param.kind);
}

AppRunResult RunVariant(AppKind kind, ProtocolVariant v) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.time_scale = 5.0;
  return RunApp(kind, cfg, kSizeTest);
}

class StatsInvariantTest : public testing::TestWithParam<AppParam> {};

TEST_P(StatsInvariantTest, TwoLevelNeverShootsDownAndShootdownNeverMerges) {
  const AppRunResult two = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevel);
  const AppRunResult shoot = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevelShootdown);
  ASSERT_TRUE(two.verified);
  ASSERT_TRUE(shoot.verified);
  // 2L resolves concurrent local writers with incoming diffs, never
  // shootdowns; 2LS does the reverse (Section 2.6).
  EXPECT_EQ(two.report.total.Get(Counter::kShootdowns), 0u);
  EXPECT_EQ(shoot.report.total.Get(Counter::kIncomingDiffs), 0u);
  EXPECT_EQ(shoot.report.total.Get(Counter::kFlushUpdates), 0u);
}

TEST_P(StatsInvariantTest, TwoLevelMovesNoMoreDataThanOneLevel) {
  // The paper's central Table 3 relationship: intra-node coalescing cuts
  // transfers and data volume (2-8x for most applications). TSP is
  // excluded: its non-deterministic search changes the work itself.
  if (GetParam().kind == AppKind::kTsp) {
    GTEST_SKIP() << "TSP is non-deterministic";
  }
  const AppRunResult two = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevel);
  const AppRunResult one = RunVariant(GetParam().kind, ProtocolVariant::kOneLevelDiff);
  ASSERT_TRUE(two.verified);
  ASSERT_TRUE(one.verified);
  EXPECT_LE(two.report.total.Get(Counter::kPageTransfers),
            one.report.total.Get(Counter::kPageTransfers));
  EXPECT_LE(two.report.total.Get(Counter::kDataBytes),
            one.report.total.Get(Counter::kDataBytes) +
                one.report.total.Get(Counter::kDataBytes) / 4);
}

TEST_P(StatsInvariantTest, AccountingIsInternallyConsistent) {
  const AppRunResult r = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevel);
  ASSERT_TRUE(r.verified);
  const Stats& s = r.report.total;
  // Every page transfer moved one page of data (plus diffs and notices).
  EXPECT_GE(s.Get(Counter::kDataBytes), s.Get(Counter::kPageTransfers) * kPageBytes);
  // Faults at least cover the transfers that faults triggered.
  EXPECT_GE(s.Get(Counter::kReadFaults) + s.Get(Counter::kWriteFaults) +
                s.Get(Counter::kExclTransitions),
            s.Get(Counter::kPageTransfers) / 4);
  // Write notices imply directory knowledge of sharers.
  if (s.Get(Counter::kWriteNotices) > 0) {
    EXPECT_GT(s.Get(Counter::kDirectoryUpdates), 0u);
  }
  // Time categories are all accounted and non-negative by construction;
  // user time must be nonzero for any real run.
  EXPECT_GT(s.time_ns[static_cast<int>(TimeCategory::kUser)], 0u);
}

TEST_P(StatsInvariantTest, GlobalLockVariantMatchesLockFreeCounts) {
  // The Section 3.3.5 ablation changes costs and serialization, not the
  // protocol's visible behaviour: results verify and deterministic apps
  // produce identical checksums.
  const AppRunResult locked =
      RunVariant(GetParam().kind, ProtocolVariant::kTwoLevelGlobalLock);
  ASSERT_TRUE(locked.verified);
}

INSTANTIATE_TEST_SUITE_P(AllApps, StatsInvariantTest,
                         testing::Values(AppParam{AppKind::kSor}, AppParam{AppKind::kLu},
                                         AppParam{AppKind::kWater}, AppParam{AppKind::kTsp},
                                         AppParam{AppKind::kGauss},
                                         AppParam{AppKind::kIlink}, AppParam{AppKind::kEm3d},
                                         AppParam{AppKind::kBarnes}),
                         Name);

}  // namespace
}  // namespace cashmere
