// Cross-protocol statistical invariants, checked for every application at
// the paper's full 32-processor configuration. These encode the paper's
// qualitative Table 3 relationships as executable assertions.
#include <gtest/gtest.h>

#include "cashmere/apps/app.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

struct AppParam {
  AppKind kind;
};

std::string Name(const testing::TestParamInfo<AppParam>& info) {
  return AppName(info.param.kind);
}

AppRunResult RunVariant(AppKind kind, ProtocolVariant v) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = 8;
  cfg.procs_per_node = 4;
  cfg.cost.time_scale = 5.0;
  return RunApp(kind, cfg, kSizeTest);
}

class StatsInvariantTest : public testing::TestWithParam<AppParam> {};

TEST_P(StatsInvariantTest, TwoLevelNeverShootsDownAndShootdownNeverMerges) {
  const AppRunResult two = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevel);
  const AppRunResult shoot = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevelShootdown);
  ASSERT_TRUE(two.verified);
  ASSERT_TRUE(shoot.verified);
  // 2L resolves concurrent local writers with incoming diffs, never
  // shootdowns; 2LS does the reverse (Section 2.6).
  EXPECT_EQ(two.report.total.Get(Counter::kShootdowns), 0u);
  EXPECT_EQ(shoot.report.total.Get(Counter::kIncomingDiffs), 0u);
  EXPECT_EQ(shoot.report.total.Get(Counter::kFlushUpdates), 0u);
}

TEST_P(StatsInvariantTest, TwoLevelMovesNoMoreDataThanOneLevel) {
  // The paper's central Table 3 relationship: intra-node coalescing cuts
  // transfers and data volume (2-8x for most applications). TSP is
  // excluded: its non-deterministic search changes the work itself.
  if (GetParam().kind == AppKind::kTsp) {
    GTEST_SKIP() << "TSP is non-deterministic";
  }
  const AppRunResult two = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevel);
  const AppRunResult one = RunVariant(GetParam().kind, ProtocolVariant::kOneLevelDiff);
  ASSERT_TRUE(two.verified);
  ASSERT_TRUE(one.verified);
  EXPECT_LE(two.report.total.Get(Counter::kPageTransfers),
            one.report.total.Get(Counter::kPageTransfers));
  EXPECT_LE(two.report.total.Get(Counter::kDataBytes),
            one.report.total.Get(Counter::kDataBytes) +
                one.report.total.Get(Counter::kDataBytes) / 4);
}

TEST_P(StatsInvariantTest, AccountingIsInternallyConsistent) {
  const AppRunResult r = RunVariant(GetParam().kind, ProtocolVariant::kTwoLevel);
  ASSERT_TRUE(r.verified);
  const Stats& s = r.report.total;
  // Every page transfer moved one page of data (plus diffs and notices).
  EXPECT_GE(s.Get(Counter::kDataBytes), s.Get(Counter::kPageTransfers) * kPageBytes);
  // Faults at least cover the transfers that faults triggered.
  EXPECT_GE(s.Get(Counter::kReadFaults) + s.Get(Counter::kWriteFaults) +
                s.Get(Counter::kExclTransitions),
            s.Get(Counter::kPageTransfers) / 4);
  // Write notices imply directory knowledge of sharers.
  if (s.Get(Counter::kWriteNotices) > 0) {
    EXPECT_GT(s.Get(Counter::kDirectoryUpdates), 0u);
  }
  // Time categories are all accounted and non-negative by construction;
  // user time must be nonzero for any real run.
  EXPECT_GT(s.time_ns[static_cast<int>(TimeCategory::kUser)], 0u);
  // SIGSEGV fault mode never takes the software write-notice path, so the
  // per-processor shard machinery must stay idle; the run-serialized wire
  // replay still accounts exactly the bytes the encoder emitted.
  EXPECT_EQ(s.Get(Counter::kDirtyShardMerges), 0u);
  EXPECT_EQ(s.Get(Counter::kDirtyShardStaleDrops), 0u);
  EXPECT_EQ(s.Get(Counter::kDiffRunApplyBytes), s.Get(Counter::kDiffRunBytes));
}

TEST_P(StatsInvariantTest, GlobalLockVariantMatchesLockFreeCounts) {
  // The Section 3.3.5 ablation changes costs and serialization, not the
  // protocol's visible behaviour: results verify and deterministic apps
  // produce identical checksums.
  const AppRunResult locked =
      RunVariant(GetParam().kind, ProtocolVariant::kTwoLevelGlobalLock);
  ASSERT_TRUE(locked.verified);
}

// Software fault mode exercises the full shard lifecycle: marks folded into
// the twin's map at flush (merges), and marks left over from a dead twin
// discarded — not merged — when the next twin is created (stale drops).
TEST(ShardStatsInvariantTest, SoftwareModeCountsMergesAndStaleDrops) {
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 256 * 1024;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = false;
  cfg.fault_mode = FaultMode::kSoftware;
  Runtime rt(cfg);
  const GlobalAddr addr = rt.heap().AllocPageAligned(kPageBytes);

  rt.Run([&](Context& ctx) {
    std::uint32_t* p = ctx.Ptr<std::uint32_t>(addr);
    if (ctx.unit() == 0 && ctx.local_index() == 0) {
      // Register unit 0 in the sharing set so unit 1 writes through a twin
      // rather than claiming the page exclusively.
      ctx.EnsureWrite(p, sizeof(std::uint32_t));
      p[0] = 0xA0u;
    }
    ctx.Barrier(0);
    if (ctx.unit() == 1 && ctx.local_index() == 0) {
      // First twin: the write fault creates it, NoteLocalWrite marks this
      // processor's shard, and the barrier flush OR-folds the shard into
      // the twin map (a merge) before tearing the twin down.
      ctx.EnsureWrite(p + 1, sizeof(std::uint32_t));
      p[1] = 0xA1u;
    }
    ctx.Barrier(1);
    if (ctx.unit() == 1 && ctx.local_index() == 0) {
      // Second twin: the shard still carries the dead twin's marks (owners
      // reset lazily), so twin creation must count it as a stale drop.
      ctx.EnsureWrite(p + 2, sizeof(std::uint32_t));
      p[2] = 0xA2u;
    }
    ctx.Barrier(2);
    if (ctx.unit() == 0 && ctx.local_index() == 0) {
      ctx.EnsureRead(p, 3 * sizeof(std::uint32_t));
      EXPECT_EQ(p[0], 0xA0u);
      EXPECT_EQ(p[1], 0xA1u);
      EXPECT_EQ(p[2], 0xA2u);
    }
    ctx.Barrier(3);
  });

  const Stats& s = rt.report().total;
  EXPECT_GT(s.Get(Counter::kDirtyShardMerges), 0u);
  EXPECT_GT(s.Get(Counter::kDirtyShardStaleDrops), 0u);
  EXPECT_EQ(s.Get(Counter::kDiffRunApplyBytes), s.Get(Counter::kDiffRunBytes));
}

INSTANTIATE_TEST_SUITE_P(AllApps, StatsInvariantTest,
                         testing::Values(AppParam{AppKind::kSor}, AppParam{AppKind::kLu},
                                         AppParam{AppKind::kWater}, AppParam{AppKind::kTsp},
                                         AppParam{AppKind::kGauss},
                                         AppParam{AppKind::kIlink}, AppParam{AppKind::kEm3d},
                                         AppParam{AppKind::kBarnes}),
                         Name);

}  // namespace
}  // namespace cashmere
