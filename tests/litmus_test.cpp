// Release-consistency litmus tests: the memory-model contracts that
// data-race-free programs can rely on, phrased as classic litmus shapes
// (message passing, pipelines, multi-hop transitivity) over every
// synchronization primitive, run many times to shake interleavings.
#include <gtest/gtest.h>

#include <atomic>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config LitmusConfig(ProtocolVariant v = ProtocolVariant::kTwoLevel) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 256 * 1024;
  cfg.cost.time_scale = 3.0;
  cfg.first_touch = false;
  return cfg;
}

// MP (message passing) through a lock: if the consumer sees the flag under
// the lock, it must see the data written before the producer's release.
TEST(LitmusTest, MessagePassingThroughLock) {
  for (int round = 0; round < 5; ++round) {
    Runtime rt(LitmusConfig());
    const GlobalAddr data = rt.heap().AllocPageAligned(kPageBytes);
    const GlobalAddr flag = rt.heap().AllocPageAligned(kPageBytes);
    std::atomic<int> violations{0};
    rt.Run([&](Context& ctx) {
      int* d = ctx.Ptr<int>(data);
      int* f = ctx.Ptr<int>(flag);
      if (ctx.proc() == 0) {
        d[0] = 42;
        ctx.LockAcquire(0);
        f[0] = 1;
        ctx.LockRelease(0);
      } else {
        int seen_flag = 0;
        for (int tries = 0; tries < 50 && seen_flag == 0; ++tries) {
          ctx.LockAcquire(0);
          seen_flag = f[0];
          ctx.LockRelease(0);
          ctx.Poll();
        }
        if (seen_flag == 1 && d[0] != 42) {
          violations.fetch_add(1);
        }
      }
    });
    EXPECT_EQ(violations.load(), 0);
  }
}

// MP through a flag primitive.
TEST(LitmusTest, MessagePassingThroughFlag) {
  for (const auto v : {ProtocolVariant::kTwoLevel, ProtocolVariant::kTwoLevelShootdown,
                       ProtocolVariant::kOneLevelDiff}) {
    Runtime rt(LitmusConfig(v));
    const GlobalAddr data = rt.heap().AllocPageAligned(kPageBytes);
    std::atomic<int> violations{0};
    rt.Run([&](Context& ctx) {
      int* d = ctx.Ptr<int>(data);
      if (ctx.proc() == 0) {
        for (int i = 0; i < 256; ++i) {
          d[i] = i * 3;
        }
        ctx.FlagSet(0, 1);
      } else {
        ctx.FlagWaitGe(0, 1);
        for (int i = 0; i < 256; ++i) {
          if (d[i] != i * 3) {
            violations.fetch_add(1);
          }
        }
      }
    });
    EXPECT_EQ(violations.load(), 0) << ProtocolVariantName(v);
  }
}

// Transitivity: P0 writes A, releases to P1 (flag 0); P1 writes B, releases
// to P2 (flag 1); P2 must see both A and B (the "WRC+syncs" shape).
TEST(LitmusTest, TransitiveVisibilityThroughTwoFlags) {
  for (int round = 0; round < 5; ++round) {
    Runtime rt(LitmusConfig());
    const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
    const GlobalAddr b = rt.heap().AllocPageAligned(kPageBytes);
    std::atomic<int> violations{0};
    rt.Run([&](Context& ctx) {
      int* pa = ctx.Ptr<int>(a);
      int* pb = ctx.Ptr<int>(b);
      if (ctx.proc() == 0) {
        pa[0] = 7;
        ctx.FlagSet(0, 1);
      } else if (ctx.proc() == 2) {  // another node
        ctx.FlagWaitGe(0, 1);
        pb[0] = pa[0] + 1;
        ctx.FlagSet(1, 1);
      } else if (ctx.proc() == 3) {
        ctx.FlagWaitGe(1, 1);
        if (pa[0] != 7 || pb[0] != 8) {
          violations.fetch_add(1);
        }
      }
    });
    EXPECT_EQ(violations.load(), 0);
  }
}

// Lock-chained counter: visibility must follow the lock hand-off order.
TEST(LitmusTest, LockChainPreservesReadModifyWrite) {
  Runtime rt(LitmusConfig());
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  constexpr int kPerProc = 40;
  rt.Run([&](Context& ctx) {
    for (int i = 0; i < kPerProc; ++i) {
      ctx.LockAcquire(1);
      int* p = ctx.Ptr<int>(a);
      const int old = p[100];
      p[100] = old + 1;
      ctx.LockRelease(1);
      ctx.Poll();
    }
  });
  EXPECT_EQ(rt.Read<int>(a + 400), kPerProc * 4);
}

// Barrier as a full release/acquire for every participant, repeatedly and
// in both directions (ping-pong ownership of a page).
TEST(LitmusTest, BarrierPingPongOwnership) {
  Runtime rt(LitmusConfig());
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  std::atomic<int> violations{0};
  constexpr int kRounds = 12;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int r = 0; r < kRounds; ++r) {
      const int writer = r % ctx.total_procs();
      if (ctx.proc() == writer) {
        p[5] = r * 100 + writer;
      }
      ctx.Barrier(0);
      if (p[5] != r * 100 + writer) {
        violations.fetch_add(1);
      }
      ctx.Barrier(0);
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

// Independent reads of independent writes through separate locks: each
// lock protects its own word; release order on different locks must not
// entangle the words (no false invalidation of protected data).
TEST(LitmusTest, IndependentLocksIndependentWords) {
  Runtime rt(LitmusConfig());
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    const int word = 64 * ctx.proc();
    for (int i = 0; i < 30; ++i) {
      ctx.LockAcquire(ctx.proc());
      p[word] += 1;
      ctx.LockRelease(ctx.proc());
      ctx.Poll();
    }
    ctx.Barrier(0);
    for (int q = 0; q < ctx.total_procs(); ++q) {
      EXPECT_EQ(p[64 * q], 30) << "proc " << q << "'s word";
    }
    ctx.Barrier(0);
  });
}

// A reader that never synchronizes sees *some* legal value (no torn 32-bit
// words), exercising the word-atomicity guarantee of the MC emulation.
TEST(LitmusTest, UnsynchronizedReaderSeesUntornWords) {
  Runtime rt(LitmusConfig());
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  std::atomic<int> torn{0};
  rt.Run([&](Context& ctx) {
    volatile std::uint32_t* p = ctx.Ptr<volatile std::uint32_t>(a);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 200; ++i) {
        p[9] = (i % 2) ? 0xFFFFFFFFu : 0u;
        if (i % 20 == 0) {
          ctx.Barrier(1);  // publish periodically
        }
      }
      for (int i = 0; i < 10; ++i) {
        // match the remaining barrier episodes below
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        ctx.Barrier(1);
        const std::uint32_t v = p[9];
        if (v != 0u && v != 0xFFFFFFFFu) {
          torn.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace cashmere
