// Unit tests for per-unit protocol state: second-level directory fields,
// logical clocks, dirty/NLE lists.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "cashmere/protocol/page_table.hpp"

namespace cashmere {
namespace {

Config PtConfig() {
  Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 4;
  cfg.heap_bytes = 16 * kPageBytes;
  return cfg;
}

TEST(PageLocalTest, LoosestPermAcrossProcessors) {
  PageLocal pl;
  // Guarded fields: hold the page lock as the protocol does (and as the
  // clang thread-safety build requires).
  SpinLockGuard guard(pl.lock);
  EXPECT_EQ(pl.Loosest(4), Perm::kInvalid);
  pl.SetPermOfLocal(2, Perm::kRead);
  EXPECT_EQ(pl.Loosest(4), Perm::kRead);
  pl.SetPermOfLocal(0, Perm::kReadWrite);
  EXPECT_EQ(pl.Loosest(4), Perm::kReadWrite);
  EXPECT_EQ(pl.WriterCount(4), 1);
  pl.SetPermOfLocal(3, Perm::kReadWrite);
  EXPECT_EQ(pl.WriterCount(4), 2);
}

TEST(UnitStateTest, LogicalClockIsMonotonic) {
  Config cfg = PtConfig();
  UnitState us(cfg, 0);
  const std::uint64_t t1 = us.Tick();
  const std::uint64_t t2 = us.Tick();
  EXPECT_GT(t2, t1);
  EXPECT_GE(us.Now(), t2);
}

TEST(UnitStateTest, ConcurrentTicksAreUnique) {
  Config cfg = PtConfig();
  UnitState us(cfg, 0);
  constexpr int kPerThread = 5000;
  std::vector<std::vector<std::uint64_t>> seen(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        seen[t].push_back(us.Tick());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::set<std::uint64_t> all;
  for (const auto& v : seen) {
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), 4u * kPerThread);
}

TEST(PageListTest, AddDeduplicatesAndTakeAllClears) {
  PageList list(64);
  EXPECT_TRUE(list.Add(4));
  EXPECT_FALSE(list.Add(4));
  EXPECT_TRUE(list.Add(9));
  EXPECT_TRUE(list.Contains(4));
  EXPECT_FALSE(list.Contains(5));
  std::vector<PageId> got;
  list.TakeAll(got);
  EXPECT_EQ(got, (std::vector<PageId>{4, 9}));
  EXPECT_FALSE(list.Contains(4));
  EXPECT_TRUE(list.Empty());
  EXPECT_TRUE(list.Add(4));  // usable again
}

TEST(PageListTest, ConcurrentAddersNeverLoseEntries) {
  PageList list(1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (PageId p = static_cast<PageId>(t); p < 1024; p += 4) {
        list.Add(p);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<PageId> got;
  list.TakeAll(got);
  EXPECT_EQ(got.size(), 1024u);
}

TEST(UnitStateTest, PerProcessorListsAreIndependent) {
  Config cfg = PtConfig();
  UnitState us(cfg, 0);
  us.DirtyList(0).Add(1);
  us.DirtyList(1).Add(2);
  us.NleList(0).Add(3);
  std::vector<PageId> d0;
  us.DirtyList(0).TakeAll(d0);
  EXPECT_EQ(d0, (std::vector<PageId>{1}));
  std::vector<PageId> d1;
  us.DirtyList(1).TakeAll(d1);
  EXPECT_EQ(d1, (std::vector<PageId>{2}));
  std::vector<PageId> n0;
  us.NleList(0).TakeAll(n0);
  EXPECT_EQ(n0, (std::vector<PageId>{3}));
}

TEST(UnitStateTest, TimestampFieldsStartAtZero) {
  Config cfg = PtConfig();
  UnitState us(cfg, 1);
  PageLocal& pl = us.Page(5);
  EXPECT_EQ(pl.update_ts.load(), 0u);
  EXPECT_EQ(pl.wn_ts.load(), 0u);
  EXPECT_EQ(pl.flush_ts.load(), 0u);
  SpinLockGuard guard(pl.lock);
  EXPECT_FALSE(pl.ever_valid);
  EXPECT_FALSE(pl.twin_valid);
  EXPECT_FALSE(pl.exclusive);
}

}  // namespace
}  // namespace cashmere
