// Protocol-level behavioural tests: timestamps, fetch coalescing, twin
// lifecycle, write-notice-driven invalidation, flush skip rules. These use
// the runtime with the software fault driver where direct state inspection
// is needed.
#include <gtest/gtest.h>

#include <atomic>

#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

Config PConfig(int nodes, int ppn, ProtocolVariant v = ProtocolVariant::kTwoLevel) {
  Config cfg;
  cfg.protocol = v;
  cfg.nodes = nodes;
  cfg.procs_per_node = ppn;
  cfg.heap_bytes = 512 * 1024;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 5.0;
  cfg.first_touch = false;
  return cfg;
}

TEST(ProtocolTest, IntraNodeFetchCoalescing) {
  // Two processors of the same node read a remote page; the paper's
  // two-level protocol coalesces this into a single page transfer.
  Runtime rt(PConfig(2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  // Home of page 0 is unit 0; make unit 0 write it, then have both unit-1
  // processors read it after a barrier.
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    if (ctx.proc() == 0) {
      for (int i = 0; i < 64; ++i) {
        p[i] = i + 1;
      }
    }
    ctx.Barrier(0);
    if (ctx.node() == 1) {
      long sum = 0;
      for (int i = 0; i < 64; ++i) {
        sum += p[i];
      }
      EXPECT_EQ(sum, 64L * 65 / 2);
    }
    ctx.Barrier(0);
  });
  // Exactly one transfer for unit 1's two readers (plus none for unit 0,
  // which is home). The break-exclusive reply counts as that transfer.
  EXPECT_EQ(rt.report().total.Get(Counter::kPageTransfers), 1u);
}

TEST(ProtocolTest, RepeatedReadsAfterInvalidationRefetch) {
  Runtime rt(PConfig(2, 1));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  constexpr int kRounds = 6;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int r = 1; r <= kRounds; ++r) {
      if (ctx.proc() == 0) {
        p[0] = r;
      }
      ctx.Barrier(0);
      if (ctx.proc() == 1) {
        EXPECT_EQ(p[0], r);
      }
      ctx.Barrier(0);
    }
  });
  // Reader must have fetched at least once per producer round after the
  // first (write notices force invalidation).
  EXPECT_GE(rt.report().total.Get(Counter::kPageTransfers),
            static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_GT(rt.report().total.Get(Counter::kWriteNotices), 0u);
}

TEST(ProtocolTest, UnsharedPagesIncurNoWriteNotices) {
  // Each processor works on its own page-aligned slab: after the initial
  // cold faults there is no sharing, hence no write notices at barriers
  // (exclusive mode, Section 2.4.1).
  Runtime rt(PConfig(2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(4 * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* mine = ctx.Ptr<int>(a + static_cast<GlobalAddr>(ctx.proc()) * kPageBytes);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 128; ++i) {
        mine[i] += round + i;
      }
      ctx.Barrier(0);
    }
  });
  EXPECT_EQ(rt.report().total.Get(Counter::kWriteNotices), 0u);
  EXPECT_GT(rt.report().total.Get(Counter::kExclTransitions), 0u);
}

TEST(ProtocolTest, TwinCreatedOnlyForSharedWrites) {
  Runtime rt(PConfig(2, 1));
  const GlobalAddr priv = rt.heap().AllocPageAligned(kPageBytes);
  const GlobalAddr shared = rt.heap().AllocPageAligned(kPageBytes);
  rt.Run([&](Context& ctx) {
    // Both touch the shared page (write each round); only proc 1 touches
    // the private page.
    int* s = ctx.Ptr<int>(shared);
    for (int round = 0; round < 3; ++round) {
      s[ctx.proc()] = round;
      if (ctx.proc() == 1) {
        int* p = ctx.Ptr<int>(priv);
        p[0] = round;
      }
      ctx.Barrier(0);
    }
  });
  // Twins exist for the shared page's non-home writer; the private page
  // stays in exclusive mode with no twin.
  EXPECT_GT(rt.report().total.Get(Counter::kTwinCreations), 0u);
}

TEST(ProtocolTest, FlushUpdatesPreventRedundantFlushes) {
  // Two processors on one node dirty the same page, then hit a barrier:
  // the last arriving local writer flushes once (flush-update), the other
  // skips. Page flush count for that page should be far below 2 per round.
  Runtime rt(PConfig(2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  constexpr int kRounds = 8;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int round = 0; round < kRounds; ++round) {
      if (ctx.node() == 1) {
        p[16 + ctx.local_index()] = round;  // two writers, same page
      }
      ctx.Barrier(0);
      if (ctx.node() == 0 && ctx.local_index() == 0) {
        EXPECT_EQ(p[16], round);
        EXPECT_EQ(p[17], round);
      }
      ctx.Barrier(0);
    }
  });
  const auto flushes = rt.report().total.Get(Counter::kPageFlushes);
  EXPECT_GT(flushes, 0u);
  // Two writers per round would naively flush 2x per round; the last-writer
  // rule and flush timestamps keep it well under that (some slack for
  // break-exclusive full-page flushes and race-y rounds).
  EXPECT_LE(flushes, static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_GT(rt.report().total.Get(Counter::kFlushUpdates), 0u);
}

TEST(ProtocolTest, IncomingDiffPreservesConcurrentLocalWrites) {
  // False sharing across nodes: node 0 writes the low half of a page, node
  // 1 the high half, with per-half locks. Both halves must survive.
  Runtime rt(PConfig(2, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(kPageBytes);
  constexpr int kRounds = 10;
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    const int base = ctx.node() == 0 ? 0 : 1024;
    for (int round = 0; round < kRounds; ++round) {
      ctx.LockAcquire(ctx.node());
      p[base + ctx.local_index() * 4] += 1;
      ctx.LockRelease(ctx.node());
      ctx.Poll();
    }
    ctx.Barrier(0);
  });
  EXPECT_EQ(rt.Read<int>(a + 0 * 4), kRounds);
  EXPECT_EQ(rt.Read<int>(a + 4 * 4), kRounds);
  EXPECT_EQ(rt.Read<int>(a + 1024 * 4), kRounds);
  EXPECT_EQ(rt.Read<int>(a + 1028 * 4), kRounds);
}

TEST(ProtocolTest, MigratoryCounterThroughLocks) {
  // Classic migratory sharing: a counter updated under one lock by all 16
  // processors must equal the total number of increments.
  Runtime rt(PConfig(4, 4));
  const GlobalAddr a = rt.AllocArray<long>(1);
  constexpr int kIncrements = 12;
  rt.Run([&](Context& ctx) {
    for (int i = 0; i < kIncrements; ++i) {
      ctx.LockAcquire(0);
      long* p = ctx.Ptr<long>(a);
      *p = *p + 1;
      ctx.LockRelease(0);
      ctx.Poll();
    }
  });
  EXPECT_EQ(rt.Read<long>(a), static_cast<long>(kIncrements) * 16);
}

TEST(ProtocolTest, StatsBalanceAcrossFetchAndFlush) {
  Runtime rt(PConfig(4, 2));
  const GlobalAddr a = rt.heap().AllocPageAligned(8 * kPageBytes);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int round = 0; round < 4; ++round) {
      for (int i = ctx.proc(); i < 8 * 2048; i += ctx.total_procs()) {
        p[i] = round + i;
      }
      ctx.Barrier(0);
    }
  });
  const Stats& s = rt.report().total;
  EXPECT_GT(s.Get(Counter::kReadFaults) + s.Get(Counter::kWriteFaults), 0u);
  EXPECT_GT(s.Get(Counter::kDirectoryUpdates), 0u);
  EXPECT_GT(s.Get(Counter::kDataBytes), 0u);
  // Every fetch moved at least a page of data.
  EXPECT_GE(s.Get(Counter::kDataBytes), s.Get(Counter::kPageTransfers) * kPageBytes / 2);
}

}  // namespace
}  // namespace cashmere
