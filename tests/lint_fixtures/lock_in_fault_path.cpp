// Known-bad fixture: blocking primitives and heap allocation on the SIGSEGV
// fault path. A fault can interrupt a thread that already holds the very
// std::mutex the handler would take (self-deadlock), and malloc/new are not
// async-signal-safe. The fault path may only use SpinLock and
// pre-allocated state.
//
// csm-lint-domain: fault-path
// csm-lint-expect: fault-path-blocking  (the std::mutex declaration)
// csm-lint-expect: fault-path-blocking  (the lock_guard acquisition)
// csm-lint-expect: fault-path-blocking  (sleep_for)
// csm-lint-expect: fault-path-blocking  (malloc)
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex g_handler_mutex;

void BadOnSignal(int /*signo*/, void* /*info*/, void* /*ucontext*/) {
  std::lock_guard<std::mutex> guard(g_handler_mutex);  // std::mutex: self-deadlock
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // sleep_for in a handler
  void* scratch = std::malloc(64);  // not async-signal-safe
  std::free(scratch);
}

}  // namespace fixture
