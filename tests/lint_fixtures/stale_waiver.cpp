// csm-lint-domain: protocol
// csm-lint-expect: stale-waiver
// csm-lint-expect: raw-page-copy
//
// Waiver hygiene: the first waiver suppresses a real finding and stays
// quiet; the second covers a line its rule no longer fires on (the copy it
// once excused was replaced by a helper call), so it must be reported
// stale before it rots into a blanket permission; the memmove at the end
// is a live, unwaived finding.

void Fill(char* dst, const char* src, unsigned n);

void CopyIn(char* dst, const char* src, unsigned n) {
  // csm-lint: allow(raw-page-copy) -- private staging buffer, not a page
  memcpy(dst, src, n);
  // csm-lint: allow(raw-page-copy) -- stale: the copy here was replaced
  Fill(dst, src, n);
  memmove(dst, src, n);
}
