// Known-bad fixture: direct directory writes from release-path code instead
// of publishing through the coherence log. The async release path depends
// on the logged flush never mutating directory words — every transition
// funnels through UpdateDirWord (fault/acquire path) or the ordered
// exclusive claim — so a ReleaseSync that calls dir->Write directly races
// the agent's deferred replay and breaks the applied-clock gate. The
// sanctioned sites (UpdateDirWord's two stores and the exclusive-claim
// WriteAndSnapshot) carry explicit waivers in cashmere_protocol.cpp.
// Directory's own implementation file (directory.cpp) is exempt by path.
//
// csm-lint-domain: protocol
// csm-lint-expect: raw-dir-write
// csm-lint-expect: raw-dir-write
// csm-lint-expect: raw-dir-write
#include <cstdint>

namespace fixture {

struct DirWord {
  std::uint32_t bits = 0;
};

struct Directory {
  void Write(std::uint32_t page, std::uint32_t unit, DirWord word);
  void WriteAndSnapshot(std::uint32_t page, std::uint32_t unit, DirWord word,
                        std::uint32_t* snapshot);
  std::uint32_t Read(std::uint32_t page, std::uint32_t unit) const;
};

void BadReleasePathStore(Directory& dir, std::uint32_t page, std::uint32_t unit) {
  // Mutating the directory directly at release bypasses the log agent.
  dir.Write(page, unit, DirWord{});
}

void BadPointerStore(Directory* dir, std::uint32_t page, std::uint32_t unit) {
  dir->Write(page, unit, DirWord{});
}

void BadSnapshotClaim(Directory* dir, std::uint32_t page, std::uint32_t unit,
                      std::uint32_t* snap) {
  dir->WriteAndSnapshot(page, unit, DirWord{}, snap);
}

std::uint32_t OkRead(const Directory& dir, std::uint32_t page, std::uint32_t unit) {
  // Reads are lock-free replicated lookups and must not trip the rule.
  return dir.Read(page, unit);
}

void OkWaivedStore(Directory& dir, std::uint32_t page, std::uint32_t unit) {
  // csm-lint: allow(raw-dir-write) -- fixture copy of a sanctioned funnel site
  dir.Write(page, unit, DirWord{});
}

// Mentions in comments (dir.Write(...)) and strings must not count:
const char* kDoc = "never call dir.Write( outside the log-publish path )";

}  // namespace fixture
