// Known-good fixture: a justified waiver suppresses the finding. This pins
// the waiver syntax itself — if waiver parsing regresses, this fixture
// starts reporting raw-page-copy and the fixture check fails (it expects
// only the unwaived memmove below).
//
// csm-lint-domain: msg
// csm-lint-expect: raw-page-copy
#include <cstring>

namespace fixture {

void JustifiedPrivateCopy(std::byte* slot, const std::byte* local, std::size_t bytes) {
  // csm-lint: allow(raw-page-copy) -- the slot is private to this processor;
  // data re-enters shared memory through MC word writes.
  std::memcpy(slot, local, bytes);
}

void UnwaivedCopy(std::byte* dst, const std::byte* src, std::size_t bytes) {
  std::memmove(dst, src, bytes);  // no waiver: must be flagged
}

}  // namespace fixture
