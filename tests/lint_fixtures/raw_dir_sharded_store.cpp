// Known-bad fixture: raw entry-word stores inside the sharded directory
// backend, outside the DirectoryBackend Write/WriteAndSnapshot funnel. The
// sharded entry lives on its shard owner and every mutation must execute
// inside the entry's MC write order (the order-lock stripe) so a
// concurrent claimant's snapshot arbitrates correctly; a stray
// StoreWord32 into a segment bypasses that ordering. The two funnel
// stores in directory_sharded.cpp carry explicit waivers.
//
// csm-lint-domain: dir-sharded
// csm-lint-expect: raw-dir-write
// csm-lint-expect: raw-dir-write
#include <cstdint>

namespace fixture {

// csm-lint: allow(raw-dir-write) -- fixture scaffolding: the helper's own
// definition, not a store into an entry
inline void StoreWord32(std::uint32_t* p, std::uint32_t v) { *p = v; }
inline std::uint32_t LoadWord32(const std::uint32_t* p) { return *p; }

void BadDirectSegmentStore(std::uint32_t* segment, std::size_t slot) {
  // A helper mutating entry words without taking the entry's order lock.
  StoreWord32(&segment[slot], 0x7u);
}

void BadCacheWriteback(std::uint32_t* segment, const std::uint32_t* cached,
                       std::size_t slot) {
  // "Flushing" a cached word back to the owner-side entry is still a raw
  // mutation outside the funnel.
  StoreWord32(&segment[slot], LoadWord32(&cached[slot]));
}

std::uint32_t OkEntryRead(const std::uint32_t* segment, std::size_t slot) {
  // Reads are word-atomic and lock-free; only stores are findings.
  return LoadWord32(&segment[slot]);
}

void OkWaivedFunnelStore(std::uint32_t* segment, std::size_t slot) {
  // csm-lint: allow(raw-dir-write) -- fixture copy of the Write funnel store
  StoreWord32(&segment[slot], 0x3u);
}

// Mentions in comments (StoreWord32(...)) and strings must not count:
const char* kDoc = "entry stores go through StoreWord32( inside the funnel )";

}  // namespace fixture
