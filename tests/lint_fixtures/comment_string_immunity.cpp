// csm-lint-domain: protocol
// csm-lint-expect: none
//
// Every rule needle below sits inside a comment or a string literal; the
// token stream must not fire on any of them (the old per-line regex pass
// tripped on several). The waiver-shaped string pins that waivers are
// parsed from comment text only — it must neither suppress anything nor be
// reported stale.

// memcpy(frame, src, 4096) — prose mention of the banned call
// std::atomic_ref<std::uint32_t>(word).store(v) — more prose
/* view.Protect(page, 3) and dir->Write(page, word) and hub.PagePtr(frame)
   spanning a block comment; std::mutex too. */

static const char* kDoc =
    "memcpy into pages is banned; use StoreWord32";  // string: no finding
static const char* kCast = "reinterpret_cast<std::uint64_t*>(frame)";
static const char* kUrl = "http://example.com//path";  // '//' in a string
static const char* kFake =
    "// csm-lint: allow(raw-page-copy) -- not a waiver, just a string";
static const char* kRaw = R"lint(
  memset(frame, 0, 4096);
  view.Protect(page, 3);
  dir->Write(page, word);
  std::fill(frame, frame + 1024, 0u);
)lint";

const char* Doc() { return kDoc; }
const char* Cast() { return kCast; }
const char* Url() { return kUrl; }
const char* Fake() { return kFake; }
const char* Raw() { return kRaw; }
