// csm-lint-domain: protocol
// csm-lint-expect: fault-path-signal-safety
//
// Reached from fault_chain/entry.cpp's OnSignal through the extern
// declaration: the allocation below is one call-graph hop from the SIGSEGV
// entry point and must be flagged even though this file, on its own,
// carries no fault-path marking (the file-local fault-path-blocking rule
// never looks here — only the interprocedural walk can catch it).

static char* g_scratch;

void HelperInstall(unsigned bytes) {
  g_scratch = new char[bytes];
}
