// csm-lint-domain: fault-path
// csm-lint-expect: none
//
// Interprocedural fixture (fault_chain/): the fault-dispatcher entry point
// OnSignal below reaches HelperInstall in helper.cpp across the file
// boundary, where a signal-unsafe allocation must be flagged (the expect
// lives in helper.cpp). The SpinLock path here — whose backoff sleeps — is
// the sanctioned wait primitive: its file-local finding is waived and the
// interprocedural walk stops at the allowlisted class, so nothing fires in
// this file.

struct SpinLock {
  void Lock() {
    while (!TryAcquire()) {
      // csm-lint: allow(fault-path-blocking) -- SpinLock backoff is the
      // sanctioned wait primitive on the fault path
      usleep(1);
    }
  }
  void Unlock();
  bool TryAcquire();
};

struct SpinLockGuard {
  explicit SpinLockGuard(SpinLock& l) : lock_(l) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLock& lock_;
};

SpinLock g_trace_lock;
int g_trace_slot;

void GuardedTrace(int value) {
  SpinLockGuard guard(g_trace_lock);
  g_trace_slot = value;
}

void HelperInstall(unsigned bytes);  // defined in helper.cpp

void OnSignal(int signo, void* info, void* ucontext) {
  GuardedTrace(signo);
  HelperInstall(64u);
}
