// csm-lint-expect: none
//
// Cross-file lock-order fixture (lock_order/): TakePageLock is the
// page-lock-acquiring callee that commit_holder.cpp reaches while holding
// a view commit lock (the inversion is reported there, at the call site).
// Everything in this file is legitimate: taking a page lock with nothing
// held, and nesting page under page (the superpage-relocation pattern the
// lock table explicitly allows).

struct SpinLock {
  void Lock();
  void Unlock();
};

struct SpinLockGuard {
  explicit SpinLockGuard(SpinLock& l) : lock_(l) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLock& lock_;
};

struct PageLocal {
  SpinLock lock;
  unsigned perm;
};

void TakePageLock(PageLocal& pl) {
  SpinLockGuard guard(pl.lock);
  pl.perm = 0;
}

void RelocatePair(PageLocal& old_pl, PageLocal& new_pl) {
  SpinLockGuard old_guard(old_pl.lock);
  SpinLockGuard new_guard(new_pl.lock);  // page under page: allowed
  new_pl.perm = old_pl.perm;
}
