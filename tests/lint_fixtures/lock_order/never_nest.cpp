// csm-lint-domain: vm
// csm-lint-expect: lock-order
//
// Two view commit locks in one scope: the commit lock is a never-nest
// leaf, so the second acquisition must be flagged regardless of which
// view's lock comes first.

struct SpinLock {
  void Lock();
  void Unlock();
};

struct SpinLockGuard {
  explicit SpinLockGuard(SpinLock& l) : lock_(l) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLock& lock_;
};

struct View {
  SpinLock commit_lock_;
};

void BadDoubleCommit(View& a, View& b) {
  SpinLockGuard first(a.commit_lock_);
  SpinLockGuard second(b.commit_lock_);  // leaf under itself
}
