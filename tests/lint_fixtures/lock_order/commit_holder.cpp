// csm-lint-domain: vm
// csm-lint-expect: lock-order
//
// Holding the view commit lock (a never-nest leaf) while calling into
// TakePageLock (page_holder.cpp): the call-graph walk must flag the
// transitive page-lock acquisition as a page-lock-first inversion even
// though the acquire site lives in the other file.

struct SpinLock {
  void Lock();
  void Unlock();
};

struct SpinLockGuard {
  explicit SpinLockGuard(SpinLock& l) : lock_(l) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLock& lock_;
};

struct PageLocal;
struct View {
  SpinLock commit_lock_;
};

void TakePageLock(PageLocal& pl);  // defined in page_holder.cpp

void BadCommitThenPage(View& v, PageLocal& pl) {
  SpinLockGuard guard(v.commit_lock_);
  TakePageLock(pl);
}
