// Known-bad fixture: non-word-atomic stores into shared page memory.
// A 64-bit pointer store can tear across the MC's 32-bit atomicity grain;
// a per-site atomic_ref with an ad-hoc ordering bypasses the one reviewed
// implementation of the word-access discipline (word_access.hpp).
//
// csm-lint-domain: mc
// csm-lint-expect: word-cast-store
// csm-lint-expect: word-cast-store
// csm-lint-expect: atomic-bypass
#include <atomic>
#include <cstdint>

namespace fixture {

void BadWideStore(std::byte* frame, std::size_t offset, std::uint64_t value) {
  *reinterpret_cast<std::uint64_t*>(frame + offset) = value;  // tears at 32-bit grain
}

void BadByteStore(std::byte* frame, std::size_t offset, unsigned char value) {
  *reinterpret_cast<unsigned char*>(frame + offset) = value;  // sub-word RMW on the MC
}

void BadAdHocAtomic(std::byte* frame, std::size_t offset, std::uint32_t value) {
  // Word-sized, but bypasses word_access.hpp: the cast target is exempt
  // from word-cast-store (32-bit), yet atomic_ref outside word_access.hpp
  // is flagged regardless of domain.
  std::atomic_ref<std::uint32_t> ref(
      *reinterpret_cast<std::uint32_t*>(frame + offset));
  ref.store(value, std::memory_order_seq_cst);
}

// Reads through a const cast are allowed (word-cast-store targets stores):
std::uint64_t OkWideRead(const std::byte* frame, std::size_t offset) {
  return *reinterpret_cast<const std::uint64_t*>(frame + offset);
}

}  // namespace fixture
