// Known-bad fixture: direct View::Protect calls outside src/cashmere/vm/.
// Permission changes must flow through the PermBatch engine so the
// shadow-table elision and range coalescing always apply; a stray per-page
// Protect loop silently reopens the one-syscall-per-page path the batch
// engine exists to close. ProtectRange (the sanctioned bulk-setup call)
// must NOT be flagged.
//
// csm-lint-domain: protocol
// csm-lint-expect: raw-view-protect
// csm-lint-expect: raw-view-protect
#include <cstdint>

namespace fixture {

enum class Perm : std::uint8_t { kInvalid, kRead, kReadWrite };

struct View {
  void Protect(std::uint32_t page, Perm perm);
  void ProtectRange(std::uint32_t first, std::size_t count, Perm perm);
};

void BadDowngradeLoop(View& view, std::uint32_t first, std::uint32_t last) {
  for (std::uint32_t page = first; page < last; ++page) {
    view.Protect(page, Perm::kRead);  // one syscall per page, no elision
  }
}

void BadPointerCall(View* view, std::uint32_t page) {
  view->Protect(page, Perm::kInvalid);
}

void OkBulkSetup(View& view, std::uint32_t pages) {
  // The ranged call is the sanctioned bulk path and must not trip the rule.
  view.ProtectRange(0, pages, Perm::kReadWrite);
}

// Mentions in comments (view.Protect(...)) and strings must not count:
const char* kDoc = "call view.Protect( nowhere outside vm/ )";

}  // namespace fixture
