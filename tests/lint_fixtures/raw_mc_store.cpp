// Known-bad fixture: raw stores into a registered shared segment from
// protocol code. PagePtr/protocol_base mint a raw pointer into an arena
// segment — a store through it bypasses the McHub::Issue accounting funnel,
// and under the shm backend silently assumes this process's mapping (the
// same frame lives at a different address in every other node process).
// Protocol code must name frames as PageFrameRef (Arena::FrameOf) and
// resolve through McTransport::Resolve.
//
// csm-lint-domain: protocol
// csm-lint-expect: raw-mc-write  (PagePtr call minting the raw pointer)
// csm-lint-expect: raw-mc-write  (protocol_base arithmetic doing the same)
#include <cstddef>
#include <cstdint>

namespace fixture {

struct FakeArena {
  std::byte* PagePtr(std::uint32_t page) const;
  std::byte* protocol_base() const;
};

void StoreWord32Release(void* p, std::uint32_t v);

void BadDirectStores(const FakeArena& arena, std::uint32_t page) {
  std::byte* frame = arena.PagePtr(page);  // raw pointer into the segment
  StoreWord32Release(frame, 1u);
  StoreWord32Release(arena.protocol_base() + 64, 2u);  // same, by hand
}

}  // namespace fixture
