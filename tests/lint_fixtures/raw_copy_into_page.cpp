// Known-bad fixture: bulk byte copy straight into a shared page frame.
// The Memory Channel guarantees 32-bit write atomicity only; a memcpy into
// page memory can land torn sub-word stores that a concurrent remote reader
// observes. The sanctioned path is CopyPage / StoreWord32Relaxed in
// word_access.hpp.
//
// csm-lint-domain: protocol
// csm-lint-expect: raw-page-copy
// csm-lint-expect: raw-page-copy
// csm-lint-expect: bad-waiver
#include <cstring>

namespace fixture {

void BadPageInstall(std::byte* frame, const std::byte* incoming, std::size_t bytes) {
  std::memcpy(frame, incoming, bytes);  // torn stores on the MC
}

void BadPageClear(std::byte* frame, std::size_t bytes) {
  // An allow() without a '-- justification' must not silence the rule: it
  // is reported as bad-waiver AND the memset below is still flagged.
  // csm-lint: allow(raw-page-copy)
  std::memset(frame, 0, bytes);
}

// A comment mentioning memcpy must NOT be flagged, and neither must the
// string literal below: only real code counts.
const char* kDoc = "never memcpy into a page";

}  // namespace fixture
