// TraceRing / TraceLog unit tests: wraparound and drop accounting, the
// thread-binding emit path, merge ordering, concurrent single-writer
// appends (the TSan target for the lock-free ring discipline), and the
// Stats exposure of the ring counters through a traced Runtime run.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cashmere/common/trace.hpp"
#include "cashmere/runtime/runtime.hpp"

namespace cashmere {
namespace {

TraceEvent Ev(std::uint32_t i, std::uint16_t proc = 0) {
  TraceEvent e;
  e.vt = i;
  e.a0 = i;
  e.proc = proc;
  e.kind = static_cast<std::uint8_t>(EventKind::kMcWrite);
  return e;
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
  EXPECT_EQ(TraceRing(1024).capacity(), 1024u);
}

TEST(TraceRingTest, RetainsAppendOrderBeforeWrap) {
  TraceRing ring(16);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.Append(Ev(i));
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.size(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> out;
  ring.Snapshot(out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].a0, i);
  }
}

TEST(TraceRingTest, WrapOverwritesOldestAndCountsDrops) {
  TraceRing ring(16);
  ASSERT_EQ(ring.capacity(), 16u);
  for (std::uint32_t i = 0; i < 40; ++i) {
    ring.Append(Ev(i));
  }
  EXPECT_EQ(ring.total(), 40u);
  EXPECT_EQ(ring.size(), 16u);
  EXPECT_EQ(ring.dropped(), 24u);
  // The retained window is the most recent capacity() events, oldest first.
  std::vector<TraceEvent> out;
  ring.Snapshot(out);
  ASSERT_EQ(out.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i].a0, 24 + i);
  }
}

TEST(TraceRingTest, ResetClearsCounters) {
  TraceRing ring(4);
  for (std::uint32_t i = 0; i < 9; ++i) {
    ring.Append(Ev(i));
  }
  EXPECT_GT(ring.dropped(), 0u);
  ring.Reset();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceBindingTest, UnboundThreadEmitsNothing) {
  ASSERT_FALSE(TraceActive());
  TraceEmit(EventKind::kMcWrite, kNoTracePage, 0, 1, 2);  // must be a no-op
  EXPECT_FALSE(TraceActive());
}

TEST(TraceBindingTest, BoundEmitStampsClockAndProc) {
  TraceRing ring(8);
  VirtualClock clock;
  clock.Start(1.0);
  TraceBindThread(&ring, &clock, /*proc=*/5);
  EXPECT_TRUE(TraceActive());
  TraceEmit(EventKind::kPageCopy, /*page=*/7, /*seq=*/3, /*a0=*/11, /*a1=*/13);
  TraceUnbindThread();
  EXPECT_FALSE(TraceActive());
  std::vector<TraceEvent> out;
  ring.Snapshot(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].proc, 5u);
  EXPECT_EQ(out[0].page, 7u);
  EXPECT_EQ(out[0].seq, 3u);
  EXPECT_EQ(out[0].a0, 11u);
  EXPECT_EQ(out[0].a1, 13u);
  EXPECT_EQ(static_cast<EventKind>(out[0].kind), EventKind::kPageCopy);
}

TEST(TraceLogTest, MergedOrdersByVirtualTimeThenProc) {
  TraceLog log(2, 8);
  log.ring(0).Append(Ev(10, 0));
  log.ring(0).Append(Ev(30, 0));
  log.ring(1).Append(Ev(20, 1));
  log.ring(1).Append(Ev(30, 1));
  const std::vector<TraceEvent> merged = log.Merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].vt, 10u);
  EXPECT_EQ(merged[1].vt, 20u);
  EXPECT_EQ(merged[2].vt, 30u);
  EXPECT_EQ(merged[2].proc, 0u);  // vt tie broken by proc
  EXPECT_EQ(merged[3].proc, 1u);
}

// The TSan target: every ring has exactly one writer appending while another
// thread polls the atomic counters. This is the production discipline — the
// Runtime binds one thread per ring — so a race here is a real protocol bug.
TEST(TraceRingStressTest, ConcurrentSingleWriterAppendsWithCounterPolls) {
  constexpr int kWriters = 4;
  constexpr std::uint32_t kPerWriter = 20000;
  TraceLog log(kWriters, 1 << 10);
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t n = log.TotalEvents();
      EXPECT_GE(n, last);  // totals are monotone under concurrent appends
      last = n;
      (void)log.TotalDropped();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint32_t i = 0; i < kPerWriter; ++i) {
        log.ring(w).Append(Ev(i, static_cast<std::uint16_t>(w)));
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_EQ(log.TotalEvents(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(log.ring(w).dropped(), kPerWriter - log.ring(w).capacity());
    std::vector<TraceEvent> out;
    log.ring(w).Snapshot(out);
    ASSERT_EQ(out.size(), log.ring(w).capacity());
    // The retained tail is contiguous and in append order.
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_EQ(out[i].a0, out[i - 1].a0 + 1);
    }
  }
}

Config TracedConfig(std::uint32_t ring_events) {
  Config cfg;
  cfg.nodes = 2;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 1 * 1024 * 1024;
  cfg.superpage_pages = 4;
  cfg.cost.time_scale = 10.0;
  cfg.first_touch = false;
  cfg.trace.enabled = true;
  cfg.trace.ring_events = ring_events;
  return cfg;
}

TEST(RuntimeTraceTest, StatsExposeRingCounters) {
  Runtime rt(TracedConfig(1 << 14));
  const GlobalAddr a = rt.AllocArray<int>(4096);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int i = ctx.proc(); i < 4096; i += ctx.total_procs()) {
      p[i] = i;
    }
    ctx.Barrier(0);
  });
  ASSERT_NE(rt.trace_log(), nullptr);
  const StatsReport& report = rt.report();
  EXPECT_GT(report.total.Get(Counter::kTraceEvents), 0u);
  EXPECT_EQ(report.total.Get(Counter::kTraceEvents), rt.trace_log()->TotalEvents());
  EXPECT_EQ(report.total.Get(Counter::kTraceDrops), rt.trace_log()->TotalDropped());
}

TEST(RuntimeTraceTest, TinyRingsWrapAndReportDrops) {
  const Config cfg = TracedConfig(/*ring_events=*/8);
  Runtime rt(cfg);
  const GlobalAddr a = rt.AllocArray<int>(4096);
  rt.Run([&](Context& ctx) {
    int* p = ctx.Ptr<int>(a);
    for (int i = ctx.proc(); i < 4096; i += ctx.total_procs()) {
      p[i] = i;
    }
    ctx.Barrier(0);
  });
  ASSERT_NE(rt.trace_log(), nullptr);
  EXPECT_GT(rt.report().total.Get(Counter::kTraceDrops), 0u);
  EXPECT_FALSE(rt.trace_log()->complete());
  // The retained tail still snapshots cleanly after the run.
  const std::vector<TraceEvent> merged = rt.trace_log()->Merged();
  // One ring per processor plus one per cache agent when the async release
  // path is on (the default for the lock-free two-level variants).
  const std::size_t rings = static_cast<std::size_t>(
      cfg.total_procs() + (cfg.AsyncRelease() ? cfg.units() : 0));
  EXPECT_LE(merged.size(), rings * 8u);
}

TEST(RuntimeTraceTest, DisabledTracingAllocatesNoLog) {
  Config cfg = TracedConfig(1 << 14);
  cfg.trace.enabled = false;
  Runtime rt(cfg);
  EXPECT_EQ(rt.trace_log(), nullptr);
  const GlobalAddr a = rt.AllocArray<int>(64);
  rt.Run([&](Context& ctx) {
    if (ctx.proc() == 0) {
      ctx.Ptr<int>(a)[0] = 1;
    }
  });
  EXPECT_EQ(rt.report().total.Get(Counter::kTraceEvents), 0u);
}

}  // namespace
}  // namespace cashmere
