// Unit tests for the VM substrate: arenas (shared frames), per-processor
// views (independent protections over the same frames), superpage
// remapping, and SIGSEGV fault dispatch.
#include <gtest/gtest.h>

#include <atomic>
#include <csetjmp>
#include <cstring>

#include "cashmere/vm/arena.hpp"
#include "cashmere/vm/fault_dispatcher.hpp"
#include "cashmere/vm/view.hpp"

namespace cashmere {
namespace {

Config VmConfig() {
  Config cfg;
  cfg.nodes = 1;
  cfg.procs_per_node = 1;
  cfg.heap_bytes = 16 * kPageBytes;
  cfg.superpage_pages = 4;
  return cfg;
}

TEST(ArenaTest, ProtocolMappingIsReadWriteAndZeroed) {
  Arena arena(4 * kPageBytes, "test-arena");
  EXPECT_GE(arena.fd(), 0);
  std::byte* p = arena.protocol_base();
  for (std::size_t i = 0; i < 4 * kPageBytes; i += kPageBytes) {
    EXPECT_EQ(std::to_integer<int>(p[i]), 0);
  }
  std::memset(p, 0x5a, kPageBytes);
  EXPECT_EQ(std::to_integer<int>(arena.PagePtr(0)[10]), 0x5a);
}

TEST(ViewTest, ViewsOfSameArenaShareFrames) {
  Config cfg = VmConfig();
  Arena arena(cfg.heap_bytes, "shared");
  View v1(cfg, arena);
  View v2(cfg, arena);
  v1.Protect(0, Perm::kReadWrite);  // csm-lint: allow(raw-view-protect) -- exercises View's own API
  v2.Protect(0, Perm::kRead);  // csm-lint: allow(raw-view-protect) -- exercises View's own API
  v1.base()[100] = std::byte{42};
  // Hardware coherence: the write is visible through the other view and
  // the protocol mapping.
  EXPECT_EQ(std::to_integer<int>(v2.base()[100]), 42);
  EXPECT_EQ(std::to_integer<int>(arena.PagePtr(0)[100]), 42);
}

TEST(ViewTest, ProtectionsAreIndependentPerView) {
  Config cfg = VmConfig();
  Arena arena(cfg.heap_bytes, "perm");
  View v1(cfg, arena);
  View v2(cfg, arena);
  v1.Protect(2, Perm::kReadWrite);  // csm-lint: allow(raw-view-protect) -- exercises View's own API
  EXPECT_EQ(v1.PermOf(2), Perm::kReadWrite);
  EXPECT_EQ(v2.PermOf(2), Perm::kInvalid);
}

TEST(ViewTest, ContainsAndPageOfAddr) {
  Config cfg = VmConfig();
  Arena arena(cfg.heap_bytes, "addr");
  View v(cfg, arena);
  EXPECT_TRUE(v.Contains(v.base()));
  EXPECT_TRUE(v.Contains(v.base() + cfg.heap_bytes - 1));
  EXPECT_FALSE(v.Contains(v.base() + cfg.heap_bytes));
  EXPECT_EQ(v.PageOfAddr(v.base() + 3 * kPageBytes + 17), 3u);
}

TEST(ViewTest, RemapSuperpageSwitchesBackingArena) {
  Config cfg = VmConfig();
  Arena a(cfg.heap_bytes, "a");
  Arena b(cfg.heap_bytes, "b");
  a.PagePtr(4)[0] = std::byte{1};  // superpage 1 starts at page 4
  b.PagePtr(4)[0] = std::byte{2};
  View v(cfg, a);
  v.Protect(4, Perm::kRead);  // csm-lint: allow(raw-view-protect) -- exercises View's own API
  EXPECT_EQ(std::to_integer<int>(v.base()[4 * kPageBytes]), 1);
  v.RemapSuperpage(1, b);
  EXPECT_EQ(v.PermOf(4), Perm::kInvalid);  // remap resets protections
  v.Protect(4, Perm::kRead);  // csm-lint: allow(raw-view-protect) -- exercises View's own API
  EXPECT_EQ(std::to_integer<int>(v.base()[4 * kPageBytes]), 2);
}

// A fault sink that grants access on fault, recording events.
class CountingSink : public FaultSink {
 public:
  CountingSink(View* view, std::atomic<int>* reads, std::atomic<int>* writes)
      : view_(view), reads_(reads), writes_(writes) {}

  bool HandleFault(void* addr, bool is_write) override {
    if (!view_->Contains(addr)) {
      return false;
    }
    (is_write ? *writes_ : *reads_).fetch_add(1);
    // csm-lint: allow(raw-view-protect) -- a test-local fault sink granting
    // access directly, below the protocol layer the batch engine serves
    view_->Protect(view_->PageOfAddr(addr), is_write ? Perm::kReadWrite : Perm::kRead);
    return true;
  }

 private:
  View* view_;
  std::atomic<int>* reads_;
  std::atomic<int>* writes_;
};

TEST(FaultDispatcherTest, RoutesReadAndWriteFaults) {
  Config cfg = VmConfig();
  Arena arena(cfg.heap_bytes, "faults");
  arena.PagePtr(1)[8] = std::byte{9};
  View view(cfg, arena);
  std::atomic<int> reads{0};
  std::atomic<int> writes{0};
  CountingSink sink(&view, &reads, &writes);
  FaultDispatcher::Instance().Register(&sink);

  volatile std::byte* p = view.base() + kPageBytes;
  const int value = std::to_integer<int>(p[8]);  // read fault
  EXPECT_EQ(value, 9);
  EXPECT_EQ(reads.load(), 1);
  p[9] = std::byte{7};  // write fault (upgrade)
  EXPECT_EQ(writes.load(), 1);
  p[10] = std::byte{6};  // no further fault
  EXPECT_EQ(writes.load(), 1);
  EXPECT_EQ(std::to_integer<int>(arena.PagePtr(1)[9]), 7);

  FaultDispatcher::Instance().Unregister(&sink);
}

TEST(FaultDispatcherTest, MultipleSinksCoexist) {
  Config cfg = VmConfig();
  Arena a1(cfg.heap_bytes, "s1");
  Arena a2(cfg.heap_bytes, "s2");
  View v1(cfg, a1);
  View v2(cfg, a2);
  std::atomic<int> r1{0}, w1{0}, r2{0}, w2{0};
  CountingSink s1(&v1, &r1, &w1);
  CountingSink s2(&v2, &r2, &w2);
  FaultDispatcher::Instance().Register(&s1);
  FaultDispatcher::Instance().Register(&s2);

  volatile std::byte* p1 = v1.base();
  volatile std::byte* p2 = v2.base();
  p1[0] = std::byte{1};
  p2[0] = std::byte{2};
  EXPECT_EQ(w1.load(), 1);
  EXPECT_EQ(w2.load(), 1);

  FaultDispatcher::Instance().Unregister(&s1);
  FaultDispatcher::Instance().Unregister(&s2);
}

}  // namespace
}  // namespace cashmere
