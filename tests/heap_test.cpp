// Shared-heap allocator tests, including exhaustion behaviour.
#include <gtest/gtest.h>

#include "cashmere/runtime/heap.hpp"

namespace cashmere {
namespace {

TEST(SharedHeapTest, SequentialAllocationsDoNotOverlap) {
  SharedHeap heap(1 << 20);
  const GlobalAddr a = heap.Alloc(100);
  const GlobalAddr b = heap.Alloc(100);
  const GlobalAddr c = heap.Alloc(1);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 100);
  EXPECT_EQ(heap.capacity(), 1u << 20);
  EXPECT_GE(heap.used(), 201u);
}

TEST(SharedHeapTest, AlignmentIsHonoured) {
  SharedHeap heap(1 << 20);
  heap.Alloc(3);
  EXPECT_EQ(heap.Alloc(8, 8) % 8, 0u);
  heap.Alloc(5);
  EXPECT_EQ(heap.Alloc(16, 256) % 256, 0u);
  EXPECT_EQ(heap.AllocPageAligned(10) % kPageBytes, 0u);
}

TEST(SharedHeapTest, FillsToCapacityExactly) {
  SharedHeap heap(4096);
  const GlobalAddr a = heap.Alloc(4096, 1);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(heap.used(), 4096u);
}

TEST(SharedHeapDeathTest, ExhaustionAborts) {
  SharedHeap heap(4096);
  heap.Alloc(4000, 1);
  EXPECT_DEATH(heap.Alloc(200, 1), "shared heap exhausted");
}

TEST(SharedHeapDeathTest, BadAlignmentAborts) {
  SharedHeap heap(4096);
  EXPECT_DEATH(heap.Alloc(8, 3), "CHECK");
}

}  // namespace
}  // namespace cashmere
